file(REMOVE_RECURSE
  "CMakeFiles/nested_statistics.dir/nested_statistics.cpp.o"
  "CMakeFiles/nested_statistics.dir/nested_statistics.cpp.o.d"
  "nested_statistics"
  "nested_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
