# Empty compiler generated dependencies file for nested_statistics.
# This may be replaced when dependencies are built.
