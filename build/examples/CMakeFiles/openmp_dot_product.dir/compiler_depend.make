# Empty compiler generated dependencies file for openmp_dot_product.
# This may be replaced when dependencies are built.
