file(REMOVE_RECURSE
  "CMakeFiles/openmp_dot_product.dir/openmp_dot_product.cpp.o"
  "CMakeFiles/openmp_dot_product.dir/openmp_dot_product.cpp.o.d"
  "openmp_dot_product"
  "openmp_dot_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openmp_dot_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
