# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_table2 "/root/repo/build/bench/table2_testsuite" "--r" "256")
set_tests_properties(smoke_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;21;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_fig12a "/root/repo/build/bench/fig12a_heat" "--iters" "3" "--sizes" "20,24")
set_tests_properties(smoke_fig12a PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;22;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_fig12b "/root/repo/build/bench/fig12b_matmul" "--sizes" "24" "--verify")
set_tests_properties(smoke_fig12b PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_fig12c "/root/repo/build/bench/fig12c_montecarlo" "--samples" "10000")
set_tests_properties(smoke_fig12c PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_fig6_8 "/root/repo/build/bench/fig6_8_layout_ablation" "--r" "2048")
set_tests_properties(smoke_fig6_8 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_fig7 "/root/repo/build/bench/fig7_tree_variants" "--instances" "8")
set_tests_properties(smoke_fig7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_window "/root/repo/build/bench/window_vs_blocking" "--n" "16384")
set_tests_properties(smoke_window PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_rmp "/root/repo/build/bench/rmp_flat_vs_ordered" "--r" "512" "--nj" "16")
set_tests_properties(smoke_rmp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_special "/root/repo/build/bench/special_cases" "--r" "2048")
set_tests_properties(smoke_special PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_finalize "/root/repo/build/bench/finalize_strategies" "--counts" "192,4096")
set_tests_properties(smoke_finalize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
