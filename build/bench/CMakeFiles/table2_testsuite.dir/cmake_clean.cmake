file(REMOVE_RECURSE
  "CMakeFiles/table2_testsuite.dir/table2_testsuite.cpp.o"
  "CMakeFiles/table2_testsuite.dir/table2_testsuite.cpp.o.d"
  "table2_testsuite"
  "table2_testsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_testsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
