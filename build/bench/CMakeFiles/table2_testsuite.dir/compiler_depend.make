# Empty compiler generated dependencies file for table2_testsuite.
# This may be replaced when dependencies are built.
