# Empty dependencies file for fig12a_heat.
# This may be replaced when dependencies are built.
