file(REMOVE_RECURSE
  "CMakeFiles/fig12a_heat.dir/fig12a_heat.cpp.o"
  "CMakeFiles/fig12a_heat.dir/fig12a_heat.cpp.o.d"
  "fig12a_heat"
  "fig12a_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
