# Empty dependencies file for rmp_flat_vs_ordered.
# This may be replaced when dependencies are built.
