file(REMOVE_RECURSE
  "CMakeFiles/rmp_flat_vs_ordered.dir/rmp_flat_vs_ordered.cpp.o"
  "CMakeFiles/rmp_flat_vs_ordered.dir/rmp_flat_vs_ordered.cpp.o.d"
  "rmp_flat_vs_ordered"
  "rmp_flat_vs_ordered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmp_flat_vs_ordered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
