# Empty compiler generated dependencies file for fig7_tree_variants.
# This may be replaced when dependencies are built.
