file(REMOVE_RECURSE
  "CMakeFiles/fig7_tree_variants.dir/fig7_tree_variants.cpp.o"
  "CMakeFiles/fig7_tree_variants.dir/fig7_tree_variants.cpp.o.d"
  "fig7_tree_variants"
  "fig7_tree_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tree_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
