# Empty dependencies file for fig12b_matmul.
# This may be replaced when dependencies are built.
