file(REMOVE_RECURSE
  "CMakeFiles/fig12b_matmul.dir/fig12b_matmul.cpp.o"
  "CMakeFiles/fig12b_matmul.dir/fig12b_matmul.cpp.o.d"
  "fig12b_matmul"
  "fig12b_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
