# Empty dependencies file for special_cases.
# This may be replaced when dependencies are built.
