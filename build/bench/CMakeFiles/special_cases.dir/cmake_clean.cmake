file(REMOVE_RECURSE
  "CMakeFiles/special_cases.dir/special_cases.cpp.o"
  "CMakeFiles/special_cases.dir/special_cases.cpp.o.d"
  "special_cases"
  "special_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/special_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
