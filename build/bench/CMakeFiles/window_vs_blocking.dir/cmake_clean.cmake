file(REMOVE_RECURSE
  "CMakeFiles/window_vs_blocking.dir/window_vs_blocking.cpp.o"
  "CMakeFiles/window_vs_blocking.dir/window_vs_blocking.cpp.o.d"
  "window_vs_blocking"
  "window_vs_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_vs_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
