# Empty compiler generated dependencies file for window_vs_blocking.
# This may be replaced when dependencies are built.
