file(REMOVE_RECURSE
  "CMakeFiles/finalize_strategies.dir/finalize_strategies.cpp.o"
  "CMakeFiles/finalize_strategies.dir/finalize_strategies.cpp.o.d"
  "finalize_strategies"
  "finalize_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finalize_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
