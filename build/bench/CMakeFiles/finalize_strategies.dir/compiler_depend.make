# Empty compiler generated dependencies file for finalize_strategies.
# This may be replaced when dependencies are built.
