file(REMOVE_RECURSE
  "CMakeFiles/fig12c_montecarlo.dir/fig12c_montecarlo.cpp.o"
  "CMakeFiles/fig12c_montecarlo.dir/fig12c_montecarlo.cpp.o.d"
  "fig12c_montecarlo"
  "fig12c_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12c_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
