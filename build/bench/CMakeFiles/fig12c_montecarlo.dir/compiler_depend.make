# Empty compiler generated dependencies file for fig12c_montecarlo.
# This may be replaced when dependencies are built.
