# Empty dependencies file for simulator_microbench.
# This may be replaced when dependencies are built.
