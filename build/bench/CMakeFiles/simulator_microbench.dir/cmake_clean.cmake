file(REMOVE_RECURSE
  "CMakeFiles/simulator_microbench.dir/simulator_microbench.cpp.o"
  "CMakeFiles/simulator_microbench.dir/simulator_microbench.cpp.o.d"
  "simulator_microbench"
  "simulator_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
