# Empty compiler generated dependencies file for fig6_8_layout_ablation.
# This may be replaced when dependencies are built.
