file(REMOVE_RECURSE
  "CMakeFiles/fig6_8_layout_ablation.dir/fig6_8_layout_ablation.cpp.o"
  "CMakeFiles/fig6_8_layout_ablation.dir/fig6_8_layout_ablation.cpp.o.d"
  "fig6_8_layout_ablation"
  "fig6_8_layout_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_8_layout_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
