file(REMOVE_RECURSE
  "CMakeFiles/test_cuda_emitter.dir/codegen/test_cuda_emitter.cpp.o"
  "CMakeFiles/test_cuda_emitter.dir/codegen/test_cuda_emitter.cpp.o.d"
  "test_cuda_emitter"
  "test_cuda_emitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuda_emitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
