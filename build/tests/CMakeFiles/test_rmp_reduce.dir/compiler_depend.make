# Empty compiler generated dependencies file for test_rmp_reduce.
# This may be replaced when dependencies are built.
