file(REMOVE_RECURSE
  "CMakeFiles/test_rmp_reduce.dir/reduce/test_rmp_reduce.cpp.o"
  "CMakeFiles/test_rmp_reduce.dir/reduce/test_rmp_reduce.cpp.o.d"
  "test_rmp_reduce"
  "test_rmp_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmp_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
