file(REMOVE_RECURSE
  "CMakeFiles/test_auto_bind.dir/acc/test_auto_bind.cpp.o"
  "CMakeFiles/test_auto_bind.dir/acc/test_auto_bind.cpp.o.d"
  "test_auto_bind"
  "test_auto_bind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_bind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
