# Empty compiler generated dependencies file for test_auto_bind.
# This may be replaced when dependencies are built.
