file(REMOVE_RECURSE
  "CMakeFiles/test_array_reduce.dir/reduce/test_array_reduce.cpp.o"
  "CMakeFiles/test_array_reduce.dir/reduce/test_array_reduce.cpp.o.d"
  "test_array_reduce"
  "test_array_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
