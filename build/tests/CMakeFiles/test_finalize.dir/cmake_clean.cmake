file(REMOVE_RECURSE
  "CMakeFiles/test_finalize.dir/reduce/test_finalize.cpp.o"
  "CMakeFiles/test_finalize.dir/reduce/test_finalize.cpp.o.d"
  "test_finalize"
  "test_finalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
