# Empty compiler generated dependencies file for test_fuzz_nests.
# This may be replaced when dependencies are built.
