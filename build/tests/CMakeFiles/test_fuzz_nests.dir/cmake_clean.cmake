file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_nests.dir/acc/test_fuzz_nests.cpp.o"
  "CMakeFiles/test_fuzz_nests.dir/acc/test_fuzz_nests.cpp.o.d"
  "test_fuzz_nests"
  "test_fuzz_nests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_nests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
