file(REMOVE_RECURSE
  "CMakeFiles/test_gang_reduce.dir/reduce/test_gang_reduce.cpp.o"
  "CMakeFiles/test_gang_reduce.dir/reduce/test_gang_reduce.cpp.o.d"
  "test_gang_reduce"
  "test_gang_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gang_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
