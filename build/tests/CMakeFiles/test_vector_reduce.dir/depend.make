# Empty dependencies file for test_vector_reduce.
# This may be replaced when dependencies are built.
