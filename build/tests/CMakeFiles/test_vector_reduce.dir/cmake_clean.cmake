file(REMOVE_RECURSE
  "CMakeFiles/test_vector_reduce.dir/reduce/test_vector_reduce.cpp.o"
  "CMakeFiles/test_vector_reduce.dir/reduce/test_vector_reduce.cpp.o.d"
  "test_vector_reduce"
  "test_vector_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
