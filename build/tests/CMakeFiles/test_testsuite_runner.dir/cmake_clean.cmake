file(REMOVE_RECURSE
  "CMakeFiles/test_testsuite_runner.dir/testsuite/test_runner.cpp.o"
  "CMakeFiles/test_testsuite_runner.dir/testsuite/test_runner.cpp.o.d"
  "test_testsuite_runner"
  "test_testsuite_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testsuite_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
