# Empty compiler generated dependencies file for test_testsuite_runner.
# This may be replaced when dependencies are built.
