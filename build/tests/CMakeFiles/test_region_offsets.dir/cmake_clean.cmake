file(REMOVE_RECURSE
  "CMakeFiles/test_region_offsets.dir/acc/test_region_offsets.cpp.o"
  "CMakeFiles/test_region_offsets.dir/acc/test_region_offsets.cpp.o.d"
  "test_region_offsets"
  "test_region_offsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_offsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
