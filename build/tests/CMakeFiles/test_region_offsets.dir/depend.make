# Empty dependencies file for test_region_offsets.
# This may be replaced when dependencies are built.
