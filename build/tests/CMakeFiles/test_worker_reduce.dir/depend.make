# Empty dependencies file for test_worker_reduce.
# This may be replaced when dependencies are built.
