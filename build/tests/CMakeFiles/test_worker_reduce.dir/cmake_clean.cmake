file(REMOVE_RECURSE
  "CMakeFiles/test_worker_reduce.dir/reduce/test_worker_reduce.cpp.o"
  "CMakeFiles/test_worker_reduce.dir/reduce/test_worker_reduce.cpp.o.d"
  "test_worker_reduce"
  "test_worker_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worker_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
