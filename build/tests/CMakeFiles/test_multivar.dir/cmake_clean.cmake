file(REMOVE_RECURSE
  "CMakeFiles/test_multivar.dir/reduce/test_multivar.cpp.o"
  "CMakeFiles/test_multivar.dir/reduce/test_multivar.cpp.o.d"
  "test_multivar"
  "test_multivar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multivar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
