# Empty compiler generated dependencies file for test_multivar.
# This may be replaced when dependencies are built.
