# Empty compiler generated dependencies file for test_long_epoch.
# This may be replaced when dependencies are built.
