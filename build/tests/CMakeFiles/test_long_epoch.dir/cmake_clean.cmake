file(REMOVE_RECURSE
  "CMakeFiles/test_long_epoch.dir/gpusim/test_long_epoch.cpp.o"
  "CMakeFiles/test_long_epoch.dir/gpusim/test_long_epoch.cpp.o.d"
  "test_long_epoch"
  "test_long_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_long_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
