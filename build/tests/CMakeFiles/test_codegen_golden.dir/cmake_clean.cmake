file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_golden.dir/codegen/test_golden.cpp.o"
  "CMakeFiles/test_codegen_golden.dir/codegen/test_golden.cpp.o.d"
  "test_codegen_golden"
  "test_codegen_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
