file(REMOVE_RECURSE
  "CMakeFiles/test_openmp.dir/acc/test_openmp.cpp.o"
  "CMakeFiles/test_openmp.dir/acc/test_openmp.cpp.o.d"
  "test_openmp"
  "test_openmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
