file(REMOVE_RECURSE
  "libaccred.a"
)
