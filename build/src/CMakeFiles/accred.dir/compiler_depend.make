# Empty compiler generated dependencies file for accred.
# This may be replaced when dependencies are built.
