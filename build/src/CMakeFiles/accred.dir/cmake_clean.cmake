file(REMOVE_RECURSE
  "CMakeFiles/accred.dir/acc/analysis.cpp.o"
  "CMakeFiles/accred.dir/acc/analysis.cpp.o.d"
  "CMakeFiles/accred.dir/acc/parser.cpp.o"
  "CMakeFiles/accred.dir/acc/parser.cpp.o.d"
  "CMakeFiles/accred.dir/acc/planner.cpp.o"
  "CMakeFiles/accred.dir/acc/planner.cpp.o.d"
  "CMakeFiles/accred.dir/acc/profiles.cpp.o"
  "CMakeFiles/accred.dir/acc/profiles.cpp.o.d"
  "CMakeFiles/accred.dir/apps/heat.cpp.o"
  "CMakeFiles/accred.dir/apps/heat.cpp.o.d"
  "CMakeFiles/accred.dir/apps/matmul.cpp.o"
  "CMakeFiles/accred.dir/apps/matmul.cpp.o.d"
  "CMakeFiles/accred.dir/apps/montecarlo.cpp.o"
  "CMakeFiles/accred.dir/apps/montecarlo.cpp.o.d"
  "CMakeFiles/accred.dir/codegen/cuda_emitter.cpp.o"
  "CMakeFiles/accred.dir/codegen/cuda_emitter.cpp.o.d"
  "CMakeFiles/accred.dir/gpusim/cost_model.cpp.o"
  "CMakeFiles/accred.dir/gpusim/cost_model.cpp.o.d"
  "CMakeFiles/accred.dir/gpusim/fiber.cpp.o"
  "CMakeFiles/accred.dir/gpusim/fiber.cpp.o.d"
  "CMakeFiles/accred.dir/gpusim/launch.cpp.o"
  "CMakeFiles/accred.dir/gpusim/launch.cpp.o.d"
  "CMakeFiles/accred.dir/gpusim/scheduler.cpp.o"
  "CMakeFiles/accred.dir/gpusim/scheduler.cpp.o.d"
  "CMakeFiles/accred.dir/testsuite/cases.cpp.o"
  "CMakeFiles/accred.dir/testsuite/cases.cpp.o.d"
  "CMakeFiles/accred.dir/testsuite/report.cpp.o"
  "CMakeFiles/accred.dir/testsuite/report.cpp.o.d"
  "CMakeFiles/accred.dir/testsuite/runner.cpp.o"
  "CMakeFiles/accred.dir/testsuite/runner.cpp.o.d"
  "libaccred.a"
  "libaccred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
