
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acc/analysis.cpp" "src/CMakeFiles/accred.dir/acc/analysis.cpp.o" "gcc" "src/CMakeFiles/accred.dir/acc/analysis.cpp.o.d"
  "/root/repo/src/acc/parser.cpp" "src/CMakeFiles/accred.dir/acc/parser.cpp.o" "gcc" "src/CMakeFiles/accred.dir/acc/parser.cpp.o.d"
  "/root/repo/src/acc/planner.cpp" "src/CMakeFiles/accred.dir/acc/planner.cpp.o" "gcc" "src/CMakeFiles/accred.dir/acc/planner.cpp.o.d"
  "/root/repo/src/acc/profiles.cpp" "src/CMakeFiles/accred.dir/acc/profiles.cpp.o" "gcc" "src/CMakeFiles/accred.dir/acc/profiles.cpp.o.d"
  "/root/repo/src/apps/heat.cpp" "src/CMakeFiles/accred.dir/apps/heat.cpp.o" "gcc" "src/CMakeFiles/accred.dir/apps/heat.cpp.o.d"
  "/root/repo/src/apps/matmul.cpp" "src/CMakeFiles/accred.dir/apps/matmul.cpp.o" "gcc" "src/CMakeFiles/accred.dir/apps/matmul.cpp.o.d"
  "/root/repo/src/apps/montecarlo.cpp" "src/CMakeFiles/accred.dir/apps/montecarlo.cpp.o" "gcc" "src/CMakeFiles/accred.dir/apps/montecarlo.cpp.o.d"
  "/root/repo/src/codegen/cuda_emitter.cpp" "src/CMakeFiles/accred.dir/codegen/cuda_emitter.cpp.o" "gcc" "src/CMakeFiles/accred.dir/codegen/cuda_emitter.cpp.o.d"
  "/root/repo/src/gpusim/cost_model.cpp" "src/CMakeFiles/accred.dir/gpusim/cost_model.cpp.o" "gcc" "src/CMakeFiles/accred.dir/gpusim/cost_model.cpp.o.d"
  "/root/repo/src/gpusim/fiber.cpp" "src/CMakeFiles/accred.dir/gpusim/fiber.cpp.o" "gcc" "src/CMakeFiles/accred.dir/gpusim/fiber.cpp.o.d"
  "/root/repo/src/gpusim/launch.cpp" "src/CMakeFiles/accred.dir/gpusim/launch.cpp.o" "gcc" "src/CMakeFiles/accred.dir/gpusim/launch.cpp.o.d"
  "/root/repo/src/gpusim/scheduler.cpp" "src/CMakeFiles/accred.dir/gpusim/scheduler.cpp.o" "gcc" "src/CMakeFiles/accred.dir/gpusim/scheduler.cpp.o.d"
  "/root/repo/src/testsuite/cases.cpp" "src/CMakeFiles/accred.dir/testsuite/cases.cpp.o" "gcc" "src/CMakeFiles/accred.dir/testsuite/cases.cpp.o.d"
  "/root/repo/src/testsuite/report.cpp" "src/CMakeFiles/accred.dir/testsuite/report.cpp.o" "gcc" "src/CMakeFiles/accred.dir/testsuite/report.cpp.o.d"
  "/root/repo/src/testsuite/runner.cpp" "src/CMakeFiles/accred.dir/testsuite/runner.cpp.o" "gcc" "src/CMakeFiles/accred.dir/testsuite/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
