// prof_report — nvprof-style per-stage profile reporting over accred.bench
// JSON records (schema v2 "profile" sections, produced by running a bench
// with --profile / ACCRED_PROFILE=1).
//
//   prof_report RECORD.json [--entry NAME]
//       Print the per-stage counter table (requests, segments, coalescing
//       efficiency, bank-conflict factor, ALU units, barriers, divergence)
//       for every profiled entry, or just NAME.
//
//   prof_report --compare A.json B.json [--entry NAME]
//       Side-by-side strategy diff: join entries by name, join stages by
//       name, and print A and B's derived metrics next to each other with
//       the B/A ratio on the dominant cost axis.
//
// Exit codes: 0 = report printed, 2 = unreadable/malformed input, no
// profile sections, or bad usage (there is no "regression" verdict here —
// that is bench_diff's job).
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"

namespace {

using namespace accred;

struct ProfiledEntry {
  std::string name;
  obs::StageTable table;
};

/// Load a record file and pull out every entry carrying a profile section.
/// Returns false (with a message on stderr) on IO/parse/schema problems.
bool load_profiles(const std::string& path, std::vector<ProfiledEntry>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "prof_report: cannot read " << path << '\n';
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const obs::Json j = obs::Json::parse(buf.str());
    if (const obs::Json* schema = j.find("schema");
        schema == nullptr || schema->as_string() != obs::kBenchSchema) {
      std::cerr << "prof_report: " << path << " is not an " << obs::kBenchSchema
                << " record\n";
      return false;
    }
    for (const obs::Json& e : j.at("entries").elements()) {
      if (const obs::Json* p = e.find("profile")) {
        out.push_back({e.at("name").as_string(), obs::profile_from_json(*p)});
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "prof_report: " << path << ": " << ex.what() << '\n';
    return false;
  }
  return true;
}

const ProfiledEntry* find_entry(const std::vector<ProfiledEntry>& entries,
                                const std::string& name) {
  for (const ProfiledEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void report(const std::vector<ProfiledEntry>& entries) {
  for (const ProfiledEntry& e : entries) {
    std::cout << "== " << e.name << " ==\n";
    obs::print_profile(std::cout, e.table);
    std::cout << '\n';
  }
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

/// Side-by-side derived metrics for one pair of tables, stages joined by
/// name (A's order first, then B-only stages).
void compare_tables(const obs::StageTable& a, const obs::StageTable& b) {
  struct Col {
    const char* head;
    int width;
  };
  static constexpr Col cols[] = {
      {"stage", 16},      {"gmem seg A", 11}, {"gmem seg B", 11},
      {"coal A", 8},      {"coal B", 8},      {"bank A", 8},
      {"bank B", 8},      {"alu A", 12},      {"alu B", 12},
      {"diverg%A", 9},    {"diverg%B", 9},    {"smem B/A", 9},
  };
  for (const Col& c : cols) {
    std::cout << std::left << std::setw(c.width) << c.head << ' ';
  }
  std::cout << '\n';

  std::vector<std::string> stages;
  for (const auto& r : a.rows()) stages.push_back(r.name);
  for (const auto& r : b.rows()) {
    if (a.find(r.name) == nullptr) stages.push_back(r.name);
  }
  for (const std::string& name : stages) {
    const obs::StageTable::Row* ra = a.find(name);
    const obs::StageTable::Row* rb = b.find(name);
    const obs::StageStats za{};
    const obs::StageStats& sa = ra ? ra->stats : za;
    const obs::StageStats& sb = rb ? rb->stats : za;
    // Serialized shared cycles are the axis the paper's layout arguments
    // turn on; requests fall back to segments for global-heavy stages.
    const double cyc_a = static_cast<double>(sa.smem_cycles);
    const double cyc_b = static_cast<double>(sb.smem_cycles);
    const std::string ratio =
        cyc_a > 0 ? fmt(cyc_b / cyc_a, 2) + "x" : std::string("-");
    std::cout << std::left << std::setw(cols[0].width) << name << ' '
              << std::setw(cols[1].width) << sa.gmem_segments << ' '
              << std::setw(cols[2].width) << sb.gmem_segments << ' '
              << std::setw(cols[3].width)
              << fmt(obs::stage_coalescing_efficiency(sa), 3) << ' '
              << std::setw(cols[4].width)
              << fmt(obs::stage_coalescing_efficiency(sb), 3) << ' '
              << std::setw(cols[5].width)
              << fmt(obs::stage_bank_conflict_factor(sa), 2) << ' '
              << std::setw(cols[6].width)
              << fmt(obs::stage_bank_conflict_factor(sb), 2) << ' '
              << std::setw(cols[7].width) << fmt(sa.alu_units, 0) << ' '
              << std::setw(cols[8].width) << fmt(sb.alu_units, 0) << ' '
              << std::setw(cols[9].width)
              << fmt(obs::stage_divergence(sa) * 100.0, 1) << ' '
              << std::setw(cols[10].width)
              << fmt(obs::stage_divergence(sb) * 100.0, 1) << ' '
              << std::setw(cols[11].width) << ratio << '\n';
  }
}

int run_compare(const std::string& path_a, const std::string& path_b,
                const util::Cli& cli) {
  std::vector<ProfiledEntry> a;
  std::vector<ProfiledEntry> b;
  if (!load_profiles(path_a, a) || !load_profiles(path_b, b)) return 2;
  const std::string only = cli.get("entry", "");
  bool any = false;
  for (const ProfiledEntry& ea : a) {
    if (!only.empty() && ea.name != only) continue;
    const ProfiledEntry* eb = find_entry(b, ea.name);
    if (eb == nullptr) continue;
    std::cout << "== " << ea.name << "  (A = " << path_a << ", B = " << path_b
              << ") ==\n";
    compare_tables(ea.table, eb->table);
    std::cout << '\n';
    any = true;
  }
  if (!any) {
    std::cerr << "prof_report: no common profiled entries"
              << (only.empty() ? "" : " named " + only) << '\n';
    return 2;
  }
  return 0;
}

void usage() {
  std::cerr << "usage: prof_report RECORD.json [--entry NAME]\n"
               "       prof_report --compare A.json B.json [--entry NAME]\n";
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"help"});
  if (cli.has("help")) {
    usage();
    return 2;
  }
  if (cli.has("compare")) {
    // The flag parser binds the first file to --compare itself; the second
    // arrives as the sole positional.
    const std::string path_a = cli.get("compare", "");
    if (path_a.empty() || cli.positional().size() != 1) {
      usage();
      return 2;
    }
    return run_compare(path_a, cli.positional()[0], cli);
  }
  if (cli.positional().size() != 1) {
    usage();
    return 2;
  }

  std::vector<ProfiledEntry> entries;
  if (!load_profiles(cli.positional()[0], entries)) return 2;
  const std::string only = cli.get("entry", "");
  if (!only.empty()) {
    const ProfiledEntry* e = find_entry(entries, only);
    if (e == nullptr) {
      std::cerr << "prof_report: no profiled entry named " << only << '\n';
      return 2;
    }
    report({*e});
    return 0;
  }
  if (entries.empty()) {
    std::cerr << "prof_report: record has no profile sections (run the bench "
                 "with --profile or ACCRED_PROFILE=1)\n";
    return 2;
  }
  report(entries);
  return 0;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
