// racecheck_report — renders (and gates on) the race-detection sections of
// accred.bench JSON records produced by running a bench with --racecheck /
// ACCRED_RACECHECK=1.
//
//   racecheck_report RECORD.json [--entry NAME]
//       Print a per-entry race summary — the conflicting-pair count from
//       each entry's stats plus every recorded RaceReport (hazard kind,
//       memory space, address, block, both thread coordinates and
//       prof_scope stages) — for every racechecked entry, or just NAME.
//
// Exit codes (CI gate semantics):
//   0 = every racechecked entry is race-free
//   1 = at least one race was reported
//   2 = unreadable/malformed input, no racechecked entries (the detector
//       silently off must fail a gate, not pass it), or bad usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"

namespace {

using namespace accred;

struct CheckedEntry {
  std::string name;
  std::int64_t races = 0;
  std::vector<std::string> reports;  ///< pre-rendered one-liners
};

std::string render_access(const obs::Json& a) {
  std::ostringstream os;
  const obs::Json& t = a.at("thread");
  os << "t(" << t.elements()[0].as_int() << ',' << t.elements()[1].as_int()
     << ',' << t.elements()[2].as_int() << ") " << a.at("access").as_string()
     << " [" << a.at("stage").as_string() << ']';
  return os.str();
}

std::string render_report(const obs::Json& r) {
  std::ostringstream os;
  const obs::Json& b = r.at("block");
  os << r.at("kind").as_string() << ' ' << r.at("space").as_string() << "+0x"
     << std::hex << r.at("addr").as_int() << std::dec << " block("
     << b.elements()[0].as_int() << ',' << b.elements()[1].as_int() << ','
     << b.elements()[2].as_int() << "): " << render_access(r.at("first"))
     << " vs " << render_access(r.at("second"));
  return os.str();
}

/// Pull every entry whose stats carry a "races" counter (i.e. the launch
/// ran under racecheck). Returns false on IO/parse/schema problems.
bool load_entries(const std::string& path, std::vector<CheckedEntry>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "racecheck_report: cannot read " << path << '\n';
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const obs::Json j = obs::Json::parse(buf.str());
    if (const obs::Json* schema = j.find("schema");
        schema == nullptr || schema->as_string() != obs::kBenchSchema) {
      std::cerr << "racecheck_report: " << path << " is not an "
                << obs::kBenchSchema << " record\n";
      return false;
    }
    for (const obs::Json& e : j.at("entries").elements()) {
      const obs::Json* stats = e.find("stats");
      if (stats == nullptr) continue;
      const obs::Json* races = stats->find("races");
      if (races == nullptr) continue;  // entry did not run under racecheck
      CheckedEntry ce;
      ce.name = e.at("name").as_string();
      ce.races = races->as_int();
      if (const obs::Json* reports = e.find("races")) {
        for (const obs::Json& r : reports->elements()) {
          ce.reports.push_back(render_report(r));
        }
      }
      out.push_back(std::move(ce));
    }
  } catch (const std::exception& ex) {
    std::cerr << "racecheck_report: " << path << ": " << ex.what() << '\n';
    return false;
  }
  return true;
}

void usage() {
  std::cerr << "usage: racecheck_report RECORD.json [--entry NAME]\n";
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"help"});
  if (cli.has("help") || cli.positional().size() != 1) {
    usage();
    return 2;
  }

  std::vector<CheckedEntry> entries;
  if (!load_entries(cli.positional()[0], entries)) return 2;

  const std::string only = cli.get("entry", "");
  if (!only.empty()) {
    std::erase_if(entries,
                  [&](const CheckedEntry& e) { return e.name != only; });
  }
  if (entries.empty()) {
    std::cerr << "racecheck_report: no racechecked entries"
              << (only.empty() ? "" : " named " + only)
              << " (run the bench with --racecheck or ACCRED_RACECHECK=1)\n";
    return 2;
  }

  std::int64_t total = 0;
  for (const CheckedEntry& e : entries) {
    total += e.races;
    std::cout << e.name << ": " << e.races << " race(s)\n";
    for (const std::string& r : e.reports) std::cout << "    " << r << '\n';
  }
  std::cout << "== " << entries.size() << " entr"
            << (entries.size() == 1 ? "y" : "ies") << " checked, " << total
            << " race(s) total ==\n";
  return total > 0 ? 1 : 0;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
