// metrics_report — render and gate the "telemetry" section of a schema-v3
// accred.bench record (the service's metrics registry; DESIGN.md §14).
//
//   metrics_report RECORD.json [--entry NAME] [--histograms]
//                  [--slo "HIST:STAT<=BOUND,..."]
//   metrics_report --compare BASELINE.json CURRENT.json [--entry NAME]
//
// Default output: the service-level counters and gauges, a per-tenant
// latency table, service latency percentiles, and ASCII renderings of the
// service/* histograms (--histograms renders every histogram, tenants
// included). All values come from the registry dump, so two runs of the
// same workload print byte-equal reports for any workers/--sim-threads.
//
// --slo gates the report: a comma-separated list of histogram statistics
// with upper bounds, e.g.
//     --slo "service/e2e_ms:p99<=0.5,service/queue_wait_ms:p50<=0.25"
// where STAT is pNN (percentile), mean, or max, in the histogram's value
// units (milliseconds for the latency histograms). Breaches print FAIL
// lines and exit 1 — the CI hook for latency objectives.
//
// --compare prints baseline-vs-current percentiles side by side for every
// histogram the two records share (informational, never gates; an --slo
// list still applies, to CURRENT).
//
// Exit codes: 0 = report printed (SLOs, if any, all pass); 1 = SLO
// breach; 2 = unreadable input, no telemetry section, or bad usage.
#include <cstdint>
#include <exception>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/main_guard.hpp"

namespace {

using namespace accred;

/// One record entry's parsed telemetry section.
struct Telemetry {
  std::string entry_name;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, obs::Histogram> histograms;
};

std::optional<obs::Json> load_record(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "metrics_report: cannot read " << path << '\n';
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return obs::Json::parse(buf.str());
  } catch (const std::exception& ex) {
    std::cerr << "metrics_report: " << path << ": " << ex.what() << '\n';
    return std::nullopt;
  }
}

/// The telemetry of `entry_name` (or of the first entry carrying one).
std::optional<Telemetry> extract(const obs::Json& record,
                                 const std::string& entry_name,
                                 const std::string& path) {
  using obs::Json;
  try {
    for (const Json& e : record.at("entries").elements()) {
      const std::string& name = e.at("name").as_string();
      if (!entry_name.empty() && name != entry_name) continue;
      const Json* tel = e.find("telemetry");
      if (tel == nullptr) continue;
      Telemetry t;
      t.entry_name = name;
      if (const Json* c = tel->find("counters")) {
        for (const auto& [key, v] : c->items()) t.counters[key] = v.as_int();
      }
      if (const Json* g = tel->find("gauges")) {
        for (const auto& [key, v] : g->items()) t.gauges[key] = v.as_int();
      }
      if (const Json* h = tel->find("histograms")) {
        for (const auto& [key, v] : h->items()) {
          t.histograms.emplace(key, obs::Histogram::from_json(v));
        }
      }
      return t;
    }
  } catch (const std::exception& ex) {
    std::cerr << "metrics_report: " << path << ": " << ex.what() << '\n';
    return std::nullopt;
  }
  std::cerr << "metrics_report: " << path << ": no telemetry section"
            << (entry_name.empty() ? std::string()
                                   : " in entry \"" + entry_name + "\"")
            << " (run the bench with --metrics or ACCRED_METRICS=1)\n";
  return std::nullopt;
}

/// Histogram statistic by name: pNN, mean, or max (value units).
double stat_of(const obs::Histogram& h, const std::string& stat) {
  if (stat == "mean") return h.mean();
  if (stat == "max") {
    return h.scale() > 0 ? static_cast<double>(h.max_units()) / h.scale() : 0;
  }
  if (stat.size() >= 2 && stat[0] == 'p') {
    const double q = std::stod(stat.substr(1)) / 100.0;
    return h.percentile(q);
  }
  throw std::runtime_error("metrics_report: unknown statistic \"" + stat +
                           "\" (expected pNN, mean, or max)");
}

struct Slo {
  std::string metric;
  std::string stat;
  double bound = 0;
};

/// Parse "HIST:STAT<=BOUND,..." (metric names never contain ':').
std::vector<Slo> parse_slos(const std::string& spec) {
  std::vector<Slo> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string part =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (part.empty()) continue;
    const std::size_t colon = part.rfind(':');
    const std::size_t le = part.find("<=");
    if (colon == std::string::npos || le == std::string::npos || le < colon) {
      throw std::runtime_error("metrics_report: bad SLO \"" + part +
                               "\" (expected HIST:STAT<=BOUND)");
    }
    Slo s;
    s.metric = part.substr(0, colon);
    s.stat = part.substr(colon + 1, le - colon - 1);
    s.bound = std::stod(part.substr(le + 2));
    out.push_back(std::move(s));
  }
  return out;
}

/// Check every SLO against `t`; prints one PASS/FAIL line each.
/// Returns false on any breach (or on a missing histogram).
bool check_slos(const Telemetry& t, const std::vector<Slo>& slos) {
  bool ok = true;
  for (const Slo& s : slos) {
    const auto it = t.histograms.find(s.metric);
    if (it == t.histograms.end()) {
      std::cout << "SLO FAIL  " << s.metric << ":" << s.stat
                << " — histogram not in telemetry\n";
      ok = false;
      continue;
    }
    const double v = stat_of(it->second, s.stat);
    const bool pass = v <= s.bound;
    std::cout << "SLO " << (pass ? "PASS" : "FAIL") << "  " << s.metric << ":"
              << s.stat << " = " << v << " (bound " << s.bound << ")\n";
    ok = ok && pass;
  }
  return ok;
}

/// ASCII bar chart over the nonzero buckets: one row per bucket,
/// [lower, next-lower) edges in value units, bar scaled to the modal count.
void render_histogram(const std::string& name, const obs::Histogram& h) {
  constexpr int kBarWidth = 40;
  const auto buckets = h.nonzero_buckets();
  std::cout << name << "  (count " << h.count() << ", mean " << h.mean()
            << ", p50 " << h.percentile(0.50) << ", p99 " << h.percentile(0.99)
            << ")\n";
  if (buckets.empty()) return;
  std::uint64_t peak = 0;
  for (const auto& [idx, n] : buckets) peak = std::max(peak, n);
  for (const auto& [idx, n] : buckets) {
    const double lo =
        static_cast<double>(obs::Histogram::bucket_lower_bound(idx)) /
        h.scale();
    const double hi =
        idx + 1 < obs::Histogram::kBuckets
            ? static_cast<double>(obs::Histogram::bucket_lower_bound(idx + 1)) /
                  h.scale()
            : std::numeric_limits<double>::infinity();
    const int bar = std::max<int>(
        1, static_cast<int>(kBarWidth * n / peak));
    std::cout << "  [" << std::setw(11) << lo << ", " << std::setw(11) << hi
              << ")  " << std::string(static_cast<std::size_t>(bar), '#')
              << ' ' << n << '\n';
  }
}

/// Tenant names appearing as "tenant/<name>/..." histogram keys.
std::vector<std::string> tenant_names(const Telemetry& t) {
  std::vector<std::string> out;
  for (const auto& [key, h] : t.histograms) {
    (void)h;
    if (!key.starts_with("tenant/")) continue;
    const std::size_t slash = key.find('/', 7);
    if (slash == std::string::npos) continue;
    const std::string name = key.substr(7, slash - 7);
    if (out.empty() || out.back() != name) out.push_back(name);
  }
  return out;
}

const obs::Histogram* find_hist(const Telemetry& t, const std::string& name) {
  const auto it = t.histograms.find(name);
  return it == t.histograms.end() ? nullptr : &it->second;
}

void report(const Telemetry& t, bool all_histograms) {
  std::cout << "== telemetry: entry \"" << t.entry_name << "\" ==\n";
  if (!t.counters.empty()) {
    std::cout << "counters:\n";
    for (const auto& [key, v] : t.counters) {
      std::cout << "  " << std::left << std::setw(32) << key << std::right
                << std::setw(10) << v << '\n';
    }
  }
  if (!t.gauges.empty()) {
    std::cout << "gauges:\n";
    for (const auto& [key, v] : t.gauges) {
      std::cout << "  " << std::left << std::setw(32) << key << std::right
                << std::setw(10) << v << '\n';
    }
  }

  const std::vector<std::string> tenants = tenant_names(t);
  if (!tenants.empty()) {
    std::cout << "per-tenant latency (virtual timeline, ms):\n"
              << "  " << std::left << std::setw(12) << "tenant" << std::right
              << std::setw(8) << "jobs" << std::setw(12) << "wait_p50"
              << std::setw(12) << "e2e_p50" << std::setw(12) << "e2e_p99"
              << std::setw(12) << "device_p50" << '\n';
    for (const std::string& name : tenants) {
      const obs::Histogram* wait =
          find_hist(t, "tenant/" + name + "/queue_wait_ms");
      const obs::Histogram* e2e = find_hist(t, "tenant/" + name + "/e2e_ms");
      const obs::Histogram* dev =
          find_hist(t, "tenant/" + name + "/device_ms");
      std::cout << "  " << std::left << std::setw(12) << name << std::right
                << std::setw(8) << (e2e ? e2e->count() : 0) << std::setw(12)
                << (wait ? wait->percentile(0.50) : 0) << std::setw(12)
                << (e2e ? e2e->percentile(0.50) : 0) << std::setw(12)
                << (e2e ? e2e->percentile(0.99) : 0) << std::setw(12)
                << (dev ? dev->percentile(0.50) : 0) << '\n';
    }
  }

  std::cout << "histograms:\n";
  for (const auto& [key, h] : t.histograms) {
    if (!all_histograms && !key.starts_with("service/")) continue;
    render_histogram(key, h);
  }
}

int compare(const Telemetry& base, const Telemetry& cur) {
  std::cout << "== telemetry compare: entry \"" << cur.entry_name
            << "\" (informational) ==\n";
  std::cout << std::left << std::setw(32) << "counter" << std::right
            << std::setw(12) << "base" << std::setw(12) << "cur"
            << std::setw(10) << "delta" << '\n';
  for (const auto& [key, bv] : base.counters) {
    const auto it = cur.counters.find(key);
    if (it == cur.counters.end()) continue;
    std::cout << std::left << std::setw(32) << key << std::right
              << std::setw(12) << bv << std::setw(12) << it->second
              << std::setw(10) << it->second - bv << '\n';
  }
  std::cout << std::left << std::setw(32) << "histogram p50/p99" << std::right
            << std::setw(12) << "base_p50" << std::setw(12) << "cur_p50"
            << std::setw(12) << "base_p99" << std::setw(12) << "cur_p99"
            << '\n';
  for (const auto& [key, bh] : base.histograms) {
    const auto it = cur.histograms.find(key);
    if (it == cur.histograms.end()) continue;
    std::cout << std::left << std::setw(32) << key << std::right
              << std::setw(12) << bh.percentile(0.50) << std::setw(12)
              << it->second.percentile(0.50) << std::setw(12)
              << bh.percentile(0.99) << std::setw(12)
              << it->second.percentile(0.99) << '\n';
  }
  return 0;
}

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"compare", "histograms", "help"});
  const std::string entry = cli.get("entry", "");
  const std::string slo_spec = cli.get("slo", "");
  const bool is_compare = cli.has("compare");
  const std::size_t want = is_compare ? 2 : 1;
  if (cli.has("help") || cli.positional().size() != want) {
    std::cerr << "usage: metrics_report RECORD.json [--entry NAME] "
                 "[--histograms] [--slo \"HIST:STAT<=BOUND,...\"]\n"
                 "       metrics_report --compare BASELINE.json CURRENT.json "
                 "[--entry NAME]\n";
    return 2;
  }

  std::vector<Slo> slos;
  try {
    slos = parse_slos(slo_spec);
  } catch (const std::exception& ex) {
    std::cerr << ex.what() << '\n';
    return 2;
  }

  if (is_compare) {
    const std::optional<obs::Json> base = load_record(cli.positional()[0]);
    const std::optional<obs::Json> cur = load_record(cli.positional()[1]);
    if (!base || !cur) return 2;
    const std::optional<Telemetry> bt =
        extract(*base, entry, cli.positional()[0]);
    const std::optional<Telemetry> ct =
        extract(*cur, entry, cli.positional()[1]);
    if (!bt || !ct) return 2;
    compare(*bt, *ct);
    return check_slos(*ct, slos) ? 0 : 1;
  }

  const std::optional<obs::Json> record = load_record(cli.positional()[0]);
  if (!record) return 2;
  const std::optional<Telemetry> t =
      extract(*record, entry, cli.positional()[0]);
  if (!t) return 2;
  report(*t, cli.has("histograms"));
  return check_slos(*t, slos) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
