// chaos_report — renders (and gates on) the chaos-campaign record produced
// by bench/service_chaos --json.
//
//   chaos_report RECORD.json
//
// Verdicts (CI gate semantics — "100% structured resolution, breakers on
// schedule, clean tenants untouched"):
//   * liveness     every service drained (undrained == 0 everywhere)
//   * schedule     every metric in the record's "expect" entry equals the
//                  same-named metric of the "chaos" entry — breaker opens,
//                  fast-fails, cancellations, deadline expiries, structured
//                  failures all land exactly as the campaign scripted them
//   * accounting   submitted == admitted + rejections, and every admitted
//                  job resolved to exactly one terminal status (no job
//                  vanished, none double-counted)
//   * shedding     the overload phase shed at least its scheduled minimum,
//                  and its books balance (admitted == completed + shed)
//   * isolation    the chaos run's clean-tenant checksum is bit-identical
//                  to the no-chaos baseline replay's
//
// Exit codes:
//   0 = all verdicts pass
//   1 = at least one verdict failed
//   2 = unreadable/malformed input or a missing section (a campaign that
//       cannot be judged must fail the gate, not pass it), or bad usage.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/main_guard.hpp"

namespace {

using namespace accred;

struct Verdicts {
  std::vector<std::string> failures;

  void check(bool ok, const std::string& what) {
    std::cout << (ok ? "  ok    " : "  FAIL  ") << what << '\n';
    if (!ok) failures.push_back(what);
  }
};

const obs::Json* find_entry(const obs::Json& record, const std::string& name) {
  for (const obs::Json& e : record.at("entries").elements()) {
    if (e.at("name").as_string() == name) return &e;
  }
  return nullptr;
}

/// A metric from an entry's "metrics" object; NaN when absent.
double metric(const obs::Json& entry, const std::string& name) {
  if (const obs::Json* metrics = entry.find("metrics")) {
    if (const obs::Json* m = metrics->find(name)) return m->as_double();
  }
  return std::nan("");
}

std::string attr(const obs::Json& entry, const std::string& name) {
  if (const obs::Json* attrs = entry.find("attrs")) {
    if (const obs::Json* a = attrs->find(name)) return a->as_string();
  }
  return "";
}

void usage() { std::cerr << "usage: chaos_report RECORD.json\n"; }

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"help"});
  if (cli.has("help") || cli.positional().size() != 1) {
    usage();
    return 2;
  }
  const std::string path = cli.positional()[0];
  std::ifstream in(path);
  if (!in) {
    std::cerr << "chaos_report: cannot read " << path << '\n';
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  obs::Json record;
  try {
    record = obs::Json::parse(buf.str());
    if (const obs::Json* schema = record.find("schema");
        schema == nullptr || schema->as_string() != obs::kBenchSchema) {
      std::cerr << "chaos_report: " << path << " is not an "
                << obs::kBenchSchema << " record\n";
      return 2;
    }
  } catch (const std::exception& ex) {
    std::cerr << "chaos_report: " << path << ": " << ex.what() << '\n';
    return 2;
  }

  const obs::Json* chaos = find_entry(record, "chaos");
  const obs::Json* expect = find_entry(record, "expect");
  const obs::Json* shed = find_entry(record, "shed");
  const obs::Json* baseline = find_entry(record, "baseline");
  if (chaos == nullptr || expect == nullptr || shed == nullptr ||
      baseline == nullptr) {
    std::cerr << "chaos_report: record is missing a campaign section "
                 "(need chaos, expect, shed, baseline entries)\n";
    return 2;
  }

  Verdicts v;
  try {
    std::cout << "== chaos schedule ==\n";
    const obs::Json* expected = expect->find("metrics");
    if (expected == nullptr || expected->items().empty()) {
      std::cerr << "chaos_report: expect entry carries no metrics\n";
      return 2;
    }
    for (const auto& [name, want] : expected->items()) {
      const double got = metric(*chaos, name);
      std::ostringstream os;
      os << "chaos/" << name << " == " << want.as_double() << " (got "
         << got << ")";
      v.check(got == want.as_double(), os.str());
    }

    std::cout << "== accounting ==\n";
    const double submitted = metric(*chaos, "submitted");
    const double admitted = metric(*chaos, "admitted");
    const double rejected = metric(*chaos, "rejected_total");
    const double resolved =
        metric(*chaos, "completed") + metric(*chaos, "failed") +
        metric(*chaos, "cancelled") + metric(*chaos, "deadline_exceeded") +
        metric(*chaos, "shed");
    v.check(submitted == admitted + rejected,
            "submitted == admitted + rejections");
    v.check(admitted == resolved,
            "every admitted job resolved to one terminal status");

    std::cout << "== shedding ==\n";
    const double shed_total = metric(*shed, "shed");
    const double shed_min = metric(*shed, "shed_min");
    {
      std::ostringstream os;
      os << "shed " << shed_total << " >= scheduled minimum " << shed_min;
      v.check(shed_total >= shed_min && shed_min > 0, os.str());
    }
    v.check(metric(*shed, "admitted") ==
                metric(*shed, "completed") + shed_total,
            "shed-phase books balance (admitted == completed + shed)");
    v.check(metric(*shed, "undrained") == 0, "shed service drained");
    v.check(metric(*chaos, "undrained") == 0, "chaos service drained");
    v.check(metric(*baseline, "undrained") == 0, "baseline service drained");

    std::cout << "== isolation ==\n";
    const std::string chaos_sum = attr(*chaos, "clean_checksum");
    const std::string base_sum = attr(*baseline, "clean_checksum");
    if (chaos_sum.empty() || base_sum.empty()) {
      std::cerr << "chaos_report: missing clean_checksum attr\n";
      return 2;
    }
    v.check(chaos_sum == base_sum,
            "clean-tenant checksum " + chaos_sum + " == baseline " + base_sum);
  } catch (const std::exception& ex) {
    std::cerr << "chaos_report: " << path << ": " << ex.what() << '\n';
    return 2;
  }

  if (v.failures.empty()) {
    std::cout << "== chaos campaign: all verdicts pass ==\n";
    return 0;
  }
  std::cout << "== chaos campaign: " << v.failures.size()
            << " verdict(s) FAILED ==\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
