// fault_report — renders (and gates on) the fault-injection sections of
// accred.bench JSON records produced by running a bench with --faults /
// ACCRED_FAULTS.
//
//   fault_report RECORD.json [--entry NAME]
//       For every entry that ran with faults armed (or just NAME): the
//       fired FaultEvents (kind, block, warp, stage, detail), the
//       structured launch error if one surfaced, and the per-entry verdict.
//
// Verdict per fault-armed entry with at least one fired fault:
//   recovered   the run re-verified after retry/degradation ("recovered"
//               attr from the testsuite runner)
//   surfaced    a structured error is in the record (stats.error), or the
//               entry is explicitly flagged unverified (verified == "NO")
//   UNDETECTED  the fault fired yet the entry claims a clean first-attempt
//               pass — silent corruption escaped the guards
//
// Exit codes (CI gate semantics — "100% of injected faults detected or
// recovered"):
//   0 = every fired fault was recovered or surfaced
//   1 = at least one fired fault was neither (UNDETECTED)
//   2 = unreadable/malformed input, no fault-armed entries, or nothing
//       fired at all (an injection campaign that injected nothing must
//       fail a gate, not pass it), or bad usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"

namespace {

using namespace accred;

struct FaultedEntry {
  std::string name;
  std::vector<std::string> events;  ///< pre-rendered fired faults
  std::string error;                ///< rendered stats.error ("" = none)
  bool injected_error = false;      ///< the error itself was injected
  bool recovered = false;
  bool flagged_unverified = false;  ///< verified == "NO" in the record
};

std::string render_block(const obs::Json& b) {
  std::ostringstream os;
  os << '(' << b.elements()[0].as_int() << ',' << b.elements()[1].as_int()
     << ',' << b.elements()[2].as_int() << ')';
  return os.str();
}

std::string render_event(const obs::Json& e) {
  std::ostringstream os;
  os << e.at("kind").as_string() << " block" << render_block(e.at("block"))
     << " warp " << e.at("warp").as_int();
  if (const obs::Json* stage = e.find("stage")) {
    os << " [" << stage->as_string() << ']';
  }
  os << ": " << e.at("detail").as_string();
  return os.str();
}

std::string render_error(const obs::Json& err) {
  std::ostringstream os;
  os << err.at("code").as_string() << ": " << err.at("message").as_string();
  if (const obs::Json* b = err.find("block")) {
    os << " @ block" << render_block(*b) << " warp "
       << err.at("warp").as_int();
  }
  return os.str();
}

/// Pull every entry whose stats carry a "faults" block (i.e. the run was
/// fault-armed). Returns false on IO/parse/schema problems.
bool load_entries(const std::string& path, std::vector<FaultedEntry>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fault_report: cannot read " << path << '\n';
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const obs::Json j = obs::Json::parse(buf.str());
    if (const obs::Json* schema = j.find("schema");
        schema == nullptr || schema->as_string() != obs::kBenchSchema) {
      std::cerr << "fault_report: " << path << " is not an "
                << obs::kBenchSchema << " record\n";
      return false;
    }
    for (const obs::Json& e : j.at("entries").elements()) {
      const obs::Json* stats = e.find("stats");
      if (stats == nullptr) continue;
      const obs::Json* faults = stats->find("faults");
      if (faults == nullptr) continue;  // entry ran without injection
      FaultedEntry fe;
      fe.name = e.at("name").as_string();
      for (const obs::Json& ev : faults->at("events").elements()) {
        fe.events.push_back(render_event(ev));
      }
      if (const obs::Json* err = stats->find("error")) {
        fe.error = render_error(*err);
        if (const obs::Json* inj = err->find("injected")) {
          fe.injected_error = inj->as_bool();
        }
      }
      if (const obs::Json* attrs = e.find("attrs")) {
        if (const obs::Json* r = attrs->find("recovered")) {
          fe.recovered = r->as_string() == "yes";
        }
        if (const obs::Json* v = attrs->find("verified")) {
          fe.flagged_unverified = v->as_string() != "yes";
        }
      }
      out.push_back(std::move(fe));
    }
  } catch (const std::exception& ex) {
    std::cerr << "fault_report: " << path << ": " << ex.what() << '\n';
    return false;
  }
  return true;
}

void usage() { std::cerr << "usage: fault_report RECORD.json [--entry NAME]\n"; }

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"help"});
  if (cli.has("help") || cli.positional().size() != 1) {
    usage();
    return 2;
  }

  std::vector<FaultedEntry> entries;
  if (!load_entries(cli.positional()[0], entries)) return 2;

  const std::string only = cli.get("entry", "");
  if (!only.empty()) {
    std::erase_if(entries,
                  [&](const FaultedEntry& e) { return e.name != only; });
  }
  if (entries.empty()) {
    std::cerr << "fault_report: no fault-armed entries"
              << (only.empty() ? "" : " named " + only)
              << " (run the bench with --faults or ACCRED_FAULTS)\n";
    return 2;
  }

  std::size_t fired = 0;
  std::size_t undetected = 0;
  for (const FaultedEntry& e : entries) {
    const bool any_fired = !e.events.empty() || e.injected_error;
    const char* verdict =
        !any_fired      ? "no fault fired"
        : e.recovered   ? "recovered"
        : !e.error.empty() || e.flagged_unverified ? "surfaced"
                                                   : "UNDETECTED";
    std::cout << e.name << ": " << e.events.size() << " fired fault(s) — "
              << verdict << '\n';
    for (const std::string& ev : e.events) std::cout << "    " << ev << '\n';
    if (!e.error.empty()) std::cout << "    error: " << e.error << '\n';
    if (any_fired) {
      fired += e.events.empty() ? 1 : e.events.size();
      if (!e.recovered && e.error.empty() && !e.flagged_unverified) {
        undetected += 1;
      }
    }
  }
  std::cout << "== " << entries.size() << " fault-armed entr"
            << (entries.size() == 1 ? "y" : "ies") << ", " << fired
            << " fired fault(s), " << undetected << " undetected ==\n";
  if (fired == 0) {
    std::cerr << "fault_report: faults were armed but none fired — the "
                 "campaign injected nothing\n";
    return 2;
  }
  return undetected > 0 ? 1 : 0;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
