// bench_diff — the CI regression gate over accred.bench JSON records.
//
//   bench_diff BASELINE.json CURRENT.json [--tolerance 25%] [--all]
//   bench_diff RECORD.json --list-metrics
//
// Joins entries by name and compares every deterministic metric (wall-
// clock metrics are informational and skipped; see obs/record.hpp for the
// naming conventions). Exit codes: 0 = within tolerance, 1 = regression,
// 2 = records not comparable (schema/version/bench mismatch, missing
// entry or metric, unreadable input) or bad usage. --list-metrics prints
// every metric of one record with its gating disposition (gated /
// informational / higher-is-better) and exits 0, or 2 on unreadable input.
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/diff.hpp"
#include "util/cli.hpp"

namespace {

int list_metrics(const std::string& path) {
  using namespace accred;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_diff: cannot read " << path << '\n';
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const obs::Json j = obs::Json::parse(buf.str());
    for (const obs::Json& e : j.at("entries").elements()) {
      const std::string& name = e.at("name").as_string();
      for (const auto& [key, value] : e.at("metrics").items()) {
        (void)value;
        const char* disposition =
            !obs::metric_is_gated(key)
                ? "informational (never gated)"
                : obs::metric_higher_is_better(key) ? "gated, higher is better"
                                                    : "gated, lower is better";
        std::cout << name << '\t' << key << '\t' << disposition << '\n';
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "bench_diff: " << path << ": " << ex.what() << '\n';
    return 2;
  }
  return 0;
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"list-metrics", "help", "all"});
  if (cli.has("list-metrics")) {
    if (cli.positional().size() != 1) {
      std::cerr << "usage: bench_diff RECORD.json --list-metrics\n";
      return 2;
    }
    return list_metrics(cli.positional()[0]);
  }
  if (cli.positional().size() != 2 || cli.has("help")) {
    std::cerr << "usage: bench_diff BASELINE.json CURRENT.json "
                 "[--tolerance 25%|0.25] [--all]\n"
                 "       bench_diff RECORD.json --list-metrics\n";
    return 2;
  }

  obs::DiffOptions opts;
  try {
    opts.tolerance = obs::parse_tolerance(cli.get("tolerance", "10%"));
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << '\n';
    return 2;
  }

  const obs::DiffReport report = obs::diff_files(
      cli.positional()[0], cli.positional()[1], opts);
  std::cout << "bench_diff: " << cli.positional()[1] << " vs baseline "
            << cli.positional()[0] << " (tolerance "
            << opts.tolerance * 100.0 << "%)\n";
  obs::print_diff(std::cout, report, cli.has("all"));
  return report.exit_code;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
