// bench_diff — the CI regression gate over accred.bench JSON records.
//
//   bench_diff BASELINE.json CURRENT.json [--tolerance 25%] [--all]
//   bench_diff BASELINE.json CURRENT.json --wall-report
//   bench_diff RECORD.json --list-metrics
//
// Joins entries by name and compares every deterministic metric (wall-
// clock metrics are informational and skipped; see obs/record.hpp for the
// naming conventions). Exit codes: 0 = within tolerance, 1 = regression,
// 2 = records not comparable (schema/version/bench mismatch, missing
// entry or metric, unreadable input) or bad usage. --list-metrics prints
// every metric of one record with its gating disposition (gated /
// informational / higher-is-better) and exits 0, or 2 on unreadable input.
// --wall-report prints the *ungated* wall-clock metrics of both records
// side by side (current/baseline speedup, plus each record's
// wall-to-device ratio where the entry carries device_time_ms) — the
// simulator-throughput view a perf PR cares about; never gates (exit 0,
// or 2 on unreadable input).
#include <exception>
#include <limits>
#include <optional>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>

#include "obs/diff.hpp"
#include "util/cli.hpp"

namespace {

int list_metrics(const std::string& path) {
  using namespace accred;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_diff: cannot read " << path << '\n';
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const obs::Json j = obs::Json::parse(buf.str());
    for (const obs::Json& e : j.at("entries").elements()) {
      const std::string& name = e.at("name").as_string();
      for (const auto& [key, value] : e.at("metrics").items()) {
        (void)value;
        const char* disposition =
            !obs::metric_is_gated(key)
                ? "informational (never gated)"
                : obs::metric_higher_is_better(key) ? "gated, higher is better"
                                                    : "gated, lower is better";
        std::cout << name << '\t' << key << '\t' << disposition << '\n';
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "bench_diff: " << path << ": " << ex.what() << '\n';
    return 2;
  }
  return 0;
}

/// Load and parse one record, or report and return nullopt.
std::optional<accred::obs::Json> load_record(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_diff: cannot read " << path << '\n';
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return accred::obs::Json::parse(buf.str());
  } catch (const std::exception& ex) {
    std::cerr << "bench_diff: " << path << ": " << ex.what() << '\n';
    return std::nullopt;
  }
}

/// The wall metrics of one entry: every "metrics" key containing "wall",
/// plus stats.wall_time_ms. Values in milliseconds ("..._ns" converted).
std::map<std::string, double> wall_metrics(const accred::obs::Json& entry) {
  using accred::obs::Json;
  std::map<std::string, double> out;
  if (const Json* metrics = entry.find("metrics")) {
    for (const auto& [key, value] : metrics->items()) {
      if (key.find("wall") == std::string::npos || !value.is_number()) continue;
      const bool ns = key.ends_with("_ns");
      if (!ns && !key.ends_with("_ms")) continue;  // times only, not rates
      out[ns ? key.substr(0, key.size() - 3) + "_ms" : key] =
          ns ? value.as_double() / 1e6 : value.as_double();
    }
  }
  if (const Json* stats = entry.find("stats")) {
    if (const Json* wall = stats->find("wall_time_ms"); wall != nullptr &&
                                                        wall->is_number()) {
      out["wall_time_ms"] = wall->as_double();
    }
  }
  return out;
}

/// stats.device_time_ms when present (the modeled device time the wall
/// clock is amortizing), else NaN.
double device_ms(const accred::obs::Json& entry) {
  if (const accred::obs::Json* stats = entry.find("stats")) {
    if (const accred::obs::Json* d = stats->find("device_time_ms");
        d != nullptr && d->is_number()) {
      return d->as_double();
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

int wall_report(const std::string& base_path, const std::string& cur_path) {
  using accred::obs::Json;
  const std::optional<Json> base = load_record(base_path);
  const std::optional<Json> cur = load_record(cur_path);
  if (!base || !cur) return 2;

  std::cout << "bench_diff --wall-report: " << cur_path << " vs baseline "
            << base_path << " (informational, never gates)\n";
  std::cout << std::left << std::setw(36) << "entry/metric" << std::right
            << std::setw(12) << "base_ms" << std::setw(12) << "cur_ms"
            << std::setw(10) << "speedup" << std::setw(12) << "base_w/d"
            << std::setw(12) << "cur_w/d" << '\n';
  try {
    std::map<std::string, const Json*> cur_by_name;
    for (const Json& e : cur->at("entries").elements()) {
      cur_by_name[e.at("name").as_string()] = &e;
    }
    for (const Json& be : base->at("entries").elements()) {
      const std::string& name = be.at("name").as_string();
      const auto it = cur_by_name.find(name);
      if (it == cur_by_name.end()) {
        std::cout << name << ": (missing from current)\n";
        continue;
      }
      const std::map<std::string, double> bw = wall_metrics(be);
      const std::map<std::string, double> cw = wall_metrics(*it->second);
      const double bdev = device_ms(be);
      const double cdev = device_ms(*it->second);
      for (const auto& [metric, bms] : bw) {
        const auto cit = cw.find(metric);
        if (cit == cw.end()) continue;
        const double cms = cit->second;
        std::cout << std::left << std::setw(36) << (name + " " + metric)
                  << std::right << std::fixed << std::setprecision(3)
                  << std::setw(12) << bms << std::setw(12) << cms
                  << std::setprecision(2) << std::setw(9)
                  << (cms > 0 ? bms / cms : 0.0) << 'x';
        // Wall-to-device ratio: how many wall milliseconds the simulator
        // spends per modeled device millisecond (lower = faster simulator).
        if (bdev > 0 && cdev > 0) {
          std::cout << std::setprecision(1) << std::setw(12) << bms / bdev
                    << std::setw(12) << cms / cdev;
        }
        std::cout << '\n';
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "bench_diff: " << ex.what() << '\n';
    return 2;
  }
  return 0;
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv,
                      {"list-metrics", "help", "all", "wall-report"});
  if (cli.has("list-metrics")) {
    if (cli.positional().size() != 1) {
      std::cerr << "usage: bench_diff RECORD.json --list-metrics\n";
      return 2;
    }
    return list_metrics(cli.positional()[0]);
  }
  if (cli.positional().size() != 2 || cli.has("help")) {
    std::cerr << "usage: bench_diff BASELINE.json CURRENT.json "
                 "[--tolerance 25%|0.25] [--all] [--wall-report]\n"
                 "       bench_diff RECORD.json --list-metrics\n";
    return 2;
  }
  if (cli.has("wall-report")) {
    return wall_report(cli.positional()[0], cli.positional()[1]);
  }

  obs::DiffOptions opts;
  try {
    opts.tolerance = obs::parse_tolerance(cli.get("tolerance", "10%"));
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << '\n';
    return 2;
  }

  const obs::DiffReport report = obs::diff_files(
      cli.positional()[0], cli.positional()[1], opts);
  std::cout << "bench_diff: " << cli.positional()[1] << " vs baseline "
            << cli.positional()[0] << " (tolerance "
            << opts.tolerance * 100.0 << "%)\n";
  obs::print_diff(std::cout, report, cli.has("all"));
  return report.exit_code;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
