// bench_diff — the CI regression gate over accred.bench JSON records.
//
//   bench_diff BASELINE.json CURRENT.json [--tolerance 25%] [--all]
//
// Joins entries by name and compares every deterministic metric (wall-
// clock metrics are informational and skipped; see obs/record.hpp for the
// naming conventions). Exit codes: 0 = within tolerance, 1 = regression,
// 2 = records not comparable (schema/version/bench mismatch, missing
// entry or metric, unreadable input) or bad usage.
#include <exception>
#include <iostream>

#include "obs/diff.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv);
  if (cli.positional().size() != 2 || cli.has("help")) {
    std::cerr << "usage: bench_diff BASELINE.json CURRENT.json "
                 "[--tolerance 25%|0.25] [--all]\n";
    return 2;
  }

  obs::DiffOptions opts;
  try {
    opts.tolerance = obs::parse_tolerance(cli.get("tolerance", "10%"));
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << '\n';
    return 2;
  }

  const obs::DiffReport report = obs::diff_files(
      cli.positional()[0], cli.positional()[1], opts);
  std::cout << "bench_diff: " << cli.positional()[1] << " vs baseline "
            << cli.positional()[0] << " (tolerance "
            << opts.tolerance * 100.0 << "%)\n";
  obs::print_diff(std::cout, report, cli.has("all"));
  return report.exit_code;
}
