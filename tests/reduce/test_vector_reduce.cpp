// Correctness and cost-shape tests for the vector-reduction strategies
// (§3.1.1: Fig. 5a, Fig. 6b vs 6c, global fallback, non-power-of-2 sizes).
#include "reduce/vector_reduce.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace accred::reduce {
namespace {

using test::OpTypeCase;

struct VectorCaseResult {
  bool ok = true;
  gpusim::LaunchStats stats;
};

/// Run a vector reduction over an NK x NJ x NI input and verify every
/// (k, j) instance against the CPU fold.
template <typename T>
VectorCaseResult run_case(acc::ReductionOp op, Nest3 n,
                          const acc::LaunchConfig& cfg,
                          const StrategyConfig& sc,
                          bool with_instance_init = false) {
  gpusim::Device dev;
  const auto count = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto host_in = test::make_input<T>(op, count);
  auto input = dev.alloc<T>(count);
  input.copy_from_host(host_in);
  auto out = dev.alloc<T>(static_cast<std::size_t>(n.nk * n.nj));
  auto in_view = input.view();
  auto out_view = out.view();

  Bindings<T> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(in_view, static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j, T r) {
    ctx.st(out_view, static_cast<std::size_t>(k * n.nj + j), r);
  };
  if (with_instance_init) {
    b.instance_init = [](std::int64_t k, std::int64_t j) {
      return static_cast<T>(k + j);
    };
  }

  auto res = run_vector_reduction<T>(dev, n, cfg, op, b, sc);
  EXPECT_FALSE(res.scalar.has_value());
  EXPECT_EQ(res.kernels, 1);

  VectorCaseResult out_res;
  out_res.stats = res.stats;
  acc::RuntimeOp<T> rop{op};
  for (std::int64_t k = 0; k < n.nk; ++k) {
    for (std::int64_t j = 0; j < n.nj; ++j) {
      std::span<const T> row(host_in.data() + (k * n.nj + j) * n.ni,
                             static_cast<std::size_t>(n.ni));
      T expect = test::cpu_fold<T>(op, row);
      if (with_instance_init) {
        expect = rop.apply(static_cast<T>(k + j), expect);
      }
      const T actual =
          out.host_span()[static_cast<std::size_t>(k * n.nj + j)];
      const bool match = testsuite::reduction_result_matches(
          expect, actual, static_cast<std::uint64_t>(n.ni));
      EXPECT_TRUE(match) << "k=" << k << " j=" << j << " expect=" << expect
                         << " actual=" << actual;
      out_res.ok = out_res.ok && match;
    }
  }
  return out_res;
}

acc::LaunchConfig small_cfg() {
  acc::LaunchConfig cfg;
  cfg.num_gangs = 4;
  cfg.num_workers = 4;
  cfg.vector_length = 32;
  return cfg;
}

class VectorReduceSweep : public ::testing::TestWithParam<OpTypeCase> {};

TEST_P(VectorReduceSweep, OpenUHLayoutMatchesCpu) {
  const auto [op, type] = GetParam();
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_case<T>(op, Nest3{3, 5, 517}, small_cfg(), StrategyConfig{});
  });
}

TEST_P(VectorReduceSweep, TransposedLayoutMatchesCpu) {
  const auto [op, type] = GetParam();
  StrategyConfig sc;
  sc.vector_layout = VectorLayout::kTransposed;
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_case<T>(op, Nest3{3, 5, 517}, small_cfg(), sc);
  });
}

INSTANTIATE_TEST_SUITE_P(AllOpsTypes, VectorReduceSweep,
                         ::testing::ValuesIn(test::all_op_type_cases()),
                         test::op_type_name);

TEST(VectorReduce, GlobalStagingMatchesCpu) {
  StrategyConfig sc;
  sc.staging = Staging::kGlobal;
  run_case<std::int64_t>(acc::ReductionOp::kSum, Nest3{3, 5, 517},
                         small_cfg(), sc);
  run_case<double>(acc::ReductionOp::kMax, Nest3{2, 3, 100}, small_cfg(), sc);
}

TEST(VectorReduce, BlockingAssignmentMatchesCpu) {
  StrategyConfig sc;
  sc.assignment = Assignment::kBlocking;
  run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{3, 5, 517},
                         small_cfg(), sc);
}

TEST(VectorReduce, InstanceInitFoldedIn) {
  run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{2, 3, 64}, small_cfg(),
                         StrategyConfig{}, /*with_instance_init=*/true);
  run_case<std::int32_t>(acc::ReductionOp::kMax, Nest3{2, 3, 64}, small_cfg(),
                         StrategyConfig{}, /*with_instance_init=*/true);
}

TEST(VectorReduce, EdgeExtents) {
  // Extents below, equal to, and straddling the vector length; single
  // element; extents that are not powers of two.
  for (std::int64_t ni : {1, 2, 31, 32, 33, 96, 127, 128, 129}) {
    run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{2, 2, ni},
                           small_cfg(), StrategyConfig{});
  }
}

TEST(VectorReduce, NonWarpMultipleVectorLength) {
  // §3.3: vector sizes that are not a multiple of 32 stay correct (the
  // warp tail is disabled automatically); performance is expected to
  // degrade, not correctness.
  acc::LaunchConfig cfg = small_cfg();
  cfg.vector_length = 48;
  run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{2, 3, 500}, cfg,
                         StrategyConfig{});
  cfg.vector_length = 96;
  run_case<std::int64_t>(acc::ReductionOp::kProd, Nest3{2, 3, 500}, cfg,
                         StrategyConfig{});
}

TEST(VectorReduce, TransposedLayoutPaysBankConflicts) {
  // The measurable claim behind Fig. 6: the transposed staging serializes
  // shared-memory banks; the row-contiguous layout does not.
  StrategyConfig row;
  StrategyConfig tr;
  tr.vector_layout = VectorLayout::kTransposed;
  acc::LaunchConfig cfg;
  cfg.num_gangs = 2;
  cfg.num_workers = 8;
  cfg.vector_length = 128;
  const auto row_res = run_case<float>(acc::ReductionOp::kSum,
                                       Nest3{2, 8, 1024}, cfg, row);
  const auto tr_res = run_case<float>(acc::ReductionOp::kSum,
                                      Nest3{2, 8, 1024}, cfg, tr);
  EXPECT_GT(gpusim::bank_conflict_factor(tr_res.stats),
            1.5 * gpusim::bank_conflict_factor(row_res.stats));
  EXPECT_GT(tr_res.stats.device_time_ns, row_res.stats.device_time_ns);
}

TEST(VectorReduce, WarpTailCutsBarriers) {
  StrategyConfig tail;
  StrategyConfig no_tail;
  no_tail.tree.unroll_last_warp = false;
  const auto with = run_case<int>(acc::ReductionOp::kSum, Nest3{2, 4, 512},
                                  small_cfg(), tail);
  const auto without = run_case<int>(acc::ReductionOp::kSum, Nest3{2, 4, 512},
                                     small_cfg(), no_tail);
  EXPECT_LT(with.stats.barriers, without.stats.barriers);
  EXPECT_GT(with.stats.syncwarps, 0u);
}

TEST(VectorReduce, InterleavedThreadTreeMatchesCpu) {
  StrategyConfig sc;
  sc.tree.addr = AddrMode::kInterleavedThreads;
  run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{2, 4, 300},
                         small_cfg(), sc);
}

TEST(VectorReduce, ParallelWorkTouchesEveryIteration) {
  gpusim::Device dev;
  const Nest3 n{2, 3, 50};
  const auto count = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto host_in = test::make_input<int>(acc::ReductionOp::kSum, count);
  auto input = dev.alloc<int>(count);
  input.copy_from_host(host_in);
  auto marks = dev.alloc<int>(count);
  marks.fill(0);
  auto out = dev.alloc<int>(static_cast<std::size_t>(n.nk * n.nj));
  auto in_view = input.view();
  auto marks_view = marks.view();
  auto out_view = out.view();

  Bindings<int> b;
  b.parallel_work = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                        std::int64_t j, std::int64_t i) {
    const auto idx = static_cast<std::size_t>((k * n.nj + j) * n.ni + i);
    ctx.st(marks_view, idx, ctx.ld(marks_view, idx) + 1);
  };
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(in_view, static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
               int r) {
    ctx.st(out_view, static_cast<std::size_t>(k * n.nj + j), r);
  };
  (void)run_vector_reduction<int>(dev, n, small_cfg(), acc::ReductionOp::kSum,
                                  b);
  for (int m : marks.host_span()) EXPECT_EQ(m, 1);
}

TEST(VectorReduce, CoalescedWindowBeatsBlockingOnSegments) {
  // §3.1.3: window sliding enables memory coalescing in the vector partial
  // phase; blocking assignment does not.
  StrategyConfig window;
  StrategyConfig blocking;
  blocking.assignment = Assignment::kBlocking;
  acc::LaunchConfig cfg = small_cfg();
  const auto win_res = run_case<float>(acc::ReductionOp::kSum,
                                       Nest3{2, 4, 4096}, cfg, window);
  const auto blk_res = run_case<float>(acc::ReductionOp::kSum,
                                       Nest3{2, 4, 4096}, cfg, blocking);
  EXPECT_LT(win_res.stats.gmem_segments, blk_res.stats.gmem_segments / 4);
  EXPECT_LT(win_res.stats.device_time_ns, blk_res.stats.device_time_ns);
}

}  // namespace
}  // namespace accred::reduce
