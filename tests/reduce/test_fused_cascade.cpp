// Fused cascade kernel (reduce/fused_cascade.hpp): the bit-identity
// contract — a fused producer→consumer chain must reproduce the unfused
// one-launch-per-stage sequence's per-level results BIT FOR BIT, for every
// execution knob that reorders host work ({fastpath on/off} x {sim_threads
// 1, 4}) — plus racecheck coverage and barrier-deletion mutants for the
// new payload (argmin/argmax) and segmented kernels.
#include "reduce/fused_cascade.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "reduce/argminmax.hpp"
#include "reduce/cascade.hpp"
#include "reduce/gang_reduce.hpp"
#include "reduce/segmented_reduce.hpp"
#include "reduce/vector_reduce.hpp"
#include "reduce/worker_reduce.hpp"
#include "test_support.hpp"

namespace accred::reduce {
namespace {

acc::LaunchConfig small_cfg() {
  acc::LaunchConfig cfg;
  cfg.num_gangs = 4;
  cfg.num_workers = 4;
  cfg.vector_length = 32;
  return cfg;
}

/// Per-level outputs of one full chain run (fused or unfused).
template <typename T>
struct ChainLevels {
  std::vector<T> vector_results;  ///< nk * nj per-(k, j) values
  std::vector<T> worker_results;  ///< nk per-k values
  T scalar{};
  int kernels = 0;
};

std::vector<acc::FusedStage> sum_chain3() {
  return {{acc::ReductionOp::kSum, acc::Par::kVector, "i_sum"},
          {acc::ReductionOp::kSum, acc::Par::kWorker, "j_sum"},
          {acc::ReductionOp::kSum, acc::Par::kGang, "sum"}};
}

/// The unfused reference: one launch per stage, intermediates in global
/// memory — exactly what the planner emits without the fusion pass.
template <typename T>
ChainLevels<T> run_unfused(const Nest3& n, std::span<const T> host,
                           const StrategyConfig& sc) {
  gpusim::Device dev;
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto input = dev.alloc<T>(volume);
  input.copy_from_host(host);
  auto iv = input.view();
  auto vec_out = dev.alloc<T>(static_cast<std::size_t>(n.nk * n.nj));
  auto wrk_out = dev.alloc<T>(static_cast<std::size_t>(n.nk));
  auto vec_view = vec_out.view();
  auto wrk_view = wrk_out.view();
  const auto [nk, nj, ni] = n;

  Bindings<T> vb;
  vb.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                   std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * nj + j) * ni + i));
  };
  vb.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                T r) {
    ctx.st(vec_view, static_cast<std::size_t>(k * nj + j), r);
  };
  auto s1 = run_vector_reduction<T>(dev, n, small_cfg(),
                                    acc::ReductionOp::kSum, vb, sc);

  Bindings<T> wb;
  wb.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                   std::int64_t) {
    return ctx.ld(vec_view, static_cast<std::size_t>(k * nj + j));
  };
  wb.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t, T r) {
    ctx.st(wrk_view, static_cast<std::size_t>(k), r);
  };
  auto s2 = run_worker_reduction<T>(dev, n, small_cfg(),
                                    acc::ReductionOp::kSum, wb, sc);

  Bindings<T> gb;
  gb.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t,
                   std::int64_t) {
    return ctx.ld(wrk_view, static_cast<std::size_t>(k));
  };
  auto s3 = run_gang_reduction<T>(dev, n, small_cfg(),
                                  acc::ReductionOp::kSum, gb, sc);

  ChainLevels<T> out;
  const auto vs = vec_out.host_span();
  const auto ws = wrk_out.host_span();
  out.vector_results.assign(vs.begin(), vs.end());
  out.worker_results.assign(ws.begin(), ws.end());
  out.scalar = *s3.scalar;
  out.kernels = s1.kernels + s2.kernels + s3.kernels;
  return out;
}

/// The fused run, capturing every level through the sinks.
template <typename T>
ChainLevels<T> run_fused(const Nest3& n, std::span<const T> host,
                         const StrategyConfig& sc) {
  gpusim::Device dev;
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto input = dev.alloc<T>(volume);
  input.copy_from_host(host);
  auto iv = input.view();
  auto vec_out = dev.alloc<T>(static_cast<std::size_t>(n.nk * n.nj));
  auto wrk_out = dev.alloc<T>(static_cast<std::size_t>(n.nk));
  auto vec_view = vec_out.view();
  auto wrk_view = wrk_out.view();
  const auto [nk, nj, ni] = n;

  FusedChainBindings<T> fb;
  fb.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                   std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * nj + j) * ni + i));
  };
  fb.vector_sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                       std::int64_t j, T r) {
    ctx.st(vec_view, static_cast<std::size_t>(k * nj + j), r);
  };
  fb.worker_sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, T r) {
    ctx.st(wrk_view, static_cast<std::size_t>(k), r);
  };
  auto res = run_fused_chain<T>(dev, sum_chain3(), n, small_cfg(), fb, sc);

  ChainLevels<T> out;
  const auto vs = vec_out.host_span();
  const auto ws = wrk_out.host_span();
  out.vector_results.assign(vs.begin(), vs.end());
  out.worker_results.assign(ws.begin(), ws.end());
  out.scalar = *res.scalar;
  out.kernels = res.kernels;
  return out;
}

TEST(FusedCascade, PerLevelBitIdenticalToUnfusedAcrossExecutionKnobs) {
  // Floating sums are fold-order sensitive, so == on doubles IS the
  // bit-identity check: any window/staging/tree divergence between the
  // fused kernel and the stage kernels shows up here.
  const Nest3 n{7, 9, 100};
  const auto host = test::make_input<double>(
      acc::ReductionOp::kSum, static_cast<std::size_t>(n.nk * n.nj * n.ni));
  for (const bool fastpath : {true, false}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      StrategyConfig sc;
      sc.sim.fastpath = fastpath;
      sc.sim.sim_threads = threads;
      const ChainLevels<double> unfused = run_unfused<double>(n, host, sc);
      const ChainLevels<double> fused = run_fused<double>(n, host, sc);
      const std::string what = "fastpath=" + std::to_string(fastpath) +
                               " sim_threads=" + std::to_string(threads);
      EXPECT_EQ(unfused.kernels, 4) << what;
      EXPECT_EQ(fused.kernels, 2) << what << ": one chain kernel + finalize";
      ASSERT_EQ(fused.vector_results.size(), unfused.vector_results.size());
      for (std::size_t s = 0; s < fused.vector_results.size(); ++s) {
        ASSERT_EQ(fused.vector_results[s], unfused.vector_results[s])
            << what << ": vector level diverged at instance " << s;
      }
      for (std::size_t s = 0; s < fused.worker_results.size(); ++s) {
        ASSERT_EQ(fused.worker_results[s], unfused.worker_results[s])
            << what << ": worker level diverged at k " << s;
      }
      EXPECT_EQ(fused.scalar, unfused.scalar) << what;
    }
  }
}

TEST(FusedCascade, MatchesHandWrittenCascadeWithInitsBitForBit) {
  // The generalization claim: the planner-emitted fused kernel subsumes
  // reduce/cascade.hpp including per-instance initial values and the
  // incoming host value of the outermost variable.
  const Nest3 n{5, 6, 64};
  gpusim::Device dev;
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  const auto host = test::make_input<double>(acc::ReductionOp::kSum, volume);
  auto input = dev.alloc<double>(volume);
  input.copy_from_host(host);
  auto iv = input.view();
  const auto [nk, nj, ni] = n;
  const auto contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                           std::int64_t j, std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * nj + j) * ni + i));
  };

  CascadeBindings<double> cb;
  cb.contrib = contrib;
  cb.vector_init = [](std::int64_t, std::int64_t j) {
    return static_cast<double>(j);
  };
  cb.worker_init = [](std::int64_t k) { return static_cast<double>(k); };
  cb.gang_init = 5.0;
  cb.gang_init_set = true;
  auto ref = run_cascaded_reduction<double>(
      dev, n, small_cfg(),
      CascadeOps{acc::ReductionOp::kSum, acc::ReductionOp::kSum,
                 acc::ReductionOp::kSum},
      cb);

  FusedChainBindings<double> fb;
  fb.contrib = contrib;
  fb.vector_init = cb.vector_init;
  fb.worker_init = cb.worker_init;
  fb.host_init = 5.0;
  fb.host_init_set = true;
  auto fused =
      run_fused_chain<double>(dev, sum_chain3(), n, small_cfg(), fb, {});

  ASSERT_TRUE(ref.scalar.has_value());
  ASSERT_TRUE(fused.scalar.has_value());
  EXPECT_EQ(*fused.scalar, *ref.scalar);
}

TEST(FusedCascade, TwoStageChainsAndMixedOperators) {
  const Nest3 n{6, 5, 77};
  gpusim::Device dev;
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  const auto host = test::make_input<std::int64_t>(acc::ReductionOp::kSum,
                                                   volume);
  auto input = dev.alloc<std::int64_t>(volume);
  input.copy_from_host(host);
  auto iv = input.view();
  const auto [nk, nj, ni] = n;
  const auto contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                           std::int64_t j, std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * nj + j) * ni + i));
  };

  // [vector, worker]: per-k results leave through the worker sink.
  {
    auto out = dev.alloc<std::int64_t>(static_cast<std::size_t>(nk));
    auto ov = out.view();
    FusedChainBindings<std::int64_t> fb;
    fb.contrib = contrib;
    fb.worker_sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                         std::int64_t r) {
      ctx.st(ov, static_cast<std::size_t>(k), r);
    };
    const std::vector<acc::FusedStage> chain = {
        {acc::ReductionOp::kMin, acc::Par::kVector, "i_min"},
        {acc::ReductionOp::kMax, acc::Par::kWorker, "j_max"}};
    auto res =
        run_fused_chain<std::int64_t>(dev, chain, n, small_cfg(), fb, {});
    EXPECT_FALSE(res.scalar.has_value());
    EXPECT_EQ(res.kernels, 1);
    for (std::int64_t k = 0; k < nk; ++k) {
      std::int64_t expect = std::numeric_limits<std::int64_t>::lowest();
      for (std::int64_t j = 0; j < nj; ++j) {
        std::int64_t row = std::numeric_limits<std::int64_t>::max();
        for (std::int64_t i = 0; i < ni; ++i) {
          row = std::min(
              row,
              host[static_cast<std::size_t>((k * nj + j) * ni + i)]);
        }
        expect = std::max(expect, row);
      }
      EXPECT_EQ(out.host_span()[static_cast<std::size_t>(k)], expect)
          << "k=" << k;
    }
  }

  // [worker, gang]: no vector stage; contrib sees i = -1.
  {
    FusedChainBindings<std::int64_t> fb;
    fb.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                     std::int64_t) {
      return ctx.ld(iv, static_cast<std::size_t>(k * nj + j));
    };
    const std::vector<acc::FusedStage> chain = {
        {acc::ReductionOp::kSum, acc::Par::kWorker, "j_sum"},
        {acc::ReductionOp::kMax, acc::Par::kGang, "best"}};
    auto res =
        run_fused_chain<std::int64_t>(dev, chain, n, small_cfg(), fb, {});
    ASSERT_TRUE(res.scalar.has_value());
    EXPECT_EQ(res.kernels, 2) << "gang-terminated: kernel + finalize";
    std::int64_t expect = std::numeric_limits<std::int64_t>::lowest();
    for (std::int64_t k = 0; k < nk; ++k) {
      std::int64_t row = 0;
      for (std::int64_t j = 0; j < nj; ++j) {
        row += host[static_cast<std::size_t>(k * nj + j)];
      }
      expect = std::max(expect, row);
    }
    EXPECT_EQ(*res.scalar, expect);
  }
}

TEST(FusedCascade, RejectsUnsupportedChains) {
  gpusim::Device dev;
  FusedChainBindings<int> fb;
  fb.contrib = [](gpusim::ThreadCtx&, std::int64_t, std::int64_t,
                  std::int64_t) { return 1; };
  const Nest3 n{2, 2, 4};
  const std::vector<std::vector<acc::FusedStage>> bad_chains = {
      {},
      {{acc::ReductionOp::kSum, acc::Par::kVector, "v"}},
      {{acc::ReductionOp::kSum, acc::Par::kVector, "v"},
       {acc::ReductionOp::kSum, acc::Par::kGang, "g"}},
      {{acc::ReductionOp::kSum, acc::Par::kGang, "g"},
       {acc::ReductionOp::kSum, acc::Par::kWorker, "w"}}};
  for (const std::vector<acc::FusedStage>& bad : bad_chains) {
    EXPECT_THROW(
        (void)run_fused_chain<int>(dev, bad, n, small_cfg(), fb, {}),
        std::invalid_argument)
        << bad.size() << " stages";
  }
}

// ---- racecheck: the new kernels are race-free as shipped --------------

gpusim::SimOptions rc_opts() {
  gpusim::SimOptions o;
  o.racecheck = true;
  o.sim_threads = 1;
  return o;
}

TEST(FusedCascade, FusedChainKernelIsRaceFree) {
  const Nest3 n{5, 6, 64};
  gpusim::Device dev;
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto input = dev.alloc<double>(volume);
  input.fill(1.0);
  auto iv = input.view();
  const auto [nk, nj, ni] = n;
  FusedChainBindings<double> fb;
  fb.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                   std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * nj + j) * ni + i));
  };
  StrategyConfig sc;
  sc.sim = rc_opts();
  auto res = run_fused_chain<double>(dev, sum_chain3(), n, small_cfg(), fb,
                                     sc);
  EXPECT_EQ(res.stats.races, 0u);
  EXPECT_EQ(*res.scalar, static_cast<double>(volume));
}

TEST(FusedCascade, ArgAndSegmentedKernelsAreRaceFree) {
  gpusim::Device dev;
  constexpr std::int64_t kN = 4096;
  auto input = dev.alloc<double>(kN);
  {
    auto host = input.host_span();
    for (std::int64_t i = 0; i < kN; ++i) {
      host[static_cast<std::size_t>(i)] =
          static_cast<double>((i * 37) % 1001);
    }
  }
  auto iv = input.view();
  StrategyConfig sc;
  sc.sim = rc_opts();

  auto arg = run_arg_reduction<double>(
      dev, kN, small_cfg(), /*want_min=*/false,
      [=](gpusim::ThreadCtx& ctx, std::int64_t i) {
        return ctx.ld(iv, static_cast<std::size_t>(i));
      },
      sc);
  EXPECT_EQ(arg.stats.races, 0u);

  auto seg = run_segmented_reduction<double>(
      dev, kN, 16, small_cfg(), acc::ReductionOp::kSum,
      [](std::int64_t i) { return static_cast<std::size_t>(i % 16); },
      [=](gpusim::ThreadCtx& ctx, std::int64_t i) {
        return ctx.ld(iv, static_cast<std::size_t>(i));
      },
      sc);
  EXPECT_EQ(seg.stats.races, 0u);
}

// ---- barrier-deletion mutants for the new kernel shapes ---------------
//
// Test-local kernels mirror the payload (argmax) staging + tree and the
// segmented per-block fold with exactly one barrier deleted: the race
// detector must catch each deletion, evidence the shipped barriers are
// load-bearing (same methodology as test_racecheck_mutations.cpp).

gpusim::LaunchStats run_argmax_mirror(bool leading_sync) {
  gpusim::Device dev;
  constexpr std::uint32_t kThreads = 64;
  auto out = dev.alloc<acc::ValueIndex<float>>(1);
  auto ov = out.view();
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<acc::ValueIndex<float>>(kThreads);
  const acc::ArgMaxOp<float> op;
  return gpusim::launch(
      dev, {1}, {kThreads}, layout.bytes(),
      [&](gpusim::ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        ctx.sts(sbuf, i,
                acc::ValueIndex<float>{static_cast<float>((i * 13) % 29),
                                       static_cast<std::int64_t>(i)});
        if (leading_sync) ctx.syncthreads();
        // Sequential-addressing tree over the staged payload pairs; the
        // payload slots span multiple words, so a missing barrier races
        // on the struct stores.
        for (std::uint32_t stride = kThreads / 2; stride >= 1;
             stride /= 2) {
          if (i < stride) {
            const auto a = ctx.lds(sbuf, i);
            const auto b = ctx.lds(sbuf, i + stride);
            ctx.sts(sbuf, i, op.apply(a, b));
          }
          ctx.syncthreads();
        }
        if (i == 0) ctx.st(ov, 0, ctx.lds(sbuf, 0));
      },
      rc_opts());
}

TEST(FusedCascadeMutations, ArgMaxStagingMissingSyncIsCaught) {
  const gpusim::LaunchStats clean = run_argmax_mirror(true);
  EXPECT_EQ(clean.races, 0u);
  const gpusim::LaunchStats racy = run_argmax_mirror(false);
  EXPECT_GT(racy.races, 0u);
}

gpusim::LaunchStats run_segmented_mirror(bool publish_sync) {
  gpusim::Device dev;
  constexpr std::uint32_t kThreads = 64;
  constexpr std::uint32_t kSegments = 8;
  auto out = dev.alloc<float>(kSegments);
  auto ov = out.view();
  gpusim::SharedLayout layout;
  auto bins = layout.add<float>(kThreads * kSegments);
  return gpusim::launch(
      dev, {1}, {kThreads}, layout.bytes(),
      [&](gpusim::ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        // Per-thread private bins (the array-reduction layout), then a
        // cross-thread consolidation that reads every thread's rows.
        for (std::uint32_t s = 0; s < kSegments; ++s) {
          ctx.sts(bins, i * kSegments + s,
                  static_cast<float>((i + s) % 5));
        }
        if (publish_sync) ctx.syncthreads();
        if (i < kSegments) {
          float total = 0;
          for (std::uint32_t t = 0; t < kThreads; ++t) {
            total += ctx.lds(bins, t * kSegments + i);
          }
          ctx.st(ov, i, total);
        }
      },
      rc_opts());
}

TEST(FusedCascadeMutations, SegmentedBinsMissingSyncIsCaught) {
  const gpusim::LaunchStats clean = run_segmented_mirror(true);
  EXPECT_EQ(clean.races, 0u);
  const gpusim::LaunchStats racy = run_segmented_mirror(false);
  EXPECT_GT(racy.races, 0u);
}

}  // namespace
}  // namespace accred::reduce
