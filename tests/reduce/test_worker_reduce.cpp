// Correctness and cost-shape tests for the worker-reduction strategies
// (§3.1.2: Fig. 5b, Fig. 8b vs 8c, global fallback).
#include "reduce/worker_reduce.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace accred::reduce {
namespace {

using test::OpTypeCase;

struct WorkerCaseResult {
  gpusim::LaunchStats stats;
};

/// Worker reduction over an NK x NJ input (plus an NI-wide parallel lane
/// dimension); verifies every k instance against the CPU fold.
template <typename T>
WorkerCaseResult run_case(acc::ReductionOp op, Nest3 n,
                          const acc::LaunchConfig& cfg,
                          const StrategyConfig& sc,
                          bool with_instance_init = false) {
  gpusim::Device dev;
  const auto count = static_cast<std::size_t>(n.nk * n.nj);
  auto host_in = test::make_input<T>(op, count);
  auto input = dev.alloc<T>(count);
  input.copy_from_host(host_in);
  auto out = dev.alloc<T>(static_cast<std::size_t>(n.nk));
  auto in_view = input.view();
  auto out_view = out.view();

  Bindings<T> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t) {
    return ctx.ld(in_view, static_cast<std::size_t>(k * n.nj + j));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t, T r) {
    ctx.st(out_view, static_cast<std::size_t>(k), r);
  };
  if (with_instance_init) {
    b.instance_init = [](std::int64_t k, std::int64_t) {
      return static_cast<T>(k);
    };
  }

  auto res = run_worker_reduction<T>(dev, n, cfg, op, b, sc);
  EXPECT_FALSE(res.scalar.has_value());

  acc::RuntimeOp<T> rop{op};
  for (std::int64_t k = 0; k < n.nk; ++k) {
    std::span<const T> row(host_in.data() + k * n.nj,
                           static_cast<std::size_t>(n.nj));
    T expect = test::cpu_fold<T>(op, row);
    if (with_instance_init) expect = rop.apply(static_cast<T>(k), expect);
    const T actual = out.host_span()[static_cast<std::size_t>(k)];
    EXPECT_TRUE(testsuite::reduction_result_matches(
        expect, actual, static_cast<std::uint64_t>(n.nj)))
        << "k=" << k << " expect=" << expect << " actual=" << actual;
  }
  return {res.stats};
}

acc::LaunchConfig small_cfg() {
  acc::LaunchConfig cfg;
  cfg.num_gangs = 4;
  cfg.num_workers = 4;
  cfg.vector_length = 32;
  return cfg;
}

class WorkerReduceSweep : public ::testing::TestWithParam<OpTypeCase> {};

TEST_P(WorkerReduceSweep, FirstRowLayoutMatchesCpu) {
  const auto [op, type] = GetParam();
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_case<T>(op, Nest3{3, 233, 16}, small_cfg(), StrategyConfig{});
  });
}

TEST_P(WorkerReduceSweep, DuplicatedRowsLayoutMatchesCpu) {
  const auto [op, type] = GetParam();
  StrategyConfig sc;
  sc.worker_layout = WorkerLayout::kDuplicatedRows;
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_case<T>(op, Nest3{3, 233, 16}, small_cfg(), sc);
  });
}

INSTANTIATE_TEST_SUITE_P(AllOpsTypes, WorkerReduceSweep,
                         ::testing::ValuesIn(test::all_op_type_cases()),
                         test::op_type_name);

TEST(WorkerReduce, GlobalStagingMatchesCpu) {
  StrategyConfig sc;
  sc.staging = Staging::kGlobal;
  run_case<std::int64_t>(acc::ReductionOp::kSum, Nest3{3, 233, 16},
                         small_cfg(), sc);
  run_case<float>(acc::ReductionOp::kMin, Nest3{5, 77, 8}, small_cfg(), sc);
}

TEST(WorkerReduce, InstanceInitFoldedIn) {
  run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{4, 50, 4}, small_cfg(),
                         StrategyConfig{}, /*with_instance_init=*/true);
}

TEST(WorkerReduce, EdgeExtents) {
  for (std::int64_t nj : {1, 2, 3, 4, 5, 63, 64, 65}) {
    run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{2, nj, 8},
                           small_cfg(), StrategyConfig{});
  }
}

TEST(WorkerReduce, NonPowerOfTwoWorkerCount) {
  acc::LaunchConfig cfg = small_cfg();
  cfg.num_workers = 6;  // exercises the tree's pre-fold on W=6 partials
  run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{3, 100, 8}, cfg,
                         StrategyConfig{});
  cfg.num_workers = 7;
  run_case<std::int64_t>(acc::ReductionOp::kMax, Nest3{3, 100, 8}, cfg,
                         StrategyConfig{});
}

TEST(WorkerReduce, DuplicatedRowsCostMoreSharedTrafficAndBarriers) {
  // The paper's stated drawbacks of Fig. 8b: "it consumes a lot of shared
  // memory ... and it needs to insert synchronization between each
  // iteration".
  StrategyConfig first;
  StrategyConfig dup;
  dup.worker_layout = WorkerLayout::kDuplicatedRows;
  acc::LaunchConfig cfg;
  cfg.num_gangs = 2;
  cfg.num_workers = 8;
  cfg.vector_length = 128;
  const auto a = run_case<float>(acc::ReductionOp::kSum, Nest3{2, 512, 32},
                                 cfg, first);
  const auto b = run_case<float>(acc::ReductionOp::kSum, Nest3{2, 512, 32},
                                 cfg, dup);
  EXPECT_GT(b.stats.smem_requests, 4 * a.stats.smem_requests);
  EXPECT_GE(b.stats.barriers, a.stats.barriers);
  EXPECT_GT(b.stats.device_time_ns, a.stats.device_time_ns);
}

TEST(WorkerReduce, FirstRowTreeUsesWarpSync) {
  // Fig. 8c's advantage: the W partials sit in one warp, so the tail needs
  // no block-wide barriers.
  const auto a = run_case<int>(acc::ReductionOp::kSum, Nest3{2, 64, 8},
                               small_cfg(), StrategyConfig{});
  EXPECT_GT(a.stats.syncwarps, 0u);
}

}  // namespace
}  // namespace accred::reduce
