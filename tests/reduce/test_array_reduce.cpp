// Tests for the array-reduction extension (§5's Komoda feature):
// histogram-style folds verified against the CPU, across operators,
// lengths, and assignments.
#include "reduce/array_reduce.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace accred::reduce {
namespace {

acc::LaunchConfig small_cfg() {
  acc::LaunchConfig cfg;
  cfg.num_gangs = 6;
  cfg.num_workers = 2;
  cfg.vector_length = 32;
  return cfg;
}

TEST(ArrayReduce, HistogramMatchesCpu) {
  gpusim::Device dev;
  constexpr std::int64_t kN = 50'000;
  constexpr std::size_t kBins = 16;
  auto data = dev.alloc<std::uint32_t>(std::size_t(kN));
  {
    util::SplitMix64 rng(5);
    for (auto& v : data.host_span()) {
      v = static_cast<std::uint32_t>(rng.next_below(256));
    }
  }
  auto dv = data.view();

  auto res = run_array_reduction<std::int64_t>(
      dev, kN, kBins, small_cfg(), acc::ReductionOp::kSum,
      [=](gpusim::ThreadCtx& ctx, std::int64_t i,
          ArrayAccum<std::int64_t>& h) {
        const std::uint32_t v = ctx.ld(dv, std::size_t(i));
        h.add(v / 16, 1);
      });
  EXPECT_EQ(res.kernels, 2);
  ASSERT_EQ(res.values.size(), kBins);

  std::array<std::int64_t, kBins> expect{};
  for (std::uint32_t v : data.host_span()) expect[v / 16] += 1;
  std::int64_t total = 0;
  for (std::size_t b = 0; b < kBins; ++b) {
    EXPECT_EQ(res.values[b], expect[b]) << "bin " << b;
    total += res.values[b];
  }
  EXPECT_EQ(total, kN);
}

TEST(ArrayReduce, PerElementMaxAcrossRows) {
  // Column-wise max over a matrix: element e = max over rows of m[r][e].
  gpusim::Device dev;
  constexpr std::int64_t kRows = 3000;
  constexpr std::size_t kCols = 24;
  auto data = dev.alloc<double>(kRows * kCols);
  {
    util::SplitMix64 rng(11);
    for (auto& v : data.host_span()) v = rng.next_in(-1e6, 1e6);
  }
  auto dv = data.view();

  auto res = run_array_reduction<double>(
      dev, kRows, kCols, small_cfg(), acc::ReductionOp::kMax,
      [=](gpusim::ThreadCtx& ctx, std::int64_t r, ArrayAccum<double>& m) {
        for (std::size_t c = 0; c < kCols; ++c) {
          m.add(c, ctx.ld(dv, std::size_t(r) * kCols + c));
        }
      });

  for (std::size_t c = 0; c < kCols; ++c) {
    double expect = std::numeric_limits<double>::lowest();
    for (std::int64_t r = 0; r < kRows; ++r) {
      expect = std::max(expect,
                        data.host_span()[std::size_t(r) * kCols + c]);
    }
    EXPECT_DOUBLE_EQ(res.values[c], expect) << "col " << c;
  }
}

TEST(ArrayReduce, SingleElementDegeneratesToScalar) {
  gpusim::Device dev;
  auto res = run_array_reduction<std::int32_t>(
      dev, 1'000, 1, small_cfg(), acc::ReductionOp::kSum,
      [](gpusim::ThreadCtx& ctx, std::int64_t,
         ArrayAccum<std::int32_t>& a) {
        ctx.alu(1);
        a.add(0, 1);
      });
  ASSERT_EQ(res.values.size(), 1u);
  EXPECT_EQ(res.values[0], 1'000);
}

TEST(ArrayReduce, BlockingAssignmentAgrees) {
  gpusim::Device dev;
  StrategyConfig sc;
  sc.assignment = Assignment::kBlocking;
  auto res = run_array_reduction<std::int32_t>(
      dev, 7'777, 5, small_cfg(), acc::ReductionOp::kSum,
      [](gpusim::ThreadCtx& ctx, std::int64_t i,
         ArrayAccum<std::int32_t>& a) {
        ctx.alu(1);
        a.add(std::size_t(i % 5), 1);
      },
      sc);
  std::int64_t total = 0;
  for (auto v : res.values) total += v;
  EXPECT_EQ(total, 7'777);
  EXPECT_EQ(res.values[0], 1556);  // ceil(7777/5)
  EXPECT_EQ(res.values[4], 1555);
}

TEST(ArrayReduce, RejectsBadLengthsAndIndices) {
  gpusim::Device dev;
  auto noop = [](gpusim::ThreadCtx&, std::int64_t,
                 ArrayAccum<std::int32_t>&) {};
  EXPECT_THROW((void)run_array_reduction<std::int32_t>(
                   dev, 10, 0, small_cfg(), acc::ReductionOp::kSum, noop),
               std::invalid_argument);
  EXPECT_THROW((void)run_array_reduction<std::int32_t>(
                   dev, 10, 5000, small_cfg(), acc::ReductionOp::kSum, noop),
               std::invalid_argument);
  // Out-of-range element from device code surfaces as a host exception.
  EXPECT_THROW(
      (void)run_array_reduction<std::int32_t>(
          dev, 10, 4, small_cfg(), acc::ReductionOp::kSum,
          [](gpusim::ThreadCtx&, std::int64_t, ArrayAccum<std::int32_t>& a) {
            a.add(4, 1);
          }),
      std::out_of_range);
}

}  // namespace
}  // namespace accred::reduce
