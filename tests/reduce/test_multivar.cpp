// Tests for §3.3's mixed-datatype multi-variable reduction: both slab
// policies compute identical, CPU-verified results; the OpenUH max-slab
// policy needs only max-type bytes and therefore fits clauses that blow
// the 48 KiB limit under per-variable sections.
#include "reduce/multivar.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace accred::reduce {
namespace {

acc::LaunchConfig small_cfg() {
  acc::LaunchConfig cfg;
  cfg.num_gangs = 4;
  cfg.num_workers = 4;
  cfg.vector_length = 32;
  return cfg;
}

/// int sum + double max + float prod over the same nest.
std::vector<MultiVarSpec> mixed_vars(const Nest3& n,
                                     gpusim::GlobalView<double> data) {
  std::vector<MultiVarSpec> vars(3);
  auto flat = [n](std::int64_t k, std::int64_t j, std::int64_t i) {
    return static_cast<std::size_t>((k * n.nj + j) * n.ni + i);
  };
  vars[0].op = acc::ReductionOp::kSum;
  vars[0].type = acc::DataType::kInt32;
  vars[0].name = "isum";
  vars[0].contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                        std::int64_t j, std::int64_t i) -> ScalarValue {
    return static_cast<std::int32_t>(ctx.ld(data, flat(k, j, i)) * 7) % 5;
  };
  vars[1].op = acc::ReductionOp::kMax;
  vars[1].type = acc::DataType::kDouble;
  vars[1].name = "dmax";
  vars[1].contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                        std::int64_t j, std::int64_t i) -> ScalarValue {
    return ctx.ld(data, flat(k, j, i));
  };
  vars[2].op = acc::ReductionOp::kProd;
  vars[2].type = acc::DataType::kFloat;
  vars[2].name = "fprod";
  vars[2].contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                        std::int64_t j, std::int64_t i) -> ScalarValue {
    return static_cast<float>(1.0 + ctx.ld(data, flat(k, j, i)) * 1e-6);
  };
  return vars;
}

struct Expected {
  std::int32_t isum;
  double dmax;
  float fprod;
};

Expected expected_for_k(const Nest3& n, std::span<const double> host,
                        std::int64_t k) {
  Expected e{0, std::numeric_limits<double>::lowest(), 1.0F};
  for (std::int64_t j = 0; j < n.nj; ++j) {
    for (std::int64_t i = 0; i < n.ni; ++i) {
      const double d =
          host[static_cast<std::size_t>((k * n.nj + j) * n.ni + i)];
      e.isum += static_cast<std::int32_t>(d * 7) % 5;
      e.dmax = std::max(e.dmax, d);
      e.fprod *= static_cast<float>(1.0 + d * 1e-6);
    }
  }
  return e;
}

class MultiVarPolicy : public ::testing::TestWithParam<SlabPolicy> {};

TEST_P(MultiVarPolicy, MixedTypesMatchCpu) {
  gpusim::Device dev;
  const Nest3 n{3, 5, 200};
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto data = dev.alloc<double>(volume);
  {
    auto host = data.host_span();
    util::SplitMix64 rng(99);
    for (double& d : host) d = rng.next_in(-50.0, 50.0);
  }

  const auto vars = mixed_vars(n, data.view());
  const auto res = run_multi_worker_vector_reduction(
      dev, n, small_cfg(), vars, GetParam());

  ASSERT_EQ(res.values.size(), 3u);
  for (std::int64_t k = 0; k < n.nk; ++k) {
    const Expected e = expected_for_k(n, data.host_span(), k);
    EXPECT_EQ(scalar_as<std::int32_t>(res.values[0][std::size_t(k)]), e.isum);
    EXPECT_DOUBLE_EQ(scalar_as<double>(res.values[1][std::size_t(k)]),
                     e.dmax);
    EXPECT_NEAR(scalar_as<float>(res.values[2][std::size_t(k)]), e.fprod,
                1e-4F * std::fabs(e.fprod));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, MultiVarPolicy,
                         ::testing::Values(SlabPolicy::kSharedMaxSlab,
                                           SlabPolicy::kPerVarSections),
                         [](const auto& info) {
                           return info.param == SlabPolicy::kSharedMaxSlab
                                      ? "max_slab"
                                      : "per_var_sections";
                         });

TEST(MultiVar, MaxSlabUsesOnlyLargestType) {
  const acc::LaunchConfig cfg = small_cfg();
  const std::uint32_t threads = cfg.num_workers * cfg.vector_length;
  std::vector<MultiVarSpec> vars(3);
  vars[0].type = acc::DataType::kInt32;
  vars[1].type = acc::DataType::kDouble;
  vars[2].type = acc::DataType::kFloat;
  EXPECT_EQ(multi_staging_bytes(vars, threads, SlabPolicy::kSharedMaxSlab),
            8u * threads);
  EXPECT_EQ(multi_staging_bytes(vars, threads, SlabPolicy::kPerVarSections),
            (4u + 8u + 4u) * threads);
}

TEST(MultiVar, SectionsBlowSharedLimitWhereSlabFits) {
  // Six double variables on a 1024-thread block: per-var sections need
  // 6 x 8 KiB = 48 KiB... x8 = 48KiB exactly for the slab? No:
  // slab = 8 B x 1024 = 8 KiB total; sections = 48 KiB which exceeds the
  // limit once anything else shares the block's shared memory — push to 7
  // variables to exceed it outright.
  gpusim::Device dev;
  acc::LaunchConfig cfg;
  cfg.num_gangs = 2;
  cfg.num_workers = 8;
  cfg.vector_length = 128;
  const Nest3 n{2, 4, 64};
  auto data = dev.alloc<double>(static_cast<std::size_t>(n.nk * n.nj * n.ni));
  data.fill(1.0);
  auto dv = data.view();

  std::vector<MultiVarSpec> vars(7);
  for (std::size_t m = 0; m < vars.size(); ++m) {
    vars[m].op = acc::ReductionOp::kSum;
    vars[m].type = acc::DataType::kDouble;
    vars[m].name = "v";
    vars[m].name += std::to_string(m);
    vars[m].contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                          std::int64_t j, std::int64_t i) -> ScalarValue {
      return ctx.ld(dv, static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
    };
  }
  // 7 x 8 KiB = 56 KiB of sections: over the 48 KiB limit.
  EXPECT_THROW((void)run_multi_worker_vector_reduction(
                   dev, n, cfg, vars, SlabPolicy::kPerVarSections),
               std::invalid_argument);
  // The OpenUH slab (8 KiB) sails through and computes correctly.
  const auto res = run_multi_worker_vector_reduction(
      dev, n, cfg, vars, SlabPolicy::kSharedMaxSlab);
  for (const auto& per_k : res.values) {
    for (const ScalarValue& v : per_k) {
      EXPECT_DOUBLE_EQ(scalar_as<double>(v),
                       static_cast<double>(n.nj * n.ni));
    }
  }
}

TEST(MultiVar, RejectsEmptyAndOversizedVarLists) {
  gpusim::Device dev;
  EXPECT_THROW((void)run_multi_worker_vector_reduction(
                   dev, Nest3{1, 1, 1}, small_cfg(), {},
                   SlabPolicy::kSharedMaxSlab),
               std::invalid_argument);
  std::vector<MultiVarSpec> too_many(9);
  EXPECT_THROW((void)run_multi_worker_vector_reduction(
                   dev, Nest3{1, 1, 1}, small_cfg(), too_many,
                   SlabPolicy::kSharedMaxSlab),
               std::invalid_argument);
}

}  // namespace
}  // namespace accred::reduce
