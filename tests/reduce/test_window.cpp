#include "reduce/window.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace accred::reduce {
namespace {

std::vector<std::int64_t> collect_active(Assignment mode, std::int64_t extent,
                                         std::int64_t id,
                                         std::int64_t nthreads) {
  std::vector<std::int64_t> out;
  assigned_loop(mode, extent, id, nthreads, [&](std::int64_t i, bool active) {
    if (active) out.push_back(i);
  });
  return out;
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(1'000'000, 192), 5209);
}

class AssignmentCoverage
    : public ::testing::TestWithParam<std::tuple<Assignment, std::int64_t,
                                                 std::int64_t>> {};

TEST_P(AssignmentCoverage, PartitionIsExactAndDisjoint) {
  const auto [mode, extent, nthreads] = GetParam();
  std::set<std::int64_t> seen;
  for (std::int64_t id = 0; id < nthreads; ++id) {
    for (std::int64_t idx : collect_active(mode, extent, id, nthreads)) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, extent);
      EXPECT_TRUE(seen.insert(idx).second) << "index " << idx << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(extent));
}

TEST_P(AssignmentCoverage, AllThreadsRunSameIterationCount) {
  const auto [mode, extent, nthreads] = GetParam();
  std::int64_t expected = -1;
  for (std::int64_t id = 0; id < nthreads; ++id) {
    std::int64_t iters = 0;
    assigned_loop(mode, extent, id, nthreads,
                  [&](std::int64_t, bool) { ++iters; });
    if (expected < 0) expected = iters;
    EXPECT_EQ(iters, expected);
  }
  EXPECT_EQ(expected, ceil_div(extent, nthreads));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AssignmentCoverage,
    ::testing::Combine(::testing::Values(Assignment::kWindow,
                                         Assignment::kBlocking),
                       ::testing::Values<std::int64_t>(1, 2, 31, 32, 33, 100,
                                                       1000, 4096, 4097),
                       ::testing::Values<std::int64_t>(1, 3, 32, 128)));

TEST(Window, ConsecutiveThreadsGetConsecutiveIndices) {
  // The coalescing property the paper's §3.1.3 is about.
  auto t0 = collect_active(Assignment::kWindow, 256, 0, 32);
  auto t1 = collect_active(Assignment::kWindow, 256, 1, 32);
  ASSERT_EQ(t0.size(), 8u);
  for (std::size_t s = 0; s < t0.size(); ++s) {
    EXPECT_EQ(t1[s], t0[s] + 1);  // adjacent lanes touch adjacent elements
  }
}

TEST(Blocking, ConsecutiveThreadsGetDistantChunks) {
  auto t0 = collect_active(Assignment::kBlocking, 256, 0, 32);
  auto t1 = collect_active(Assignment::kBlocking, 256, 1, 32);
  ASSERT_EQ(t0.size(), 8u);
  EXPECT_EQ(t0.back() + 1, t1.front());  // contiguous chunks
  EXPECT_EQ(t1.front() - t0.front(), 8); // lanes 8 elements apart
}

}  // namespace
}  // namespace accred::reduce
