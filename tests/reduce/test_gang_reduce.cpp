// Correctness and cost-shape tests for the gang-reduction strategy
// (§3.1.3: Fig. 5c — per-block partials + second kernel; window-sliding
// vs blocking iteration assignment).
#include "reduce/gang_reduce.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace accred::reduce {
namespace {

using test::OpTypeCase;

template <typename T>
gpusim::LaunchStats run_case(acc::ReductionOp op, Nest3 n,
                             const acc::LaunchConfig& cfg,
                             const StrategyConfig& sc,
                             bool with_host_init = false) {
  gpusim::Device dev;
  const auto count = static_cast<std::size_t>(n.nk);
  auto host_in = test::make_input<T>(op, count);
  auto input = dev.alloc<T>(count);
  input.copy_from_host(host_in);
  auto in_view = input.view();

  Bindings<T> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t,
                  std::int64_t) {
    return ctx.ld(in_view, static_cast<std::size_t>(k));
  };
  if (with_host_init) {
    b.host_init = static_cast<T>(3);
    b.host_init_set = true;
  }

  auto res = run_gang_reduction<T>(dev, n, cfg, op, b, sc);
  EXPECT_TRUE(res.scalar.has_value());
  EXPECT_EQ(res.kernels, 2);  // partials kernel + finalize kernel

  acc::RuntimeOp<T> rop{op};
  T expect = test::cpu_fold<T>(op, std::span<const T>(host_in));
  if (with_host_init) expect = rop.apply(static_cast<T>(3), expect);
  EXPECT_TRUE(testsuite::reduction_result_matches(
      expect, *res.scalar, static_cast<std::uint64_t>(n.nk)))
      << "expect=" << expect << " actual=" << *res.scalar;
  return res.stats;
}

acc::LaunchConfig small_cfg() {
  acc::LaunchConfig cfg;
  cfg.num_gangs = 6;
  cfg.num_workers = 2;
  cfg.vector_length = 32;
  return cfg;
}

class GangReduceSweep : public ::testing::TestWithParam<OpTypeCase> {};

TEST_P(GangReduceSweep, WindowSlidingMatchesCpu) {
  const auto [op, type] = GetParam();
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_case<T>(op, Nest3{1000, 2, 8}, small_cfg(), StrategyConfig{});
  });
}

TEST_P(GangReduceSweep, BlockingMatchesCpu) {
  const auto [op, type] = GetParam();
  StrategyConfig sc;
  sc.assignment = Assignment::kBlocking;
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_case<T>(op, Nest3{1000, 2, 8}, small_cfg(), sc);
  });
}

INSTANTIATE_TEST_SUITE_P(AllOpsTypes, GangReduceSweep,
                         ::testing::ValuesIn(test::all_op_type_cases()),
                         test::op_type_name);

TEST(GangReduce, HostInitFoldedIn) {
  run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{500, 2, 8},
                         small_cfg(), StrategyConfig{}, true);
  run_case<std::int64_t>(acc::ReductionOp::kProd, Nest3{500, 2, 8},
                         small_cfg(), StrategyConfig{}, true);
}

TEST(GangReduce, GlobalFinalizeMatchesCpu) {
  StrategyConfig sc;
  sc.staging = Staging::kGlobal;
  run_case<double>(acc::ReductionOp::kSum, Nest3{777, 2, 8}, small_cfg(), sc);
}

TEST(GangReduce, EdgeExtents) {
  // Fewer iterations than gangs, exactly the gang count, one element.
  for (std::int64_t nk : {1, 2, 5, 6, 7, 192}) {
    run_case<std::int32_t>(acc::ReductionOp::kSum, Nest3{nk, 2, 8},
                           small_cfg(), StrategyConfig{});
  }
}

TEST(GangReduce, FinalizeWidthVariants) {
  // The finalize kernel must work at any thread count, including widths
  // that are not powers of two (its tree pre-folds) and widths larger
  // than the partials count.
  for (std::uint32_t ft : {32u, 100u, 256u, 512u, 1000u}) {
    StrategyConfig sc;
    sc.finalize_threads = ft;
    run_case<std::int64_t>(acc::ReductionOp::kSum, Nest3{321, 2, 8},
                           small_cfg(), sc);
  }
}

TEST(GangReduce, PaysTwoLaunchOverheads) {
  gpusim::Device dev;
  auto input = dev.alloc<int>(100);
  input.fill(1);
  auto in_view = input.view();
  Bindings<int> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t,
                  std::int64_t) { return ctx.ld(in_view, k); };
  auto res = run_gang_reduction<int>(dev, Nest3{100, 1, 1}, small_cfg(),
                                     acc::ReductionOp::kSum, b);
  EXPECT_EQ(res.kernels, 2);
  EXPECT_GE(res.stats.device_time_ns,
            2 * dev.costs().launch_overhead_ns);
}

}  // namespace
}  // namespace accred::reduce
