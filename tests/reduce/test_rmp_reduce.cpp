// Correctness and cost-shape tests for the multi-level (RMP) strategies
// (§3.2): worker&vector (flat and the ordered §3.2.1 alternative),
// gang&worker, gang&worker&vector in different loops, and the same-loop
// form of Fig. 10.
#include "reduce/rmp_reduce.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace accred::reduce {
namespace {

using test::OpTypeCase;

acc::LaunchConfig small_cfg() {
  acc::LaunchConfig cfg;
  cfg.num_gangs = 4;
  cfg.num_workers = 4;
  cfg.vector_length = 32;
  return cfg;
}

// ---- worker & vector (per-k results) ----------------------------------

template <typename T>
gpusim::LaunchStats run_wv(acc::ReductionOp op, Nest3 n,
                           const StrategyConfig& sc, bool ordered = false) {
  gpusim::Device dev;
  const auto count = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto host_in = test::make_input<T>(op, count);
  auto input = dev.alloc<T>(count);
  input.copy_from_host(host_in);
  auto out = dev.alloc<T>(static_cast<std::size_t>(n.nk));
  auto in_view = input.view();
  auto out_view = out.view();

  Bindings<T> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(in_view, static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t, T r) {
    ctx.st(out_view, static_cast<std::size_t>(k), r);
  };

  auto res = ordered
                 ? run_worker_vector_reduction_ordered<T>(dev, n, small_cfg(),
                                                          op, b, sc)
                 : run_worker_vector_reduction<T>(dev, n, small_cfg(), op, b,
                                                  sc);
  for (std::int64_t k = 0; k < n.nk; ++k) {
    std::span<const T> slab(host_in.data() + k * n.nj * n.ni,
                            static_cast<std::size_t>(n.nj * n.ni));
    const T expect = test::cpu_fold<T>(op, slab);
    const T actual = out.host_span()[static_cast<std::size_t>(k)];
    EXPECT_TRUE(testsuite::reduction_result_matches(
        expect, actual, static_cast<std::uint64_t>(n.nj * n.ni)))
        << "k=" << k << " expect=" << expect << " actual=" << actual;
  }
  return res.stats;
}

class WorkerVectorSweep : public ::testing::TestWithParam<OpTypeCase> {};

TEST_P(WorkerVectorSweep, FlatMatchesCpu) {
  const auto [op, type] = GetParam();
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_wv<T>(op, Nest3{3, 7, 131}, StrategyConfig{});
  });
}

TEST_P(WorkerVectorSweep, OrderedMatchesCpu) {
  const auto [op, type] = GetParam();
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_wv<T>(op, Nest3{3, 7, 131}, StrategyConfig{}, /*ordered=*/true);
  });
}

INSTANTIATE_TEST_SUITE_P(AllOpsTypes, WorkerVectorSweep,
                         ::testing::ValuesIn(test::all_op_type_cases()),
                         test::op_type_name);

TEST(WorkerVector, GlobalStagingMatchesCpu) {
  StrategyConfig sc;
  sc.staging = Staging::kGlobal;
  run_wv<std::int64_t>(acc::ReductionOp::kSum, Nest3{3, 7, 131}, sc);
}

TEST(WorkerVector, OrderedNeedsMoreSynchronization) {
  // §3.2.1: "OpenUH does not use this implementation since this approach
  // needs to perform reduction in multiple times and therefore more
  // synchronizations are required."
  const auto flat = run_wv<int>(acc::ReductionOp::kSum, Nest3{2, 16, 256},
                                StrategyConfig{});
  const auto ordered = run_wv<int>(acc::ReductionOp::kSum, Nest3{2, 16, 256},
                                   StrategyConfig{}, /*ordered=*/true);
  EXPECT_GT(ordered.barriers, flat.barriers);
  EXPECT_GT(ordered.device_time_ns, flat.device_time_ns);
}

// ---- gang & worker and gang & worker & vector (scalar) -----------------

template <typename T>
gpusim::LaunchStats run_scalar_span(acc::ReductionOp op, Nest3 n,
                                    acc::ParMask span,
                                    const StrategyConfig& sc) {
  gpusim::Device dev;
  const bool has_vector = acc::has(span, acc::Par::kVector);
  const auto count = static_cast<std::size_t>(
      n.nk * n.nj * (has_vector ? n.ni : 1));
  auto host_in = test::make_input<T>(op, count);
  auto input = dev.alloc<T>(count);
  input.copy_from_host(host_in);
  auto in_view = input.view();

  Bindings<T> b;
  if (has_vector) {
    b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                    std::int64_t i) {
      return ctx.ld(in_view,
                    static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
    };
  } else {
    b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                    std::int64_t) {
      return ctx.ld(in_view, static_cast<std::size_t>(k * n.nj + j));
    };
  }

  auto res = has_vector
                 ? run_gang_worker_vector_reduction<T>(dev, n, small_cfg(),
                                                       op, b, sc)
                 : run_gang_worker_reduction<T>(dev, n, small_cfg(), op, b,
                                                sc);
  EXPECT_TRUE(res.scalar.has_value()) << "scalar result missing";
  if (!res.scalar.has_value()) return res.stats;
  EXPECT_EQ(res.kernels, 2);
  const T expect = test::cpu_fold<T>(op, std::span<const T>(host_in));
  EXPECT_TRUE(testsuite::reduction_result_matches(
      expect, *res.scalar, static_cast<std::uint64_t>(count)))
      << "expect=" << expect << " actual=" << *res.scalar;
  return res.stats;
}

class GangWorkerSweep : public ::testing::TestWithParam<OpTypeCase> {};

TEST_P(GangWorkerSweep, GangWorkerMatchesCpu) {
  const auto [op, type] = GetParam();
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_scalar_span<T>(op, Nest3{67, 31, 8}, acc::Par::kGang | acc::Par::kWorker,
                       StrategyConfig{});
  });
}

TEST_P(GangWorkerSweep, GangWorkerVectorMatchesCpu) {
  const auto [op, type] = GetParam();
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_scalar_span<T>(
        op, Nest3{11, 13, 70},
        acc::Par::kGang | acc::Par::kWorker | acc::Par::kVector,
        StrategyConfig{});
  });
}

INSTANTIATE_TEST_SUITE_P(AllOpsTypes, GangWorkerSweep,
                         ::testing::ValuesIn(test::all_op_type_cases()),
                         test::op_type_name);

// ---- RMP in the same loop (Fig. 10) ------------------------------------

template <typename T>
gpusim::LaunchStats run_same_loop(acc::ReductionOp op, std::int64_t extent,
                                  const StrategyConfig& sc) {
  gpusim::Device dev;
  auto host_in = test::make_input<T>(op, static_cast<std::size_t>(extent));
  auto input = dev.alloc<T>(static_cast<std::size_t>(extent));
  input.copy_from_host(host_in);
  auto in_view = input.view();

  Bindings<T> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t idx, std::int64_t,
                  std::int64_t) {
    return ctx.ld(in_view, static_cast<std::size_t>(idx));
  };
  auto res = run_same_loop_reduction<T>(dev, extent, small_cfg(), op, b, sc);
  EXPECT_TRUE(res.scalar.has_value()) << "scalar result missing";
  if (!res.scalar.has_value()) return res.stats;
  const T expect = test::cpu_fold<T>(op, std::span<const T>(host_in));
  EXPECT_TRUE(testsuite::reduction_result_matches(
      expect, *res.scalar, static_cast<std::uint64_t>(extent)))
      << "expect=" << expect << " actual=" << *res.scalar;
  return res.stats;
}

class SameLoopSweep : public ::testing::TestWithParam<OpTypeCase> {};

TEST_P(SameLoopSweep, MatchesCpu) {
  const auto [op, type] = GetParam();
  dispatch_type(type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    run_same_loop<T>(op, 10'007, StrategyConfig{});
  });
}

INSTANTIATE_TEST_SUITE_P(AllOpsTypes, SameLoopSweep,
                         ::testing::ValuesIn(test::all_op_type_cases()),
                         test::op_type_name);

TEST(SameLoop, ExtentSmallerThanThreadCount) {
  run_same_loop<std::int32_t>(acc::ReductionOp::kSum, 5, StrategyConfig{});
  run_same_loop<std::int32_t>(acc::ReductionOp::kMax, 1, StrategyConfig{});
}

TEST(SameLoop, WindowCoalescesBlockingDoesNot) {
  StrategyConfig window;
  StrategyConfig blocking;
  blocking.assignment = Assignment::kBlocking;
  const auto win = run_same_loop<float>(acc::ReductionOp::kSum, 1 << 16,
                                        window);
  const auto blk = run_same_loop<float>(acc::ReductionOp::kSum, 1 << 16,
                                        blocking);
  EXPECT_LT(win.gmem_segments, blk.gmem_segments / 4);
  EXPECT_LT(win.device_time_ns, blk.device_time_ns);
}

TEST(WorkerVector, HostInitFoldThroughSink) {
  // instance_init on the per-k sink path.
  gpusim::Device dev;
  const Nest3 n{3, 4, 8};
  auto input = dev.alloc<int>(static_cast<std::size_t>(n.nk * n.nj * n.ni));
  input.fill(1);
  auto out = dev.alloc<int>(static_cast<std::size_t>(n.nk));
  auto in_view = input.view();
  auto out_view = out.view();
  Bindings<int> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(in_view, static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
  };
  b.instance_init = [](std::int64_t k, std::int64_t) {
    return static_cast<int>(100 * k);
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t, int r) {
    ctx.st(out_view, static_cast<std::size_t>(k), r);
  };
  (void)run_worker_vector_reduction<int>(dev, n, small_cfg(),
                                         acc::ReductionOp::kSum, b);
  for (std::int64_t k = 0; k < n.nk; ++k) {
    EXPECT_EQ(out.host_span()[static_cast<std::size_t>(k)],
              100 * k + n.nj * n.ni);
  }
}

}  // namespace
}  // namespace accred::reduce
