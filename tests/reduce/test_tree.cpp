// Direct unit tests of the in-block log-step tree primitive (Fig. 7) —
// every count from 1 to a few hundred, strided rows, the global-memory
// variant, interleaved addressing, and the layout-safety guard.
#include "reduce/tree.hpp"

#include <gtest/gtest.h>

#include "gpusim/launch.hpp"

namespace accred::reduce {
namespace {

/// Reduce `count` values staged as v[i] = i + 1 in one block of
/// `threads` threads; returns what lands in slot 0.
long long run_tree(std::uint32_t threads, std::uint32_t count,
                   const TreeOptions& opt) {
  gpusim::Device dev;
  auto out = dev.alloc<long long>(1);
  auto ov = out.view();
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<long long>(std::max(threads, count));
  const acc::RuntimeOp<long long> rop{acc::ReductionOp::kSum};
  gpusim::launch(dev, {1}, {threads}, layout.bytes(),
                 [&](gpusim::ThreadCtx& ctx) {
                   const std::uint32_t t = ctx.threadIdx.x;
                   if (t < count) {
                     ctx.sts(sbuf, t, static_cast<long long>(t) + 1);
                   }
                   block_tree_reduce(ctx, sbuf, 0, count, 1,
                                     t < count ? t : ~0u, rop, opt);
                   if (t == 0) ctx.st(ov, 0, ctx.lds(sbuf, 0));
                 });
  return out.host_span()[0];
}

class TreeCountSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, bool>> {};

TEST_P(TreeCountSweep, SumsOneToN) {
  const auto [count, unroll] = GetParam();
  TreeOptions opt;
  opt.unroll_last_warp = unroll;
  const long long expect =
      static_cast<long long>(count) * (count + 1) / 2;
  EXPECT_EQ(run_tree(256, count, opt), expect) << "count=" << count;
}

INSTANTIATE_TEST_SUITE_P(
    Counts, TreeCountSweep,
    ::testing::Combine(
        ::testing::Values<std::uint32_t>(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                         17, 31, 32, 33, 63, 64, 65, 96, 100,
                                         127, 128, 129, 192, 255, 256),
        ::testing::Bool()),
    [](const auto& info) {
      return "count_" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_tail" : "_noTail");
    });

TEST(Tree, InterleavedAddressingAllCounts) {
  TreeOptions opt;
  opt.addr = AddrMode::kInterleavedThreads;
  opt.full_unroll = false;
  for (std::uint32_t count : {1u, 2u, 7u, 32u, 97u, 128u, 200u, 256u}) {
    const long long expect =
        static_cast<long long>(count) * (count + 1) / 2;
    EXPECT_EQ(run_tree(256, count, opt), expect) << "count=" << count;
  }
}

TEST(Tree, PerRowReductionsRunConcurrently) {
  // 4 rows of 64 lanes each, reduced in one call per thread.
  gpusim::Device dev;
  auto out = dev.alloc<int>(4);
  auto ov = out.view();
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<int>(256);
  const acc::RuntimeOp<int> rop{acc::ReductionOp::kSum};
  gpusim::launch(dev, {1}, {64, 4}, layout.bytes(),
                 [&](gpusim::ThreadCtx& ctx) {
                   const std::uint32_t x = ctx.threadIdx.x;
                   const std::uint32_t y = ctx.threadIdx.y;
                   ctx.sts(sbuf, y * 64 + x, static_cast<int>(y + 1));
                   block_tree_reduce(ctx, sbuf, y * 64, 64, 1, x, rop);
                   if (x == 0) ctx.st(ov, y, ctx.lds(sbuf, y * 64));
                 });
  for (std::uint32_t y = 0; y < 4; ++y) {
    EXPECT_EQ(out.host_span()[y], static_cast<int>((y + 1) * 64));
  }
}

TEST(Tree, StridedColumnsReduceCorrectly) {
  // The Fig. 6b transposed shape: 8 columns of 32 entries at stride 8.
  gpusim::Device dev;
  auto out = dev.alloc<int>(8);
  auto ov = out.view();
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<int>(256);
  const acc::RuntimeOp<int> rop{acc::ReductionOp::kSum};
  gpusim::launch(dev, {1}, {32, 8}, layout.bytes(),
                 [&](gpusim::ThreadCtx& ctx) {
                   const std::uint32_t x = ctx.threadIdx.x;  // 32 entries
                   const std::uint32_t y = ctx.threadIdx.y;  // 8 columns
                   ctx.sts(sbuf, x * 8 + y, static_cast<int>(x));
                   block_tree_reduce(ctx, sbuf, y, 32, 8, x, rop);
                   if (x == 0) ctx.st(ov, y, ctx.lds(sbuf, y));
                 });
  for (std::uint32_t y = 0; y < 8; ++y) {
    EXPECT_EQ(out.host_span()[y], 31 * 32 / 2);
  }
}

TEST(Tree, GlobalVariantMatchesShared) {
  gpusim::Device dev;
  auto buf = dev.alloc<double>(512);
  auto out = dev.alloc<double>(1);
  auto bv = buf.view();
  auto ov = out.view();
  const acc::RuntimeOp<double> rop{acc::ReductionOp::kMax};
  gpusim::launch(dev, {1}, {512}, 0, [&](gpusim::ThreadCtx& ctx) {
    const std::uint32_t t = ctx.threadIdx.x;
    ctx.st(bv, t, (t == 317) ? 9.5 : static_cast<double>(t) / 1000.0);
    block_tree_reduce_global(ctx, bv, 0, 512, t, rop);
    if (t == 0) ctx.st(ov, 0, ctx.ld(bv, 0));
  });
  EXPECT_DOUBLE_EQ(out.host_span()[0], 9.5);
}

TEST(Tree, MisalignedRowBaseWithTailThrows) {
  // The uniformity guard: a warp-synchronous tail over a row starting at
  // a non-warp boundary would desynchronize the block.
  gpusim::Device dev;
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<int>(256);
  const acc::RuntimeOp<int> rop{acc::ReductionOp::kSum};
  EXPECT_THROW(
      gpusim::launch(dev, {1}, {64}, layout.bytes(),
                     [&](gpusim::ThreadCtx& ctx) {
                       block_tree_reduce(ctx, sbuf, 8, 32, 1,
                                         ctx.threadIdx.x, rop);
                     }),
      std::invalid_argument);
  // Disabling the tail makes the same layout legal.
  TreeOptions opt;
  opt.unroll_last_warp = false;
  EXPECT_NO_THROW(gpusim::launch(dev, {1}, {64}, layout.bytes(),
                                 [&](gpusim::ThreadCtx& ctx) {
                                   ctx.sts(sbuf, 8 + ctx.threadIdx.x % 32, 1);
                                   block_tree_reduce(ctx, sbuf, 8, 32, 1,
                                                     ctx.threadIdx.x % 32,
                                                     rop, opt);
                                 }));
}

TEST(Tree, AllOperatorsThroughTheTree) {
  gpusim::Device dev;
  auto out = dev.alloc<std::int64_t>(1);
  auto ov = out.view();
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<std::int64_t>(128);
  const struct {
    acc::ReductionOp op;
    std::int64_t expect;  // over values t+1 for t in [0,128)
  } cases[] = {
      {acc::ReductionOp::kSum, 128 * 129 / 2},
      {acc::ReductionOp::kMax, 128},
      {acc::ReductionOp::kMin, 1},
      {acc::ReductionOp::kBitOr, 255},
      {acc::ReductionOp::kBitAnd, 0},
      {acc::ReductionOp::kLogAnd, 1},
      {acc::ReductionOp::kLogOr, 1},
  };
  for (const auto& c : cases) {
    const acc::RuntimeOp<std::int64_t> rop{c.op};
    gpusim::launch(dev, {1}, {128}, layout.bytes(),
                   [&](gpusim::ThreadCtx& ctx) {
                     const std::uint32_t t = ctx.threadIdx.x;
                     ctx.sts(sbuf, t, static_cast<std::int64_t>(t) + 1);
                     block_tree_reduce(ctx, sbuf, 0, 128, 1, t, rop);
                     if (t == 0) ctx.st(ov, 0, ctx.lds(sbuf, 0));
                   });
    EXPECT_EQ(out.host_span()[0], c.expect)
        << to_string(c.op);
  }
}

}  // namespace
}  // namespace accred::reduce
