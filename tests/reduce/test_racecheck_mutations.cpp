// Barrier-mutation tests: test-local kernels mirror the shipped reduction
// strategies' staging + tree structure with exactly one barrier deleted,
// and the race detector must catch each deletion — evidence that every
// barrier the paper's codegen emits is load-bearing. The flip side is
// checked too: the warp-synchronous tail (§3.1.1) drops syncthreads
// without introducing races (so caps_like's extra tree barriers are
// redundant), and the whole unmodified Table 2 suite is race-free.
#include <gtest/gtest.h>

#include <string>

#include "acc/ops.hpp"
#include "gpusim/launch.hpp"
#include "reduce/tree.hpp"
#include "testsuite/runner.hpp"

namespace accred {
namespace {

using gpusim::Device;
using gpusim::LaunchStats;
using gpusim::SharedLayout;
using gpusim::SimOptions;
using gpusim::ThreadCtx;

SimOptions rc_opts() {
  SimOptions o;
  o.racecheck = true;
  o.sim_threads = 1;
  return o;
}

std::string first_report(const LaunchStats& s) {
  return s.race_reports.empty() ? std::string("(no reports)")
                                : gpusim::to_string(s.race_reports[0]);
}

// ---- flat staging + sequential-addressing tree (the §3.1.1 shape) -----

enum class Skip {
  kNone,         ///< faithful: all barriers present
  kLeadingSync,  ///< drop the syncthreads ordering staging before the tree
  kStepSync,     ///< drop the syncthreads after the multi-warp tree step
  kTailSyncwarp, ///< drop one syncwarp inside the warp-synchronous tail
  kPublishSync,  ///< drop the syncthreads publishing the tail's result
};

struct FlatTreeRun {
  LaunchStats stats;
  float result = 0;  ///< what thread 0 read back as the reduction value
};

/// 64 threads (2 warps) stage thread-id values and tree-reduce them with a
/// warp-synchronous tail — the structure of reduce/tree.hpp, hand-rolled so
/// one barrier can be deleted without touching the shipped helper.
FlatTreeRun run_flat_tree(Skip skip, const SimOptions& opts = rc_opts()) {
  Device dev;
  constexpr std::uint32_t kN = 64;
  auto out = dev.alloc<float>(kN);
  auto ov = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<float>(kN);
  FlatTreeRun run;
  run.stats = gpusim::launch(
      dev, {1}, {kN}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        {
          auto p = ctx.prof_scope("staging");
          ctx.sts(sbuf, i, static_cast<float>(i));
        }
        auto p = ctx.prof_scope("tree");
        if (skip != Skip::kLeadingSync) ctx.syncthreads();
        bool tail = false;
        for (std::uint32_t stride = kN / 2; stride >= 1; stride /= 2) {
          if (i < stride) {
            const float a = ctx.lds(sbuf, i);
            const float b = ctx.lds(sbuf, i + stride);
            ctx.sts(sbuf, i, a + b);
          }
          if (stride < 32) {
            if (!(skip == Skip::kTailSyncwarp && stride == 16)) {
              ctx.syncwarp();
            }
            tail = true;
          } else if (!(skip == Skip::kStepSync && stride == 32)) {
            ctx.syncthreads();
          }
        }
        if (tail && skip != Skip::kPublishSync) ctx.syncthreads();
        ctx.st(ov, i, ctx.lds(sbuf, 0));
      },
      opts);
  run.result = out.host_span()[0];
  return run;
}

TEST(RacecheckMutations, FlatTreeUnmutatedIsRaceFree) {
  const FlatTreeRun run = run_flat_tree(Skip::kNone);
  EXPECT_EQ(run.stats.races, 0u) << first_report(run.stats);
  EXPECT_FLOAT_EQ(run.result, 63.0f * 64.0f / 2.0f);
}

TEST(RacecheckMutations, MissingLeadingSyncthreadsIsCaughtWithStages) {
  // Warp 0's tree reads warp 1's staging slots before warp 1 stages them;
  // the report must attribute the two sides to their prof_scope stages.
  const FlatTreeRun run = run_flat_tree(Skip::kLeadingSync);
  EXPECT_GT(run.stats.races, 0u);
  ASSERT_FALSE(run.stats.race_reports.empty());
  bool stage_pair = false;
  for (const gpusim::RaceReport& r : run.stats.race_reports) {
    if ((r.first.stage == "tree" && r.second.stage == "staging") ||
        (r.first.stage == "staging" && r.second.stage == "tree")) {
      stage_pair = true;
    }
  }
  EXPECT_TRUE(stage_pair) << first_report(run.stats);
}

TEST(RacecheckMutations, MissingTreeStepSyncthreadsIsCaught) {
  const FlatTreeRun run = run_flat_tree(Skip::kStepSync);
  EXPECT_GT(run.stats.races, 0u);
  ASSERT_FALSE(run.stats.race_reports.empty());
  EXPECT_EQ(run.stats.race_reports[0].first.stage, "tree");
  EXPECT_EQ(run.stats.race_reports[0].second.stage, "tree");
}

TEST(RacecheckMutations, MissingTailSyncwarpIsCaught) {
  // Even inside one warp, a combine step may not read its neighbors'
  // results without the syncwarp that closes the previous step.
  const FlatTreeRun run = run_flat_tree(Skip::kTailSyncwarp);
  EXPECT_GT(run.stats.races, 0u);
}

TEST(RacecheckMutations, MissingPublishSyncthreadsIsCaught) {
  // The warp-scoped tail leaves the result ordered only for warp 0; warp
  // 1's read-back of the final value needs the trailing syncthreads.
  const FlatTreeRun run = run_flat_tree(Skip::kPublishSync);
  EXPECT_GT(run.stats.races, 0u);
}

TEST(RacecheckMutations, EveryMutantTerminatesWithALaunchErrorUnderEscalation) {
  // The robustness contract (DESIGN.md §11): with error_on_race — no
  // strict mode — every barrier-deletion mutant must *terminate* with a
  // structured LaunchError{kRace}, not hang and not pass. The lenient
  // barrier model guarantees termination (each wave releases every
  // waiter); escalation turns the detected race into the failure.
  for (const Skip skip : {Skip::kLeadingSync, Skip::kStepSync,
                          Skip::kTailSyncwarp, Skip::kPublishSync}) {
    SimOptions o = rc_opts();
    o.error_on_race = true;
    try {
      (void)run_flat_tree(skip, o);
      FAIL() << "mutant " << static_cast<int>(skip)
             << " was expected to raise LaunchError{kRace}";
    } catch (const gpusim::LaunchError& e) {
      EXPECT_EQ(e.info().code, gpusim::LaunchErrorCode::kRace)
          << to_string(e.info());
      EXPECT_NE(e.info().message.find("racecheck conflict"),
                std::string::npos)
          << e.info().message;
    }
  }
  // The unmutated kernel is untouched by escalation.
  SimOptions o = rc_opts();
  o.error_on_race = true;
  const FlatTreeRun clean = run_flat_tree(Skip::kNone, o);
  EXPECT_EQ(clean.stats.races, 0u) << first_report(clean.stats);
}

// ---- vector 6c mirror: per-row trees, one warp per row ----------------

LaunchStats run_row_tree(bool leading_sync) {
  Device dev;
  auto out = dev.alloc<float>(2);
  auto ov = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<float>(64);
  return gpusim::launch(
      dev, {1}, {32, 2}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t x = ctx.threadIdx.x;
        const std::uint32_t y = ctx.threadIdx.y;
        const std::uint32_t base = y * 32;  // row-contiguous (Fig. 6c)
        ctx.sts(sbuf, base + x, static_cast<float>(x));
        if (leading_sync) ctx.syncthreads();
        for (std::uint32_t stride = 16; stride >= 1; stride /= 2) {
          if (x < stride) {
            const float a = ctx.lds(sbuf, base + x);
            const float b = ctx.lds(sbuf, base + x + stride);
            ctx.sts(sbuf, base + x, a + b);
          }
          ctx.syncwarp();  // each row is exactly one warp
        }
        ctx.syncthreads();
        if (x == 0) ctx.st(ov, y, ctx.lds(sbuf, base));
      },
      rc_opts());
}

TEST(RacecheckMutations, VectorRowTreeMissingLeadingSyncIsCaught) {
  // With rows warp-aligned the races stay within one warp — exactly the
  // per-warp interval the detector tracks separately from block epochs.
  const LaunchStats clean = run_row_tree(/*leading_sync=*/true);
  EXPECT_EQ(clean.races, 0u) << first_report(clean);
  const LaunchStats racy = run_row_tree(/*leading_sync=*/false);
  EXPECT_GT(racy.races, 0u);
}

// ---- worker 8c mirror: first-row staging across warps -----------------

LaunchStats run_worker_first_row(bool leading_sync) {
  Device dev;
  constexpr std::uint32_t kWorkers = 8;
  auto out = dev.alloc<float>(1);
  auto ov = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<float>(kWorkers);
  return gpusim::launch(
      dev, {1}, {32, kWorkers}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t x = ctx.threadIdx.x;
        const std::uint32_t w = ctx.threadIdx.y;  // worker = one warp here
        // Each worker's lane 0 stages its partial into the first row.
        if (x == 0) ctx.sts(sbuf, w, static_cast<float>(w));
        if (leading_sync) ctx.syncthreads();
        // Warp 0 folds the staged row (readers in a different warp than
        // most of the writers).
        for (std::uint32_t stride = kWorkers / 2; stride >= 1; stride /= 2) {
          if (w == 0 && x < stride) {
            const float a = ctx.lds(sbuf, x);
            const float b = ctx.lds(sbuf, x + stride);
            ctx.sts(sbuf, x, a + b);
          }
          ctx.syncthreads();
        }
        if (w == 0 && x == 0) ctx.st(ov, 0, ctx.lds(sbuf, 0));
      },
      rc_opts());
}

TEST(RacecheckMutations, WorkerFirstRowMissingLeadingSyncIsCaught) {
  const LaunchStats clean = run_worker_first_row(/*leading_sync=*/true);
  EXPECT_EQ(clean.races, 0u) << first_report(clean);
  const LaunchStats racy = run_worker_first_row(/*leading_sync=*/false);
  EXPECT_GT(racy.races, 0u);
}

// ---- the shipped tree helper, both tail modes -------------------------

struct HelperRun {
  LaunchStats stats;
  float result = 0;
};

HelperRun run_shipped_tree(bool unroll_last_warp) {
  Device dev;
  constexpr std::uint32_t kN = 64;
  auto out = dev.alloc<float>(1);
  auto ov = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<float>(kN);
  const acc::RuntimeOp<float> op{acc::ReductionOp::kSum};
  reduce::TreeOptions topt;
  topt.unroll_last_warp = unroll_last_warp;
  HelperRun run;
  run.stats = gpusim::launch(
      dev, {1}, {kN}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        ctx.sts(sbuf, i, static_cast<float>(i));
        reduce::block_tree_reduce<float>(ctx, sbuf, 0, kN, 1, i, op, topt);
        if (i == 0) ctx.st(ov, 0, ctx.lds(sbuf, 0));
      },
      rc_opts());
  run.result = out.host_span()[0];
  return run;
}

TEST(RacecheckMutations, CapsLikeExtraTreeBarriersAreRedundant) {
  // caps_like keeps syncthreads on every tree step (unroll_last_warp off);
  // the warp-synchronous tail removes most of them. Both are race-free
  // with identical results — so the extra barriers buy nothing.
  const HelperRun all_barriers = run_shipped_tree(false);
  const HelperRun warp_tail = run_shipped_tree(true);
  EXPECT_EQ(all_barriers.stats.races, 0u) << first_report(all_barriers.stats);
  EXPECT_EQ(warp_tail.stats.races, 0u) << first_report(warp_tail.stats);
  EXPECT_FLOAT_EQ(all_barriers.result, warp_tail.result);
  EXPECT_GT(all_barriers.stats.barriers, warp_tail.stats.barriers);
  EXPECT_GT(warp_tail.stats.syncwarps, 0u);
}

// ---- the unmodified strategies, end to end ----------------------------

TEST(RacecheckMutations, Table2SuiteIsRaceFreeUnderRacecheck) {
  testsuite::RunnerOptions o;
  o.reduction_extent = 1 << 9;
  o.config.num_gangs = 8;  // scaled like test_runner.cpp: quick, same shapes
  o.config.num_workers = 4;
  o.config.vector_length = 32;
  o.racecheck = true;
  testsuite::Runner runner(o);
  for (const testsuite::CaseSpec& spec : testsuite::table2_grid()) {
    for (acc::CompilerId id :
         {acc::CompilerId::kOpenUH, acc::CompilerId::kPgiLike,
          acc::CompilerId::kCapsLike}) {
      const testsuite::CaseOutcome out = runner.run(id, spec);
      if (out.status != acc::Robustness::kOk) continue;  // modeled F/CE
      std::string what(to_string(spec.pos));
      what.append(" ").append(to_string(spec.op));
      what.append(" ").append(to_string(spec.type));
      what.append(" @ ").append(to_string(id));
      EXPECT_TRUE(out.verified) << what << ": " << out.detail;
      EXPECT_TRUE(out.stats.racecheck) << what;
      EXPECT_EQ(out.stats.races, 0u)
          << what << ": " << first_report(out.stats);
    }
  }
}

}  // namespace
}  // namespace accred
