// Tests for the finalization kernels: the paper's single-block second
// kernel (Fig. 5c) and the two-pass extension, across counts and widths.
#include "reduce/finalize.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace accred::reduce {
namespace {

template <typename T>
T finalize_once(std::size_t count, acc::ReductionOp op, bool two_pass,
                gpusim::LaunchStats* stats_out = nullptr) {
  gpusim::Device dev;
  auto host = test::make_input<T>(op, count);
  auto in = dev.alloc<T>(count);
  in.copy_from_host(host);
  auto out = dev.alloc<T>(1);
  StrategyConfig sc;
  gpusim::LaunchStats stats =
      two_pass ? launch_finalize_two_pass(dev, in.view(), count, out.view(),
                                          op, sc)
               : launch_finalize(dev, in.view(), count, out.view(), op, sc);
  if (stats_out != nullptr) *stats_out = stats;
  const T expect = test::cpu_fold<T>(op, std::span<const T>(host));
  EXPECT_TRUE(testsuite::reduction_result_matches(expect, out.host_span()[0],
                                                  count))
      << "count=" << count << " two_pass=" << two_pass;
  return out.host_span()[0];
}

TEST(Finalize, SingleBlockAllCounts) {
  for (std::size_t count : {1u, 2u, 31u, 192u, 255u, 256u, 257u, 5000u}) {
    (void)finalize_once<std::int64_t>(count, acc::ReductionOp::kSum, false);
    (void)finalize_once<double>(count, acc::ReductionOp::kMax, false);
  }
}

TEST(Finalize, TwoPassAllCounts) {
  for (std::size_t count : {1u, 200u, 4096u, 100'000u, 196'608u}) {
    (void)finalize_once<std::int64_t>(count, acc::ReductionOp::kSum, true);
    (void)finalize_once<std::uint32_t>(count, acc::ReductionOp::kBitXor,
                                       true);
  }
}

TEST(Finalize, TwoPassBeatsSingleBlockOnLargeBuffers) {
  // The RMP partials buffer (192 x 8 x 128 = 196608 entries) serializes a
  // single-block finalize on one SM; the two-pass spreads pass one over
  // the whole device.
  gpusim::LaunchStats one;
  gpusim::LaunchStats two;
  (void)finalize_once<float>(196'608, acc::ReductionOp::kSum, false, &one);
  (void)finalize_once<float>(196'608, acc::ReductionOp::kSum, true, &two);
  EXPECT_LT(two.device_time_ns, one.device_time_ns);
}

TEST(Finalize, SingleBlockWinsOnSmallBuffers) {
  // Fig. 5c's choice is right for the gang case: 192 partials do not
  // amortize a second launch.
  gpusim::LaunchStats one;
  gpusim::LaunchStats two;
  (void)finalize_once<float>(192, acc::ReductionOp::kSum, false, &one);
  (void)finalize_once<float>(192, acc::ReductionOp::kSum, true, &two);
  EXPECT_LT(one.device_time_ns, two.device_time_ns);
}

}  // namespace
}  // namespace accred::reduce
