// Tests for cascaded reductions (§3.2 / Fig. 4 read as one program):
// different variables reduced at different levels, each feeding the next.
#include "reduce/cascade.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace accred::reduce {
namespace {

acc::LaunchConfig small_cfg() {
  acc::LaunchConfig cfg;
  cfg.num_gangs = 4;
  cfg.num_workers = 4;
  cfg.vector_length = 32;
  return cfg;
}

/// CPU reference of the full chain.
template <typename T>
T reference(const Nest3& n, std::span<const T> host, const CascadeOps& ops,
            bool with_inits, T gang_init) {
  const acc::RuntimeOp<T> vop{ops.vector_op};
  const acc::RuntimeOp<T> wop{ops.worker_op};
  const acc::RuntimeOp<T> gop{ops.gang_op};
  T total = gang_init;
  for (std::int64_t k = 0; k < n.nk; ++k) {
    T j_sum = with_inits ? static_cast<T>(k) : wop.identity();
    for (std::int64_t j = 0; j < n.nj; ++j) {
      T i_sum = with_inits ? static_cast<T>(j) : vop.identity();
      for (std::int64_t i = 0; i < n.ni; ++i) {
        i_sum = vop.apply(
            i_sum, host[static_cast<std::size_t>((k * n.nj + j) * n.ni + i)]);
      }
      j_sum = wop.apply(j_sum, i_sum);
    }
    total = gop.apply(total, j_sum);
  }
  return total;
}

template <typename T>
void run_case(const Nest3& n, const CascadeOps& ops, bool with_inits) {
  gpusim::Device dev;
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto host = test::make_input<T>(ops.vector_op, volume);
  auto input = dev.alloc<T>(volume);
  input.copy_from_host(host);
  auto iv = input.view();

  CascadeBindings<T> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
  };
  if (with_inits) {
    b.vector_init = [](std::int64_t, std::int64_t j) {
      return static_cast<T>(j);
    };
    b.worker_init = [](std::int64_t k) { return static_cast<T>(k); };
  }
  b.gang_init = static_cast<T>(5);
  b.gang_init_set = true;

  auto res = run_cascaded_reduction<T>(dev, n, small_cfg(), ops, b);
  ASSERT_TRUE(res.scalar.has_value());
  EXPECT_EQ(res.kernels, 2);
  const T expect = reference<T>(n, host, ops, with_inits, static_cast<T>(5));
  EXPECT_TRUE(testsuite::reduction_result_matches(
      expect, *res.scalar, static_cast<std::uint64_t>(volume)))
      << "expect " << expect << " actual " << *res.scalar;
}

TEST(Cascade, Fig4ChainSumSumSum) {
  run_case<std::int64_t>(Nest3{7, 9, 100},
                         CascadeOps{acc::ReductionOp::kSum,
                                    acc::ReductionOp::kSum,
                                    acc::ReductionOp::kSum},
                         /*with_inits=*/false);
}

TEST(Cascade, Fig4InitialValuesPerInstance) {
  // i_sum = j and j_sum = k, exactly the listings of Fig. 4.
  run_case<std::int64_t>(Nest3{5, 6, 64},
                         CascadeOps{acc::ReductionOp::kSum,
                                    acc::ReductionOp::kSum,
                                    acc::ReductionOp::kSum},
                         /*with_inits=*/true);
}

TEST(Cascade, MixedOperatorsAcrossLevels) {
  // max of per-k sums of per-row sums: different operators per level.
  run_case<std::int64_t>(Nest3{6, 5, 77},
                         CascadeOps{acc::ReductionOp::kSum,
                                    acc::ReductionOp::kSum,
                                    acc::ReductionOp::kMax},
                         false);
  // sum over k of per-k max of row minima.
  run_case<std::int64_t>(Nest3{6, 5, 77},
                         CascadeOps{acc::ReductionOp::kMin,
                                    acc::ReductionOp::kMax,
                                    acc::ReductionOp::kSum},
                         false);
}

TEST(Cascade, FloatChainWithinTolerance) {
  run_case<double>(Nest3{4, 8, 200},
                   CascadeOps{acc::ReductionOp::kSum, acc::ReductionOp::kMax,
                              acc::ReductionOp::kSum},
                   false);
}

TEST(Cascade, SinksObserveIntermediateResults) {
  gpusim::Device dev;
  const Nest3 n{3, 4, 16};
  auto input = dev.alloc<int>(static_cast<std::size_t>(n.nk * n.nj * n.ni));
  input.fill(1);
  auto temps = dev.alloc<int>(static_cast<std::size_t>(n.nk * n.nj));
  auto ktemps = dev.alloc<int>(static_cast<std::size_t>(n.nk));
  auto iv = input.view();
  auto tv = temps.view();
  auto kv = ktemps.view();

  CascadeBindings<int> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
  };
  b.vector_sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                      int r) {
    ctx.st(tv, static_cast<std::size_t>(k * n.nj + j), r);
  };
  b.worker_sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, int r) {
    ctx.st(kv, static_cast<std::size_t>(k), r);
  };
  auto res = run_cascaded_reduction<int>(
      dev, n, small_cfg(),
      CascadeOps{acc::ReductionOp::kSum, acc::ReductionOp::kSum,
                 acc::ReductionOp::kSum},
      b);
  // temp[k][j] = ni; ktemp[k] = nj*ni; scalar = nk*nj*ni.
  for (int t : temps.host_span()) EXPECT_EQ(t, n.ni);
  for (int t : ktemps.host_span()) EXPECT_EQ(t, n.nj * n.ni);
  EXPECT_EQ(res.scalar.value_or(0), n.nk * n.nj * n.ni);
}

TEST(Cascade, EdgeExtents) {
  for (const Nest3 n : {Nest3{1, 1, 1}, Nest3{1, 9, 33}, Nest3{13, 1, 50},
                        Nest3{2, 17, 1}}) {
    run_case<std::int64_t>(n,
                           CascadeOps{acc::ReductionOp::kSum,
                                      acc::ReductionOp::kSum,
                                      acc::ReductionOp::kSum},
                           true);
  }
}

}  // namespace
}  // namespace accred::reduce
