// Golden-file tests: the emitted CUDA translation units are compared
// byte-for-byte against checked-in references (tests/codegen/golden/).
// Regenerate the goldens deliberately when the emitter changes — an
// unexpected diff here means the generated kernels changed.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "codegen/cuda_emitter.hpp"

#ifndef ACCRED_GOLDEN_DIR
#define ACCRED_GOLDEN_DIR "tests/codegen/golden"
#endif

namespace accred::codegen {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(ACCRED_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Golden, VectorSumFloatOpenUH) {
  acc::NestIR nest;
  nest.loops = {acc::LoopSpec{acc::mask_of(acc::Par::kGang), 1000, {}},
                acc::LoopSpec{acc::mask_of(acc::Par::kWorker), 100, {}},
                acc::LoopSpec{acc::mask_of(acc::Par::kVector), 100,
                              {{acc::ReductionOp::kSum, "red"}}}};
  nest.vars = {{"red", acc::DataType::kFloat, 2, 1}};
  const auto plan =
      plan_single(nest, acc::profile(acc::CompilerId::kOpenUH));
  BodySpec b;
  b.sink_stmt = "temp[(k * nj + j) * ni] = RESULT;";
  EXPECT_EQ(emit_cuda(plan, b), read_golden("vector_sum_float_openuh.cu"));
}

TEST(Golden, GangMaxDoubleOpenUH) {
  acc::NestIR nest;
  nest.loops = {acc::LoopSpec{acc::mask_of(acc::Par::kGang), 1000,
                              {{acc::ReductionOp::kMax, "m"}}},
                acc::LoopSpec{acc::mask_of(acc::Par::kWorker), 100, {}},
                acc::LoopSpec{acc::mask_of(acc::Par::kVector), 100, {}}};
  nest.vars = {{"m", acc::DataType::kDouble, 0, acc::VarInfo::kHostUse}};
  const auto plan =
      plan_single(nest, acc::profile(acc::CompilerId::kOpenUH));
  BodySpec b;
  b.contrib_expr = "input[k * nj * ni]";
  b.parallel_work_stmt =
      "temp[(k * nj + j) * ni + i] = input[(k * nj + j) * ni + i];";
  EXPECT_EQ(emit_cuda(plan, b), read_golden("gang_max_double_openuh.cu"));
}

TEST(Golden, WorkerProdIntCapsLike) {
  acc::NestIR nest;
  nest.loops = {acc::LoopSpec{acc::mask_of(acc::Par::kGang), 1000, {}},
                acc::LoopSpec{acc::mask_of(acc::Par::kWorker), 100,
                              {{acc::ReductionOp::kProd, "p"}}},
                acc::LoopSpec{acc::mask_of(acc::Par::kVector), 100, {}}};
  nest.vars = {{"p", acc::DataType::kInt32, 1, 0}};
  const auto plan =
      plan_single(nest, acc::profile(acc::CompilerId::kCapsLike));
  EXPECT_EQ(emit_cuda(plan, {}), read_golden("worker_prod_int_capslike.cu"));
}

}  // namespace
}  // namespace accred::codegen
