// Tests for the CUDA source emitter: structural well-formedness, the
// strategy-specific constructs the paper describes, and golden-fragment
// checks for the OpenUH-vs-baseline differences.
#include "codegen/cuda_emitter.hpp"

#include <gtest/gtest.h>

namespace accred::codegen {
namespace {

acc::NestIR triple_nest_with_clause(int level, acc::ReductionOp op,
                                    acc::DataType type, int accum, int use) {
  acc::NestIR nest;
  nest.loops = {acc::LoopSpec{acc::mask_of(acc::Par::kGang), 1000, {}},
                acc::LoopSpec{acc::mask_of(acc::Par::kWorker), 100, {}},
                acc::LoopSpec{acc::mask_of(acc::Par::kVector), 100, {}}};
  nest.loops[static_cast<std::size_t>(level)].reductions = {{op, "red"}};
  nest.vars = {{"red", type, accum, use}};
  return nest;
}

acc::ExecutionPlan plan_for(int level, int accum, int use,
                            acc::CompilerId id = acc::CompilerId::kOpenUH,
                            acc::ReductionOp op = acc::ReductionOp::kSum,
                            acc::DataType type = acc::DataType::kFloat) {
  return plan_single(triple_nest_with_clause(level, op, type, accum, use),
                     acc::profile(id));
}

bool balanced_braces(const std::string& s) {
  int depth = 0;
  for (char c : s) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

TEST(CudaEmitter, VectorKernelHasOpenUHConstructs) {
  const std::string cu = emit_cuda(plan_for(2, 2, 1), {});
  EXPECT_TRUE(balanced_braces(cu)) << cu;
  EXPECT_NE(cu.find("__global__ void acc_reduction_main"), std::string::npos);
  EXPECT_NE(cu.find("__shared__ float sbuf[1024]"), std::string::npos);
  EXPECT_NE(cu.find("Fig. 6c row-contiguous staging"), std::string::npos);
  // Window-sliding gang loop of Fig. 3.
  EXPECT_NE(cu.find("for (long k = blockIdx.x; k < nk; k += gridDim.x)"),
            std::string::npos);
  // Fully unrolled tree with a warp-synchronous tail.
  EXPECT_NE(cu.find("if (threadIdx.x < 64)"), std::string::npos);
  EXPECT_NE(cu.find("__syncwarp();"), std::string::npos);
  EXPECT_NE(cu.find("if (threadIdx.x < 1)"), std::string::npos);
  // Single kernel: no finalize.
  EXPECT_EQ(cu.find("acc_reduction_finalize"), std::string::npos);
}

TEST(CudaEmitter, CapsVectorKernelIsTransposedWithoutWarpTail) {
  const std::string cu = emit_cuda(plan_for(2, 2, 1,
                                            acc::CompilerId::kCapsLike), {});
  EXPECT_TRUE(balanced_braces(cu));
  EXPECT_NE(cu.find("Fig. 6b transposed staging"), std::string::npos);
  EXPECT_NE(cu.find("sbuf[threadIdx.x * blockDim.y + threadIdx.y]"),
            std::string::npos);
  EXPECT_EQ(cu.find("__syncwarp()"), std::string::npos);
}

TEST(CudaEmitter, GangKernelEmitsPartialBufferAndFinalize) {
  const std::string cu = emit_cuda(plan_for(0, 0, acc::VarInfo::kHostUse),
                                   {});
  EXPECT_TRUE(balanced_braces(cu));
  EXPECT_NE(cu.find("partial[blockIdx.x] = priv;"), std::string::npos);
  EXPECT_NE(cu.find("acc_reduction_finalize"), std::string::npos);
  // The one finalize block grid-strides over the 192 per-gang partials.
  EXPECT_NE(cu.find("idx < 192"), std::string::npos);
}

TEST(CudaEmitter, PgiLikeUsesRolledTreeAndBlocksFlattenedLoops) {
  // Nested gang reduction: window loops, rolled (non-unrolled) tree.
  const std::string gang = emit_cuda(plan_for(0, 0, acc::VarInfo::kHostUse,
                                              acc::CompilerId::kPgiLike), {});
  EXPECT_TRUE(balanced_braces(gang));
  EXPECT_NE(gang.find("for (unsigned s ="), std::string::npos);
  EXPECT_EQ(gang.find("__syncwarp"), std::string::npos);
  // Same-loop reduction: the blocking quirk shows up as chunked loops.
  acc::NestIR nest;
  nest.loops = {acc::LoopSpec{
      acc::Par::kGang | acc::Par::kWorker | acc::Par::kVector, 100000,
      {{acc::ReductionOp::kProd, "m"}}}};
  nest.vars = {{"m", acc::DataType::kInt32, 0, acc::VarInfo::kHostUse}};
  const std::string flat = emit_cuda(
      plan_single(nest, acc::profile(acc::CompilerId::kPgiLike)), {});
  EXPECT_TRUE(balanced_braces(flat));
  EXPECT_NE(flat.find("k_chunk"), std::string::npos);
}

TEST(CudaEmitter, WorkerKernelFirstRowVsDuplicated) {
  const std::string uh = emit_cuda(plan_for(1, 1, 0), {});
  EXPECT_NE(uh.find("Fig. 8c first-row staging"), std::string::npos);
  EXPECT_NE(uh.find("if (threadIdx.x == 0) sbuf[threadIdx.y] = priv;"),
            std::string::npos);
  const std::string caps =
      emit_cuda(plan_for(1, 1, 0, acc::CompilerId::kCapsLike), {});
  EXPECT_NE(caps.find("Fig. 8b duplicated-rows staging"), std::string::npos);
  EXPECT_NE(caps.find("__shared__ float sbuf[1024]"), std::string::npos);
}

TEST(CudaEmitter, SameLoopKernelFlattensThreads) {
  acc::NestIR nest;
  nest.loops = {acc::LoopSpec{
      acc::Par::kGang | acc::Par::kWorker | acc::Par::kVector, 100000,
      {{acc::ReductionOp::kSum, "m"}}}};
  nest.vars = {{"m", acc::DataType::kInt64, 0, acc::VarInfo::kHostUse}};
  const auto plan =
      plan_single(nest, acc::profile(acc::CompilerId::kOpenUH));
  BodySpec body;
  body.contrib_expr = "input[IDX]";
  const std::string cu = emit_cuda(plan, body);
  EXPECT_TRUE(balanced_braces(cu));
  EXPECT_NE(cu.find("const unsigned gtid"), std::string::npos);
  EXPECT_NE(cu.find("input[k]"), std::string::npos);  // IDX substituted
  EXPECT_NE(cu.find("partial[gtid] = priv;"), std::string::npos);
  EXPECT_NE(cu.find("long long priv = 0;"), std::string::npos);
}

TEST(CudaEmitter, OperatorsAndTypesSpelledCorrectly) {
  auto cu = emit_cuda(plan_for(2, 2, 1, acc::CompilerId::kOpenUH,
                               acc::ReductionOp::kMax,
                               acc::DataType::kDouble), {});
  EXPECT_NE(cu.find("double priv = -DBL_MAX;"), std::string::npos);
  EXPECT_NE(cu.find(" > "), std::string::npos);
  cu = emit_cuda(plan_for(2, 2, 1, acc::CompilerId::kOpenUH,
                          acc::ReductionOp::kBitXor, acc::DataType::kInt32),
                 {});
  EXPECT_NE(cu.find("int priv = 0;"), std::string::npos);
  EXPECT_NE(cu.find(" ^ "), std::string::npos);
  cu = emit_cuda(plan_for(2, 2, 1, acc::CompilerId::kOpenUH,
                          acc::ReductionOp::kMin, acc::DataType::kUInt32),
                 {});
  EXPECT_NE(cu.find("unsigned int priv = UINT_MAX;"), std::string::npos);
}

TEST(CudaEmitter, InstanceInitFoldedAfterTree) {
  BodySpec body;
  body.instance_init_expr = "j";
  body.sink_stmt = "temp[(k * nj + j) * ni] = RESULT;";
  const std::string cu = emit_cuda(plan_for(2, 2, 1), body);
  // §3.1.1: "the initial value is processed after the vector reduction
  // algorithm is done".
  EXPECT_NE(cu.find("RESULT = ((float)(j) + sbuf["), std::string::npos);
  EXPECT_NE(cu.find("temp[(k * nj + j) * ni] = RESULT;"), std::string::npos);
}

TEST(CudaEmitter, LaunchCommentMatchesPlan) {
  const std::string cu = emit_cuda(plan_for(2, 2, 1), {});
  EXPECT_NE(cu.find("<<<dim3(192), dim3(128, 8)>>>"), std::string::npos);
}

}  // namespace
}  // namespace accred::codegen
