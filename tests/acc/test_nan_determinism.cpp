// NaN determinism for min/max reductions: ops.hpp's NaN-propagating
// apply makes the fold's result independent of fold order, so every
// strategy (all seven Table 2 positions), every fastpath setting, and
// every host-thread count must produce bit-identical results on inputs
// laced with quiet NaNs and +/-infinities. Drives acc::execute directly —
// execute_guarded's numeric guard rejects non-finite scalars by design,
// so the guarded path can never see these inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "acc/executor.hpp"
#include "testsuite/runner.hpp"

namespace accred::acc {
namespace {

/// Where the reduction accumulates and where its value is next used, per
/// position — mirrors the runner's internal semantics table (runner.cpp).
struct Span {
  int accum;
  int use;
};

Span span_of(Position pos) {
  switch (pos) {
    case Position::kGang: return {0, VarInfo::kHostUse};
    case Position::kWorker: return {1, 0};
    case Position::kVector: return {2, 1};
    case Position::kGangWorker: return {1, VarInfo::kHostUse};
    case Position::kWorkerVector: return {2, 0};
    case Position::kGangWorkerVector: return {2, VarInfo::kHostUse};
    case Position::kSameLineGangWorkerVector: return {0, VarInfo::kHostUse};
  }
  return {0, VarInfo::kHostUse};
}

/// Finite values with quiet NaNs and +/-infinities sprinkled at prime
/// periods, so multi-slot positions get both NaN-carrying and NaN-free
/// slots. No negative zero: min(-0.0, 0.0) is order-dependent at the bit
/// level and would fail the bitwise comparison for a reason unrelated to
/// NaN handling.
template <typename T>
std::vector<T> laced_input(std::size_t n) {
  std::vector<T> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 97 == 13) {
      v[i] = std::numeric_limits<T>::quiet_NaN();
    } else if (i % 89 == 31) {
      v[i] = std::numeric_limits<T>::infinity();
    } else if (i % 83 == 47) {
      v[i] = -std::numeric_limits<T>::infinity();
    } else {
      v[i] = static_cast<T>(static_cast<double>(i % 19) - 9.0);
    }
  }
  return v;
}

template <typename T>
auto bits_of(T v) {
  if constexpr (sizeof(T) == 4) {
    return std::bit_cast<std::uint32_t>(v);
  } else {
    return std::bit_cast<std::uint64_t>(v);
  }
}

template <typename T>
void run_cell(Position pos, ReductionOp op, bool fastpath,
              std::uint32_t sim_threads) {
  const testsuite::CaseSpec spec{pos, op, data_type_of<T>()};
  testsuite::RunnerOptions opts;
  opts.reduction_extent = 64;
  ExecutionPlan plan =
      testsuite::plan_for_case(CompilerId::kOpenUH, spec, opts);
  plan.strategy.sim.fastpath = fastpath;
  plan.strategy.sim.sim_threads = sim_threads;

  gpusim::Device dev;
  const std::int64_t nk = plan.dims.nk;
  const std::int64_t nj = plan.dims.nj;
  const std::int64_t ni = plan.dims.ni;
  const Span sp = span_of(pos);
  const std::size_t volume =
      pos == Position::kSameLineGangWorkerVector
          ? static_cast<std::size_t>(plan.same_loop_extent)
          : static_cast<std::size_t>(sp.accum == 0   ? nk
                                     : sp.accum == 1 ? nk * nj
                                                     : nk * nj * ni);
  const std::size_t slots = static_cast<std::size_t>(
      sp.use == -1 ? 1 : (sp.use == 0 ? nk : nk * nj));

  const std::vector<T> host = laced_input<T>(volume);
  auto input = dev.alloc<T>(volume);
  input.copy_from_host(host);
  auto in_view = input.view();
  auto out = dev.alloc<T>(slots);
  auto out_view = out.view();

  const int accum = sp.accum;
  const int use = sp.use;
  reduce::Bindings<T> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    std::size_t idx = static_cast<std::size_t>(k);
    if (accum >= 1) {
      idx = static_cast<std::size_t>(k * nj + std::max<std::int64_t>(j, 0));
    }
    if (accum >= 2) {
      idx = static_cast<std::size_t>(
          (k * nj + std::max<std::int64_t>(j, 0)) * ni +
          std::max<std::int64_t>(i, 0));
    }
    return ctx.ld(in_view, idx);
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j, T r) {
    std::size_t s = 0;
    if (use == 0) s = static_cast<std::size_t>(k);
    if (use == 1) s = static_cast<std::size_t>(k * nj + j);
    ctx.st(out_view, s, r);
  };

  const auto res = execute<T>(dev, plan, b);

  const RuntimeOp<T> rop{op};
  const std::size_t per_slot = volume / slots;
  for (std::size_t s = 0; s < slots; ++s) {
    T expect = rop.identity();
    for (std::size_t i = 0; i < per_slot; ++i) {
      expect = rop.apply(expect, host[s * per_slot + i]);
    }
    const T actual = use == -1 ? res.scalar.value_or(rop.identity())
                               : out.host_span()[s];
    EXPECT_EQ(bits_of(expect), bits_of(actual))
        << "pos " << to_string(pos) << " op " << to_string(op) << " type "
        << to_string(spec.type) << " plan " << to_string(plan.kind)
        << " fastpath " << fastpath << " sim_threads " << sim_threads
        << " slot " << s << " expect " << expect << " actual " << actual;
  }
}

class NanDeterminism : public ::testing::TestWithParam<Position> {};

TEST_P(NanDeterminism, MinMaxBitIdenticalAcrossStrategyAndSimKnobs) {
  for (ReductionOp op : {ReductionOp::kMin, ReductionOp::kMax}) {
    for (const bool fastpath : {true, false}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        run_cell<float>(GetParam(), op, fastpath, threads);
        run_cell<double>(GetParam(), op, fastpath, threads);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, NanDeterminism,
                         ::testing::ValuesIn(testsuite::all_positions()),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == ' ' || c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace accred::acc
