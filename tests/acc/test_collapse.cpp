// Tests for collapse(n) support: index math, Region integration, and a
// verified 4-deep nest reduced through a collapsed vector loop.
#include "acc/collapse.hpp"

#include <gtest/gtest.h>

#include "acc/region.hpp"
#include "test_support.hpp"

namespace accred::acc {
namespace {

TEST(Collapse, ExtentProducts) {
  const std::int64_t ext[] = {3, 5, 7};
  EXPECT_EQ(collapsed_extent(ext), 105);
  const std::int64_t one[] = {42};
  EXPECT_EQ(collapsed_extent(one), 42);
  const std::int64_t bad[] = {3, 0};
  EXPECT_THROW((void)collapsed_extent(bad), std::invalid_argument);
  const std::int64_t huge[] = {1LL << 40, 1LL << 40};
  EXPECT_THROW((void)collapsed_extent(huge), std::invalid_argument);
}

TEST(Collapse, DecomposeRoundTrips) {
  const std::array<std::int64_t, 3> ext{3, 5, 7};
  std::int64_t flat = 0;
  for (std::int64_t a = 0; a < 3; ++a) {
    for (std::int64_t b = 0; b < 5; ++b) {
      for (std::int64_t c = 0; c < 7; ++c, ++flat) {
        const auto idx = decompose_index(flat, ext);
        EXPECT_EQ(idx[0], a);
        EXPECT_EQ(idx[1], b);
        EXPECT_EQ(idx[2], c);
      }
    }
  }
}

TEST(Collapse, RegionRejectsMismatchedArity) {
  gpusim::Device dev;
  Region region(dev);
  EXPECT_THROW(region.loop("loop gang collapse(2)", {3, 4, 5}),
               std::invalid_argument);
  EXPECT_THROW(region.loop("loop gang collapse(2)", std::int64_t{12}),
               std::invalid_argument);
  EXPECT_NO_THROW(region.loop("loop gang collapse(2)", {3, 4}));
  EXPECT_EQ(region.nest().loops.back().extent, 12);
}

TEST(Collapse, FourDeepNestThroughCollapsedVectorLoop) {
  // for a: gang / for b: worker / collapse(2) for (c, d): vector reduction.
  gpusim::Device dev;
  constexpr std::int64_t kA = 3;
  constexpr std::int64_t kB = 4;
  constexpr std::int64_t kC = 5;
  constexpr std::int64_t kD = 37;
  const std::array<std::int64_t, 2> inner{kC, kD};
  const auto count = std::size_t(kA * kB * kC * kD);
  auto host = test::make_input<std::int64_t>(ReductionOp::kSum, count);
  auto data = dev.alloc<std::int64_t>(count);
  data.copy_from_host(host);
  auto out = dev.alloc<std::int64_t>(std::size_t(kA * kB));
  auto dv = data.view();
  auto ov = out.view();

  Region region(dev);
  region.parallel("parallel num_gangs(3) num_workers(2) vector_length(32)")
      .loop("loop gang", kA)
      .loop("loop worker", kB)
      .loop("loop vector collapse(2) reduction(+:s)", {kC, kD})
      .var("s", DataType::kInt64, /*accum=*/2, /*use=*/1);

  reduce::Bindings<std::int64_t> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t a, std::int64_t bb,
                  std::int64_t flat) {
    // Recover (c, d) exactly as collapsed user code would.
    const auto [c, d] = decompose_index<2>(flat, inner);
    return ctx.ld(dv, std::size_t(((a * kB + bb) * kC + c) * kD + d));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t a, std::int64_t bb,
               std::int64_t r) {
    ctx.st(ov, std::size_t(a * kB + bb), r);
  };
  (void)region.run<std::int64_t>(b);

  for (std::int64_t a = 0; a < kA; ++a) {
    for (std::int64_t bb = 0; bb < kB; ++bb) {
      std::span<const std::int64_t> slab(
          host.data() + (a * kB + bb) * kC * kD, std::size_t(kC * kD));
      EXPECT_EQ(out.host_span()[std::size_t(a * kB + bb)],
                test::cpu_fold<std::int64_t>(ReductionOp::kSum, slab));
    }
  }
}

TEST(Collapse, SameLoopCollapseOverWholeSpace) {
  // All four loops collapsed onto one gang+vector line (Fig. 10 style).
  gpusim::Device dev;
  const std::array<std::int64_t, 4> ext{3, 4, 5, 6};
  const auto count = std::size_t(3 * 4 * 5 * 6);
  auto data = dev.alloc<std::int32_t>(count);
  data.fill(2);
  auto dv = data.view();

  Region region(dev);
  region.parallel("parallel num_gangs(4) vector_length(32)")
      .loop("loop gang vector collapse(4) reduction(+:t)", {3, 4, 5, 6})
      .var("t", DataType::kInt32, 0);
  reduce::Bindings<std::int32_t> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t flat, std::int64_t,
                  std::int64_t) {
    const auto idx = decompose_index<4>(flat, ext);
    (void)idx;
    return ctx.ld(dv, std::size_t(flat));
  };
  auto res = region.run<std::int32_t>(b);
  ASSERT_TRUE(res.scalar.has_value());
  EXPECT_EQ(*res.scalar, static_cast<std::int32_t>(2 * count));
}

}  // namespace
}  // namespace accred::acc
