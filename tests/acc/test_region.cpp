// End-to-end tests of the Region front door: directive text in, verified
// reduction results out, for each compiler profile.
#include "acc/region.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace accred::acc {
namespace {

TEST(Region, VectorReductionEndToEnd) {
  gpusim::Device dev;
  constexpr std::int64_t kNk = 4;
  constexpr std::int64_t kNj = 6;
  constexpr std::int64_t kNi = 300;
  auto host_in = test::make_input<float>(ReductionOp::kSum,
                                         std::size_t(kNk * kNj * kNi));
  auto input = dev.alloc<float>(host_in.size());
  input.copy_from_host(host_in);
  auto out = dev.alloc<float>(std::size_t(kNk * kNj));
  auto in_view = input.view();
  auto out_view = out.view();

  Region region(dev);
  region.parallel("parallel num_gangs(4) num_workers(4) vector_length(64)")
      .loop("loop gang", kNk)
      .loop("loop worker", kNj)
      .loop("loop vector reduction(+:c)", kNi)
      .var("c", DataType::kFloat, /*accum_level=*/2, /*use_level=*/1);

  auto plan = region.plan();
  EXPECT_EQ(plan.kind, StrategyKind::kVector);

  reduce::Bindings<float> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(in_view, std::size_t((k * kNj + j) * kNi + i));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
               float r) { ctx.st(out_view, std::size_t(k * kNj + j), r); };
  auto res = region.run<float>(b);
  EXPECT_EQ(res.kernels, 1);

  for (std::int64_t k = 0; k < kNk; ++k) {
    for (std::int64_t j = 0; j < kNj; ++j) {
      std::span<const float> row(host_in.data() + (k * kNj + j) * kNi,
                                 std::size_t(kNi));
      EXPECT_TRUE(testsuite::reduction_result_matches(
          test::cpu_fold<float>(ReductionOp::kSum, row),
          out.host_span()[std::size_t(k * kNj + j)], std::uint64_t(kNi)));
    }
  }
}

TEST(Region, ScalarSumAcrossAllLevels) {
  gpusim::Device dev;
  constexpr std::int64_t kN = 40'000;
  auto host_in = test::make_input<std::int64_t>(ReductionOp::kSum,
                                                std::size_t(kN));
  auto input = dev.alloc<std::int64_t>(std::size_t(kN));
  input.copy_from_host(host_in);
  auto in_view = input.view();

  Region region(dev);
  region.parallel("parallel num_gangs(16) num_workers(4) vector_length(32)")
      .loop("loop gang vector reduction(+:total)", kN)
      .var("total", DataType::kInt64, 0);

  auto plan = region.plan();
  EXPECT_EQ(plan.kind, StrategyKind::kSameLoop);
  EXPECT_EQ(plan.launch.num_workers, 1u);

  reduce::Bindings<std::int64_t> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t idx, std::int64_t,
                  std::int64_t) { return ctx.ld(in_view, std::size_t(idx)); };
  b.host_init = 1000;
  b.host_init_set = true;
  auto res = region.run<std::int64_t>(b);
  ASSERT_TRUE(res.scalar.has_value());
  EXPECT_EQ(*res.scalar, 1000 + test::cpu_fold<std::int64_t>(
                                    ReductionOp::kSum,
                                    std::span<const std::int64_t>(host_in)));
}

TEST(Region, CapsProfileRejectsAutoSpan) {
  gpusim::Device dev;
  Region region(dev, profile(CompilerId::kCapsLike));
  region.loop("loop gang", 8)
      .loop("loop worker reduction(+:j_sum)", 8)
      .loop("loop vector", 64)
      .var("j_sum", DataType::kInt32, /*accum=*/2, /*use=*/0);
  EXPECT_THROW((void)region.plan(), AnalysisError);
}

TEST(Region, OpenUHAcceptsSameNest) {
  gpusim::Device dev;
  constexpr std::int64_t kNk = 3;
  constexpr std::int64_t kNj = 8;
  constexpr std::int64_t kNi = 64;
  auto input = dev.alloc<int>(std::size_t(kNk * kNj * kNi));
  input.fill(2);
  auto out = dev.alloc<int>(std::size_t(kNk));
  auto in_view = input.view();
  auto out_view = out.view();

  Region region(dev);
  region.parallel("parallel num_gangs(2) num_workers(4) vector_length(32)")
      .loop("loop gang", kNk)
      .loop("loop worker reduction(+:j_sum)", kNj)
      .loop("loop vector", kNi)
      .var("j_sum", DataType::kInt32, 2, 0);
  auto plan = region.plan();
  EXPECT_EQ(plan.kind, StrategyKind::kWorkerVector);

  reduce::Bindings<int> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(in_view, std::size_t((k * kNj + j) * kNi + i));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t, int r) {
    ctx.st(out_view, std::size_t(k), r);
  };
  (void)region.run<int>(b);
  for (int r : out.host_span()) EXPECT_EQ(r, 2 * kNj * kNi);
}

TEST(Region, CompiledHandleRunsRepeatedly) {
  gpusim::Device dev;
  constexpr std::int64_t kN = 5'000;
  auto data = dev.alloc<std::int64_t>(std::size_t(kN));
  data.fill(1);
  auto dv = data.view();
  Region region(dev);
  region.parallel("parallel num_gangs(4) vector_length(64)")
      .loop("loop gang vector reduction(+:s)", kN)
      .var("s", DataType::kInt64, 0);
  const Region::Compiled compiled = region.compile();
  EXPECT_EQ(compiled.plan().kind, StrategyKind::kSameLoop);
  reduce::Bindings<std::int64_t> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t i, std::int64_t,
                  std::int64_t) { return ctx.ld(dv, std::size_t(i)); };
  for (int r = 0; r < 3; ++r) {
    auto res = compiled.run<std::int64_t>(b);
    ASSERT_TRUE(res.scalar.has_value());
    EXPECT_EQ(*res.scalar, kN);
  }
}

TEST(Region, LoopSizeArgumentsSetLaunchShape) {
  gpusim::Device dev;
  Region region(dev);
  region.loop("loop gang(24) vector(64) reduction(+:t)", 1000)
      .var("t", DataType::kInt32, 0);
  const auto plan = region.plan();
  EXPECT_EQ(plan.launch.num_gangs, 24u);
  EXPECT_EQ(plan.launch.vector_length, 64u);
}

TEST(Region, ExecuteRejectsTypeMismatch) {
  gpusim::Device dev;
  Region region(dev);
  region.loop("loop gang reduction(+:s)", 100).var("s", DataType::kFloat, 0);
  reduce::Bindings<double> b;
  b.contrib = [](gpusim::ThreadCtx&, std::int64_t, std::int64_t,
                 std::int64_t) { return 1.0; };
  EXPECT_THROW((void)region.run<double>(b), std::invalid_argument);
}

TEST(Region, ProfilesAgreeOnResults) {
  // The three profiles differ in cost, never in the computed value (on the
  // cells where the modeled compilers work at all).
  for (CompilerId id :
       {CompilerId::kOpenUH, CompilerId::kCapsLike, CompilerId::kPgiLike}) {
    gpusim::Device dev;
    constexpr std::int64_t kN = 9'999;
    auto host_in =
        test::make_input<double>(ReductionOp::kProd, std::size_t(kN));
    auto input = dev.alloc<double>(std::size_t(kN));
    input.copy_from_host(host_in);
    auto in_view = input.view();

    Region region(dev, profile(id));
    region.parallel("parallel num_gangs(8) num_workers(2) vector_length(32)")
        .loop("loop gang worker vector reduction(*:p)", kN)
        .var("p", DataType::kDouble, 0);
    reduce::Bindings<double> b;
    b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t idx, std::int64_t,
                    std::int64_t) { return ctx.ld(in_view, std::size_t(idx)); };
    auto res = region.run<double>(b);
    ASSERT_TRUE(res.scalar.has_value()) << to_string(id);
    EXPECT_TRUE(testsuite::reduction_result_matches(
        test::cpu_fold<double>(ReductionOp::kProd,
                               std::span<const double>(host_in)),
        *res.scalar, std::uint64_t(kN)))
        << to_string(id);
  }
}

}  // namespace
}  // namespace accred::acc
