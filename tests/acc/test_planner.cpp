// Tests for the strategy planner and the compiler profiles.
#include "acc/planner.hpp"

#include <gtest/gtest.h>

namespace accred::acc {
namespace {

NestIR nest_with(ParMask l0, ParMask l1, ParMask l2,
                 std::vector<ReductionClause> on0 = {},
                 std::vector<ReductionClause> on1 = {},
                 std::vector<ReductionClause> on2 = {}) {
  NestIR nest;
  nest.loops = {LoopSpec{l0, 64, std::move(on0)},
                LoopSpec{l1, 32, std::move(on1)},
                LoopSpec{l2, 512, std::move(on2)}};
  return nest;
}

const CompilerProfile& openuh() { return profile(CompilerId::kOpenUH); }

TEST(Planner, VectorOnly) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {}, {},
                        {{ReductionOp::kSum, "s"}});
  nest.vars = {{"s", DataType::kFloat, 2, 1}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kVector);
  EXPECT_EQ(plan.dims.nk, 64);
  EXPECT_EQ(plan.dims.nj, 32);
  EXPECT_EQ(plan.dims.ni, 512);
  EXPECT_EQ(plan.kernel_count, 1);
  // Shared staging: W*V floats.
  EXPECT_EQ(plan.shared_bytes, std::size_t{8} * 128 * 4);
  EXPECT_EQ(plan.global_buffer_elems, 0u);
}

TEST(Planner, WorkerOnly) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {},
                        {{ReductionOp::kProd, "p"}}, {});
  nest.vars = {{"p", DataType::kDouble, 1, 0}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kWorker);
  EXPECT_EQ(plan.shared_bytes, std::size_t{8} * 8);  // W doubles, Fig. 8c
}

TEST(Planner, WorkerDuplicatedRowsNeedsVxW) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {},
                        {{ReductionOp::kProd, "p"}}, {});
  nest.vars = {{"p", DataType::kDouble, 1, 0}};
  // CAPS-like profile requires clauses on all span levels; span is worker
  // only here, so the single clause is fine.
  auto plan = plan_single(nest, profile(CompilerId::kCapsLike));
  EXPECT_EQ(plan.kind, StrategyKind::kWorker);
  EXPECT_EQ(plan.shared_bytes, std::size_t{8} * 8 * 128);  // V*W doubles
}

TEST(Planner, GangOnlyUsesTwoKernels) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector),
                        {{ReductionOp::kSum, "sum"}}, {}, {});
  nest.vars = {{"sum", DataType::kInt32, 0, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kGang);
  EXPECT_EQ(plan.kernel_count, 2);
  EXPECT_EQ(plan.global_buffer_elems, 192u);  // partial[] per gang
}

TEST(Planner, WorkerVectorStaysInShared) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {},
                        {{ReductionOp::kSum, "j_sum"}}, {});
  nest.vars = {{"j_sum", DataType::kInt32, 2, 0}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kWorkerVector);
  EXPECT_EQ(plan.kernel_count, 1);
  EXPECT_EQ(plan.shared_bytes, std::size_t{4} * 8 * 128);
}

TEST(Planner, GangWorkerGoesGlobal) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector),
                        {{ReductionOp::kSum, "s"}}, {}, {});
  nest.vars = {{"s", DataType::kInt64, 1, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kGangWorker);
  EXPECT_EQ(plan.kernel_count, 2);
  EXPECT_EQ(plan.global_buffer_elems, std::size_t{192} * 8);
}

TEST(Planner, GangWorkerVector) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector),
                        {{ReductionOp::kSum, "s"}}, {}, {});
  nest.vars = {{"s", DataType::kFloat, 2, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kGangWorkerVector);
  EXPECT_EQ(plan.global_buffer_elems, std::size_t{192} * 8 * 128);
}

TEST(Planner, GangVectorWithoutWorkerNarrowsWorkers) {
  NestIR nest;
  nest.loops = {LoopSpec{mask_of(Par::kGang), 100,
                         {{ReductionOp::kMax, "err"}}},
                LoopSpec{mask_of(Par::kVector), 200, {}}};
  nest.vars = {{"err", DataType::kDouble, 1, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kGangWorkerVector);
  EXPECT_EQ(plan.launch.num_workers, 1u);
  EXPECT_EQ(plan.dims.nk, 100);
  EXPECT_EQ(plan.dims.nj, 1);
  EXPECT_EQ(plan.dims.ni, 200);
}

TEST(Planner, SameLoopFlattens) {
  NestIR nest;
  nest.loops = {LoopSpec{Par::kGang | Par::kVector, 100000,
                         {{ReductionOp::kSum, "m"}}}};
  nest.vars = {{"m", DataType::kInt32, 0, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kSameLoop);
  EXPECT_EQ(plan.same_loop_extent, 100000);
  EXPECT_EQ(plan.launch.num_workers, 1u);  // worker not bound on the loop
  EXPECT_EQ(plan.global_buffer_elems, std::size_t{192} * 128);
  EXPECT_EQ(plan.kernel_count, 2);
}

TEST(Planner, PgiProfileForcesGlobalStagingEverywhere) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {}, {},
                        {{ReductionOp::kSum, "s"}});
  nest.vars = {{"s", DataType::kFloat, 2, 1}};
  auto plan = plan_single(nest, profile(CompilerId::kPgiLike));
  EXPECT_EQ(plan.kind, StrategyKind::kVector);
  EXPECT_EQ(plan.shared_bytes, 0u);
  EXPECT_EQ(plan.global_buffer_elems, std::size_t{192} * 8 * 128);
  // Nested kinds stay coalesced (window) but pay the spilled accumulator.
  EXPECT_EQ(plan.strategy.assignment, reduce::Assignment::kWindow);
  EXPECT_TRUE(plan.strategy.spill_private);
}

TEST(Planner, PgiQuirkUncoalescesFlattenedKinds) {
  // The 20-30x Table 2 rows: pgi_like loses coalescing on same-loop and
  // gang-worker-vector spans only.
  NestIR nest;
  nest.loops = {LoopSpec{Par::kGang | Par::kWorker | Par::kVector, 100000,
                         {{ReductionOp::kProd, "m"}}}};
  nest.vars = {{"m", DataType::kInt32, 0, VarInfo::kHostUse}};
  auto plan = plan_single(nest, profile(CompilerId::kPgiLike));
  EXPECT_EQ(plan.kind, StrategyKind::kSameLoop);
  EXPECT_EQ(plan.strategy.assignment, reduce::Assignment::kBlocking);

  auto nest2 = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                         mask_of(Par::kVector),
                         {{ReductionOp::kProd, "s"}}, {}, {});
  nest2.vars = {{"s", DataType::kFloat, 2, VarInfo::kHostUse}};
  auto plan2 = plan_single(nest2, profile(CompilerId::kPgiLike));
  EXPECT_EQ(plan2.kind, StrategyKind::kGangWorkerVector);
  EXPECT_EQ(plan2.strategy.assignment, reduce::Assignment::kBlocking);

  // OpenUH keeps window sliding everywhere.
  auto plan3 = plan_single(nest2, profile(CompilerId::kOpenUH));
  EXPECT_EQ(plan3.strategy.assignment, reduce::Assignment::kWindow);
  EXPECT_FALSE(plan3.strategy.spill_private);
}

// ---- fused cascade lowering (plan_chain / plan_chained) ---------------

NestIR chain_nest(ReductionOp vec_op, ReductionOp wrk_op,
                  ReductionOp gang_op, DataType type) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {{gang_op, "sum"}},
                        {{wrk_op, "j_sum"}}, {{vec_op, "i_sum"}});
  nest.vars = {{"i_sum", type, 2, 1},
               {"j_sum", type, 1, 0},
               {"sum", type, 0, VarInfo::kHostUse}};
  return nest;
}

TEST(Planner, ChainedFig4LowersToOneFusedPlan) {
  const auto nest = chain_nest(ReductionOp::kMin, ReductionOp::kMax,
                               ReductionOp::kSum, DataType::kFloat);
  const auto plan = plan_chained(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kFusedCascade);
  ASSERT_EQ(plan.chain.size(), 3u);
  EXPECT_EQ(plan.chain[0],
            (FusedStage{ReductionOp::kMin, Par::kVector, "i_sum"}));
  EXPECT_EQ(plan.chain[1],
            (FusedStage{ReductionOp::kMax, Par::kWorker, "j_sum"}));
  EXPECT_EQ(plan.chain[2],
            (FusedStage{ReductionOp::kSum, Par::kGang, "sum"}));
  // Reporting fields mirror the outermost stage.
  EXPECT_EQ(plan.op, ReductionOp::kSum);
  EXPECT_EQ(plan.var, "sum");
  EXPECT_EQ(plan.type, DataType::kFloat);
  EXPECT_EQ(plan.dims.nk, 64);
  EXPECT_EQ(plan.dims.nj, 32);
  EXPECT_EQ(plan.dims.ni, 512);
  // One fused kernel + the gang finalize — versus three launches unfused.
  EXPECT_EQ(plan.kernel_count, 2);
  // One W*V slab serves both in-block stages; per-gang partials only.
  EXPECT_EQ(plan.shared_bytes, std::size_t{4} * 8 * 128);
  EXPECT_EQ(plan.global_buffer_elems, 192u);
}

TEST(Planner, TwoStageChainsLowerWithMatchingResources) {
  // worker -> gang: no vector stage, so the slab holds W elements only.
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {{ReductionOp::kSum, "sum"}},
                        {{ReductionOp::kSum, "j_sum"}}, {});
  nest.vars = {{"j_sum", DataType::kInt32, 1, 0},
               {"sum", DataType::kInt32, 0, VarInfo::kHostUse}};
  auto plan = plan_chained(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kFusedCascade);
  ASSERT_EQ(plan.chain.size(), 2u);
  EXPECT_EQ(plan.chain[0].level, Par::kWorker);
  EXPECT_EQ(plan.chain[1].level, Par::kGang);
  EXPECT_EQ(plan.shared_bytes, std::size_t{4} * 8);
  EXPECT_EQ(plan.kernel_count, 2);

  // vector -> worker: stays in-block, one kernel, no global buffer.
  auto nest2 = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                         mask_of(Par::kVector), {},
                         {{ReductionOp::kSum, "j_sum"}},
                         {{ReductionOp::kSum, "i_sum"}});
  nest2.vars = {{"i_sum", DataType::kInt32, 2, 1},
                {"j_sum", DataType::kInt32, 1, 0}};
  auto plan2 = plan_chained(nest2, openuh());
  ASSERT_EQ(plan2.chain.size(), 2u);
  EXPECT_EQ(plan2.chain[1].level, Par::kWorker);
  EXPECT_EQ(plan2.kernel_count, 1);
  EXPECT_EQ(plan2.global_buffer_elems, 0u);
  EXPECT_EQ(plan2.shared_bytes, std::size_t{4} * 8 * 128);
}

TEST(Planner, ChainedRejectsNestsWithoutASingleFullChain) {
  // A single reduction has nothing to fuse.
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector),
                        {{ReductionOp::kSum, "s"}}, {}, {});
  nest.vars = {{"s", DataType::kInt32, 0, VarInfo::kHostUse}};
  EXPECT_THROW((void)plan_chained(nest, openuh()), AnalysisError);

  // Two reductions whose types differ never link into a chain.
  auto broken = chain_nest(ReductionOp::kSum, ReductionOp::kSum,
                           ReductionOp::kSum, DataType::kInt32);
  broken.vars[1].type = DataType::kInt64;
  EXPECT_THROW((void)plan_chained(broken, openuh()), AnalysisError);
}

TEST(Planner, PlanChainValidatesStageShapes) {
  const auto nest = chain_nest(ReductionOp::kSum, ReductionOp::kSum,
                               ReductionOp::kSum, DataType::kInt32);
  const auto res = analyze(nest, openuh().discipline);
  ASSERT_EQ(res.chains.size(), 1u);

  ReductionChain too_short;
  too_short.stages = {res.chains[0].stages[0]};
  EXPECT_THROW((void)plan_chain(nest, res, too_short, openuh()),
               AnalysisError);

  ReductionChain skips_worker;
  skips_worker.stages = {res.chains[0].stages[0], res.chains[0].stages[2]};
  EXPECT_THROW((void)plan_chain(nest, res, skips_worker, openuh()),
               AnalysisError);

  ReductionChain out_of_range;
  out_of_range.stages = {0, 99};
  EXPECT_THROW((void)plan_chain(nest, res, out_of_range, openuh()),
               AnalysisError);
}

TEST(Profiles, Table2RobustnessMatrix) {
  using enum ReductionOp;
  using enum Position;
  const auto t = DataType::kFloat;
  // PGI column of Table 2.
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kWorker, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kVector, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kGangWorker, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(
      table2_robustness(CompilerId::kPgiLike, kGangWorkerVector, kSum, t),
      Robustness::kCompileError);
  EXPECT_EQ(
      table2_robustness(CompilerId::kPgiLike, kGangWorkerVector, kProd, t),
      Robustness::kCompileError);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kGangWorkerVector, kProd,
                              DataType::kInt32),
            Robustness::kOk);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kGang, kSum, t),
            Robustness::kOk);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kWorker, kProd, t),
            Robustness::kOk);
  // CAPS column.
  EXPECT_EQ(table2_robustness(CompilerId::kCapsLike, kGangWorker, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(table2_robustness(CompilerId::kCapsLike, kWorkerVector, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(
      table2_robustness(CompilerId::kCapsLike, kGangWorkerVector, kSum, t),
      Robustness::kRuntimeFailure);
  EXPECT_EQ(table2_robustness(CompilerId::kCapsLike, kGangWorker, kProd, t),
            Robustness::kOk);
  EXPECT_EQ(table2_robustness(CompilerId::kCapsLike,
                              kSameLineGangWorkerVector, kSum, t),
            Robustness::kOk);
  // OpenUH passes everything.
  for (auto pos : {kGang, kWorker, kVector, kGangWorker, kWorkerVector,
                   kGangWorkerVector, kSameLineGangWorkerVector}) {
    for (auto op : {kSum, kProd}) {
      EXPECT_EQ(table2_robustness(CompilerId::kOpenUH, pos, op, t),
                Robustness::kOk);
    }
  }
}

}  // namespace
}  // namespace accred::acc
