// Tests for the strategy planner and the compiler profiles.
#include "acc/planner.hpp"

#include <gtest/gtest.h>

namespace accred::acc {
namespace {

NestIR nest_with(ParMask l0, ParMask l1, ParMask l2,
                 std::vector<ReductionClause> on0 = {},
                 std::vector<ReductionClause> on1 = {},
                 std::vector<ReductionClause> on2 = {}) {
  NestIR nest;
  nest.loops = {LoopSpec{l0, 64, std::move(on0)},
                LoopSpec{l1, 32, std::move(on1)},
                LoopSpec{l2, 512, std::move(on2)}};
  return nest;
}

const CompilerProfile& openuh() { return profile(CompilerId::kOpenUH); }

TEST(Planner, VectorOnly) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {}, {},
                        {{ReductionOp::kSum, "s"}});
  nest.vars = {{"s", DataType::kFloat, 2, 1}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kVector);
  EXPECT_EQ(plan.dims.nk, 64);
  EXPECT_EQ(plan.dims.nj, 32);
  EXPECT_EQ(plan.dims.ni, 512);
  EXPECT_EQ(plan.kernel_count, 1);
  // Shared staging: W*V floats.
  EXPECT_EQ(plan.shared_bytes, std::size_t{8} * 128 * 4);
  EXPECT_EQ(plan.global_buffer_elems, 0u);
}

TEST(Planner, WorkerOnly) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {},
                        {{ReductionOp::kProd, "p"}}, {});
  nest.vars = {{"p", DataType::kDouble, 1, 0}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kWorker);
  EXPECT_EQ(plan.shared_bytes, std::size_t{8} * 8);  // W doubles, Fig. 8c
}

TEST(Planner, WorkerDuplicatedRowsNeedsVxW) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {},
                        {{ReductionOp::kProd, "p"}}, {});
  nest.vars = {{"p", DataType::kDouble, 1, 0}};
  // CAPS-like profile requires clauses on all span levels; span is worker
  // only here, so the single clause is fine.
  auto plan = plan_single(nest, profile(CompilerId::kCapsLike));
  EXPECT_EQ(plan.kind, StrategyKind::kWorker);
  EXPECT_EQ(plan.shared_bytes, std::size_t{8} * 8 * 128);  // V*W doubles
}

TEST(Planner, GangOnlyUsesTwoKernels) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector),
                        {{ReductionOp::kSum, "sum"}}, {}, {});
  nest.vars = {{"sum", DataType::kInt32, 0, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kGang);
  EXPECT_EQ(plan.kernel_count, 2);
  EXPECT_EQ(plan.global_buffer_elems, 192u);  // partial[] per gang
}

TEST(Planner, WorkerVectorStaysInShared) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {},
                        {{ReductionOp::kSum, "j_sum"}}, {});
  nest.vars = {{"j_sum", DataType::kInt32, 2, 0}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kWorkerVector);
  EXPECT_EQ(plan.kernel_count, 1);
  EXPECT_EQ(plan.shared_bytes, std::size_t{4} * 8 * 128);
}

TEST(Planner, GangWorkerGoesGlobal) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector),
                        {{ReductionOp::kSum, "s"}}, {}, {});
  nest.vars = {{"s", DataType::kInt64, 1, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kGangWorker);
  EXPECT_EQ(plan.kernel_count, 2);
  EXPECT_EQ(plan.global_buffer_elems, std::size_t{192} * 8);
}

TEST(Planner, GangWorkerVector) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector),
                        {{ReductionOp::kSum, "s"}}, {}, {});
  nest.vars = {{"s", DataType::kFloat, 2, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kGangWorkerVector);
  EXPECT_EQ(plan.global_buffer_elems, std::size_t{192} * 8 * 128);
}

TEST(Planner, GangVectorWithoutWorkerNarrowsWorkers) {
  NestIR nest;
  nest.loops = {LoopSpec{mask_of(Par::kGang), 100,
                         {{ReductionOp::kMax, "err"}}},
                LoopSpec{mask_of(Par::kVector), 200, {}}};
  nest.vars = {{"err", DataType::kDouble, 1, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kGangWorkerVector);
  EXPECT_EQ(plan.launch.num_workers, 1u);
  EXPECT_EQ(plan.dims.nk, 100);
  EXPECT_EQ(plan.dims.nj, 1);
  EXPECT_EQ(plan.dims.ni, 200);
}

TEST(Planner, SameLoopFlattens) {
  NestIR nest;
  nest.loops = {LoopSpec{Par::kGang | Par::kVector, 100000,
                         {{ReductionOp::kSum, "m"}}}};
  nest.vars = {{"m", DataType::kInt32, 0, VarInfo::kHostUse}};
  auto plan = plan_single(nest, openuh());
  EXPECT_EQ(plan.kind, StrategyKind::kSameLoop);
  EXPECT_EQ(plan.same_loop_extent, 100000);
  EXPECT_EQ(plan.launch.num_workers, 1u);  // worker not bound on the loop
  EXPECT_EQ(plan.global_buffer_elems, std::size_t{192} * 128);
  EXPECT_EQ(plan.kernel_count, 2);
}

TEST(Planner, PgiProfileForcesGlobalStagingEverywhere) {
  auto nest = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                        mask_of(Par::kVector), {}, {},
                        {{ReductionOp::kSum, "s"}});
  nest.vars = {{"s", DataType::kFloat, 2, 1}};
  auto plan = plan_single(nest, profile(CompilerId::kPgiLike));
  EXPECT_EQ(plan.kind, StrategyKind::kVector);
  EXPECT_EQ(plan.shared_bytes, 0u);
  EXPECT_EQ(plan.global_buffer_elems, std::size_t{192} * 8 * 128);
  // Nested kinds stay coalesced (window) but pay the spilled accumulator.
  EXPECT_EQ(plan.strategy.assignment, reduce::Assignment::kWindow);
  EXPECT_TRUE(plan.strategy.spill_private);
}

TEST(Planner, PgiQuirkUncoalescesFlattenedKinds) {
  // The 20-30x Table 2 rows: pgi_like loses coalescing on same-loop and
  // gang-worker-vector spans only.
  NestIR nest;
  nest.loops = {LoopSpec{Par::kGang | Par::kWorker | Par::kVector, 100000,
                         {{ReductionOp::kProd, "m"}}}};
  nest.vars = {{"m", DataType::kInt32, 0, VarInfo::kHostUse}};
  auto plan = plan_single(nest, profile(CompilerId::kPgiLike));
  EXPECT_EQ(plan.kind, StrategyKind::kSameLoop);
  EXPECT_EQ(plan.strategy.assignment, reduce::Assignment::kBlocking);

  auto nest2 = nest_with(mask_of(Par::kGang), mask_of(Par::kWorker),
                         mask_of(Par::kVector),
                         {{ReductionOp::kProd, "s"}}, {}, {});
  nest2.vars = {{"s", DataType::kFloat, 2, VarInfo::kHostUse}};
  auto plan2 = plan_single(nest2, profile(CompilerId::kPgiLike));
  EXPECT_EQ(plan2.kind, StrategyKind::kGangWorkerVector);
  EXPECT_EQ(plan2.strategy.assignment, reduce::Assignment::kBlocking);

  // OpenUH keeps window sliding everywhere.
  auto plan3 = plan_single(nest2, profile(CompilerId::kOpenUH));
  EXPECT_EQ(plan3.strategy.assignment, reduce::Assignment::kWindow);
  EXPECT_FALSE(plan3.strategy.spill_private);
}

TEST(Profiles, Table2RobustnessMatrix) {
  using enum ReductionOp;
  using enum Position;
  const auto t = DataType::kFloat;
  // PGI column of Table 2.
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kWorker, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kVector, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kGangWorker, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(
      table2_robustness(CompilerId::kPgiLike, kGangWorkerVector, kSum, t),
      Robustness::kCompileError);
  EXPECT_EQ(
      table2_robustness(CompilerId::kPgiLike, kGangWorkerVector, kProd, t),
      Robustness::kCompileError);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kGangWorkerVector, kProd,
                              DataType::kInt32),
            Robustness::kOk);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kGang, kSum, t),
            Robustness::kOk);
  EXPECT_EQ(table2_robustness(CompilerId::kPgiLike, kWorker, kProd, t),
            Robustness::kOk);
  // CAPS column.
  EXPECT_EQ(table2_robustness(CompilerId::kCapsLike, kGangWorker, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(table2_robustness(CompilerId::kCapsLike, kWorkerVector, kSum, t),
            Robustness::kRuntimeFailure);
  EXPECT_EQ(
      table2_robustness(CompilerId::kCapsLike, kGangWorkerVector, kSum, t),
      Robustness::kRuntimeFailure);
  EXPECT_EQ(table2_robustness(CompilerId::kCapsLike, kGangWorker, kProd, t),
            Robustness::kOk);
  EXPECT_EQ(table2_robustness(CompilerId::kCapsLike,
                              kSameLineGangWorkerVector, kSum, t),
            Robustness::kOk);
  // OpenUH passes everything.
  for (auto pos : {kGang, kWorker, kVector, kGangWorker, kWorkerVector,
                   kGangWorkerVector, kSameLineGangWorkerVector}) {
    for (auto op : {kSum, kProd}) {
      EXPECT_EQ(table2_robustness(CompilerId::kOpenUH, pos, op, t),
                Robustness::kOk);
    }
  }
}

}  // namespace
}  // namespace accred::acc
