// Tests for the §6 OpenMP 4.0 facade: directive parsing, the
// teams->gang / parallel-for+simd->vector mapping with the worker level
// ignored, and verified end-to-end reductions.
#include "acc/openmp.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace accred::acc {
namespace {

TEST(OmpParser, CombinedConstructs) {
  auto d = parse_omp_directive(
      "#pragma omp target teams distribute num_teams(64)");
  EXPECT_TRUE(d.teams);
  EXPECT_FALSE(d.parallel_for);
  EXPECT_EQ(d.num_teams, 64u);

  d = parse_omp_directive("omp parallel for simd reduction(+:acc)");
  EXPECT_FALSE(d.teams);
  EXPECT_TRUE(d.parallel_for);
  EXPECT_TRUE(d.simd);
  ASSERT_EQ(d.reductions.size(), 1u);
  EXPECT_EQ(d.reductions[0].var, "acc");

  d = parse_omp_directive(
      "omp target teams distribute parallel for num_threads(128) "
      "reduction(max:m)");
  EXPECT_TRUE(d.teams);
  EXPECT_TRUE(d.parallel_for);
  EXPECT_EQ(d.num_threads, 128u);
  EXPECT_EQ(d.reductions[0].op, ReductionOp::kMax);
}

TEST(OmpParser, IgnoredClausesAndRejects) {
  auto d = parse_omp_directive(
      "omp target teams map(to: x[0:n], y[0:n]) private(tmp) "
      "schedule(static, 4)");
  EXPECT_TRUE(d.teams);
  EXPECT_THROW((void)parse_omp_directive("acc loop gang"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_omp_directive("omp sections"),
               std::invalid_argument);
}

TEST(OmpTarget, TwoLevelMappingIgnoresWorker) {
  gpusim::Device dev;
  OmpTarget target(dev);
  target.loop("omp target teams distribute num_teams(16)", 100)
      .loop("omp parallel for simd num_threads(64) reduction(+:s)", 2048)
      .var("s", DataType::kInt64, /*accum=*/1, /*use=*/0);
  const auto plan = target.plan();
  // §6's mapping: gang & vector only, one worker.
  EXPECT_EQ(plan.kind, StrategyKind::kVector);
  EXPECT_EQ(plan.launch.num_workers, 1u);
  EXPECT_EQ(plan.launch.num_gangs, 16u);
  EXPECT_EQ(plan.launch.vector_length, 64u);
}

TEST(OmpTarget, ReductionEndToEnd) {
  gpusim::Device dev;
  constexpr std::int64_t kTeams = 37;
  constexpr std::int64_t kN = 1000;
  auto host = test::make_input<double>(ReductionOp::kSum,
                                       std::size_t(kTeams * kN));
  auto data = dev.alloc<double>(host.size());
  data.copy_from_host(host);
  auto out = dev.alloc<double>(std::size_t(kTeams));
  auto dv = data.view();
  auto ov = out.view();

  OmpTarget target(dev);
  target.loop("omp target teams distribute num_teams(8)", kTeams)
      .loop("omp parallel for simd num_threads(64) reduction(+:s)", kN)
      .var("s", DataType::kDouble, 1, 0);

  reduce::Bindings<double> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t t, std::int64_t,
                  std::int64_t i) {
    return ctx.ld(dv, std::size_t(t * kN + i));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t t, std::int64_t,
               double r) { ctx.st(ov, std::size_t(t), r); };
  (void)target.run<double>(b);

  for (std::int64_t t = 0; t < kTeams; ++t) {
    std::span<const double> row(host.data() + t * kN, std::size_t(kN));
    EXPECT_TRUE(testsuite::reduction_result_matches(
        test::cpu_fold<double>(ReductionOp::kSum, row),
        out.host_span()[std::size_t(t)], std::uint64_t(kN)))
        << "team " << t;
  }
}

TEST(OmpTarget, CombinedTeamsParallelForScalar) {
  gpusim::Device dev;
  constexpr std::int64_t kN = 12'345;
  auto data = dev.alloc<std::int32_t>(std::size_t(kN));
  data.fill(3);
  auto dv = data.view();

  OmpTarget target(dev);
  target.loop("omp target teams distribute parallel for simd "
              "num_teams(12) num_threads(64) reduction(+:total)",
              kN)
      .var("total", DataType::kInt32, 0);
  const auto plan = target.plan();
  EXPECT_EQ(plan.kind, StrategyKind::kSameLoop);

  reduce::Bindings<std::int32_t> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t i, std::int64_t,
                  std::int64_t) { return ctx.ld(dv, std::size_t(i)); };
  auto res = target.run<std::int32_t>(b);
  ASSERT_TRUE(res.scalar.has_value());
  EXPECT_EQ(*res.scalar, 3 * kN);
}

TEST(OmpTarget, RejectsUnparallelLoop) {
  gpusim::Device dev;
  OmpTarget target(dev);
  EXPECT_THROW(target.loop("omp target", 100), std::invalid_argument);
}

}  // namespace
}  // namespace accred::acc
