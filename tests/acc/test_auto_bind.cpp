// Tests for the kernels-construct auto-binder.
#include "acc/auto_bind.hpp"

#include <gtest/gtest.h>

#include "acc/analysis.hpp"

namespace accred::acc {
namespace {

TEST(AutoBind, AssignsOutermostFirst) {
  NestIR nest;
  nest.loops = {LoopSpec{0, 10, {}}, LoopSpec{0, 10, {}},
                LoopSpec{0, 10, {}}};
  EXPECT_EQ(auto_bind_kernels(nest), 3);
  EXPECT_EQ(nest.loops[0].par, mask_of(Par::kGang));
  EXPECT_EQ(nest.loops[1].par, mask_of(Par::kWorker));
  EXPECT_EQ(nest.loops[2].par, mask_of(Par::kVector));
}

TEST(AutoBind, RespectsExistingBindings) {
  NestIR nest;
  nest.loops = {LoopSpec{0, 10, {}}, LoopSpec{mask_of(Par::kWorker), 10, {}},
                LoopSpec{0, 10, {}}};
  EXPECT_EQ(auto_bind_kernels(nest), 2);
  EXPECT_EQ(nest.loops[0].par, mask_of(Par::kGang));
  EXPECT_EQ(nest.loops[2].par, mask_of(Par::kVector));
}

TEST(AutoBind, SkipsSeqLoops) {
  NestIR nest;
  nest.loops = {LoopSpec{0, 10, {}}, LoopSpec{0, 10, {}},
                LoopSpec{0, 10, {}}};
  const int seq[] = {1};
  EXPECT_EQ(auto_bind_kernels(nest, seq), 2);
  EXPECT_EQ(nest.loops[0].par, mask_of(Par::kGang));
  EXPECT_EQ(nest.loops[1].par, 0);  // stays sequential
  EXPECT_EQ(nest.loops[2].par, mask_of(Par::kWorker));
}

TEST(AutoBind, TwoLoopNestGetsGangAndWorker) {
  NestIR nest;
  nest.loops = {LoopSpec{0, 10, {}}, LoopSpec{0, 10, {}}};
  EXPECT_EQ(auto_bind_kernels(nest), 2);
  EXPECT_EQ(nest.loops[0].par, mask_of(Par::kGang));
  EXPECT_EQ(nest.loops[1].par, mask_of(Par::kWorker));
}

TEST(AutoBind, ResultValidatesAndPlans) {
  NestIR nest;
  nest.loops = {LoopSpec{0, 100, {}}, LoopSpec{0, 100, {}},
                LoopSpec{0, 100, {{ReductionOp::kSum, "s"}}}};
  nest.vars = {{"s", DataType::kFloat, 2, 1}};
  auto_bind_kernels(nest);
  const auto res = analyze(nest, ClauseDiscipline::kAutoDetect);
  ASSERT_EQ(res.reductions.size(), 1u);
  EXPECT_EQ(res.reductions[0].span, mask_of(Par::kVector));
}

TEST(AutoBind, NoOpWhenAllLevelsTaken) {
  NestIR nest;
  nest.loops = {LoopSpec{Par::kGang | Par::kWorker | Par::kVector, 10, {}},
                LoopSpec{0, 10, {}}};
  EXPECT_EQ(auto_bind_kernels(nest), 0);
  EXPECT_EQ(nest.loops[1].par, 0);
}

}  // namespace
}  // namespace accred::acc
