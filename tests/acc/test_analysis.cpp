// Tests for reduction-span analysis (§3.2.1): automatic clause-position
// detection, the explicit-all-levels discipline, and nest validation.
#include "acc/analysis.hpp"

#include <gtest/gtest.h>

namespace accred::acc {
namespace {

NestIR triple_nest() {
  NestIR nest;
  nest.loops = {LoopSpec{mask_of(Par::kGang), 100, {}},
                LoopSpec{mask_of(Par::kWorker), 100, {}},
                LoopSpec{mask_of(Par::kVector), 100, {}}};
  return nest;
}

TEST(Analysis, VectorOnlySpan) {
  NestIR nest = triple_nest();
  nest.loops[2].reductions = {{ReductionOp::kSum, "i_sum"}};
  // Fig. 4a: i_sum accumulates in the vector loop, used in the worker body.
  nest.vars = {{"i_sum", DataType::kInt32, 2, 1}};
  auto res = analyze(nest, ClauseDiscipline::kAutoDetect);
  ASSERT_EQ(res.reductions.size(), 1u);
  EXPECT_EQ(res.reductions[0].span, mask_of(Par::kVector));
  EXPECT_FALSE(res.reductions[0].same_loop);
}

TEST(Analysis, AutoDetectWorkerVectorSpanFromSingleClause) {
  // Fig. 9: clause only on the worker loop; the variable accumulates in
  // the vector loop and is used after the worker loop -> span = w|v.
  NestIR nest = triple_nest();
  nest.loops[1].reductions = {{ReductionOp::kSum, "j_sum"}};
  nest.vars = {{"j_sum", DataType::kInt32, 2, 0}};
  auto res = analyze(nest, ClauseDiscipline::kAutoDetect);
  EXPECT_EQ(res.reductions[0].span, Par::kWorker | Par::kVector);
}

TEST(Analysis, ExplicitDisciplineRejectsSingleClauseSpan) {
  // The CAPS behaviour: without a clause on every spanned level, the
  // result would be wrong; we surface it as an analysis error.
  NestIR nest = triple_nest();
  nest.loops[1].reductions = {{ReductionOp::kSum, "j_sum"}};
  nest.vars = {{"j_sum", DataType::kInt32, 2, 0}};
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kExplicitAllLevels),
               AnalysisError);
  // With clauses on both levels it goes through.
  nest.loops[2].reductions = {{ReductionOp::kSum, "j_sum"}};
  auto res = analyze(nest, ClauseDiscipline::kExplicitAllLevels);
  EXPECT_EQ(res.reductions[0].span, Par::kWorker | Par::kVector);
}

TEST(Analysis, HostUseSpansAllLevels) {
  NestIR nest = triple_nest();
  nest.loops[0].reductions = {{ReductionOp::kSum, "sum"}};
  nest.vars = {{"sum", DataType::kDouble, 2, VarInfo::kHostUse}};
  auto res = analyze(nest, ClauseDiscipline::kAutoDetect);
  EXPECT_EQ(res.reductions[0].span,
            Par::kGang | Par::kWorker | Par::kVector);
}

TEST(Analysis, SameLoopMultiBinding) {
  NestIR nest;
  nest.loops = {LoopSpec{Par::kGang | Par::kWorker | Par::kVector, 1000,
                         {{ReductionOp::kSum, "m"}}}};
  nest.vars = {{"m", DataType::kInt32, 0, VarInfo::kHostUse}};
  auto res = analyze(nest, ClauseDiscipline::kAutoDetect);
  EXPECT_TRUE(res.reductions[0].same_loop);
  EXPECT_EQ(res.reductions[0].span,
            Par::kGang | Par::kWorker | Par::kVector);
}

TEST(Analysis, GangVectorWithoutWorkerGetsNote) {
  // The heat-equation shape: gang loop over rows, vector loop over
  // columns, result used on the host (§3.2.1's "cannot span gang & vector
  // without going through the worker").
  NestIR nest;
  nest.loops = {LoopSpec{mask_of(Par::kGang), 100,
                         {{ReductionOp::kMax, "error"}}},
                LoopSpec{mask_of(Par::kVector), 100, {}}};
  nest.vars = {{"error", DataType::kDouble, 1, VarInfo::kHostUse}};
  auto res = analyze(nest, ClauseDiscipline::kAutoDetect);
  EXPECT_EQ(res.reductions[0].span, Par::kGang | Par::kVector);
  ASSERT_FALSE(res.notes.empty());
  EXPECT_NE(res.notes.back().find("single worker"), std::string::npos);
}

TEST(Analysis, RejectsMalformedNests) {
  // Too many loops.
  NestIR nest;
  nest.loops.assign(4, LoopSpec{mask_of(Par::kGang), 10, {}});
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kAutoDetect),
               AnalysisError);
  // Zero extent.
  nest = triple_nest();
  nest.loops[1].extent = 0;
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kAutoDetect),
               AnalysisError);
  // Same binding on two loops.
  nest = triple_nest();
  nest.loops[1].par = mask_of(Par::kGang);
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kAutoDetect),
               AnalysisError);
  // Gang inside vector.
  nest = NestIR{};
  nest.loops = {LoopSpec{mask_of(Par::kVector), 10, {}},
                LoopSpec{mask_of(Par::kGang), 10, {}}};
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kAutoDetect),
               AnalysisError);
}

TEST(Analysis, RejectsSemanticErrors) {
  // Clause names an undeclared variable.
  NestIR nest = triple_nest();
  nest.loops[2].reductions = {{ReductionOp::kSum, "ghost"}};
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kAutoDetect),
               AnalysisError);
  // Bitwise operator on a float variable.
  nest = triple_nest();
  nest.loops[2].reductions = {{ReductionOp::kBitAnd, "f"}};
  nest.vars = {{"f", DataType::kFloat, 2, 1}};
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kAutoDetect),
               AnalysisError);
  // Conflicting operators for one variable.
  nest = triple_nest();
  nest.loops[1].reductions = {{ReductionOp::kSum, "x"}};
  nest.loops[2].reductions = {{ReductionOp::kProd, "x"}};
  nest.vars = {{"x", DataType::kInt32, 2, 0}};
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kAutoDetect),
               AnalysisError);
  // Clause outside the variable's span.
  nest = triple_nest();
  nest.loops[0].reductions = {{ReductionOp::kSum, "i_sum"}};
  nest.vars = {{"i_sum", DataType::kInt32, 2, 1}};  // span = vector only
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kAutoDetect),
               AnalysisError);
  // Use inside the accumulation loop.
  nest = triple_nest();
  nest.loops[2].reductions = {{ReductionOp::kSum, "y"}};
  nest.vars = {{"y", DataType::kInt32, 2, 2}};
  EXPECT_THROW((void)analyze(nest, ClauseDiscipline::kAutoDetect),
               AnalysisError);
}

// ---- producer→consumer chain detection (§3.2's cascade, Fig. 4) -------

NestIR fig4_nest(DataType type = DataType::kInt32) {
  NestIR nest = triple_nest();
  nest.loops[0].reductions = {{ReductionOp::kSum, "sum"}};
  nest.loops[1].reductions = {{ReductionOp::kSum, "j_sum"}};
  nest.loops[2].reductions = {{ReductionOp::kSum, "i_sum"}};
  nest.vars = {{"i_sum", type, 2, 1},
               {"j_sum", type, 1, 0},
               {"sum", type, 0, VarInfo::kHostUse}};
  return nest;
}

/// A hand-built analyzed stage for driving detect_chains directly.
ReductionInfo chain_stage(std::string name, Par level, int accum, int use,
                          DataType type = DataType::kInt32) {
  ReductionInfo r;
  r.var = {std::move(name), type, accum, use};
  r.op = ReductionOp::kSum;
  r.span = mask_of(level);
  return r;
}

TEST(ChainDetection, Fig4CascadeDetectedInnermostFirst) {
  auto res = analyze(fig4_nest(), ClauseDiscipline::kAutoDetect);
  ASSERT_EQ(res.chains.size(), 1u);
  const auto& stages = res.chains[0].stages;
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(res.reductions[static_cast<std::size_t>(stages[0])].var.name,
            "i_sum");
  EXPECT_EQ(res.reductions[static_cast<std::size_t>(stages[1])].var.name,
            "j_sum");
  EXPECT_EQ(res.reductions[static_cast<std::size_t>(stages[2])].var.name,
            "sum");
  bool noted = false;
  for (const std::string& n : res.notes) {
    noted = noted || n.find("fusable") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(ChainDetection, TwoStageChainWithoutGangTerminator) {
  NestIR nest = triple_nest();
  nest.loops[1].reductions = {{ReductionOp::kSum, "j_sum"}};
  nest.loops[2].reductions = {{ReductionOp::kSum, "i_sum"}};
  nest.vars = {{"i_sum", DataType::kInt32, 2, 1},
               {"j_sum", DataType::kInt32, 1, 0}};
  auto res = analyze(nest, ClauseDiscipline::kAutoDetect);
  ASSERT_EQ(res.chains.size(), 1u);
  ASSERT_EQ(res.chains[0].stages.size(), 2u);
  EXPECT_EQ(res.reductions[static_cast<std::size_t>(res.chains[0].stages[0])]
                .var.name,
            "i_sum");
}

TEST(ChainDetection, TypeMismatchBreaksTheLink) {
  NestIR nest = fig4_nest();
  nest.vars[1].type = DataType::kDouble;  // j_sum no longer matches
  auto res = analyze(nest, ClauseDiscipline::kAutoDetect);
  EXPECT_TRUE(res.chains.empty());
}

TEST(ChainDetection, NonAdjacentLevelsDoNotChain) {
  // A vector producer consumed directly by a gang stage skips the worker
  // level — the fused kernel has no lowering for that, so no chain.
  AnalysisResult res;
  res.reductions = {chain_stage("v", Par::kVector, 2, 0),
                    chain_stage("g", Par::kGang, 0, VarInfo::kHostUse)};
  detect_chains(res);
  EXPECT_TRUE(res.chains.empty());
}

TEST(ChainDetection, AmbiguousConsumersDropTheChain) {
  // Two worker-level consumers read the producer's level: there is no
  // single producer->consumer lowering, so nothing is fused.
  AnalysisResult res;
  res.reductions = {chain_stage("v", Par::kVector, 2, 1),
                    chain_stage("w1", Par::kWorker, 1, 0),
                    chain_stage("w2", Par::kWorker, 1, 0)};
  detect_chains(res);
  EXPECT_TRUE(res.chains.empty());
}

TEST(ChainDetection, MultipleProducersIntoOneConsumerDropTheChain) {
  AnalysisResult res;
  res.reductions = {chain_stage("v1", Par::kVector, 2, 1),
                    chain_stage("v2", Par::kVector, 2, 1),
                    chain_stage("w", Par::kWorker, 1, 0)};
  detect_chains(res);
  EXPECT_TRUE(res.chains.empty());
}

TEST(ChainDetection, SameLoopAndMultiLevelStagesAreNotChained) {
  AnalysisResult res;
  res.reductions = {chain_stage("v", Par::kVector, 2, 1),
                    chain_stage("w", Par::kWorker, 1, 0)};
  res.reductions[0].same_loop = true;
  detect_chains(res);
  EXPECT_TRUE(res.chains.empty());

  res = AnalysisResult{};
  res.reductions = {chain_stage("wv", Par::kVector, 2, 0),
                    chain_stage("g", Par::kGang, 0, VarInfo::kHostUse)};
  res.reductions[0].span = Par::kWorker | Par::kVector;  // two levels
  detect_chains(res);
  EXPECT_TRUE(res.chains.empty());
}

TEST(Analysis, NotesMisplacedButLegalClause) {
  // Clause on the vector loop while the span is worker|vector: legal under
  // auto-detection, but not the "closest to next use" position.
  NestIR nest = triple_nest();
  nest.loops[2].reductions = {{ReductionOp::kSum, "j_sum"}};
  nest.vars = {{"j_sum", DataType::kInt32, 2, 0}};
  auto res = analyze(nest, ClauseDiscipline::kAutoDetect);
  EXPECT_EQ(res.reductions[0].span, Par::kWorker | Par::kVector);
  ASSERT_FALSE(res.notes.empty());
}

}  // namespace
}  // namespace accred::acc
