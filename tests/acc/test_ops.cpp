#include "acc/ops.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "acc/types.hpp"
#include "util/rng.hpp"

namespace accred::acc {
namespace {

constexpr ReductionOp kAllOps[] = {
    ReductionOp::kSum,    ReductionOp::kProd,  ReductionOp::kMax,
    ReductionOp::kMin,    ReductionOp::kBitAnd, ReductionOp::kBitOr,
    ReductionOp::kBitXor, ReductionOp::kLogAnd, ReductionOp::kLogOr};

TEST(Ops, RoundTripSpelling) {
  for (ReductionOp op : kAllOps) {
    EXPECT_EQ(parse_reduction_op(to_string(op)), op);
  }
  EXPECT_THROW((void)parse_reduction_op("plus"), std::invalid_argument);
  EXPECT_THROW((void)parse_reduction_op(""), std::invalid_argument);
}

TEST(Ops, IdentityIsNeutralForInts) {
  util::SplitMix64 rng(7);
  for (ReductionOp op : kAllOps) {
    RuntimeOp<std::int64_t> r{op};
    for (int trial = 0; trial < 50; ++trial) {
      // Logical operators collapse values to 0/1, so identity-neutrality
      // only holds on the operator's value domain.
      std::int64_t v = static_cast<std::int64_t>(rng.next() % 1000) - 500;
      if (op == ReductionOp::kLogAnd || op == ReductionOp::kLogOr) v = v & 1;
      EXPECT_EQ(r.apply(r.identity(), v), v) << to_string(op);
      EXPECT_EQ(r.apply(v, r.identity()), v) << to_string(op);
    }
  }
}

TEST(Ops, IdentityIsNeutralForFloats) {
  for (ReductionOp op :
       {ReductionOp::kSum, ReductionOp::kProd, ReductionOp::kMax,
        ReductionOp::kMin}) {
    RuntimeOp<double> r{op};
    for (double v : {-3.5, 0.0, 1.0, 123.75}) {
      EXPECT_EQ(r.apply(r.identity(), v), v) << to_string(op);
    }
  }
}

TEST(Ops, AssociativityOnIntegers) {
  // The property §3 of the paper builds everything on. Exact for integers.
  util::SplitMix64 rng(13);
  for (ReductionOp op : kAllOps) {
    RuntimeOp<std::int32_t> r{op};
    for (int trial = 0; trial < 100; ++trial) {
      const auto a = static_cast<std::int32_t>(rng.next());
      const auto b = static_cast<std::int32_t>(rng.next());
      const auto c = static_cast<std::int32_t>(rng.next());
      EXPECT_EQ(r.apply(r.apply(a, b), c), r.apply(a, r.apply(b, c)))
          << to_string(op);
    }
  }
}

TEST(Ops, CommutativityOnIntegers) {
  util::SplitMix64 rng(17);
  for (ReductionOp op : kAllOps) {
    RuntimeOp<std::int32_t> r{op};
    for (int trial = 0; trial < 100; ++trial) {
      const auto a = static_cast<std::int32_t>(rng.next());
      const auto b = static_cast<std::int32_t>(rng.next());
      EXPECT_EQ(r.apply(a, b), r.apply(b, a)) << to_string(op);
    }
  }
}

TEST(Ops, BitwiseRejectedForFloat) {
  EXPECT_FALSE(op_valid_for_type<float>(ReductionOp::kBitAnd));
  EXPECT_FALSE(op_valid_for_type<double>(ReductionOp::kBitXor));
  EXPECT_TRUE(op_valid_for_type<float>(ReductionOp::kSum));
  EXPECT_TRUE(op_valid_for_type<int>(ReductionOp::kBitAnd));
  RuntimeOp<float> r{ReductionOp::kBitOr};
  EXPECT_THROW((void)r.identity(), std::invalid_argument);
  EXPECT_THROW((void)r.apply(1.0F, 2.0F), std::invalid_argument);
}

TEST(Ops, ConcreteSemantics) {
  RuntimeOp<int> sum{ReductionOp::kSum};
  RuntimeOp<int> prod{ReductionOp::kProd};
  RuntimeOp<int> mx{ReductionOp::kMax};
  RuntimeOp<int> mn{ReductionOp::kMin};
  RuntimeOp<int> band{ReductionOp::kBitAnd};
  RuntimeOp<int> bor{ReductionOp::kBitOr};
  RuntimeOp<int> bxor{ReductionOp::kBitXor};
  RuntimeOp<int> land{ReductionOp::kLogAnd};
  RuntimeOp<int> lor{ReductionOp::kLogOr};
  EXPECT_EQ(sum.apply(3, 4), 7);
  EXPECT_EQ(prod.apply(3, 4), 12);
  EXPECT_EQ(mx.apply(-3, 4), 4);
  EXPECT_EQ(mn.apply(-3, 4), -3);
  EXPECT_EQ(band.apply(0b1100, 0b1010), 0b1000);
  EXPECT_EQ(bor.apply(0b1100, 0b1010), 0b1110);
  EXPECT_EQ(bxor.apply(0b1100, 0b1010), 0b0110);
  EXPECT_EQ(land.apply(2, 3), 1);
  EXPECT_EQ(land.apply(2, 0), 0);
  EXPECT_EQ(lor.apply(0, 0), 0);
  EXPECT_EQ(lor.apply(0, 9), 1);
}

template <typename T>
void expect_nan_deterministic_minmax() {
  const T nan = std::numeric_limits<T>::quiet_NaN();
  const T inf = std::numeric_limits<T>::infinity();
  for (ReductionOp op : {ReductionOp::kMin, ReductionOp::kMax}) {
    const RuntimeOp<T> r{op};
    for (T v : {T(-3), T(0), T(7), inf, -inf, r.identity()}) {
      // NaN wins from either operand slot — std::min/max alone would
      // return the first operand on an unordered compare, making the
      // result depend on fold order.
      EXPECT_TRUE(r.apply(nan, v) != r.apply(nan, v)) << to_string(op);
      EXPECT_TRUE(r.apply(v, nan) != r.apply(v, nan)) << to_string(op);
    }
    EXPECT_TRUE(r.apply(nan, nan) != r.apply(nan, nan)) << to_string(op);
  }
  // The compile-time functor mirrors agree with RuntimeOp.
  EXPECT_TRUE(MinOp{}(nan, T(1)) != MinOp{}(nan, T(1)));
  EXPECT_TRUE(MinOp{}(T(1), nan) != MinOp{}(T(1), nan));
  EXPECT_TRUE(MaxOp{}(nan, T(1)) != MaxOp{}(nan, T(1)));
  EXPECT_TRUE(MaxOp{}(T(1), nan) != MaxOp{}(T(1), nan));
}

TEST(Ops, MinMaxPropagateNanFromEitherOperand) {
  expect_nan_deterministic_minmax<float>();
  expect_nan_deterministic_minmax<double>();
}

TEST(Ops, MinMaxNanHandlingIsCommutativeAndAssociative) {
  // The §3 property, extended to the non-finite domain: any fold order
  // over a set containing NaN must land on NaN.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (ReductionOp op : {ReductionOp::kMin, ReductionOp::kMax}) {
    const RuntimeOp<double> r{op};
    const double vals[] = {nan, 2.0, -1.0};
    const double left = r.apply(r.apply(vals[0], vals[1]), vals[2]);
    const double right = r.apply(vals[0], r.apply(vals[1], vals[2]));
    EXPECT_TRUE(left != left) << to_string(op);
    EXPECT_TRUE(right != right) << to_string(op);
  }
}

TEST(Ops, ArgReductionsBreakTiesTowardSmallestIndex) {
  const ArgMinOp<int> amin;
  const ArgMaxOp<int> amax;
  const ValueIndex<int> a{5, 3};
  const ValueIndex<int> b{5, 9};
  EXPECT_EQ(amin.apply(a, b), a);
  EXPECT_EQ(amin.apply(b, a), a);  // commutative under ties
  EXPECT_EQ(amax.apply(a, b), a);
  EXPECT_EQ(amax.apply(b, a), a);
  EXPECT_EQ(amin.apply(ValueIndex<int>{1, 9}, b), (ValueIndex<int>{1, 9}));
  EXPECT_EQ(amax.apply(ValueIndex<int>{9, 9}, b), (ValueIndex<int>{9, 9}));
}

TEST(Ops, ArgReductionIdentityIsNeutral) {
  const ValueIndex<double> v{-2.5, 7};
  EXPECT_EQ(ArgMinOp<double>{}.apply(ArgMinOp<double>::identity(), v), v);
  EXPECT_EQ(ArgMinOp<double>{}.apply(v, ArgMinOp<double>::identity()), v);
  EXPECT_EQ(ArgMaxOp<double>{}.apply(ArgMaxOp<double>::identity(), v), v);
  EXPECT_EQ(ArgMaxOp<double>{}.apply(v, ArgMaxOp<double>::identity()), v);
  // Floating identities are +/-inf so an all-infinite input still yields a
  // real index: a contributed +inf beats argmin's +inf identity via the
  // index tiebreak.
  const ValueIndex<double> inf_contrib{
      std::numeric_limits<double>::infinity(), 4};
  EXPECT_EQ(
      ArgMinOp<double>{}.apply(ArgMinOp<double>::identity(), inf_contrib),
      inf_contrib);
  // Integral identities fall back to the type's extremes.
  EXPECT_EQ(ArgMinOp<int>::identity().value, std::numeric_limits<int>::max());
  EXPECT_EQ(ArgMaxOp<int>::identity().value,
            std::numeric_limits<int>::lowest());
}

TEST(Ops, ArgReductionsNanWinsWithSmallestNanIndex) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const ArgMinOp<double> amin;
  const ArgMaxOp<double> amax;
  const ValueIndex<double> real{-100.0, 0};
  const ValueIndex<double> nan_hi{nan, 8};
  const ValueIndex<double> nan_lo{nan, 2};
  // NaN beats any real value from either slot, for both directions.
  for (const auto& got : {amin.apply(real, nan_hi), amin.apply(nan_hi, real),
                          amax.apply(real, nan_hi),
                          amax.apply(nan_hi, real)}) {
    EXPECT_TRUE(got.value != got.value);
    EXPECT_EQ(got.index, 8);
  }
  // Among several NaNs the smallest index wins, keeping the fold
  // commutative even when multiple lanes contribute NaN.
  EXPECT_EQ(amin.apply(nan_hi, nan_lo).index, 2);
  EXPECT_EQ(amin.apply(nan_lo, nan_hi).index, 2);
  EXPECT_EQ(amax.apply(nan_hi, nan_lo).index, 2);
}

TEST(Ops, UnsignedWrapIsWellDefined) {
  RuntimeOp<std::uint32_t> sum{ReductionOp::kSum};
  EXPECT_EQ(sum.apply(0xFFFFFFFFu, 1u), 0u);
}

TEST(Types, SizesAndNames) {
  EXPECT_EQ(size_of(DataType::kInt32), 4u);
  EXPECT_EQ(size_of(DataType::kDouble), 8u);
  EXPECT_EQ(to_string(DataType::kFloat), "float");
  EXPECT_TRUE(is_integral(DataType::kInt64));
  EXPECT_FALSE(is_integral(DataType::kDouble));
}

TEST(Types, DispatchSelectsMatchingType) {
  const std::size_t sz = dispatch_type(
      DataType::kDouble, [](auto tag) { return sizeof(typename decltype(tag)::type); });
  EXPECT_EQ(sz, 8u);
  dispatch_type(DataType::kInt32, [](auto tag) {
    using T = typename decltype(tag)::type;
    static_assert(std::is_same_v<T, std::int32_t> ||
                  !std::is_same_v<T, std::int32_t>);
    EXPECT_EQ(data_type_of<T>(), DataType::kInt32);
  });
}

}  // namespace
}  // namespace accred::acc
