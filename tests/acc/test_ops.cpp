#include "acc/ops.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "acc/types.hpp"
#include "util/rng.hpp"

namespace accred::acc {
namespace {

constexpr ReductionOp kAllOps[] = {
    ReductionOp::kSum,    ReductionOp::kProd,  ReductionOp::kMax,
    ReductionOp::kMin,    ReductionOp::kBitAnd, ReductionOp::kBitOr,
    ReductionOp::kBitXor, ReductionOp::kLogAnd, ReductionOp::kLogOr};

TEST(Ops, RoundTripSpelling) {
  for (ReductionOp op : kAllOps) {
    EXPECT_EQ(parse_reduction_op(to_string(op)), op);
  }
  EXPECT_THROW((void)parse_reduction_op("plus"), std::invalid_argument);
  EXPECT_THROW((void)parse_reduction_op(""), std::invalid_argument);
}

TEST(Ops, IdentityIsNeutralForInts) {
  util::SplitMix64 rng(7);
  for (ReductionOp op : kAllOps) {
    RuntimeOp<std::int64_t> r{op};
    for (int trial = 0; trial < 50; ++trial) {
      // Logical operators collapse values to 0/1, so identity-neutrality
      // only holds on the operator's value domain.
      std::int64_t v = static_cast<std::int64_t>(rng.next() % 1000) - 500;
      if (op == ReductionOp::kLogAnd || op == ReductionOp::kLogOr) v = v & 1;
      EXPECT_EQ(r.apply(r.identity(), v), v) << to_string(op);
      EXPECT_EQ(r.apply(v, r.identity()), v) << to_string(op);
    }
  }
}

TEST(Ops, IdentityIsNeutralForFloats) {
  for (ReductionOp op :
       {ReductionOp::kSum, ReductionOp::kProd, ReductionOp::kMax,
        ReductionOp::kMin}) {
    RuntimeOp<double> r{op};
    for (double v : {-3.5, 0.0, 1.0, 123.75}) {
      EXPECT_EQ(r.apply(r.identity(), v), v) << to_string(op);
    }
  }
}

TEST(Ops, AssociativityOnIntegers) {
  // The property §3 of the paper builds everything on. Exact for integers.
  util::SplitMix64 rng(13);
  for (ReductionOp op : kAllOps) {
    RuntimeOp<std::int32_t> r{op};
    for (int trial = 0; trial < 100; ++trial) {
      const auto a = static_cast<std::int32_t>(rng.next());
      const auto b = static_cast<std::int32_t>(rng.next());
      const auto c = static_cast<std::int32_t>(rng.next());
      EXPECT_EQ(r.apply(r.apply(a, b), c), r.apply(a, r.apply(b, c)))
          << to_string(op);
    }
  }
}

TEST(Ops, CommutativityOnIntegers) {
  util::SplitMix64 rng(17);
  for (ReductionOp op : kAllOps) {
    RuntimeOp<std::int32_t> r{op};
    for (int trial = 0; trial < 100; ++trial) {
      const auto a = static_cast<std::int32_t>(rng.next());
      const auto b = static_cast<std::int32_t>(rng.next());
      EXPECT_EQ(r.apply(a, b), r.apply(b, a)) << to_string(op);
    }
  }
}

TEST(Ops, BitwiseRejectedForFloat) {
  EXPECT_FALSE(op_valid_for_type<float>(ReductionOp::kBitAnd));
  EXPECT_FALSE(op_valid_for_type<double>(ReductionOp::kBitXor));
  EXPECT_TRUE(op_valid_for_type<float>(ReductionOp::kSum));
  EXPECT_TRUE(op_valid_for_type<int>(ReductionOp::kBitAnd));
  RuntimeOp<float> r{ReductionOp::kBitOr};
  EXPECT_THROW((void)r.identity(), std::invalid_argument);
  EXPECT_THROW((void)r.apply(1.0F, 2.0F), std::invalid_argument);
}

TEST(Ops, ConcreteSemantics) {
  RuntimeOp<int> sum{ReductionOp::kSum};
  RuntimeOp<int> prod{ReductionOp::kProd};
  RuntimeOp<int> mx{ReductionOp::kMax};
  RuntimeOp<int> mn{ReductionOp::kMin};
  RuntimeOp<int> band{ReductionOp::kBitAnd};
  RuntimeOp<int> bor{ReductionOp::kBitOr};
  RuntimeOp<int> bxor{ReductionOp::kBitXor};
  RuntimeOp<int> land{ReductionOp::kLogAnd};
  RuntimeOp<int> lor{ReductionOp::kLogOr};
  EXPECT_EQ(sum.apply(3, 4), 7);
  EXPECT_EQ(prod.apply(3, 4), 12);
  EXPECT_EQ(mx.apply(-3, 4), 4);
  EXPECT_EQ(mn.apply(-3, 4), -3);
  EXPECT_EQ(band.apply(0b1100, 0b1010), 0b1000);
  EXPECT_EQ(bor.apply(0b1100, 0b1010), 0b1110);
  EXPECT_EQ(bxor.apply(0b1100, 0b1010), 0b0110);
  EXPECT_EQ(land.apply(2, 3), 1);
  EXPECT_EQ(land.apply(2, 0), 0);
  EXPECT_EQ(lor.apply(0, 0), 0);
  EXPECT_EQ(lor.apply(0, 9), 1);
}

TEST(Ops, UnsignedWrapIsWellDefined) {
  RuntimeOp<std::uint32_t> sum{ReductionOp::kSum};
  EXPECT_EQ(sum.apply(0xFFFFFFFFu, 1u), 0u);
}

TEST(Types, SizesAndNames) {
  EXPECT_EQ(size_of(DataType::kInt32), 4u);
  EXPECT_EQ(size_of(DataType::kDouble), 8u);
  EXPECT_EQ(to_string(DataType::kFloat), "float");
  EXPECT_TRUE(is_integral(DataType::kInt64));
  EXPECT_FALSE(is_integral(DataType::kDouble));
}

TEST(Types, DispatchSelectsMatchingType) {
  const std::size_t sz = dispatch_type(
      DataType::kDouble, [](auto tag) { return sizeof(typename decltype(tag)::type); });
  EXPECT_EQ(sz, 8u);
  dispatch_type(DataType::kInt32, [](auto tag) {
    using T = typename decltype(tag)::type;
    static_assert(std::is_same_v<T, std::int32_t> ||
                  !std::is_same_v<T, std::int32_t>);
    EXPECT_EQ(data_type_of<T>(), DataType::kInt32);
  });
}

}  // namespace
}  // namespace accred::acc
