// Deterministic property fuzz: random loop nests (extents, spans,
// operators, types, launch shapes, compiler profiles) are planned,
// executed, and verified against the CPU fold. Any scheduling, planning,
// tree, or cost-model regression that corrupts results is caught here by
// sheer case diversity.
#include <gtest/gtest.h>

#include <tuple>

#include "acc/executor.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace accred::acc {
namespace {

struct FuzzCase {
  NestIR nest;
  ReductionOp op;
  DataType type;
  CompilerId compiler;
};

/// Build a random but *valid* nest: the triple gang/worker/vector shape
/// with random extents, a random reduction span, and random launch shape.
FuzzCase make_case(util::SplitMix64& rng) {
  FuzzCase fc;
  const ReductionOp ops[] = {
      ReductionOp::kSum,    ReductionOp::kProd,   ReductionOp::kMax,
      ReductionOp::kMin,    ReductionOp::kBitAnd, ReductionOp::kBitOr,
      ReductionOp::kBitXor, ReductionOp::kLogAnd, ReductionOp::kLogOr};
  const DataType types[] = {DataType::kInt32, DataType::kUInt32,
                            DataType::kInt64, DataType::kFloat,
                            DataType::kDouble};
  for (;;) {
    fc.op = ops[rng.next_below(std::size(ops))];
    fc.type = types[rng.next_below(std::size(types))];
    const bool bitwise = fc.op == ReductionOp::kBitAnd ||
                         fc.op == ReductionOp::kBitOr ||
                         fc.op == ReductionOp::kBitXor;
    if (!bitwise || is_integral(fc.type)) break;
  }
  const CompilerId ids[] = {CompilerId::kOpenUH, CompilerId::kCapsLike,
                            CompilerId::kPgiLike};
  fc.compiler = ids[rng.next_below(3)];

  auto extent = [&] {
    return static_cast<std::int64_t>(1 + rng.next_below(40));
  };
  fc.nest.loops = {LoopSpec{mask_of(Par::kGang), extent(), {}},
                   LoopSpec{mask_of(Par::kWorker), extent(), {}},
                   LoopSpec{mask_of(Par::kVector), extent(), {}}};
  fc.nest.config.num_gangs = 1 + static_cast<std::uint32_t>(rng.next_below(8));
  fc.nest.config.num_workers =
      1 + static_cast<std::uint32_t>(rng.next_below(8));
  fc.nest.config.vector_length =
      32 * (1 + static_cast<std::uint32_t>(rng.next_below(4)));

  // Random span: pick accumulation level and use level < it.
  const int accum = static_cast<int>(rng.next_below(3));
  const int use =
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(accum) + 1)) -
      1;  // in [-1, accum-1]
  fc.nest.vars = {{"r", fc.type, accum, use}};
  const ReductionClause clause{fc.op, "r", 0};
  if (acc::profile(fc.compiler).discipline ==
      ClauseDiscipline::kExplicitAllLevels) {
    for (int l = use + 1; l <= accum; ++l) {
      fc.nest.loops[static_cast<std::size_t>(l)].reductions = {clause};
    }
  } else {
    fc.nest.loops[static_cast<std::size_t>(use + 1)].reductions = {clause};
  }
  return fc;
}

template <typename T>
void run_and_verify(const FuzzCase& fc, std::uint64_t seed) {
  gpusim::Device dev;
  const auto [nk, nj, ni] = std::tuple{fc.nest.loops[0].extent,
                                       fc.nest.loops[1].extent,
                                       fc.nest.loops[2].extent};
  const ExecutionPlan plan = plan_single(fc.nest, profile(fc.compiler));

  // Contributions depend on the span: the accumulation level's loop
  // carries the innermost contributing index.
  const int accum = fc.nest.vars[0].accum_level;
  const std::size_t volume = static_cast<std::size_t>(
      accum == 0 ? nk : (accum == 1 ? nk * nj : nk * nj * ni));
  auto host = test::make_input<T>(fc.op, volume);
  auto input = dev.alloc<T>(volume);
  input.copy_from_host(host);
  auto in_view = input.view();

  // Per-instance sinks: one slot per outer instance above the span.
  const int use = fc.nest.vars[0].use_level;
  const std::size_t slots = static_cast<std::size_t>(
      use == -1 ? 1 : (use == 0 ? nk : nk * nj));
  auto out = dev.alloc<T>(slots);
  auto out_view = out.view();

  reduce::Bindings<T> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    std::size_t idx = static_cast<std::size_t>(k);
    if (accum >= 1) idx = static_cast<std::size_t>(k * nj + std::max<std::int64_t>(j, 0));
    if (accum >= 2) {
      idx = static_cast<std::size_t>(
          (k * nj + std::max<std::int64_t>(j, 0)) * ni +
          std::max<std::int64_t>(i, 0));
    }
    return ctx.ld(in_view, idx);
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j, T r) {
    std::size_t s = 0;
    if (use == 0) s = static_cast<std::size_t>(k);
    if (use == 1) s = static_cast<std::size_t>(k * nj + j);
    ctx.st(out_view, s, r);
  };

  auto res = execute<T>(dev, plan, b);

  // Host verification per sink slot.
  const RuntimeOp<T> rop{fc.op};
  const std::size_t per_slot = volume / slots;
  for (std::size_t s = 0; s < slots; ++s) {
    T expect = rop.identity();
    for (std::size_t i = 0; i < per_slot; ++i) {
      expect = rop.apply(expect, host[s * per_slot + i]);
    }
    const T actual = use == -1 ? res.scalar.value_or(rop.identity())
                               : out.host_span()[s];
    EXPECT_TRUE(testsuite::reduction_result_matches(expect, actual,
                                                    per_slot))
        << "seed " << seed << " slot " << s << " op "
        << to_string(fc.op) << " type " << to_string(fc.type) << " plan "
        << to_string(plan.kind) << " compiler " << to_string(fc.compiler)
        << " dims " << nk << "x" << nj << "x" << ni << " expect " << expect
        << " actual " << actual;
  }
}

class FuzzNests : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzNests, RandomNestVerifies) {
  util::SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    const FuzzCase fc = make_case(rng);
    dispatch_type(fc.type, [&](auto tag) {
      using T = typename decltype(tag)::type;
      run_and_verify<T>(fc, GetParam());
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzNests,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace accred::acc
