// Tests for the Fig. 3 start-offset support: loops with non-zero lower
// bounds deliver original indices to the bindings.
#include <gtest/gtest.h>

#include "acc/region.hpp"

namespace accred::acc {
namespace {

TEST(RegionOffsets, RangeLoopDeliversOriginalIndices) {
  gpusim::Device dev;
  // Sum of the index values themselves over k in [10, 40), i in [5, 25).
  Region region(dev);
  region.parallel("parallel num_gangs(4) num_workers(2) vector_length(32)")
      .loop("loop gang", 10, 40)
      .loop("loop worker", 0, 2)
      .loop("loop vector reduction(+:s)", 5, 25)
      .var("s", DataType::kInt64, /*accum=*/2, /*use=*/1);

  gpusim::Device* devp = &dev;
  auto sums = dev.alloc<std::int64_t>(30 * 2);
  auto sv = sums.view();
  (void)devp;
  reduce::Bindings<std::int64_t> b;
  b.contrib = [](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                 std::int64_t i) -> std::int64_t {
    EXPECT_GE(k, 10);
    EXPECT_LT(k, 40);
    EXPECT_GE(j, 0);
    EXPECT_LT(j, 2);
    EXPECT_GE(i, 5);
    EXPECT_LT(i, 25);
    ctx.alu(1);
    return k * 1000 + i;
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
               std::int64_t r) {
    EXPECT_GE(k, 10);
    EXPECT_LT(k, 40);
    ctx.st(sv, std::size_t((k - 10) * 2 + j), r);
  };
  (void)region.run<std::int64_t>(b);

  for (std::int64_t k = 10; k < 40; ++k) {
    std::int64_t expect = 0;
    for (std::int64_t i = 5; i < 25; ++i) expect += k * 1000 + i;
    for (std::int64_t j = 0; j < 2; ++j) {
      EXPECT_EQ(sums.host_span()[std::size_t((k - 10) * 2 + j)], expect)
          << "k=" << k;
    }
  }
}

TEST(RegionOffsets, InstanceInitSeesOriginalIndices) {
  gpusim::Device dev;
  Region region(dev);
  region.parallel("parallel num_gangs(2) num_workers(2) vector_length(32)")
      .loop("loop gang", 100, 102)
      .loop("loop worker", 0, 2)
      .loop("loop vector reduction(+:s)", 0, 64)
      .var("s", DataType::kInt32, 2, 1);
  auto out = dev.alloc<std::int32_t>(4);
  auto ov = out.view();
  reduce::Bindings<std::int32_t> b;
  b.contrib = [](gpusim::ThreadCtx& ctx, std::int64_t, std::int64_t,
                 std::int64_t) {
    ctx.alu(1);
    return 1;
  };
  b.instance_init = [](std::int64_t k, std::int64_t j) {
    return static_cast<std::int32_t>(k * 10 + j);  // k is 100 or 101
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
               std::int32_t r) {
    ctx.st(ov, std::size_t((k - 100) * 2 + j), r);
  };
  (void)region.run<std::int32_t>(b);
  for (std::int64_t k = 100; k < 102; ++k) {
    for (std::int64_t j = 0; j < 2; ++j) {
      EXPECT_EQ(out.host_span()[std::size_t((k - 100) * 2 + j)],
                k * 10 + j + 64);
    }
  }
}

TEST(RegionOffsets, ZeroBasedLoopsTakeTheFastPath) {
  gpusim::Device dev;
  Region region(dev);
  region.loop("loop gang vector reduction(+:t)", 0, 1000)
      .var("t", DataType::kInt32, 0);
  reduce::Bindings<std::int32_t> b;
  b.contrib = [](gpusim::ThreadCtx& ctx, std::int64_t, std::int64_t,
                 std::int64_t) {
    ctx.alu(1);
    return 1;
  };
  auto res = region.run<std::int32_t>(b);
  EXPECT_EQ(res.scalar.value_or(0), 1000);
}

}  // namespace
}  // namespace accred::acc
