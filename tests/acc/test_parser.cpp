#include "acc/parser.hpp"

#include <gtest/gtest.h>

namespace accred::acc {
namespace {

TEST(LoopParser, PlainBindings) {
  auto d = parse_loop_directive("#pragma acc loop gang");
  EXPECT_EQ(d.par, mask_of(Par::kGang));
  d = parse_loop_directive("loop worker");
  EXPECT_EQ(d.par, mask_of(Par::kWorker));
  d = parse_loop_directive("acc loop vector");
  EXPECT_EQ(d.par, mask_of(Par::kVector));
  d = parse_loop_directive("loop gang worker vector");
  EXPECT_EQ(d.par, Par::kGang | Par::kWorker | Par::kVector);
}

TEST(LoopParser, SizeArguments) {
  auto d = parse_loop_directive("loop gang(64) worker(4) vector(256)");
  EXPECT_EQ(d.par, Par::kGang | Par::kWorker | Par::kVector);
  EXPECT_EQ(d.gang_size, 64u);
  EXPECT_EQ(d.worker_size, 4u);
  EXPECT_EQ(d.vector_size, 256u);
  d = parse_loop_directive("loop gang vector(128)");
  EXPECT_FALSE(d.gang_size.has_value());
  EXPECT_EQ(d.vector_size, 128u);
  EXPECT_THROW((void)parse_loop_directive("loop gang(0)"),
               std::invalid_argument);
}

TEST(LoopParser, ArrayReductionExtension) {
  auto d = parse_loop_directive("loop gang vector reduction(+:hist[0:16])");
  ASSERT_EQ(d.reductions.size(), 1u);
  EXPECT_EQ(d.reductions[0].var, "hist");
  EXPECT_EQ(d.reductions[0].array_len, 16);
  EXPECT_THROW((void)parse_loop_directive("loop gang reduction(+:h[1:4])"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_loop_directive("loop gang reduction(+:h[0:0])"),
               std::invalid_argument);
}

TEST(LoopParser, ReductionClause) {
  auto d = parse_loop_directive("loop vector reduction(+:i_sum)");
  ASSERT_EQ(d.reductions.size(), 1u);
  EXPECT_EQ(d.reductions[0].op, ReductionOp::kSum);
  EXPECT_EQ(d.reductions[0].var, "i_sum");
}

TEST(LoopParser, AllOperatorSpellings) {
  const std::pair<const char*, ReductionOp> cases[] = {
      {"+", ReductionOp::kSum},     {"*", ReductionOp::kProd},
      {"max", ReductionOp::kMax},   {"min", ReductionOp::kMin},
      {"&", ReductionOp::kBitAnd},  {"|", ReductionOp::kBitOr},
      {"^", ReductionOp::kBitXor},  {"&&", ReductionOp::kLogAnd},
      {"||", ReductionOp::kLogOr},
  };
  for (const auto& [spell, op] : cases) {
    auto d = parse_loop_directive(std::string("loop gang reduction(") +
                                  spell + ":x)");
    ASSERT_EQ(d.reductions.size(), 1u) << spell;
    EXPECT_EQ(d.reductions[0].op, op) << spell;
  }
}

TEST(LoopParser, MultipleVarsAndClauses) {
  auto d = parse_loop_directive(
      "loop gang reduction(+:a,b) reduction(max:err)");
  ASSERT_EQ(d.reductions.size(), 3u);
  EXPECT_EQ(d.reductions[0].var, "a");
  EXPECT_EQ(d.reductions[1].var, "b");
  EXPECT_EQ(d.reductions[1].op, ReductionOp::kSum);
  EXPECT_EQ(d.reductions[2].var, "err");
  EXPECT_EQ(d.reductions[2].op, ReductionOp::kMax);
}

TEST(LoopParser, CollapseAndSeq) {
  auto d = parse_loop_directive("loop gang collapse(3)");
  EXPECT_EQ(d.collapse, 3);
  d = parse_loop_directive("loop seq");
  EXPECT_TRUE(d.seq);
  EXPECT_EQ(d.par, 0);
}

TEST(LoopParser, WhitespaceTolerant) {
  auto d = parse_loop_directive(
      "  loop   gang  reduction( + : sum )   worker ");
  EXPECT_EQ(d.par, Par::kGang | Par::kWorker);
  ASSERT_EQ(d.reductions.size(), 1u);
  EXPECT_EQ(d.reductions[0].var, "sum");
}

TEST(LoopParser, Rejections) {
  EXPECT_THROW(parse_loop_directive("loop sideways"), std::invalid_argument);
  EXPECT_THROW(parse_loop_directive("parallel gang"), std::invalid_argument);
  EXPECT_THROW(parse_loop_directive("loop reduction(+)"),
               std::invalid_argument);
  EXPECT_THROW(parse_loop_directive("loop reduction(%:x)"),
               std::invalid_argument);
  EXPECT_THROW(parse_loop_directive("loop collapse(0)"),
               std::invalid_argument);
  EXPECT_THROW(parse_loop_directive("loop seq gang"), std::invalid_argument);
  EXPECT_THROW(parse_loop_directive("loop reduction(+:)"),
               std::invalid_argument);
}

TEST(ParallelParser, TuningClauses) {
  auto d = parse_parallel_directive(
      "#pragma acc parallel num_gangs(192) num_workers(8) vector_length(128)");
  EXPECT_FALSE(d.is_kernels);
  EXPECT_EQ(d.num_gangs, 192u);
  EXPECT_EQ(d.num_workers, 8u);
  EXPECT_EQ(d.vector_length, 128u);
}

TEST(ParallelParser, DataClauses) {
  auto d = parse_parallel_directive(
      "parallel copyin(input) copyout(temp) create(scratch,buf)");
  ASSERT_EQ(d.data.size(), 3u);
  EXPECT_EQ(d.data[0].kind, DataClauseKind::kCopyIn);
  EXPECT_EQ(d.data[0].vars, std::vector<std::string>{"input"});
  EXPECT_EQ(d.data[2].kind, DataClauseKind::kCreate);
  ASSERT_EQ(d.data[2].vars.size(), 2u);
  EXPECT_EQ(d.data[2].vars[1], "buf");
}

TEST(ParallelParser, ArraySections) {
  auto d = parse_parallel_directive("parallel copyin(x[0:n], y[0:n])");
  ASSERT_EQ(d.data.size(), 1u);
  EXPECT_EQ(d.data[0].vars, (std::vector<std::string>{"x", "y"}));
}

TEST(ParallelParser, KernelsConstruct) {
  auto d = parse_parallel_directive("kernels copy(a)");
  EXPECT_TRUE(d.is_kernels);
}

TEST(ParallelParser, ReductionOnComputeConstruct) {
  auto d = parse_parallel_directive("parallel reduction(+:total)");
  ASSERT_EQ(d.reductions.size(), 1u);
  EXPECT_EQ(d.reductions[0].var, "total");
}

TEST(ParallelParser, Rejections) {
  EXPECT_THROW(parse_parallel_directive("loop gang"), std::invalid_argument);
  EXPECT_THROW(parse_parallel_directive("parallel num_gangs()"),
               std::invalid_argument);
  EXPECT_THROW(parse_parallel_directive("parallel bogus(3)"),
               std::invalid_argument);
}

TEST(SpanBetween, UnionsLevelMasks) {
  NestIR nest;
  nest.loops = {LoopSpec{mask_of(Par::kGang), 10, {}},
                LoopSpec{mask_of(Par::kWorker), 10, {}},
                LoopSpec{mask_of(Par::kVector), 10, {}}};
  EXPECT_EQ(span_between(nest, -1, 2), Par::kGang | Par::kWorker | Par::kVector);
  EXPECT_EQ(span_between(nest, 0, 2), Par::kWorker | Par::kVector);
  EXPECT_EQ(span_between(nest, 1, 2), mask_of(Par::kVector));
  EXPECT_EQ(span_between(nest, 2, 2), 0);
  EXPECT_EQ(span_between(nest, -1, 0), mask_of(Par::kGang));
}

TEST(ParMaskToString, Spellings) {
  EXPECT_EQ(par_mask_to_string(0), "seq");
  EXPECT_EQ(par_mask_to_string(mask_of(Par::kGang)), "gang");
  EXPECT_EQ(par_mask_to_string(Par::kGang | Par::kVector), "gang vector");
  EXPECT_EQ(par_mask_to_string(Par::kGang | Par::kWorker | Par::kVector),
            "gang worker vector");
}

}  // namespace
}  // namespace accred::acc
