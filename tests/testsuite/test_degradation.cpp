// Tests of the graceful-degradation executor (acc/executor.hpp) and the
// testsuite runner's recovery plumbing: retry, non-sticky fault stripping,
// the degradation ladder (all-barriers tree, then geometry shrink), the
// runner's allocation-retry loop, and the campaign accounting that must
// survive every one of those paths.
#include "acc/executor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "gpusim/pool.hpp"
#include "testsuite/runner.hpp"

namespace accred {
namespace {

using acc::DegradeEvent;
using acc::GuardPolicy;
using gpusim::FaultKind;
using gpusim::LaunchErrorCode;

testsuite::RunnerOptions small_opts() {
  testsuite::RunnerOptions o;
  o.reduction_extent = 1 << 9;
  o.config.num_gangs = 8;  // scaled like test_runner.cpp: quick, same shapes
  o.config.num_workers = 4;
  o.config.vector_length = 64;
  o.sim_threads = 1;
  return o;
}

const testsuite::CaseSpec kGangSumInt{acc::Position::kGang,
                                      acc::ReductionOp::kSum,
                                      acc::DataType::kInt32};

/// A gang-sum plan plus trivial bindings (every contribution is 1), for
/// driving execute_guarded directly.
struct GuardFixture {
  gpusim::Device dev;
  acc::ExecutionPlan plan;
  reduce::Bindings<std::int32_t> bindings;

  explicit GuardFixture(const testsuite::RunnerOptions& opts = small_opts())
      : plan(testsuite::plan_for_case(acc::CompilerId::kOpenUH, kGangSumInt,
                                      opts)) {
    plan.strategy.sim.sim_threads = 1;
    bindings.contrib = [](gpusim::ThreadCtx&, std::int64_t, std::int64_t,
                          std::int64_t) { return std::int32_t{1}; };
  }
};

TEST(ExecutorGuard, CleanRunSucceedsFirstAttempt) {
  GuardFixture fx;
  const auto out = acc::execute_guarded<std::int32_t>(fx.dev, fx.plan,
                                                      fx.bindings);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_FALSE(out.recovered);
  EXPECT_FALSE(out.degraded);
  EXPECT_TRUE(out.events.empty());
  EXPECT_FALSE(out.faults_armed);
}

TEST(ExecutorGuard, RecoversWhenTheGuardPassesOnRetry) {
  GuardFixture fx;
  int calls = 0;
  const auto out = acc::execute_guarded<std::int32_t>(
      fx.dev, fx.plan, fx.bindings, {},
      [&](const reduce::ReduceResult<std::int32_t>&, std::string& why) {
        if (++calls == 1) {
          why = "transient mismatch";
          return false;
        }
        return true;
      });
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_TRUE(out.recovered);
  EXPECT_FALSE(out.degraded);  // same rung, no plan change
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].code, LaunchErrorCode::kNumericGuard);
  EXPECT_EQ(out.events[0].action, "retry");
}

TEST(ExecutorGuard, LadderWalksTreeThenGeometryThenGivesUp) {
  GuardFixture fx;
  ASSERT_TRUE(fx.plan.strategy.tree.unroll_last_warp);
  const std::uint32_t v0 = fx.plan.launch.vector_length;
  const auto out = acc::execute_guarded<std::int32_t>(
      fx.dev, fx.plan, fx.bindings, GuardPolicy{.max_retries = 0},
      [](const reduce::ReduceResult<std::int32_t>&, std::string& why) {
        why = "forced failure";
        return false;
      });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error.code, LaunchErrorCode::kNumericGuard);
  EXPECT_FALSE(out.degraded);  // only a successful degraded run counts
  ASSERT_FALSE(out.events.empty());
  EXPECT_EQ(out.events.front().action,
            "degrade: all-barriers tree (unroll_last_warp off)");
  EXPECT_EQ(out.events.back().action, "give up");
  // The terminal plan sits on the ladder's bottom rung.
  EXPECT_FALSE(out.plan.strategy.tree.unroll_last_warp);
  EXPECT_EQ(out.plan.launch.vector_length, 32u);
  EXPECT_EQ(out.plan.launch.num_workers, 1u);
  // One attempt per rung with max_retries = 0: tree + vector halvings +
  // worker halvings, bounded by the geometry.
  EXPECT_EQ(static_cast<std::size_t>(out.attempts), out.events.size());
  EXPECT_GT(v0, 32u);  // the fixture actually had rungs to walk
}

TEST(ExecutorGuard, NoDegradePolicyStopsAfterRetries) {
  GuardFixture fx;
  const auto out = acc::execute_guarded<std::int32_t>(
      fx.dev, fx.plan, fx.bindings,
      GuardPolicy{.max_retries = 2, .degrade = false},
      [](const reduce::ReduceResult<std::int32_t>&, std::string& why) {
        why = "forced failure";
        return false;
      });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 3);  // the original try + 2 retries
  EXPECT_EQ(out.events.back().action, "give up");
  // The plan was never touched.
  EXPECT_TRUE(out.plan.strategy.tree.unroll_last_warp);
}

TEST(ExecutorGuard, NonStickyInjectedAbortIsStrippedAndRecovered) {
  GuardFixture fx;
  fx.plan.strategy.sim.faults = "warp_abort:block=0";
  const auto out = acc::execute_guarded<std::int32_t>(fx.dev, fx.plan,
                                                      fx.bindings);
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_TRUE(out.faults_armed);
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].code, LaunchErrorCode::kWarpAbort);
  EXPECT_EQ(out.events[0].action, "strip non-sticky faults and retry");
  // The aborted attempt's fired event survived on the thrown error.
  ASSERT_FALSE(out.fault_events.empty());
  EXPECT_EQ(out.fault_events[0].kind, FaultKind::kWarpAbort);
}

TEST(ExecutorGuard, EventsRecordRungAndFailureOrdinal) {
  GuardFixture fx;
  const auto out = acc::execute_guarded<std::int32_t>(
      fx.dev, fx.plan, fx.bindings, GuardPolicy{.max_retries = 1},
      [](const reduce::ReduceResult<std::int32_t>&, std::string& why) {
        why = "forced failure";
        return false;
      });
  EXPECT_FALSE(out.ok);
  ASSERT_GE(out.events.size(), 3u);
  // Two failures on rung 0 (original + retry), then the ladder descends:
  // each event pins the rung it ran on and its ordinal within that rung.
  EXPECT_EQ(out.events[0].rung, 0);
  EXPECT_EQ(out.events[0].failure_on_rung, 1);
  EXPECT_EQ(out.events[0].action, "retry");
  EXPECT_EQ(out.events[1].rung, 0);
  EXPECT_EQ(out.events[1].failure_on_rung, 2);
  EXPECT_EQ(out.events[2].rung, 1);
  EXPECT_EQ(out.events[2].failure_on_rung, 1);
  // The terminal event sits on the deepest rung reached.
  EXPECT_EQ(out.events.back().action, "give up");
  EXPECT_GT(out.events.back().rung, 1);
}

TEST(ExecutorGuard, MaxDegradeRungsBoundsTheLadder) {
  GuardFixture fx;
  ASSERT_TRUE(fx.plan.strategy.tree.unroll_last_warp);
  const std::uint32_t v0 = fx.plan.launch.vector_length;
  const auto out = acc::execute_guarded<std::int32_t>(
      fx.dev, fx.plan, fx.bindings,
      GuardPolicy{.max_retries = 0, .max_degrade_rungs = 1},
      [](const reduce::ReduceResult<std::int32_t>&, std::string& why) {
        why = "forced failure";
        return false;
      });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 2);  // rung 0, rung 1, then the bound stops it
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].action,
            "degrade: all-barriers tree (unroll_last_warp off)");
  EXPECT_EQ(out.events[1].action, "give up");
  // Only the tree rung was taken: the geometry was never touched.
  EXPECT_FALSE(out.plan.strategy.tree.unroll_last_warp);
  EXPECT_EQ(out.plan.launch.vector_length, v0);
}

TEST(ExecutorGuard, AttemptBudgetIsTerminal) {
  GuardFixture fx;
  const auto out = acc::execute_guarded<std::int32_t>(
      fx.dev, fx.plan, fx.bindings,
      GuardPolicy{.max_retries = 5, .max_total_attempts = 2},
      [](const reduce::ReduceResult<std::int32_t>&, std::string& why) {
        why = "forced failure";
        return false;
      });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 2);  // the budget cuts the same-rung retries short
  EXPECT_EQ(out.events.back().action, "attempt budget exhausted: give up");
  EXPECT_EQ(out.error.code, LaunchErrorCode::kNumericGuard);
}

TEST(ExecutorGuard, ClientCancellationIsTerminal) {
  GuardFixture fx;
  auto token = std::make_shared<gpusim::CancelToken>();
  token->cancel_at_launch(1);  // cancel at the first kernel-launch entry
  fx.plan.strategy.sim.cancel_token = token;
  const auto out = acc::execute_guarded<std::int32_t>(fx.dev, fx.plan,
                                                      fx.bindings);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 1);  // no retry, no ladder: the client walked away
  EXPECT_EQ(out.error.code, LaunchErrorCode::kCancelled);
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].action, "cancelled: give up");
  EXPECT_FALSE(out.degraded);
}

// ---- the runner's recovery plumbing, end to end -----------------------

TEST(RunnerDegradation, BitflipIsCaughtStrippedAndRecovered) {
  testsuite::RunnerOptions o = small_opts();
  o.faults = "bitflip@tree:block=0,bit=62";
  testsuite::Runner runner(o);
  const testsuite::CaseOutcome out =
      runner.run(acc::CompilerId::kOpenUH, kGangSumInt);
  EXPECT_TRUE(out.verified) << out.detail;
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_FALSE(out.degraded);
  EXPECT_TRUE(out.stats.faults_armed);
  ASSERT_FALSE(out.stats.fault_events.empty());
  EXPECT_EQ(out.stats.fault_events[0].kind, FaultKind::kBitFlip);
  ASSERT_FALSE(out.events.empty());
  EXPECT_NE(out.events[0].find("strip non-sticky faults"), std::string::npos)
      << out.events[0];
}

TEST(RunnerDegradation, StickyBitflipWithoutDegradeFailsStructurally) {
  testsuite::RunnerOptions o = small_opts();
  o.faults = "bitflip@tree:block=0,bit=62,sticky";
  o.max_retries = 1;
  o.degrade = false;
  testsuite::Runner runner(o);
  const testsuite::CaseOutcome out =
      runner.run(acc::CompilerId::kOpenUH, kGangSumInt);
  EXPECT_FALSE(out.verified);
  EXPECT_EQ(out.attempts, 2);  // sticky: the retry failed identically
  EXPECT_EQ(out.stats.error.code, LaunchErrorCode::kNumericGuard);
  EXPECT_FALSE(out.detail.empty());
  // Both attempts' flips are in the record.
  EXPECT_EQ(out.stats.fault_events.size(), 2u);
}

TEST(RunnerDegradation, InjectedAllocFailureIsRetriedAndRecorded) {
  testsuite::RunnerOptions o = small_opts();
  o.faults = "alloc_fail@input";
  testsuite::Runner runner(o);
  const testsuite::CaseOutcome out =
      runner.run(acc::CompilerId::kOpenUH, kGangSumInt);
  EXPECT_TRUE(out.verified) << out.detail;
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_TRUE(out.stats.faults_armed);
  ASSERT_FALSE(out.stats.fault_events.empty());
  EXPECT_EQ(out.stats.fault_events[0].kind, FaultKind::kAllocFail);
  EXPECT_EQ(out.stats.fault_events[0].stage, "input");
  ASSERT_FALSE(out.events.empty());
  EXPECT_NE(out.events[0].find("retry allocation"), std::string::npos)
      << out.events[0];
}

TEST(RunnerDegradation, RunnerEventsRenderRungAndOrdinal) {
  testsuite::RunnerOptions o = small_opts();
  o.faults = "bitflip@tree:block=0,bit=62,sticky";
  o.max_retries = 1;
  o.degrade = false;
  testsuite::Runner runner(o);
  const testsuite::CaseOutcome out =
      runner.run(acc::CompilerId::kOpenUH, kGangSumInt);
  EXPECT_FALSE(out.verified);
  ASSERT_FALSE(out.events.empty());
  // The rendered trail carries the attempt, rung, and per-rung ordinal.
  EXPECT_NE(out.events[0].find("(rung 0, failure 1)"), std::string::npos)
      << out.events[0];
}

TEST(RunnerDegradation, AttemptBudgetAppliesThroughTheRunner) {
  testsuite::RunnerOptions o = small_opts();
  o.faults = "bitflip@tree:block=0,bit=62,sticky";
  o.max_retries = 3;
  o.max_total_attempts = 2;
  testsuite::Runner runner(o);
  const testsuite::CaseOutcome out =
      runner.run(acc::CompilerId::kOpenUH, kGangSumInt);
  EXPECT_FALSE(out.verified);
  EXPECT_EQ(out.attempts, 2);
  ASSERT_FALSE(out.events.empty());
  EXPECT_NE(out.events.back().find("attempt budget exhausted"),
            std::string::npos)
      << out.events.back();
}

TEST(RunnerDegradation, ClientCancellationSurfacesStructured) {
  testsuite::RunnerOptions o = small_opts();
  o.cancel = std::make_shared<gpusim::CancelToken>();
  o.cancel->cancel_at_launch(1);
  testsuite::Runner runner(o);
  const testsuite::CaseOutcome out =
      runner.run(acc::CompilerId::kOpenUH, kGangSumInt);
  EXPECT_FALSE(out.verified);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.stats.error.code, LaunchErrorCode::kCancelled);
  EXPECT_NE(out.detail.find("cancel"), std::string::npos) << out.detail;
  ASSERT_FALSE(out.events.empty());
  EXPECT_NE(out.events.back().find("cancelled: give up"), std::string::npos)
      << out.events.back();
}

TEST(RunnerDegradation, WatchdogBudgetAppliesThroughTheRunner) {
  // A max_steps budget far below what the kernels need: every launch
  // trips the watchdog, retries fail identically (no faults to strip),
  // and the cell fails with a structured kWatchdog error.
  testsuite::RunnerOptions o = small_opts();
  o.max_steps = 1;
  o.max_retries = 0;
  o.degrade = false;
  testsuite::Runner runner(o);
  const testsuite::CaseOutcome out =
      runner.run(acc::CompilerId::kOpenUH, kGangSumInt);
  EXPECT_FALSE(out.verified);
  EXPECT_EQ(out.stats.error.code, LaunchErrorCode::kWatchdog);
  EXPECT_NE(out.detail.find("watchdog"), std::string::npos) << out.detail;
}

}  // namespace
}  // namespace accred
