// Tests for the Table-2 testsuite engine at a small reduction extent:
// every position verifies against the CPU on the OpenUH profile, the
// modeled F/CE cells surface as statuses, and the report renders.
#include "testsuite/runner.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "testsuite/report.hpp"

namespace accred::testsuite {
namespace {

RunnerOptions fast_options() {
  RunnerOptions o;
  o.reduction_extent = 1 << 9;
  // Paper launch shape scaled down so tests stay quick but keep
  // worker/vector structure.
  o.config.num_gangs = 8;
  o.config.num_workers = 4;
  o.config.vector_length = 32;
  return o;
}

class AllPositions : public ::testing::TestWithParam<acc::Position> {};

TEST_P(AllPositions, OpenUHVerifiesSumAndProd) {
  Runner runner(fast_options());
  for (acc::ReductionOp op :
       {acc::ReductionOp::kSum, acc::ReductionOp::kProd}) {
    for (acc::DataType t : {acc::DataType::kInt32, acc::DataType::kFloat,
                            acc::DataType::kDouble}) {
      const CaseOutcome o =
          runner.run(acc::CompilerId::kOpenUH, {GetParam(), op, t});
      EXPECT_EQ(o.status, acc::Robustness::kOk);
      EXPECT_TRUE(o.verified) << to_string(GetParam()) << " "
                              << to_string(op) << " " << to_string(t) << ": "
                              << o.detail;
      EXPECT_GT(o.device_ms, 0.0);
    }
  }
}

TEST_P(AllPositions, OpenUHVerifiesFullOperatorGrid) {
  Runner runner(fast_options());
  for (const CaseSpec& spec : full_grid()) {
    if (spec.pos != GetParam()) continue;
    const CaseOutcome o = runner.run(acc::CompilerId::kOpenUH, spec);
    EXPECT_TRUE(o.verified)
        << to_string(spec.pos) << " " << to_string(spec.op) << " "
        << to_string(spec.type) << ": " << o.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllPositions, ::testing::ValuesIn(all_positions()),
    [](const ::testing::TestParamInfo<acc::Position>& info) {
      std::string name(to_string(info.param));
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

TEST(Runner, CapsAndPgiVerifyWhereTheyWork) {
  Runner runner(fast_options());
  for (acc::CompilerId id :
       {acc::CompilerId::kCapsLike, acc::CompilerId::kPgiLike}) {
    for (const CaseSpec& spec : table2_grid()) {
      const CaseOutcome o = runner.run(id, spec);
      if (o.status == acc::Robustness::kOk) {
        EXPECT_TRUE(o.verified)
            << to_string(id) << " " << to_string(spec.pos) << " "
            << to_string(spec.op) << " " << to_string(spec.type) << ": "
            << o.detail;
      }
    }
  }
}

TEST(Runner, ModeledFailuresMatchTable2) {
  Runner runner(fast_options());
  // PGI fails the worker '+' cells and cannot compile gwv '+'.
  auto o = runner.run(acc::CompilerId::kPgiLike,
                      {acc::Position::kWorker, acc::ReductionOp::kSum,
                       acc::DataType::kFloat});
  EXPECT_EQ(o.status, acc::Robustness::kRuntimeFailure);
  EXPECT_EQ(o.device_ms, 0.0);
  o = runner.run(acc::CompilerId::kPgiLike,
                 {acc::Position::kGangWorkerVector, acc::ReductionOp::kSum,
                  acc::DataType::kInt32});
  EXPECT_EQ(o.status, acc::Robustness::kCompileError);
  // CAPS fails the RMP '+' cells.
  o = runner.run(acc::CompilerId::kCapsLike,
                 {acc::Position::kWorkerVector, acc::ReductionOp::kSum,
                  acc::DataType::kDouble});
  EXPECT_EQ(o.status, acc::Robustness::kRuntimeFailure);
}

TEST(Runner, GeometryMovesSameVolumeEverywhere) {
  const std::int64_t r = 1 << 10;
  for (acc::Position pos : all_positions()) {
    const CaseGeometry g = case_geometry(pos, r);
    const std::int64_t volume =
        pos == acc::Position::kSameLineGangWorkerVector
            ? g.same_loop_extent
            : g.dims.nk * g.dims.nj * g.dims.ni;
    EXPECT_EQ(volume, 64 * r) << to_string(pos);
  }
}

TEST(Runner, SingleLevelCasesAreSlowerThanRmpCases) {
  // The headline occupancy shape of Table 2: the single-level vector /
  // worker cases under-populate the device (2 gangs), the gang case
  // under-populates its blocks (64 active threads of 1024), while the
  // multi-level cases use every thread.
  RunnerOptions o;
  // Large enough that per-case work dominates the fixed launch + finalize
  // costs (the paper runs 2^20; costs are linear in the extent).
  o.reduction_extent = 1 << 15;
  o.config = {};  // full paper launch: 192 gangs, 8 workers, vector 128
  Runner runner(o);
  auto ms = [&](acc::Position pos) {
    const CaseOutcome c = runner.run(
        acc::CompilerId::kOpenUH,
        {pos, acc::ReductionOp::kSum, acc::DataType::kFloat});
    EXPECT_TRUE(c.verified) << to_string(pos) << ": " << c.detail;
    return c.device_ms;
  };
  const double t_vector = ms(acc::Position::kVector);
  const double t_worker = ms(acc::Position::kWorker);
  const double t_gang = ms(acc::Position::kGang);
  const double t_wv = ms(acc::Position::kWorkerVector);
  const double t_gwv = ms(acc::Position::kGangWorkerVector);
  const double t_sgwv = ms(acc::Position::kSameLineGangWorkerVector);
  // Ratios compress at this reduced extent (the finalize kernel is a fixed
  // cost); the full-scale ratios are reported by bench/table2_testsuite.
  EXPECT_GT(t_vector, 2 * t_gwv);
  EXPECT_GT(t_worker, 4 * t_gwv);
  EXPECT_GT(t_worker, t_vector);  // Table 2: worker is the slowest position
  EXPECT_GT(t_gang, 2 * t_gwv);
  EXPECT_GT(t_vector, 4 * t_sgwv);
  EXPECT_LT(t_wv, t_vector);  // multi-level beats single-level
}

TEST(Report, RendersTableAndSeries) {
  Runner runner(fast_options());
  Report report;
  const std::vector<acc::DataType> types = {acc::DataType::kInt32};
  const std::vector<acc::CompilerId> compilers = {
      acc::CompilerId::kOpenUH, acc::CompilerId::kPgiLike,
      acc::CompilerId::kCapsLike};
  for (acc::Position pos :
       {acc::Position::kGang, acc::Position::kWorkerVector}) {
    for (acc::CompilerId id : compilers) {
      const CaseSpec spec{pos, acc::ReductionOp::kSum, types[0]};
      report.add({pos, spec.op, types[0], id}, runner.run(id, spec));
    }
  }
  std::ostringstream table;
  report.print_table2(table, types, compilers);
  EXPECT_NE(table.str().find("gang"), std::string::npos);
  EXPECT_NE(table.str().find("worker vector"), std::string::npos);
  EXPECT_NE(table.str().find("F"), std::string::npos);  // CAPS wv '+' cell

  std::ostringstream fig;
  report.print_fig11(fig, types, compilers);
  EXPECT_NE(fig.str().find("# fig11 series: gang [+]"), std::string::npos);

  std::ostringstream verif;
  report.print_verification(verif);
  EXPECT_NE(verif.str().find("openuh"), std::string::npos);
}


class LaunchConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LaunchConfigSweep, AllPositionsVerifyUnderAnyLaunchShape) {
  const auto [g, w, v] = GetParam();
  RunnerOptions o;
  o.reduction_extent = 1 << 8;
  o.config.num_gangs = static_cast<std::uint32_t>(g);
  o.config.num_workers = static_cast<std::uint32_t>(w);
  o.config.vector_length = static_cast<std::uint32_t>(v);
  Runner runner(o);
  for (acc::Position pos : all_positions()) {
    const CaseOutcome c = runner.run(
        acc::CompilerId::kOpenUH,
        {pos, acc::ReductionOp::kSum, acc::DataType::kInt64});
    EXPECT_TRUE(c.verified)
        << to_string(pos) << " under " << g << "x" << w << "x" << v << ": "
        << c.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LaunchConfigSweep,
    ::testing::Values(std::tuple{1, 1, 32},    // minimal
                      std::tuple{2, 8, 128},   // few gangs, full blocks
                      std::tuple{3, 7, 96},    // odd worker count, non-pow2
                      std::tuple{16, 2, 64},   // many small blocks
                      std::tuple{5, 3, 32}),   // everything odd
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "g_" +
             std::to_string(std::get<1>(info.param)) + "w_" +
             std::to_string(std::get<2>(info.param)) + "v";
    });

}  // namespace
}  // namespace accred::testsuite
