// Shared helpers for strategy / testsuite tests: deterministic input
// filling, CPU reference folds, and the operator x type sweep list.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "acc/ops.hpp"
#include "acc/types.hpp"
#include "gpusim/device.hpp"
#include "testsuite/values.hpp"

namespace accred::test {

/// Valid (op, type) combinations for parameterized sweeps.
struct OpTypeCase {
  acc::ReductionOp op;
  acc::DataType type;
};

inline std::vector<OpTypeCase> all_op_type_cases() {
  using acc::DataType;
  using acc::ReductionOp;
  const ReductionOp ops[] = {
      ReductionOp::kSum,    ReductionOp::kProd,   ReductionOp::kMax,
      ReductionOp::kMin,    ReductionOp::kBitAnd, ReductionOp::kBitOr,
      ReductionOp::kBitXor, ReductionOp::kLogAnd, ReductionOp::kLogOr};
  const DataType types[] = {DataType::kInt32, DataType::kUInt32,
                            DataType::kInt64, DataType::kFloat,
                            DataType::kDouble};
  std::vector<OpTypeCase> cases;
  for (auto t : types) {
    for (auto op : ops) {
      const bool bitwise = op == ReductionOp::kBitAnd ||
                           op == ReductionOp::kBitOr ||
                           op == ReductionOp::kBitXor;
      if (bitwise && !is_integral(t)) continue;
      cases.push_back({op, t});
    }
  }
  return cases;
}

inline std::string op_type_name(const ::testing::TestParamInfo<OpTypeCase>& i) {
  std::string op;
  switch (i.param.op) {
    case acc::ReductionOp::kSum: op = "sum"; break;
    case acc::ReductionOp::kProd: op = "prod"; break;
    case acc::ReductionOp::kMax: op = "max"; break;
    case acc::ReductionOp::kMin: op = "min"; break;
    case acc::ReductionOp::kBitAnd: op = "band"; break;
    case acc::ReductionOp::kBitOr: op = "bor"; break;
    case acc::ReductionOp::kBitXor: op = "bxor"; break;
    case acc::ReductionOp::kLogAnd: op = "land"; break;
    case acc::ReductionOp::kLogOr: op = "lor"; break;
  }
  std::string ty;
  switch (i.param.type) {
    case acc::DataType::kInt32: ty = "i32"; break;
    case acc::DataType::kUInt32: ty = "u32"; break;
    case acc::DataType::kInt64: ty = "i64"; break;
    case acc::DataType::kFloat: ty = "f32"; break;
    case acc::DataType::kDouble: ty = "f64"; break;
  }
  return op + "_" + ty;
}

/// Fill a host vector with testsuite values for (op); index = position.
template <typename T>
std::vector<T> make_input(acc::ReductionOp op, std::size_t count) {
  std::vector<T> v(count);
  for (std::size_t i = 0; i < count; ++i) {
    v[i] = testsuite::testsuite_value<T>(op, i);
  }
  return v;
}

/// Sequential CPU fold (the paper's verification baseline).
template <typename T>
T cpu_fold(acc::ReductionOp op, std::span<const T> values) {
  acc::RuntimeOp<T> rop{op};
  T acc = rop.identity();
  for (const T& v : values) acc = rop.apply(acc, v);
  return acc;
}

}  // namespace accred::test
