// Integration tests for the three §4 applications: results must match the
// sequential host references, for every compiler profile that supports the
// reduction the app uses.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/heat.hpp"
#include "apps/matmul.hpp"
#include "apps/montecarlo.hpp"

namespace accred::apps {
namespace {

acc::LaunchConfig small_cfg() {
  acc::LaunchConfig cfg;
  cfg.num_gangs = 8;
  cfg.num_workers = 4;
  cfg.vector_length = 32;
  return cfg;
}

TEST(Heat, MatchesHostReference) {
  HeatOptions o;
  o.ni = 34;
  o.nj = 34;
  o.max_iterations = 50;
  o.tolerance = 0.0;  // run all iterations
  o.config = small_cfg();
  const HeatResult dev = run_heat(o);
  const HeatResult ref = run_heat_reference(o);
  EXPECT_EQ(dev.iterations, ref.iterations);
  EXPECT_NEAR(dev.final_error, ref.final_error, 1e-12);
  EXPECT_GT(dev.reduction_device_ms, 0.0);
  EXPECT_GT(dev.update_device_ms, 0.0);
}

TEST(Heat, ConvergesAndStops) {
  HeatOptions o;
  o.ni = 18;
  o.nj = 18;
  o.max_iterations = 10'000;
  o.tolerance = 1e-4;
  o.config = small_cfg();
  const HeatResult dev = run_heat(o);
  const HeatResult ref = run_heat_reference(o);
  EXPECT_TRUE(dev.converged);
  EXPECT_EQ(dev.iterations, ref.iterations);
  EXPECT_LT(dev.final_error, 1e-4);
}

TEST(Heat, ErrorDecreasesMonotonically) {
  // The paper's convergence criterion relies on the max temperature
  // difference decreasing over iterations (CAPS failed precisely this).
  HeatOptions o;
  o.ni = 26;
  o.nj = 26;
  o.tolerance = 0.0;
  o.config = small_cfg();
  double prev = 1e300;
  for (int iters : {5, 10, 20, 40}) {
    o.max_iterations = iters;
    const HeatResult r = run_heat(o);
    EXPECT_LT(r.final_error, prev);
    prev = r.final_error;
  }
}

TEST(Heat, AllProfilesAgree) {
  HeatOptions o;
  o.ni = 22;
  o.nj = 22;
  o.max_iterations = 25;
  o.tolerance = 0.0;
  o.config = small_cfg();
  o.compiler = acc::CompilerId::kOpenUH;
  const double base = run_heat(o).final_error;
  for (acc::CompilerId id :
       {acc::CompilerId::kCapsLike, acc::CompilerId::kPgiLike}) {
    o.compiler = id;
    EXPECT_NEAR(run_heat(o).final_error, base, 1e-12) << to_string(id);
  }
}

TEST(Heat, PgiLikeReductionIsSlower) {
  // Fig. 12a: "OpenUH compiler is always better than PGI compiler", and
  // the gap accumulates over iterations.
  HeatOptions o;
  o.ni = 66;
  o.nj = 66;
  o.max_iterations = 30;
  o.tolerance = 0.0;
  o.config = small_cfg();
  o.compiler = acc::CompilerId::kOpenUH;
  const HeatResult uh = run_heat(o);
  o.compiler = acc::CompilerId::kPgiLike;
  const HeatResult pgi = run_heat(o);
  EXPECT_GT(pgi.reduction_device_ms, uh.reduction_device_ms);
  EXPECT_NEAR(pgi.update_device_ms, uh.update_device_ms, 1e-9);
}

TEST(Matmul, MatchesHostReference) {
  MatmulOptions o;
  o.n = 48;
  o.config = small_cfg();
  const MatmulResult dev = run_matmul(o);
  const auto ref = matmul_reference(o);
  ASSERT_EQ(dev.c.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(dev.c[i], ref[i], 1e-3 + 1e-4 * std::fabs(ref[i]))
        << "element " << i;
  }
}

TEST(Matmul, NonPowerOfTwoSize) {
  MatmulOptions o;
  o.n = 37;
  o.config = small_cfg();
  const MatmulResult dev = run_matmul(o);
  const auto ref = matmul_reference(o);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(dev.c[i], ref[i], 1e-3 + 1e-4 * std::fabs(ref[i]));
  }
}

TEST(Matmul, SequentialKMatchesReference) {
  MatmulOptions o;
  o.n = 40;
  o.config = small_cfg();
  const MatmulResult dev = run_matmul_sequential_k(o);
  const auto ref = matmul_reference(o);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(dev.c[i], ref[i], 1e-3 + 1e-4 * std::fabs(ref[i]));
  }
}

TEST(Matmul, CapsLikeIsSlower) {
  // Fig. 12b direction: OpenUH ahead of CAPS (the paper reports > 2x; we
  // recover the layout/barrier share of that gap — see EXPERIMENTS.md).
  MatmulOptions o;
  o.n = 64;
  o.config = small_cfg();
  o.compiler = acc::CompilerId::kOpenUH;
  const double uh = run_matmul(o).device_ms;
  o.compiler = acc::CompilerId::kCapsLike;
  const double caps = run_matmul(o).device_ms;
  EXPECT_GT(caps, uh);
}

TEST(MonteCarlo, CountsMatchHostExactly) {
  MonteCarloOptions o;
  o.samples = 100'000;
  o.config = small_cfg();
  const MonteCarloResult dev = run_montecarlo(o);
  EXPECT_EQ(dev.hits, montecarlo_reference_hits(o));
}

TEST(MonteCarlo, PiConvergesWithSamples) {
  MonteCarloOptions o;
  o.config = small_cfg();
  o.samples = 1 << 14;
  const double err_small =
      std::fabs(run_montecarlo(o).pi_estimate - 3.14159265358979);
  o.samples = 1 << 20;
  const double err_big =
      std::fabs(run_montecarlo(o).pi_estimate - 3.14159265358979);
  EXPECT_LT(err_big, err_small);
  EXPECT_LT(err_big, 0.01);
}

TEST(MonteCarlo, AllProfilesAgreeOnHits) {
  MonteCarloOptions o;
  o.samples = 200'000;
  o.config = small_cfg();
  const std::int64_t expect = montecarlo_reference_hits(o);
  for (acc::CompilerId id :
       {acc::CompilerId::kOpenUH, acc::CompilerId::kCapsLike,
        acc::CompilerId::kPgiLike}) {
    o.compiler = id;
    EXPECT_EQ(run_montecarlo(o).hits, expect) << to_string(id);
  }
}

TEST(MonteCarlo, PgiLikeIsSlowerOpenUHLeads) {
  // Fig. 12c: OpenUH slightly ahead of CAPS, well ahead of PGI.
  MonteCarloOptions o;
  o.samples = 1 << 20;
  o.config = small_cfg();
  o.compiler = acc::CompilerId::kOpenUH;
  const double uh = run_montecarlo(o).device_ms;
  o.compiler = acc::CompilerId::kPgiLike;
  const double pgi = run_montecarlo(o).device_ms;
  EXPECT_GT(pgi, 1.5 * uh);
}

TEST(MonteCarlo, TransferTimeModeled) {
  MonteCarloOptions o;
  o.samples = 1 << 18;
  o.config = small_cfg();
  const MonteCarloResult r = run_montecarlo(o);
  // 2 arrays x 2^18 doubles at 6 GB/s ~ 0.7 ms.
  EXPECT_GT(r.transfer_ms, 0.3);
  EXPECT_LT(r.transfer_ms, 3.0);
}

}  // namespace
}  // namespace accred::apps
