// Shared helpers for the reduction-service tests: small, fast job specs
// (tiny extents and launch geometry so the suite also runs quickly under
// the ThreadSanitizer preset) and a field-by-field plan comparison.
#pragma once

#include <gtest/gtest.h>

#include <chrono>

#include "service/job.hpp"
#include "service/plan_cache.hpp"
#include "service/service.hpp"

namespace accred::service::test {

/// Bounded drain for test teardown: a liveness regression (a job the
/// dispatcher never resolves) fails the test in seconds instead of hanging
/// the whole suite on an unbounded drain().
inline void drain_or_fail(ReductionService& svc,
                          std::chrono::seconds timeout = std::chrono::seconds(120)) {
  const std::uint64_t left = svc.drain(timeout);
  ASSERT_EQ(left, 0u) << left << " job(s) still open after " << timeout.count()
                      << "s — service liveness regression";
}

/// A cheap job: tiny extent and launch geometry, OpenUH, int sum on the
/// gang position unless overridden.
inline JobSpec make_job(std::string tenant = "t",
                        acc::Position pos = acc::Position::kGang,
                        std::int64_t extent = 128) {
  JobSpec job;
  job.tenant = std::move(tenant);
  job.kase = {pos, acc::ReductionOp::kSum, acc::DataType::kInt32};
  job.reduction_extent = extent;
  job.config = acc::LaunchConfig{8, 2, 32};
  return job;
}

/// Every planner decision and derived fact, compared field by field: a
/// rebound cached plan must be indistinguishable from planning fresh.
inline void expect_plans_equal(const acc::ExecutionPlan& a,
                               const acc::ExecutionPlan& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.var, b.var);
  EXPECT_EQ(a.dims.nk, b.dims.nk);
  EXPECT_EQ(a.dims.nj, b.dims.nj);
  EXPECT_EQ(a.dims.ni, b.dims.ni);
  EXPECT_EQ(a.same_loop_extent, b.same_loop_extent);
  EXPECT_EQ(a.launch.num_gangs, b.launch.num_gangs);
  EXPECT_EQ(a.launch.num_workers, b.launch.num_workers);
  EXPECT_EQ(a.launch.vector_length, b.launch.vector_length);
  EXPECT_EQ(a.strategy.staging, b.strategy.staging);
  EXPECT_EQ(a.strategy.vector_layout, b.strategy.vector_layout);
  EXPECT_EQ(a.strategy.worker_layout, b.strategy.worker_layout);
  EXPECT_EQ(a.strategy.assignment, b.strategy.assignment);
  EXPECT_EQ(a.strategy.tree.addr, b.strategy.tree.addr);
  EXPECT_EQ(a.strategy.tree.unroll_last_warp, b.strategy.tree.unroll_last_warp);
  EXPECT_EQ(a.strategy.tree.full_unroll, b.strategy.tree.full_unroll);
  EXPECT_EQ(a.strategy.finalize_threads, b.strategy.finalize_threads);
  EXPECT_EQ(a.strategy.spill_private, b.strategy.spill_private);
  EXPECT_EQ(a.shared_bytes, b.shared_bytes);
  EXPECT_EQ(a.global_buffer_elems, b.global_buffer_elems);
  EXPECT_EQ(a.kernel_count, b.kernel_count);
  ASSERT_EQ(a.chain.size(), b.chain.size());
  for (std::size_t s = 0; s < a.chain.size(); ++s) {
    EXPECT_EQ(a.chain[s], b.chain[s]) << "fused chain stage " << s;
  }
}

}  // namespace accred::service::test
