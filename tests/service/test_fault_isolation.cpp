// Fault isolation (service/service.hpp): every job runs guarded on its
// own simulated Device, so one tenant's injected fault campaign degrades
// that tenant's jobs only — the other tenants' results stay bit-identical
// to a run with no campaign at all (CaseOutcome::result_hash).
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "service_test_util.hpp"
#include "testsuite/cases.hpp"

namespace accred::service {
namespace {

using test::make_job;

/// Submit an interleaved two-tenant workload; arm `faults` on every job of
/// tenant "victim". Returns (victim results, clean-tenant result hashes in
/// submission order).
std::pair<std::vector<JobResult>, std::vector<std::uint64_t>> run_mixed(
    const std::string& faults, std::uint32_t workers) {
  ServiceConfig cfg;
  cfg.workers = workers;
  ReductionService svc(cfg, {{"clean", 1.0}, {"victim", 1.0}});
  const auto grid = testsuite::table2_grid();
  std::vector<std::future<JobResult>> futs;
  for (std::size_t i = 0; i < 16; ++i) {
    JobSpec job = make_job(i % 2 == 0 ? "clean" : "victim",
                           grid[i % grid.size()].pos, 96);
    job.kase = grid[i % grid.size()];
    if (job.tenant == "victim") job.faults = faults;
    futs.push_back(svc.submit(std::move(job)));
  }
  std::vector<JobResult> victim;
  std::vector<std::uint64_t> clean_hashes;
  for (auto& f : futs) {
    JobResult r = f.get();
    if (r.tenant == "victim") {
      victim.push_back(std::move(r));
    } else {
      EXPECT_EQ(r.status, JobStatus::kOk);
      clean_hashes.push_back(r.outcome.result_hash);
    }
  }
  return {std::move(victim), std::move(clean_hashes)};
}

TEST(FaultIsolation, VictimCampaignLeavesCleanTenantBitIdentical) {
  const auto [v_clean, clean_baseline] = run_mixed("", 2);
  for (const JobResult& r : v_clean) {
    EXPECT_EQ(r.status, JobStatus::kOk);
    EXPECT_EQ(r.outcome.attempts, 1);
  }
  // Mid-kernel abort campaign on the victim: its jobs take the guarded
  // retry (the arm is one-shot per launch), the clean tenant must not
  // notice — same hashes, bit for bit, while running concurrently.
  const auto [victim, clean_under_fire] =
      run_mixed("warp_abort:block=0,nth=3", 2);
  EXPECT_EQ(clean_under_fire, clean_baseline);
  bool any_event = false;
  for (const JobResult& r : victim) {
    EXPECT_EQ(r.status, JobStatus::kOk) << "warp_abort is recoverable";
    any_event |= r.outcome.attempts > 1 || r.outcome.recovered;
    EXPECT_TRUE(r.outcome.stats.faults_armed);
  }
  EXPECT_TRUE(any_event) << "the campaign must actually have fired";
}

TEST(FaultIsolation, StickyCorruptionDegradesOnlyTheVictim) {
  const auto [v_clean, clean_baseline] = run_mixed("", 1);
  (void)v_clean;
  // A sticky tree bitflip survives plain retries; the victim's jobs walk
  // the degradation ladder (or exhaust it) while the clean tenant's
  // results stay untouched.
  const auto [victim, clean_under_fire] =
      run_mixed("bitflip@tree:block=0,bit=62,seed=2,sticky", 1);
  EXPECT_EQ(clean_under_fire, clean_baseline);
  for (const JobResult& r : victim) {
    if (r.status == JobStatus::kOk && r.outcome.attempts > 1) continue;
    // Even a victim job that failed outright must have failed cleanly —
    // structured error, no crash, service kept running.
    if (r.status == JobStatus::kFailed) {
      EXPECT_FALSE(r.outcome.detail.empty());
    }
  }
}

TEST(FaultIsolation, InjectedAllocFailureIsPerDevice) {
  // alloc_fail arms on the victim job's own Device; the runner's retry
  // recovers it, and no other job ever sees the arm.
  ServiceConfig cfg;
  cfg.workers = 2;
  ReductionService svc(cfg);
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 6; ++i) {
    JobSpec job = make_job();
    if (i == 2) job.faults = "alloc_fail@input";
    futs.push_back(svc.submit(std::move(job)));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const JobResult r = futs[i].get();
    EXPECT_EQ(r.status, JobStatus::kOk);
    if (i == 2) {
      EXPECT_GT(r.outcome.attempts, 1) << "the arm must have fired";
    } else {
      EXPECT_EQ(r.outcome.attempts, 1) << "no spillover onto job " << i;
    }
  }
}

}  // namespace
}  // namespace accred::service
