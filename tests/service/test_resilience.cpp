// Resilience layer of the reduction service (DESIGN.md §16): deadlines,
// client cancellation (queued / running / after delivery), per-tenant
// circuit breakers, CoDel overload shedding, retry budgets, the bounded
// drain, and the bit-identity of the whole telemetry registry across
// worker counts and host thread counts while all of it fires.
//
// Every test drives the service in waves (pause -> submit -> resume ->
// drain): at those quiescent points each resilience decision is a pure
// function of the submission sequence, so the assertions are exact.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/pool.hpp"
#include "obs/json.hpp"
#include "service_test_util.hpp"

namespace accred::service {
namespace {

using test::drain_or_fail;
using test::make_job;

constexpr const char* kStickyFault = "warp_abort:block=0,nth=10,sticky";

/// One wave: resume, drain bounded, pause again.
void run_wave(ReductionService& svc) {
  svc.resume();
  ASSERT_EQ(svc.drain(std::chrono::seconds(120)), 0u);
  svc.pause();
}

// ---- cancellation ----------------------------------------------------

TEST(Cancellation, QueuedJobResolvesWithoutLaunching) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  ReductionService svc(cfg);
  auto token = std::make_shared<gpusim::CancelToken>();
  JobSpec job = make_job();
  job.cancel = token;
  auto cancelled = svc.submit(job);
  auto clean = svc.submit(make_job());
  token->cancel();  // while still queued: the dispatcher resolves it
  svc.resume();
  drain_or_fail(svc);

  const JobResult r = cancelled.get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_NE(r.reject_reason.find("while queued"), std::string::npos)
      << r.reject_reason;
  EXPECT_EQ(r.outcome.attempts, 1);  // default-constructed: it never ran
  EXPECT_EQ(r.outcome.device_ms, 0.0);
  EXPECT_EQ(clean.get().status, JobStatus::kOk);

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.admitted_bytes, 0u);  // the reservation was released
}

TEST(Cancellation, RunningJobEndsStructuredCancelled) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  ReductionService svc(cfg);
  auto token = std::make_shared<gpusim::CancelToken>();
  token->cancel_at_launch(1);  // deterministic mid-flight cancel
  JobSpec job = make_job();
  job.cancel = token;
  auto fut = svc.submit(job);
  svc.resume();
  drain_or_fail(svc);

  const JobResult r = fut.get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_TRUE(r.reject_reason.empty());  // it ran: outcome carries the story
  EXPECT_EQ(r.outcome.stats.error.code, gpusim::LaunchErrorCode::kCancelled);
  EXPECT_EQ(svc.stats().cancelled, 1u);
  EXPECT_EQ(svc.stats().completed, 0u);
}

TEST(Cancellation, AfterDeliveryIsANoOp) {
  ReductionService svc;
  auto token = std::make_shared<gpusim::CancelToken>();
  JobSpec job = make_job();
  job.cancel = token;
  auto fut = svc.submit(job);
  drain_or_fail(svc);
  EXPECT_EQ(fut.get().status, JobStatus::kOk);
  token->cancel();  // delivered long ago: nothing to resolve
  EXPECT_EQ(svc.stats().cancelled, 0u);
  EXPECT_EQ(svc.stats().completed, 1u);
}

// The registry dump (and the structured statuses) with cancels in the mix
// must be bit-identical for any worker count and any sim-threads.
TEST(Cancellation, RegistryBitIdenticalAcrossWorkersAndSimThreads) {
  const auto run = [](std::uint32_t workers, std::uint32_t sim_threads) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.start_paused = true;
    ReductionService svc(cfg, {{"a", 1.0}, {"c", 1.0}});
    std::vector<std::future<JobResult>> futs;
    auto queued_token = std::make_shared<gpusim::CancelToken>();
    auto midrun_token = std::make_shared<gpusim::CancelToken>();
    midrun_token->cancel_at_launch(1);
    for (int i = 0; i < 3; ++i) {
      JobSpec job = make_job("a");
      job.sim_threads = sim_threads;
      futs.push_back(svc.submit(std::move(job)));
    }
    JobSpec queued = make_job("c");
    queued.sim_threads = sim_threads;
    queued.cancel = queued_token;
    futs.push_back(svc.submit(std::move(queued)));
    JobSpec midrun = make_job("c");
    midrun.sim_threads = sim_threads;
    midrun.cancel = midrun_token;
    futs.push_back(svc.submit(std::move(midrun)));
    queued_token->cancel();
    svc.resume();
    svc.drain();
    std::string statuses;
    for (auto& f : futs) {
      statuses += to_string(f.get().status);
      statuses += ';';
    }
    return svc.metrics_json().dump() + "|" + statuses;
  };
  const std::string base = run(1, 1);
  EXPECT_EQ(run(1, 4), base);
  EXPECT_EQ(run(3, 1), base);
  EXPECT_EQ(run(3, 4), base);
}

// ---- deadlines -------------------------------------------------------

TEST(Deadlines, ExpiredQueuedJobNeverLaunches) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  ReductionService svc(cfg);
  // Arrivals are paced at the running-mean estimate: small jobs first
  // drag that mean down, then the oversized jobs outrun their paced
  // arrivals and the modeled wait climbs — the tight-deadline job queued
  // behind them (FIFO within the tenant) expires before dispatch.
  std::vector<std::future<JobResult>> ok;
  for (int i = 0; i < 6; ++i) ok.push_back(svc.submit(make_job()));
  for (int i = 0; i < 3; ++i) {
    ok.push_back(svc.submit(make_job("t", acc::Position::kGang, 64 * 256)));
  }
  JobSpec tight = make_job();
  tight.deadline_ns = 1;
  auto expired = svc.submit(tight);
  svc.resume();
  drain_or_fail(svc);

  const JobResult r = expired.get();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded);
  EXPECT_NE(r.reject_reason.find("deadline exceeded"), std::string::npos)
      << r.reject_reason;
  for (auto& f : ok) EXPECT_EQ(f.get().status, JobStatus::kOk);
  EXPECT_EQ(svc.stats().deadline_exceeded, 1u);
  EXPECT_EQ(svc.stats().completed, 9u);
}

TEST(Deadlines, GenerousDeadlineNeverFires) {
  ReductionService svc;
  JobSpec job = make_job();
  job.deadline_ns = 1'000'000'000'000ULL;
  auto fut = svc.submit(job);
  drain_or_fail(svc);
  EXPECT_EQ(fut.get().status, JobStatus::kOk);
  EXPECT_EQ(svc.stats().deadline_exceeded, 0u);
}

// ---- circuit breaker -------------------------------------------------

TEST(Breaker, TripsFastFailsHalfOpensAndCloses) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown_ns = 1;
  ReductionService svc(cfg, {{"m", 1.0}, {"ok", 1.0}});
  const auto faulty = [&] {
    JobSpec job = make_job("m");
    job.faults = kStickyFault;
    return svc.submit(job);
  };

  // Wave 1: two consecutive structured failures trip the breaker; the
  // clean job consumed after them advances the virtual clock past the
  // cooldown.
  auto f1 = faulty();
  auto f2 = faulty();
  auto ok1 = svc.submit(make_job("ok"));
  run_wave(svc);
  EXPECT_EQ(f1.get().status, JobStatus::kFailed);
  EXPECT_EQ(f2.get().status, JobStatus::kFailed);
  EXPECT_EQ(ok1.get().status, JobStatus::kOk);
  EXPECT_EQ(svc.stats().breaker_opens, 1u);

  // Wave 2: the breaker is half-open — the first submission probes, the
  // second fast-fails behind the in-flight probe. The clean tenant is
  // untouched throughout. The failing probe reopens the breaker.
  auto probe1 = faulty();
  auto behind = svc.submit(make_job("m"));
  const JobResult rejected = behind.get();  // fast-fail resolves inline
  EXPECT_EQ(rejected.status, JobStatus::kCircuitOpen);
  EXPECT_NE(rejected.reject_reason.find("circuit breaker"),
            std::string::npos)
      << rejected.reject_reason;
  auto ok2 = svc.submit(make_job("ok"));
  run_wave(svc);
  EXPECT_EQ(probe1.get().status, JobStatus::kFailed);
  EXPECT_EQ(ok2.get().status, JobStatus::kOk);
  EXPECT_EQ(svc.stats().breaker_opens, 2u);
  EXPECT_EQ(svc.stats().rejected_breaker, 1u);

  // Wave 3: a clean probe closes the breaker; wave 4 runs normally.
  auto probe2 = svc.submit(make_job("m"));
  auto ok3 = svc.submit(make_job("ok"));
  run_wave(svc);
  EXPECT_EQ(probe2.get().status, JobStatus::kOk);
  EXPECT_EQ(ok3.get().status, JobStatus::kOk);
  auto recovered = svc.submit(make_job("m"));
  run_wave(svc);
  EXPECT_EQ(recovered.get().status, JobStatus::kOk);
  EXPECT_EQ(svc.stats().breaker_opens, 2u);  // no further transitions
  EXPECT_EQ(svc.stats().rejected_breaker, 1u);
}

TEST(Breaker, SuccessResetsTheConsecutiveCount) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.breaker_threshold = 2;
  ReductionService svc(cfg, {{"m", 1.0}});
  // fail, succeed, fail: never two consecutive — the breaker stays closed.
  JobSpec bad = make_job("m");
  bad.faults = kStickyFault;
  auto f1 = svc.submit(bad);
  auto ok = svc.submit(make_job("m"));
  auto f2 = svc.submit(bad);
  run_wave(svc);
  EXPECT_EQ(f1.get().status, JobStatus::kFailed);
  EXPECT_EQ(ok.get().status, JobStatus::kOk);
  EXPECT_EQ(f2.get().status, JobStatus::kFailed);
  EXPECT_EQ(svc.stats().breaker_opens, 0u);
  EXPECT_EQ(svc.stats().rejected_breaker, 0u);
}

// ---- overload shedding -----------------------------------------------

TEST(Shedding, SustainedOverloadShedsYoungestFirst) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.shed_target_ns = 1000;
  cfg.shed_interval_ns = 1000;
  ReductionService svc(cfg);
  std::vector<std::future<JobResult>> futs;
  // Small jobs drag the arrival-pacing mean down; the oversized burst
  // behind them outruns its arrivals and the modeled wait climbs.
  for (int i = 0; i < 8; ++i) futs.push_back(svc.submit(make_job()));
  for (int i = 0; i < 8; ++i) {
    futs.push_back(svc.submit(make_job("t", acc::Position::kGang, 128 * 64)));
  }
  svc.resume();
  drain_or_fail(svc);

  const ServiceStats s = svc.stats();
  EXPECT_GT(s.shed, 0u);
  EXPECT_EQ(s.completed + s.shed, s.admitted);
  // Sheds hit the youngest arrivals: a suffix of the submission order.
  std::size_t first_shed = futs.size();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const JobResult r = futs[i].get();
    if (r.status == JobStatus::kShed) {
      EXPECT_NE(r.reject_reason.find("shed"), std::string::npos);
      first_shed = std::min(first_shed, i);
    } else {
      EXPECT_EQ(r.status, JobStatus::kOk);
      EXPECT_LT(i, first_shed) << "an older job survived a younger shed";
    }
  }
}

TEST(Shedding, NeverFiresUnderTarget) {
  ServiceConfig cfg;
  cfg.shed_target_ns = 1ULL << 62;  // unreachable target
  ReductionService svc(cfg);
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(svc.submit(make_job()));
  drain_or_fail(svc);
  for (auto& f : futs) EXPECT_EQ(f.get().status, JobStatus::kOk);
  EXPECT_EQ(svc.stats().shed, 0u);
}

// ---- retry budget + ladder depth -------------------------------------

TEST(RetryBudget, GrantCapsGuardedAttempts) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.retry_budget_per_sec = 1;  // ~no refill over the campaign's ns scale
  cfg.retry_budget_burst = 3;
  cfg.retry_tokens_per_job = 2;
  ReductionService svc(cfg);
  JobSpec bad = make_job();
  bad.faults = kStickyFault;
  bad.max_retries = 5;  // the budget, not the ladder, must bind
  auto f1 = svc.submit(bad);
  auto f2 = svc.submit(bad);
  auto f3 = svc.submit(bad);
  run_wave(svc);
  // Bucket 3 tokens, 2 per job: grants are 1+2, 1+1, 1+0 attempts.
  EXPECT_EQ(f1.get().outcome.attempts, 3);
  EXPECT_EQ(f2.get().outcome.attempts, 2);
  EXPECT_EQ(f3.get().outcome.attempts, 1);
  const obs::Gauge* g =
      svc.metrics().find_gauge("tenant/t/retry_budget_tokens");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value(), 0);
}

TEST(RetryBudget, OffByDefaultLeavesLadderUnbounded) {
  ReductionService svc;
  JobSpec bad = make_job();
  bad.faults = kStickyFault;
  bad.max_retries = 2;
  auto fut = svc.submit(bad);
  drain_or_fail(svc);
  EXPECT_GT(fut.get().outcome.attempts, 3);  // retries + the full ladder
}

TEST(LadderDepth, ServiceConfigBoundsDegradeRungs) {
  ServiceConfig cfg;
  cfg.max_degrade_rungs = 0;  // retries only, no plan changes
  ReductionService svc(cfg);
  JobSpec bad = make_job();
  bad.faults = kStickyFault;
  bad.max_retries = 1;
  auto fut = svc.submit(bad);
  drain_or_fail(svc);
  const JobResult r = fut.get();
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.outcome.attempts, 2);  // original + 1 retry, ladder barred
}

// ---- bounded drain ---------------------------------------------------

TEST(Drain, TimeoutReportsStillOpenJobs) {
  ServiceConfig cfg;
  cfg.start_paused = true;  // dispatch never runs: the jobs stay open
  ReductionService svc(cfg);
  auto f1 = svc.submit(make_job());
  auto f2 = svc.submit(make_job());
  EXPECT_EQ(svc.drain(std::chrono::milliseconds(50)), 2u);
  svc.resume();
  drain_or_fail(svc);
  EXPECT_EQ(f1.get().status, JobStatus::kOk);
  EXPECT_EQ(f2.get().status, JobStatus::kOk);
}

}  // namespace
}  // namespace accred::service
