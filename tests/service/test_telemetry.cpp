// Service telemetry determinism (DESIGN.md §14): at a quiescent point the
// metrics registry — counters, latency histograms from the virtual
// timeline, occupancy gauges — must be a pure function of the submission
// sequence. Same submissions × {workers 1,3} × {sim-threads 1,4} must
// dump byte-equal JSON, with and without a fault campaign driving
// execute_guarded retries, and the trace must carry the same lifecycle
// span counts (wall timestamps excluded by construction: only counts are
// compared).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"
#include "service_test_util.hpp"
#include "testsuite/cases.hpp"

namespace accred::service {
namespace {

using test::drain_or_fail;
using test::make_job;

struct ScenarioResult {
  std::string metrics_dump;
  ServiceStats stats;
};

/// The fixed submission sequence: three tenants, a mix of positions and
/// extents, submitted from one thread. With `faults` set, every third job
/// of tenant "b" runs under a recoverable mid-kernel abort campaign, so
/// execute_guarded retries fire. A paused admission phase with a small
/// occupancy budget makes the final submissions reject deterministically.
ScenarioResult run_scenario(std::uint32_t workers, std::uint32_t sim_threads,
                            bool faults) {
  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = 12;
  cfg.start_paused = true;
  ReductionService svc(cfg, {{"a", 2.0}, {"b", 1.0}, {"c", 1.0}});
  const auto grid = testsuite::table2_grid();
  std::vector<std::future<JobResult>> futs;
  for (std::size_t i = 0; i < 15; ++i) {  // 12 admitted, 3 rejected
    const char* tenant = i % 3 == 0 ? "a" : (i % 3 == 1 ? "b" : "c");
    JobSpec job = make_job(tenant, grid[i % grid.size()].pos, 96);
    job.kase = grid[i % grid.size()];
    job.sim_threads = sim_threads;
    if (faults && job.tenant == "b" && i % 3 == 1) {
      job.faults = "warp_abort:block=0,nth=3";
    }
    futs.push_back(svc.submit(std::move(job)));
  }
  svc.resume();
  drain_or_fail(svc);
  for (auto& f : futs) (void)f.get();
  return {svc.metrics_json().dump(), svc.stats()};
}

TEST(Telemetry, RegistryIsBitIdenticalAcrossWorkersAndSimThreads) {
  const ScenarioResult base = run_scenario(1, 1, false);
  ASSERT_FALSE(base.metrics_dump.empty());
  for (const std::uint32_t workers : {1u, 3u}) {
    for (const std::uint32_t sim : {1u, 4u}) {
      const ScenarioResult r = run_scenario(workers, sim, false);
      EXPECT_EQ(r.metrics_dump, base.metrics_dump)
          << "workers=" << workers << " sim_threads=" << sim;
    }
  }
}

TEST(Telemetry, RegistryStaysDeterministicUnderFaultCampaign) {
  const ScenarioResult base = run_scenario(1, 1, true);
  EXPECT_GT(base.stats.recovered, 0u) << "the campaign must actually fire";
  for (const std::uint32_t workers : {1u, 3u}) {
    for (const std::uint32_t sim : {1u, 4u}) {
      const ScenarioResult r = run_scenario(workers, sim, true);
      EXPECT_EQ(r.metrics_dump, base.metrics_dump)
          << "workers=" << workers << " sim_threads=" << sim;
    }
  }
  // The campaign must leave a mark: recovered counter and a different
  // registry than the clean run (retries change modeled device time).
  const ScenarioResult clean = run_scenario(1, 1, false);
  EXPECT_NE(base.metrics_dump, clean.metrics_dump);
}

TEST(Telemetry, RegistryMirrorsServiceStats) {
  const ScenarioResult r = run_scenario(2, 1, false);
  const obs::Json j = obs::Json::parse(r.metrics_dump);
  const obs::Json& counters = j.at("counters");
  EXPECT_EQ(counters.at("service/submitted").as_int(),
            static_cast<std::int64_t>(r.stats.submitted));
  EXPECT_EQ(counters.at("service/admitted").as_int(),
            static_cast<std::int64_t>(r.stats.admitted));
  EXPECT_EQ(counters.at("service/completed").as_int(),
            static_cast<std::int64_t>(r.stats.completed));
  EXPECT_EQ(counters.at("service/rejected_queue").as_int(),
            static_cast<std::int64_t>(r.stats.rejected_queue));
  EXPECT_EQ(counters.at("service/plan_hits").as_int(),
            static_cast<std::int64_t>(r.stats.cache.hits));
  EXPECT_EQ(counters.at("service/plan_misses").as_int(),
            static_cast<std::int64_t>(r.stats.cache.misses));
  // One histogram sample per executed job, service-wide and per tenant.
  const obs::Json& hists = j.at("histograms");
  const std::int64_t executed =
      static_cast<std::int64_t>(r.stats.completed + r.stats.failed);
  for (const char* name :
       {"service/device_ms", "service/queue_wait_ms", "service/e2e_ms"}) {
    EXPECT_EQ(hists.at(name).at("count").as_int(), executed) << name;
  }
  std::int64_t tenant_total = 0;
  for (const char* t : {"a", "b", "c"}) {
    tenant_total += hists.at("tenant/" + std::string(t) + "/e2e_ms")
                        .at("count")
                        .as_int();
  }
  EXPECT_EQ(tenant_total, executed);
  // The virtual sampler saw every admitted job once.
  EXPECT_EQ(hists.at("service/queue_depth").at("count").as_int(), executed);
  EXPECT_GE(j.at("gauges").at("service/queue_depth_max").as_int(), 0);
  EXPECT_GT(j.at("gauges").at("service/inflight_bytes_max").as_int(), 0);
}

TEST(Telemetry, HistogramPercentilesComeFromTheVirtualTimeline) {
  ServiceConfig cfg;
  cfg.workers = 2;
  ReductionService svc(cfg);
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(svc.submit(make_job()));
  drain_or_fail(svc);
  for (auto& f : futs) EXPECT_EQ(f.get().status, JobStatus::kOk);
  const obs::Histogram* e2e = svc.metrics().find_histogram("service/e2e_ms");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count(), 8u);
  // Identical jobs at mean-paced arrivals: every wait is 0, so e2e == the
  // device-time distribution and p99 sits in p50's bucket neighborhood.
  const obs::Histogram* wait =
      svc.metrics().find_histogram("service/queue_wait_ms");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->max_units(), 0u) << "identical jobs never queue (virtual)";
  EXPECT_GT(e2e->percentile(0.5), 0.0);
  EXPECT_GE(e2e->percentile(0.99), e2e->percentile(0.5));
}

/// Count lifecycle spans by name (and M metadata rows) in a flushed trace.
std::map<std::string, int> trace_span_counts(std::uint32_t workers,
                                             std::uint32_t sim_threads) {
  const std::string path = ::testing::TempDir() + "accred_svc_telemetry_" +
                           std::to_string(workers) + "_" +
                           std::to_string(sim_threads) + ".json";
  std::remove(path.c_str());
  obs::trace_reset();
  obs::trace_configure(path);
  (void)run_scenario(workers, sim_threads, false);
  EXPECT_TRUE(obs::trace_flush());
  obs::trace_reset();

  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const obs::Json doc = obs::Json::parse(ss.str());
  std::map<std::string, int> counts;
  for (const obs::Json& ev : doc.at("traceEvents").elements()) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "X") {
      counts[ev.at("name").as_string()] += 1;
    } else if (ph == "M") {
      counts["M:" + ev.at("args").at("name").as_string()] += 1;
    }
  }
  std::remove(path.c_str());
  return counts;
}

TEST(Telemetry, LifecycleSpanCountsMatchAcrossConfigs) {
  const auto base = trace_span_counts(1, 1);
  // 12 admitted jobs each leave submit/plan/queued/execute/deliver; the 3
  // deterministic rejections leave reject spans and nothing else.
  EXPECT_EQ(base.at("submit"), 12);
  EXPECT_EQ(base.at("plan"), 12);
  EXPECT_EQ(base.at("queued"), 12);
  EXPECT_EQ(base.at("execute"), 12);
  EXPECT_EQ(base.at("deliver"), 12);
  EXPECT_EQ(base.at("reject"), 3);
  EXPECT_EQ(base.at("M:dispatcher"), 1);
  EXPECT_EQ(base.at("M:worker-0"), 1);

  auto wide = trace_span_counts(3, 4);
  for (const char* name :
       {"submit", "plan", "queued", "execute", "deliver", "reject"}) {
    EXPECT_EQ(wide.at(name), base.at(name)) << name;
  }
  EXPECT_EQ(wide.at("M:worker-2"), 1);
}

}  // namespace
}  // namespace accred::service
