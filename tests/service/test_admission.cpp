// Admission control (service/service.hpp): overload answers with an
// immediate deterministic kRejected — backpressure, never a device OOM —
// against both the occupancy budget and the memory budget; rejected
// traffic must not perturb the plan cache.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "service/service.hpp"
#include "service_test_util.hpp"

namespace accred::service {
namespace {

using test::drain_or_fail;
using test::make_job;

TEST(Admission, EstimateBytesIsPureAndMonotonic) {
  const JobSpec job = make_job();
  EXPECT_EQ(ReductionService::estimate_bytes(job),
            ReductionService::estimate_bytes(job));
  JobSpec bigger = job;
  bigger.reduction_extent *= 4;
  EXPECT_GT(ReductionService::estimate_bytes(bigger),
            ReductionService::estimate_bytes(job));
  JobSpec wide = job;
  wide.kase.type = acc::DataType::kDouble;
  EXPECT_GT(ReductionService::estimate_bytes(wide),
            ReductionService::estimate_bytes(job));
}

TEST(Admission, OccupancyBudgetRejectsDeterministically) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.start_paused = true;  // admission runs, dispatch doesn't
  ReductionService svc(cfg);
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 7; ++i) futs.push_back(svc.submit(make_job()));
  const ServiceStats paused = svc.stats();
  EXPECT_EQ(paused.admitted, 4u);
  EXPECT_EQ(paused.rejected_queue, 3u);
  EXPECT_EQ(paused.rejected_memory, 0u);
  // Rejections resolve immediately, with the budget in the reason.
  for (int i = 4; i < 7; ++i) {
    ASSERT_EQ(futs[static_cast<std::size_t>(i)].wait_for(
                  std::chrono::seconds(0)),
              std::future_status::ready);
    const JobResult r = futs[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.status, JobStatus::kRejected);
    EXPECT_NE(r.reject_reason.find("occupancy"), std::string::npos);
  }
  svc.resume();
  drain_or_fail(svc);
  EXPECT_EQ(svc.stats().completed, 4u);
}

TEST(Admission, MemoryBudgetRejectsInsteadOfOom) {
  const JobSpec job = make_job();
  const std::size_t bytes = ReductionService::estimate_bytes(job);
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.memory_budget_bytes = 2 * bytes;  // room for exactly two jobs
  cfg.start_paused = true;
  ReductionService svc(cfg);
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(svc.submit(job));
  const ServiceStats paused = svc.stats();
  EXPECT_EQ(paused.admitted, 2u);
  EXPECT_EQ(paused.rejected_memory, 2u);
  EXPECT_EQ(paused.admitted_bytes, 2 * bytes);
  const JobResult r = futs[2].get();
  EXPECT_EQ(r.status, JobStatus::kRejected);
  EXPECT_NE(r.reject_reason.find("memory"), std::string::npos);
  svc.resume();
  drain_or_fail(svc);
  // Completion releases the reservation.
  EXPECT_EQ(svc.stats().admitted_bytes, 0u);
  EXPECT_EQ(svc.stats().completed, 2u);
}

TEST(Admission, RejectionsNeverTouchThePlanCache) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.start_paused = true;
  ReductionService svc(cfg);
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 10; ++i) futs.push_back(svc.submit(make_job()));
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.rejected_queue, 8u);
  // Only the two admitted jobs planned: one miss, one hit. The eight
  // rejected submissions are invisible to the cache counters, so the hit
  // rate stays deterministic under wall-clock-dependent backpressure.
  EXPECT_EQ(s.cache.misses + s.cache.hits, 2u);
  svc.resume();
  drain_or_fail(svc);
}

TEST(Admission, BudgetFreesAsJobsComplete) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  ReductionService svc(cfg);
  // 3x the budget in total traffic, but never more than `capacity` open at
  // once: with completion-aware pacing every submission is admitted.
  for (int wave = 0; wave < 3; ++wave) {
    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 8; ++i) futs.push_back(svc.submit(make_job()));
    for (auto& f : futs) EXPECT_EQ(f.get().status, JobStatus::kOk);
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, 24u);
  EXPECT_EQ(s.rejected_queue + s.rejected_memory, 0u);
}

}  // namespace
}  // namespace accred::service
