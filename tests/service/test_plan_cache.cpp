// Plan cache (service/plan_cache.hpp): key normalization, hit/miss/LRU
// eviction determinism, and the rebinding contract — a cache hit must be
// field-for-field identical to planning from scratch, for every Table 2
// position and for a different extent inside the same bucket.
#include "service/plan_cache.hpp"

#include <gtest/gtest.h>

#include "service_test_util.hpp"
#include "testsuite/cases.hpp"

namespace accred::service {
namespace {

using test::expect_plans_equal;
using test::make_job;

TEST(ExtentBucket, CeilLog2) {
  EXPECT_EQ(extent_bucket(1), 0u);
  EXPECT_EQ(extent_bucket(2), 1u);
  EXPECT_EQ(extent_bucket(3), 2u);
  EXPECT_EQ(extent_bucket(4), 2u);
  EXPECT_EQ(extent_bucket(5), 3u);
  EXPECT_EQ(extent_bucket(1 << 12), 12u);
  EXPECT_EQ(extent_bucket((1 << 12) + 1), 13u);
}

TEST(PlanKey, SameBucketSameKey) {
  JobSpec a = make_job("t", acc::Position::kGang, 1025);
  JobSpec b = make_job("t", acc::Position::kGang, 2048);
  EXPECT_EQ(key_of(a), key_of(b));  // both in bucket 11
  b.reduction_extent = 2049;        // bucket 12
  EXPECT_NE(key_of(a), key_of(b));
}

TEST(PlanKey, EveryDecisionInputIsKeyed) {
  const JobSpec base = make_job();
  JobSpec j = base;
  j.compiler = acc::CompilerId::kPgiLike;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.kase.pos = acc::Position::kWorker;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.kase.op = acc::ReductionOp::kMax;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.kase.type = acc::DataType::kDouble;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.config.num_gangs += 1;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.parallel_work = false;
  EXPECT_NE(key_of(base), key_of(j));
  // The tenant is NOT part of the key: tenants share the cache.
  j = base;
  j.tenant = "someone-else";
  EXPECT_EQ(key_of(base), key_of(j));
}

TEST(PlanCache, HitSkipsPlanningAndMatchesFreshPlan) {
  PlanCache cache(8);
  for (acc::Position pos : testsuite::all_positions()) {
    const JobSpec job = make_job("t", pos, 256);
    bool hit = true;
    const acc::ExecutionPlan first = cache.get_or_plan(job, &hit);
    EXPECT_FALSE(hit);
    hit = false;
    const acc::ExecutionPlan cached = cache.get_or_plan(job, &hit);
    EXPECT_TRUE(hit);
    expect_plans_equal(cached, plan_job(job));
    expect_plans_equal(cached, first);
  }
}

TEST(PlanCache, HitRebindsExtentWithinBucket) {
  PlanCache cache(8);
  for (acc::Position pos :
       {acc::Position::kGang, acc::Position::kWorkerVector,
        acc::Position::kSameLineGangWorkerVector}) {
    const JobSpec small = make_job("t", pos, 130);
    (void)cache.get_or_plan(small);
    JobSpec bigger = small;
    bigger.reduction_extent = 250;  // same ceil(log2) bucket, new extents
    ASSERT_EQ(key_of(small), key_of(bigger));
    bool hit = false;
    const acc::ExecutionPlan rebound = cache.get_or_plan(bigger, &hit);
    EXPECT_TRUE(hit);
    expect_plans_equal(rebound, plan_job(bigger));
  }
}

TEST(PlanCache, LruEvictionIsDeterministic) {
  PlanCache cache(2);
  const JobSpec a = make_job("t", acc::Position::kGang);
  const JobSpec b = make_job("t", acc::Position::kWorker);
  const JobSpec c = make_job("t", acc::Position::kVector);
  (void)cache.get_or_plan(a);  // {a}
  (void)cache.get_or_plan(b);  // {b a}
  (void)cache.get_or_plan(a);  // {a b} — refresh recency
  (void)cache.get_or_plan(c);  // {c a}, evicts b (LRU)
  bool hit = false;
  (void)cache.get_or_plan(a, &hit);
  EXPECT_TRUE(hit) << "a was refreshed, must survive";
  (void)cache.get_or_plan(b, &hit);
  EXPECT_FALSE(hit) << "b was least recently used, must have been evicted";

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);        // the refresh + the post-eviction probe of a
  EXPECT_EQ(s.misses, 4u);      // a, b, c, re-planted b
  EXPECT_EQ(s.evictions, 2u);   // b (by c), then c (by the re-planted b)
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 2.0 / 6.0);
}

TEST(PlanCache, ClearResetsEverything) {
  PlanCache cache(4);
  (void)cache.get_or_plan(make_job());
  cache.clear();
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses + s.evictions + s.size, 0u);
  EXPECT_EQ(s.capacity, 4u);
  bool hit = true;
  (void)cache.get_or_plan(make_job(), &hit);
  EXPECT_FALSE(hit);
}

TEST(PlanKey, ToStringNamesEveryField) {
  const std::string s = to_string(key_of(make_job()));
  EXPECT_NE(s.find("gang"), std::string::npos);
  EXPECT_NE(s.find("openuh"), std::string::npos);
  EXPECT_NE(s.find("8x2x32"), std::string::npos);
}

}  // namespace
}  // namespace accred::service
