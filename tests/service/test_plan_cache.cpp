// Plan cache (service/plan_cache.hpp): key normalization, hit/miss/LRU
// eviction determinism, and the rebinding contract — a cache hit must be
// field-for-field identical to planning from scratch, for every Table 2
// position and for a different extent inside the same bucket.
#include "service/plan_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "service_test_util.hpp"
#include "testsuite/cases.hpp"

namespace accred::service {
namespace {

using test::expect_plans_equal;
using test::make_job;

TEST(ExtentBucket, CeilLog2) {
  EXPECT_EQ(extent_bucket(1), 0u);
  EXPECT_EQ(extent_bucket(2), 1u);
  EXPECT_EQ(extent_bucket(3), 2u);
  EXPECT_EQ(extent_bucket(4), 2u);
  EXPECT_EQ(extent_bucket(5), 3u);
  EXPECT_EQ(extent_bucket(1 << 12), 12u);
  EXPECT_EQ(extent_bucket((1 << 12) + 1), 13u);
}

TEST(PlanKey, SameBucketSameKey) {
  JobSpec a = make_job("t", acc::Position::kGang, 1025);
  JobSpec b = make_job("t", acc::Position::kGang, 2048);
  EXPECT_EQ(key_of(a), key_of(b));  // both in bucket 11
  b.reduction_extent = 2049;        // bucket 12
  EXPECT_NE(key_of(a), key_of(b));
}

TEST(PlanKey, EveryDecisionInputIsKeyed) {
  const JobSpec base = make_job();
  JobSpec j = base;
  j.compiler = acc::CompilerId::kPgiLike;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.kase.pos = acc::Position::kWorker;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.kase.op = acc::ReductionOp::kMax;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.kase.type = acc::DataType::kDouble;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.config.num_gangs += 1;
  EXPECT_NE(key_of(base), key_of(j));
  j = base;
  j.parallel_work = false;
  EXPECT_NE(key_of(base), key_of(j));
  // The tenant is NOT part of the key: tenants share the cache.
  j = base;
  j.tenant = "someone-else";
  EXPECT_EQ(key_of(base), key_of(j));
}

TEST(PlanCache, HitSkipsPlanningAndMatchesFreshPlan) {
  PlanCache cache(8);
  for (acc::Position pos : testsuite::all_positions()) {
    const JobSpec job = make_job("t", pos, 256);
    bool hit = true;
    const acc::ExecutionPlan first = cache.get_or_plan(job, &hit);
    EXPECT_FALSE(hit);
    hit = false;
    const acc::ExecutionPlan cached = cache.get_or_plan(job, &hit);
    EXPECT_TRUE(hit);
    expect_plans_equal(cached, plan_job(job));
    expect_plans_equal(cached, first);
  }
}

TEST(PlanCache, HitRebindsExtentWithinBucket) {
  PlanCache cache(8);
  for (acc::Position pos :
       {acc::Position::kGang, acc::Position::kWorkerVector,
        acc::Position::kSameLineGangWorkerVector}) {
    const JobSpec small = make_job("t", pos, 130);
    (void)cache.get_or_plan(small);
    JobSpec bigger = small;
    bigger.reduction_extent = 250;  // same ceil(log2) bucket, new extents
    ASSERT_EQ(key_of(small), key_of(bigger));
    bool hit = false;
    const acc::ExecutionPlan rebound = cache.get_or_plan(bigger, &hit);
    EXPECT_TRUE(hit);
    expect_plans_equal(rebound, plan_job(bigger));
  }
}

TEST(PlanCache, LruEvictionIsDeterministic) {
  PlanCache cache(2);
  const JobSpec a = make_job("t", acc::Position::kGang);
  const JobSpec b = make_job("t", acc::Position::kWorker);
  const JobSpec c = make_job("t", acc::Position::kVector);
  (void)cache.get_or_plan(a);  // {a}
  (void)cache.get_or_plan(b);  // {b a}
  (void)cache.get_or_plan(a);  // {a b} — refresh recency
  (void)cache.get_or_plan(c);  // {c a}, evicts b (LRU)
  bool hit = false;
  (void)cache.get_or_plan(a, &hit);
  EXPECT_TRUE(hit) << "a was refreshed, must survive";
  (void)cache.get_or_plan(b, &hit);
  EXPECT_FALSE(hit) << "b was least recently used, must have been evicted";

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);        // the refresh + the post-eviction probe of a
  EXPECT_EQ(s.misses, 4u);      // a, b, c, re-planted b
  EXPECT_EQ(s.evictions, 2u);   // b (by c), then c (by the re-planted b)
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 2.0 / 6.0);
}

TEST(PlanCache, ClearResetsEverything) {
  PlanCache cache(4);
  (void)cache.get_or_plan(make_job());
  cache.clear();
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses + s.evictions + s.size, 0u);
  EXPECT_EQ(s.capacity, 4u);
  bool hit = true;
  (void)cache.get_or_plan(make_job(), &hit);
  EXPECT_FALSE(hit);
}

TEST(PlanKey, ToStringNamesEveryField) {
  const std::string s = to_string(key_of(make_job()));
  EXPECT_NE(s.find("gang"), std::string::npos);
  EXPECT_NE(s.find("openuh"), std::string::npos);
  EXPECT_NE(s.find("8x2x32"), std::string::npos);
}

TEST(PlanKeyHash, GeometryFieldsDoNotAlias) {
  // Regression: the old hash packed num_workers at bit 24, so
  // {num_gangs = 1 << 24} hashed identically to {num_workers = 1} (and
  // vector_length at bit 44 overlapped num_workers past 2^20).
  const PlanKeyHash hash;
  JobSpec a = make_job();
  JobSpec b = make_job();
  a.config = acc::LaunchConfig{1u << 24, 0, 0};
  b.config = acc::LaunchConfig{0, 1, 0};
  ASSERT_NE(key_of(a), key_of(b));
  EXPECT_NE(hash(key_of(a)), hash(key_of(b)));

  a.config = acc::LaunchConfig{0, 1u << 20, 0};
  b.config = acc::LaunchConfig{0, 0, 1};
  EXPECT_NE(hash(key_of(a)), hash(key_of(b)));

  // Broader sweep: every distinct geometry triple in a small lattice gets
  // a distinct hash (the fields are tiny relative to 64 bits, so any
  // collision here means lanes overlap).
  std::vector<std::size_t> seen;
  for (std::uint32_t g : {0u, 1u, 7u, 1u << 24}) {
    for (std::uint32_t w : {0u, 1u, 7u, 1u << 20}) {
      for (std::uint32_t v : {0u, 1u, 7u, 1u << 10}) {
        JobSpec j = make_job();
        j.config = acc::LaunchConfig{g, w, v};
        seen.push_back(hash(key_of(j)));
      }
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(PlanKey, ChainOpsAreKeyed) {
  // A cascaded job must never collide with the scalar cell at the same
  // (pos, op, type): the cached plans differ structurally.
  JobSpec scalar = make_job();
  scalar.kase.pos = acc::Position::kGangWorkerVector;
  JobSpec chained = scalar;
  chained.chain_ops = {acc::ReductionOp::kSum, acc::ReductionOp::kSum,
                       acc::ReductionOp::kSum};
  EXPECT_NE(key_of(scalar), key_of(chained));
  const PlanKeyHash hash;
  EXPECT_NE(hash(key_of(scalar)), hash(key_of(chained)));

  JobSpec other = chained;
  other.chain_ops[1] = acc::ReductionOp::kMax;
  EXPECT_NE(key_of(chained), key_of(other));

  const std::string s = to_string(key_of(chained));
  EXPECT_NE(s.find("chain:"), std::string::npos);
  EXPECT_EQ(to_string(key_of(scalar)).find("chain:"), std::string::npos);
}

TEST(PlanCache, ChainJobCachesFusedPlanAndRebinds) {
  PlanCache cache(8);
  JobSpec job = make_job("t", acc::Position::kGangWorkerVector, 130);
  job.chain_ops = {acc::ReductionOp::kSum, acc::ReductionOp::kSum,
                   acc::ReductionOp::kSum};
  bool hit = true;
  const acc::ExecutionPlan first = cache.get_or_plan(job, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(first.kind, acc::StrategyKind::kFusedCascade);
  ASSERT_EQ(first.chain.size(), 3u);

  JobSpec bigger = job;
  bigger.reduction_extent = 250;  // same bucket, new extents
  ASSERT_EQ(key_of(job), key_of(bigger));
  hit = false;
  const acc::ExecutionPlan rebound = cache.get_or_plan(bigger, &hit);
  EXPECT_TRUE(hit);
  expect_plans_equal(rebound, plan_job(bigger));
}

}  // namespace
}  // namespace accred::service
