// ReductionService basics (service/service.hpp): future and callback
// completion, drain semantics, stats accounting, the per-job plan-cache
// integration, and the determinism contract — identical submission order
// produces bit-identical results for any worker count and sim_threads.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "service_test_util.hpp"
#include "testsuite/cases.hpp"

namespace accred::service {
namespace {

using test::drain_or_fail;
using test::make_job;

TEST(Service, FutureResolvesWithVerifiedResult) {
  ReductionService svc;
  std::future<JobResult> fut = svc.submit(make_job());
  const JobResult r = fut.get();
  EXPECT_EQ(r.status, JobStatus::kOk);
  EXPECT_TRUE(r.outcome.verified);
  EXPECT_NE(r.outcome.result_hash, 0u);
  EXPECT_GT(r.job_id, 0u);
  EXPECT_FALSE(r.plan_cache_hit) << "first submission must plan";
  EXPECT_GE(r.service_ms, r.queue_ms);
}

TEST(Service, CallbackRunsOffTheSubmitter) {
  ReductionService svc;
  std::promise<JobResult> delivered;
  svc.submit(make_job(), [&](JobResult r) { delivered.set_value(std::move(r)); });
  const JobResult r = delivered.get_future().get();
  EXPECT_EQ(r.status, JobStatus::kOk);
}

TEST(Service, RepeatTrafficHitsThePlanCache) {
  ReductionService svc;
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(svc.submit(make_job()));
  std::size_t hits = 0;
  for (auto& f : futs) hits += f.get().plan_cache_hit ? 1u : 0u;
  EXPECT_EQ(hits, 7u) << "same key: everything after the first must hit";
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cache.hits, 7u);
  EXPECT_EQ(s.cache.misses, 1u);
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.submitted, 8u);
  EXPECT_EQ(s.admitted, 8u);
  EXPECT_EQ(s.failed + s.rejected_queue + s.rejected_memory, 0u);
}

TEST(Service, DrainWaitsForEveryAdmittedJob) {
  ServiceConfig cfg;
  cfg.workers = 2;
  ReductionService svc(cfg);
  std::atomic<int> done{0};
  for (int i = 0; i < 12; ++i) {
    svc.submit(make_job("t", acc::Position::kGangWorker, 64),
               [&](JobResult) { ++done; });
  }
  drain_or_fail(svc);
  EXPECT_EQ(done.load(), 12);  // drain => every callback already ran
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.queued + s.inflight, 0u);
  EXPECT_EQ(s.admitted_bytes, 0u);
}

TEST(Service, DestructorFailsQueuedJobsWithRejection) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;  // nothing dispatches: all jobs die queued
  std::vector<std::future<JobResult>> futs;
  {
    ReductionService svc(cfg);
    for (int i = 0; i < 3; ++i) futs.push_back(svc.submit(make_job()));
  }
  for (auto& f : futs) {
    const JobResult r = f.get();
    EXPECT_EQ(r.status, JobStatus::kRejected);
    EXPECT_NE(r.reject_reason.find("stopped"), std::string::npos);
  }
}

/// The service determinism contract (DESIGN.md §13): for one submission
/// order, every job's verified result is bit-identical no matter how many
/// executor threads or host sim threads run it.
TEST(Service, ResultsAreIdenticalForAnyWorkerCount) {
  const auto grid = testsuite::table2_grid();
  auto run_once = [&](std::uint32_t workers, std::uint32_t sim_threads) {
    ServiceConfig cfg;
    cfg.workers = workers;
    ReductionService svc(cfg);
    std::vector<std::future<JobResult>> futs;
    for (std::size_t i = 0; i < 24; ++i) {
      JobSpec job = make_job("t", grid[i % grid.size()].pos, 96);
      job.kase = grid[i % grid.size()];
      job.sim_threads = sim_threads;
      futs.push_back(svc.submit(std::move(job)));
    }
    std::vector<std::uint64_t> hashes;
    for (auto& f : futs) {
      const JobResult r = f.get();
      EXPECT_EQ(r.status, JobStatus::kOk);
      hashes.push_back(r.outcome.result_hash);
    }
    return hashes;
  };
  const auto serial = run_once(1, 1);
  const auto parallel = run_once(4, 2);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace accred::service
