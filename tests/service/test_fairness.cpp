// Weighted fair queuing (service/service.hpp): a tenant that floods the
// queue gets its weight's share of dispatch slots and no more; an
// interactive tenant's jobs never starve behind the backlog. Dispatch is
// deterministic (virtual clocks, name tie-break), so these tests assert
// exact schedules, not statistical ones.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "service_test_util.hpp"

namespace accred::service {
namespace {

using test::drain_or_fail;
using test::make_job;

/// Build the backlog while paused, run it on one worker, and return the
/// tenant name of each completion in dispatch order.
std::vector<std::string> completion_order(
    std::vector<TenantConfig> tenants,
    const std::vector<std::pair<std::string, int>>& submissions) {
  ServiceConfig cfg;
  cfg.workers = 1;  // one worker => completion order == dispatch order
  cfg.start_paused = true;
  ReductionService svc(cfg, std::move(tenants));
  std::mutex mu;
  std::vector<std::string> order;
  for (const auto& [tenant, count] : submissions) {
    for (int i = 0; i < count; ++i) {
      svc.submit(make_job(tenant, acc::Position::kGang, 64), [&](JobResult r) {
        std::lock_guard<std::mutex> lk(mu);
        order.push_back(std::move(r.tenant));
      });
    }
  }
  svc.resume();
  drain_or_fail(svc);
  return order;
}

TEST(Fairness, EqualWeightsAlternate) {
  const auto order = completion_order({{"a", 1.0}, {"b", 1.0}},
                                      {{"a", 4}, {"b", 4}});
  const std::vector<std::string> expect = {"a", "b", "a", "b",
                                           "a", "b", "a", "b"};
  EXPECT_EQ(order, expect);
}

TEST(Fairness, WeightsSetTheShare) {
  // Weight 2 vs 1: for every slot "b" gets, "a" gets two.
  const auto order = completion_order({{"a", 2.0}, {"b", 1.0}},
                                      {{"a", 8}, {"b", 4}});
  std::size_t a_seen = 0;
  for (std::size_t i = 0; i < 6; ++i) a_seen += order[i] == "a" ? 1u : 0u;
  EXPECT_EQ(a_seen, 4u) << "first 6 slots split 2:1";
  // The full schedule drains both queues.
  EXPECT_EQ(order.size(), 12u);
}

TEST(Fairness, SaturatingTenantCannotStarveOthers) {
  // "hog" piles up 30 jobs before "mouse" submits 3. With equal weights
  // the mouse's jobs ride the next alternating slots instead of waiting
  // behind the backlog.
  const auto order = completion_order({{"hog", 1.0}, {"mouse", 1.0}},
                                      {{"hog", 30}, {"mouse", 3}});
  std::size_t last_mouse = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "mouse") last_mouse = i;
  }
  EXPECT_LT(last_mouse, 6u)
      << "mouse's 3 jobs must finish within the first 6 dispatches";
}

TEST(Fairness, IdleTenantBanksNoCredit) {
  // A tenant that sat idle while others ran re-enters at the current
  // virtual time: it does NOT get a burst of make-up slots. After "late"
  // joins, slots alternate rather than going all-late-first.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  ReductionService svc(cfg, {{"early", 1.0}, {"late", 1.0}});
  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&](JobResult r) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(std::move(r.tenant));
  };
  for (int i = 0; i < 6; ++i) {
    svc.submit(make_job("early", acc::Position::kGang, 64), record);
  }
  svc.resume();
  drain_or_fail(svc);  // "early" consumed 6 slots; virtual time advanced
  svc.pause();
  for (int i = 0; i < 3; ++i) {
    svc.submit(make_job("early", acc::Position::kGang, 64), record);
    svc.submit(make_job("late", acc::Position::kGang, 64), record);
  }
  svc.resume();
  drain_or_fail(svc);
  // The second wave alternates from the start — no make-up burst for
  // "late". ("late" gets the first slot: it re-enters at the global
  // virtual time while "early"'s clock already charges its next dispatch.)
  const std::vector<std::string> expect_tail = {"late", "early", "late",
                                                "early", "late", "early"};
  ASSERT_EQ(order.size(), 12u);
  EXPECT_EQ(std::vector<std::string>(order.begin() + 6, order.end()),
            expect_tail);
}

TEST(Fairness, TenantStatsTrackShares) {
  ServiceConfig cfg;
  cfg.workers = 2;
  ReductionService svc(cfg, {{"a", 3.0}, {"b", 1.0}});
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(svc.submit(make_job(i % 2 == 0 ? "a" : "b")));
  }
  for (auto& f : futs) (void)f.get();
  const auto per_tenant = svc.tenant_stats();
  ASSERT_EQ(per_tenant.size(), 2u);
  EXPECT_DOUBLE_EQ(per_tenant.at("a").weight, 3.0);
  EXPECT_EQ(per_tenant.at("a").submitted, 3u);
  EXPECT_EQ(per_tenant.at("a").completed, 3u);
  EXPECT_EQ(per_tenant.at("b").completed, 3u);
}

}  // namespace
}  // namespace accred::service
