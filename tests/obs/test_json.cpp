// obs/json.hpp: round-trip stability, escaping, number formatting, and
// strict-parser rejection — the invariants the record schema and the
// committed CI baselines lean on.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace accred::obs {
namespace {

TEST(Json, ScalarKindsAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_EQ(Json(std::int64_t{42}).as_int(), 42);
  EXPECT_DOUBLE_EQ(Json(1.5).as_double(), 1.5);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  // as_double accepts both number kinds; as_int stays strict.
  EXPECT_DOUBLE_EQ(Json(std::int64_t{7}).as_double(), 7.0);
  EXPECT_THROW((void)Json(1.5).as_int(), std::runtime_error);
  EXPECT_THROW((void)Json("x").as_double(), std::runtime_error);
  EXPECT_THROW((void)Json().as_bool(), std::runtime_error);
}

TEST(Json, ObjectInsertionOrderIsPreserved) {
  Json j = Json::object();
  j.set("zebra", 1);
  j.set("apple", 2);
  j.set("mango", 3);
  EXPECT_EQ(j.dump(), R"({"zebra":1,"apple":2,"mango":3})");
  // set() on an existing key replaces in place — order must not move.
  j.set("apple", 9);
  EXPECT_EQ(j.dump(), R"({"zebra":1,"apple":9,"mango":3})");
}

TEST(Json, StringEscaping) {
  Json j = Json(std::string("a\"b\\c\n\t\x01z"));
  const std::string text = j.dump();
  EXPECT_EQ(text, "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
  EXPECT_EQ(Json::parse(text).as_string(), j.as_string());
}

TEST(Json, UnicodeEscapesParseToUtf8) {
  EXPECT_EQ(Json::parse(R"("Aé€")").as_string(),
            "A\xC3\xA9\xE2\x82\xAC");
}

TEST(Json, DoublesUseShortestRoundTrippingForm) {
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  EXPECT_EQ(Json(1.0).dump(), "1");
  EXPECT_EQ(Json(-2.5).dump(), "-2.5");
  // A value needing all 17 digits survives the round trip.
  const double v = 0.12345678901234567;
  EXPECT_DOUBLE_EQ(Json::parse(Json(v).dump()).as_double(), v);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, IntegersStayExact) {
  const std::int64_t big = 9007199254740993;  // not representable as double
  EXPECT_EQ(Json::parse(Json(big).dump()).as_int(), big);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_EQ(Json::parse("-42").kind(), Json::Kind::kInt);
  EXPECT_EQ(Json::parse("42.0").kind(), Json::Kind::kDouble);
}

TEST(Json, CompositeRoundTrip) {
  Json doc = Json::object();
  doc.set("name", "bench");
  doc.set("ok", true);
  doc.set("none", Json());
  Json arr = Json::array();
  arr.push(1);
  arr.push(2.5);
  arr.push("three");
  doc.set("values", std::move(arr));
  Json nested = Json::object();
  nested.set("depth", std::int64_t{2});
  doc.set("meta", std::move(nested));

  for (int indent : {0, 2, 4}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent " << indent;
  }
  EXPECT_EQ(doc.at("values").size(), 3u);
  EXPECT_EQ(doc.at("meta").at("depth").as_int(), 2);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW((void)doc.at("absent"), std::runtime_error);
}

TEST(Json, EqualityTreatsIntAndDoubleNumerically) {
  EXPECT_EQ(Json(std::int64_t{3}), Json(3.0));
  EXPECT_FALSE(Json(std::int64_t{3}) == Json(3.5));
}

TEST(Json, ParserRejectsMalformedInput) {
  for (const char* bad : {
           "",
           "{",
           "[1,2",
           "{\"a\":1,}",   // trailing comma
           "[1,2,]",       // trailing comma
           "{'a':1}",      // single quotes
           "01",           // leading zero
           "1 2",          // trailing junk
           "nul",
           "\"unterminated",
           "{\"a\" 1}",
           "// comment\n1",
       }) {
    EXPECT_THROW((void)Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, ParserEnforcesDepthCap) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep), std::runtime_error);
}

}  // namespace
}  // namespace accred::obs
