// obs/record.hpp: the schema-stability golden. Field names, their order,
// and the derived-metric values are contract — bench_diff and the
// committed CI baselines parse them, so a mismatch here means either a
// schema_version bump was forgotten or a field changed meaning.
#include "obs/record.hpp"

#include <gtest/gtest.h>

#include "obs/profiler.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace accred::obs {
namespace {

gpusim::LaunchStats sample_stats() {
  gpusim::LaunchStats s;
  s.blocks = 26;
  s.threads = 26 * 256;
  s.gmem_requests = 1000;
  s.gmem_segments = 2000;
  s.gmem_bytes = 128000;
  s.smem_requests = 400;
  s.smem_cycles = 1200;
  s.barriers = 52;
  s.syncwarps = 208;
  s.alu_units = 5000;
  s.device_time_ns = 1.5e6;
  s.wall_time_ns = 3e6;
  return s;
}

TEST(Record, StatsGoldenFieldNamesAndDerivedValues) {
  const Json j = stats_to_json(sample_stats());
  const std::vector<std::string> want = {
      "blocks",        "threads",      "gmem_requests",
      "gmem_segments", "gmem_bytes",   "smem_requests",
      "smem_cycles",   "barriers",     "syncwarps",
      "alu_units",     "device_time_ms", "wall_time_ms",
      "coalescing_efficiency", "bank_conflict_factor", "sm_occupancy"};
  ASSERT_EQ(j.items().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(j.items()[i].first, want[i]) << "field order changed at " << i;
  }
  EXPECT_EQ(j.at("blocks").as_int(), 26);
  EXPECT_DOUBLE_EQ(j.at("device_time_ms").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(j.at("wall_time_ms").as_double(), 3.0);
  // 128000 useful bytes / (2000 segments * 128 B) = 0.5.
  EXPECT_DOUBLE_EQ(j.at("coalescing_efficiency").as_double(), 0.5);
  // 1200 cycles / 400 requests = 3-way average conflict.
  EXPECT_DOUBLE_EQ(j.at("bank_conflict_factor").as_double(), 3.0);
  // 26 blocks on the default 13-SM device: all SMs populated.
  EXPECT_DOUBLE_EQ(j.at("sm_occupancy").as_double(), 1.0);
}

TEST(Record, OccupancyIsFractionalBelowSmCount) {
  gpusim::LaunchStats s = sample_stats();
  s.blocks = 4;
  EXPECT_DOUBLE_EQ(stats_to_json(s).at("sm_occupancy").as_double(), 4.0 / 13);
}

TEST(Record, RunRecordTopLevelSchema) {
  RunRecord rec("demo_bench");
  rec.meta("extent", std::int64_t{1024});
  rec.entry("a/b").metric("device_ms", 1.25).attr("verified", "yes");
  rec.entry("a/b").metric("kernels", 2.0);  // get-or-create merges
  rec.entry("c").stats(sample_stats());

  const Json j = rec.to_json();
  ASSERT_EQ(j.items().size(), 5u);
  EXPECT_EQ(j.items()[0].first, "schema");
  EXPECT_EQ(j.items()[1].first, "schema_version");
  EXPECT_EQ(j.items()[2].first, "bench");
  EXPECT_EQ(j.items()[3].first, "meta");
  EXPECT_EQ(j.items()[4].first, "entries");
  EXPECT_EQ(j.at("schema").as_string(), "accred.bench");
  // v3: entries may carry "profile" (v2) and "telemetry" (v3) sections.
  EXPECT_EQ(j.at("schema_version").as_int(), 3);
  EXPECT_EQ(j.at("bench").as_string(), "demo_bench");
  EXPECT_EQ(j.at("meta").at("extent").as_int(), 1024);

  const auto& entries = j.at("entries").elements();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].at("name").as_string(), "a/b");
  EXPECT_DOUBLE_EQ(entries[0].at("metrics").at("device_ms").as_double(), 1.25);
  EXPECT_DOUBLE_EQ(entries[0].at("metrics").at("kernels").as_double(), 2.0);
  EXPECT_EQ(entries[0].at("attrs").at("verified").as_string(), "yes");
  EXPECT_EQ(entries[0].find("stats"), nullptr);
  EXPECT_NE(entries[1].find("stats"), nullptr);
  // An entry without attrs omits the block entirely.
  EXPECT_EQ(entries[1].find("attrs"), nullptr);
}

TEST(Record, ProfiledStatsAttachProfileSection) {
  gpusim::LaunchStats s = sample_stats();
  s.profile.intern(kUnscopedStageName);
  StageStats& tree = s.profile.row(s.profile.intern("tree"));
  tree.smem_requests = 40;
  tree.smem_cycles = 120;
  tree.warp_epochs = 4;
  tree.lane_hist[32] = 4;

  RunRecord rec("demo_bench");
  rec.entry("profiled").stats(s);
  rec.entry("plain").stats(sample_stats());

  const Json j = rec.to_json();
  const auto& entries = j.at("entries").elements();
  ASSERT_EQ(entries.size(), 2u);
  const Json* prof = entries[0].find("profile");
  ASSERT_NE(prof, nullptr);
  // The all-zero "(unscoped)" row is skipped; only "tree" serializes.
  ASSERT_EQ(prof->size(), 1u);
  EXPECT_EQ(prof->elements()[0].at("stage").as_string(), "tree");
  EXPECT_DOUBLE_EQ(
      prof->elements()[0].at("bank_conflict_factor").as_double(), 3.0);
  // An unprofiled launch (empty table) must not grow a profile key.
  EXPECT_EQ(entries[1].find("profile"), nullptr);
}

TEST(Record, TelemetrySectionAppearsOnlyWhenAttached) {
  RunRecord rec("demo_bench");
  Json reg = Json::object();
  Json counters = Json::object();
  counters.set("service/jobs", std::int64_t{12});
  reg.set("counters", std::move(counters));
  rec.entry("with").metric("device_ms", 1.0).telemetry(std::move(reg));
  rec.entry("without").metric("device_ms", 2.0);

  const Json j = rec.to_json();
  const auto& entries = j.at("entries").elements();
  ASSERT_EQ(entries.size(), 2u);
  const Json* tel = entries[0].find("telemetry");
  ASSERT_NE(tel, nullptr);
  EXPECT_EQ(tel->at("counters").at("service/jobs").as_int(), 12);
  // Metrics-off records must keep their pre-v3 shape (satellite 6's
  // 0%-diff guard depends on it).
  EXPECT_EQ(entries[1].find("telemetry"), nullptr);
}

TEST(Record, SessionWritesRequestedFile) {
  const std::string path = ::testing::TempDir() + "accred_record_test.json";
  std::remove(path.c_str());
  {
    const char* argv[] = {"prog", "--json", path.c_str()};
    const util::Cli cli(3, const_cast<char**>(argv));
    Session session(cli, "session_bench");
    session.record().entry("row").metric("device_ms", 2.0);
    EXPECT_TRUE(session.finish());
    EXPECT_TRUE(session.finish());  // idempotent
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const Json j = Json::parse(ss.str());
  EXPECT_EQ(j.at("bench").as_string(), "session_bench");
  EXPECT_EQ(j.at("entries").size(), 1u);
  std::remove(path.c_str());
}

TEST(Record, SessionWithoutFlagsWritesNothing) {
  const char* argv[] = {"prog"};
  const util::Cli cli(1, const_cast<char**>(argv));
  Session session(cli, "quiet");
  EXPECT_FALSE(session.json_enabled());
  EXPECT_TRUE(session.finish());
}

}  // namespace
}  // namespace accred::obs
