// obs/profiler.hpp: the per-stage attribution layer behind --profile.
// Covers the table algebra (intern / merge-by-name), the schema-v2
// "profile" section golden and its round-trip, the divergence math, and —
// end-to-end through gpusim::launch — scope attribution, lane-summed ALU
// booking, nesting restore, and the determinism contract (bit-identical
// per-stage totals for any sim_threads).
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gpusim/launch.hpp"
#include "obs/json.hpp"

namespace accred::obs {
namespace {

TEST(Profiler, StageStatsAccumulateEveryCounter) {
  StageStats a;
  a.gmem_requests = 1;
  a.gmem_segments = 2;
  a.gmem_bytes = 3;
  a.smem_requests = 4;
  a.smem_cycles = 5;
  a.barriers = 6;
  a.syncwarps = 7;
  a.warp_epochs = 8;
  a.alu_units = 9.5;
  a.lane_hist[0] = 1;
  a.lane_hist[32] = 2;
  StageStats b = a;
  b += a;
  EXPECT_EQ(b.gmem_requests, 2u);
  EXPECT_EQ(b.gmem_segments, 4u);
  EXPECT_EQ(b.gmem_bytes, 6u);
  EXPECT_EQ(b.smem_requests, 8u);
  EXPECT_EQ(b.smem_cycles, 10u);
  EXPECT_EQ(b.barriers, 12u);
  EXPECT_EQ(b.syncwarps, 14u);
  EXPECT_EQ(b.warp_epochs, 16u);
  EXPECT_DOUBLE_EQ(b.alu_units, 19.0);
  EXPECT_EQ(b.lane_hist[0], 2u);
  EXPECT_EQ(b.lane_hist[32], 4u);
}

TEST(Profiler, DerivedMetricsMatchWholeLaunchDefinitions) {
  StageStats s;
  s.gmem_bytes = 128;
  s.gmem_segments = 2;
  EXPECT_DOUBLE_EQ(stage_coalescing_efficiency(s), 0.5);
  s.smem_requests = 400;
  s.smem_cycles = 1200;
  EXPECT_DOUBLE_EQ(stage_bank_conflict_factor(s), 3.0);
  // Empty denominators degrade to the neutral value, not NaN.
  EXPECT_DOUBLE_EQ(stage_coalescing_efficiency(StageStats{}), 1.0);
  EXPECT_DOUBLE_EQ(stage_bank_conflict_factor(StageStats{}), 1.0);
}

TEST(Profiler, DivergenceIsMeanInactiveLaneFraction) {
  StageStats s;
  EXPECT_DOUBLE_EQ(stage_divergence(s), 0.0);  // no epochs: undefined -> 0
  // Two full-warp epochs and two half-warp epochs: mean active = 24/32.
  s.lane_hist[32] = 2;
  s.lane_hist[16] = 2;
  s.warp_epochs = 4;
  EXPECT_DOUBLE_EQ(stage_divergence(s), 0.25);
}

TEST(Profiler, TableInternDedupesAndFindsByName) {
  StageTable t;
  EXPECT_TRUE(t.empty());
  const std::uint16_t unscoped = t.intern(kUnscopedStageName);
  EXPECT_EQ(unscoped, 0);  // id 0 pinned by first intern
  const std::uint16_t tree = t.intern("tree");
  EXPECT_EQ(t.intern("tree"), tree);  // get-or-create
  t.row(tree).barriers = 3;
  ASSERT_NE(t.find("tree"), nullptr);
  EXPECT_EQ(t.find("tree")->stats.barriers, 3u);
  EXPECT_EQ(t.find("absent"), nullptr);
  EXPECT_EQ(t.rows().size(), 2u);
}

TEST(Profiler, MergeJoinsByNameAndAppendsUnmatched) {
  StageTable a;
  a.intern(kUnscopedStageName);
  a.row(a.intern("x")).gmem_requests = 1;
  a.row(a.intern("y")).alu_units = 2.0;
  StageTable b;
  b.intern(kUnscopedStageName);
  b.row(b.intern("y")).alu_units = 0.5;  // different slot than in `a`
  b.row(b.intern("z")).barriers = 3;
  a.merge(b);
  // Join is by NAME, not id; b-only stages append in first-seen order.
  const std::vector<std::string> want = {kUnscopedStageName, "x", "y", "z"};
  ASSERT_EQ(a.rows().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(a.rows()[i].name, want[i]);
  }
  EXPECT_DOUBLE_EQ(a.find("y")->stats.alu_units, 2.5);
  EXPECT_EQ(a.find("z")->stats.barriers, 3u);
}

TEST(Profiler, ProfileJsonGoldenFieldOrderAndRoundTrip) {
  StageTable t;
  t.intern(kUnscopedStageName);  // stays all-zero: must be skipped
  StageStats& s = t.row(t.intern("tree"));
  s.gmem_requests = 1;
  s.gmem_segments = 2;
  s.gmem_bytes = 256;
  s.smem_requests = 10;
  s.smem_cycles = 40;
  s.barriers = 5;
  s.syncwarps = 6;
  s.warp_epochs = 7;
  s.alu_units = 12.5;
  s.lane_hist[16] = 3;
  s.lane_hist[32] = 4;

  const Json j = profile_to_json(t);
  ASSERT_EQ(j.size(), 1u);  // zero row skipped
  const Json& row = j.elements()[0];
  const std::vector<std::string> want = {
      "stage",         "gmem_requests", "gmem_segments",
      "gmem_bytes",    "smem_requests", "smem_cycles",
      "barriers",      "syncwarps",     "warp_epochs",
      "alu_units",     "coalescing_efficiency", "bank_conflict_factor",
      "divergence",    "lane_occupancy"};
  ASSERT_EQ(row.items().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(row.items()[i].first, want[i]) << "field order changed at " << i;
  }
  EXPECT_EQ(row.at("stage").as_string(), "tree");
  EXPECT_DOUBLE_EQ(row.at("coalescing_efficiency").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(row.at("bank_conflict_factor").as_double(), 4.0);
  ASSERT_EQ(row.at("lane_occupancy").size(), 33u);

  const StageTable back = profile_from_json(j);
  ASSERT_EQ(back.rows().size(), 1u);
  const StageStats& r = back.find("tree")->stats;
  EXPECT_EQ(r.gmem_bytes, 256u);
  EXPECT_EQ(r.warp_epochs, 7u);
  EXPECT_DOUBLE_EQ(r.alu_units, 12.5);
  EXPECT_EQ(r.lane_hist[16], 3u);
  EXPECT_EQ(r.lane_hist[32], 4u);
  // The round trip is lossless for non-empty rows: dumps are identical.
  EXPECT_EQ(profile_to_json(back).dump(2), j.dump(2));
}

TEST(Profiler, TruncatedLaneHistogramThrows) {
  Json row = Json::object();
  row.set("stage", "x");
  for (const char* key : {"gmem_requests", "gmem_segments", "gmem_bytes",
                          "smem_requests", "smem_cycles", "barriers",
                          "syncwarps", "warp_epochs"}) {
    row.set(key, std::int64_t{1});
  }
  row.set("alu_units", 1.0);
  Json hist = Json::array();
  hist.push(std::int64_t{1});
  hist.push(std::int64_t{2});
  row.set("lane_occupancy", std::move(hist));
  Json arr = Json::array();
  arr.push(std::move(row));
  EXPECT_THROW((void)profile_from_json(arr), std::runtime_error);
}

// ---------------------------------------------------------------------------
// End-to-end: scope attribution through a real simulated launch.

/// Four-stage kernel exercising every attribution path: global loads and
/// an ALU charge under "load", full-warp shared stores under "stage", a
/// divergent half-warp plus an in-scope barrier under "tree", and a
/// single-lane epilogue under "store". One syncthreads stays unscoped.
gpusim::LaunchStats run_profiled_kernel(std::uint32_t nblocks,
                                        std::uint32_t sim_threads,
                                        bool profile) {
  gpusim::Device dev;
  constexpr std::uint32_t kThreads = 64;
  auto data = dev.alloc<float>(nblocks * kThreads);
  {
    auto host = data.host_span();
    for (std::size_t i = 0; i < host.size(); ++i) {
      host[i] = static_cast<float>(i % 7);
    }
  }
  auto dv = data.view();
  gpusim::SharedLayout layout;
  auto sm = layout.add<float>(kThreads);
  gpusim::SimOptions opts;
  opts.profile = profile;
  opts.sim_threads = sim_threads;
  opts.label = "profiler_test";
  return gpusim::launch(
      dev, {nblocks}, {kThreads}, layout.bytes(),
      [=](gpusim::ThreadCtx& ctx) {
        const std::uint32_t t = ctx.threadIdx.x;
        const std::size_t g = ctx.blockIdx.x * kThreads + t;
        float x;
        {
          auto s = ctx.prof_scope("load");
          x = ctx.ld(dv, g);
          ctx.alu(1.0);
        }
        {
          auto s = ctx.prof_scope("stage");
          ctx.sts(sm, t, x);
        }
        ctx.syncthreads();  // books to "(unscoped)"
        {
          auto s = ctx.prof_scope("tree");
          if (t < 16) ctx.sts(sm, t, ctx.lds(sm, t) + ctx.lds(sm, t + 16));
          ctx.syncthreads();  // books to "tree"
        }
        auto s = ctx.prof_scope("store");
        if (t == 0) ctx.st(dv, g, ctx.lds(sm, 0));
      },
      opts);
}

TEST(Profiler, OffByDefaultLeavesTableEmpty) {
  const auto stats = run_profiled_kernel(2, 1, /*profile=*/false);
  EXPECT_TRUE(stats.profile.empty());
  EXPECT_GT(stats.smem_requests, 0u);  // the launch itself still counted
}

TEST(Profiler, ScopesAttributeCountersAndDivergence) {
  const std::uint32_t nblocks = 2;
  const auto stats = run_profiled_kernel(nblocks, 1, /*profile=*/true);
  const StageTable& p = stats.profile;
  ASSERT_FALSE(p.empty());
  // First-intern order: the scheduler pins "(unscoped)" at id 0, then the
  // kernel's scopes in source order.
  const std::vector<std::string> want = {kUnscopedStageName, "load", "stage",
                                         "tree", "store"};
  ASSERT_EQ(p.rows().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(p.rows()[i].name, want[i]);
  }

  const StageStats& load = p.find("load")->stats;
  const StageStats& staging = p.find("stage")->stats;
  const StageStats& tree = p.find("tree")->stats;
  const StageStats& store = p.find("store")->stats;
  const StageStats& unscoped = p.find(kUnscopedStageName)->stats;

  // ALU attribution is lane-summed: 64 lanes x (1 ld-addressing unit +
  // 1 explicit ctx.alu unit) x nblocks.
  EXPECT_DOUBLE_EQ(load.alu_units, 2.0 * 64 * nblocks);
  EXPECT_GT(load.gmem_requests, 0u);
  EXPECT_EQ(staging.gmem_requests, 0u);  // pure shared stage
  EXPECT_GT(staging.smem_requests, 0u);

  // Barrier waves: the unscoped syncthreads and the one inside "tree".
  EXPECT_EQ(unscoped.barriers, nblocks);
  EXPECT_EQ(tree.barriers, nblocks);
  EXPECT_EQ(store.barriers, 0u);

  // Divergence: "tree" runs 16 of 32 lanes in warp 0 only -> one
  // half-occupancy epoch per block, 50% divergence. "store" runs a single
  // lane. Full-warp stages report the residual tail only.
  EXPECT_EQ(tree.lane_hist[16], nblocks);
  EXPECT_DOUBLE_EQ(stage_divergence(tree), 0.5);
  EXPECT_EQ(store.lane_hist[1], nblocks);
  EXPECT_EQ(staging.lane_hist[32], 2u * nblocks);  // both warps, every lane

  // Per-stage totals partition the whole-launch counters exactly.
  StageStats sum;
  for (const StageTable::Row& r : p.rows()) sum += r.stats;
  EXPECT_EQ(sum.gmem_requests, stats.gmem_requests);
  EXPECT_EQ(sum.gmem_segments, stats.gmem_segments);
  EXPECT_EQ(sum.gmem_bytes, stats.gmem_bytes);
  EXPECT_EQ(sum.smem_requests, stats.smem_requests);
  EXPECT_EQ(sum.smem_cycles, stats.smem_cycles);
  EXPECT_EQ(sum.barriers, stats.barriers);
  EXPECT_EQ(sum.syncwarps, stats.syncwarps);
}

TEST(Profiler, ScopeNestingRestoresOuterStage) {
  gpusim::Device dev;
  gpusim::SimOptions opts;
  opts.profile = true;
  opts.sim_threads = 1;
  const auto stats = gpusim::launch(
      dev, {1}, {32}, 0,
      [](gpusim::ThreadCtx& ctx) {
        auto outer = ctx.prof_scope("outer");
        ctx.alu(1.0);
        {
          auto inner = ctx.prof_scope("inner");
          ctx.alu(2.0);
        }
        ctx.alu(4.0);  // inner closed: must book to "outer" again
      },
      opts);
  ASSERT_NE(stats.profile.find("outer"), nullptr);
  ASSERT_NE(stats.profile.find("inner"), nullptr);
  EXPECT_DOUBLE_EQ(stats.profile.find("outer")->stats.alu_units, 32.0 * 5.0);
  EXPECT_DOUBLE_EQ(stats.profile.find("inner")->stats.alu_units, 32.0 * 2.0);
}

TEST(Profiler, PerStageTotalsAreDeterministicAcrossSimThreads) {
  // The PR-1 contract extended to the profile: block tables merge in
  // flattened block order, so the serialized section — including the
  // alu_units doubles — is bit-identical for any worker count.
  const auto serial = run_profiled_kernel(8, 1, /*profile=*/true);
  const auto sharded = run_profiled_kernel(8, 4, /*profile=*/true);
  EXPECT_EQ(profile_to_json(serial.profile).dump(2),
            profile_to_json(sharded.profile).dump(2));
}

}  // namespace
}  // namespace accred::obs
