#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace accred::obs {
namespace {

TEST(CounterTest, AccumulatesAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 4000u);
}

TEST(GaugeTest, MaxOfIsCommutative) {
  Gauge a, b;
  for (std::int64_t v : {3, 9, 1, 7}) a.max_of(v);
  for (std::int64_t v : {7, 1, 9, 3}) b.max_of(v);
  EXPECT_EQ(a.value(), 9);
  EXPECT_EQ(b.value(), 9);
  a.set(-2);
  EXPECT_EQ(a.value(), -2);
}

TEST(HistogramTest, SmallUnitsGetExactSingletonBuckets) {
  for (std::uint64_t u = 0; u < Histogram::kSubBuckets; ++u) {
    EXPECT_EQ(Histogram::bucket_index(u), u);
    EXPECT_EQ(Histogram::bucket_lower_bound(static_cast<std::uint32_t>(u)), u);
  }
}

TEST(HistogramTest, BucketIndexAndLowerBoundAreConsistent) {
  // lower_bound(index(u)) <= u, and u is strictly below the next bucket's
  // lower bound: the mapping partitions the axis.
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> probes = {16, 17, 31, 32, 1000, 123456789,
                                       (std::uint64_t{1} << 63) + 5,
                                       ~std::uint64_t{0}};
  for (int i = 0; i < 2000; ++i) probes.push_back(rng());
  for (std::uint64_t u : probes) {
    const std::uint32_t idx = Histogram::bucket_index(u);
    ASSERT_LT(idx, Histogram::kBuckets) << "u=" << u;
    EXPECT_LE(Histogram::bucket_lower_bound(idx), u) << "u=" << u;
    if (idx + 1 < Histogram::kBuckets) {
      EXPECT_GT(Histogram::bucket_lower_bound(idx + 1), u) << "u=" << u;
    }
  }
  // Lower bounds are strictly increasing across the whole range.
  for (std::uint32_t i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_GT(Histogram::bucket_lower_bound(i),
              Histogram::bucket_lower_bound(i - 1));
  }
}

TEST(HistogramTest, StatsAndPercentilesOnKnownData) {
  Histogram h;  // scale 1: values are units
  for (std::uint64_t u = 1; u <= 10; ++u) h.record_units(u);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum_units(), 55u);
  EXPECT_EQ(h.min_units(), 1u);
  EXPECT_EQ(h.max_units(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
  // Units < 16 are exact, so percentiles are the exact order statistics
  // (rank = ceil(q * 10)).
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h(1e6);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_units(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(HistogramTest, ScaleConvertsValuesToUnits) {
  Histogram h(1e6);  // milliseconds recorded, nanoseconds stored
  h.record(0.000001);  // 1 ns
  h.record(0.5);       // 500000 ns
  h.record(-3.0);      // clamps to 0
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_units(), 0u);
  EXPECT_EQ(h.max_units(), 500000u);
  EXPECT_EQ(h.sum_units(), 500001u);
  // p100 reports the exact observed maximum (clamped, not the covering
  // bucket's lower bound) scaled back to ms.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.5);
}

TEST(HistogramTest, TopQuantilesClampToObservedMax) {
  // 503 is inside bucket [496, 528): the unclamped lower bound would
  // under-report p100 by 7 units. Any quantile whose rank lands in the
  // max's bucket must report the max itself, never below it.
  Histogram h;
  h.record_units(503);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 503.0) << "q=" << q;
  }
  for (int i = 0; i < 99; ++i) h.record_units(1);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 503.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.999), 503.0);  // rank 100 = the max
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
}

TEST(HistogramTest, LowQuantilesClampToObservedMin) {
  // Both values land in bucket [496, 528); the bucket lower bound (496)
  // is below the observed min, so p0 must clamp up to it.
  Histogram h;
  h.record_units(500);
  h.record_units(520);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 500.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 520.0);
}

TEST(HistogramTest, FeedOrderNeverShows) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> values(500);
  for (auto& v : values) v = rng() % 100000;
  Histogram a, b;
  for (auto v : values) a.record_units(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    b.record_units(*it);
  }
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_DOUBLE_EQ(a.percentile(0.5), b.percentile(0.5));
  EXPECT_DOUBLE_EQ(a.percentile(0.99), b.percentile(0.99));
}

TEST(HistogramTest, MergeMatchesSingleFeed) {
  Histogram whole, left, right;
  for (std::uint64_t u = 0; u < 300; ++u) {
    whole.record_units(u * 37);
    (u % 2 ? left : right).record_units(u * 37);
  }
  Histogram merged;
  merged.merge(left);
  merged.merge(right);
  EXPECT_EQ(merged.to_json().dump(), whole.to_json().dump());
}

TEST(HistogramTest, JsonRoundTrip) {
  Histogram h(1e6);
  for (std::uint64_t u : {0ull, 1ull, 15ull, 16ull, 1000ull, 999999999ull}) {
    h.record_units(u);
  }
  const Json j = h.to_json();
  const Histogram back = Histogram::from_json(Json::parse(j.dump()));
  EXPECT_EQ(back.to_json().dump(), j.dump());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.sum_units(), h.sum_units());
  EXPECT_DOUBLE_EQ(back.percentile(0.5), h.percentile(0.5));
}

TEST(HistogramTest, FromJsonRejectsMalformedInput) {
  Histogram h;
  h.record_units(3);
  Json j = h.to_json();
  j.set("count", std::int64_t{99});  // count no longer matches buckets
  EXPECT_THROW((void)Histogram::from_json(j), std::runtime_error);
  EXPECT_THROW((void)Histogram::from_json(Json::object()), std::runtime_error);
}

TEST(RegistryTest, InternReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("service/jobs");
  c1.add(3);
  Counter& c2 = reg.counter("service/jobs");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);
  Histogram& h1 = reg.histogram("service/queue_wait_ms", 1e6);
  Histogram& h2 = reg.histogram("service/queue_wait_ms", 1.0);  // scale ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_DOUBLE_EQ(h2.scale(), 1e6);
}

TEST(RegistryTest, FindDoesNotIntern) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  (void)reg.counter("present");
  EXPECT_NE(reg.find_counter("present"), nullptr);
  EXPECT_EQ(reg.find_gauge("present"), nullptr);
}

TEST(RegistryTest, JsonIsNameSortedAndInternOrderIndependent) {
  MetricsRegistry a, b;
  a.counter("z/count").add(1);
  a.counter("a/count").add(2);
  a.gauge("depth").set(4);
  a.histogram("lat_ms", 1e6).record_units(17);

  b.histogram("lat_ms", 1e6).record_units(17);
  b.gauge("depth").set(4);
  b.counter("a/count").add(2);
  b.counter("z/count").add(1);

  const std::string da = a.to_json().dump();
  EXPECT_EQ(da, b.to_json().dump());
  // Name-sorted within the counters section.
  EXPECT_LT(da.find("\"a/count\""), da.find("\"z/count\""));
}

TEST(RegistryTest, EmptySectionsAreOmitted) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.to_json().dump(), "{}");
  (void)reg.counter("only");
  const std::string d = reg.to_json().dump();
  EXPECT_NE(d.find("counters"), std::string::npos);
  EXPECT_EQ(d.find("gauges"), std::string::npos);
  EXPECT_EQ(d.find("histograms"), std::string::npos);
}

}  // namespace
}  // namespace accred::obs
