// obs/trace.hpp: the exported trace must be valid chrome://tracing JSON
// with balanced B/E spans, and the gpusim launch driver must emit the
// kernel / shard / block events the DESIGN.md §8 contract promises.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "gpusim/launch.hpp"
#include "obs/json.hpp"

namespace accred::obs {
namespace {

class TraceTest : public ::testing::Test {
protected:
  void SetUp() override { trace_reset(); }
  void TearDown() override { trace_reset(); }
};

Json load_trace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return Json::parse(ss.str());
}

TEST_F(TraceTest, DisabledByDefaultAndEmitsNothing) {
  EXPECT_FALSE(trace_enabled());
  trace_begin("ignored", 0);
  trace_end(0);
  EXPECT_FALSE(trace_flush());  // nothing armed, nothing written
}

TEST_F(TraceTest, ConfigureArmsAndEmptyPathDisarms) {
  trace_configure("/tmp/accred_trace_arm.json");
  EXPECT_TRUE(trace_enabled());
  EXPECT_EQ(trace_path(), "/tmp/accred_trace_arm.json");
  trace_configure("");
  EXPECT_FALSE(trace_enabled());
}

TEST_F(TraceTest, LaunchProducesBalancedWellFormedTrace) {
  const std::string path = ::testing::TempDir() + "accred_trace_test.json";
  std::remove(path.c_str());
  trace_configure(path);

  gpusim::Device dev;
  auto out = dev.alloc<int>(1);
  auto ov = out.view();
  gpusim::SimOptions opts;
  opts.label = "trace_test_kernel";
  opts.sim_threads = 2;
  (void)gpusim::launch(dev, {8}, {64}, 0,
                       [&](gpusim::ThreadCtx& ctx) {
                         ctx.syncthreads();
                         if (ctx.linear_tid() == 0 && ctx.blockIdx.x == 0) {
                           ctx.st(ov, 0, 1);
                         }
                       },
                       opts);
  ASSERT_TRUE(trace_flush());

  const Json doc = load_trace(path);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").elements();
  ASSERT_FALSE(events.empty());

  std::map<std::int64_t, int> open_spans;  // tid -> nesting depth
  int kernel_begins = 0;
  int block_completes = 0;
  int shard_completes = 0;
  int counters = 0;
  for (const Json& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    const std::int64_t tid = ev.at("tid").as_int();
    EXPECT_EQ(ev.at("pid").as_int(), 1);
    EXPECT_GE(ev.at("ts").as_double(), 0.0);
    if (ph == "B") {
      open_spans[tid] += 1;
      if (ev.at("name").as_string() == "trace_test_kernel") {
        kernel_begins += 1;
        EXPECT_DOUBLE_EQ(ev.at("args").at("blocks").as_double(), 8.0);
        EXPECT_DOUBLE_EQ(ev.at("args").at("threads").as_double(), 64.0);
      }
    } else if (ph == "E") {
      open_spans[tid] -= 1;
      EXPECT_GE(open_spans[tid], 0) << "E without B on tid " << tid;
    } else if (ph == "X") {
      EXPECT_GE(ev.at("dur").as_double(), 0.0);
      const std::string& name = ev.at("name").as_string();
      if (name == "block") block_completes += 1;
      if (name == "shard") shard_completes += 1;
    } else if (ph == "C") {
      counters += 1;
    } else {
      ADD_FAILURE() << "unexpected phase " << ph;
    }
  }
  for (const auto& [tid, depth] : open_spans) {
    EXPECT_EQ(depth, 0) << "unbalanced span on tid " << tid;
  }
  EXPECT_EQ(kernel_begins, 1);
  EXPECT_EQ(block_completes, 8);
  EXPECT_EQ(shard_completes, 2);
  EXPECT_GE(counters, 2);  // modeled_device_ms + barrier_waves

  // flush() drained the buffer: a second flush writes an empty trace.
  ASSERT_TRUE(trace_flush());
  EXPECT_EQ(load_trace(path).at("traceEvents").size(), 0u);
  std::remove(path.c_str());
}

TEST_F(TraceTest, FaultingLaunchStillFlushesBalancedTrace) {
  // The rethrow path in launch(): a device-side fault must close the
  // kernel span before propagating, so the flushed trace stays balanced
  // and parseable even though the launch never returned.
  const std::string path = ::testing::TempDir() + "accred_trace_fault.json";
  std::remove(path.c_str());
  trace_configure(path);

  gpusim::Device dev;
  gpusim::SimOptions opts;
  opts.label = "faulting_kernel";
  opts.strict_barriers = true;
  opts.sim_threads = 2;
  EXPECT_THROW(gpusim::launch(
                   dev, {4}, {64}, 0,
                   [](gpusim::ThreadCtx& ctx) {
                     // Barrier under exit divergence: strict mode faults.
                     if (ctx.threadIdx.x % 2 == 0) return;
                     ctx.syncthreads();
                   },
                   opts),
               std::runtime_error);
  ASSERT_TRUE(trace_flush());

  const Json doc = load_trace(path);
  const auto& events = doc.at("traceEvents").elements();
  ASSERT_FALSE(events.empty());
  std::map<std::int64_t, int> open_spans;
  bool kernel_seen = false;
  for (const Json& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    const std::int64_t tid = ev.at("tid").as_int();
    if (ph == "B") {
      open_spans[tid] += 1;
      if (ev.at("name").as_string() == "faulting_kernel") kernel_seen = true;
    } else if (ph == "E") {
      open_spans[tid] -= 1;
      EXPECT_GE(open_spans[tid], 0) << "E without B on tid " << tid;
    }
  }
  EXPECT_TRUE(kernel_seen);
  for (const auto& [tid, depth] : open_spans) {
    EXPECT_EQ(depth, 0) << "unbalanced span on tid " << tid;
  }
  std::remove(path.c_str());
}

TEST_F(TraceTest, EnvVariableArmsWhenFlagAbsent) {
  // Flag beats env: once armed, the env var must not re-route the output.
  trace_configure("/tmp/accred_trace_flag.json");
  trace_configure_from_env();
  EXPECT_EQ(trace_path(), "/tmp/accred_trace_flag.json");
}

TEST_F(TraceTest, CounterAndSpanHelpers) {
  const std::string path = ::testing::TempDir() + "accred_trace_span.json";
  std::remove(path.c_str());
  trace_configure(path);
  {
    TraceSpan span("outer", 7, {{"k", 1.0}});
    trace_counter("gauge", 42.0);
  }
  ASSERT_TRUE(trace_flush());
  const Json doc = load_trace(path);
  const auto& events = doc.at("traceEvents").elements();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("ph").as_string(), "B");
  EXPECT_EQ(events[0].at("name").as_string(), "outer");
  EXPECT_EQ(events[1].at("ph").as_string(), "C");
  EXPECT_DOUBLE_EQ(events[1].at("args").at("value").as_double(), 42.0);
  EXPECT_EQ(events[2].at("ph").as_string(), "E");
  EXPECT_EQ(events[2].at("tid").as_int(), 7);
  std::remove(path.c_str());
}

TEST_F(TraceTest, ThreadNamesEmitSortedMetadataAheadOfSpans) {
  const std::string path = ::testing::TempDir() + "accred_trace_names.json";
  std::remove(path.c_str());
  trace_configure(path);
  trace_set_thread_name(1001, "worker-1");
  trace_set_thread_name(900, "dispatcher");
  trace_set_thread_name(1001, "worker-1-renamed");  // last write wins
  trace_complete("execute", 1001, 0.0, 5.0);
  ASSERT_TRUE(trace_flush());

  const Json doc = load_trace(path);
  const auto& events = doc.at("traceEvents").elements();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("ph").as_string(), "M");
  EXPECT_EQ(events[0].at("name").as_string(), "thread_name");
  EXPECT_EQ(events[0].at("tid").as_int(), 900);
  EXPECT_EQ(events[0].at("args").at("name").as_string(), "dispatcher");
  EXPECT_EQ(events[1].at("ph").as_string(), "M");
  EXPECT_EQ(events[1].at("tid").as_int(), 1001);
  EXPECT_EQ(events[1].at("args").at("name").as_string(), "worker-1-renamed");
  EXPECT_EQ(events[2].at("ph").as_string(), "X");
  std::remove(path.c_str());
}

TEST_F(TraceTest, CompleteEventCarriesStringArgs) {
  const std::string path = ::testing::TempDir() + "accred_trace_sargs.json";
  std::remove(path.c_str());
  trace_configure(path);
  trace_complete("submit", 900, 1.0, 2.0, {{"job", 3.0}},
                 {{"tenant", "analytics"}, {"plan", "hit"}});
  ASSERT_TRUE(trace_flush());

  const Json doc = load_trace(path);
  const auto& events = doc.at("traceEvents").elements();
  ASSERT_EQ(events.size(), 1u);
  const Json& args = events[0].at("args");
  EXPECT_DOUBLE_EQ(args.at("job").as_double(), 3.0);
  EXPECT_EQ(args.at("tenant").as_string(), "analytics");
  EXPECT_EQ(args.at("plan").as_string(), "hit");
  std::remove(path.c_str());
}

TEST_F(TraceTest, ThreadNamesIgnoredWhenDisarmed) {
  trace_set_thread_name(5, "ghost");
  const std::string path = ::testing::TempDir() + "accred_trace_ghost.json";
  std::remove(path.c_str());
  trace_configure(path);
  trace_counter("tick", 1.0);
  ASSERT_TRUE(trace_flush());
  const Json doc = load_trace(path);
  const auto& events = doc.at("traceEvents").elements();
  ASSERT_EQ(events.size(), 1u);  // no M event for the pre-arm name
  EXPECT_EQ(events[0].at("ph").as_string(), "C");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace accred::obs
