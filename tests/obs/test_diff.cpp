// obs/diff.hpp: the CI regression gate. Exit codes are contract — 0 pass,
// 1 regression past tolerance, 2 not-comparable — and the metric naming
// conventions decide
// which direction counts as worse (wall_* skipped; eff / occupancy /
// hit_rate / jobs_per_sec higher-is-better).
#include "obs/diff.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "obs/record.hpp"

namespace accred::obs {
namespace {

Json make_record(double device_ms, double eff = 0.9,
                 double wall_ms = 100.0) {
  RunRecord rec("gate_bench");
  rec.entry("row")
      .metric("device_ms", device_ms)
      .metric("coalescing_efficiency", eff)
      .metric("wall_ms", wall_ms);
  return rec.to_json();
}

TEST(Diff, IdenticalRecordsPass) {
  const Json base = make_record(2.0);
  const DiffReport r = diff_records(base, base);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.regressions(), 0u);
  // wall_ms is informational: only the two gated metrics are compared.
  EXPECT_EQ(r.lines.size(), 2u);
}

TEST(Diff, DoubledModeledTimeFailsAtDefaultTolerance) {
  const DiffReport r = diff_records(make_record(2.0), make_record(4.0));
  EXPECT_EQ(r.exit_code, 1);
  ASSERT_EQ(r.regressions(), 1u);
  const DiffLine* reg = nullptr;
  for (const DiffLine& line : r.lines) {
    if (line.status == DiffLine::Status::kRegression) reg = &line;
  }
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->metric, "device_ms");
  EXPECT_DOUBLE_EQ(reg->rel_change, 1.0);  // +100% in the worse direction
}

TEST(Diff, RegressionWithinTolerancePasses) {
  DiffOptions opts;
  opts.tolerance = 0.25;
  const DiffReport r =
      diff_records(make_record(2.0), make_record(2.4), opts);
  EXPECT_EQ(r.exit_code, 0);
}

TEST(Diff, ImprovementPasses) {
  const DiffReport r = diff_records(make_record(4.0), make_record(2.0));
  EXPECT_EQ(r.exit_code, 0);
  bool improved = false;
  for (const DiffLine& line : r.lines) {
    if (line.status == DiffLine::Status::kImproved) improved = true;
  }
  EXPECT_TRUE(improved);
}

TEST(Diff, EfficiencyDropIsARegression) {
  // Lower efficiency is worse even though the number went down.
  const DiffReport r =
      diff_records(make_record(2.0, 0.9), make_record(2.0, 0.4));
  EXPECT_EQ(r.exit_code, 1);
  ASSERT_EQ(r.regressions(), 1u);
}

TEST(Diff, WallTimeIsNeverGated) {
  const DiffReport r =
      diff_records(make_record(2.0, 0.9, 100.0), make_record(2.0, 0.9, 9000.0));
  EXPECT_EQ(r.exit_code, 0);
}

TEST(Diff, MetricNameConventions) {
  EXPECT_FALSE(metric_is_gated("wall_ms"));
  EXPECT_FALSE(metric_is_gated("wall_time_ms"));
  EXPECT_TRUE(metric_is_gated("device_ms"));
  EXPECT_TRUE(metric_higher_is_better("coalescing_efficiency"));
  EXPECT_TRUE(metric_higher_is_better("sm_occupancy"));
  EXPECT_TRUE(metric_higher_is_better("cache_hit_rate"));
  EXPECT_TRUE(metric_higher_is_better("wall_jobs_per_sec"));
  EXPECT_FALSE(metric_is_gated("wall_jobs_per_sec"));
  EXPECT_FALSE(metric_higher_is_better("device_ms"));
  EXPECT_FALSE(metric_higher_is_better("barriers"));
  EXPECT_FALSE(metric_higher_is_better("cache_misses"));
  // Latency names are lower-is-better even when another pattern matches:
  // the "_ms" / percentile guard wins first.
  EXPECT_FALSE(metric_higher_is_better("queue_wait_p99_ms"));
  EXPECT_FALSE(metric_higher_is_better("e2e_p50_ms"));
  EXPECT_FALSE(metric_higher_is_better("effective_latency_ms"));
  EXPECT_TRUE(metric_is_gated("queue_wait_p99_ms"));
}

// A dropping hit rate must read as the regression (polarity), and a rising
// one as the improvement — the service gate depends on this.
TEST(Diff, HitRateRegressionPolarity) {
  auto rec = [](double rate) {
    RunRecord r("gate_bench");
    r.entry("row").metric("cache_hit_rate", rate);
    return r.to_json();
  };
  const DiffReport worse =
      diff_records(rec(0.95), rec(0.50), DiffOptions{0.25});
  EXPECT_EQ(worse.exit_code, 1);
  const DiffReport better =
      diff_records(rec(0.95), rec(1.0), DiffOptions{0.25});
  EXPECT_EQ(better.exit_code, 0);
}

TEST(Diff, FutureSchemaVersionIsNotComparable) {
  Json base = make_record(2.0);
  Json cur = make_record(2.0);
  cur.set("schema_version", kBenchSchemaVersion + 1);
  const DiffReport r = diff_records(base, cur);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_FALSE(r.schema_error.empty());
}

TEST(Diff, V1BaselineAgainstCurrentExitsTwo) {
  // The concrete migration case: a committed pre-profiler baseline
  // (schema_version 1) predates the compat floor and must refuse to
  // compare, not silently pass — baselines have to be regenerated.
  Json base = make_record(2.0);
  base.set("schema_version", std::int64_t{1});
  static_assert(kBenchSchemaCompatVersion == 2);
  const DiffReport r = diff_records(base, make_record(2.0));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_FALSE(r.schema_error.empty());
}

TEST(Diff, V2BaselineAgainstV3CurrentStaysComparable) {
  // v3 only adds the optional "telemetry" section, so a committed v2
  // baseline still gates a v3 record — with a cross-version note, and
  // regressions still detected.
  static_assert(kBenchSchemaVersion == 3);
  Json base = make_record(2.0);
  base.set("schema_version", std::int64_t{2});
  const DiffReport same = diff_records(base, make_record(2.0));
  EXPECT_EQ(same.exit_code, 0);
  ASSERT_FALSE(same.notes.empty());
  EXPECT_NE(same.notes[0].find("cross-version"), std::string::npos);
  EXPECT_EQ(diff_records(base, make_record(4.0)).exit_code, 1);
  // And symmetrically: a v3 baseline against a v2 current.
  Json old_cur = make_record(2.0);
  old_cur.set("schema_version", std::int64_t{2});
  EXPECT_EQ(diff_records(make_record(2.0), old_cur).exit_code, 0);
}

TEST(Diff, BenchNameMismatchIsNotComparable) {
  Json cur = make_record(2.0);
  cur.set("bench", "some_other_bench");
  EXPECT_EQ(diff_records(make_record(2.0), cur).exit_code, 2);
}

TEST(Diff, MissingBaselineEntryIsNotComparable) {
  RunRecord cur("gate_bench");
  cur.entry("different_row").metric("device_ms", 2.0);
  const DiffReport r = diff_records(make_record(2.0), cur.to_json());
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Diff, NewCurrentEntryIsANoteNotAnError) {
  RunRecord cur("gate_bench");
  cur.entry("row")
      .metric("device_ms", 2.0)
      .metric("coalescing_efficiency", 0.9)
      .metric("wall_ms", 100.0);
  cur.entry("brand_new_row").metric("device_ms", 1.0);
  const DiffReport r = diff_records(make_record(2.0), cur.to_json());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_FALSE(r.notes.empty());
}

TEST(Diff, FilesRoundTrip) {
  const std::string base_path = ::testing::TempDir() + "accred_diff_base.json";
  const std::string cur_path = ::testing::TempDir() + "accred_diff_cur.json";
  {
    std::ofstream(base_path) << make_record(2.0).dump(2);
    std::ofstream(cur_path) << make_record(4.0).dump(2);
  }
  EXPECT_EQ(diff_files(base_path, cur_path).exit_code, 1);
  EXPECT_EQ(diff_files(base_path, base_path).exit_code, 0);
  EXPECT_EQ(diff_files("/nonexistent/x.json", cur_path).exit_code, 2);
  std::remove(base_path.c_str());
  std::remove(cur_path.c_str());
}

TEST(Diff, ToleranceParsing) {
  EXPECT_DOUBLE_EQ(parse_tolerance("25%"), 0.25);
  EXPECT_DOUBLE_EQ(parse_tolerance("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_tolerance("0"), 0.0);
  EXPECT_THROW((void)parse_tolerance("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_tolerance("-5%"), std::invalid_argument);
  EXPECT_THROW((void)parse_tolerance(""), std::invalid_argument);
}

TEST(Diff, ZeroBaselineToNonzeroIsRegression) {
  RunRecord base("gate_bench");
  base.entry("row").metric("barriers", 0.0);
  RunRecord cur("gate_bench");
  cur.entry("row").metric("barriers", 5.0);
  EXPECT_EQ(diff_records(base.to_json(), cur.to_json()).exit_code, 1);
  EXPECT_EQ(diff_records(base.to_json(), base.to_json()).exit_code, 0);
}

}  // namespace
}  // namespace accred::obs
