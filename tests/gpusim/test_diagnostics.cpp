// Failure-injection tests for the barrier diagnostics: exit divergence and
// barrier-site mismatch (the classic barrier-in-divergent-loop bug), in
// lenient and strict modes.
#include <gtest/gtest.h>

#include "gpusim/launch.hpp"

namespace accred::gpusim {
namespace {

TEST(Diagnostics, BarrierSiteMismatchDetectedStrict) {
  Device dev;
  SimOptions strict;
  strict.strict_barriers = true;
  // Half the threads run 2 barriers per "iteration", the other half 1:
  // they rendezvous at different call sites.
  EXPECT_THROW(launch(
                   dev, {1}, {64}, 0,
                   [](ThreadCtx& ctx) {
                     if (ctx.threadIdx.x < 32) {
                       ctx.syncthreads();
                       ctx.syncthreads();
                     } else {
                       ctx.syncthreads();
                     }
                   },
                   strict),
               std::runtime_error);
}

TEST(Diagnostics, BarrierSiteMismatchLenientCompletes) {
  Device dev;
  auto stats = launch(dev, {1}, {64}, 0, [](ThreadCtx& ctx) {
    if (ctx.threadIdx.x < 32) {
      ctx.syncthreads();
      ctx.syncthreads();
    } else {
      ctx.syncthreads();
    }
  });
  EXPECT_GE(stats.barriers, 1u);
}

TEST(Diagnostics, UniformBarriersInLoopAreFine) {
  Device dev;
  SimOptions strict;
  strict.strict_barriers = true;
  EXPECT_NO_THROW(launch(
      dev, {2}, {64}, 0,
      [](ThreadCtx& ctx) {
        for (int r = 0; r < 5; ++r) ctx.syncthreads();
      },
      strict));
}

TEST(Diagnostics, DivergentIterationCountsCaughtStrict) {
  // The padded-loop rule the strategies follow exists exactly because of
  // this: a barrier inside a loop whose trip count differs per thread.
  Device dev;
  SimOptions strict;
  strict.strict_barriers = true;
  EXPECT_THROW(launch(
                   dev, {1}, {8}, 0,
                   [](ThreadCtx& ctx) {
                     // Thread t runs t+1 iterations, each with a barrier.
                     for (std::uint32_t r = 0; r <= ctx.threadIdx.x; ++r) {
                       ctx.syncthreads();
                     }
                   },
                   strict),
               std::runtime_error);
}

TEST(Diagnostics, ExitDivergenceStillCaught) {
  Device dev;
  SimOptions strict;
  strict.strict_barriers = true;
  EXPECT_THROW(launch(
                   dev, {1}, {64}, 0,
                   [](ThreadCtx& ctx) {
                     if (ctx.threadIdx.x % 2 == 0) return;
                     ctx.syncthreads();
                   },
                   strict),
               std::runtime_error);
}

}  // namespace
}  // namespace accred::gpusim
