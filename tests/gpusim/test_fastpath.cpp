// Determinism matrix for the converged-warp fast path (DESIGN.md §12):
// the chained interpreter must produce bit-identical LaunchStats, per-stage
// profiles, racecheck reports, and fault-injection events for every
// {fastpath on/off} x {sim_threads 1/4} combination — the hard contract
// that lets the fast path default to on. Also re-exercises the PR-4 style
// barrier-deletion mutant under both execution modes.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "gpusim/launch.hpp"
#include "gpusim/pool.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "reduce/tree.hpp"

namespace accred {
namespace {

using gpusim::Device;
using gpusim::LaunchStats;
using gpusim::SimOptions;
using gpusim::ThreadCtx;

/// Everything the fast-path contract gates, folded into one comparable
/// string. Doubles print as hexfloat so "identical" means bit-identical.
std::string fingerprint(const LaunchStats& s) {
  std::ostringstream os;
  os << std::hexfloat;
  os << s.blocks << '|' << s.threads << '|' << s.gmem_requests << '|'
     << s.gmem_segments << '|' << s.gmem_bytes << '|' << s.smem_requests
     << '|' << s.smem_cycles << '|' << s.barriers << '|' << s.syncwarps
     << '|' << s.alu_units << '|' << s.device_time_ns << '|'
     << s.barrier_exit_divergence << '|' << s.barrier_site_mismatch << '\n';
  os << obs::profile_to_json(s.profile).dump() << '\n';
  os << "races=" << s.races << '\n';
  for (const gpusim::RaceReport& r : s.race_reports) {
    os << to_string(r) << '\n';
  }
  os << "faults_armed=" << (s.faults_armed ? 1 : 0) << '\n';
  for (const gpusim::FaultEvent& e : s.fault_events) {
    os << to_string(e) << '\n';
  }
  return os.str();
}

/// Divergent tree reduction exercising every gated output: a grid-stride
/// load loop with lane-dependent extra work (intra-warp divergence), shared
/// staging, the warp-synchronous tree tail (syncthreads + syncwarp), and
/// prof_scope stages for the profiler / racecheck / fault attribution.
struct DivergentTreeFixture {
  static constexpr std::int64_t kBlocks = 48;
  static constexpr std::int64_t kThreads = 128;
  static constexpr std::int64_t kN = 1 << 15;

  Device dev;
  gpusim::DeviceBuffer<float> data{dev.alloc<float>(kN)};
  gpusim::DeviceBuffer<float> out{
      dev.alloc<float>(static_cast<std::size_t>(kBlocks))};
  gpusim::SharedLayout layout;
  gpusim::SharedView<float> sbuf{
      layout.add<float>(static_cast<std::size_t>(kThreads))};
  acc::RuntimeOp<float> rop{acc::ReductionOp::kSum};

  DivergentTreeFixture() {
    auto host = data.host_span();
    for (std::int64_t i = 0; i < kN; ++i) {
      host[static_cast<std::size_t>(i)] =
          0.125F * static_cast<float>(i % 193) - 7.0F;
    }
  }

  LaunchStats run(bool fastpath, std::uint32_t sim_threads,
                  const std::string& faults = {}) {
    out.fill(0.0F);
    auto dv = data.view();
    auto ov = out.view();
    auto sb = sbuf;
    auto op = rop;
    SimOptions opts;
    opts.fastpath = fastpath;
    opts.sim_threads = sim_threads;
    opts.profile = true;
    opts.racecheck = true;
    opts.faults = faults;
    return gpusim::launch(
        dev, {static_cast<std::uint32_t>(kBlocks)},
        {static_cast<std::uint32_t>(kThreads)}, layout.bytes(),
        [=](ThreadCtx& ctx) {
          float priv = 0;
          {
            auto s = ctx.prof_scope("load");
            for (std::int64_t i =
                     ctx.blockIdx.x * kThreads + ctx.threadIdx.x;
                 i < kN; i += kBlocks * kThreads) {
              priv += ctx.ld(dv, static_cast<std::size_t>(i));
            }
            // Lane-dependent divergence: a third of each warp does extra
            // reads and ALU work, so the fast path crosses reconvergence
            // points with lanes in different states.
            if (ctx.threadIdx.x % 3 == 0) {
              priv += ctx.ld(dv, ctx.threadIdx.x);
              ctx.alu(2.0);
            }
          }
          {
            auto s = ctx.prof_scope("stage");
            ctx.sts(sb, ctx.threadIdx.x, priv);
          }
          reduce::block_tree_reduce(ctx, sb, 0, kThreads, 1, ctx.threadIdx.x,
                                    op);
          if (ctx.linear_tid() == 0) {
            ctx.st(ov, ctx.blockIdx.x, ctx.lds(sb, 0));
          }
        },
        opts);
  }

  std::vector<float> partials() const {
    return {out.host_span().begin(), out.host_span().end()};
  }
};

TEST(Fastpath, DeterminismMatrixBitIdentical) {
  DivergentTreeFixture fix;
  const LaunchStats ref = fix.run(/*fastpath=*/false, /*sim_threads=*/1);
  const std::string ref_fp = fingerprint(ref);
  const std::vector<float> ref_out = fix.partials();
  EXPECT_GT(ref.barriers, 0U);
  EXPECT_GT(ref.syncwarps, 0U);
  EXPECT_FALSE(ref.profile.empty());
  EXPECT_EQ(ref.races, 0U);  // the clean kernel must stay clean

  for (bool fast : {false, true}) {
    for (std::uint32_t threads : {1U, 4U}) {
      const LaunchStats got = fix.run(fast, threads);
      EXPECT_EQ(ref_fp, fingerprint(got))
          << "fastpath=" << fast << " sim_threads=" << threads;
      const std::vector<float> out = fix.partials();
      ASSERT_EQ(ref_out.size(), out.size());
      EXPECT_EQ(0, std::memcmp(ref_out.data(), out.data(),
                               ref_out.size() * sizeof(float)))
          << "fastpath=" << fast << " sim_threads=" << threads;
    }
  }
}

TEST(Fastpath, FaultCampaignEventsIdenticalAcrossModes) {
  // A two-fault campaign: a seeded bit flip in the load stage of block 2
  // and a dropped barrier in block 7's tree stage. Event lists, race
  // reports (the skipped barrier races), and the lenient-mode diagnostic
  // counters must be identical for every matrix cell.
  const std::string campaign =
      "bitflip@load:block=2,nth=1,seed=9;skip_barrier@tree:block=7,warp=0";
  DivergentTreeFixture fix;
  const LaunchStats ref = fix.run(false, 1, campaign);
  const std::string ref_fp = fingerprint(ref);
  EXPECT_TRUE(ref.faults_armed);
  EXPECT_FALSE(ref.fault_events.empty());

  for (bool fast : {false, true}) {
    for (std::uint32_t threads : {1U, 4U}) {
      const LaunchStats got = fix.run(fast, threads, campaign);
      EXPECT_EQ(ref_fp, fingerprint(got))
          << "fastpath=" << fast << " sim_threads=" << threads;
    }
  }
}

TEST(Fastpath, BarrierDeletionMutantRacesIdenticallyAcrossModes) {
  // The PR-4 style mutant: a hand-rolled tree that drops syncthreads while
  // multiple warps still participate. Racecheck must flag the same races —
  // same count, same first reports, same stage attribution — whether the
  // block runs chained or through the classic per-lane resume loop.
  Device dev;
  constexpr std::uint32_t kThreads = 128;
  auto out = dev.alloc<float>(4);
  gpusim::SharedLayout layout;
  auto sb = layout.add<float>(kThreads);
  auto ov = out.view();

  auto run = [&](bool fastpath, std::uint32_t sim_threads) {
    out.fill(0.0F);
    SimOptions opts;
    opts.fastpath = fastpath;
    opts.sim_threads = sim_threads;
    opts.racecheck = true;
    opts.profile = true;
    return gpusim::launch(
        dev, {4}, {kThreads}, layout.bytes(),
        [=](ThreadCtx& ctx) {
          auto s = ctx.prof_scope("mutant_tree");
          const std::uint32_t t = ctx.threadIdx.x;
          ctx.sts(sb, t, static_cast<float>(t % 7));
          ctx.syncthreads();
          for (std::uint32_t stride = kThreads / 2; stride >= 1;
               stride /= 2) {
            if (t < stride) {
              const float a = ctx.lds(sb, t);
              const float b = ctx.lds(sb, t + stride);
              ctx.sts(sb, t, a + b);
            }
            // Deliberate mutation: no syncthreads between multi-warp
            // strides; only the warp-synchronous tail is synchronized.
            if (stride <= 16) ctx.syncwarp();
          }
          if (t == 0) ctx.st(ov, ctx.blockIdx.x, ctx.lds(sb, 0));
        },
        opts);
  };

  const LaunchStats ref = run(false, 1);
  const std::string ref_fp = fingerprint(ref);
  EXPECT_GT(ref.races, 0U) << "the mutant must actually race";
  EXPECT_FALSE(ref.race_reports.empty());

  for (bool fast : {false, true}) {
    for (std::uint32_t threads : {1U, 4U}) {
      EXPECT_EQ(ref_fp, fingerprint(run(fast, threads)))
          << "fastpath=" << fast << " sim_threads=" << threads;
    }
  }
}

TEST(Fastpath, ProcessDefaultGatesTheLaunchOption) {
  // launch() runs chained only when SimOptions::fastpath AND the process
  // default agree; either knob must force the classic path with identical
  // results (the bisection story for --no-fastpath / ACCRED_FASTPATH=0).
  const bool saved = gpusim::default_fastpath();
  DivergentTreeFixture fix;
  const std::string on = fingerprint(fix.run(true, 1));

  gpusim::set_default_fastpath(false);
  const std::string forced_off = fingerprint(fix.run(true, 1));
  gpusim::set_default_fastpath(saved);

  EXPECT_EQ(on, forced_off);
  EXPECT_EQ(gpusim::default_fastpath(), saved);
}

}  // namespace
}  // namespace accred
