// Determinism guarantees: the simulator's scheduling is warp-ordered and
// repeatable, so identical launches produce bit-identical results AND
// identical cost-model statistics — the property that makes every number
// in EXPERIMENTS.md reproducible.
#include <gtest/gtest.h>

#include "testsuite/runner.hpp"

namespace accred {
namespace {

testsuite::RunnerOptions fast_options() {
  testsuite::RunnerOptions o;
  o.reduction_extent = 1 << 10;
  o.config.num_gangs = 8;
  o.config.num_workers = 4;
  o.config.vector_length = 32;
  return o;
}

TEST(Determinism, RepeatedCaseRunsAreBitIdentical) {
  testsuite::Runner runner(fast_options());
  for (acc::Position pos :
       {acc::Position::kVector, acc::Position::kGangWorkerVector}) {
    const testsuite::CaseSpec spec{pos, acc::ReductionOp::kSum,
                                   acc::DataType::kFloat};
    const auto a = runner.run(acc::CompilerId::kOpenUH, spec);
    const auto b = runner.run(acc::CompilerId::kOpenUH, spec);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_DOUBLE_EQ(a.device_ms, b.device_ms) << to_string(pos);
    EXPECT_EQ(a.stats.gmem_segments, b.stats.gmem_segments);
    EXPECT_EQ(a.stats.smem_cycles, b.stats.smem_cycles);
    EXPECT_EQ(a.stats.barriers, b.stats.barriers);
    EXPECT_EQ(a.stats.syncwarps, b.stats.syncwarps);
    EXPECT_DOUBLE_EQ(a.stats.alu_units, b.stats.alu_units);
  }
}

TEST(Determinism, StatsInvariantsHold) {
  testsuite::Runner runner(fast_options());
  for (const testsuite::CaseSpec& spec : testsuite::table2_grid()) {
    const auto o = runner.run(acc::CompilerId::kOpenUH, spec);
    ASSERT_TRUE(o.verified);
    // Every warp-level request touches at least one segment; a request
    // never touches more than 33 lines (32 lanes + straddle).
    EXPECT_GE(o.stats.gmem_segments, o.stats.gmem_requests);
    EXPECT_LE(o.stats.gmem_segments, 33 * o.stats.gmem_requests);
    // Conflict-serialized cycles are bounded by 32x the requests.
    EXPECT_GE(o.stats.smem_cycles, o.stats.smem_requests);
    EXPECT_LE(o.stats.smem_cycles, 32 * o.stats.smem_requests);
    // Broadcast reads push the metric above 1 (one transaction serves
    // all 32 lanes); 32 is the hard ceiling.
    EXPECT_LE(gpusim::coalescing_efficiency(o.stats), 32.0 + 1e-9);
    EXPECT_GT(o.stats.device_time_ns, 0.0);
    EXPECT_GE(o.stats.threads, o.stats.blocks);
  }
}

TEST(Determinism, FloatResultsIdenticalAcrossRepeatedTreeRuns) {
  // Tree combination order is fixed; float results must not wobble.
  testsuite::Runner runner(fast_options());
  const testsuite::CaseSpec spec{acc::Position::kSameLineGangWorkerVector,
                                 acc::ReductionOp::kSum,
                                 acc::DataType::kFloat};
  // Run three times: verification (an exact-tolerance comparison against
  // a fixed CPU fold) must behave identically.
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(runner.run(acc::CompilerId::kOpenUH, spec).verified);
  }
}

}  // namespace
}  // namespace accred
