// Unit tests of the robustness layer (DESIGN.md §11): the fault-injection
// grammar and its deterministic firing, the launch watchdog, structured
// errors from fiber escapes and device OOM, campaign bit-identity across
// sim_threads, and the stats-identity contract (an armed-but-silent plan
// never perturbs the cost model).
#include "gpusim/faultinject.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/launch.hpp"

namespace accred::gpusim {
namespace {

// ---- spec grammar -----------------------------------------------------

TEST(FaultPlan, ParsesEveryKindAndRoundTrips) {
  const std::string spec =
      "bitflip@staging:block=3,nth=2,seed=7;"
      "skip_barrier@tree:warp=0;"
      "warp_abort:block=1,nth=100,sticky;"
      "alloc_fail@input:nth=1";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.faults().size(), 4u);

  const Fault& flip = plan.faults()[0];
  EXPECT_EQ(flip.kind, FaultKind::kBitFlip);
  EXPECT_EQ(flip.stage, "staging");
  EXPECT_EQ(flip.block, 3);
  EXPECT_EQ(flip.nth, 2u);
  EXPECT_EQ(flip.seed, 7u);
  EXPECT_FALSE(flip.sticky);

  const Fault& skip = plan.faults()[1];
  EXPECT_EQ(skip.kind, FaultKind::kSkipBarrier);
  EXPECT_EQ(skip.stage, "tree");
  EXPECT_EQ(skip.warp, 0);
  EXPECT_EQ(skip.block, -1);

  const Fault& abort_f = plan.faults()[2];
  EXPECT_EQ(abort_f.kind, FaultKind::kWarpAbort);
  EXPECT_TRUE(abort_f.sticky);

  const Fault& alloc = plan.faults()[3];
  EXPECT_EQ(alloc.kind, FaultKind::kAllocFail);
  EXPECT_EQ(alloc.stage, "input");  // the allocation label
  EXPECT_TRUE(plan.has_alloc_faults());

  // Render-and-reparse is the identity.
  EXPECT_EQ(plan.to_spec(), spec);
  EXPECT_EQ(FaultPlan::parse(plan.to_spec()).to_spec(), spec);
  // sticky_spec keeps only the sticky clause.
  EXPECT_EQ(plan.sticky_spec(), "warp_abort:block=1,nth=100,sticky");
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("cosmic_ray"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bitflip:when=later"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bitflip:block=soon"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bitflip:fuzzy"),
               std::invalid_argument);
  // Empty clauses and padding are tolerated.
  EXPECT_TRUE(FaultPlan::parse("; ;").empty());
  EXPECT_EQ(FaultPlan::parse("  bitflip ; skip_barrier ").faults().size(), 2u);
}

// ---- a small staged kernel shared by the firing tests -----------------

SimOptions fault_opts(const std::string& spec, std::uint32_t sim_threads = 1) {
  SimOptions o;
  o.faults = spec;
  o.sim_threads = sim_threads;
  return o;
}

/// 4 blocks x 64 threads: stage thread values ("staging"), tree-reduce
/// ("tree"), publish per-block results. Returns the launch stats.
LaunchStats run_staged_kernel(Device& dev, const SimOptions& opts,
                              std::vector<float>* results = nullptr) {
  constexpr std::uint32_t kN = 64;
  constexpr std::uint32_t kBlocks = 4;
  auto out = dev.alloc<float>(kBlocks);
  auto ov = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<float>(kN);
  const LaunchStats stats = launch(
      dev, {kBlocks}, {kN}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        {
          auto p = ctx.prof_scope("staging");
          ctx.sts(sbuf, i, static_cast<float>(i + 1));
          ctx.syncthreads();
        }
        auto p = ctx.prof_scope("tree");
        for (std::uint32_t stride = kN / 2; stride >= 1; stride /= 2) {
          if (i < stride) {
            const float a = ctx.lds(sbuf, i);
            const float b = ctx.lds(sbuf, i + stride);
            ctx.sts(sbuf, i, a + b);
          }
          ctx.syncthreads();
        }
        if (i == 0) ctx.st(ov, ctx.blockIdx.x, ctx.lds(sbuf, 0));
      },
      opts);
  if (results != nullptr) {
    const auto host = out.host_span();
    results->assign(host.begin(), host.end());
  }
  return stats;
}

constexpr float kCleanBlockSum = 64.0f * 65.0f / 2.0f;

TEST(FaultInject, BitflipFiresOncePerMatchingBlockAndCorrupts) {
  Device dev;
  std::vector<float> results;
  const LaunchStats stats = run_staged_kernel(
      dev, fault_opts("bitflip@staging:block=2,bit=30"), &results);
  EXPECT_TRUE(stats.faults_armed);
  ASSERT_EQ(stats.fault_events.size(), 1u);
  const FaultEvent& e = stats.fault_events[0];
  EXPECT_EQ(e.kind, FaultKind::kBitFlip);
  EXPECT_EQ(e.block.x, 2u);
  EXPECT_EQ(e.stage, "staging");
  // Only the targeted block's result is corrupted (bit 30 is a float
  // exponent bit: the change is enormous).
  EXPECT_FLOAT_EQ(results[0], kCleanBlockSum);
  EXPECT_FLOAT_EQ(results[1], kCleanBlockSum);
  EXPECT_NE(results[2], kCleanBlockSum);
  EXPECT_FLOAT_EQ(results[3], kCleanBlockSum);
}

TEST(FaultInject, StageKeyedSkipBarrierCountsMatchingArrivalsOnly) {
  // nth counts arrivals at *matching* (stage, warp) sites: nth=0 with
  // @tree skips the tree's first barrier even though the kernel ran a
  // staging barrier before it.
  Device dev;
  SimOptions o = fault_opts("skip_barrier@tree:warp=0,block=1");
  o.racecheck = true;
  const LaunchStats stats = run_staged_kernel(dev, o);
  ASSERT_EQ(stats.fault_events.size(), 1u);
  EXPECT_EQ(stats.fault_events[0].kind, FaultKind::kSkipBarrier);
  EXPECT_EQ(stats.fault_events[0].stage, "tree");
  EXPECT_EQ(stats.fault_events[0].warp, 0u);
  // Warp 0 running ahead through a deleted barrier races with warp 1.
  EXPECT_GT(stats.races, 0u);
}

TEST(FaultInject, WarpAbortThrowsInjectedErrorCarryingItsEvent) {
  Device dev;
  try {
    (void)run_staged_kernel(dev, fault_opts("warp_abort:block=1,nth=10"));
    FAIL() << "expected LaunchError{kWarpAbort}";
  } catch (const LaunchError& e) {
    EXPECT_EQ(e.info().code, LaunchErrorCode::kWarpAbort);
    EXPECT_TRUE(e.info().injected);
    EXPECT_TRUE(e.info().has_site);
    EXPECT_EQ(e.info().block.x, 1u);
    // The failed launch's stats are gone; the error carries the fired
    // event so campaign accounting survives (executor.hpp).
    ASSERT_EQ(e.info().fired.size(), 1u);
    EXPECT_EQ(e.info().fired[0].kind, FaultKind::kWarpAbort);
  }
}

TEST(FaultInject, RaceEscalationCarriesFiredEventsOnTheError) {
  // skip_barrier's only symptom is the race it causes; when error_on_race
  // escalates that race after the stats merge, the fired events must ride
  // on the thrown error or the campaign would record nothing.
  Device dev;
  SimOptions o = fault_opts("skip_barrier@tree:warp=0");
  o.racecheck = true;
  o.error_on_race = true;
  try {
    (void)run_staged_kernel(dev, o);
    FAIL() << "expected LaunchError{kRace}";
  } catch (const LaunchError& e) {
    EXPECT_EQ(e.info().code, LaunchErrorCode::kRace);
    EXPECT_FALSE(e.info().injected);  // the race itself is not the fault
    ASSERT_FALSE(e.info().fired.empty());
    EXPECT_EQ(e.info().fired[0].kind, FaultKind::kSkipBarrier);
    EXPECT_EQ(e.info().fired[0].stage, "tree");
  }
}

// ---- determinism contracts --------------------------------------------

TEST(FaultInject, CampaignIsBitIdenticalAcrossSimThreads) {
  const std::string spec = "bitflip@staging:bit=30;skip_barrier@tree:warp=1";
  std::vector<float> r1;
  std::vector<float> r4;
  Device d1;
  Device d4;
  SimOptions o1 = fault_opts(spec, 1);
  SimOptions o4 = fault_opts(spec, 4);
  o1.racecheck = o4.racecheck = true;
  const LaunchStats s1 = run_staged_kernel(d1, o1, &r1);
  const LaunchStats s4 = run_staged_kernel(d4, o4, &r4);
  EXPECT_EQ(r1, r4);  // corrupted values included, bit for bit
  EXPECT_EQ(s1.barriers, s4.barriers);
  EXPECT_EQ(s1.races, s4.races);
  EXPECT_EQ(s1.gmem_segments, s4.gmem_segments);
  EXPECT_EQ(s1.smem_cycles, s4.smem_cycles);
  EXPECT_EQ(s1.alu_units, s4.alu_units);  // exact double equality
  ASSERT_EQ(s1.fault_events.size(), s4.fault_events.size());
  for (std::size_t i = 0; i < s1.fault_events.size(); ++i) {
    EXPECT_EQ(to_string(s1.fault_events[i]), to_string(s4.fault_events[i]));
  }
}

TEST(FaultInject, ArmedButSilentPlanLeavesStatsBitIdentical) {
  // A plan whose site never matches must not perturb any modeled number —
  // the injector only hooks instrumented events it would have seen anyway.
  std::vector<float> r_off;
  std::vector<float> r_armed;
  Device d_off;
  Device d_armed;
  const LaunchStats off = run_staged_kernel(d_off, fault_opts(""), &r_off);
  const LaunchStats armed = run_staged_kernel(
      d_armed, fault_opts("bitflip@staging:block=999"), &r_armed);
  EXPECT_FALSE(off.faults_armed);
  EXPECT_TRUE(armed.faults_armed);
  EXPECT_TRUE(armed.fault_events.empty());
  EXPECT_EQ(r_off, r_armed);
  EXPECT_EQ(off.barriers, armed.barriers);
  EXPECT_EQ(off.syncwarps, armed.syncwarps);
  EXPECT_EQ(off.gmem_requests, armed.gmem_requests);
  EXPECT_EQ(off.gmem_segments, armed.gmem_segments);
  EXPECT_EQ(off.gmem_bytes, armed.gmem_bytes);
  EXPECT_EQ(off.smem_requests, armed.smem_requests);
  EXPECT_EQ(off.smem_cycles, armed.smem_cycles);
  EXPECT_EQ(off.alu_units, armed.alu_units);
  EXPECT_EQ(off.device_time_ns, armed.device_time_ns);
}

// ---- watchdog and structured escapes ----------------------------------

TEST(Watchdog, RunawayBarrierLoopTripsWithSiteCoordinates) {
  Device dev;
  SimOptions o;
  o.sim_threads = 1;
  o.max_steps = 100;
  try {
    (void)launch(
        dev, {1}, {64}, 0,
        [](ThreadCtx& ctx) {
          // A spin-on-flag loop that never exits: the lenient barrier
          // model keeps releasing the waves, so only the step budget
          // can end it.
          for (;;) ctx.syncthreads();
        },
        o);
    FAIL() << "expected LaunchError{kWatchdog}";
  } catch (const LaunchError& e) {
    EXPECT_EQ(e.info().code, LaunchErrorCode::kWatchdog);
    EXPECT_TRUE(e.info().has_site);
    EXPECT_GT(e.info().step, 100u);
    EXPECT_NE(e.info().message.find("max_steps=100"), std::string::npos)
        << e.info().message;
  }
}

TEST(Watchdog, TerminatingKernelsNeverTrip) {
  Device dev;
  SimOptions o;
  o.sim_threads = 1;
  o.max_steps = 64;  // tight, but the kernel only runs 8 waves
  const LaunchStats stats = launch(
      dev, {2}, {64}, 0,
      [](ThreadCtx& ctx) {
        for (int i = 0; i < 8; ++i) ctx.syncthreads();
      },
      o);
  EXPECT_EQ(stats.barriers, 2u * 8u);
}

TEST(StructuredErrors, NonStdExceptionEscapingAFiberBecomesDeviceFault) {
  Device dev;
  SimOptions o;
  o.sim_threads = 1;
  try {
    (void)launch(
        dev, {1}, {32}, 0, [](ThreadCtx&) { throw 42; }, o);
    FAIL() << "expected LaunchError{kDeviceFault}";
  } catch (const LaunchError& e) {
    EXPECT_EQ(e.info().code, LaunchErrorCode::kDeviceFault);
  }
}

TEST(StructuredErrors, OomReportsLabelAndLiveAllocations) {
  DeviceLimits limits;
  limits.global_mem_bytes = 1 << 20;
  Device dev(limits);
  auto keep = dev.alloc<float>(1024, "resident");
  EXPECT_EQ(dev.live_allocations(), 1u);
  try {
    (void)dev.alloc<float>(1 << 20, "huge_temp");
    FAIL() << "expected LaunchError{kOom}";
  } catch (const LaunchError& e) {
    EXPECT_EQ(e.info().code, LaunchErrorCode::kOom);
    EXPECT_FALSE(e.info().injected);
    const std::string& m = e.info().message;
    EXPECT_NE(m.find("'huge_temp'"), std::string::npos) << m;
    EXPECT_NE(m.find("4096 bytes across 1 live allocations"),
              std::string::npos)
        << m;
  }
  EXPECT_EQ(dev.live_allocations(), 1u);  // the failed alloc left no residue
}

TEST(StructuredErrors, InjectedAllocFailIsOneShot) {
  Device dev;
  dev.arm_alloc_faults(FaultPlan::parse("alloc_fail@input"));
  // Non-matching labels pass through untouched.
  auto other = dev.alloc<float>(8, "scratch");
  try {
    (void)dev.alloc<float>(8, "input");
    FAIL() << "expected injected LaunchError{kOom}";
  } catch (const LaunchError& e) {
    EXPECT_EQ(e.info().code, LaunchErrorCode::kOom);
    EXPECT_TRUE(e.info().injected);
    EXPECT_EQ(e.info().stage, "input");
  }
  // The arm disarmed when it fired: the retry allocates cleanly.
  auto retry = dev.alloc<float>(8, "input");
  EXPECT_EQ(retry.size(), 8u);
}

}  // namespace
}  // namespace accred::gpusim
