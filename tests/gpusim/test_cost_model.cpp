#include "gpusim/cost_model.hpp"

#include <gtest/gtest.h>

namespace accred::gpusim {
namespace {

class WarpLogTest : public ::testing::Test {
protected:
  CostParams params;
  WarpLog log;
  void SetUp() override { log.reset(params); }
};

TEST_F(WarpLogTest, FullyCoalescedWarpIsOneSegment) {
  // 32 lanes load consecutive 4-byte words starting at a 128B boundary.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.global_access(lane, 0x1000 + lane * 4, 4);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_requests, 1u);
  EXPECT_EQ(log.gmem_segments, 1u);
  EXPECT_EQ(log.gmem_bytes, 128u);
}

TEST_F(WarpLogTest, StridedAccessTouchesOneSegmentPerLane) {
  // 128-byte stride: worst case, one transaction per lane.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.global_access(lane, 0x1000 + std::uint64_t(lane) * 128, 4);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_requests, 1u);
  EXPECT_EQ(log.gmem_segments, 32u);
}

TEST_F(WarpLogTest, BroadcastIsOneSegment) {
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.global_access(lane, 0x2000, 8);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_segments, 1u);
}

TEST_F(WarpLogTest, DoubleWordCoalescedIsTwoSegments) {
  // 32 lanes x 8 bytes = 256 bytes = 2 x 128B lines.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.global_access(lane, 0x4000 + lane * 8, 8);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_segments, 2u);
}

TEST_F(WarpLogTest, MisalignedRunStraddlesExtraSegment) {
  // Consecutive words starting 64 bytes into a line: spans two lines.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.global_access(lane, 0x1040 + lane * 4, 4);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_segments, 2u);
}

TEST_F(WarpLogTest, SequentialAccessesFormSeparateGroups) {
  // Each lane does two accesses; lanes run sequentially (lane 0 fully
  // first), yet grouping must pair the k-th access of every lane.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.global_access(lane, 0x1000 + lane * 4, 4);        // group 0
    log.global_access(lane, 0x8000 + lane * 4, 4);        // group 1
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_requests, 2u);
  EXPECT_EQ(log.gmem_segments, 2u);
}

TEST_F(WarpLogTest, PartialWarpStillOneRequest) {
  for (std::uint32_t lane = 0; lane < 7; ++lane) {
    log.global_access(lane, 0x1000 + lane * 4, 4);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_requests, 1u);
  EXPECT_EQ(log.gmem_segments, 1u);
}

TEST_F(WarpLogTest, BackwardStrideWithinWindowIsExact) {
  // Descending addresses: bitmap is anchored below the first line seen.
  for (std::uint32_t lane = 0; lane < 8; ++lane) {
    log.global_access(lane, 0x8000 - std::uint64_t(lane) * 128, 4);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_segments, 8u);
}

TEST_F(WarpLogTest, ConflictFreeSharedAccessCostsOneCycle) {
  // 32 lanes hit 32 different banks.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.shared_access(lane, lane * 4, 4);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.smem_requests, 1u);
  EXPECT_EQ(log.smem_cycles, 1u);
}

TEST_F(WarpLogTest, TwoWayBankConflictCostsTwoCycles) {
  // Stride of 2 words: lanes 0 and 16 share bank 0, etc.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.shared_access(lane, lane * 8, 4);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.smem_cycles, 2u);
}

TEST_F(WarpLogTest, ThirtyTwoWayConflictIsWorstCase) {
  // Stride of 32 words: every lane hits bank 0 with a distinct word.
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.shared_access(lane, lane * 32 * 4, 4);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.smem_cycles, 32u);
}

TEST_F(WarpLogTest, SameWordBroadcastDoesNotConflict) {
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.shared_access(lane, 64, 4);
  }
  (void)log.end_epoch();
  EXPECT_EQ(log.smem_cycles, 1u);
}

TEST_F(WarpLogTest, AluChargeIsWarpMaxPerEpoch) {
  log.alu(0, 10);
  log.alu(1, 4);
  (void)log.end_epoch();
  log.alu(2, 7);
  (void)log.end_epoch();
  EXPECT_DOUBLE_EQ(log.alu_total, 17.0);
}

TEST_F(WarpLogTest, EpochCostSumsComponents) {
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    log.global_access(lane, 0x1000 + lane * 4, 4);  // 1 segment
    log.shared_access(lane, lane * 4, 4);           // 1 cycle
    log.alu(lane, 5);
  }
  const double cost = log.end_epoch();
  // ld/st helpers are not involved here; exact composition:
  const double expected =
      params.gmem_segment_ns + params.smem_cycle_ns + 5 * params.alu_ns;
  EXPECT_NEAR(cost, expected, 1e-9);
}

TEST_F(WarpLogTest, EpochRealignsLaneCounters) {
  // Lane 0 does 3 accesses, lane 1 does 1; after the epoch both must group
  // their next access together again.
  log.global_access(0, 0x1000, 4);
  log.global_access(0, 0x2000, 4);
  log.global_access(0, 0x3000, 4);
  log.global_access(1, 0x1004, 4);
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_requests, 3u);
  log.global_access(0, 0x9000, 4);
  log.global_access(1, 0x9004, 4);
  (void)log.end_epoch();
  EXPECT_EQ(log.gmem_requests, 4u);
  EXPECT_EQ(log.gmem_segments, 4u);  // 3 + 1 coalesced pair
}

TEST(EstimateDeviceTime, SingleBlockIsLaunchPlusCost) {
  CostParams p;
  DeviceLimits lim;
  const double t = estimate_device_time(p, lim, {1000.0}, 0);
  EXPECT_DOUBLE_EQ(t, p.launch_overhead_ns + 1000.0);
}

TEST(EstimateDeviceTime, BlocksSpreadAcrossSms) {
  CostParams p;
  DeviceLimits lim;
  // 13 equal blocks: one per SM; same time as a single block.
  const std::vector<double> costs(13, 1000.0);
  const double t = estimate_device_time(p, lim, costs, 0);
  EXPECT_DOUBLE_EQ(t, p.launch_overhead_ns + 1000.0);
}

TEST(EstimateDeviceTime, TwoBlocksLeaveElevenSmsIdle) {
  CostParams p;
  DeviceLimits lim;
  const double t2 = estimate_device_time(p, lim, {1000.0, 1000.0}, 0);
  std::vector<double> costs26(26, 1000.0);
  const double t26 = estimate_device_time(p, lim, costs26, 0);
  // 26 blocks over 13 SMs take 2 waves; 2 blocks also finish in "one wave",
  // so 13x the work only costs 2x the time: the occupancy effect behind the
  // paper's slow single-level vector/worker cases.
  EXPECT_DOUBLE_EQ(t2, p.launch_overhead_ns + 1000.0);
  EXPECT_DOUBLE_EQ(t26, p.launch_overhead_ns + 2000.0);
}

TEST(EstimateDeviceTime, DramFloorApplies) {
  CostParams p;
  DeviceLimits lim;
  // 150 GB at 150 GB/s = 1 s floor regardless of tiny block costs.
  const double t = estimate_device_time(p, lim, {10.0}, 150ULL * 1000000000ULL);
  EXPECT_NEAR(t, p.launch_overhead_ns + 1e9, 1e3);
}

TEST(LaunchStats, AccumulateAddsFields) {
  LaunchStats a;
  a.blocks = 2;
  a.gmem_segments = 10;
  a.device_time_ns = 5;
  LaunchStats b;
  b.blocks = 3;
  b.gmem_segments = 1;
  b.device_time_ns = 7;
  a += b;
  EXPECT_EQ(a.blocks, 5u);
  EXPECT_EQ(a.gmem_segments, 11u);
  EXPECT_DOUBLE_EQ(a.device_time_ns, 12.0);
}

TEST(DerivedMetrics, CoalescingEfficiency) {
  LaunchStats s;
  s.gmem_bytes = 128;
  s.gmem_segments = 2;
  EXPECT_DOUBLE_EQ(coalescing_efficiency(s), 0.5);
}

TEST(DerivedMetrics, BankConflictFactor) {
  LaunchStats s;
  s.smem_requests = 4;
  s.smem_cycles = 8;
  EXPECT_DOUBLE_EQ(bank_conflict_factor(s), 2.0);
}

}  // namespace
}  // namespace accred::gpusim
