// Regression tests for long barrier-free epochs: the per-warp access log
// must keep grouping the k-th access of each lane into one coalesced
// request even when a single lane performs hundreds of thousands of
// accesses before the next barrier (a bug here once inflated the worker
// position's modeled time 6x at the paper's full scale).
#include <gtest/gtest.h>

#include "gpusim/launch.hpp"

namespace accred::gpusim {
namespace {

LaunchStats run_long_loop(std::int64_t per_lane, std::uint32_t threads) {
  Device dev;
  auto data = dev.alloc<float>(static_cast<std::size_t>(per_lane) * threads);
  auto v = data.view();
  return launch(dev, {1}, {threads}, 0, [&](ThreadCtx& ctx) {
    // Fully coalesced grid-stride loop, no barriers: one segment per
    // 32-lane group regardless of epoch length.
    for (std::int64_t it = 0; it < per_lane; ++it) {
      (void)ctx.ld(v, static_cast<std::size_t>(it) * threads +
                          ctx.threadIdx.x);
    }
  });
}

TEST(LongEpoch, CoalescingSurvivesHugeBarrierFreeRuns) {
  // 300k accesses per lane — well past any bounded-window shortcut.
  const auto s = run_long_loop(300'000, 32);
  EXPECT_EQ(s.gmem_requests, 300'000u);
  EXPECT_EQ(s.gmem_segments, 300'000u);  // exactly one line per group
  EXPECT_NEAR(coalescing_efficiency(s), 1.0, 1e-9);
}

TEST(LongEpoch, MultiWarpBlocksGroupIndependently) {
  const auto s = run_long_loop(50'000, 128);  // 4 warps
  EXPECT_EQ(s.gmem_requests, 4u * 50'000u);
  EXPECT_EQ(s.gmem_segments, 4u * 50'000u);
}

TEST(LongEpoch, CostScalesLinearlyWithLength) {
  const auto a = run_long_loop(10'000, 32);
  const auto b = run_long_loop(80'000, 32);
  const double ta = a.device_time_ns - 5000.0;  // strip launch overhead
  const double tb = b.device_time_ns - 5000.0;
  EXPECT_NEAR(tb / ta, 8.0, 0.2);
}

TEST(LongEpoch, FlushDoesNotSplitGroupsAcrossWarpPassBoundary) {
  // Two epochs separated by a barrier: grouping restarts cleanly, and the
  // totals equal the sum of per-epoch runs.
  Device dev;
  auto data = dev.alloc<float>(64 * 1024);
  auto v = data.view();
  auto s = launch(dev, {1}, {64}, 0, [&](ThreadCtx& ctx) {
    for (int it = 0; it < 512; ++it) {
      (void)ctx.ld(v, static_cast<std::size_t>(it) * 64 + ctx.threadIdx.x);
    }
    ctx.syncthreads();
    for (int it = 0; it < 512; ++it) {
      (void)ctx.ld(v, static_cast<std::size_t>(it) * 64 + ctx.threadIdx.x);
    }
  });
  EXPECT_EQ(s.gmem_requests, 2u * 2u * 512u);  // 2 warps x 2 epochs x 512
  EXPECT_EQ(s.gmem_segments, s.gmem_requests);
}

}  // namespace
}  // namespace accred::gpusim
