// Unit tests of the dynamic race detector (gpusim/racecheck.hpp): epoch
// semantics of syncthreads/syncwarp, shared vs global tracking, report
// dedup and caps, stage attribution, determinism across sim_threads, and
// the stats-identity contract (racecheck never perturbs the cost model).
#include "gpusim/racecheck.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "gpusim/launch.hpp"

namespace accred::gpusim {
namespace {

SimOptions rc_opts() {
  SimOptions o;
  o.racecheck = true;
  o.sim_threads = 1;
  return o;
}

TEST(Racecheck, WawOnSameSharedWordIsDetectedAndDeduped) {
  Device dev;
  SharedLayout layout;
  auto sbuf = layout.add<int>(1);
  const auto stats = launch(
      dev, {1}, {64}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        ctx.sts(sbuf, 0, static_cast<int>(ctx.threadIdx.x));
      },
      rc_opts());
  EXPECT_TRUE(stats.racecheck);
  // 64 sequential writers: each conflicts with the previous one.
  EXPECT_EQ(stats.races, 63u);
  // ...but one word + one hazard kind = one report.
  ASSERT_EQ(stats.race_reports.size(), 1u);
  const RaceReport& r = stats.race_reports[0];
  EXPECT_STREQ(r.kind(), "WAW");
  EXPECT_EQ(r.space, RaceReport::Space::kShared);
  EXPECT_EQ(r.addr, 0u);
  EXPECT_TRUE(r.first.write);
  EXPECT_TRUE(r.second.write);
  EXPECT_NE(r.first.thread.x, r.second.thread.x);
  const std::string line = to_string(r);
  EXPECT_NE(line.find("WAW"), std::string::npos) << line;
  EXPECT_NE(line.find("shared"), std::string::npos) << line;
}

TEST(Racecheck, SyncthreadsOrdersAccessesAcrossWarps) {
  Device dev;
  constexpr std::uint32_t kN = 128;
  SharedLayout layout;
  auto sbuf = layout.add<int>(kN);
  const auto stats = launch(
      dev, {1}, {kN}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        ctx.sts(sbuf, i, static_cast<int>(i));
        ctx.syncthreads();
        (void)ctx.lds(sbuf, (i + 37) % kN);
      },
      rc_opts());
  EXPECT_EQ(stats.races, 0u);
  EXPECT_TRUE(stats.race_reports.empty());
}

TEST(Racecheck, MissingSyncthreadsIsAWarAcrossWarps) {
  // Threads 0..126 read word 127 before thread 127 writes it (lane order):
  // the write conflicts with the two most recent recorded readers.
  Device dev;
  constexpr std::uint32_t kN = 128;
  SharedLayout layout;
  auto sbuf = layout.add<int>(kN);
  const auto stats = launch(
      dev, {1}, {kN}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        ctx.sts(sbuf, i, 1);
        (void)ctx.lds(sbuf, kN - 1);
      },
      rc_opts());
  EXPECT_EQ(stats.races, 2u);  // write vs both reader slots
  ASSERT_EQ(stats.race_reports.size(), 1u);
  const RaceReport& r = stats.race_reports[0];
  EXPECT_STREQ(r.kind(), "WAR");
  EXPECT_FALSE(r.first.write);
  EXPECT_TRUE(r.second.write);
  EXPECT_EQ(r.second.thread.x, kN - 1);
}

TEST(Racecheck, SyncwarpOrdersAccessesWithinOneWarp) {
  Device dev;
  SharedLayout layout;
  auto sbuf = layout.add<int>(32);
  const auto stats = launch(
      dev, {1}, {32}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        ctx.sts(sbuf, i, static_cast<int>(i));
        ctx.syncwarp();
        (void)ctx.lds(sbuf, 31 - i);
      },
      rc_opts());
  EXPECT_EQ(stats.races, 0u);
}

TEST(Racecheck, MissingSyncwarpWithinOneWarpIsCaught) {
  Device dev;
  SharedLayout layout;
  auto sbuf = layout.add<int>(32);
  const auto stats = launch(
      dev, {1}, {32}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        ctx.sts(sbuf, i, static_cast<int>(i));
        (void)ctx.lds(sbuf, 31 - i);
      },
      rc_opts());
  EXPECT_GT(stats.races, 0u);
  ASSERT_FALSE(stats.race_reports.empty());
  EXPECT_EQ(stats.race_reports[0].space, RaceReport::Space::kShared);
}

TEST(Racecheck, SyncwarpDoesNotOrderAccessesAcrossWarps) {
  // The §3.1.1 trap the detector exists for: a syncwarp in each warp, but
  // both warps still participate — cross-warp pairs stay unordered.
  Device dev;
  SharedLayout layout;
  auto sbuf = layout.add<int>(64);
  const auto stats = launch(
      dev, {1}, {64}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        const std::uint32_t i = ctx.threadIdx.x;
        ctx.sts(sbuf, i, 7);
        ctx.syncwarp();
        (void)ctx.lds(sbuf, (i + 32) % 64);
      },
      rc_opts());
  EXPECT_GT(stats.races, 0u);
}

TEST(Racecheck, GlobalWordsAreTrackedPerBlock) {
  Device dev;
  auto buf = dev.alloc<int>(1);
  auto v = buf.view();
  const auto stats = launch(
      dev, {1}, {64}, 0,
      [&](ThreadCtx& ctx) { ctx.st(v, 0, static_cast<int>(ctx.threadIdx.x)); },
      rc_opts());
  EXPECT_EQ(stats.races, 63u);
  ASSERT_EQ(stats.race_reports.size(), 1u);
  EXPECT_EQ(stats.race_reports[0].space, RaceReport::Space::kGlobal);
  EXPECT_STREQ(stats.race_reports[0].kind(), "WAW");
}

TEST(Racecheck, GlobalTrackingCanBeDisabled) {
  Device dev;
  auto buf = dev.alloc<int>(1);
  auto v = buf.view();
  SimOptions opts = rc_opts();
  opts.racecheck_global = false;
  const auto stats = launch(
      dev, {1}, {64}, 0,
      [&](ThreadCtx& ctx) { ctx.st(v, 0, static_cast<int>(ctx.threadIdx.x)); },
      opts);
  EXPECT_TRUE(stats.racecheck);
  EXPECT_EQ(stats.races, 0u);
  EXPECT_TRUE(stats.race_reports.empty());
}

TEST(Racecheck, StageAttributionWithoutProfiling) {
  // prof_scope names land in the reports even when profiling is off; the
  // stats' profile table itself must stay empty (off means off).
  Device dev;
  SharedLayout layout;
  auto sbuf = layout.add<int>(1);
  const auto stats = launch(
      dev, {1}, {64}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        if (ctx.threadIdx.x == 0) {
          auto p = ctx.prof_scope("produce");
          ctx.sts(sbuf, 0, 42);
        }
        {
          auto c = ctx.prof_scope("consume");
          (void)ctx.lds(sbuf, 0);
        }
      },
      rc_opts());
  EXPECT_TRUE(stats.profile.empty());
  ASSERT_FALSE(stats.race_reports.empty());
  const RaceReport& r = stats.race_reports[0];
  EXPECT_STREQ(r.kind(), "RAW");
  EXPECT_EQ(r.first.stage, "produce");
  EXPECT_EQ(r.second.stage, "consume");
}

TEST(Racecheck, PerBlockReportCapKeepsExactCounter) {
  // 128 racy words x WAW = 128 distinct (word, kind) pairs, above the
  // 64-report block cap; the pair counter must stay exact regardless.
  Device dev;
  constexpr std::uint32_t kThreads = 256;
  SharedLayout layout;
  auto sbuf = layout.add<int>(kThreads / 2);
  const auto stats = launch(
      dev, {1}, {kThreads}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        ctx.sts(sbuf, ctx.threadIdx.x / 2, 1);
      },
      rc_opts());
  EXPECT_EQ(stats.races, kThreads / 2);
  EXPECT_EQ(stats.race_reports.size(), RaceChecker::kMaxReportsPerBlock);
}

TEST(Racecheck, PerLaunchReportCapKeepsExactCounter) {
  // 8 blocks x 64 reports = 512 candidates; the launch keeps the first 256
  // (flattened block order) while summing every block's exact pair count.
  Device dev;
  constexpr std::uint32_t kThreads = 256;
  SharedLayout layout;
  auto sbuf = layout.add<int>(kThreads / 2);
  const auto stats = launch(
      dev, {8}, {kThreads}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        ctx.sts(sbuf, ctx.threadIdx.x / 2, 1);
      },
      rc_opts());
  EXPECT_EQ(stats.races, 8u * (kThreads / 2));
  EXPECT_EQ(stats.race_reports.size(), RaceChecker::kMaxReportsPerLaunch);
}

TEST(Racecheck, ReportsAreDeterministicAcrossSimThreads) {
  Device dev;
  SharedLayout layout;
  auto sbuf = layout.add<int>(64);
  auto run = [&](std::uint32_t sim_threads) {
    SimOptions opts = rc_opts();
    opts.sim_threads = sim_threads;
    return launch(
        dev, {6}, {64}, layout.bytes(),
        [&](ThreadCtx& ctx) {
          const std::uint32_t i = ctx.threadIdx.x;
          ctx.sts(sbuf, i, 7);
          (void)ctx.lds(sbuf, (i + 32) % 64);  // racy cross-warp read
        },
        opts);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_GT(serial.races, 0u);
  EXPECT_EQ(serial.races, parallel.races);
  ASSERT_EQ(serial.race_reports.size(), parallel.race_reports.size());
  for (std::size_t i = 0; i < serial.race_reports.size(); ++i) {
    const RaceReport& a = serial.race_reports[i];
    const RaceReport& b = parallel.race_reports[i];
    EXPECT_STREQ(a.kind(), b.kind());
    EXPECT_EQ(a.addr, b.addr);
    EXPECT_EQ(a.block.x, b.block.x);
    EXPECT_EQ(a.first.thread.x, b.first.thread.x);
    EXPECT_EQ(a.second.thread.x, b.second.thread.x);
    EXPECT_EQ(a.first.stage, b.first.stage);
    EXPECT_EQ(a.second.stage, b.second.stage);
  }
}

TEST(Racecheck, StatsAreIdenticalWithAndWithoutRacecheck) {
  // The detector observes; it must never perturb the cost model. Run a
  // well-synchronized kernel both ways and compare every counter.
  Device dev;
  constexpr std::uint32_t kN = 128;
  auto buf = dev.alloc<int>(8 * kN);
  auto v = buf.view();
  SharedLayout layout;
  auto sbuf = layout.add<int>(kN);
  auto kernel = [&](ThreadCtx& ctx) {
    const std::uint32_t i = ctx.threadIdx.x;
    ctx.sts(sbuf, i, static_cast<int>(i));
    ctx.syncthreads();
    const int x = ctx.lds(sbuf, (i + 1) % kN);
    ctx.syncwarp();
    ctx.st(v, ctx.blockIdx.x * kN + i, x);
  };
  SimOptions off;
  off.sim_threads = 1;
  const auto plain = launch(dev, {8}, {kN}, layout.bytes(), kernel, off);
  const auto checked = launch(dev, {8}, {kN}, layout.bytes(), kernel,
                              rc_opts());
  EXPECT_FALSE(plain.racecheck);
  EXPECT_TRUE(checked.racecheck);
  EXPECT_EQ(checked.races, 0u);
  EXPECT_EQ(plain.blocks, checked.blocks);
  EXPECT_EQ(plain.threads, checked.threads);
  EXPECT_EQ(plain.gmem_requests, checked.gmem_requests);
  EXPECT_EQ(plain.gmem_segments, checked.gmem_segments);
  EXPECT_EQ(plain.gmem_bytes, checked.gmem_bytes);
  EXPECT_EQ(plain.smem_requests, checked.smem_requests);
  EXPECT_EQ(plain.smem_cycles, checked.smem_cycles);
  EXPECT_EQ(plain.barriers, checked.barriers);
  EXPECT_EQ(plain.syncwarps, checked.syncwarps);
  EXPECT_DOUBLE_EQ(plain.alu_units, checked.alu_units);
  EXPECT_DOUBLE_EQ(plain.device_time_ns, checked.device_time_ns);
}

TEST(Racecheck, WideAccessesShadowEveryGranule) {
  // A double covers two 4-byte granules; racing on either half is caught.
  Device dev;
  SharedLayout layout;
  auto wide = layout.add<double>(1);
  const auto stats = launch(
      dev, {1}, {64}, layout.bytes(),
      [&](ThreadCtx& ctx) {
        ctx.sts(wide, 0, static_cast<double>(ctx.threadIdx.x));
      },
      rc_opts());
  EXPECT_EQ(stats.races, 2u * 63u);  // both granules conflict per pair
  ASSERT_EQ(stats.race_reports.size(), 2u);  // one per granule (WAW dedup)
  EXPECT_EQ(stats.race_reports[0].addr, 0u);
  EXPECT_EQ(stats.race_reports[1].addr, 4u);
}

}  // namespace
}  // namespace accred::gpusim
