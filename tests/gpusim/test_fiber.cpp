#include "gpusim/fiber.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace accred::gpusim {
namespace {

TEST(Fiber, RunsToCompletionWithoutYield) {
  Fiber f;
  int x = 0;
  f.reset([&] { x = 42; });
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  Fiber f;
  std::vector<int> trace;
  f.reset([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(2);
    Fiber::yield();
    trace.push_back(3);
  });
  f.resume();
  trace.push_back(10);
  f.resume();
  trace.push_back(20);
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(trace, (std::vector<int>{1, 10, 2, 20, 3}));
}

TEST(Fiber, CurrentTracksExecutingFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber f;
  Fiber* seen = nullptr;
  f.reset([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, NestedFibersRestoreCurrent) {
  Fiber outer;
  Fiber inner;
  Fiber* in_outer_before = nullptr;
  Fiber* in_inner = nullptr;
  Fiber* in_outer_after = nullptr;
  inner.reset([&] { in_inner = Fiber::current(); });
  outer.reset([&] {
    in_outer_before = Fiber::current();
    inner.resume();
    in_outer_after = Fiber::current();
  });
  outer.resume();
  EXPECT_EQ(in_outer_before, &outer);
  EXPECT_EQ(in_inner, &inner);
  EXPECT_EQ(in_outer_after, &outer);
}

TEST(Fiber, ReusableAfterCompletion) {
  Fiber f;
  int runs = 0;
  for (int i = 0; i < 100; ++i) {
    f.reset([&] {
      ++runs;
      Fiber::yield();
      ++runs;
    });
    f.resume();
    f.resume();
    ASSERT_TRUE(f.done());
  }
  EXPECT_EQ(runs, 200);
}

TEST(Fiber, ExceptionPropagatesToResumer) {
  Fiber f;
  f.reset([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.done());
}

TEST(Fiber, ExceptionAfterYieldPropagates) {
  Fiber f;
  f.reset([] {
    Fiber::yield();
    throw std::logic_error("late boom");
  });
  f.resume();
  EXPECT_FALSE(f.done());
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(Fiber, DeepStackUsageSurvives) {
  Fiber f(256 * 1024);
  std::uint64_t sum = 0;
  f.reset([&] {
    // Touch a decent chunk of stack to catch layout mistakes.
    volatile char buf[128 * 1024];
    for (std::size_t i = 0; i < sizeof(buf); i += 4096) {
      buf[i] = static_cast<char>(i / 4096 + 1);
    }
    std::uint64_t s = 0;
    for (std::size_t i = 0; i < sizeof(buf); i += 4096) {
      s += std::uint64_t(buf[i]) & 0xff;
    }
    sum = s;
  });
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_GT(sum, 0u);
}

TEST(Fiber, ManyFibersInterleaved) {
  constexpr int kN = 64;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> order;
  for (int i = 0; i < kN; ++i) {
    fibers.push_back(std::make_unique<Fiber>(16 * 1024));
    fibers.back()->reset([&order, i] {
      order.push_back(i);
      Fiber::yield();
      order.push_back(i + kN);
    });
  }
  for (auto& f : fibers) f->resume();
  for (auto& f : fibers) f->resume();
  ASSERT_EQ(order.size(), 2 * kN);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(order[i], i);
    EXPECT_EQ(order[kN + i], kN + i);
  }
}

TEST(Fiber, RejectsBogusStackSize) {
  EXPECT_THROW(Fiber f(100), std::invalid_argument);  // not 16-aligned
  EXPECT_THROW(Fiber f(1024), std::invalid_argument); // too small
}

}  // namespace
}  // namespace accred::gpusim
