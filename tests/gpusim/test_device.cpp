#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace accred::gpusim {
namespace {

TEST(Device, AllocationTracksBytes) {
  Device dev;
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  {
    auto buf = dev.alloc<double>(1000);
    EXPECT_EQ(dev.allocated_bytes(), 8000u);
    auto buf2 = dev.alloc<int>(10);
    EXPECT_EQ(dev.allocated_bytes(), 8040u);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(Device, VirtualAddressesAre256Aligned) {
  Device dev;
  auto a = dev.alloc<char>(3);
  auto b = dev.alloc<char>(3);
  EXPECT_EQ(a.vaddr() % 256, 0u);
  EXPECT_EQ(b.vaddr() % 256, 0u);
  EXPECT_NE(a.vaddr(), b.vaddr());
}

TEST(Device, OutOfMemoryThrows) {
  DeviceLimits lim;
  lim.global_mem_bytes = 1024;
  Device dev(lim);
  auto ok = dev.alloc<char>(1000);
  EXPECT_THROW((void)dev.alloc<char>(100), std::runtime_error);
  // Accounting is unchanged after the failed allocation.
  EXPECT_EQ(dev.allocated_bytes(), 1000u);
}

TEST(Device, MoveTransfersOwnership) {
  Device dev;
  auto a = dev.alloc<int>(100);
  const auto va = a.vaddr();
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(b.vaddr(), va);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(dev.allocated_bytes(), 400u);
  b = DeviceBuffer<int>{};
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(Device, CopiesRoundTripAndRecordStats) {
  Device dev;
  auto buf = dev.alloc<int>(256);
  std::vector<int> src(256);
  std::iota(src.begin(), src.end(), 0);
  buf.copy_from_host(src);
  std::vector<int> dst(256, -1);
  buf.copy_to_host(dst);
  EXPECT_EQ(src, dst);
  EXPECT_EQ(dev.transfers().h2d_bytes, 1024u);
  EXPECT_EQ(dev.transfers().d2h_bytes, 1024u);
  EXPECT_GT(dev.transfers().h2d_time_ns, 0.0);
}

TEST(Device, OversizeCopyThrows) {
  Device dev;
  auto buf = dev.alloc<int>(4);
  std::vector<int> big(5);
  EXPECT_THROW(buf.copy_from_host(big), std::out_of_range);
  EXPECT_THROW(buf.copy_to_host(big), std::out_of_range);
}

TEST(Device, FillSetsAllElements) {
  Device dev;
  auto buf = dev.alloc<float>(33);
  buf.fill(2.5F);
  for (float v : buf.host_span()) EXPECT_EQ(v, 2.5F);
}

TEST(ValidateLaunch, RejectsOversizedBlocks) {
  DeviceLimits lim;
  EXPECT_NO_THROW(validate_launch({192}, {128, 8}, 0, lim));
  EXPECT_THROW(validate_launch({1}, {1025}, 0, lim), std::invalid_argument);
  EXPECT_THROW(validate_launch({1}, {128, 9}, 0, lim), std::invalid_argument);
  EXPECT_THROW(validate_launch({0}, {32}, 0, lim), std::invalid_argument);
  EXPECT_THROW(validate_launch({1}, {32}, 48 * 1024 + 1, lim),
               std::invalid_argument);
  EXPECT_THROW(validate_launch({1}, {1, 1, 65}, 0, lim),
               std::invalid_argument);
}

}  // namespace
}  // namespace accred::gpusim
