// Determinism contract of the host-parallel launch path (DESIGN.md §7):
// sharding the block range across worker threads must produce LaunchStats,
// modeled device time, and kernel results bit-identical to the serial run,
// and strict-barrier faults must surface identically no matter which
// worker hits them.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "acc/ops.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/pool.hpp"
#include "reduce/tree.hpp"
#include "testsuite/runner.hpp"

namespace accred {
namespace {

using gpusim::Device;
using gpusim::LaunchStats;
using gpusim::SimOptions;
using gpusim::ThreadCtx;

void expect_identical(const LaunchStats& a, const LaunchStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.blocks, b.blocks) << what;
  EXPECT_EQ(a.threads, b.threads) << what;
  EXPECT_EQ(a.gmem_requests, b.gmem_requests) << what;
  EXPECT_EQ(a.gmem_segments, b.gmem_segments) << what;
  EXPECT_EQ(a.gmem_bytes, b.gmem_bytes) << what;
  EXPECT_EQ(a.smem_requests, b.smem_requests) << what;
  EXPECT_EQ(a.smem_cycles, b.smem_cycles) << what;
  EXPECT_EQ(a.barriers, b.barriers) << what;
  EXPECT_EQ(a.syncwarps, b.syncwarps) << what;
  // Bit-identical, not approximately equal: the merge rules fold doubles
  // in flattened block order regardless of sharding.
  EXPECT_EQ(a.alu_units, b.alu_units) << what;
  EXPECT_EQ(a.device_time_ns, b.device_time_ns) << what;
}

/// A kernel exercising every stat source: strided global loads, shared
/// staging, a full tree (syncthreads + warp-synchronous tail), and a
/// per-block partial store — the paper's partial-per-block discipline.
struct TreeReduceFixture {
  static constexpr std::int64_t kBlocks = 64;
  static constexpr std::int64_t kThreads = 64;
  static constexpr std::int64_t kN = 1 << 14;

  Device dev;
  gpusim::DeviceBuffer<float> data{dev.alloc<float>(kN)};
  gpusim::DeviceBuffer<float> out{
      dev.alloc<float>(static_cast<std::size_t>(kBlocks))};
  gpusim::SharedLayout layout;
  gpusim::SharedView<float> sbuf{
      layout.add<float>(static_cast<std::size_t>(kThreads))};
  acc::RuntimeOp<float> rop{acc::ReductionOp::kSum};

  TreeReduceFixture() {
    auto host = data.host_span();
    for (std::int64_t i = 0; i < kN; ++i) {
      host[static_cast<std::size_t>(i)] =
          0.25F * static_cast<float>(i % 97) - 3.0F;
    }
  }

  LaunchStats run(std::uint32_t sim_threads) {
    out.fill(0.0F);
    auto dv = data.view();
    auto ov = out.view();
    auto sb = sbuf;
    auto op = rop;
    SimOptions opts;
    opts.sim_threads = sim_threads;
    return gpusim::launch(
        dev, {static_cast<std::uint32_t>(kBlocks)},
        {static_cast<std::uint32_t>(kThreads)}, layout.bytes(),
        [=](ThreadCtx& ctx) {
          float priv = 0;
          for (std::int64_t i = ctx.blockIdx.x * kThreads + ctx.threadIdx.x;
               i < kN; i += kBlocks * kThreads) {
            priv += ctx.ld(dv, static_cast<std::size_t>(i));
          }
          ctx.sts(sb, ctx.threadIdx.x, priv);
          reduce::block_tree_reduce(ctx, sb, 0, kThreads, 1, ctx.threadIdx.x,
                                    op);
          if (ctx.linear_tid() == 0) {
            ctx.st(ov, ctx.blockIdx.x, ctx.lds(sb, 0));
          }
        },
        opts);
  }
};

TEST(ParallelLaunch, StatsAndResultsBitIdenticalAcrossThreadCounts) {
  TreeReduceFixture fix;
  const LaunchStats serial = fix.run(1);
  std::vector<float> serial_out(fix.out.host_span().begin(),
                                fix.out.host_span().end());
  EXPECT_GT(serial.barriers, 0U);
  EXPECT_GT(serial.syncwarps, 0U);
  EXPECT_GT(serial.smem_cycles, 0U);

  // 7 gives deliberately uneven shards (64 % 7 != 0).
  for (std::uint32_t threads : {2U, 4U, 7U}) {
    const LaunchStats par = fix.run(threads);
    expect_identical(serial, par,
                     "sim_threads=" + std::to_string(threads));
    EXPECT_EQ(0, std::memcmp(serial_out.data(), fix.out.host_span().data(),
                             serial_out.size() * sizeof(float)))
        << "per-block partials diverged at sim_threads=" << threads;
  }
}

TEST(ParallelLaunch, ThreeDimensionalGridFlattensInIssueOrder) {
  // blockIdx.x fastest, then y, then z — the parallel path must unflatten
  // shard boundaries to exactly the serial issue order.
  Device dev;
  auto out = dev.alloc<std::uint32_t>(13 * 3 * 2);
  auto ov = out.view();
  for (std::uint32_t threads : {1U, 4U}) {
    out.fill(0);
    SimOptions opts;
    opts.sim_threads = threads;
    auto stats = gpusim::launch(
        dev, {13, 3, 2}, {32}, 0,
        [=](ThreadCtx& ctx) {
          if (ctx.threadIdx.x == 0) {
            const std::size_t flat =
                ctx.blockIdx.x + 13 * (ctx.blockIdx.y + 3 * ctx.blockIdx.z);
            ctx.st(ov, flat,
                   1000000 * ctx.blockIdx.z + 1000 * ctx.blockIdx.y +
                       ctx.blockIdx.x);
          }
        },
        opts);
    EXPECT_EQ(stats.blocks, 13U * 3U * 2U);
    for (std::uint32_t z = 0; z < 2; ++z) {
      for (std::uint32_t y = 0; y < 3; ++y) {
        for (std::uint32_t x = 0; x < 13; ++x) {
          EXPECT_EQ(out.host_span()[x + 13 * (y + 3 * z)],
                    1000000 * z + 1000 * y + x)
              << "sim_threads=" << threads;
        }
      }
    }
  }
}

TEST(ParallelLaunch, ReductionStrategiesMatchSerial) {
  // Vector / worker / gang / RMP strategy kernels through the testsuite
  // runner: a 4-worker run must verify and report the exact stats of the
  // serial run.
  for (acc::Position pos :
       {acc::Position::kVector, acc::Position::kWorker, acc::Position::kGang,
        acc::Position::kWorkerVector, acc::Position::kGangWorkerVector}) {
    const testsuite::CaseSpec spec{pos, acc::ReductionOp::kSum,
                                   acc::DataType::kFloat};
    testsuite::RunnerOptions o;
    o.reduction_extent = 1 << 10;
    o.config.num_gangs = 16;
    o.config.num_workers = 4;
    o.config.vector_length = 32;

    o.sim_threads = 1;
    const auto serial = testsuite::Runner(o).run(acc::CompilerId::kOpenUH, spec);
    o.sim_threads = 4;
    const auto par = testsuite::Runner(o).run(acc::CompilerId::kOpenUH, spec);

    ASSERT_TRUE(serial.verified) << to_string(pos) << " " << serial.detail;
    ASSERT_TRUE(par.verified) << to_string(pos) << " " << par.detail;
    EXPECT_EQ(serial.kernels, par.kernels) << to_string(pos);
    EXPECT_EQ(serial.device_ms, par.device_ms) << to_string(pos);
    expect_identical(serial.stats, par.stats, std::string(to_string(pos)));
  }
}

TEST(ParallelLaunch, StrictBarrierFaultPropagatesAcrossWorkers) {
  // Block 37 commits exit divergence; whichever worker simulates it must
  // surface the serial run's exact exception from launch().
  const auto diverging = [](ThreadCtx& ctx) {
    if (ctx.blockIdx.x == 37 && ctx.threadIdx.x % 2 == 0) return;
    ctx.syncthreads();
  };
  auto what_of = [&](std::uint32_t threads) {
    Device dev;
    SimOptions opts;
    opts.strict_barriers = true;
    opts.sim_threads = threads;
    try {
      (void)gpusim::launch(dev, {64}, {32}, 0, diverging, opts);
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  const std::string serial = what_of(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, what_of(4));
  EXPECT_EQ(serial, what_of(7));

  // Lenient mode completes and merges the diagnostics-bearing stats
  // identically instead of throwing.
  Device dev;
  SimOptions lenient;
  lenient.sim_threads = 4;
  LaunchStats stats;
  ASSERT_NO_THROW(stats = gpusim::launch(dev, {64}, {32}, 0, diverging,
                                         lenient));
  EXPECT_EQ(stats.blocks, 64U);
  EXPECT_EQ(stats.barriers, 64U);  // every block still retires one barrier
}

TEST(ParallelLaunch, ResolveThreadCountPrecedence) {
  using gpusim::resolve_sim_threads;
  EXPECT_EQ(resolve_sim_threads(3, 64), 3U);   // explicit request wins
  EXPECT_EQ(resolve_sim_threads(8, 2), 2U);    // never more shards than blocks
  EXPECT_EQ(resolve_sim_threads(1, 64), 1U);   // serial fallback
  gpusim::set_default_sim_threads(5);
  EXPECT_EQ(resolve_sim_threads(0, 64), 5U);   // process default
  gpusim::set_default_sim_threads(0);          // back to env / hardware
  EXPECT_GE(resolve_sim_threads(0, 1U << 20), 1U);
  EXPECT_LE(resolve_sim_threads(0, 1U << 20), gpusim::kMaxSimThreads);
}

}  // namespace
}  // namespace accred
