// End-to-end tests of the SIMT execution engine: launches, barriers,
// shared memory, warp-synchronous execution, and device-side faults.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/launch.hpp"

namespace accred::gpusim {
namespace {

TEST(Simt, EveryThreadRunsExactlyOnce) {
  Device dev;
  auto marks = dev.alloc<int>(4 * 64);
  marks.fill(0);
  auto v = marks.view();
  auto stats = launch(dev, {4}, {8, 8}, 0, [&](ThreadCtx& ctx) {
    const std::size_t idx =
        ctx.blockIdx.x * 64 + ctx.threadIdx.y * 8 + ctx.threadIdx.x;
    ctx.st(v, idx, ctx.ld(v, idx) + 1);
  });
  EXPECT_EQ(stats.blocks, 4u);
  EXPECT_EQ(stats.threads, 256u);
  for (int m : marks.host_span()) EXPECT_EQ(m, 1);
}

TEST(Simt, BuiltinsMatchGeometry) {
  Device dev;
  auto out = dev.alloc<std::uint32_t>(6 * 4);
  auto v = out.view();
  launch(dev, {3, 2}, {2, 2}, 0, [&](ThreadCtx& ctx) {
    EXPECT_EQ(ctx.gridDim.x, 3u);
    EXPECT_EQ(ctx.gridDim.y, 2u);
    EXPECT_EQ(ctx.blockDim.x, 2u);
    const std::size_t block = ctx.blockIdx.y * 3 + ctx.blockIdx.x;
    const std::size_t idx = block * 4 + ctx.threadIdx.y * 2 + ctx.threadIdx.x;
    ctx.st(v, idx, ctx.linear_tid());
  });
  for (std::size_t b = 0; b < 6; ++b) {
    for (std::uint32_t t = 0; t < 4; ++t) {
      EXPECT_EQ(out.host_span()[b * 4 + t], t);
    }
  }
}

TEST(Simt, SyncthreadsOrdersSharedWritesAcrossWarps) {
  // Thread i writes shared[i]; after the barrier, thread i reads
  // shared[(i+37) % n] (a different warp's slot for most i).
  Device dev;
  constexpr std::uint32_t kN = 128;
  auto out = dev.alloc<int>(kN);
  auto v = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<int>(kN);
  launch(dev, {1}, {kN}, layout.bytes(), [&](ThreadCtx& ctx) {
    const std::uint32_t i = ctx.threadIdx.x;
    ctx.sts(sbuf, i, static_cast<int>(i) * 3);
    ctx.syncthreads();
    ctx.st(v, i, ctx.lds(sbuf, (i + 37) % kN));
  });
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out.host_span()[i], static_cast<int>((i + 37) % kN) * 3);
  }
}

TEST(Simt, WithoutBarrierCrossWarpReadsSeeStaleData) {
  // Negative control for the test above: this documents WHY device code
  // needs syncthreads in the simulator exactly as on hardware. Lane order
  // means thread 0 reads before thread 127 writes.
  Device dev;
  constexpr std::uint32_t kN = 128;
  auto out = dev.alloc<int>(kN);
  auto v = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<int>(kN);
  launch(dev, {1}, {kN}, layout.bytes(), [&](ThreadCtx& ctx) {
    const std::uint32_t i = ctx.threadIdx.x;
    ctx.sts(sbuf, i, 1);
    // no syncthreads
    ctx.st(v, i, ctx.lds(sbuf, kN - 1));
  });
  EXPECT_EQ(out.host_span()[0], 0);    // stale: slot 127 not yet written
  EXPECT_EQ(out.host_span()[127], 1);  // writer sees its own store
}

TEST(Simt, SyncwarpOrdersWritesWithinWarp) {
  Device dev;
  auto out = dev.alloc<int>(32);
  auto v = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<int>(32);
  launch(dev, {1}, {32}, layout.bytes(), [&](ThreadCtx& ctx) {
    const std::uint32_t i = ctx.threadIdx.x;
    ctx.sts(sbuf, i, static_cast<int>(i) + 100);
    ctx.syncwarp();
    ctx.st(v, i, ctx.lds(sbuf, 31 - i));
  });
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(out.host_span()[i], static_cast<int>(31 - i) + 100);
  }
}

TEST(Simt, SyncwarpDoesNotSynchronizeAcrossWarps) {
  // Warp 1 (threads 32..63) publishes; warp 0 reads warp 1's slot after
  // only a syncwarp: it must see stale data because warp 0 runs first.
  Device dev;
  auto out = dev.alloc<int>(64);
  auto v = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<int>(64);
  launch(dev, {1}, {64}, layout.bytes(), [&](ThreadCtx& ctx) {
    const std::uint32_t i = ctx.threadIdx.x;
    ctx.sts(sbuf, i, 7);
    ctx.syncwarp();
    ctx.st(v, i, ctx.lds(sbuf, (i + 32) % 64));
  });
  EXPECT_EQ(out.host_span()[0], 0);   // warp 0 reads warp 1: stale
  EXPECT_EQ(out.host_span()[32], 7);  // warp 1 reads warp 0: already done
}

TEST(Simt, RepeatedBarriersCount) {
  Device dev;
  auto stats = launch(dev, {3}, {64}, 0, [&](ThreadCtx& ctx) {
    for (int r = 0; r < 5; ++r) ctx.syncthreads();
  });
  EXPECT_EQ(stats.barriers, 15u);  // 5 per block x 3 blocks
}

TEST(Simt, TreeReductionInSharedMemory) {
  // The canonical interleaved log-step pattern of the paper's Fig. 7.
  Device dev;
  constexpr std::uint32_t kN = 256;
  auto out = dev.alloc<long long>(1);
  auto v = out.view();
  SharedLayout layout;
  auto sbuf = layout.add<long long>(kN);
  launch(dev, {1}, {kN}, layout.bytes(), [&](ThreadCtx& ctx) {
    const std::uint32_t i = ctx.threadIdx.x;
    ctx.sts(sbuf, i, static_cast<long long>(i) + 1);
    ctx.syncthreads();
    for (std::uint32_t stride = kN / 2; stride > 0; stride /= 2) {
      if (i < stride) {
        const long long a = ctx.lds(sbuf, i);
        const long long b = ctx.lds(sbuf, i + stride);
        ctx.sts(sbuf, i, a + b);
      }
      ctx.syncthreads();
    }
    if (i == 0) ctx.st(v, 0, ctx.lds(sbuf, 0));
  });
  EXPECT_EQ(out.host_span()[0], 256LL * 257 / 2);
}

TEST(Simt, GridStrideLoopCoversAllElements) {
  // The paper's Fig. 3 window-sliding mapping in its simplest 1-D form.
  Device dev;
  constexpr std::size_t kN = 10'000;
  auto data = dev.alloc<int>(kN);
  data.fill(1);
  auto v = data.view();
  launch(dev, {7}, {64}, 0, [&](ThreadCtx& ctx) {
    for (std::size_t i = ctx.blockIdx.x * 64 + ctx.threadIdx.x; i < kN;
         i += std::size_t{7} * 64) {
      ctx.st(v, i, ctx.ld(v, i) + 41);
    }
  });
  for (int x : data.host_span()) EXPECT_EQ(x, 42);
}

TEST(Simt, OutOfBoundsGlobalAccessThrows) {
  Device dev;
  auto buf = dev.alloc<int>(16);
  auto v = buf.view();
  EXPECT_THROW(launch(dev, {1}, {32}, 0,
                      [&](ThreadCtx& ctx) {
                        (void)ctx.ld(v, ctx.threadIdx.x);  // 16..31 OOB
                      }),
               std::out_of_range);
}

TEST(Simt, OutOfBoundsSharedAccessThrows) {
  Device dev;
  SharedLayout layout;
  auto sbuf = layout.add<int>(8);
  EXPECT_THROW(launch(dev, {1}, {32}, layout.bytes(),
                      [&](ThreadCtx& ctx) { ctx.sts(sbuf, 8, 1); }),
               std::out_of_range);
}

TEST(Simt, FaultDoesNotPoisonSubsequentLaunches) {
  Device dev;
  auto buf = dev.alloc<int>(4);
  auto v = buf.view();
  EXPECT_THROW(launch(dev, {1}, {64}, 0,
                      [&](ThreadCtx& ctx) {
                        ctx.syncthreads();
                        (void)ctx.ld(v, 100);
                      }),
               std::out_of_range);
  // The scheduler must have cleaned up abandoned fibers.
  buf.fill(0);
  auto stats = launch(dev, {1}, {64}, 0, [&](ThreadCtx& ctx) {
    if (ctx.linear_tid() == 0) ctx.st(v, 0, 5);
    ctx.syncthreads();
  });
  EXPECT_EQ(buf.host_span()[0], 5);
  EXPECT_EQ(stats.barriers, 1u);
}

TEST(Simt, StrictBarrierModeFlagsExitDivergence) {
  Device dev;
  SimOptions strict;
  strict.strict_barriers = true;
  EXPECT_THROW(launch(
                   dev, {1}, {64}, 0,
                   [&](ThreadCtx& ctx) {
                     if (ctx.threadIdx.x < 32) return;  // half exit early
                     ctx.syncthreads();
                   },
                   strict),
               std::runtime_error);
  // Default (lenient) mode completes.
  EXPECT_NO_THROW(launch(dev, {1}, {64}, 0, [&](ThreadCtx& ctx) {
    if (ctx.threadIdx.x < 32) return;
    ctx.syncthreads();
  }));
}

TEST(Simt, SharedMemoryIsPerBlock) {
  // Each block accumulates into shared slot 0; blocks must not see each
  // other's slab.
  Device dev;
  auto out = dev.alloc<int>(8);
  auto v = out.view();
  SharedLayout layout;
  auto s = layout.add<int>(1);
  launch(dev, {8}, {32}, layout.bytes(), [&](ThreadCtx& ctx) {
    if (ctx.threadIdx.x == 0) ctx.sts(s, 0, static_cast<int>(ctx.blockIdx.x));
    ctx.syncthreads();
    if (ctx.threadIdx.x == 1) ctx.st(v, ctx.blockIdx.x, ctx.lds(s, 0));
  });
  for (int b = 0; b < 8; ++b) EXPECT_EQ(out.host_span()[b], b);
}

TEST(Simt, LaunchStatsCountCoalescedTraffic) {
  Device dev;
  constexpr std::size_t kN = 1024;
  auto data = dev.alloc<float>(kN);
  auto v = data.view();
  auto stats = launch(dev, {1}, {256}, 0, [&](ThreadCtx& ctx) {
    for (std::size_t i = ctx.threadIdx.x; i < kN; i += 256) {
      (void)ctx.ld(v, i);
    }
  });
  // 1024 coalesced float loads = 1024*4/128 = 32 segments.
  EXPECT_EQ(stats.gmem_segments, 32u);
  EXPECT_EQ(stats.gmem_bytes, 4096u);
  EXPECT_NEAR(coalescing_efficiency(stats), 1.0, 1e-9);
  EXPECT_GT(stats.device_time_ns, 0.0);
}

TEST(Simt, ZDimensionThreadsWork) {
  Device dev;
  auto out = dev.alloc<int>(2 * 2 * 2);
  auto v = out.view();
  launch(dev, {1}, {2, 2, 2}, 0, [&](ThreadCtx& ctx) {
    const std::size_t idx =
        ctx.threadIdx.z * 4 + ctx.threadIdx.y * 2 + ctx.threadIdx.x;
    ctx.st(v, idx, static_cast<int>(idx));
  });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out.host_span()[i], i);
}

TEST(Simt, NonMultipleOf32BlockRuns) {
  Device dev;
  auto out = dev.alloc<int>(50);
  out.fill(0);
  auto v = out.view();
  launch(dev, {1}, {50}, 0, [&](ThreadCtx& ctx) {
    ctx.st(v, ctx.threadIdx.x, 1);
    ctx.syncthreads();
  });
  for (int m : out.host_span()) EXPECT_EQ(m, 1);
}

}  // namespace
}  // namespace accred::gpusim
