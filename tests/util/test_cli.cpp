// Tests for the CLI flag parser, focused on the two historical footguns:
// boolean flags silently swallowing the next positional, and raw
// stoll/stod exceptions surfacing without the flag name.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace accred {
namespace {

util::Cli make_cli(std::vector<std::string> args,
                   std::initializer_list<std::string_view> bool_flags = {}) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : storage) argv.push_back(a.data());
  return util::Cli(static_cast<int>(argv.size()), argv.data(), bool_flags);
}

TEST(Cli, DeclaredBooleanDoesNotSwallowPositional) {
  // The original bug: `bench --profile out.json` bound "out.json" as the
  // value of --profile and lost the positional.
  auto cli = make_cli({"--profile", "out.json"}, {"profile"});
  EXPECT_TRUE(cli.get_bool("profile"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "out.json");
}

TEST(Cli, UndeclaredFlagKeepsGreedyValueBinding) {
  // Valued flags (not in the boolean set) still bind the next token.
  auto cli = make_cli({"--json", "out.json", "--r", "4096"});
  EXPECT_EQ(cli.get("json", ""), "out.json");
  EXPECT_EQ(cli.get_int("r", 0), 4096);
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, BooleanAndValuedFlagsMix) {
  auto cli = make_cli(
      {"--racecheck", "--r", "1024", "--full", "table2.json", "--fig11"},
      {"racecheck", "full", "fig11"});
  EXPECT_TRUE(cli.get_bool("racecheck"));
  EXPECT_TRUE(cli.get_bool("full"));
  EXPECT_TRUE(cli.get_bool("fig11"));
  EXPECT_EQ(cli.get_int("r", 0), 1024);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "table2.json");
}

TEST(Cli, EqualsFormBindsForBooleanAndValuedFlags) {
  auto cli = make_cli({"--name=table2", "--profile=0", "--full=yes"},
                      {"profile", "full"});
  EXPECT_EQ(cli.get("name", ""), "table2");
  EXPECT_FALSE(cli.get_bool("profile", true));
  EXPECT_TRUE(cli.get_bool("full"));
}

TEST(Cli, GetBoolForms) {
  auto cli = make_cli({"--a=1", "--b=true", "--c=on", "--d=0", "--e=false",
                       "--f=off", "--g=no", "--h"},
                      {"h"});
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_TRUE(cli.get_bool("b"));
  EXPECT_TRUE(cli.get_bool("c"));
  EXPECT_FALSE(cli.get_bool("d", true));
  EXPECT_FALSE(cli.get_bool("e", true));
  EXPECT_FALSE(cli.get_bool("f", true));
  EXPECT_FALSE(cli.get_bool("g", true));
  EXPECT_TRUE(cli.get_bool("h"));
  EXPECT_FALSE(cli.get_bool("missing", false));
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(Cli, GetBoolRejectsGarbageWithFlagName) {
  auto cli = make_cli({"--flag=maybe"});
  try {
    (void)cli.get_bool("flag");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--flag"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("maybe"), std::string::npos);
  }
}

TEST(Cli, NegativeNumericValuesBind) {
  // "-5" does not start with "--", so it binds as the flag's value.
  auto cli = make_cli({"--delta", "-5", "--tol", "-0.25"});
  EXPECT_EQ(cli.get_int("delta", 0), -5);
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 0), -0.25);
}

TEST(Cli, GetIntRejectsTrailingGarbage) {
  auto cli = make_cli({"--gangs", "12x"});
  try {
    (void)cli.get_int("gangs", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--gangs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("12x"), std::string::npos) << msg;
  }
}

TEST(Cli, GetIntRejectsNonNumbersWithFlagName) {
  auto cli = make_cli({"--r", "lots"});
  try {
    (void)cli.get_int("r", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--r"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lots"), std::string::npos) << msg;
  }
}

TEST(Cli, GetDoubleRejectsTrailingGarbageAndNonNumbers) {
  auto bad_tail = make_cli({"--tol=0.5abc"});
  EXPECT_THROW((void)bad_tail.get_double("tol", 0), std::invalid_argument);
  auto bad = make_cli({"--tol=big"});
  try {
    (void)bad.get_double("tol", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--tol"), std::string::npos) << msg;
    EXPECT_NE(msg.find("big"), std::string::npos) << msg;
  }
}

TEST(Cli, NumericsStillParseGoodValues) {
  auto cli = make_cli({"--r", "1048576", "--tol", "1e-6", "--scale=2.5"});
  EXPECT_EQ(cli.get_int("r", 0), 1048576);
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 0), 1e-6);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 0), 2.5);
}

TEST(Cli, PositionalsPreservedAroundFlags) {
  auto cli = make_cli({"first", "--racecheck", "second", "--r", "8", "third"},
                      {"racecheck"});
  ASSERT_EQ(cli.positional().size(), 3u);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
  EXPECT_EQ(cli.positional()[2], "third");
  EXPECT_TRUE(cli.get_bool("racecheck"));
  EXPECT_EQ(cli.get_int("r", 0), 8);
}

TEST(Cli, TrailingDeclaredAndUndeclaredBooleans) {
  // A flag in last position has no next token either way.
  auto cli = make_cli({"--verbose", "--racecheck"}, {"racecheck"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_bool("racecheck"));
}

}  // namespace
}  // namespace accred
