// Tests for the small utility layer: CLI parsing, table rendering, the
// deterministic RNG, and the compile-time operator functors.
#include <gtest/gtest.h>

#include <sstream>

#include "acc/ops.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "gpusim/stats_io.hpp"
#include "util/table.hpp"

namespace accred {
namespace {

util::Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : storage) argv.push_back(a.data());
  return util::Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, FlagForms) {
  auto cli = make_cli({"--r", "4096", "--full", "--name=table2", "pos1"});
  EXPECT_EQ(cli.get_int("r", 0), 4096);
  EXPECT_TRUE(cli.has("full"));
  EXPECT_EQ(cli.get("name", ""), "table2");
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DoubleAndBooleanTail) {
  auto cli = make_cli({"--tol", "0.5", "--verbose"});
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 0), 0.5);
  EXPECT_TRUE(cli.has("verbose"));
}

TEST(TextTable, AlignsColumnsAndRulesHeader) {
  util::TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Columns align: both value cells start at the same offset.
  const auto l1 = out.find("a     ");
  EXPECT_NE(l1, std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(util::TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(util::TextTable::num(2.0, 0), "2");
}

TEST(Rng, DeterministicAndUniform) {
  util::SplitMix64 a(42);
  util::SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());

  util::SplitMix64 c(7);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double v = c.next_unit();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, RangeFill) {
  std::vector<double> v(1000);
  util::fill_uniform(std::span<double>(v), 3, -2.0, 2.0);
  for (double x : v) {
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 2.0);
  }
  std::vector<float> f(1000);
  util::fill_uniform(std::span<float>(f), 3, 0.0F, 1.0F);
  EXPECT_NE(f[0], f[1]);
}

TEST(StatsIo, RendersAllSections) {
  gpusim::LaunchStats s;
  s.blocks = 4;
  s.threads = 512;
  s.gmem_requests = 100;
  s.gmem_segments = 150;
  s.gmem_bytes = 12800;
  s.smem_requests = 10;
  s.smem_cycles = 20;
  s.barriers = 7;
  s.syncwarps = 3;
  s.device_time_ns = 2.5e6;
  std::ostringstream os;
  gpusim::print_launch_stats(os, s, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("demo: 2.500 ms"), std::string::npos);
  EXPECT_NE(out.find("150 segments"), std::string::npos);
  EXPECT_NE(out.find("bank factor 2.00"), std::string::npos);
  EXPECT_NE(out.find("7 syncthreads"), std::string::npos);
}

TEST(StatsIo, RendersRacecheckSectionOnlyWhenChecked) {
  gpusim::LaunchStats s;
  std::ostringstream off;
  gpusim::print_launch_stats(off, s, "demo");
  EXPECT_EQ(off.str().find("races"), std::string::npos);

  s.racecheck = true;
  s.races = 3;
  gpusim::RaceReport r;
  r.addr = 0x40;
  r.first.write = true;
  r.first.stage = "staging";
  r.second.write = true;
  r.second.stage = "tree";
  s.race_reports.push_back(r);
  std::ostringstream on;
  gpusim::print_launch_stats(on, s, "demo");
  EXPECT_NE(on.str().find("races:  3 conflicting"), std::string::npos)
      << on.str();
  EXPECT_NE(on.str().find("WAW"), std::string::npos) << on.str();
}

TEST(StatsIo, RestoresStreamFlagsAndPrecision) {
  gpusim::LaunchStats s;
  s.blocks = 1;
  s.threads = 32;
  s.device_time_ns = 1.25e6;
  std::ostringstream os;
  os.precision(9);
  os << std::scientific;
  const auto flags_before = os.flags();
  gpusim::print_launch_stats(os, s, "demo");
  EXPECT_EQ(os.precision(), 9);
  EXPECT_EQ(os.flags(), flags_before);
  // The stream still formats the caller's way afterwards.
  os.str("");
  os << 1.5;
  EXPECT_NE(os.str().find("1.500000000e+00"), std::string::npos) << os.str();
}

TEST(CompileTimeOps, FunctorsMatchRuntimeOps) {
  EXPECT_EQ(acc::SumOp{}(3, 4), 7);
  EXPECT_EQ(acc::ProdOp{}(3.0, 4.0), 12.0);
  EXPECT_EQ(acc::MaxOp{}(-1, 5), 5);
  EXPECT_EQ(acc::MinOp{}(-1, 5), -1);
  EXPECT_EQ(acc::SumOp::identity<int>(), 0);
  EXPECT_EQ(acc::ProdOp::identity<double>(), 1.0);
  EXPECT_EQ(acc::MaxOp::identity<int>(), std::numeric_limits<int>::lowest());
  EXPECT_EQ(acc::MinOp::identity<float>(), std::numeric_limits<float>::max());
}

}  // namespace
}  // namespace accred
