// Cascaded reductions (§3.2's "reduction can occur on different variables
// within different levels of parallelism"): over a 3-D sensor cube
// (slabs x rows x samples), compute in ONE device pass
//
//   row_energy[slab][row] = SUM over samples          (vector level)
//   slab_peak[slab]       = MAX over row energies     (worker level)
//   total                 = SUM over slab peaks       (gang level)
//
// — the Fig. 4 chain with mixed operators.
//
//   ./nested_statistics [--slabs S] [--rows R] [--samples N]
#include <iostream>

#include "reduce/cascade.hpp"
#include "gpusim/pool.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  const reduce::Nest3 n{cli.get_int("slabs", 6), cli.get_int("rows", 48),
                        cli.get_int("samples", 4096)};

  gpusim::Device dev;
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto cube = dev.alloc<double>(volume);
  util::fill_uniform(cube.host_span(), 99, 0.0, 1.0);
  auto cv = cube.view();
  auto peaks = dev.alloc<double>(static_cast<std::size_t>(n.nk));
  auto pv = peaks.view();

  reduce::CascadeBindings<double> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    const double v = ctx.ld(cv, std::size_t((k * n.nj + j) * n.ni + i));
    ctx.alu(1);
    return v * v;  // energy
  };
  b.worker_sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, double r) {
    ctx.st(pv, std::size_t(k), r);
  };

  const auto res = reduce::run_cascaded_reduction<double>(
      dev, n, {},
      reduce::CascadeOps{acc::ReductionOp::kSum, acc::ReductionOp::kMax,
                         acc::ReductionOp::kSum},
      b);

  std::cout << "cube " << n.nk << " slabs x " << n.nj << " rows x " << n.ni
            << " samples; one device pass, " << res.kernels
            << " kernels, modeled " << res.stats.device_time_ns / 1e6
            << " ms\n\n";
  util::TextTable t;
  t.header({"slab", "peak row energy"});
  for (std::int64_t k = 0; k < n.nk; ++k) {
    t.row({std::to_string(k),
           util::TextTable::num(peaks.host_span()[std::size_t(k)], 3)});
  }
  t.print(std::cout);
  std::cout << "\nsum of slab peaks = " << *res.scalar << '\n';

  // Host check.
  double expect = 0;
  for (std::int64_t k = 0; k < n.nk; ++k) {
    double peak = std::numeric_limits<double>::lowest();
    for (std::int64_t j = 0; j < n.nj; ++j) {
      double e = 0;
      for (std::int64_t i = 0; i < n.ni; ++i) {
        const double v =
            cube.host_span()[std::size_t((k * n.nj + j) * n.ni + i)];
        e += v * v;
      }
      peak = std::max(peak, e);
    }
    expect += peak;
  }
  std::cout << "host reference     = " << expect << '\n';
  return std::abs(*res.scalar - expect) < 1e-9 * std::abs(expect) ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
