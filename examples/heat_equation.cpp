// 2D heat equation (the paper's Fig. 13a workload): stencil updates with a
// max-reduction convergence check every iteration. Prints the cooling
// curve and the accumulated reduction cost per compiler profile.
//
//   ./heat_equation [--n grid] [--iters N] [--tol X] [--json F] [--trace F]
#include <iostream>

#include "apps/heat.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));

  obs::Session obs(cli, "heat_equation");
  apps::HeatOptions opts;
  opts.ni = opts.nj = cli.get_int("n", 128);
  opts.max_iterations = static_cast<int>(cli.get_int("iters", 200));
  opts.tolerance = cli.get_double("tol", 1e-2);

  std::cout << "2D heat equation, " << opts.ni << "x" << opts.nj
            << " grid, tolerance " << opts.tolerance << "\n\n";

  // Show the convergence trajectory once (profile-independent).
  for (int cap : {10, 50, 100, opts.max_iterations}) {
    apps::HeatOptions probe = opts;
    probe.max_iterations = cap;
    probe.tolerance = 0;
    const auto r = apps::run_heat_reference(probe);
    std::cout << "  after " << cap << " iterations: max dT = "
              << r.final_error << '\n';
  }
  std::cout << '\n';

  util::TextTable table;
  table.header({"compiler", "iterations", "converged", "reduction ms",
                "update ms"});
  for (acc::CompilerId id :
       {acc::CompilerId::kOpenUH, acc::CompilerId::kPgiLike,
        acc::CompilerId::kCapsLike}) {
    opts.compiler = id;
    const apps::HeatResult r = apps::run_heat(opts);
    table.row({std::string(to_string(id)), std::to_string(r.iterations),
               r.converged ? "yes" : "no",
               util::TextTable::num(r.reduction_device_ms),
               util::TextTable::num(r.update_device_ms)});
    obs.record()
        .entry(std::string(to_string(id)))
        .metric("reduction_ms", r.reduction_device_ms)
        .metric("update_ms", r.update_device_ms)
        .metric("iterations", r.iterations)
        .attr("converged", r.converged ? "yes" : "no")
        .stats(r.reduction_stats);
  }
  table.print(std::cout);
  std::cout << "\nThe reduction column is what the paper's Fig. 12a "
               "compares: its cost repeats every iteration, so the "
               "per-reduction gap accumulates.\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
