// Monte Carlo PI (the paper's Fig. 13c): count samples falling inside the
// unit circle with a '+' reduction over a loop distributed across gang and
// vector threads. Coordinates are pre-generated on the host and copied to
// the device, as in the paper.
//
//   ./monte_carlo_pi [--samples N] [--json F] [--trace F]
#include <cmath>
#include <iostream>

#include "apps/montecarlo.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));

  obs::Session obs(cli, "monte_carlo_pi");
  apps::MonteCarloOptions opts;
  opts.samples = cli.get_int("samples", 1 << 22);
  obs.record().meta("samples", opts.samples);

  std::cout << "Monte Carlo PI with " << opts.samples << " samples ("
            << opts.samples * 16 / (1 << 20) << " MB of coordinates)\n\n";

  util::TextTable table;
  table.header({"compiler", "pi estimate", "|error|", "device ms",
                "h2d ms"});
  for (acc::CompilerId id :
       {acc::CompilerId::kOpenUH, acc::CompilerId::kCapsLike,
        acc::CompilerId::kPgiLike}) {
    opts.compiler = id;
    const apps::MonteCarloResult r = apps::run_montecarlo(opts);
    table.row({std::string(to_string(id)),
               util::TextTable::num(r.pi_estimate, 6),
               util::TextTable::num(std::fabs(r.pi_estimate - M_PI), 6),
               util::TextTable::num(r.device_ms),
               util::TextTable::num(r.transfer_ms)});
    obs.record()
        .entry(std::string(to_string(id)))
        .metric("device_ms", r.device_ms)
        .metric("h2d_ms", r.transfer_ms)
        .attr("pi", util::TextTable::num(r.pi_estimate, 6))
        .stats(r.stats);
  }
  table.print(std::cout);
  std::cout << "\nAll profiles count exactly the same hits; the modeled "
               "time differs (Fig. 12c's shape).\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
