// Dot product through the OpenMP 4.0 facade (§6 of the paper: the same
// reduction machinery applies to OpenMP's two-level hierarchy — teams map
// to gangs, parallel-for/simd threads to vector lanes, and the worker
// level is simply ignored).
//
//   ./openmp_dot_product [--n elements]
#include <iostream>

#include "acc/openmp.hpp"
#include "gpusim/pool.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  const std::int64_t n = cli.get_int("n", 1 << 20);

  gpusim::Device dev;
  auto x = dev.alloc<double>(static_cast<std::size_t>(n));
  auto y = dev.alloc<double>(static_cast<std::size_t>(n));
  util::fill_uniform(x.host_span(), 1, -1.0, 1.0);
  util::fill_uniform(y.host_span(), 2, -1.0, 1.0);
  auto xv = x.view();
  auto yv = y.view();

  // The library form of the combined construct
  //   "#pragma omp target teams distribute parallel for simd
  //    num_teams(192) num_threads(128) reduction(+:dot) map(...)"
  acc::OmpTarget target(dev);
  target.loop("omp target teams distribute parallel for simd num_teams(192) "
              "num_threads(128) reduction(+:dot) map(to: x[0:n], y[0:n])",
              n)
      .var("dot", acc::DataType::kDouble, /*accum_level=*/0);

  const auto plan = target.plan();
  std::cout << "OpenMP mapping: strategy " << to_string(plan.kind) << ", "
            << plan.launch.num_gangs << " teams x "
            << plan.launch.vector_length
            << " threads (workers = " << plan.launch.num_workers
            << ", ignored per the paper's ss6)\n";

  reduce::Bindings<double> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t i, std::int64_t,
                  std::int64_t) {
    ctx.alu(1);  // the multiply (FMA disabled)
    return ctx.ld(xv, std::size_t(i)) * ctx.ld(yv, std::size_t(i));
  };
  const auto res = target.run<double>(b);

  double host_dot = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    host_dot += x.host_span()[std::size_t(i)] * y.host_span()[std::size_t(i)];
  }
  std::cout << "device dot = " << *res.scalar << "\nhost   dot = " << host_dot
            << "\nmodeled GPU time: " << res.stats.device_time_ns / 1e6
            << " ms over " << res.kernels << " kernels\n";
  return std::abs(*res.scalar - host_dot) < 1e-6 * n ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
