// Naive matrix multiplication with the inner product as a vector
// reduction (the paper's Fig. 13b): "most developers only parallelize the
// outer two loops ... however we can also parallelize the third loop
// because essentially it just includes the sum reduction operations."
//
//   ./matrix_multiply [--n size] [--no-verify] [--json F] [--trace F]
#include <cmath>
#include <iostream>

#include "apps/matmul.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"no-verify", "no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));

  obs::Session obs(cli, "matrix_multiply");
  apps::MatmulOptions opts;
  opts.n = cli.get_int("n", 96);

  std::cout << "matmul " << opts.n << "x" << opts.n
            << ", k loop mapped to a vector '+' reduction\n\n";

  util::TextTable table;
  table.header({"compiler", "device ms", "bank factor", "max |err|"});
  std::vector<float> ref;
  if (!cli.has("no-verify")) ref = apps::matmul_reference(opts);

  for (acc::CompilerId id :
       {acc::CompilerId::kOpenUH, acc::CompilerId::kCapsLike}) {
    opts.compiler = id;
    const apps::MatmulResult r = apps::run_matmul(opts);
    double max_err = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      max_err = std::max(max_err,
                         static_cast<double>(std::fabs(r.c[i] - ref[i])));
    }
    table.row({std::string(to_string(id)), util::TextTable::num(r.device_ms),
               util::TextTable::num(gpusim::bank_conflict_factor(r.stats)),
               ref.empty() ? "skipped" : util::TextTable::num(max_err, 6)});
    obs::BenchEntry& e = obs.record()
                             .entry(std::string(to_string(id)))
                             .metric("device_ms", r.device_ms)
                             .stats(r.stats);
    if (!ref.empty()) e.metric("max_abs_err", max_err);
  }
  table.print(std::cout);
  std::cout << "\n(pgi_like is omitted: PGI 13.10 failed the vector '+' "
               "reduction, Table 2 / Fig. 12b.)\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
