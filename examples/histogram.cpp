// Histogram via the array-reduction extension (§5's Komoda et al. feature:
// OpenACC of the paper's era only allowed scalar reduction variables, so
// "every element of an array needs to do reduction" had no spelling — this
// library lifts the paper's scalar machinery to arrays).
//
//   ./histogram [--n samples] [--bins B]
#include <iostream>

#include "reduce/array_reduce.hpp"
#include "gpusim/pool.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  const std::int64_t n = cli.get_int("n", 1 << 20);
  const auto bins = static_cast<std::size_t>(cli.get_int("bins", 16));

  gpusim::Device dev;
  auto data = dev.alloc<double>(static_cast<std::size_t>(n));
  util::fill_uniform(data.host_span(), 7, 0.0, 1.0);
  auto dv = data.view();

  // Equivalent directive (extension syntax):
  //   #pragma acc loop gang vector reduction(+:hist[0:bins])
  auto res = reduce::run_array_reduction<std::int64_t>(
      dev, n, bins, {}, acc::ReductionOp::kSum,
      [=](gpusim::ThreadCtx& ctx, std::int64_t i,
          reduce::ArrayAccum<std::int64_t>& hist) {
        const double v = ctx.ld(dv, static_cast<std::size_t>(i));
        hist.add(std::min(bins - 1,
                          static_cast<std::size_t>(v * double(bins))),
                 1);
      });

  std::cout << "histogram of " << n << " uniform samples over " << bins
            << " bins (modeled GPU time "
            << res.stats.device_time_ns / 1e6 << " ms, " << res.kernels
            << " kernels)\n\n";
  util::TextTable t;
  t.header({"bin", "count", "bar"});
  std::int64_t total = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    total += res.values[b];
    const auto stars = static_cast<std::size_t>(
        res.values[b] * 48 / (n / static_cast<std::int64_t>(bins)));
    t.row({std::to_string(b), std::to_string(res.values[b]),
           std::string(std::min<std::size_t>(stars, 60), '*')});
  }
  t.print(std::cout);
  std::cout << "\ntotal counted: " << total << " (expected " << n << ")\n";
  return total == n ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
