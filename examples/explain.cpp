// Compiler-explorer-style tool: feed an annotated nest on the command
// line, see what the compiler does with it — the analyzed reduction span,
// the chosen strategy and buffers, per-profile differences, and the
// generated CUDA source.
//
//   ./explain --nest "gang=1000; worker=100; vector reduction(+:s)=500"
//             [--type float] [--accum 2] [--use 1] [--compiler openuh]
//             [--cuda]
//
// Each ';'-separated element is an OpenACC loop directive (without the
// 'loop' keyword) with '=extent' appended.
#include <iostream>
#include <sstream>

#include "acc/parser.hpp"
#include "acc/planner.hpp"
#include "codegen/cuda_emitter.hpp"
#include "gpusim/pool.hpp"
#include "util/cli.hpp"

namespace {

using namespace accred;

acc::DataType parse_type(const std::string& s) {
  if (s == "int") return acc::DataType::kInt32;
  if (s == "unsigned") return acc::DataType::kUInt32;
  if (s == "long" || s == "int64") return acc::DataType::kInt64;
  if (s == "float") return acc::DataType::kFloat;
  if (s == "double") return acc::DataType::kDouble;
  throw std::invalid_argument("unknown type '" + s + "'");
}

acc::CompilerId parse_compiler(const std::string& s) {
  if (s == "openuh") return acc::CompilerId::kOpenUH;
  if (s == "pgi_like" || s == "pgi") return acc::CompilerId::kPgiLike;
  if (s == "caps_like" || s == "caps") return acc::CompilerId::kCapsLike;
  throw std::invalid_argument("unknown compiler '" + s + "'");
}

std::string trim(std::string s) {
  const auto b = s.find_first_not_of(" \t");
  const auto e = s.find_last_not_of(" \t");
  return b == std::string::npos ? "" : s.substr(b, e - b + 1);
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"cuda", "no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  try {
    acc::NestIR nest;
    std::string var_name = "s";
    {
      std::stringstream ss(cli.get(
          "nest", "gang=1000; worker=100; vector reduction(+:s)=500"));
      for (std::string part; std::getline(ss, part, ';');) {
        part = trim(part);
        const auto eq = part.rfind('=');
        if (eq == std::string::npos) {
          throw std::invalid_argument("loop element needs '=extent': " +
                                      part);
        }
        const acc::LoopDirective d =
            acc::parse_loop_directive("loop " + part.substr(0, eq));
        acc::LoopSpec spec;
        spec.par = d.seq ? 0 : d.par;
        spec.extent = std::stoll(part.substr(eq + 1));
        spec.reductions = d.reductions;
        if (!d.reductions.empty()) var_name = d.reductions.front().var;
        nest.loops.push_back(std::move(spec));
      }
    }
    const auto type = parse_type(cli.get("type", "float"));
    const int nloops = static_cast<int>(nest.loops.size());
    const int accum = static_cast<int>(cli.get_int("accum", nloops - 1));
    const int use = static_cast<int>(cli.get_int("use", -1));
    nest.vars = {{var_name, type, accum, use}};
    const auto id = parse_compiler(cli.get("compiler", "openuh"));
    const acc::CompilerProfile& prof = acc::profile(id);

    std::cout << "== analysis (" << to_string(id) << ") ==\n";
    const acc::AnalysisResult analysis = analyze(nest, prof.discipline);
    for (const acc::ReductionInfo& r : analysis.reductions) {
      std::cout << "variable '" << r.var.name << "' ("
                << to_string(r.var.type) << ", op "
                << to_string(r.op) << "): span = "
                << acc::par_mask_to_string(r.span)
                << (r.same_loop ? " (same loop)" : "") << "\n";
    }
    for (const std::string& note : analysis.notes) {
      std::cout << note << '\n';
    }

    const acc::ExecutionPlan plan =
        plan_reduction(nest, analysis.reductions.front(), prof);
    std::cout << "\n== plan ==\nstrategy: " << to_string(plan.kind)
              << "\nkernels: " << plan.kernel_count
              << "\nlaunch: " << plan.launch.num_gangs << " gangs x "
              << plan.launch.num_workers << " workers x "
              << plan.launch.vector_length << " vector"
              << "\nshared staging: " << plan.shared_bytes << " bytes"
              << "\nglobal partials: " << plan.global_buffer_elems
              << " elements\nassignment: "
              << (plan.strategy.assignment == reduce::Assignment::kWindow
                      ? "window sliding"
                      : "blocking")
              << "\nstaging: "
              << (plan.strategy.staging == reduce::Staging::kShared
                      ? "shared memory"
                      : "global memory")
              << "\n";

    if (cli.has("cuda")) {
      std::cout << "\n== generated CUDA ==\n"
                << codegen::emit_cuda(plan, {});
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
