// Quickstart: sum a vector on the simulated GPU through the OpenACC-style
// front door — directive text in, verified scalar out — then peek at the
// modeled Kepler cost and at what the other compiler profiles would do.
//
//   ./quickstart [--n elements]
#include <iostream>
#include <numeric>
#include <vector>

#include "acc/region.hpp"
#include "gpusim/stats_io.hpp"
#include "gpusim/pool.hpp"
#include "util/cli.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  const std::int64_t n = cli.get_int("n", 1 << 20);

  // 1. A device and some data.
  gpusim::Device dev;
  std::vector<double> host(static_cast<std::size_t>(n));
  std::iota(host.begin(), host.end(), 1.0);
  auto data = dev.alloc<double>(host.size());
  data.copy_from_host(host);
  auto view = data.view();

  // 2. Describe the loop the OpenACC way. This is the library form of
  //
  //      #pragma acc parallel num_gangs(192) vector_length(128)
  //      #pragma acc loop gang vector reduction(+:total)
  //      for (i = 0; i < n; i++) total += data[i];
  //
  acc::Region region(dev);
  region.parallel("parallel num_gangs(192) vector_length(128)")
      .loop("loop gang vector reduction(+:total)", n)
      .var("total", acc::DataType::kDouble, /*accum_level=*/0);

  // 3. The loop body, as a callable over cost-modeled device memory.
  reduce::Bindings<double> body;
  body.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t i, std::int64_t,
                     std::int64_t) {
    return ctx.ld(view, static_cast<std::size_t>(i));
  };

  // 4. Plan (see which strategy the compiler picked), then run.
  const acc::ExecutionPlan plan = region.plan();
  std::cout << "strategy: " << to_string(plan.kind) << ", kernels: "
            << plan.kernel_count << ", partials buffer: "
            << plan.global_buffer_elems << " elements\n";

  const auto result = region.run<double>(body);
  const double expected = static_cast<double>(n) * (n + 1) / 2.0;
  std::cout << "sum(1..n)   = " << *result.scalar << " (expected "
            << expected << ")\n";
  gpusim::print_launch_stats(std::cout, result.stats, "reduction");
  std::cout << '\n';

  // 5. The same loop through the modeled commercial compilers.
  for (acc::CompilerId id :
       {acc::CompilerId::kPgiLike, acc::CompilerId::kCapsLike}) {
    acc::Region other(dev, acc::profile(id));
    other.parallel("parallel num_gangs(192) vector_length(128)")
        .loop("loop gang vector reduction(+:total)", n)
        .var("total", acc::DataType::kDouble, 0);
    const auto r = other.run<double>(body);
    std::cout << to_string(id) << ": same result " << *r.scalar
              << ", modeled time " << r.stats.device_time_ns / 1e6
              << " ms\n";
  }
  return 0;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
