// Cascade-fusion ablation: the fused chain kernel (reduce/fused_cascade.hpp
// via the planner's kFusedCascade) against the same chain run as one launch
// per stage. Two workloads:
//
//   fig4_chain3       the paper's Fig. 4 shape — i_sum (vector) -> j_sum
//                     (worker) -> sum (gang). Unfused: 3 stage launches +
//                     finalize, with each intermediate level round-tripping
//                     through global memory. Fused: ONE kernel + finalize,
//                     intermediates staying in the shared slab. The scalar
//                     must be bit-identical (same fold orders by design).
//   sum_mean_variance the classic two-pass statistics chain — sum(x) then
//                     sum(x^2), mean/variance on the host. Unfused: two
//                     full passes over x (2 same-loop reductions, 4
//                     kernels). Fused: one pass folding a (sum, sumsq)
//                     payload pair (2 kernels), halving the data traffic.
//
// The bench FAILS (exit 1) unless the fused sum_mean_variance run models
// at least 20% less device time than the unfused one — the fusion pass's
// reason to exist, enforced in CI with a gated JSON baseline.
//
// Flags: --r N (reduction extent, default 2^14; x64 volume)
//        --json FILE / --trace FILE, --sim-threads N, --no-fastpath
#include <cmath>
#include <iostream>

#include "acc/executor.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "reduce/fused_cascade.hpp"
#include "reduce/payload_reduce.hpp"
#include "reduce/rmp_reduce.hpp"
#include "testsuite/values.hpp"
#include "util/cli.hpp"
#include "util/main_guard.hpp"
#include "util/table.hpp"

namespace {

using namespace accred;

struct Ablation {
  double unfused_ms = 0;
  double fused_ms = 0;
  int unfused_kernels = 0;
  int fused_kernels = 0;
  gpusim::LaunchStats unfused_stats;
  gpusim::LaunchStats fused_stats;
  bool identical = false;  ///< fused result matched the unfused one
};

/// Fig. 4: vector -> worker -> gang sum chain over dims {r, 2, 32}.
Ablation run_fig4_chain(std::int64_t r) {
  const reduce::Nest3 dims{r, 2, 32};
  const acc::LaunchConfig cfg;
  const reduce::StrategyConfig sc;
  const auto volume =
      static_cast<std::size_t>(dims.nk * dims.nj * dims.ni);

  gpusim::Device dev;
  auto input = dev.alloc<double>(volume, "input");
  {
    auto host = input.host_span();
    for (std::size_t i = 0; i < volume; ++i) {
      host[i] = testsuite::testsuite_value<double>(acc::ReductionOp::kSum, i);
    }
  }
  auto in_view = input.view();
  const auto [nk, nj, ni] = dims;

  Ablation ab;

  // ---- unfused: one launch per stage, intermediates in global memory --
  {
    auto vec_out = dev.alloc<double>(static_cast<std::size_t>(nk * nj));
    auto wrk_out = dev.alloc<double>(static_cast<std::size_t>(nk));
    auto vec_view = vec_out.view();
    auto wrk_view = wrk_out.view();

    reduce::Bindings<double> vb;
    vb.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                     std::int64_t i) {
      return ctx.ld(in_view, static_cast<std::size_t>((k * nj + j) * ni + i));
    };
    vb.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  double res) {
      ctx.st(vec_view, static_cast<std::size_t>(k * nj + j), res);
    };
    auto s1 = reduce::run_vector_reduction<double>(
        dev, dims, cfg, acc::ReductionOp::kSum, vb, sc);

    reduce::Bindings<double> wb;
    wb.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                     std::int64_t) {
      return ctx.ld(vec_view, static_cast<std::size_t>(k * nj + j));
    };
    wb.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t,
                  double res) {
      ctx.st(wrk_view, static_cast<std::size_t>(k), res);
    };
    auto s2 = reduce::run_worker_reduction<double>(
        dev, dims, cfg, acc::ReductionOp::kSum, wb, sc);

    reduce::Bindings<double> gb;
    gb.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t,
                     std::int64_t) {
      return ctx.ld(wrk_view, static_cast<std::size_t>(k));
    };
    auto s3 = reduce::run_gang_reduction<double>(
        dev, dims, cfg, acc::ReductionOp::kSum, gb, sc);

    ab.unfused_stats = s1.stats;
    ab.unfused_stats += s2.stats;
    ab.unfused_stats += s3.stats;
    ab.unfused_kernels = s1.kernels + s2.kernels + s3.kernels;
    ab.unfused_ms = ab.unfused_stats.device_time_ns / 1e6;

    // ---- fused: one kernel + finalize ------------------------------
    std::vector<acc::FusedStage> chain = {
        {acc::ReductionOp::kSum, acc::Par::kVector, "i_sum"},
        {acc::ReductionOp::kSum, acc::Par::kWorker, "j_sum"},
        {acc::ReductionOp::kSum, acc::Par::kGang, "sum"},
    };
    reduce::FusedChainBindings<double> fb;
    fb.contrib = vb.contrib;
    auto fused = reduce::run_fused_chain<double>(dev, chain, dims, cfg, fb,
                                                 sc);
    ab.fused_stats = fused.stats;
    ab.fused_kernels = fused.kernels;
    ab.fused_ms = ab.fused_stats.device_time_ns / 1e6;
    // Same fold orders stage for stage: the scalars must agree bit for bit.
    ab.identical = fused.scalar.has_value() && s3.scalar.has_value() &&
                   *fused.scalar == *s3.scalar;
  }
  return ab;
}

/// (sum, sum of squares) payload pair for the one-pass moments fold.
struct Moments {
  double sum = 0;
  double sumsq = 0;
};
struct MomentsOp {
  [[nodiscard]] static constexpr Moments identity() { return {}; }
  [[nodiscard]] constexpr Moments apply(Moments a, Moments b) const {
    return {a.sum + b.sum, a.sumsq + b.sumsq};
  }
};

/// mean/variance chain: two same-loop passes vs one fused payload pass.
Ablation run_sum_mean_variance(std::int64_t r) {
  const std::int64_t n = r * 64;
  const acc::LaunchConfig cfg;
  const reduce::StrategyConfig sc;

  gpusim::Device dev;
  auto input = dev.alloc<double>(static_cast<std::size_t>(n), "x");
  {
    auto host = input.host_span();
    for (std::int64_t i = 0; i < n; ++i) {
      host[static_cast<std::size_t>(i)] =
          testsuite::testsuite_value<double>(acc::ReductionOp::kSum,
                                             static_cast<std::size_t>(i));
    }
  }
  auto in_view = input.view();

  Ablation ab;
  double mean_unfused = 0;
  double var_unfused = 0;

  // ---- unfused: two full passes over x ------------------------------
  {
    reduce::Bindings<double> sum_b;
    sum_b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t idx,
                        std::int64_t, std::int64_t) {
      return ctx.ld(in_view, static_cast<std::size_t>(idx));
    };
    auto s1 = reduce::run_same_loop_reduction<double>(
        dev, n, cfg, acc::ReductionOp::kSum, sum_b, sc);

    reduce::Bindings<double> sq_b;
    sq_b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t idx,
                       std::int64_t, std::int64_t) {
      const double x = ctx.ld(in_view, static_cast<std::size_t>(idx));
      ctx.alu(1);
      return x * x;
    };
    auto s2 = reduce::run_same_loop_reduction<double>(
        dev, n, cfg, acc::ReductionOp::kSum, sq_b, sc);

    ab.unfused_stats = s1.stats;
    ab.unfused_stats += s2.stats;
    ab.unfused_kernels = s1.kernels + s2.kernels;
    ab.unfused_ms = ab.unfused_stats.device_time_ns / 1e6;
    mean_unfused = *s1.scalar / static_cast<double>(n);
    var_unfused =
        *s2.scalar / static_cast<double>(n) - mean_unfused * mean_unfused;
  }

  // ---- fused: one pass folding the (sum, sumsq) pair ----------------
  {
    auto res = reduce::run_payload_reduction<Moments>(
        dev, n, cfg, MomentsOp{},
        [=](gpusim::ThreadCtx& ctx, std::int64_t idx) {
          const double x = ctx.ld(in_view, static_cast<std::size_t>(idx));
          ctx.alu(1);
          return Moments{x, x * x};
        },
        sc);
    ab.fused_stats = res.stats;
    ab.fused_kernels = res.kernels;
    ab.fused_ms = ab.fused_stats.device_time_ns / 1e6;
    const double mean = res.value.sum / static_cast<double>(n);
    const double var =
        res.value.sumsq / static_cast<double>(n) - mean * mean;
    // Different tree shapes (per-thread vs per-block partials), so compare
    // within rounding rather than bit for bit.
    const double tol = 1e-9 * (std::abs(var_unfused) + 1.0);
    ab.identical = std::abs(mean - mean_unfused) <=
                       1e-9 * (std::abs(mean_unfused) + 1.0) &&
                   std::abs(var - var_unfused) <= tol;
  }
  return ab;
}

void report(obs::Session& obs, util::TextTable& t, const std::string& name,
            const Ablation& ab) {
  const double cut = 100.0 * (1.0 - ab.fused_ms / ab.unfused_ms);
  t.row({name, util::TextTable::num(ab.unfused_ms, 3),
         util::TextTable::num(ab.fused_ms, 3),
         std::to_string(ab.unfused_kernels) + " -> " +
             std::to_string(ab.fused_kernels),
         util::TextTable::num(cut, 1) + "%", ab.identical ? "yes" : "NO"});
  obs.record()
      .entry(name + "/unfused")
      .metric("device_ms", ab.unfused_ms)
      .metric("kernels", ab.unfused_kernels)
      .stats(ab.unfused_stats);
  obs.record()
      .entry(name + "/fused")
      .metric("device_ms", ab.fused_ms)
      .metric("kernels", ab.fused_kernels)
      .metric("device_time_cut_pct", cut)
      .attr("results_match", ab.identical ? "yes" : "NO")
      .stats(ab.fused_stats);
}

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  obs::Session obs(cli, "cascade_fusion");
  const std::int64_t r = cli.get_int("r", 1 << 14);

  std::cout << "== Cascade-fusion ablation (fused chain kernel vs one "
               "launch per stage) ==\n\n";
  util::TextTable t;
  t.header({"workload", "unfused ms", "fused ms", "kernels", "cut",
            "results match"});

  const Ablation fig4 = run_fig4_chain(r);
  report(obs, t, "fig4_chain3", fig4);
  const Ablation smv = run_sum_mean_variance(r);
  report(obs, t, "sum_mean_variance", smv);
  t.print(std::cout);

  bool ok = obs.finish();
  if (!fig4.identical) {
    std::cout << "\nFAIL: fused fig4 chain result is not bit-identical to "
                 "the unfused sequence\n";
    ok = false;
  }
  if (!smv.identical) {
    std::cout << "\nFAIL: fused moments diverged from the two-pass values\n";
    ok = false;
  }
  if (smv.fused_ms > 0.8 * smv.unfused_ms) {
    std::cout << "\nFAIL: fused sum_mean_variance models only "
              << 100.0 * (1.0 - smv.fused_ms / smv.unfused_ms)
              << "% device-time cut (gate: >= 20%)\n";
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
