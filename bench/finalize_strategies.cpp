// E11 (extension ablation): the paper's Fig. 5c finalizes the per-gang
// partials with ONE block ("another kernel is launched to do the reduction
// within only one block"). That is the right call for 192 gang partials,
// but the RMP strategies produce gangs x workers x vector partials; this
// harness sweeps the buffer size and locates the crossover against the
// classic two-pass (multi-block) finalize.
//
// Flags: --counts a,b,c (default 192,2048,16384,65536,196608)
//        --json FILE / --trace FILE (structured record / event trace)
#include <iostream>
#include <sstream>

#include "reduce/finalize.hpp"
#include "testsuite/values.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace accred;

gpusim::LaunchStats run(std::size_t count, bool two_pass) {
  gpusim::Device dev;
  auto in = dev.alloc<float>(count);
  {
    auto host = in.host_span();
    for (std::size_t i = 0; i < count; ++i) {
      host[i] = testsuite::testsuite_value<float>(acc::ReductionOp::kSum, i);
    }
  }
  auto out = dev.alloc<float>(1);
  reduce::StrategyConfig sc;
  return two_pass ? reduce::launch_finalize_two_pass(
                        dev, in.view(), count, out.view(),
                        acc::ReductionOp::kSum, sc)
                  : reduce::launch_finalize(dev, in.view(), count,
                                            out.view(),
                                            acc::ReductionOp::kSum, sc);
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  obs::Session obs(cli, "finalize_strategies");
  std::vector<std::size_t> counts;
  {
    std::stringstream ss(cli.get("counts", "192,2048,16384,65536,196608"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      counts.push_back(std::stoull(tok));
    }
  }

  std::cout << "== Finalize-kernel strategy ablation (extension; the paper "
               "uses the single-block form of Fig. 5c) ==\n\n";
  util::TextTable t;
  t.header({"partials", "single-block ms", "two-pass ms", "winner"});
  for (std::size_t count : counts) {
    const auto one = run(count, false);
    const auto two = run(count, true);
    t.row({std::to_string(count),
           util::TextTable::num(one.device_time_ns / 1e6, 3),
           util::TextTable::num(two.device_time_ns / 1e6, 3),
           one.device_time_ns <= two.device_time_ns ? "single-block"
                                                    : "two-pass"});
    obs.record()
        .entry(std::to_string(count) + "/single_block")
        .stats(one);
    obs.record()
        .entry(std::to_string(count) + "/two_pass")
        .attr("winner", one.device_time_ns <= two.device_time_ns
                            ? "single-block"
                            : "two-pass")
        .stats(two);
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: the single block wins while the buffer is "
               "a few thousand entries (launch overhead dominates); the "
               "two-pass takes over once one SM would serialize the fold "
               "(the RMP buffers of 3.2).\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
