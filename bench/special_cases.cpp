// E10: the special considerations of §3.3 —
//   (a) vector sizes that are not a multiple of the warp size stay correct
//       but degrade (the warp-synchronous tail turns off, pre-fold steps
//       appear),
//   (b) mixed-datatype multi-variable clauses: OpenUH's max-type shared
//       slab vs per-variable sections (shared-memory pressure),
//   (c) the global-memory staging fallback when shared memory is reserved.
//
// Flags: --r N (reduction extent, default 2^16)
//        --json FILE / --trace FILE (structured record / event trace)
#include <iostream>

#include "reduce/multivar.hpp"
#include "reduce/vector_reduce.hpp"
#include "testsuite/values.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace accred;

gpusim::LaunchStats vector_case(std::int64_t r, std::uint32_t vlen,
                                reduce::Staging staging) {
  gpusim::Device dev;
  const reduce::Nest3 n{2, 8, r};
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto input = dev.alloc<float>(volume);
  {
    auto host = input.host_span();
    for (std::size_t i = 0; i < volume; ++i) {
      host[i] = testsuite::testsuite_value<float>(acc::ReductionOp::kSum, i);
    }
  }
  auto out = dev.alloc<float>(static_cast<std::size_t>(n.nk * n.nj));
  auto iv = input.view();
  auto ov = out.view();
  reduce::Bindings<float> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
               float v) {
    ctx.st(ov, static_cast<std::size_t>(k * n.nj + j), v);
  };
  acc::LaunchConfig cfg;
  cfg.num_gangs = 2;
  cfg.num_workers = 8;
  cfg.vector_length = vlen;
  reduce::StrategyConfig sc;
  sc.staging = staging;
  return reduce::run_vector_reduction<float>(dev, n, cfg,
                                             acc::ReductionOp::kSum, b, sc)
      .stats;
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  const std::int64_t r = cli.get_int("r", 1 << 16);
  obs::Session obs(cli, "special_cases");
  obs.record().meta("reduction_extent", r);

  std::cout << "== Special cases of 3.3 (vector reduction, extent " << r
            << ") ==\n\n(a) vector sizes off the warp multiple:\n";
  {
    util::TextTable t;
    t.header({"vector len", "device ms", "barriers", "syncwarps",
              "note"});
    for (std::uint32_t vlen : {128u, 96u, 64u, 48u, 33u}) {
      const auto s = vector_case(r, vlen, reduce::Staging::kShared);
      t.row({std::to_string(vlen),
             util::TextTable::num(s.device_time_ns / 1e6),
             std::to_string(s.barriers), std::to_string(s.syncwarps),
             vlen % 32 == 0 ? "warp multiple" : "tail disabled, pre-fold"});
      obs.record()
          .entry("vlen/" + std::to_string(vlen))
          .attr("warp_multiple", vlen % 32 == 0 ? "yes" : "no")
          .stats(s);
    }
    t.print(std::cout);
  }

  std::cout << "\n(b) shared staging vs the global fallback:\n";
  {
    util::TextTable t;
    t.header({"staging", "device ms", "gmem segments", "smem requests"});
    for (auto [name, key, st] :
         {std::tuple{"shared (default)", "shared", reduce::Staging::kShared},
          std::tuple{"global fallback", "global", reduce::Staging::kGlobal}}) {
      const auto s = vector_case(r, 128, st);
      t.row({name, util::TextTable::num(s.device_time_ns / 1e6),
             std::to_string(s.gmem_segments),
             std::to_string(s.smem_requests)});
      obs.record().entry(std::string("staging/") + key)
          .attr("staging", name)
          .stats(s);
    }
    t.print(std::cout);
  }

  std::cout << "\n(c) mixed-type multi-variable staging footprint "
               "(1024-thread block):\n";
  {
    util::TextTable t;
    t.header({"variables", "max-slab bytes (OpenUH)", "sections bytes",
              "sections fit in 48 KiB?"});
    std::vector<reduce::MultiVarSpec> vars;
    for (int nvars = 1; nvars <= 12; ++nvars) {
      reduce::MultiVarSpec v;
      v.type = (nvars % 2 == 0) ? acc::DataType::kInt32
                                : acc::DataType::kDouble;
      vars.push_back(v);
      const std::size_t slab = reduce::multi_staging_bytes(
          vars, 1024, reduce::SlabPolicy::kSharedMaxSlab);
      const std::size_t sections = reduce::multi_staging_bytes(
          vars, 1024, reduce::SlabPolicy::kPerVarSections);
      t.row({std::to_string(nvars), std::to_string(slab),
             std::to_string(sections),
             sections <= 48 * 1024 ? "yes" : "NO"});
      obs.record()
          .entry("multivar/" + std::to_string(nvars))
          .metric("slab_bytes", static_cast<std::int64_t>(slab))
          .metric("sections_bytes", static_cast<std::int64_t>(sections))
          .attr("sections_fit", sections <= 48 * 1024 ? "yes" : "NO");
    }
    t.print(std::cout);
  }
  std::cout << "\nexpected shapes: off-warp vector lengths lose the "
               "syncwarp tail and add barriers; the global fallback trades "
               "shared traffic for extra global segments; the OpenUH slab "
               "stays at one max-type footprint while sections grow "
               "linearly past the hardware limit.\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
