// E1 / E2: regenerates the paper's Table 2 (and the Fig. 11 series) —
// the reduction testsuite across 7 positions x operators x types x
// {openuh, pgi_like, caps_like}.
//
// Flags:
//   --r N        reduction-loop extent (default 2^17; paper's scale 2^20)
//   --full       shorthand for --r 1048576
//   --grid full  run all 9 operators x 5 types instead of Table 2's grid
//   --fig11      also print the Fig. 11 per-position series
//   --no-copy    drop the parallel temp-copy traffic of Fig. 4
//   --racecheck  run every cell under the dynamic race detector
//                (gpusim/racecheck.hpp; env: ACCRED_RACECHECK); reports
//                land in the JSON record for tools/racecheck_report
//   --faults SPEC    arm deterministic fault injection on every cell
//                    (gpusim/faultinject.hpp grammar; env: ACCRED_FAULTS);
//                    fired faults land in the record for tools/fault_report
//   --max-retries N  same-configuration re-runs after a failed attempt
//                    before the degradation ladder engages (default 1)
//   --no-degrade     retry only: never fall back to the all-barriers tree
//                    or a smaller launch geometry
//   --error-on-race  escalate racecheck conflicts into a structured
//                    LaunchError (implies the cell fails unless recovered)
//   --max-steps N    per-block watchdog barrier-wave budget (0 = default:
//                    ACCRED_MAX_STEPS env, else the built-in limit)
//   --emit-cuda DIR  also write the OpenUH-generated CUDA kernel source
//                    for one representative case per position
//   --sim-threads N  host worker threads per kernel launch (0 = auto from
//                    ACCRED_SIM_THREADS / hardware; results are identical
//                    for every value)
//   --json FILE      write the structured accred.bench record (one entry
//                    per Table 2 cell) alongside the text table
//   --trace FILE     export a chrome://tracing event trace (env:
//                    ACCRED_TRACE)
#include <fstream>
#include <iostream>

#include "codegen/cuda_emitter.hpp"
#include "obs/record.hpp"
#include "testsuite/report.hpp"
#include "gpusim/pool.hpp"
#include "util/cli.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"full", "no-copy", "fig11", "racecheck",
                                   "no-degrade", "error-on-race", "no-fastpath",
                                   "ext"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  obs::Session obs(cli, "table2_testsuite");

  testsuite::RunnerOptions opts;
  opts.reduction_extent = cli.get_int("r", 1 << 17);
  if (cli.get_bool("full")) opts.reduction_extent = 1 << 20;
  opts.parallel_work = !cli.get_bool("no-copy");
  opts.racecheck = cli.get_bool("racecheck");
  opts.faults = cli.get("faults", "");
  opts.max_retries = static_cast<int>(cli.get_int("max-retries", 1));
  opts.degrade = !cli.get_bool("no-degrade");
  opts.error_on_race = cli.get_bool("error-on-race");
  opts.max_steps = static_cast<std::uint64_t>(cli.get_int("max-steps", 0));
  testsuite::Runner runner(opts);

  const bool full_grid = cli.get("grid", "table2") == "full";
  const auto grid =
      full_grid ? testsuite::full_grid() : testsuite::table2_grid();
  const std::vector<acc::CompilerId> compilers = {
      acc::CompilerId::kOpenUH, acc::CompilerId::kPgiLike,
      acc::CompilerId::kCapsLike};
  const std::vector<acc::DataType> types =
      full_grid ? std::vector<acc::DataType>{acc::DataType::kInt32,
                                             acc::DataType::kUInt32,
                                             acc::DataType::kInt64,
                                             acc::DataType::kFloat,
                                             acc::DataType::kDouble}
                : std::vector<acc::DataType>{acc::DataType::kInt32,
                                             acc::DataType::kFloat,
                                             acc::DataType::kDouble};

  std::cout << "== Table 2 reproduction ==\n"
            << "reduction extent: " << opts.reduction_extent
            << " (paper: 1048576), volume per case: "
            << 64 * opts.reduction_extent << " elements, launch: "
            << opts.config.num_gangs << " gangs x " << opts.config.num_workers
            << " workers x " << opts.config.vector_length << " vector\n\n";

  testsuite::Report report;
  for (const testsuite::CaseSpec& spec : grid) {
    for (acc::CompilerId id : compilers) {
      report.add({spec.pos, spec.op, spec.type, id}, runner.run(id, spec));
    }
  }

  if (cli.has("emit-cuda")) {
    const std::string dir = cli.get("emit-cuda", ".");
    for (acc::Position pos : testsuite::all_positions()) {
      const testsuite::CaseSpec spec{pos, acc::ReductionOp::kSum,
                                     acc::DataType::kFloat};
      const auto plan = testsuite::plan_for_case(acc::CompilerId::kOpenUH,
                                                 spec, opts);
      std::string name(to_string(pos));
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      const std::string path = dir + "/reduction_" + name + ".cu";
      std::ofstream out(path);
      out << codegen::emit_cuda(plan, {});
      std::cout << "wrote " << path << "\n";
    }
    std::cout << '\n';
  }

  report.print_table2(std::cout, types, compilers);
  std::cout << '\n';
  report.print_verification(std::cout);

  // Extended kinds (argmin/argmax, segmented, fused cascade) run in their
  // own grid so the published Table 2 shape stays fixed; their entries ride
  // the same record for the racecheck / fault-campaign tooling.
  if (cli.get_bool("ext")) {
    std::cout << "\n== Extended reduction kinds ==\n";
    for (const testsuite::ExtSpec& spec : testsuite::ext_grid()) {
      for (acc::CompilerId id : compilers) {
        const testsuite::CaseOutcome cell = runner.run_ext(id, spec);
        std::string name = "ext/" + std::string(to_string(spec.kind)) + "/" +
                           std::string(to_string(spec.type)) + "/" +
                           std::string(to_string(id));
        std::cout << name << ": "
                  << (cell.verified ? "ok" : ("FAIL " + cell.detail))
                  << ", device " << cell.device_ms << " ms, kernels "
                  << cell.kernels << ", attempts " << cell.attempts << "\n";
        auto& e = obs.record().entry(name);
        e.metric("device_ms", cell.device_ms);
        e.metric("verified", cell.verified ? 1.0 : 0.0);
        e.metric("kernels", static_cast<double>(cell.kernels));
        e.metric("attempts", static_cast<double>(cell.attempts));
        e.attr("kind", std::string(to_string(spec.kind)));
        e.attr("compiler", std::string(to_string(id)));
        e.stats(cell.stats);
      }
    }
  }
  if (cli.get_bool("fig11")) {
    std::cout << "\n== Fig. 11 series ==\n";
    report.print_fig11(std::cout, types, compilers);
  }

  obs.record().meta("reduction_extent", opts.reduction_extent);
  obs.record().meta("grid", full_grid ? "full" : "table2");
  if (opts.racecheck) obs.record().meta("racecheck", std::int64_t{1});
  // Campaign metadata, conditional like the per-entry fault fields so
  // fault-free records stay bit-identical to the committed baselines.
  if (!opts.faults.empty()) obs.record().meta("faults", opts.faults);
  if (opts.error_on_race) obs.record().meta("error_on_race", std::int64_t{1});
  report.to_record(obs.record());
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
