// E3: Fig. 12a — 2D heat equation, grid sizes 128^2..512^2, comparing the
// accumulated max-reduction time of openuh vs pgi_like. The paper's CAPS
// column is absent from Fig. 12a because CAPS never converged (its error
// increased); our caps_like model computes correctly, so we print it with
// that footnote.
//
// Flags: --iters N (default 100), --sizes a,b,c (default 128,256,512),
//        --tol X (default 0 = run all iterations),
//        --json FILE / --trace FILE (structured record / event trace)
#include <iostream>
#include <sstream>

#include "apps/heat.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  obs::Session obs(cli, "fig12a_heat");
  const int iters = static_cast<int>(cli.get_int("iters", 50));
  const double tol = cli.get_double("tol", 0.0);

  std::vector<std::int64_t> sizes;
  {
    std::stringstream ss(cli.get("sizes", "128,256,512"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      sizes.push_back(std::stoll(tok));
    }
  }

  std::cout << "== Fig. 12a reproduction: 2D heat equation (max reduction) =="
            << "\niterations: " << iters << ", tolerance: " << tol << "\n\n";

  util::TextTable table;
  table.header({"grid", "compiler", "reduction ms", "update ms", "total ms",
                "final err", "converged"});
  for (std::int64_t n : sizes) {
    for (acc::CompilerId id :
         {acc::CompilerId::kOpenUH, acc::CompilerId::kPgiLike,
          acc::CompilerId::kCapsLike}) {
      apps::HeatOptions o;
      o.ni = n;
      o.nj = n;
      o.max_iterations = iters;
      o.tolerance = tol;
      o.compiler = id;
      const apps::HeatResult r = apps::run_heat(o);
      table.row({std::to_string(n) + "x" + std::to_string(n),
                 std::string(to_string(id)),
                 util::TextTable::num(r.reduction_device_ms),
                 util::TextTable::num(r.update_device_ms),
                 util::TextTable::num(r.total_device_ms),
                 util::TextTable::num(r.final_error, 6),
                 r.converged ? "yes" : "cap"});
      obs.record()
          .entry(std::to_string(n) + "x" + std::to_string(n) + "/" +
                 std::string(to_string(id)))
          .metric("reduction_ms", r.reduction_device_ms)
          .metric("update_ms", r.update_device_ms)
          .metric("total_ms", r.total_device_ms)
          .metric("iterations", r.iterations)
          .attr("converged", r.converged ? "yes" : "cap")
          .stats(r.reduction_stats);
    }
  }
  table.print(std::cout);
  std::cout << "\nnote: the paper's CAPS bar is missing from Fig. 12a "
               "because CAPS 3.4.0 never converged (temperature difference "
               "increased); our caps_like strategy model computes "
               "correctly, so its modeled time is shown for reference.\n";
  obs.record().meta("iters", static_cast<std::int64_t>(iters));
  obs.record().meta("tolerance", tol);
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
