// E5: Fig. 12c — Monte Carlo PI with a gang+vector '+' reduction over one
// loop, three sampled data sizes (the paper used 1/2/4 GB of coordinates;
// scaled by default), comparing all three compiler profiles.
//
// Flags: --samples n1,n2,n3 (default 4194304,8388608,16777216)
//        --full  (paper-scale GB sizes; needs several GB of RAM and time)
//        --json FILE / --trace FILE (structured record / event trace)
#include <iostream>
#include <sstream>

#include "apps/montecarlo.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"full", "no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  obs::Session obs(cli, "fig12c_montecarlo");

  std::vector<std::int64_t> sample_counts;
  if (cli.has("full")) {
    // 1 / 2 / 4 GB of coordinate data (two double arrays).
    for (std::int64_t gb : {1, 2, 4}) {
      sample_counts.push_back(gb * (1LL << 30) / (2 * 8));
    }
  } else {
    std::stringstream ss(cli.get("samples", "4194304,8388608,16777216"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      sample_counts.push_back(std::stoll(tok));
    }
  }

  std::cout << "== Fig. 12c reproduction: Monte Carlo PI ==\n\n";
  util::TextTable table;
  table.header({"samples", "data MB", "compiler", "device ms", "h2d ms",
                "pi", "hits ok"});
  for (std::int64_t samples : sample_counts) {
    apps::MonteCarloOptions base;
    base.samples = samples;
    const std::int64_t expect = apps::montecarlo_reference_hits(base);
    for (acc::CompilerId id :
         {acc::CompilerId::kOpenUH, acc::CompilerId::kCapsLike,
          acc::CompilerId::kPgiLike}) {
      apps::MonteCarloOptions o = base;
      o.compiler = id;
      const apps::MonteCarloResult r = apps::run_montecarlo(o);
      table.row({std::to_string(samples),
                 std::to_string(samples * 16 / (1 << 20)),
                 std::string(to_string(id)),
                 util::TextTable::num(r.device_ms),
                 util::TextTable::num(r.transfer_ms),
                 util::TextTable::num(r.pi_estimate, 6),
                 r.hits == expect ? "yes" : "NO"});
      obs.record()
          .entry(std::to_string(samples) + "/" + std::string(to_string(id)))
          .metric("device_ms", r.device_ms)
          .metric("h2d_ms", r.transfer_ms)
          .attr("hits_ok", r.hits == expect ? "yes" : "NO")
          .stats(r.stats);
    }
  }
  table.print(std::cout);
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
