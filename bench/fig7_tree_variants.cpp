// E7: ablation of the in-block log-step tree (Fig. 7, §3.1.1 and the
// Harris reduction kernels the paper leverages): sequential addressing vs
// interleaved-thread addressing, with and without the warp-synchronous
// unrolled tail, across block sizes — reporting barrier counts, shared
// traffic and modeled time for a pure in-block reduction workload.
//
// Flags: --instances N (trees per block, default 512)
//        --profile (per-stage attribution tables, obs/profiler.hpp)
//        --json FILE / --trace FILE (structured record / event trace)
#include <iostream>

#include "acc/ops.hpp"
#include "gpusim/launch.hpp"
#include "reduce/tree.hpp"
#include "gpusim/pool.hpp"
#include "obs/profiler.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace accred;

gpusim::LaunchStats run_tree_bench(std::uint32_t block_threads,
                                   std::int64_t instances,
                                   const reduce::TreeOptions& opt,
                                   bool profile) {
  gpusim::Device dev;
  auto out = dev.alloc<float>(1);
  auto ov = out.view();
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<float>(block_threads);
  const acc::RuntimeOp<float> rop{acc::ReductionOp::kSum};

  gpusim::SimOptions sim;
  sim.profile = profile;
  sim.label = "tree_bench";
  auto stats = gpusim::launch(
      dev, {1}, {block_threads}, layout.bytes(),
      [&](gpusim::ThreadCtx& ctx) {
        const std::uint32_t t = ctx.threadIdx.x;
        for (std::int64_t inst = 0; inst < instances; ++inst) {
          {
            auto prof = ctx.prof_scope("staging");
            ctx.sts(sbuf, t, static_cast<float>(t + inst));
          }
          reduce::block_tree_reduce(ctx, sbuf, 0, block_threads, 1, t, rop,
                                    opt);
          auto prof = ctx.prof_scope("finalize");
          ctx.syncthreads();
        }
        auto prof = ctx.prof_scope("finalize");
        if (t == 0) ctx.st(ov, 0, ctx.lds(sbuf, 0));
      },
      sim);
  // Sanity: last instance's expected sum.
  const float expect =
      static_cast<float>(block_threads) * static_cast<float>(instances - 1) +
      static_cast<float>(block_threads) * (block_threads - 1) / 2.0F;
  if (out.host_span()[0] != expect) {
    std::cerr << "TREE RESULT MISMATCH: " << out.host_span()[0] << " vs "
              << expect << "\n";
  }
  return stats;
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"profile", "no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  const std::int64_t instances = cli.get_int("instances", 512);
  const bool profile = cli.has("profile") || obs::profile_env_default();
  obs::Session obs(cli, "fig7_tree_variants");
  obs.record().meta("instances", instances);
  if (profile) obs.record().meta("profile", std::int64_t{1});

  std::cout << "== Fig. 7 tree-variant ablation (" << instances
            << " in-block reductions per configuration) ==\n\n";
  util::TextTable t;
  t.header({"block", "variant", "device ms", "barriers", "syncwarps",
            "smem cycles", "bank factor"});

  struct Variant {
    const char* name;
    const char* key;
    reduce::TreeOptions opt;
  };
  reduce::TreeOptions openuh;  // sequential, unrolled tail, full unroll
  reduce::TreeOptions no_tail = openuh;
  no_tail.unroll_last_warp = false;
  reduce::TreeOptions no_unroll = no_tail;
  no_unroll.full_unroll = false;
  reduce::TreeOptions interleaved;
  interleaved.addr = reduce::AddrMode::kInterleavedThreads;
  interleaved.full_unroll = false;

  const Variant variants[] = {
      {"sequential + warp tail + unroll (OpenUH)", "openuh", openuh},
      {"sequential, block barriers", "no_tail", no_tail},
      {"sequential, block barriers, no unroll", "no_unroll", no_unroll},
      {"interleaved threads (Harris k1 baseline)", "interleaved", interleaved},
  };

  for (std::uint32_t block : {128u, 256u, 512u, 1024u}) {
    for (const Variant& v : variants) {
      const auto stats = run_tree_bench(block, instances, v.opt, profile);
      t.row({std::to_string(block), v.name,
             util::TextTable::num(stats.device_time_ns / 1e6),
             std::to_string(stats.barriers), std::to_string(stats.syncwarps),
             std::to_string(stats.smem_cycles),
             util::TextTable::num(gpusim::bank_conflict_factor(stats))});
      obs.record()
          .entry(std::to_string(block) + "/" + v.key)
          .attr("variant", v.name)
          .stats(stats);
      if (!stats.profile.empty()) {
        std::cout << "\n-- block " << block << ", " << v.name
                  << ": per-stage profile --\n";
        obs::print_profile(std::cout, stats.profile);
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nexpected shapes: the warp-synchronous tail removes ~5 "
               "block barriers per tree; interleaved-thread addressing "
               "keeps all warps active longer and costs more barriers.\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
