// Host-side microbenchmarks (google-benchmark) of the simulator substrate
// itself: fiber context-switch cost, barrier rendezvous, cost-model event
// logging, and end-to-end simulated-elements-per-second throughput. These
// measure OUR implementation (wall time), not the modeled device.
//
// Accepts google-benchmark's own flags plus --json FILE / --trace FILE
// (structured record / event trace) and --sim-threads N. All exported
// metrics are wall_* — host wall clock, never regression-gated.
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "acc/ops.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "reduce/tree.hpp"
#include "util/cli.hpp"

namespace {

using namespace accred;

void BM_FiberSwitch(benchmark::State& state) {
  gpusim::Fiber f(16 * 1024);
  f.reset([] {
    for (;;) gpusim::Fiber::yield();
  });
  for (auto _ : state) {
    f.resume();  // one switch in, one out
  }
  f.abandon();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FiberSwitch);

void BM_BlockBarrier(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  gpusim::Device dev;
  for (auto _ : state) {
    auto stats = gpusim::launch(dev, {1}, {threads}, 0,
                                [](gpusim::ThreadCtx& ctx) {
                                  for (int i = 0; i < 16; ++i) {
                                    ctx.syncthreads();
                                  }
                                });
    benchmark::DoNotOptimize(stats.barriers);
  }
  state.SetItemsProcessed(state.iterations() * threads * 16);
}
BENCHMARK(BM_BlockBarrier)->Arg(64)->Arg(256)->Arg(1024);

void BM_CoalescingLogger(benchmark::State& state) {
  gpusim::CostParams params;
  gpusim::WarpLog log;
  for (auto _ : state) {
    log.reset(params);
    for (std::uint32_t lane = 0; lane < 32; ++lane) {
      for (std::uint32_t k = 0; k < 64; ++k) {
        log.global_access(lane, 0x10000 + k * 128 + lane * 4, 4);
      }
    }
    benchmark::DoNotOptimize(log.end_epoch());
  }
  state.SetItemsProcessed(state.iterations() * 32 * 64);
}
BENCHMARK(BM_CoalescingLogger);

void BM_SimulatedReduceThroughput(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  gpusim::Device dev;
  auto data = dev.alloc<float>(static_cast<std::size_t>(n));
  data.fill(1.0F);
  auto out = dev.alloc<float>(1);
  auto dv = data.view();
  auto ov = out.view();
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<float>(256);
  const acc::RuntimeOp<float> rop{acc::ReductionOp::kSum};

  for (auto _ : state) {
    auto stats = gpusim::launch(
        dev, {13}, {256}, layout.bytes(), [&](gpusim::ThreadCtx& ctx) {
          float priv = 0;
          for (std::int64_t i = ctx.blockIdx.x * 256 + ctx.threadIdx.x;
               i < n; i += 13 * 256) {
            priv += ctx.ld(dv, static_cast<std::size_t>(i));
          }
          ctx.sts(sbuf, ctx.threadIdx.x, priv);
          reduce::block_tree_reduce(ctx, sbuf, 0, 256, 1, ctx.threadIdx.x,
                                    rop);
          if (ctx.linear_tid() == 0) {
            ctx.st(ov, ctx.blockIdx.x == 0 ? 0 : 0, ctx.lds(sbuf, 0));
          }
        });
    benchmark::DoNotOptimize(stats.device_time_ns);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatedReduceThroughput)->Arg(1 << 16)->Arg(1 << 20);

/// Host-parallel scaling of one launch: 128 independent blocks sharded
/// across sim_threads workers. Ideal scaling halves wall time per doubling
/// until the host runs out of cores; stats stay bit-identical throughout
/// (test_parallel_launch asserts that — here we only measure).
void BM_ParallelLaunch(benchmark::State& state) {
  constexpr std::int64_t kBlocks = 128;
  constexpr std::int64_t kThreads = 128;
  constexpr std::int64_t n = 1 << 18;
  gpusim::Device dev;
  auto data = dev.alloc<float>(static_cast<std::size_t>(n));
  data.fill(1.0F);
  auto out = dev.alloc<float>(static_cast<std::size_t>(kBlocks));
  auto dv = data.view();
  auto ov = out.view();
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<float>(static_cast<std::size_t>(kThreads));
  const acc::RuntimeOp<float> rop{acc::ReductionOp::kSum};
  gpusim::SimOptions opts;
  opts.sim_threads = static_cast<std::uint32_t>(state.range(0));

  for (auto _ : state) {
    auto stats = gpusim::launch(
        dev, {kBlocks}, {kThreads}, layout.bytes(),
        [&](gpusim::ThreadCtx& ctx) {
          float priv = 0;
          for (std::int64_t i = ctx.blockIdx.x * kThreads + ctx.threadIdx.x;
               i < n; i += kBlocks * kThreads) {
            priv += ctx.ld(dv, static_cast<std::size_t>(i));
          }
          ctx.sts(sbuf, ctx.threadIdx.x, priv);
          reduce::block_tree_reduce(ctx, sbuf, 0, kThreads, 1,
                                    ctx.threadIdx.x, rop);
          if (ctx.linear_tid() == 0) {
            ctx.st(ov, ctx.blockIdx.x, ctx.lds(sbuf, 0));
          }
        },
        opts);
    benchmark::DoNotOptimize(stats.device_time_ns);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelLaunch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// Console output as usual, plus every run mirrored into the RunRecord.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  explicit RecordingReporter(obs::RunRecord& rec) : rec_(rec) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      obs::BenchEntry& e = rec_.entry(run.benchmark_name());
      e.metric("wall_real_ns", run.GetAdjustedRealTime());
      e.metric("wall_cpu_ns", run.GetAdjustedCPUTime());
      e.attr("iterations", std::to_string(run.iterations));
      if (auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        e.metric("wall_items_per_sec", it->second.value);
      }
    }
  }

private:
  obs::RunRecord& rec_;
};

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  obs::Session obs(cli, "simulator_microbench");

  // google-benchmark rejects flags it does not recognize, so strip ours
  // (both `--flag value` and `--flag=value` spellings) before handing over.
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--json" || a == "--trace" || a == "--sim-threads") {
      if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;
      }
      continue;
    }
    if (a.starts_with("--json=") || a.starts_with("--trace=") ||
        a.starts_with("--sim-threads=")) {
      continue;
    }
    // Declared boolean: never consumes the next token, so strip it alone.
    if (a == "--no-fastpath" || a.starts_with("--no-fastpath=")) continue;
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  RecordingReporter reporter(obs.record());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
