// E4: Fig. 12b — naive matmul with the k loop as a vector reduction,
// size sweep, openuh vs caps_like. The paper's PGI bar is missing because
// PGI 13.10 failed the vector '+' reduction (Table 2); our capability
// matrix mirrors that, so pgi_like is reported as F.
//
// Flags: --sizes a,b,c (default 64,128,256; paper used larger),
//        --verify (check against the host reference; O(n^3) on the host),
//        --json FILE / --trace FILE (structured record / event trace)
#include <iostream>
#include <sstream>

#include "acc/profiles.hpp"
#include "apps/matmul.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accred;
  const util::Cli cli(argc, argv, {"verify", "no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  obs::Session obs(cli, "fig12b_matmul");

  std::vector<std::int64_t> sizes;
  {
    std::stringstream ss(cli.get("sizes", "64,128,256"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      sizes.push_back(std::stoll(tok));
    }
  }
  const bool verify = cli.has("verify");

  std::cout << "== Fig. 12b reproduction: matmul, k loop as vector "
               "reduction ==\n\n";
  util::TextTable table;
  table.header({"n", "compiler", "device ms", "gmem segs", "bank factor",
                "verified"});
  for (std::int64_t n : sizes) {
    {
      // The conventional mapping the paper's §4 contrasts against: outer
      // two loops parallel, k sequential per thread.
      apps::MatmulOptions o;
      o.n = n;
      const apps::MatmulResult r = apps::run_matmul_sequential_k(o);
      std::string verified = "skipped";
      if (verify) {
        const auto ref = apps::matmul_reference(o);
        verified = "yes";
        for (std::size_t i = 0; i < ref.size(); ++i) {
          if (std::abs(r.c[i] - ref[i]) > 1e-3 + 1e-4 * std::abs(ref[i])) {
            verified = "NO";
            break;
          }
        }
      }
      table.row({std::to_string(n), "(sequential k)",
                 util::TextTable::num(r.device_ms),
                 std::to_string(r.stats.gmem_segments),
                 util::TextTable::num(gpusim::bank_conflict_factor(r.stats)),
                 verified});
      obs.record()
          .entry(std::to_string(n) + "/sequential_k")
          .metric("device_ms", r.device_ms)
          .attr("verified", verified)
          .stats(r.stats);
    }
    for (acc::CompilerId id :
         {acc::CompilerId::kOpenUH, acc::CompilerId::kCapsLike,
          acc::CompilerId::kPgiLike}) {
      // Fig. 12b footnote: PGI failed the vector '+' reduction.
      if (table2_robustness(id, acc::Position::kVector,
                            acc::ReductionOp::kSum, acc::DataType::kFloat) !=
          acc::Robustness::kOk) {
        table.row({std::to_string(n), std::string(to_string(id)), "F", "-",
                   "-", "-"});
        obs.record()
            .entry(std::to_string(n) + "/" + std::string(to_string(id)))
            .attr("status", "F");
        continue;
      }
      apps::MatmulOptions o;
      o.n = n;
      o.compiler = id;
      const apps::MatmulResult r = apps::run_matmul(o);
      std::string verified = "skipped";
      if (verify) {
        const auto ref = apps::matmul_reference(o);
        verified = "yes";
        for (std::size_t i = 0; i < ref.size(); ++i) {
          if (std::abs(r.c[i] - ref[i]) >
              1e-3 + 1e-4 * std::abs(ref[i])) {
            verified = "NO";
            break;
          }
        }
      }
      table.row({std::to_string(n), std::string(to_string(id)),
                 util::TextTable::num(r.device_ms),
                 std::to_string(r.stats.gmem_segments),
                 util::TextTable::num(gpusim::bank_conflict_factor(r.stats)),
                 verified});
      obs.record()
          .entry(std::to_string(n) + "/" + std::string(to_string(id)))
          .metric("device_ms", r.device_ms)
          .attr("verified", verified)
          .stats(r.stats);
    }
  }
  table.print(std::cout);
  std::cout << "\nnote: the sequential-k mapping wins on this naive kernel "
               "because lanes then vary over j and B[k*n+j] coalesces, "
               "while the k-parallel mapping strides B across lanes. The "
               "paper compares compilers on the k-parallel mapping only; "
               "the baseline row quantifies what that mapping costs.\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
