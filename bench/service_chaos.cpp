// Deterministic chaos campaign over the reduction service's resilience
// layer (DESIGN.md §16): a scripted multi-tenant schedule of sticky
// faults, deadlines, queued and mid-flight cancellations, a breaker
// trip/probe/close cycle, and an overload burst — every decision on the
// service's virtual clocks, so the whole record (counters, checksums,
// telemetry registry) is bit-identical for any --workers and any
// --sim-threads.
//
// The campaign runs as waves against a paused service: pause -> submit the
// wave -> resume -> bounded drain. At each quiescent point the dispatch
// decisions are a pure function of the queue contents, which is what makes
// "the breaker opens exactly twice" an assertable fact rather than a
// statistical one.
//
//   wave 1  trip      two sticky-fault mallory jobs between clean traffic:
//                     the second consecutive structured failure opens the
//                     tenant's breaker (threshold 2)
//   wave 2  reopen    mallory probes the half-open breaker with another
//                     faulty job (reopen; breaker_opens = 2) while a second
//                     mallory submission fast-fails kCircuitOpen
//   wave 3  close     a clean mallory probe closes the breaker
//   wave 4  recovered mallory runs normally again
//   wave 5  cancel-q  a carol job is cancelled while still queued
//   wave 6  cancel-r  a carol job is cancelled mid-flight via
//                     CancelToken::cancel_at_launch (structured kCancelled)
//   wave 7  cancel-d  cancelling after delivery is a no-op
//   wave 8  deadline  three oversized dana jobs inflate the dispatch clock;
//                     a tight-deadline dana job behind them expires
//
// A second service instance ("shed") with CoDel shedding enabled takes a
// small-then-burst single-tenant schedule; sustained modeled wait above
// target sheds the youngest queued jobs (kShed). A third, plain instance
// replays only the clean alice/bob jobs: tools/chaos_report asserts the
// chaos run's clean-tenant checksum equals this baseline bit-for-bit.
//
// Flags:
//   --r N            base reduction extent (default 256; bursts use 64r)
//   --workers N      service executor threads (default 2)
//   --sim-threads N  host threads per kernel launch (results identical)
//   --no-fastpath    disable the converged-warp interpreter fast path
//   --metrics        attach both telemetry registries to the record
//   --json FILE      write the accred.bench record (chaos_report input)
//   --trace FILE     chrome://tracing export (breaker / cancel / shed spans)
#include <chrono>
#include <cstdio>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/main_guard.hpp"

namespace {

using namespace accred;

/// Sticky mid-kernel abort: fires on every guarded attempt (stripping only
/// removes non-sticky faults), so a mallory job fails structured no matter
/// how far the degradation ladder walks.
constexpr const char* kStickyFault = "warp_abort:block=0,nth=10,sticky";

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fold_hash(std::uint64_t& checksum, std::uint64_t hash) {
  for (int b = 0; b < 8; ++b) {
    checksum ^= (hash >> (8 * b)) & 0xff;
    checksum *= kFnvPrime;
  }
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

service::JobSpec clean_job(const std::string& tenant, std::int64_t extent) {
  service::JobSpec job;
  job.tenant = tenant;
  job.kase = {acc::Position::kGang, acc::ReductionOp::kSum,
              acc::DataType::kInt32};
  job.reduction_extent = extent;
  job.config = acc::LaunchConfig{24, 4, 64};
  return job;
}

/// One submitted job we still hold the future (and intent) for.
struct Tracked {
  std::string tenant;
  bool faulty = false;  ///< carries the sticky campaign
  std::future<service::JobResult> fut;
};

class Campaign {
 public:
  explicit Campaign(service::ReductionService& svc) : svc_(svc) {}

  void submit(service::JobSpec job) {
    Tracked t;
    t.tenant = job.tenant;
    t.faulty = !job.faults.empty();
    t.fut = svc_.submit(std::move(job));
    jobs_.push_back(std::move(t));
  }

  /// resume -> bounded drain -> pause. Returns jobs still open at the
  /// timeout (0 on a healthy service); stops the campaign on a hang so the
  /// record carries the liveness failure instead of the bench hanging.
  std::uint64_t run_wave() {
    svc_.resume();
    const std::uint64_t left = svc_.drain(std::chrono::seconds(120));
    svc_.pause();
    return left;
  }

  std::vector<Tracked>& jobs() { return jobs_; }

 private:
  service::ReductionService& svc_;
  std::vector<Tracked> jobs_;
};

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"no-fastpath", "metrics"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  obs::Session obs(cli, "service_chaos");

  const std::int64_t r = cli.get_int("r", 256);
  const std::int64_t big_r = r * 64;
  const auto workers = static_cast<std::uint32_t>(cli.get_int("workers", 2));
  const bool metrics_on =
      cli.get_bool("metrics", false) || obs::metrics_env_default();

  // ---- Chaos service: breaker + budget + deadlines + cancellation ----
  std::uint64_t undrained = 0;
  service::ServiceStats stats;
  std::uint64_t clean_checksum = kFnvOffset;
  std::size_t victim_unstructured = 0;
  std::uint64_t victim_attempts = 0;
  obs::Json chaos_telemetry = obs::Json::object();
  // The clean alice/bob specs, in submission order, for the baseline replay.
  std::vector<service::JobSpec> clean_replay;
  {
    service::ServiceConfig cfg;
    cfg.workers = workers;
    cfg.start_paused = true;
    cfg.breaker_threshold = 2;
    // Virtual cooldown of 1 ns: any clean job consumed after the tripping
    // slot advances the timeline past open_until, so the next mallory
    // submission finds the breaker half-open — the wave schedule below
    // always places clean traffic after mallory's failures.
    cfg.breaker_cooldown_ns = 1;
    cfg.retry_budget_per_sec = 50'000;
    cfg.retry_budget_burst = 4;
    cfg.retry_tokens_per_job = 2;
    cfg.max_degrade_rungs = 2;
    service::ReductionService svc(
        cfg, {{"alice", 2.0}, {"bob", 2.0}, {"carol", 1.0}, {"dana", 1.0},
              {"mallory", 1.0}});
    Campaign camp(svc);
    const auto clean = [&](const std::string& tenant) {
      service::JobSpec job = clean_job(tenant, r);
      if (tenant == "alice" || tenant == "bob") clean_replay.push_back(job);
      camp.submit(std::move(job));
    };
    const auto faulty = [&] {
      service::JobSpec job = clean_job("mallory", r);
      job.faults = kStickyFault;
      camp.submit(std::move(job));
    };

    // Wave 1 — trip: two consecutive mallory failures open the breaker.
    clean("alice");
    clean("bob");
    faulty();
    faulty();
    clean("alice");
    clean("bob");
    undrained += camp.run_wave();

    // Wave 2 — reopen: the half-open probe fails (breaker_opens = 2); a
    // second mallory submission behind the in-flight probe fast-fails.
    faulty();
    camp.submit(clean_job("mallory", r));  // expect kCircuitOpen
    clean("alice");
    clean("bob");
    undrained += camp.run_wave();

    // Wave 3 — close: a clean probe closes the breaker.
    clean("mallory");
    clean("alice");
    clean("bob");
    undrained += camp.run_wave();

    // Wave 4 — recovered: mallory is a normal tenant again.
    clean("mallory");
    clean("alice");
    clean("bob");
    undrained += camp.run_wave();

    // Wave 5 — cancel while queued: the token flips before dispatch runs.
    auto queued_token = std::make_shared<gpusim::CancelToken>();
    clean("alice");
    {
      service::JobSpec job = clean_job("carol", r);
      job.cancel = queued_token;
      camp.submit(std::move(job));
    }
    clean("bob");
    queued_token->cancel();  // service still paused: deterministic
    undrained += camp.run_wave();

    // Wave 6 — cancel mid-flight: the countdown cancels at the first
    // kernel-launch entry, so the running job ends structured kCancelled.
    auto midrun_token = std::make_shared<gpusim::CancelToken>();
    midrun_token->cancel_at_launch(1);
    {
      service::JobSpec job = clean_job("carol", r);
      job.cancel = midrun_token;
      camp.submit(std::move(job));
    }
    clean("alice");
    undrained += camp.run_wave();

    // Wave 7 — cancel after delivery: a no-op on a completed job.
    auto late_token = std::make_shared<gpusim::CancelToken>();
    {
      service::JobSpec job = clean_job("carol", r);
      job.cancel = late_token;
      camp.submit(std::move(job));
    }
    undrained += camp.run_wave();
    late_token->cancel();

    // Wave 8 — deadline: three oversized dana jobs inflate the dispatch
    // clock; the tight-deadline job queued behind them (FIFO within the
    // tenant) expires before dispatch.
    camp.submit(clean_job("dana", big_r));
    camp.submit(clean_job("dana", big_r));
    camp.submit(clean_job("dana", big_r));
    {
      service::JobSpec job = clean_job("dana", r);
      job.deadline_ns = 1;
      camp.submit(std::move(job));
    }
    undrained += camp.run_wave();

    stats = svc.stats();
    chaos_telemetry = svc.metrics_json();
    if (undrained == 0) {
      for (Tracked& t : camp.jobs()) {
        service::JobResult res = t.fut.get();
        if (t.tenant == "alice" || t.tenant == "bob") {
          fold_hash(clean_checksum, res.outcome.result_hash);
        }
        if (t.faulty) {
          victim_attempts += static_cast<std::uint64_t>(res.outcome.attempts);
          // A fired fault must end structured: a LaunchError in the stats
          // or an explicit diagnostic — silent corruption is the one
          // unacceptable verdict.
          const bool structured =
              res.outcome.stats.error.code != gpusim::LaunchErrorCode::kNone ||
              !res.outcome.detail.empty();
          if (res.status != service::JobStatus::kFailed || !structured) {
            ++victim_unstructured;
          }
        }
      }
    }
  }

  // ---- Shed service: CoDel overload shedding on a burst tenant -------
  service::ServiceStats shed_stats;
  std::uint64_t shed_undrained = 0;
  obs::Json shed_telemetry = obs::Json::object();
  {
    service::ServiceConfig cfg;
    cfg.workers = workers;
    cfg.start_paused = true;
    cfg.shed_target_ns = 1000;
    cfg.shed_interval_ns = 1000;
    service::ReductionService svc(cfg, {{"burst", 1.0}});
    std::vector<std::future<service::JobResult>> futs;
    // Small jobs first drag the arrival-pacing mean down; the oversized
    // burst behind them then outruns its arrivals, the modeled wait climbs
    // past target for a full interval, and dispatch sheds newest-first.
    for (int i = 0; i < 8; ++i) futs.push_back(svc.submit(clean_job("burst", r)));
    for (int i = 0; i < 8; ++i) {
      futs.push_back(svc.submit(clean_job("burst", big_r)));
    }
    svc.resume();
    shed_undrained = svc.drain(std::chrono::seconds(120));
    shed_stats = svc.stats();
    shed_telemetry = svc.metrics_json();
    if (shed_undrained == 0) {
      for (auto& f : futs) (void)f.get();
    }
  }

  // ---- Baseline: the clean alice/bob jobs with no chaos around them --
  std::uint64_t baseline_checksum = kFnvOffset;
  std::uint64_t baseline_undrained = 0;
  {
    service::ServiceConfig cfg;
    cfg.workers = workers;
    service::ReductionService svc(cfg, {{"alice", 2.0}, {"bob", 2.0}});
    std::vector<std::future<service::JobResult>> futs;
    futs.reserve(clean_replay.size());
    for (service::JobSpec& job : clean_replay) {
      futs.push_back(svc.submit(std::move(job)));
    }
    baseline_undrained = svc.drain(std::chrono::seconds(120));
    if (baseline_undrained == 0) {
      for (auto& f : futs) {
        fold_hash(baseline_checksum, f.get().outcome.result_hash);
      }
    }
  }

  std::cout << "== service chaos campaign ==\n"
            << "submitted " << stats.submitted << "  completed "
            << stats.completed << "  failed " << stats.failed
            << "  cancelled " << stats.cancelled << "  deadline_exceeded "
            << stats.deadline_exceeded << "\n"
            << "breaker: " << stats.breaker_opens << " opens, "
            << stats.rejected_breaker << " fast-failed submission(s)\n"
            << "victim: " << victim_attempts << " guarded attempts, "
            << victim_unstructured << " unstructured outcome(s)\n"
            << "shed service: " << shed_stats.shed << " of "
            << shed_stats.admitted << " admitted jobs shed\n"
            << "undrained: chaos " << undrained << ", shed "
            << shed_undrained << ", baseline " << baseline_undrained << "\n"
            << "clean checksum " << hex64(clean_checksum) << "  baseline "
            << hex64(baseline_checksum) << "\n";

  auto& chaos = obs.record().entry("chaos");
  chaos.metric("submitted", static_cast<double>(stats.submitted))
      .metric("admitted", static_cast<double>(stats.admitted))
      .metric("rejected_total",
              static_cast<double>(stats.rejected_queue + stats.rejected_memory +
                                  stats.rejected_breaker))
      .metric("rejected_breaker", static_cast<double>(stats.rejected_breaker))
      .metric("completed", static_cast<double>(stats.completed))
      .metric("failed", static_cast<double>(stats.failed))
      .metric("cancelled", static_cast<double>(stats.cancelled))
      .metric("deadline_exceeded",
              static_cast<double>(stats.deadline_exceeded))
      .metric("shed", static_cast<double>(stats.shed))
      .metric("breaker_opens", static_cast<double>(stats.breaker_opens))
      .metric("recovered", static_cast<double>(stats.recovered))
      .metric("victim_attempts", static_cast<double>(victim_attempts))
      .metric("victim_unstructured",
              static_cast<double>(victim_unstructured))
      .metric("undrained", static_cast<double>(undrained))
      .attr("clean_checksum", hex64(clean_checksum));
  if (metrics_on) chaos.telemetry(std::move(chaos_telemetry));

  // The scheduled outcome — chaos_report fails the gate on any mismatch
  // between these and the same-named "chaos" metrics.
  obs.record()
      .entry("expect")
      .metric("breaker_opens", 2)
      .metric("rejected_breaker", 1)
      .metric("failed", 3)
      .metric("cancelled", 2)
      .metric("deadline_exceeded", 1)
      .metric("shed", 0)
      .metric("completed", 19)
      .metric("victim_unstructured", 0)
      .metric("undrained", 0);

  auto& shed = obs.record().entry("shed");
  shed.metric("submitted", static_cast<double>(shed_stats.submitted))
      .metric("admitted", static_cast<double>(shed_stats.admitted))
      .metric("completed", static_cast<double>(shed_stats.completed))
      .metric("shed", static_cast<double>(shed_stats.shed))
      .metric("shed_min", 1)
      .metric("undrained", static_cast<double>(shed_undrained));
  if (metrics_on) shed.telemetry(std::move(shed_telemetry));

  obs.record()
      .entry("baseline")
      .metric("jobs", static_cast<double>(clean_replay.size()))
      .metric("undrained", static_cast<double>(baseline_undrained))
      .attr("clean_checksum", hex64(baseline_checksum));

  obs.record().meta("reduction_extent", r);
  obs.record().meta("workers", static_cast<std::int64_t>(workers));
  obs.record().meta("faults", kStickyFault);

  const bool live = undrained == 0 && shed_undrained == 0 &&
                    baseline_undrained == 0;
  return obs.finish() && live ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
