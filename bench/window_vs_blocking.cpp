// E8: §3.1.3's iteration-assignment claim — "the window sliding technique
// is superior to the blocking algorithm in vector partial reduction since
// it can enable memory coalescing". Measures global transactions,
// coalescing efficiency and modeled time for the same-loop reduction and
// the vector partial phase under both assignments.
//
// Flags: --n N (elements, default 2^20)
//        --json FILE / --trace FILE (structured record / event trace)
#include <iostream>

#include "reduce/rmp_reduce.hpp"
#include "testsuite/values.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace accred;

gpusim::LaunchStats run_same_loop(std::int64_t n, reduce::Assignment mode) {
  gpusim::Device dev;
  auto input = dev.alloc<float>(static_cast<std::size_t>(n));
  {
    auto host = input.host_span();
    for (std::size_t i = 0; i < host.size(); ++i) {
      host[i] = testsuite::testsuite_value<float>(acc::ReductionOp::kSum, i);
    }
  }
  auto iv = input.view();
  reduce::Bindings<float> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t idx, std::int64_t,
                  std::int64_t) {
    return ctx.ld(iv, static_cast<std::size_t>(idx));
  };
  reduce::StrategyConfig sc;
  sc.assignment = mode;
  return reduce::run_same_loop_reduction<float>(dev, n, {},
                                                acc::ReductionOp::kSum, b, sc)
      .stats;
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  const std::int64_t n = cli.get_int("n", 1 << 20);
  obs::Session obs(cli, "window_vs_blocking");
  obs.record().meta("elements", n);

  std::cout << "== Window-sliding vs blocking iteration assignment "
               "(same-loop reduction over "
            << n << " floats) ==\n\n";
  util::TextTable t;
  t.header({"assignment", "device ms", "gmem requests", "gmem segments",
            "coalescing eff"});
  for (auto [name, key, mode] :
       {std::tuple{"window (OpenUH)", "window", reduce::Assignment::kWindow},
        std::tuple{"blocking", "blocking", reduce::Assignment::kBlocking}}) {
    const auto s = run_same_loop(n, mode);
    t.row({name, util::TextTable::num(s.device_time_ns / 1e6),
           std::to_string(s.gmem_requests), std::to_string(s.gmem_segments),
           util::TextTable::num(gpusim::coalescing_efficiency(s), 3)});
    obs.record().entry(key).attr("assignment", name).stats(s);
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: window sliding touches ~1 segment per "
               "warp request (fully coalesced); blocking touches up to 32, "
               "inflating transactions and modeled time by an order of "
               "magnitude.\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
