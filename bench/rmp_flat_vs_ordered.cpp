// E9: §3.2.1's implementation-choice claim — OpenUH flattens a
// worker&vector reduction into one buffer + one tree instead of reducing
// level by level, because the ordered alternative "needs to perform
// reduction multiple times and therefore more synchronizations are
// required". Reports barriers, shared traffic and modeled time for both.
//
// Flags: --r N (vector extent, default 2^16), --nj N (worker extent, 8)
//        --json FILE / --trace FILE (structured record / event trace)
#include <iostream>

#include "reduce/rmp_reduce.hpp"
#include "testsuite/values.hpp"
#include "gpusim/pool.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace accred;

gpusim::LaunchStats run_wv(std::int64_t nk, std::int64_t nj, std::int64_t ni,
                           bool ordered) {
  gpusim::Device dev;
  const reduce::Nest3 n{nk, nj, ni};
  const auto volume = static_cast<std::size_t>(nk * nj * ni);
  auto input = dev.alloc<float>(volume);
  {
    auto host = input.host_span();
    for (std::size_t i = 0; i < volume; ++i) {
      host[i] = testsuite::testsuite_value<float>(acc::ReductionOp::kSum, i);
    }
  }
  auto out = dev.alloc<float>(static_cast<std::size_t>(nk));
  auto iv = input.view();
  auto ov = out.view();
  reduce::Bindings<float> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * nj + j) * ni + i));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t,
               float v) { ctx.st(ov, static_cast<std::size_t>(k), v); };
  const auto res =
      ordered ? reduce::run_worker_vector_reduction_ordered<float>(
                    dev, n, {}, acc::ReductionOp::kSum, b)
              : reduce::run_worker_vector_reduction<float>(
                    dev, n, {}, acc::ReductionOp::kSum, b);
  return res.stats;
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  // nj defaults to several times num_workers: the ordered variant runs a
  // vector tree per (k, j) window instance, so the amplification only
  // shows when each worker handles multiple j's.
  const std::int64_t ni = cli.get_int("r", 1 << 11);
  const std::int64_t nj = cli.get_int("nj", 64);
  const std::int64_t nk = 32;
  obs::Session obs(cli, "rmp_flat_vs_ordered");
  obs.record().meta("nk", nk);
  obs.record().meta("nj", nj);
  obs.record().meta("ni", ni);

  std::cout << "== RMP worker&vector: flat buffer (OpenUH) vs ordered "
               "per-level (" << nk << " x " << nj << " x " << ni
            << ") ==\n\n";
  util::TextTable t;
  t.header({"strategy", "device ms", "barriers", "syncwarps", "smem reqs"});
  for (auto [name, key, ordered] :
       {std::tuple{"flat (OpenUH, 3.2.1)", "flat", false},
        std::tuple{"ordered per-level", "ordered", true}}) {
    const auto s = run_wv(nk, nj, ni, ordered);
    t.row({name, util::TextTable::num(s.device_time_ns / 1e6),
           std::to_string(s.barriers), std::to_string(s.syncwarps),
           std::to_string(s.smem_requests)});
    obs.record().entry(key).attr("strategy", name).stats(s);
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: the ordered variant runs a tree per "
               "(k, j) instance instead of one per k, multiplying barrier "
               "count and modeled time.\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
