// Service-throughput harness: drives the reduction service (DESIGN.md §13)
// with an open-loop multi-tenant workload sampled over the Table 2 grid
// and reports throughput, latency, plan-cache effectiveness, and admission
// behavior as a schema-v3 accred.bench record — the record CI gates
// (BENCH_service.json).
//
// Latency percentiles come from the service's telemetry registry
// (DESIGN.md §14): modeled device time plus the virtual-timeline queue
// wait and end-to-end latency, all bit-deterministic for any --workers
// and --sim-threads. With --metrics (or ACCRED_METRICS) the throughput
// entry also carries the full registry dump as its "telemetry" section;
// without it the record keeps the exact pre-v3 shape.
//
// Three phases, each its own service instance:
//   throughput  N jobs over a weighted tenant mix; the driver submits from
//               one thread and caps its own in-flight window below the
//               service's occupancy budget, so every gated counter
//               (completed, cache hits/misses, modeled device_ms
//               percentiles) is bit-deterministic for any --sim-threads
//               and any worker count. Wall-clock latency/throughput land
//               in wall_* metrics (never gated).
//   admission   a paused service with a tiny occupancy budget, then one
//               with a three-job memory budget: exact deterministic
//               rejected_queue / rejected_memory counts.
//   faults      (with --faults SPEC) one tenant runs the campaign; the
//               record reports the victim's recovery ladder counters and a
//               checksum over the clean tenants' result hashes
//               (tests/service/test_service.cpp pins bit-identity).
//
// Flags:
//   --jobs N           throughput-phase submissions (default 2500)
//   --r N              base reduction extent (default 256); jobs sample
//                      {r, 2r}, i.e. two plan-cache extent buckets
//   --tenants SPEC     name:weight,... (default alice:3,bob:2,carol:1)
//   --workers N        service executor threads (default 2)
//   --rate R           open-loop arrivals/sec, exponential inter-arrival
//                      times (0 = submit back-to-back; wall metrics only)
//   --seed N           workload sampling seed (default 42)
//   --cache-capacity N plan-cache entries (default 512)
//   --queue-capacity N occupancy budget override (0 = device default)
//   --window N         driver in-flight cap (default 128)
//   --faults SPEC      arm SPEC (faultinject.hpp grammar) on the "mallory"
//                      tenant's jobs only
//   --sim-threads N    host threads per kernel launch (results identical)
//   --no-fastpath      disable the converged-warp interpreter fast path
//   --metrics          attach the telemetry registry to the record
//                      (default: the ACCRED_METRICS env var)
//   --json FILE        write the accred.bench record
//   --trace FILE       chrome://tracing export (lifecycle spans per job,
//                      named worker/dispatcher/queue rows)
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include "gpusim/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/main_guard.hpp"
#include "util/rng.hpp"

namespace {

using namespace accred;

struct TenantMix {
  std::vector<service::TenantConfig> tenants;
  double total_weight = 0;
};

TenantMix parse_tenants(const std::string& spec) {
  TenantMix mix;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string part =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (part.empty()) continue;
    const std::size_t colon = part.find(':');
    service::TenantConfig t;
    t.name = part.substr(0, colon);
    if (colon != std::string::npos) t.weight = std::stod(part.substr(colon + 1));
    if (t.weight <= 0) t.weight = 1.0;
    mix.total_weight += t.weight;
    mix.tenants.push_back(std::move(t));
  }
  return mix;
}

/// Deterministic workload sampler: tenant by weight, compiler biased
/// toward OpenUH, a Table 2 cell that the chosen compiler handles cleanly
/// (robustness Ok — keeps completed == submitted exact), extent in
/// {r, 2r}. Pure function of (seed, i).
class WorkloadSampler {
public:
  WorkloadSampler(const TenantMix& mix, std::int64_t r, std::uint64_t seed)
      : mix_(mix), r_(r), rng_(seed), grid_(testsuite::table2_grid()) {}

  service::JobSpec next() {
    service::JobSpec job;
    double pick = rng_.next_unit() * mix_.total_weight;
    job.tenant = mix_.tenants.back().name;
    for (const service::TenantConfig& t : mix_.tenants) {
      if (pick < t.weight) {
        job.tenant = t.name;
        break;
      }
      pick -= t.weight;
    }
    static constexpr acc::CompilerId kCompilers[] = {
        acc::CompilerId::kOpenUH, acc::CompilerId::kOpenUH,
        acc::CompilerId::kPgiLike, acc::CompilerId::kCapsLike};
    job.compiler = kCompilers[rng_.next_below(4)];
    for (;;) {
      const testsuite::CaseSpec& spec = grid_[rng_.next_below(grid_.size())];
      if (acc::table2_robustness(job.compiler, spec.pos, spec.op,
                                 spec.type) == acc::Robustness::kOk) {
        job.kase = spec;
        break;
      }
    }
    job.reduction_extent = r_ << (rng_.next() & 1);
    // Service jobs run on a small launch geometry: simulation cost scales
    // with threads-per-launch, and a saturation harness wants thousands of
    // cheap jobs rather than hundreds of paper-scale ones. The geometry is
    // part of the plan-cache key, so this also keeps key cardinality fixed.
    job.config = acc::LaunchConfig{24, 4, 64};
    return job;
  }

  [[nodiscard]] util::SplitMix64& rng() { return rng_; }

private:
  const TenantMix& mix_;
  std::int64_t r_;
  util::SplitMix64 rng_;
  std::vector<testsuite::CaseSpec> grid_;
};

/// p50/p99 of a service histogram (0 when the metric is absent).
struct P5099 {
  double p50 = 0;
  double p99 = 0;
};

P5099 hist_percentiles(const obs::MetricsRegistry& reg,
                       const std::string& name) {
  const obs::Histogram* h = reg.find_histogram(name);
  if (!h) return {};
  return {h->percentile(0.50), h->percentile(0.99)};
}

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"no-fastpath", "metrics"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  obs::Session obs(cli, "service_throughput");

  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 2500));
  const std::int64_t r = cli.get_int("r", 256);
  const auto workers = static_cast<std::uint32_t>(cli.get_int("workers", 2));
  const double rate = cli.get_double("rate", 0.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string faults = cli.get("faults", "");

  TenantMix mix = parse_tenants(cli.get("tenants", "alice:3,bob:2,carol:1"));
  if (!faults.empty()) {
    service::TenantConfig mallory;
    mallory.name = "mallory";
    mix.total_weight += mallory.weight;
    mix.tenants.push_back(std::move(mallory));
  }

  service::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.plan_cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache-capacity", 512));
  cfg.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-capacity", 0));

  const bool metrics_on =
      cli.get_bool("metrics", false) || obs::metrics_env_default();

  // ---- Phase 1: throughput ------------------------------------------
  std::vector<service::JobResult> results;
  double wall_ms = 0;
  std::map<std::string, service::TenantStats> tenant_stats;
  service::ServiceStats stats;
  std::size_t capacity = 0;
  // Snapshots of the service's telemetry registry, taken at the drained
  // (quiescent) point before the service is torn down: the full dump for
  // the record's "telemetry" section, and the gated virtual-timeline
  // percentiles (DESIGN.md §14 — identical for any workers/sim-threads).
  obs::Json telemetry = obs::Json::object();
  P5099 device_p, queue_wait_p, e2e_p;
  std::map<std::string, std::array<P5099, 3>> tenant_p;  // qw, e2e, device
  {
    service::ReductionService svc(cfg, mix.tenants);
    // Keep the driver's own in-flight window below the occupancy budget:
    // with one submitting thread this guarantees zero backpressure
    // rejections, which keeps every admission/cache counter deterministic.
    capacity = svc.config().queue_capacity;
    const std::size_t window = std::min<std::size_t>(
        static_cast<std::size_t>(cli.get_int("window", 128)), capacity);
    WorkloadSampler sampler(mix, r, seed);

    std::vector<std::future<service::JobResult>> futs;
    futs.reserve(jobs);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < jobs; ++i) {
      service::JobSpec job = sampler.next();
      if (!faults.empty() && job.tenant == "mallory") job.faults = faults;
      if (rate > 0) {
        const double gap_s = -std::log(1.0 - sampler.rng().next_unit()) / rate;
        std::this_thread::sleep_for(std::chrono::duration<double>(gap_s));
      }
      if (i >= window) futs[i - window].wait();
      futs.push_back(svc.submit(std::move(job)));
    }
    svc.drain();
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    results.reserve(jobs);
    for (auto& f : futs) results.push_back(f.get());
    stats = svc.stats();
    tenant_stats = svc.tenant_stats();
    telemetry = svc.metrics_json();
    device_p = hist_percentiles(svc.metrics(), "service/device_ms");
    queue_wait_p = hist_percentiles(svc.metrics(), "service/queue_wait_ms");
    e2e_p = hist_percentiles(svc.metrics(), "service/e2e_ms");
    for (const auto& [name, t] : tenant_stats) {
      (void)t;
      tenant_p[name] = {
          hist_percentiles(svc.metrics(), "tenant/" + name + "/queue_wait_ms"),
          hist_percentiles(svc.metrics(), "tenant/" + name + "/e2e_ms"),
          hist_percentiles(svc.metrics(), "tenant/" + name + "/device_ms")};
    }
  }

  std::size_t ok = 0, failed = 0, hits = 0;
  double device_ms_total = 0;
  // Wall-clock latency distributions go through the same histogram type as
  // the gated metrics (same bucketing, ns units) but stay wall_*: the
  // values depend on host scheduling and are never gated.
  obs::Histogram wall_service_ms(1e6), wall_queue_ms(1e6);
  std::uint64_t clean_checksum = 1469598103934665603ULL;
  std::size_t victim_recovered = 0, victim_degraded = 0, victim_failed = 0,
              victim_jobs = 0;
  for (const service::JobResult& res : results) {
    const bool victim = res.tenant == "mallory";
    if (res.status == service::JobStatus::kOk) {
      ++ok;
    } else {
      ++failed;
    }
    if (res.plan_cache_hit) ++hits;
    device_ms_total += res.outcome.device_ms;
    wall_service_ms.record(res.service_ms);
    wall_queue_ms.record(res.queue_ms);
    if (victim) {
      ++victim_jobs;
      if (res.outcome.recovered) ++victim_recovered;
      if (res.outcome.degraded) ++victim_degraded;
      if (res.status != service::JobStatus::kOk) ++victim_failed;
    } else {
      // FNV-1a fold over clean tenants' result hashes, in submission
      // order: bit-identical whether or not a victim campaign ran
      // alongside (fault isolation), and for any --sim-threads.
      for (int b = 0; b < 8; ++b) {
        clean_checksum ^= (res.outcome.result_hash >> (8 * b)) & 0xff;
        clean_checksum *= 1099511628211ULL;
      }
    }
  }

  const double hit_rate = stats.cache.hit_rate();
  std::cout << "== service throughput ==\n"
            << "jobs " << jobs << "  completed " << stats.completed
            << "  failed " << stats.failed << "  workers " << workers
            << "  occupancy capacity " << capacity << "\n"
            << "plan cache: " << stats.cache.hits << " hits / "
            << stats.cache.misses << " misses ("
            << 100.0 * hit_rate << "% hit rate), " << stats.cache.evictions
            << " evictions, size " << stats.cache.size << "/"
            << stats.cache.capacity << "\n"
            << "device p50 " << device_p.p50 << " ms  p99 " << device_p.p99
            << " ms  total " << device_ms_total << " ms\n"
            << "virtual timeline: queue wait p50 " << queue_wait_p.p50
            << " ms  p99 " << queue_wait_p.p99 << " ms  e2e p50 "
            << e2e_p.p50 << " ms  p99 " << e2e_p.p99 << " ms\n"
            << "wall " << wall_ms / 1000.0 << " s  ("
            << 1000.0 * static_cast<double>(results.size()) / wall_ms
            << " jobs/s)  latency p50 " << wall_service_ms.percentile(0.50)
            << " ms  p99 " << wall_service_ms.percentile(0.99) << " ms\n";
  for (const auto& [name, t] : tenant_stats) {
    std::cout << "  tenant " << name << " (w=" << t.weight << "): "
              << t.submitted << " submitted, " << t.completed
              << " completed, " << t.rejected << " rejected\n";
  }

  auto& tp = obs.record().entry("throughput");
  tp.metric("jobs", static_cast<double>(jobs))
      .metric("completed", static_cast<double>(stats.completed))
      .metric("failed", static_cast<double>(stats.failed))
      .metric("recovered", static_cast<double>(stats.recovered))
      .metric("degraded", static_cast<double>(stats.degraded))
      .metric("rejected_queue", static_cast<double>(stats.rejected_queue))
      .metric("rejected_memory", static_cast<double>(stats.rejected_memory))
      .metric("cache_hits", static_cast<double>(stats.cache.hits))
      .metric("cache_misses", static_cast<double>(stats.cache.misses))
      .metric("cache_evictions", static_cast<double>(stats.cache.evictions))
      .metric("cache_hit_rate", hit_rate)
      .metric("device_ms_total", device_ms_total)
      .metric("device_p50_ms", device_p.p50)
      .metric("device_p99_ms", device_p.p99)
      .metric("queue_wait_p50_ms", queue_wait_p.p50)
      .metric("queue_wait_p99_ms", queue_wait_p.p99)
      .metric("e2e_p50_ms", e2e_p.p50)
      .metric("e2e_p99_ms", e2e_p.p99)
      .metric("wall_ms", wall_ms)
      .metric("wall_jobs_per_sec",
              wall_ms > 0
                  ? 1000.0 * static_cast<double>(results.size()) / wall_ms
                  : 0)
      .metric("wall_p50_ms", wall_service_ms.percentile(0.50))
      .metric("wall_p99_ms", wall_service_ms.percentile(0.99))
      .metric("wall_queue_p50_ms", wall_queue_ms.percentile(0.50));
  if (metrics_on) tp.telemetry(std::move(telemetry));
  for (const auto& [name, t] : tenant_stats) {
    const std::array<P5099, 3>& p = tenant_p[name];
    obs.record()
        .entry("tenant/" + name)
        .metric("weight", t.weight)
        .metric("submitted", static_cast<double>(t.submitted))
        .metric("completed", static_cast<double>(t.completed))
        .metric("rejected", static_cast<double>(t.rejected))
        .metric("queue_wait_p50_ms", p[0].p50)
        .metric("e2e_p50_ms", p[1].p50)
        .metric("e2e_p99_ms", p[1].p99)
        .metric("device_p50_ms", p[2].p50);
  }

  // ---- Phase 2: admission control -----------------------------------
  // Deterministic by construction: dispatch paused, one submitting
  // thread, fixed budgets — exact rejection counts, every time.
  {
    service::ServiceConfig acfg;
    acfg.workers = workers;
    acfg.queue_capacity = 64;
    acfg.start_paused = true;
    service::ReductionService svc(acfg);
    service::JobSpec probe;
    probe.kase = {acc::Position::kGang, acc::ReductionOp::kSum,
                  acc::DataType::kInt32};
    probe.reduction_extent = r;
    std::vector<std::future<service::JobResult>> futs;
    futs.reserve(96);
    for (int i = 0; i < 96; ++i) futs.push_back(svc.submit(probe));
    const service::ServiceStats paused = svc.stats();
    svc.resume();
    svc.drain();
    const service::ServiceStats done = svc.stats();
    std::size_t delivered_rejections = 0;
    for (auto& f : futs) {
      if (f.get().status == service::JobStatus::kRejected) {
        ++delivered_rejections;
      }
    }
    std::cout << "\n== admission (occupancy budget " << acfg.queue_capacity
              << ") ==\n"
              << "submitted 96: admitted " << paused.admitted
              << ", rejected " << paused.rejected_queue << " (backpressure), "
              << done.completed << " completed after resume\n";
    obs.record()
        .entry("admission/occupancy")
        .metric("queue_capacity", static_cast<double>(acfg.queue_capacity))
        .metric("submitted", static_cast<double>(paused.submitted))
        .metric("admitted", static_cast<double>(paused.admitted))
        .metric("rejected_queue", static_cast<double>(paused.rejected_queue))
        .metric("delivered_rejections",
                static_cast<double>(delivered_rejections))
        .metric("completed", static_cast<double>(done.completed));
  }
  {
    service::JobSpec probe;
    probe.kase = {acc::Position::kGang, acc::ReductionOp::kSum,
                  acc::DataType::kInt32};
    probe.reduction_extent = r;
    const std::size_t job_bytes = service::ReductionService::estimate_bytes(probe);
    service::ServiceConfig mcfg;
    mcfg.workers = workers;
    mcfg.memory_budget_bytes = 3 * job_bytes;
    mcfg.start_paused = true;
    service::ReductionService svc(mcfg);
    for (int i = 0; i < 5; ++i) {
      (void)svc.submit(probe, [](service::JobResult) {});
    }
    const service::ServiceStats paused = svc.stats();
    svc.resume();
    svc.drain();
    std::cout << "== admission (memory budget 3 jobs = "
              << mcfg.memory_budget_bytes << " bytes) ==\n"
              << "submitted 5: admitted " << paused.admitted << ", rejected "
              << paused.rejected_memory << " (memory)\n";
    obs.record()
        .entry("admission/memory")
        .metric("job_bytes", static_cast<double>(job_bytes))
        .metric("submitted", static_cast<double>(paused.submitted))
        .metric("admitted", static_cast<double>(paused.admitted))
        .metric("rejected_memory",
                static_cast<double>(paused.rejected_memory));
  }

  if (!faults.empty()) {
    std::cout << "== fault campaign (tenant mallory: " << faults << ") ==\n"
              << "victim jobs " << victim_jobs << ": " << victim_recovered
              << " recovered, " << victim_degraded << " degraded, "
              << victim_failed << " failed\n";
    obs.record().meta("faults", faults);
    obs.record()
        .entry("faults")
        .metric("victim_jobs", static_cast<double>(victim_jobs))
        .metric("victim_recovered", static_cast<double>(victim_recovered))
        .metric("victim_degraded", static_cast<double>(victim_degraded))
        .metric("victim_failed", static_cast<double>(victim_failed));
  }
  {
    char hex[19];
    std::snprintf(hex, sizeof hex, "0x%016llx",
                  static_cast<unsigned long long>(clean_checksum));
    std::cout << "clean-tenant result checksum " << hex << "\n";
    obs.record().entry("throughput").attr("clean_checksum", hex);
  }

  obs.record().meta("jobs", static_cast<std::int64_t>(jobs));
  obs.record().meta("reduction_extent", r);
  obs.record().meta("workers", static_cast<std::int64_t>(workers));
  obs.record().meta("seed", static_cast<std::int64_t>(seed));
  obs.record().meta("tenants", cli.get("tenants", "alice:3,bob:2,carol:1"));
  if (rate > 0) obs.record().meta("rate", rate);

  const bool all_ok = failed == 0 || !faults.empty();
  return obs.finish() && all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
