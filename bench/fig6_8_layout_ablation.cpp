// E6: ablation of the shared-memory staging layouts of Figs. 6 and 8 —
// the design choices §3.1 argues for. Reports bank-conflict factors,
// barrier counts, shared traffic and modeled time for:
//   vector reduction: row-contiguous (6c, OpenUH) vs transposed (6b)
//   worker reduction: first-row (8c, OpenUH) vs duplicated-rows (8b)
//   both: shared staging vs the global-memory fallback (§3.3)
//
// Flags: --r N (reduction extent, default 2^16)
//        --profile (per-stage attribution tables, obs/profiler.hpp)
//        --racecheck (dynamic race detection, gpusim/racecheck.hpp; the
//                     six variants must all be race-free — tools/
//                     racecheck_report gates on the JSON record)
//        --json FILE / --trace FILE (structured record / event trace)
#include <iostream>

#include "reduce/vector_reduce.hpp"
#include "reduce/worker_reduce.hpp"
#include "testsuite/values.hpp"
#include "gpusim/pool.hpp"
#include "obs/profiler.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace accred;

struct Row {
  std::string name;
  gpusim::LaunchStats stats;
};

template <typename Run>
Row run_variant(std::string name, std::int64_t r, Run&& run) {
  gpusim::Device dev;
  const reduce::Nest3 n{2, 32, 0};  // filled per strategy below
  (void)n;
  auto stats = run(dev, r);
  return {std::move(name), stats};
}

gpusim::LaunchStats run_vector(gpusim::Device& dev, std::int64_t r,
                               const reduce::StrategyConfig& sc) {
  const reduce::Nest3 n{2, 32, r};
  const auto volume = static_cast<std::size_t>(n.nk * n.nj * n.ni);
  auto input = dev.alloc<float>(volume);
  {
    auto host = input.host_span();
    for (std::size_t i = 0; i < volume; ++i) {
      host[i] = testsuite::testsuite_value<float>(acc::ReductionOp::kSum, i);
    }
  }
  auto out = dev.alloc<float>(static_cast<std::size_t>(n.nk * n.nj));
  auto iv = input.view();
  auto ov = out.view();
  reduce::Bindings<float> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t i) {
    return ctx.ld(iv, static_cast<std::size_t>((k * n.nj + j) * n.ni + i));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
               float v) {
    ctx.st(ov, static_cast<std::size_t>(k * n.nj + j), v);
  };
  return reduce::run_vector_reduction<float>(dev, n, {}, acc::ReductionOp::kSum,
                                             b, sc)
      .stats;
}

gpusim::LaunchStats run_worker(gpusim::Device& dev, std::int64_t r,
                               const reduce::StrategyConfig& sc) {
  const reduce::Nest3 n{2, r, 32};
  const auto count = static_cast<std::size_t>(n.nk * n.nj);
  auto input = dev.alloc<float>(count);
  {
    auto host = input.host_span();
    for (std::size_t i = 0; i < count; ++i) {
      host[i] = testsuite::testsuite_value<float>(acc::ReductionOp::kSum, i);
    }
  }
  auto out = dev.alloc<float>(static_cast<std::size_t>(n.nk));
  auto iv = input.view();
  auto ov = out.view();
  reduce::Bindings<float> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                  std::int64_t) {
    return ctx.ld(iv, static_cast<std::size_t>(k * n.nj + j));
  };
  b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t,
               float v) { ctx.st(ov, static_cast<std::size_t>(k), v); };
  return reduce::run_worker_reduction<float>(dev, n, {}, acc::ReductionOp::kSum,
                                             b, sc)
      .stats;
}

void emit(util::TextTable& t, obs::RunRecord& rec, const std::string& key,
          const std::string& name, const gpusim::LaunchStats& s) {
  t.row({name, util::TextTable::num(s.device_time_ns / 1e6),
         std::to_string(s.smem_requests),
         util::TextTable::num(gpusim::bank_conflict_factor(s)),
         std::to_string(s.barriers), std::to_string(s.syncwarps),
         std::to_string(s.gmem_segments)});
  rec.entry(key).attr("variant", name).stats(s);
  if (!s.profile.empty()) {
    std::cout << "\n-- " << name << ": per-stage profile --\n";
    obs::print_profile(std::cout, s.profile);
  }
  if (s.racecheck && s.races > 0) {
    std::cout << "\n-- " << name << ": " << s.races << " race(s) --\n";
    for (const gpusim::RaceReport& r : s.race_reports) {
      std::cout << "  " << gpusim::to_string(r) << '\n';
    }
  }
}

}  // namespace

#include "util/main_guard.hpp"

namespace {

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"profile", "racecheck", "no-fastpath"});
  gpusim::set_default_sim_threads(
      static_cast<std::uint32_t>(cli.get_int("sim-threads", 0)));
  gpusim::set_default_fastpath(!cli.get_bool("no-fastpath", false));
  const std::int64_t r = cli.get_int("r", 1 << 16);
  const bool profile = cli.get_bool("profile") || obs::profile_env_default();
  const bool racecheck =
      cli.get_bool("racecheck") || gpusim::racecheck_env_default();
  obs::Session obs(cli, "fig6_8_layout_ablation");
  obs.record().meta("reduction_extent", r);
  if (profile) obs.record().meta("profile", std::int64_t{1});
  if (racecheck) obs.record().meta("racecheck", std::int64_t{1});

  std::cout << "== Fig. 6 / Fig. 8 staging-layout ablation (extent " << r
            << ") ==\n\n";
  util::TextTable t;
  t.header({"variant", "device ms", "smem reqs", "bank factor", "barriers",
            "syncwarps", "gmem segs"});

  {
    gpusim::Device dev;
    reduce::StrategyConfig sc;  // OpenUH defaults: Fig. 6c
    sc.sim.profile = profile;
    sc.sim.racecheck = racecheck;
    emit(t, obs.record(), "vector/row_contiguous", "vector row-contiguous (6c, OpenUH)", run_vector(dev, r, sc));
  }
  {
    gpusim::Device dev;
    reduce::StrategyConfig sc;
    sc.sim.profile = profile;
    sc.sim.racecheck = racecheck;
    sc.vector_layout = reduce::VectorLayout::kTransposed;
    emit(t, obs.record(), "vector/transposed", "vector transposed (6b)", run_vector(dev, r, sc));
  }
  {
    gpusim::Device dev;
    reduce::StrategyConfig sc;
    sc.sim.profile = profile;
    sc.sim.racecheck = racecheck;
    sc.staging = reduce::Staging::kGlobal;
    emit(t, obs.record(), "vector/global_fallback", "vector global fallback (3.3)", run_vector(dev, r, sc));
  }
  {
    gpusim::Device dev;
    reduce::StrategyConfig sc;  // Fig. 8c
    sc.sim.profile = profile;
    sc.sim.racecheck = racecheck;
    emit(t, obs.record(), "worker/first_row", "worker first-row (8c, OpenUH)", run_worker(dev, r, sc));
  }
  {
    gpusim::Device dev;
    reduce::StrategyConfig sc;
    sc.sim.profile = profile;
    sc.sim.racecheck = racecheck;
    sc.worker_layout = reduce::WorkerLayout::kDuplicatedRows;
    emit(t, obs.record(), "worker/duplicated_rows", "worker duplicated rows (8b)", run_worker(dev, r, sc));
  }
  {
    gpusim::Device dev;
    reduce::StrategyConfig sc;
    sc.sim.profile = profile;
    sc.sim.racecheck = racecheck;
    sc.staging = reduce::Staging::kGlobal;
    emit(t, obs.record(), "worker/global_fallback", "worker global fallback (3.3)", run_worker(dev, r, sc));
  }
  t.print(std::cout);
  std::cout << "\nexpected shapes: transposed pays a W-way bank-conflict "
               "factor; duplicated rows multiplies shared traffic and "
               "barriers; global staging trades shared pressure for global "
               "segments.\n";
  return obs.finish() ? 0 : 1;
}

}  // namespace

// All benches, examples, and tools share one top-level exception guard:
// any escaping error prints a structured line and exits non-zero instead
// of crashing (util/main_guard.hpp).
int main(int argc, char** argv) {
  return accred::util::guarded_main([&] { return run(argc, argv); });
}
