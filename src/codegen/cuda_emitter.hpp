// CUDA C++ source emission: the text twin of acc::execute. Given an
// ExecutionPlan, produces the kernel source the OpenUH source-to-source
// pipeline would hand to nvcc — window-sliding loops (Fig. 3), private
// partials, shared/global staging, the interleaved log-step tree with the
// fully-unrolled warp-synchronous tail (§3.1.1), and the second
// finalization kernel where the plan needs one (Fig. 5c, §3.2).
//
// Loop bodies reach the library as callables, so the emitter takes their
// source form as strings (what the real compiler reads from the AST).
#pragma once

#include <string>

#include "acc/planner.hpp"

namespace accred::codegen {

/// Source fragments standing in for the user's loop body. Placeholders:
/// `k`, `j`, `i` (loop indices) are in scope in every fragment; `RESULT`
/// in sink_stmt names the reduced value of the instance.
struct BodySpec {
  std::string contrib_expr = "input[(k * nj + j) * ni + i]";
  std::string parallel_work_stmt;  ///< optional, innermost loop
  std::string sink_stmt;           ///< per-instance strategies only
  std::string instance_init_expr;  ///< optional (e.g. "j" in Fig. 4a)
};

/// Emit the full .cu translation unit (helpers + kernel(s) + launch
/// comment) for the plan.
[[nodiscard]] std::string emit_cuda(const acc::ExecutionPlan& plan,
                                    const BodySpec& body);

}  // namespace accred::codegen
