#include "codegen/cuda_emitter.hpp"

#include <bit>
#include <sstream>

namespace accred::codegen {

namespace {

using acc::DataType;
using acc::ExecutionPlan;
using acc::ReductionOp;
using acc::StrategyKind;
using reduce::Assignment;
using reduce::Staging;

const char* cuda_type(DataType t) {
  switch (t) {
    case DataType::kInt32: return "int";
    case DataType::kUInt32: return "unsigned int";
    case DataType::kInt64: return "long long";
    case DataType::kFloat: return "float";
    case DataType::kDouble: return "double";
  }
  return "int";
}

std::string identity_literal(ReductionOp op, DataType t) {
  switch (op) {
    case ReductionOp::kSum: return "0";
    case ReductionOp::kProd: return "1";
    case ReductionOp::kMax:
      switch (t) {
        case DataType::kInt32: return "INT_MIN";
        case DataType::kUInt32: return "0u";
        case DataType::kInt64: return "LLONG_MIN";
        case DataType::kFloat: return "-FLT_MAX";
        case DataType::kDouble: return "-DBL_MAX";
      }
      return "0";
    case ReductionOp::kMin:
      switch (t) {
        case DataType::kInt32: return "INT_MAX";
        case DataType::kUInt32: return "UINT_MAX";
        case DataType::kInt64: return "LLONG_MAX";
        case DataType::kFloat: return "FLT_MAX";
        case DataType::kDouble: return "DBL_MAX";
      }
      return "0";
    case ReductionOp::kBitAnd: return "~0";
    case ReductionOp::kBitOr: return "0";
    case ReductionOp::kBitXor: return "0";
    case ReductionOp::kLogAnd: return "1";
    case ReductionOp::kLogOr: return "0";
  }
  return "0";
}

std::string apply_expr(ReductionOp op, const std::string& a,
                       const std::string& b) {
  switch (op) {
    case ReductionOp::kSum: return a + " + " + b;
    case ReductionOp::kProd: return a + " * " + b;
    case ReductionOp::kMax:
      return "(" + a + " > " + b + " ? " + a + " : " + b + ")";
    case ReductionOp::kMin:
      return "(" + a + " < " + b + " ? " + a + " : " + b + ")";
    case ReductionOp::kBitAnd: return a + " & " + b;
    case ReductionOp::kBitOr: return a + " | " + b;
    case ReductionOp::kBitXor: return a + " ^ " + b;
    case ReductionOp::kLogAnd:
      return "((" + a + " != 0) && (" + b + " != 0)) ? 1 : 0";
    case ReductionOp::kLogOr:
      return "((" + a + " != 0) || (" + b + " != 0)) ? 1 : 0";
  }
  return a;
}

/// Small indentation-aware line writer.
class Writer {
public:
  Writer& line(const std::string& s) {
    if (!s.empty() && (s[0] == '}' || s.rfind("} ", 0) == 0)) indent_ -= 1;
    for (int i = 0; i < indent_; ++i) out_ << "  ";
    out_ << s << '\n';
    if (!s.empty() && s.back() == '{') indent_ += 1;
    return *this;
  }
  Writer& blank() {
    out_ << '\n';
    return *this;
  }
  [[nodiscard]] std::string str() const { return out_.str(); }

private:
  std::ostringstream out_;
  int indent_ = 0;
};

/// Emits the while-style window/blocking loop of Fig. 3.
void open_device_loop(Writer& w, Assignment mode, const std::string& var,
                      const std::string& extent, const std::string& id,
                      const std::string& step) {
  if (mode == Assignment::kWindow) {
    w.line("for (long " + var + " = " + id + "; " + var + " < " + extent +
           "; " + var + " += " + step + ") {");
  } else {
    w.line("{");
    w.line("const long " + var + "_chunk = (" + extent + " + " + step +
           " - 1) / " + step + ";");
    w.line("const long " + var + "_end = min(" + extent + ", (long(" + id +
           ") + 1) * " + var + "_chunk);");
    w.line("for (long " + var + " = long(" + id + ") * " + var +
           "_chunk; " + var + " < " + var + "_end; ++" + var + ") {");
  }
}

void close_device_loop(Writer& w, Assignment mode) {
  w.line("}");
  if (mode == Assignment::kBlocking) w.line("}");
}

/// Emits the padded worker loop (barriers live inside its body).
void open_padded_loop(Writer& w, const std::string& var,
                      const std::string& extent, const std::string& id,
                      const std::string& step) {
  w.line("const long " + var + "_iters = (" + extent + " + " + step +
         " - 1) / " + step + ";");
  w.line("for (long " + var + "_it = 0; " + var + "_it < " + var +
         "_iters; ++" + var + "_it) {");
  w.line("const long " + var + " = " + id + " + " + var + "_it * " + step +
         ";");
  w.line("const bool " + var + "_ok = " + var + " < " + extent + ";");
}

/// Emits the in-block tree over `count` staged elements (§3.1.1). With
/// full_unroll the steps are written out ("actually in our implementation,
/// we unroll all iterations"); the tail uses __syncwarp when permitted.
void emit_tree(Writer& w, const ExecutionPlan& plan, const std::string& buf,
               const std::string& base, std::uint32_t count,
               std::uint32_t stride_elems, const std::string& local) {
  const auto& tree = plan.strategy.tree;
  const auto op_elem = [&](const std::string& idx) {
    return buf + "[" + base + " + (" + idx + ") * " +
           std::to_string(stride_elems) + "]";
  };
  auto combine = [&](const std::string& dst, const std::string& src) {
    return op_elem(dst) + " = " +
           apply_expr(plan.op, op_elem(dst), op_elem(src)) + ";";
  };
  const bool warp_ok = stride_elems == 1 && plan.launch.vector_length % 32 == 0;

  w.line("__syncthreads();  // staging stores visible block-wide");
  if (count <= 1) return;
  const std::uint32_t pow2 = std::bit_floor(count);
  if (count > pow2) {
    w.line("// pre-fold the non-power-of-2 overhang (paper 3.3)");
    w.line("if (" + local + " < " + std::to_string(count - pow2) + ") " +
           combine(local, local + " + " + std::to_string(pow2)));
    w.line("__syncthreads();");
  }
  if (tree.full_unroll) {
    bool tail = false;
    for (std::uint32_t s = pow2 / 2; s >= 1; s /= 2) {
      const bool warp_scope = tree.unroll_last_warp && warp_ok && s < 32;
      w.line("if (" + local + " < " + std::to_string(s) + ") " +
             combine(local, local + " + " + std::to_string(s)));
      w.line(warp_scope ? "__syncwarp();" : "__syncthreads();");
      tail = tail || warp_scope;
    }
    if (tail) w.line("__syncthreads();  // publish the warp-private tail");
  } else {
    w.line("for (unsigned s = " + std::to_string(pow2 / 2) +
           "; s >= 1; s >>= 1) {");
    w.line("if (" + local + " < s) " + combine(local, local + " + s"));
    w.line("__syncthreads();");
    w.line("}");
  }
}

void emit_prelude(Writer& w, const ExecutionPlan& plan) {
  w.line("// Generated by accred (OpenUH-style OpenACC reduction lowering)");
  w.line("// strategy: " + std::string(to_string(plan.kind)) +
         ", operator: " + std::string(to_string(plan.op)) + ", type: " +
         std::string(to_string(plan.type)));
  w.line("// launch: <<<dim3(" + std::to_string(plan.launch.num_gangs) +
         "), dim3(" + std::to_string(plan.launch.vector_length) + ", " +
         std::to_string(plan.launch.num_workers) + ")>>>");
  w.line("#include <cfloat>");
  w.line("#include <climits>");
  w.blank();
}

/// Shared or global staging declaration inside the kernel.
std::string stage_decl(const ExecutionPlan& plan, std::size_t elems) {
  const std::string t = cuda_type(plan.type);
  if (plan.strategy.staging == Staging::kShared) {
    return "__shared__ " + t + " sbuf[" + std::to_string(elems) + "];";
  }
  return "/* global staging: " + t + "* gstage (one region per block) */";
}

std::string priv_decl(const ExecutionPlan& plan, const std::string& name) {
  return std::string(cuda_type(plan.type)) + " " + name + " = " +
         identity_literal(plan.op, plan.type) + ";";
}

void emit_finalize_kernel(Writer& w, const ExecutionPlan& plan,
                          std::size_t count) {
  const std::string t = cuda_type(plan.type);
  w.blank();
  w.line("// Second kernel (Fig. 5c): one block reduces the partials.");
  w.line("extern \"C\" __global__ void acc_reduction_finalize(const " + t +
         "* partial, " + t + "* out) {");
  const std::uint32_t ft = plan.strategy.finalize_threads;
  w.line("__shared__ " + t + " sbuf[" + std::to_string(ft) + "];");
  w.line(priv_decl(plan, "priv"));
  open_device_loop(w, plan.strategy.assignment, "idx",
                   std::to_string(count), "threadIdx.x",
                   std::to_string(ft));
  w.line("priv = " + apply_expr(plan.op, "priv", "partial[idx]") + ";");
  close_device_loop(w, plan.strategy.assignment);
  w.line("sbuf[threadIdx.x] = priv;");
  ExecutionPlan fp = plan;
  fp.launch.vector_length = ft;  // tree over the finalize block
  emit_tree(w, fp, "sbuf", "0", ft, 1, "threadIdx.x");
  w.line("if (threadIdx.x == 0) out[0] = sbuf[0];");
  w.line("}");
}

std::string default_sink(const ExecutionPlan& plan) {
  switch (plan.kind) {
    case StrategyKind::kVector: return "out[k * nj + j] = RESULT;";
    case StrategyKind::kWorker:
    case StrategyKind::kWorkerVector: return "out[k] = RESULT;";
    default: return "";
  }
}

std::string replace_all(std::string s, const std::string& from,
                        const std::string& to) {
  for (std::size_t pos = 0; (pos = s.find(from, pos)) != std::string::npos;
       pos += to.size()) {
    s.replace(pos, from.size(), to);
  }
  return s;
}

}  // namespace

std::string emit_cuda(const ExecutionPlan& plan, const BodySpec& body) {
  Writer w;
  emit_prelude(w, plan);

  const std::string t = cuda_type(plan.type);
  const Assignment mode = plan.strategy.assignment;
  const std::uint32_t g = plan.launch.num_gangs;
  const std::uint32_t nw = plan.launch.num_workers;
  const std::uint32_t v = plan.launch.vector_length;
  const std::uint32_t nthreads = nw * v;
  std::string sink = body.sink_stmt.empty() ? default_sink(plan)
                                            : body.sink_stmt;
  auto fold_init = [&](const std::string& result) {
    if (body.instance_init_expr.empty()) return result;
    std::string folded = "(";
    folded += apply_expr(plan.op, "(" + t + ")(" + body.instance_init_expr +
                         ")", result);
    folded += ")";
    return folded;
  };

  const bool two_kernel = plan.kernel_count == 2;
  const std::string out_param = two_kernel ? t + "* partial" : t + "* out";
  w.line("extern \"C\" __global__ void acc_reduction_main(const " + t +
         "* input, " + out_param + ", long nk, long nj, long ni) {");

  switch (plan.kind) {
    case StrategyKind::kVector: {
      w.line(stage_decl(plan, nthreads));
      open_device_loop(w, mode, "k", "nk", "blockIdx.x", "gridDim.x");
      open_padded_loop(w, "j", "nj", "threadIdx.y", "blockDim.y");
      w.line(priv_decl(plan, "priv"));
      w.line("if (j_ok) {");
      open_device_loop(w, mode, "i", "ni", "threadIdx.x", "blockDim.x");
      if (!body.parallel_work_stmt.empty()) w.line(body.parallel_work_stmt);
      w.line("priv = " + apply_expr(plan.op, "priv",
                                    "(" + body.contrib_expr + ")") + ";");
      close_device_loop(w, mode);
      w.line("}");
      const bool transposed =
          plan.strategy.vector_layout == reduce::VectorLayout::kTransposed;
      if (transposed) {
        w.line("// Fig. 6b transposed staging");
        w.line("sbuf[threadIdx.x * blockDim.y + threadIdx.y] = priv;");
        emit_tree(w, plan, "sbuf", "threadIdx.y", v, nw, "threadIdx.x");
        w.line("if (threadIdx.x == 0 && j_ok) { " + t +
               " RESULT = " + fold_init("sbuf[threadIdx.y]") + "; " + sink +
               " }");
      } else {
        w.line("// Fig. 6c row-contiguous staging (OpenUH)");
        w.line("sbuf[threadIdx.y * blockDim.x + threadIdx.x] = priv;");
        emit_tree(w, plan, "sbuf",
                  "threadIdx.y * " + std::to_string(v), v, 1, "threadIdx.x");
        w.line("if (threadIdx.x == 0 && j_ok) { " + t + " RESULT = " +
               fold_init("sbuf[threadIdx.y * " + std::to_string(v) + "]") +
               "; " + sink + " }");
      }
      w.line("__syncthreads();  // staging reused by the next instance");
      w.line("}");  // padded j loop
      close_device_loop(w, mode);
      break;
    }
    case StrategyKind::kWorker: {
      const bool dup =
          plan.strategy.worker_layout == reduce::WorkerLayout::kDuplicatedRows;
      w.line(stage_decl(plan, dup ? std::size_t{v} * nw : nw));
      open_device_loop(w, mode, "k", "nk", "blockIdx.x", "gridDim.x");
      w.line(priv_decl(plan, "priv"));
      open_device_loop(w, mode, "j", "nj", "threadIdx.y", "blockDim.y");
      if (!body.parallel_work_stmt.empty()) {
        open_device_loop(w, mode, "i", "ni", "threadIdx.x", "blockDim.x");
        w.line(body.parallel_work_stmt);
        close_device_loop(w, mode);
      }
      w.line("priv = " + apply_expr(plan.op, "priv",
                                    "(" + body.contrib_expr + ")") + ";");
      close_device_loop(w, mode);
      if (dup) {
        w.line("// Fig. 8b duplicated-rows staging");
        w.line("sbuf[threadIdx.x * blockDim.y + threadIdx.y] = priv;");
        emit_tree(w, plan, "sbuf",
                  "threadIdx.x * " + std::to_string(nw), nw, 1,
                  "threadIdx.y");
      } else {
        w.line("// Fig. 8c first-row staging (OpenUH)");
        w.line("if (threadIdx.x == 0) sbuf[threadIdx.y] = priv;");
        emit_tree(w, plan, "sbuf", "0", nw, 1,
                  "(threadIdx.y == 0 ? threadIdx.x : ~0u)");
      }
      w.line("if (threadIdx.x == 0 && threadIdx.y == 0) { " + t +
             " RESULT = " + fold_init("sbuf[0]") + "; " + sink + " }");
      w.line("__syncthreads();");
      close_device_loop(w, mode);
      break;
    }
    case StrategyKind::kGang: {
      w.line(priv_decl(plan, "priv"));
      open_device_loop(w, mode, "k", "nk", "blockIdx.x", "gridDim.x");
      if (!body.parallel_work_stmt.empty()) {
        open_device_loop(w, mode, "j", "nj", "threadIdx.y", "blockDim.y");
        open_device_loop(w, mode, "i", "ni", "threadIdx.x", "blockDim.x");
        w.line(body.parallel_work_stmt);
        close_device_loop(w, mode);
        close_device_loop(w, mode);
      }
      w.line("priv = " + apply_expr(plan.op, "priv",
                                    "(" + body.contrib_expr + ")") + ";");
      close_device_loop(w, mode);
      w.line("if (threadIdx.x == 0 && threadIdx.y == 0) "
             "partial[blockIdx.x] = priv;");
      break;
    }
    case StrategyKind::kWorkerVector: {
      w.line(stage_decl(plan, nthreads));
      w.line("const unsigned tid = threadIdx.y * blockDim.x + threadIdx.x;");
      open_device_loop(w, mode, "k", "nk", "blockIdx.x", "gridDim.x");
      w.line(priv_decl(plan, "priv"));
      open_device_loop(w, mode, "j", "nj", "threadIdx.y", "blockDim.y");
      open_device_loop(w, mode, "i", "ni", "threadIdx.x", "blockDim.x");
      if (!body.parallel_work_stmt.empty()) w.line(body.parallel_work_stmt);
      w.line("priv = " + apply_expr(plan.op, "priv",
                                    "(" + body.contrib_expr + ")") + ";");
      close_device_loop(w, mode);
      close_device_loop(w, mode);
      w.line("sbuf[tid] = priv;");
      emit_tree(w, plan, "sbuf", "0", nthreads, 1, "tid");
      w.line("if (tid == 0) { " + t + " RESULT = " + fold_init("sbuf[0]") +
             "; " + sink + " }");
      w.line("__syncthreads();");
      close_device_loop(w, mode);
      break;
    }
    case StrategyKind::kGangWorker: {
      w.line(priv_decl(plan, "priv"));
      open_device_loop(w, mode, "k", "nk", "blockIdx.x", "gridDim.x");
      open_device_loop(w, mode, "j", "nj", "threadIdx.y", "blockDim.y");
      if (!body.parallel_work_stmt.empty()) {
        open_device_loop(w, mode, "i", "ni", "threadIdx.x", "blockDim.x");
        w.line(body.parallel_work_stmt);
        close_device_loop(w, mode);
      }
      w.line("priv = " + apply_expr(plan.op, "priv",
                                    "(" + body.contrib_expr + ")") + ";");
      close_device_loop(w, mode);
      close_device_loop(w, mode);
      w.line("if (threadIdx.x == 0) "
             "partial[blockIdx.x * blockDim.y + threadIdx.y] = priv;");
      break;
    }
    case StrategyKind::kGangWorkerVector: {
      w.line(priv_decl(plan, "priv"));
      open_device_loop(w, mode, "k", "nk", "blockIdx.x", "gridDim.x");
      open_device_loop(w, mode, "j", "nj", "threadIdx.y", "blockDim.y");
      open_device_loop(w, mode, "i", "ni", "threadIdx.x", "blockDim.x");
      if (!body.parallel_work_stmt.empty()) w.line(body.parallel_work_stmt);
      w.line("priv = " + apply_expr(plan.op, "priv",
                                    "(" + body.contrib_expr + ")") + ";");
      close_device_loop(w, mode);
      close_device_loop(w, mode);
      close_device_loop(w, mode);
      w.line("partial[(blockIdx.x * blockDim.y + threadIdx.y) * blockDim.x "
             "+ threadIdx.x] = priv;");
      break;
    }
    case StrategyKind::kSameLoop: {
      w.line("const unsigned gtid = (blockIdx.x * blockDim.y + threadIdx.y) "
             "* blockDim.x + threadIdx.x;");
      w.line(priv_decl(plan, "priv"));
      const std::string total = std::to_string(
          static_cast<std::uint64_t>(g) * nthreads);
      open_device_loop(w, mode, "k", "nk", "gtid", total);
      w.line("priv = " + apply_expr(plan.op, "priv",
                                    "(" + replace_all(body.contrib_expr,
                                                      "IDX", "k") + ")") +
             ";");
      close_device_loop(w, mode);
      w.line("partial[gtid] = priv;");
      break;
    }
    case StrategyKind::kFusedCascade: {
      // Whole producer→consumer chain in one kernel (Fig. 4 fused). One
      // slab serves every in-block stage: the vector trees use all w*v
      // slots, the worker tree reuses the (dead, post-barrier) first w.
      const bool sv = plan.chain.front().level == acc::Par::kVector;
      const bool sg = plan.chain.back().level == acc::Par::kGang;
      const ReductionOp vop = plan.chain.front().op;
      const ReductionOp wop = sv ? plan.chain[1].op : plan.chain.front().op;
      const ReductionOp gop = plan.chain.back().op;
      ExecutionPlan vp = plan, wp = plan;
      vp.op = vop;
      wp.op = wop;  // emit_tree combines with its plan's op
      w.line(stage_decl(plan, sv ? std::size_t{nw} * v : nw));
      if (sg) {
        w.line(t + " gang_priv = " + identity_literal(gop, plan.type) + ";");
      }
      open_device_loop(w, mode, "k", "nk", "blockIdx.x", "gridDim.x");
      w.line(t + " worker_priv = " + identity_literal(wop, plan.type) + ";");
      if (sv) {
        open_padded_loop(w, "j", "nj", "threadIdx.y", "blockDim.y");
        w.line(t + " vpriv = " + identity_literal(vop, plan.type) + ";");
        w.line("if (j_ok) {");
        open_device_loop(w, mode, "i", "ni", "threadIdx.x", "blockDim.x");
        if (!body.parallel_work_stmt.empty()) w.line(body.parallel_work_stmt);
        w.line("vpriv = " + apply_expr(vop, "vpriv",
                                       "(" + body.contrib_expr + ")") + ";");
        close_device_loop(w, mode);
        w.line("}");
        w.line("sbuf[threadIdx.y * blockDim.x + threadIdx.x] = vpriv;");
        emit_tree(w, vp, "sbuf", "threadIdx.y * " + std::to_string(v), v, 1,
                  "threadIdx.x");
        w.line("if (threadIdx.x == 0 && j_ok) worker_priv = " +
               apply_expr(wop, "worker_priv",
                          "sbuf[threadIdx.y * " + std::to_string(v) + "]") +
               ";");
        w.line("__syncthreads();  // slab reused by the next instance");
        w.line("}");  // padded j loop
      } else {
        w.line("if (threadIdx.x == 0) {");
        open_device_loop(w, mode, "j", "nj", "threadIdx.y", "blockDim.y");
        w.line("worker_priv = " + apply_expr(wop, "worker_priv",
                                             "(" + body.contrib_expr + ")") +
               ";");
        close_device_loop(w, mode);
        w.line("}");
      }
      w.line("// worker tree reusing the slab's first " +
             std::to_string(nw) + " slots");
      w.line("if (threadIdx.x == 0) sbuf[threadIdx.y] = worker_priv;");
      emit_tree(w, wp, "sbuf", "0", nw, 1,
                "(threadIdx.y == 0 ? threadIdx.x : 4294967295u)");
      if (sg) {
        w.line("if (threadIdx.x == 0 && threadIdx.y == 0) gang_priv = " +
               apply_expr(gop, "gang_priv", "sbuf[0]") + ";");
      } else {
        w.line("if (threadIdx.x == 0 && threadIdx.y == 0) { " + t +
               " RESULT = sbuf[0]; " +
               (sink.empty() ? std::string("out[k] = RESULT;") : sink) +
               " }");
      }
      w.line("__syncthreads();  // slab reused by the next k instance");
      close_device_loop(w, mode);
      if (sg) w.line("partial[blockIdx.x] = gang_priv;");
      break;
    }
  }
  w.line("}");

  if (two_kernel) {
    std::size_t partials = g;
    if (plan.kind == StrategyKind::kGangWorker) partials = std::size_t{g} * nw;
    if (plan.kind == StrategyKind::kGangWorkerVector ||
        plan.kind == StrategyKind::kSameLoop) {
      partials = std::size_t{g} * nw * v;
    }
    emit_finalize_kernel(w, plan, partials);
  }
  return w.str();
}

}  // namespace accred::codegen
