// In-block log-step tree reduction (the paper's Fig. 7, after Harris [10]),
// generalized the way OpenUH needs it:
//   * arbitrary (non-power-of-2) element counts via a pre-fold step (§3.3),
//   * per-row operation so each worker's vector lanes can reduce their own
//     row concurrently (Fig. 6c),
//   * strided element layout so the transposed layouts of Fig. 6b / 8b are
//     expressible (and their bank conflicts measurable),
//   * a warp-synchronous tail that replaces syncthreads with (free)
//     syncwarp once only one warp participates (§3.1.1's "unroll the last
//     6 iterations"),
//   * both shared-memory and global-memory operands (§3.3's fallback).
//
// Contract: stage the per-thread partials, then have EVERY thread of the
// block call the same tree function with the same `count` and options (the
// functions contain barriers; the leading barrier orders the staging
// stores). Non-participants pass `local >= count`. On return, the result
// sits in the row's first element and is visible block-wide.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "acc/ops.hpp"
#include "gpusim/thread_ctx.hpp"

namespace accred::reduce {

enum class AddrMode : std::uint8_t {
  kSequential,          ///< active threads 0..stride-1 (paper's choice)
  kInterleavedThreads,  ///< Harris kernel-1 baseline: thread t active when
                        ///< t % (2*stride) == 0 (divergent, conflict-prone)
};

struct TreeOptions {
  AddrMode addr = AddrMode::kSequential;
  /// Switch to syncwarp once a single warp of lanes remains (requires the
  /// participating lanes 0..31 of a row to be one hardware warp).
  bool unroll_last_warp = true;
  /// Model full unrolling (paper: "we unroll all iterations"): removes the
  /// per-step loop-arithmetic ALU charge.
  bool full_unroll = true;
};

namespace detail {

/// True when the first 32 participants of a contiguous row form one
/// hardware warp — the precondition for the warp-synchronous tail. The
/// result must be uniform across the block: with blockDim.x a multiple of
/// 32, all row bases used by the strategies (y * blockDim.x, or 0) are
/// warp-aligned; otherwise the tail is disabled for everyone.
[[nodiscard]] constexpr bool warp_tail_allowed(std::uint32_t stride_elems,
                                               std::uint32_t block_x) {
  return stride_elems == 1 && block_x % 32 == 0;
}

// `Op` is anything with the RuntimeOp shape — `.apply(a, b)` over the
// staged element type. Payload reductions (acc::ArgMinOp over
// acc::ValueIndex pairs, the bench's moment pairs) reuse the tree
// unchanged this way.
template <typename Mem, typename Op>
void tree_reduce_impl(accred::gpusim::ThreadCtx& ctx, const Mem& mem,
                      std::uint32_t row_base, std::uint32_t count,
                      std::uint32_t stride_elems, std::uint32_t local,
                      Op op, const TreeOptions& opt,
                      bool warp_tail_ok) {
  // Every combine load/store, barrier, and loop-bookkeeping charge of the
  // in-block tree books into one profiler stage — the per-stage bank
  // conflict factor here is what separates Fig. 6b from 6c.
  auto prof = ctx.prof_scope("tree");
  auto elem = [&](std::uint32_t idx) -> std::uint32_t {
    return row_base + idx * stride_elems;
  };
  auto combine = [&](std::uint32_t dst, std::uint32_t src) {
    const auto a = mem.load(ctx, elem(dst));
    const auto b = mem.load(ctx, elem(src));
    mem.store(ctx, elem(dst), op.apply(a, b));
  };

  ctx.syncthreads();  // order the callers' staging stores
  if (count <= 1) return;

  const std::uint32_t pow2 = std::bit_floor(count);
  // Pre-fold the non-power-of-2 overhang (§3.3): element i absorbs
  // element i + pow2 for i < count - pow2.
  if (count > pow2) {
    if (local < count - pow2) combine(local, local + pow2);
    ctx.syncthreads();
  }

  if (opt.addr == AddrMode::kSequential) {
    bool tail_warp_scoped = false;
    for (std::uint32_t stride = pow2 / 2; stride >= 1; stride /= 2) {
      const bool warp_scope =
          opt.unroll_last_warp && warp_tail_ok && stride < 32;
      if (local < stride) combine(local, local + stride);
      if (!opt.full_unroll) ctx.alu(2);  // loop bookkeeping per step
      if (warp_scope) {
        ctx.syncwarp();
        tail_warp_scoped = true;
      } else {
        ctx.syncthreads();
      }
    }
    // Publish the warp-private tail result to the whole block.
    if (tail_warp_scoped) ctx.syncthreads();
  } else {
    // Interleaved-thread addressing (Harris kernel 1): thread 2*stride*m
    // folds element 2*stride*m + stride. Highly divergent within warps.
    for (std::uint32_t stride = 1; stride < pow2; stride *= 2) {
      if (local < pow2 && local % (2 * stride) == 0) {
        combine(local, local + stride);
      }
      if (!opt.full_unroll) ctx.alu(2);
      ctx.syncthreads();  // active threads span warps throughout
    }
  }
}

template <typename T>
struct SharedMemOps {
  accred::gpusim::SharedView<T> view;
  T load(accred::gpusim::ThreadCtx& ctx, std::uint32_t i) const {
    return ctx.lds(view, i);
  }
  void store(accred::gpusim::ThreadCtx& ctx, std::uint32_t i,
             const T& v) const {
    ctx.sts(view, i, v);
  }
};

template <typename T>
struct GlobalMemOps {
  accred::gpusim::GlobalView<T> view;
  std::size_t base = 0;  ///< this block's region within the buffer
  T load(accred::gpusim::ThreadCtx& ctx, std::uint32_t i) const {
    return ctx.ld(view, base + i);
  }
  void store(accred::gpusim::ThreadCtx& ctx, std::uint32_t i,
             const T& v) const {
    ctx.st(view, base + i, v);
  }
};

}  // namespace detail

/// Reduce `count` elements at shared offsets row_base + t*stride_elems into
/// the row's first element. `local` = this thread's participant index
/// within its row (>= count for bystanders).
template <typename T, typename Op = accred::acc::RuntimeOp<T>>
void block_tree_reduce(accred::gpusim::ThreadCtx& ctx,
                       accred::gpusim::SharedView<T> sbuf,
                       std::uint32_t row_base, std::uint32_t count,
                       std::uint32_t stride_elems, std::uint32_t local,
                       Op op, const TreeOptions& opt = {}) {
  const bool warp_ok =
      detail::warp_tail_allowed(stride_elems, ctx.blockDim.x);
  if (warp_ok && opt.unroll_last_warp && row_base % 32 != 0) {
    // Would make the syncwarp/syncthreads choice non-uniform across rows.
    throw std::invalid_argument(
        "block_tree_reduce: warp-synchronous tail requires warp-aligned row "
        "bases; disable unroll_last_warp for this layout");
  }
  detail::tree_reduce_impl(ctx, detail::SharedMemOps<T>{sbuf}, row_base,
                           count, stride_elems, local, op, opt, warp_ok);
}

/// Same contract, operating on a global-memory region (§3.3 fallback when
/// shared memory is reserved for other data). `base` addresses this
/// block's private region of the staging buffer.
template <typename T, typename Op = accred::acc::RuntimeOp<T>>
void block_tree_reduce_global(accred::gpusim::ThreadCtx& ctx,
                              accred::gpusim::GlobalView<T> gbuf,
                              std::size_t base, std::uint32_t count,
                              std::uint32_t local, Op op,
                              const TreeOptions& opt = {}) {
  detail::tree_reduce_impl(ctx, detail::GlobalMemOps<T>{gbuf, base}, 0, count,
                           1, local, op, opt,
                           /*warp_tail_ok=*/false);
}

}  // namespace accred::reduce
