// "Reduction only in gang" (§3.1.3, Fig. 4c / 5c): the worker (j) and
// vector (i) loops run in parallel; the gang loop (k) carries the
// reduction. Thread blocks cannot synchronize with each other, so each
// block folds a private partial over its window of the k-space (window-
// sliding by default; the blocking baseline is selectable for the §3.1.3
// ablation), writes it to partial[blockIdx.x], and a second single-block
// kernel reduces the partials buffer.
#pragma once

#include "reduce/finalize.hpp"
#include "reduce/strategy.hpp"

namespace accred::reduce {

template <typename T>
ReduceResult<T> run_gang_reduction(gpusim::Device& dev, Nest3 n,
                                   const acc::LaunchConfig& cfg,
                                   acc::ReductionOp op, const Bindings<T>& b,
                                   const StrategyConfig& sc = {}) {
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;

  auto partial = dev.alloc<T>(g);
  auto pview = partial.view();

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t bid = ctx.blockIdx.x;

    T priv = rop.identity();
    auto prof = ctx.prof_scope("private_partial");
    device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
      // Inner worker/vector loops: non-reduction parallel work.
      if (b.parallel_work) {
        device_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j) {
          device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
            ctx.alu(2);
            b.parallel_work(ctx, k, j, i);
          });
        });
      }
      // Every thread of the block folds the same contribution (Fig. 5c:
      // `sum_priv += temp[k][0][0]` sits outside the inner loops); only
      // thread (0,0) publishes.
      priv = rop.apply(priv, b.contrib(ctx, k, -1, -1));
      ctx.alu(3);
      detail::touch_spill(ctx, sc, sizeof(T));
    });
    prof = {};
    auto stage = ctx.prof_scope("staging");
    if (x == 0 && y == 0) ctx.st(pview, bid, priv);
  };

  ReduceResult<T> res;
  res.stats =
      gpusim::launch(dev, {g}, {v, w}, 0, kernel,
                     labeled_sim(sc.sim, "gang_partial"));
  res.kernels = 1;

  const T fold =
      finalize_to_host(dev, pview, g, op, sc, res.stats, res.kernels);
  res.scalar = detail::fold_host_init(b, acc::RuntimeOp<T>{op}, fold);
  return res;
}

}  // namespace accred::reduce
