// "Reduction only in worker" (§3.1.2, Fig. 4b / 5b / 8): the gang (k) and
// vector (i) loops run in parallel; each k instance reduces the worker
// loop (j). Every worker folds a private partial over its window of the
// j-space (all vector lanes compute it redundantly, as in Fig. 5b), the W
// partials are staged, and a small tree finishes:
//   * Fig. 8c (OpenUH): lane x==0 publishes sbuf[y]; the first row's
//     vector lanes — warp threads — reduce the W values with no extra
//     block barriers in the tail,
//   * Fig. 8b: every thread stages transposed so each of the V rows holds
//     a duplicate copy of the W partials; every row reduces it with block
//     barriers each step (more shared memory, more synchronization).
#pragma once

#include "reduce/strategy.hpp"

namespace accred::reduce {

template <typename T>
ReduceResult<T> run_worker_reduction(gpusim::Device& dev, Nest3 n,
                                     const acc::LaunchConfig& cfg,
                                     acc::ReductionOp op,
                                     const Bindings<T>& b,
                                     const StrategyConfig& sc = {}) {
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;

  gpusim::SharedLayout layout;
  gpusim::SharedView<T> sbuf;
  gpusim::DeviceBuffer<T> gstage;
  gpusim::GlobalView<T> gview{};
  const bool duplicated = sc.worker_layout == WorkerLayout::kDuplicatedRows;
  if (sc.staging == Staging::kShared) {
    sbuf = layout.add<T>(duplicated ? static_cast<std::size_t>(v) * w : w);
  } else {
    gstage = dev.alloc<T>(static_cast<std::size_t>(g) * w);
    gview = gstage.view();
  }

  // The duplicated-rows layout reduces rows based at x*w — not warp
  // aligned — so its tree must keep block-wide barriers (the paper's
  // stated drawback of Fig. 8b).
  TreeOptions dup_tree = sc.tree;
  dup_tree.unroll_last_warp = false;

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t bid = ctx.blockIdx.x;

    device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
      T priv = rop.identity();
      {
        auto prof = ctx.prof_scope("private_partial");
        device_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j) {
          // Inner vector loop: non-reduction parallel work.
          if (b.parallel_work) {
            device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
              ctx.alu(2);
              b.parallel_work(ctx, k, j, i);
            });
          }
          priv = rop.apply(priv, b.contrib(ctx, k, j, -1));
          ctx.alu(3);
          detail::touch_spill(ctx, sc, sizeof(T));
        });
      }

      if (sc.staging == Staging::kShared) {
        if (duplicated) {
          // Fig. 8b: thread (x, y) stores worker y's value into row x.
          {
            auto prof = ctx.prof_scope("staging");
            ctx.sts(sbuf, x * w + y, priv);
          }
          block_tree_reduce(ctx, sbuf, x * w, w, 1, y, rop, dup_tree);
        } else {
          // Fig. 8c: only the first vector lane of each worker publishes.
          {
            auto prof = ctx.prof_scope("staging");
            if (x == 0) ctx.sts(sbuf, y, priv);
          }
          block_tree_reduce(ctx, sbuf, 0, w, 1,
                            y == 0 ? x : ~std::uint32_t{0}, rop, sc.tree);
        }
        auto prof = ctx.prof_scope("finalize");
        if (x == 0 && y == 0) {
          b.sink(ctx, k, -1,
                 detail::fold_instance_init(b, rop, k, -1, ctx.lds(sbuf, 0)));
        }
      } else {
        const std::size_t base = static_cast<std::size_t>(bid) * w;
        {
          auto prof = ctx.prof_scope("staging");
          if (x == 0) ctx.st(gview, base + y, priv);
        }
        block_tree_reduce_global(ctx, gview, base, w,
                                 y == 0 ? x : ~std::uint32_t{0}, rop, sc.tree);
        auto prof = ctx.prof_scope("finalize");
        if (x == 0 && y == 0) {
          b.sink(ctx, k, -1,
                 detail::fold_instance_init(b, rop, k, -1,
                                            ctx.ld(gview, base)));
        }
      }
      auto prof = ctx.prof_scope("finalize");
      ctx.syncthreads();  // staging area reused by the next k instance
    });
  };

  ReduceResult<T> res;
  res.stats = gpusim::launch(dev, {g}, {v, w}, layout.bytes(), kernel,
                             labeled_sim(sc.sim, "worker_reduce"));
  res.kernels = 1;
  return res;
}

}  // namespace accred::reduce
