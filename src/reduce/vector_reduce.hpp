// "Reduction only in vector" (§3.1.1, Fig. 4a / 5a / 6): the gang (k) and
// worker (j) loops run in parallel; each (k, j) instance reduces the vector
// loop (i). Every vector lane folds a private partial over its window of
// the i-space, partials are staged (shared row-contiguous = Fig. 6c,
// transposed = Fig. 6b, or global = §3.3 fallback), an in-block tree
// produces the row result, and lane 0 applies the instance's initial value
// and hands the result to the sink.
#pragma once

#include "reduce/strategy.hpp"

namespace accred::reduce {

template <typename T>
ReduceResult<T> run_vector_reduction(gpusim::Device& dev, Nest3 n,
                                     const acc::LaunchConfig& cfg,
                                     acc::ReductionOp op,
                                     const Bindings<T>& b,
                                     const StrategyConfig& sc = {}) {
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;

  gpusim::SharedLayout layout;
  gpusim::SharedView<T> sbuf;
  gpusim::DeviceBuffer<T> gstage;
  gpusim::GlobalView<T> gview{};
  if (sc.staging == Staging::kShared) {
    sbuf = layout.add<T>(static_cast<std::size_t>(w) * v);
  } else {
    gstage = dev.alloc<T>(static_cast<std::size_t>(g) * w * v);
    gview = gstage.view();
  }

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t bid = ctx.blockIdx.x;

    // Gang loop: true while semantics (barriers inside stay uniform per
    // block). Worker loop: padded — its body runs a barrier-synchronized
    // tree per (k, j) instance.
    device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
      assigned_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j, bool ja) {
        T priv = rop.identity();
        if (ja) {
          auto prof = ctx.prof_scope("private_partial");
          device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
            ctx.alu(2);  // index bookkeeping per Fig. 3 iteration
            if (b.parallel_work) b.parallel_work(ctx, k, j, i);
            priv = rop.apply(priv, b.contrib(ctx, k, j, i));
            ctx.alu(1);
            detail::touch_spill(ctx, sc, sizeof(T));
          });
        }

        std::size_t gbase = 0;
        std::uint32_t result_slot = 0;
        if (sc.staging == Staging::kShared) {
          if (sc.vector_layout == VectorLayout::kRowContiguous) {
            // Fig. 6c: row y holds its own lanes' partials contiguously.
            {
              auto prof = ctx.prof_scope("staging");
              ctx.sts(sbuf, y * v + x, priv);
            }
            block_tree_reduce(ctx, sbuf, y * v, v, 1, x, rop, sc.tree);
            result_slot = y * v;
          } else {
            // Fig. 6b: transposed staging; each row's reduction becomes a
            // strided column walk (bank conflicts, no warp tail).
            {
              auto prof = ctx.prof_scope("staging");
              ctx.sts(sbuf, x * w + y, priv);
            }
            block_tree_reduce(ctx, sbuf, y, v, w, x, rop, sc.tree);
            result_slot = y;
          }
        } else {
          gbase = (static_cast<std::size_t>(bid) * w + y) * v;
          {
            auto prof = ctx.prof_scope("staging");
            ctx.st(gview, gbase + x, priv);
          }
          block_tree_reduce_global(ctx, gview, gbase, v, x, rop, sc.tree);
        }
        auto prof = ctx.prof_scope("finalize");
        if (x == 0 && ja) {
          const T row_result = sc.staging == Staging::kShared
                                   ? ctx.lds(sbuf, result_slot)
                                   : ctx.ld(gview, gbase);
          b.sink(ctx, k, j, detail::fold_instance_init(b, rop, k, j,
                                                       row_result));
        }
        ctx.syncthreads();  // staging area is reused by the next instance
      });
    });
  };

  ReduceResult<T> res;
  res.stats = gpusim::launch(dev, {g}, {v, w}, layout.bytes(), kernel,
                             labeled_sim(sc.sim, "vector_reduce"));
  res.kernels = 1;
  return res;
}

}  // namespace accred::reduce
