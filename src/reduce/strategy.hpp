// Common vocabulary for the reduction-strategy kernels: configuration
// knobs (each one a design choice the paper discusses), the loop-body
// bindings a strategy needs, and the result/metrics bundle.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "acc/ir.hpp"
#include "acc/ops.hpp"
#include "gpusim/launch.hpp"
#include "reduce/tree.hpp"
#include "reduce/window.hpp"

namespace accred::reduce {

/// Where per-thread partials are staged for the in-block tree (§3.3: the
/// global fallback exists because shared memory may be reserved for other
/// computation, and is the modeled PGI behaviour).
enum class Staging : std::uint8_t { kShared, kGlobal };

/// Fig. 6(b) vs 6(c): how vector partials are laid out in shared memory.
enum class VectorLayout : std::uint8_t {
  kRowContiguous,  ///< Fig. 6c, OpenUH: thread layout matches data layout
  kTransposed,     ///< Fig. 6b: transposed, bank-conflicted
};

/// Fig. 8(b) vs 8(c): how worker partials are staged.
enum class WorkerLayout : std::uint8_t {
  kFirstRow,        ///< Fig. 8c, OpenUH: W values in the first row
  kDuplicatedRows,  ///< Fig. 8b: every row holds a duplicate of the values
};

/// Everything a strategy needs besides the nest itself. The defaults are
/// the OpenUH choices; the baseline profiles override them.
struct StrategyConfig {
  Staging staging = Staging::kShared;
  VectorLayout vector_layout = VectorLayout::kRowContiguous;
  WorkerLayout worker_layout = WorkerLayout::kFirstRow;
  Assignment assignment = Assignment::kWindow;
  TreeOptions tree{};
  gpusim::SimOptions sim{};
  /// Thread count of the single-block finalization kernel (gang / RMP).
  std::uint32_t finalize_threads = 256;
  /// Model a compiler that keeps the private reduction accumulator in
  /// (spilled) global memory: every contribution pays a read-modify-write
  /// of a per-thread slot. This is the dominant overhead the modeled PGI
  /// profile exhibits across Table 2 (see profiles.cpp).
  bool spill_private = false;
};

/// SimOptions for one strategy kernel launch, tagged with its role name
/// for the exported trace (obs/trace.hpp). An explicit label set by the
/// caller wins; labels never affect simulation or stats.
[[nodiscard]] inline gpusim::SimOptions labeled_sim(gpusim::SimOptions sim,
                                                    const char* label) {
  if (sim.label.empty()) sim.label = label;
  return sim;
}

namespace detail {

/// Cost-model annotation for the spilled accumulator: one coalesced
/// read + write of this thread's slot in a virtual spill region.
inline void touch_spill(gpusim::ThreadCtx& ctx, const StrategyConfig& sc,
                        std::size_t elem_size) {
  if (!sc.spill_private) return;
  constexpr std::uint64_t kSpillBase = 1ULL << 40;
  const std::uint64_t slot =
      kSpillBase +
      (static_cast<std::uint64_t>(ctx.blockIdx.x) * ctx.blockDim.count() +
       ctx.linear_tid()) *
          elem_size;
  ctx.touch_global(slot, static_cast<std::uint32_t>(elem_size));  // load
  ctx.touch_global(slot, static_cast<std::uint32_t>(elem_size));  // store
}

}  // namespace detail

/// Extents of the canonical triple nest: k (gang loop), j (worker loop),
/// i (vector loop). Unused levels have extent 1.
struct Nest3 {
  std::int64_t nk = 1;
  std::int64_t nj = 1;
  std::int64_t ni = 1;
};

/// Loop-body callables. Index arguments that a given strategy does not
/// iterate are passed as -1.
template <typename T>
struct Bindings {
  /// Contribution of one iteration at the reduction's accumulation site.
  std::function<T(gpusim::ThreadCtx&, std::int64_t k, std::int64_t j,
                  std::int64_t i)>
      contrib;
  /// Optional non-reduction work at the innermost loop (the "other levels
  /// execute in parallel" part of the paper's test cases).
  std::function<void(gpusim::ThreadCtx&, std::int64_t k, std::int64_t j,
                     std::int64_t i)>
      parallel_work;
  /// Per-instance initial value of the reduction variable (e.g. `i_sum = j`
  /// in Fig. 4a); folded in after the tree per §3.1.1. Null = identity.
  std::function<T(std::int64_t k, std::int64_t j)> instance_init;
  /// Per-instance result consumer, run by one device thread (e.g.
  /// `temp[k][j][0] = i_sum`). Required for per-instance strategies.
  std::function<void(gpusim::ThreadCtx&, std::int64_t k, std::int64_t j,
                     T result)>
      sink;
  /// Incoming value of the reduction variable for whole-nest (scalar)
  /// reductions; folded into the returned scalar.
  T host_init{};
  bool host_init_set = false;
};

template <typename T>
struct ReduceResult {
  std::optional<T> scalar;       ///< set by whole-nest strategies
  gpusim::LaunchStats stats;     ///< accumulated over all kernels
  int kernels = 0;               ///< number of kernel launches used
};

namespace detail {

template <typename T>
T fold_instance_init(const Bindings<T>& b, acc::RuntimeOp<T> op,
                     std::int64_t k, std::int64_t j, T tree_result) {
  if (b.instance_init) return op.apply(b.instance_init(k, j), tree_result);
  return tree_result;
}

template <typename T>
T fold_host_init(const Bindings<T>& b, acc::RuntimeOp<T> op, T fold) {
  if (b.host_init_set) return op.apply(b.host_init, fold);
  return fold;
}

}  // namespace detail

}  // namespace accred::reduce
