// Cascaded reductions: "Reduction can also occur on different variables
// within different levels of parallelism" (§3.2). Figure 4, read as one
// program, chains three variables:
//
//   i_sum (vector)  : per (k, j), over the i loop        [Fig. 4a]
//   j_sum (worker)  : per k, over the vector results     [Fig. 4b]
//   sum   (gang)    : over the worker results            [Fig. 4c]
//
// Each level may carry its own operator and its own per-instance initial
// value (i_sum = j and j_sum = k in the paper's listings). One kernel runs
// the vector trees and worker trees in-block; the gang level finishes with
// the usual partials buffer + finalize kernel.
#pragma once

#include "reduce/finalize.hpp"
#include "reduce/strategy.hpp"

namespace accred::reduce {

template <typename T>
struct CascadeBindings {
  /// Innermost contribution (the paper's `input[k][j][i]`).
  std::function<T(gpusim::ThreadCtx&, std::int64_t k, std::int64_t j,
                  std::int64_t i)>
      contrib;
  /// Initial value of the vector-level variable per (k, j) instance
  /// (`i_sum = j` in Fig. 4a). Null = identity of the vector operator.
  std::function<T(std::int64_t k, std::int64_t j)> vector_init;
  /// Initial value of the worker-level variable per k instance
  /// (`j_sum = k` in Fig. 4b). Null = identity of the worker operator.
  std::function<T(std::int64_t k)> worker_init;
  /// Optional observer of each (k, j) vector result (`temp[k][j][0] =
  /// i_sum`), run by one device thread.
  std::function<void(gpusim::ThreadCtx&, std::int64_t k, std::int64_t j, T)>
      vector_sink;
  /// Optional observer of each k worker result (`temp[k][0][0] = j_sum`).
  std::function<void(gpusim::ThreadCtx&, std::int64_t k, T)> worker_sink;
  /// Incoming value of the gang-level scalar (`sum = 0`).
  T gang_init{};
  bool gang_init_set = false;
};

struct CascadeOps {
  acc::ReductionOp vector_op = acc::ReductionOp::kSum;
  acc::ReductionOp worker_op = acc::ReductionOp::kSum;
  acc::ReductionOp gang_op = acc::ReductionOp::kSum;
};

/// Run the three-level cascade over an (nk x nj x ni) nest; returns the
/// gang-level scalar.
template <typename T>
ReduceResult<T> run_cascaded_reduction(gpusim::Device& dev, Nest3 n,
                                       const acc::LaunchConfig& cfg,
                                       const CascadeOps& ops,
                                       const CascadeBindings<T>& b,
                                       const StrategyConfig& sc = {}) {
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;

  gpusim::SharedLayout layout;
  auto sbuf = layout.add<T>(static_cast<std::size_t>(w) * v);  // vector trees
  auto wbuf = layout.add<T>(w);                                // worker tree

  auto partial = dev.alloc<T>(g);
  auto pview = partial.view();

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> vop{ops.vector_op};
    const acc::RuntimeOp<T> wop{ops.worker_op};
    const acc::RuntimeOp<T> gop{ops.gang_op};
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t bid = ctx.blockIdx.x;

    T gang_priv = gop.identity();
    device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
      // Worker level: each worker folds its j window of vector results.
      T worker_priv = wop.identity();
      // Padded: the body stages + runs a barrier-synchronized vector tree.
      assigned_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j, bool ja) {
        T vector_priv = vop.identity();
        if (ja) {
          auto prof = ctx.prof_scope("private_partial");
          device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
            ctx.alu(2);
            vector_priv = vop.apply(vector_priv, b.contrib(ctx, k, j, i));
            ctx.alu(1);
          });
        }
        {
          auto prof = ctx.prof_scope("staging");
          ctx.sts(sbuf, y * v + x, vector_priv);
        }
        block_tree_reduce(ctx, sbuf, y * v, v, 1, x, vop, sc.tree);
        auto prof = ctx.prof_scope("finalize");
        if (x == 0 && ja) {
          T vec_result = ctx.lds(sbuf, y * v);
          if (b.vector_init) {
            vec_result = vop.apply(b.vector_init(k, j), vec_result);
          }
          if (b.vector_sink) b.vector_sink(ctx, k, j, vec_result);
          worker_priv = wop.apply(worker_priv, vec_result);
          ctx.alu(1);
        }
        ctx.syncthreads();
      });
      // Worker tree per k over the lane-0 accumulators (Fig. 8c shape).
      {
        auto prof = ctx.prof_scope("staging");
        if (x == 0) ctx.sts(wbuf, y, worker_priv);
      }
      block_tree_reduce(ctx, wbuf, 0, w, 1, y == 0 ? x : ~std::uint32_t{0},
                        wop, sc.tree);
      auto prof = ctx.prof_scope("finalize");
      if (x == 0 && y == 0) {
        T k_result = ctx.lds(wbuf, 0);
        if (b.worker_init) k_result = wop.apply(b.worker_init(k), k_result);
        if (b.worker_sink) b.worker_sink(ctx, k, k_result);
        gang_priv = gop.apply(gang_priv, k_result);
        ctx.alu(1);
      }
      ctx.syncthreads();
    });
    auto prof = ctx.prof_scope("staging");
    if (x == 0 && y == 0) ctx.st(pview, bid, gang_priv);
  };

  ReduceResult<T> res;
  res.stats = gpusim::launch(dev, {g}, {v, w}, layout.bytes(), kernel,
                             labeled_sim(sc.sim, "cascade"));
  res.kernels = 1;
  const T fold = finalize_to_host(dev, pview, g, ops.gang_op, sc, res.stats,
                                  res.kernels);
  const acc::RuntimeOp<T> gop{ops.gang_op};
  res.scalar = b.gang_init_set ? gop.apply(b.gang_init, fold) : fold;
  return res;
}

}  // namespace accred::reduce
