// Argmin/argmax reductions (RAJA's ReduceMinLoc / ReduceMaxLoc): find the
// extreme value AND the flat iteration index it occurred at. A thin layer
// over the payload-reduction pipeline with acc::ValueIndex elements and
// the ArgMinOp/ArgMaxOp algebra of acc/ops.hpp — ties break toward the
// smallest index and NaN wins unconditionally, so every strategy and fold
// order returns the same (value, index) pair bit for bit.
#pragma once

#include "reduce/payload_reduce.hpp"

namespace accred::reduce {

/// Reduce `extent` iterations to the (value, index) pair of the smallest
/// (`want_min`) or largest value. `value_fn(ctx, idx)` returns iteration
/// idx's candidate value.
template <typename T, typename ValueFn>
PayloadReduceResult<acc::ValueIndex<T>> run_arg_reduction(
    gpusim::Device& dev, std::int64_t extent, const acc::LaunchConfig& cfg,
    bool want_min, ValueFn&& value_fn, const StrategyConfig& sc = {}) {
  auto body = [&](gpusim::ThreadCtx& ctx, std::int64_t idx) {
    return acc::ValueIndex<T>{value_fn(ctx, idx), idx};
  };
  if (want_min) {
    return run_payload_reduction<acc::ValueIndex<T>>(
        dev, extent, cfg, acc::ArgMinOp<T>{}, body, sc);
  }
  return run_payload_reduction<acc::ValueIndex<T>>(
      dev, extent, cfg, acc::ArgMaxOp<T>{}, body, sc);
}

}  // namespace accred::reduce
