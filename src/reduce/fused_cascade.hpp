// Planner-emitted cascade fusion (§3.2, Fig. 4 generalized): run a whole
// producer→consumer reduction chain in ONE kernel instead of one launch
// per stage. reduce/cascade.hpp is the hand-written three-level special
// case this module generalizes; here the stage list comes from the
// planner (acc::ExecutionPlan::chain, built from analysis-detected
// chains), each stage carries its own operator, and every in-block stage
// shares a single shared-memory slab — the vector trees use the full
// w x v staging area, and the worker tree reuses its (dead, post-barrier)
// first w slots rather than allocating a second buffer.
//
// Supported chains (innermost first): [vector, worker],
// [worker, gang], [vector, worker, gang]. When the outermost stage is a
// gang reduction the kernel ends with the usual per-gang partials buffer
// and single-block finalize (Fig. 5c); otherwise the outermost stage's
// per-instance results leave through its sink and no second kernel runs.
//
// Fold orders deliberately mirror the unfused strategy kernels
// (vector_reduce / worker_reduce / gang_reduce) exactly — same window
// assignment, same staging participants, same tree shapes — so a fused
// chain's per-level results are bit-identical to the N-launch sequence
// (pinned by tests/reduce/test_fused_cascade.cpp).
#pragma once

#include <vector>

#include "acc/planner.hpp"
#include "reduce/finalize.hpp"
#include "reduce/strategy.hpp"

namespace accred::reduce {

/// Loop-body callables for a fused chain. Stage-specific members are
/// ignored when the chain lacks that stage.
template <typename T>
struct FusedChainBindings {
  /// Innermost contribution: (k, j, i) with a vector stage, else (k, j, -1).
  std::function<T(gpusim::ThreadCtx&, std::int64_t k, std::int64_t j,
                  std::int64_t i)>
      contrib;
  /// Optional non-reduction work on the innermost iterations (the Fig. 4
  /// parallel copy); only run when the chain has a vector stage.
  std::function<void(gpusim::ThreadCtx&, std::int64_t k, std::int64_t j,
                     std::int64_t i)>
      parallel_work;
  /// Per-instance initial values (§3.1.1's rule, per stage): `i_sum = j`
  /// and `j_sum = k` in Fig. 4. Null = the stage operator's identity.
  std::function<T(std::int64_t k, std::int64_t j)> vector_init;
  std::function<T(std::int64_t k)> worker_init;
  /// Optional per-instance result observers, run by one device thread.
  std::function<void(gpusim::ThreadCtx&, std::int64_t k, std::int64_t j, T)>
      vector_sink;
  std::function<void(gpusim::ThreadCtx&, std::int64_t k, T)> worker_sink;
  /// Incoming value of the outermost stage's variable; folded into the
  /// returned scalar (gang-terminated chains only).
  T host_init{};
  bool host_init_set = false;
};

/// Run a planner-emitted fused chain. `chain` is innermost-first (the
/// ExecutionPlan::chain layout); returns the gang scalar when the chain
/// ends at the gang level, otherwise results leave through the sinks.
template <typename T>
ReduceResult<T> run_fused_chain(gpusim::Device& dev,
                                const std::vector<acc::FusedStage>& chain,
                                Nest3 n, const acc::LaunchConfig& cfg,
                                const FusedChainBindings<T>& b,
                                const StrategyConfig& sc = {}) {
  if (chain.size() < 2 || chain.size() > 3) {
    throw std::invalid_argument(
        "run_fused_chain: chain must be [vector,worker], [worker,gang] or "
        "[vector,worker,gang], innermost first");
  }
  const bool sv = chain.front().level == acc::Par::kVector;
  const bool sg = chain.back().level == acc::Par::kGang;
  // A 2-stage chain is either vector->worker (in-block only) or
  // worker->gang; 3 stages must span all three levels.
  const bool shape_ok =
      chain.size() == 3
          ? sv && chain[1].level == acc::Par::kWorker && sg
          : (sv && chain.back().level == acc::Par::kWorker) ||
                (chain.front().level == acc::Par::kWorker && sg);
  if (!shape_ok) {
    throw std::invalid_argument(
        "run_fused_chain: chain must be [vector,worker], [worker,gang] or "
        "[vector,worker,gang], innermost first");
  }
  const acc::ReductionOp vector_op = sv ? chain.front().op
                                        : acc::ReductionOp::kSum;
  const acc::ReductionOp worker_op = sv ? chain[1].op : chain.front().op;
  const acc::ReductionOp gang_op = sg ? chain.back().op
                                      : acc::ReductionOp::kSum;

  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;

  // One slab for every in-block stage (w <= w*v always).
  gpusim::SharedLayout layout;
  auto sbuf = layout.add<T>(sv ? static_cast<std::size_t>(w) * v : w);

  gpusim::DeviceBuffer<T> partial;
  gpusim::GlobalView<T> pview{};
  if (sg) {
    partial = dev.alloc<T>(g, "fused_partials");
    pview = partial.view();
  }

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> vop{vector_op};
    const acc::RuntimeOp<T> wop{worker_op};
    const acc::RuntimeOp<T> gop{gang_op};
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t bid = ctx.blockIdx.x;

    T gang_priv = gop.identity();
    device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
      T worker_priv = wop.identity();
      // Padded: with a vector stage the body stages + runs a
      // barrier-synchronized tree per (k, j) instance.
      assigned_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j, bool ja) {
        if (sv) {
          T vector_priv = vop.identity();
          if (ja) {
            auto prof = ctx.prof_scope("private_partial");
            device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
              ctx.alu(2);
              if (b.parallel_work) b.parallel_work(ctx, k, j, i);
              vector_priv = vop.apply(vector_priv, b.contrib(ctx, k, j, i));
              ctx.alu(1);
              detail::touch_spill(ctx, sc, sizeof(T));
            });
          }
          {
            auto prof = ctx.prof_scope("staging");
            ctx.sts(sbuf, y * v + x, vector_priv);
          }
          block_tree_reduce(ctx, sbuf, y * v, v, 1, x, vop, sc.tree);
          auto prof = ctx.prof_scope("finalize");
          if (x == 0 && ja) {
            T vec_result = ctx.lds(sbuf, y * v);
            if (b.vector_init) {
              vec_result = vop.apply(b.vector_init(k, j), vec_result);
            }
            if (b.vector_sink) b.vector_sink(ctx, k, j, vec_result);
            worker_priv = wop.apply(worker_priv, vec_result);
            ctx.alu(1);
          }
          ctx.syncthreads();  // the slab is reused by the next instance
        } else if (x == 0 && ja) {
          auto prof = ctx.prof_scope("private_partial");
          worker_priv = wop.apply(worker_priv, b.contrib(ctx, k, j, -1));
          ctx.alu(3);
          detail::touch_spill(ctx, sc, sizeof(T));
        }
      });
      // Worker tree per k over the lane-0 accumulators (Fig. 8c shape),
      // reusing the slab's first w slots.
      {
        auto prof = ctx.prof_scope("staging");
        if (x == 0) ctx.sts(sbuf, y, worker_priv);
      }
      block_tree_reduce(ctx, sbuf, 0, w, 1, y == 0 ? x : ~std::uint32_t{0},
                        wop, sc.tree);
      auto prof = ctx.prof_scope("finalize");
      if (x == 0 && y == 0) {
        T k_result = ctx.lds(sbuf, 0);
        if (b.worker_init) k_result = wop.apply(b.worker_init(k), k_result);
        if (b.worker_sink) b.worker_sink(ctx, k, k_result);
        if (sg) {
          gang_priv = gop.apply(gang_priv, k_result);
          ctx.alu(1);
        }
      }
      ctx.syncthreads();  // the slab is reused by the next k instance
    });
    if (sg) {
      auto prof = ctx.prof_scope("staging");
      if (x == 0 && y == 0) ctx.st(pview, bid, gang_priv);
    }
  };

  ReduceResult<T> res;
  res.stats = gpusim::launch(dev, {g}, {v, w}, layout.bytes(), kernel,
                             labeled_sim(sc.sim, "fused_cascade"));
  res.kernels = 1;
  if (sg) {
    const T fold = finalize_to_host(dev, pview, g, gang_op, sc, res.stats,
                                    res.kernels);
    const acc::RuntimeOp<T> gop{gang_op};
    res.scalar = b.host_init_set ? gop.apply(b.host_init, fold) : fold;
  }
  return res;
}

}  // namespace accred::reduce
