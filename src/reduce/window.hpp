// Iteration-assignment helpers implementing the paper's Fig. 3 mapping.
//
// OpenUH assigns loop iterations to threads with a *window-sliding*
// (grid-stride) scheme: thread `id` handles id, id+n, id+2n, ... so that a
// warp's lanes touch adjacent elements each step (coalescing-friendly,
// §3.1.3). The *blocking* scheme (contiguous chunk per thread) is provided
// as the baseline the paper argues against.
//
// Two loop shapes are provided: device_loop has true while-loop semantics
// (only in-range iterations execute — what Fig. 3 compiles to), while
// assigned_loop is padded so every thread runs the same iteration count,
// which barrier-bearing loop bodies require. Both remove any power-of-2
// restriction on the iteration space (§3.3).
#pragma once

#include <algorithm>
#include <cstdint>

namespace accred::reduce {

enum class Assignment : std::uint8_t {
  kWindow,    ///< OpenUH: stride = thread count (coalesced)
  kBlocking,  ///< baseline: contiguous chunk per thread
};

[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a,
                                              std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// True while-loop semantics of Fig. 3: `body(index)` runs only for
/// in-range iterations of this thread. Use for loop levels whose body
/// contains no block barrier (otherwise see assigned_loop). A thread whose
/// window is empty executes nothing, exactly like `while (i < n)`.
template <typename F>
void device_loop(Assignment mode, std::int64_t extent, std::int64_t id,
                 std::int64_t nthreads, F&& body) {
  if (mode == Assignment::kWindow) {
    for (std::int64_t idx = id; idx < extent; idx += nthreads) body(idx);
  } else {
    const std::int64_t chunk = ceil_div(extent, nthreads);
    const std::int64_t end = std::min(extent, (id + 1) * chunk);
    for (std::int64_t idx = id * chunk; idx < end; ++idx) body(idx);
  }
}

/// Padded variant: run `body(index, active)` exactly
/// ceil(extent / nthreads) times on EVERY thread, flagging out-of-range
/// iterations. Required when the body contains syncthreads (e.g. a staged
/// tree per instance): all threads of the block must reach every barrier
/// the same number of times even when the extent does not divide evenly.
template <typename F>
void assigned_loop(Assignment mode, std::int64_t extent, std::int64_t id,
                   std::int64_t nthreads, F&& body) {
  const std::int64_t iters = ceil_div(extent, nthreads);
  if (mode == Assignment::kWindow) {
    for (std::int64_t it = 0; it < iters; ++it) {
      const std::int64_t idx = id + it * nthreads;
      body(idx, idx < extent);
    }
  } else {
    const std::int64_t base = id * iters;
    for (std::int64_t it = 0; it < iters; ++it) {
      const std::int64_t idx = base + it;
      body(idx, idx < extent);
    }
  }
}

}  // namespace accred::reduce
