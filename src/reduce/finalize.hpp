// The second kernel of Fig. 5(c): a single thread block reduces the
// per-gang (or per-thread, for RMP) partials buffer down to one value.
// This is "the same reduction kernel as the one in vector addition" the
// paper mentions — a grid-stride partial fold, staging, and an in-block
// tree. Shared by the gang and RMP strategies.
#pragma once

#include "reduce/strategy.hpp"

namespace accred::reduce {

/// Launch the one-block finalization kernel over `in[0..count)`, writing
/// the fold to `out[0]`. Returns the launch stats.
template <typename T>
gpusim::LaunchStats launch_finalize(gpusim::Device& dev,
                                    gpusim::GlobalView<T> in,
                                    std::size_t count,
                                    gpusim::GlobalView<T> out,
                                    acc::ReductionOp op,
                                    const StrategyConfig& sc,
                                    gpusim::GlobalView<T> gstage = {}) {
  const std::uint32_t nthreads = sc.finalize_threads;
  gpusim::SharedLayout layout;
  gpusim::SharedView<T> sbuf;
  if (sc.staging == Staging::kShared) sbuf = layout.add<T>(nthreads);

  auto kernel = [=](gpusim::ThreadCtx& ctx) {
    // The whole second kernel is finalization work; its internal tree
    // nests into the "tree" stage.
    auto prof = ctx.prof_scope("finalize");
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t t = ctx.threadIdx.x;
    T priv = rop.identity();
    device_loop(sc.assignment, static_cast<std::int64_t>(count), t, nthreads,
                [&](std::int64_t idx) {
                  ctx.alu(2);
                  priv = rop.apply(priv,
                                   ctx.ld(in, static_cast<std::size_t>(idx)));
                });
    if (sc.staging == Staging::kShared) {
      ctx.sts(sbuf, t, priv);
      block_tree_reduce(ctx, sbuf, 0, nthreads, 1, t, rop, sc.tree);
      if (t == 0) ctx.st(out, 0, ctx.lds(sbuf, 0));
    } else {
      ctx.st(gstage, t, priv);
      block_tree_reduce_global(ctx, gstage, 0, nthreads, t, rop, sc.tree);
      if (t == 0) ctx.st(out, 0, ctx.ld(gstage, 0));
    }
  };
  return gpusim::launch(dev, {1}, {nthreads}, layout.bytes(), kernel,
                        labeled_sim(sc.sim, "finalize_1block"));
}

/// Extension ablation: a two-pass finalize. The paper's Fig. 5c uses one
/// block for the second kernel, which serializes on a single SM once the
/// partials buffer is large (the RMP strategies produce gangs x workers x
/// vector entries). The classic alternative (Harris's multi-pass scheme)
/// first lets a full grid fold the buffer down to one partial per block,
/// then runs the single-block kernel on those. Costs one extra launch;
/// wins when count >> finalize_threads.
template <typename T>
gpusim::LaunchStats launch_finalize_two_pass(
    gpusim::Device& dev, gpusim::GlobalView<T> in, std::size_t count,
    gpusim::GlobalView<T> out, acc::ReductionOp op, const StrategyConfig& sc,
    std::uint32_t first_pass_blocks = 0) {
  const std::uint32_t nthreads = sc.finalize_threads;
  if (first_pass_blocks == 0) {
    // Enough blocks that each thread folds a handful of elements.
    const std::size_t want =
        (count + nthreads * 8 - 1) / (std::size_t{nthreads} * 8);
    first_pass_blocks = static_cast<std::uint32_t>(
        std::clamp<std::size_t>(want, 1, 192));
  }
  auto mid = dev.alloc<T>(first_pass_blocks);
  auto mview = mid.view();

  gpusim::SharedLayout layout;
  auto sbuf = layout.add<T>(nthreads);
  const std::uint32_t blocks = first_pass_blocks;
  auto pass1 = [=](gpusim::ThreadCtx& ctx) {
    auto prof = ctx.prof_scope("finalize");
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t t = ctx.threadIdx.x;
    const std::size_t gtid =
        static_cast<std::size_t>(ctx.blockIdx.x) * nthreads + t;
    T priv = rop.identity();
    device_loop(sc.assignment, static_cast<std::int64_t>(count),
                static_cast<std::int64_t>(gtid),
                static_cast<std::int64_t>(blocks) * nthreads,
                [&](std::int64_t idx) {
                  ctx.alu(2);
                  priv = rop.apply(priv,
                                   ctx.ld(in, static_cast<std::size_t>(idx)));
                });
    ctx.sts(sbuf, t, priv);
    block_tree_reduce(ctx, sbuf, 0, nthreads, 1, t, rop, sc.tree);
    if (t == 0) ctx.st(mview, ctx.blockIdx.x, ctx.lds(sbuf, 0));
  };
  gpusim::LaunchStats stats =
      gpusim::launch(dev, {blocks}, {nthreads}, layout.bytes(), pass1,
                     labeled_sim(sc.sim, "finalize_pass1"));
  stats += launch_finalize(dev, mview, first_pass_blocks, out, op, sc);
  return stats;
}

/// Convenience wrapper: allocates the output (and the global staging buffer
/// if needed), runs the finalize kernel, and reads the scalar back.
template <typename T>
T finalize_to_host(gpusim::Device& dev, gpusim::GlobalView<T> in,
                   std::size_t count, acc::ReductionOp op,
                   const StrategyConfig& sc, gpusim::LaunchStats& stats,
                   int& kernels) {
  auto out = dev.alloc<T>(1);
  gpusim::DeviceBuffer<T> gstage;
  gpusim::GlobalView<T> gstage_view{};
  if (sc.staging == Staging::kGlobal) {
    gstage = dev.alloc<T>(sc.finalize_threads);
    gstage_view = gstage.view();
  }
  stats += launch_finalize(dev, in, count, out.view(), op, sc, gstage_view);
  kernels += 1;
  T host_out{};
  out.copy_to_host(std::span<T>(&host_out, 1));
  return host_out;
}

}  // namespace accred::reduce
