// Payload reductions: the scalar machinery of §3 lifted to small
// trivially-copyable structs (value+index pairs, moment pairs) folded with
// any associative+commutative op exposing the RuntimeOp shape —
// `identity()` / `.apply(a, b)`. The staging/tree/finalize pipeline is
// byte-oriented underneath (ThreadCtx ld/st/lds/sts memcpy elements), so
// pairs flow through shared memory, the racecheck shadow, and the fault
// injector exactly like scalars do.
//
// Geometry is the flattened same-loop shape (§3.2.2, Fig. 10): one flat
// iteration space over all gang*worker*vector threads, per-thread private
// fold, one in-block tree per block, per-block partials, single-block
// finalize. That matches how RAJA-style loc-reductions and custom-struct
// reductions present to the programmer: one loop, one exotic variable.
#pragma once

#include <type_traits>
#include <vector>

#include "reduce/finalize.hpp"
#include "reduce/strategy.hpp"

namespace accred::reduce {

template <typename P>
struct PayloadReduceResult {
  P value{};  ///< fully consolidated payload
  gpusim::LaunchStats stats;
  int kernels = 0;
};

/// Reduce `extent` payload contributions over a flat gang*worker*vector
/// iteration space. `body(ctx, idx)` returns iteration idx's payload P;
/// `op` needs `identity()` and `apply(P, P)`. P must be trivially
/// copyable — it travels through shared and global staging by bytes.
template <typename P, typename Op, typename Body>
PayloadReduceResult<P> run_payload_reduction(gpusim::Device& dev,
                                             std::int64_t extent,
                                             const acc::LaunchConfig& cfg,
                                             Op op, Body&& body,
                                             const StrategyConfig& sc = {}) {
  static_assert(std::is_trivially_copyable_v<P>,
                "payload reductions stage their element through memory");
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;
  const std::uint32_t nthreads = w * v;
  const std::size_t total_threads = static_cast<std::size_t>(g) * nthreads;

  auto partial = dev.alloc<P>(g, "payload_partials");
  auto pview = partial.view();

  gpusim::SharedLayout layout;
  auto sbuf = layout.add<P>(nthreads);

  auto kernel = [&, pview](gpusim::ThreadCtx& ctx) {
    const std::uint32_t tid = ctx.linear_tid();
    const std::uint32_t bid = ctx.blockIdx.x;
    const std::size_t gtid = static_cast<std::size_t>(bid) * nthreads + tid;

    P priv = op.identity();
    device_loop(sc.assignment, extent, static_cast<std::int64_t>(gtid),
                static_cast<std::int64_t>(total_threads),
                [&](std::int64_t idx) {
                  auto prof = ctx.prof_scope("private_partial");
                  ctx.alu(2);
                  priv = op.apply(priv, body(ctx, idx));
                  ctx.alu(1);
                  detail::touch_spill(ctx, sc, sizeof(P));
                });
    {
      auto prof = ctx.prof_scope("staging");
      ctx.sts(sbuf, tid, priv);
    }
    block_tree_reduce(ctx, sbuf, 0, nthreads, 1, tid, op, sc.tree);
    auto prof = ctx.prof_scope("staging");
    if (tid == 0) ctx.st(pview, bid, ctx.lds(sbuf, 0));
  };

  PayloadReduceResult<P> res;
  res.stats = gpusim::launch(dev, {g}, {v, w}, layout.bytes(), kernel,
                             labeled_sim(sc.sim, "payload_partial"));
  res.kernels = 1;

  // Single-block finalize over the per-gang partials (Fig. 5c shape,
  // payload element).
  auto out = dev.alloc<P>(1);
  auto oview = out.view();
  const std::uint32_t ft = sc.finalize_threads;
  gpusim::SharedLayout flayout;
  auto fbuf = flayout.add<P>(ft);
  auto fin = [&, pview, oview](gpusim::ThreadCtx& ctx) {
    const std::uint32_t t = ctx.threadIdx.x;
    P priv = op.identity();
    device_loop(sc.assignment, g, t, ft, [&](std::int64_t bk) {
      auto prof = ctx.prof_scope("private_partial");
      ctx.alu(2);
      priv = op.apply(priv, ctx.ld(pview, static_cast<std::size_t>(bk)));
    });
    {
      auto prof = ctx.prof_scope("staging");
      ctx.sts(fbuf, t, priv);
    }
    block_tree_reduce(ctx, fbuf, 0, ft, 1, t, op, sc.tree);
    auto prof = ctx.prof_scope("finalize");
    if (t == 0) ctx.st(oview, 0, ctx.lds(fbuf, 0));
  };
  res.stats += gpusim::launch(dev, {1}, {ft}, flayout.bytes(), fin,
                              labeled_sim(sc.sim, "payload_finalize"));
  res.kernels += 1;

  std::vector<P> host(1);
  out.copy_to_host(host);
  res.value = host[0];
  return res;
}

}  // namespace accred::reduce
