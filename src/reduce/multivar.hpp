// Multiple reduction variables of mixed data types in one clause (§3.3).
//
// When one reduction clause carries several variables of different types
// (e.g. an int and a double), the staging slab can be laid out two ways:
//   * kPerVarSections — one section per variable ("create a large shared
//     memory space and reserve different sections for different data
//     types"), which "may face the shared memory size issue";
//   * kSharedMaxSlab — OpenUH: one slab sized for the largest type, reused
//     sequentially by every variable (the int tree and the double tree
//     time-share the same bytes).
//
// Implemented for the worker&vector span (shared staging is exactly where
// the layout question matters): every (gang) instance produces one result
// per variable.
#pragma once

#include <array>
#include <variant>
#include <vector>

#include "reduce/strategy.hpp"

namespace accred::reduce {

enum class SlabPolicy : std::uint8_t {
  kSharedMaxSlab,    ///< OpenUH §3.3: one slab, max element size
  kPerVarSections,   ///< baseline: a section per variable
};

using ScalarValue =
    std::variant<std::int32_t, std::uint32_t, std::int64_t, float, double>;

struct MultiVarSpec {
  acc::ReductionOp op = acc::ReductionOp::kSum;
  acc::DataType type = acc::DataType::kInt32;
  std::string name;
  /// Contribution of iteration (k, j, i), as the variable's own type.
  std::function<ScalarValue(gpusim::ThreadCtx&, std::int64_t k,
                            std::int64_t j, std::int64_t i)>
      contrib;
};

struct MultiReduceResult {
  /// values[var][k]: per-gang-instance result of each variable.
  std::vector<std::vector<ScalarValue>> values;
  gpusim::LaunchStats stats;
  std::size_t shared_bytes = 0;  ///< staging slab actually requested
};

/// Shared-memory bytes the staging of `vars` needs under `policy` for a
/// block of `threads` threads (planning/validation helper).
[[nodiscard]] inline std::size_t multi_staging_bytes(
    std::span<const MultiVarSpec> vars, std::uint32_t threads,
    SlabPolicy policy) {
  std::size_t bytes = 0;
  std::size_t max_elem = 0;
  for (const MultiVarSpec& v : vars) {
    const std::size_t e = size_of(v.type);
    max_elem = std::max(max_elem, e);
    bytes += e * threads;
  }
  return policy == SlabPolicy::kSharedMaxSlab ? max_elem * threads : bytes;
}

template <typename T>
T scalar_as(const ScalarValue& v) {
  return std::get<T>(v);
}

/// Run a worker&vector-span reduction of every variable in `vars` over an
/// (nk x nj x ni) nest. Throws (via launch validation) if the staging
/// layout exceeds the device's shared-memory limit — the §3.3 failure mode
/// kSharedMaxSlab exists to avoid.
inline MultiReduceResult run_multi_worker_vector_reduction(
    gpusim::Device& dev, Nest3 n, const acc::LaunchConfig& cfg,
    std::span<const MultiVarSpec> vars, SlabPolicy policy,
    const StrategyConfig& sc = {}) {
  constexpr std::size_t kMaxVars = 8;
  if (vars.empty() || vars.size() > kMaxVars) {
    throw std::invalid_argument("multi-var reduction supports 1..8 variables");
  }
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;
  const std::uint32_t nthreads = w * v;

  // Staging layout per policy.
  gpusim::SharedLayout layout;
  std::array<std::uint32_t, kMaxVars> var_offset{};
  if (policy == SlabPolicy::kSharedMaxSlab) {
    std::size_t max_elem = 0;
    for (const MultiVarSpec& mv : vars) {
      max_elem = std::max(max_elem, size_of(mv.type));
    }
    const std::uint32_t off = layout.add_raw(max_elem * nthreads, max_elem);
    var_offset.fill(off);
  } else {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      var_offset[i] =
          layout.add_raw(size_of(vars[i].type) * nthreads, size_of(vars[i].type));
    }
  }

  // One output slot per (var, gang instance).
  auto out = dev.alloc<double>(vars.size() * static_cast<std::size_t>(n.nk));
  auto raw_out = dev.alloc<std::int64_t>(vars.size() *
                                         static_cast<std::size_t>(n.nk));
  auto ov = out.view();
  auto rov = raw_out.view();

  auto kernel = [&, ov, rov](gpusim::ThreadCtx& ctx) {
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t tid = ctx.linear_tid();
    const std::uint32_t bid = ctx.blockIdx.x;

    device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
      // One pass over the data accumulates every variable's private.
      std::array<ScalarValue, kMaxVars> priv;
      for (std::size_t m = 0; m < vars.size(); ++m) {
        dispatch_type(vars[m].type, [&](auto tag) {
          using T = typename decltype(tag)::type;
          priv[m] = acc::RuntimeOp<T>{vars[m].op}.identity();
        });
      }
      device_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j) {
        device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
          ctx.alu(2);
          for (std::size_t m = 0; m < vars.size(); ++m) {
            const ScalarValue c = vars[m].contrib(ctx, k, j, i);
            dispatch_type(vars[m].type, [&](auto tag) {
              using T = typename decltype(tag)::type;
              priv[m] = acc::RuntimeOp<T>{vars[m].op}.apply(
                  std::get<T>(priv[m]), std::get<T>(c));
            });
            ctx.alu(1);
          }
        });
      });
      // Sequential staging + tree per variable; under the max-slab policy
      // every variable reuses the same bytes.
      for (std::size_t m = 0; m < vars.size(); ++m) {
        dispatch_type(vars[m].type, [&](auto tag) {
          using T = typename decltype(tag)::type;
          const auto sbuf =
              gpusim::SharedLayout::view_at<T>(var_offset[m], nthreads);
          ctx.sts(sbuf, tid, std::get<T>(priv[m]));
          block_tree_reduce(ctx, sbuf, 0, nthreads, 1, tid,
                            acc::RuntimeOp<T>{vars[m].op}, sc.tree);
          if (tid == 0) {
            const T r = ctx.lds(sbuf, 0);
            const std::size_t slot =
                m * static_cast<std::size_t>(n.nk) +
                static_cast<std::size_t>(k);
            if constexpr (std::floating_point<T>) {
              ctx.st(ov, slot, static_cast<double>(r));
            } else {
              ctx.st(rov, slot, static_cast<std::int64_t>(r));
            }
          }
        });
        ctx.syncthreads();  // slab is reused by the next variable
      }
    });
  };

  MultiReduceResult res;
  res.shared_bytes = layout.bytes();
  res.stats = gpusim::launch(dev, {g}, {v, w}, layout.bytes(), kernel,
                             labeled_sim(sc.sim, "multivar_reduce"));

  res.values.resize(vars.size());
  for (std::size_t m = 0; m < vars.size(); ++m) {
    res.values[m].resize(static_cast<std::size_t>(n.nk));
    for (std::int64_t k = 0; k < n.nk; ++k) {
      const std::size_t slot =
          m * static_cast<std::size_t>(n.nk) + static_cast<std::size_t>(k);
      dispatch_type(vars[m].type, [&](auto tag) {
        using T = typename decltype(tag)::type;
        if constexpr (std::floating_point<T>) {
          res.values[m][static_cast<std::size_t>(k)] =
              static_cast<T>(out.host_span()[slot]);
        } else {
          res.values[m][static_cast<std::size_t>(k)] =
              static_cast<T>(raw_out.host_span()[slot]);
        }
      });
    }
  }
  return res;
}

}  // namespace accred::reduce
