// Segmented reductions: one consolidated value per segment of a
// partitioned iteration space (CSR row sums, per-bin statistics). Builds
// on the array-reduction machinery — each segment is one element of the
// reduction array, so per-thread private copies, the shared-slab
// per-element trees, and the vectorized finalize all apply unchanged.
#pragma once

#include <algorithm>

#include "reduce/array_reduce.hpp"

namespace accred::reduce {

/// Reduce `extent` iterations into `num_segments` buckets.
/// `segment_of(idx)` maps an iteration to its segment (must be
/// < num_segments); `value_of(ctx, idx)` produces its contribution.
template <typename T, typename SegFn, typename ValFn>
ArrayReduceResult<T> run_segmented_reduction(
    gpusim::Device& dev, std::int64_t extent, std::size_t num_segments,
    const acc::LaunchConfig& cfg, acc::ReductionOp op, SegFn&& segment_of,
    ValFn&& value_of, const StrategyConfig& sc = {}) {
  return run_array_reduction<T>(
      dev, extent, num_segments, cfg, op,
      [&](gpusim::ThreadCtx& ctx, std::int64_t idx, ArrayAccum<T>& accum) {
        accum.add(segment_of(idx), value_of(ctx, idx));
      },
      sc);
}

/// CSR-style convenience: segments given by `offsets` boundaries
/// (offsets.size() - 1 segments; segment s covers
/// [offsets[s], offsets[s+1]); the extent is offsets.back()). Iterations
/// are mapped to segments by binary search.
template <typename T, typename ValFn>
ArrayReduceResult<T> run_offset_segmented_reduction(
    gpusim::Device& dev, const std::vector<std::int64_t>& offsets,
    const acc::LaunchConfig& cfg, acc::ReductionOp op, ValFn&& value_of,
    const StrategyConfig& sc = {}) {
  if (offsets.size() < 2 || offsets.front() != 0 ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    throw std::invalid_argument(
        "segment offsets must be sorted and start at 0");
  }
  const auto segment_of = [&offsets](std::int64_t idx) -> std::size_t {
    const auto it =
        std::upper_bound(offsets.begin(), offsets.end(), idx);
    return static_cast<std::size_t>(it - offsets.begin()) - 1;
  };
  return run_segmented_reduction<T>(dev, offsets.back(),
                                    offsets.size() - 1, cfg, op, segment_of,
                                    value_of, sc);
}

}  // namespace accred::reduce
