// Array reductions — the extension §5 credits to Komoda et al. [11]: the
// OpenACC specification of the paper's era only allowed *scalar* reduction
// variables, so histogram-style kernels ("every element of an array needs
// to do reduction") had no direct spelling. This module lifts the scalar
// machinery to arrays:
//   * every thread keeps a private copy of the whole array and folds its
//     loop window into it,
//   * per-element in-block trees consolidate, reusing one shared slab
//     (the §3.3 slab-sharing idea applied across elements),
//   * per-block partial arrays land in global memory and a single-block
//     kernel finalizes every element (the Fig. 5c pattern, vectorized).
#pragma once

#include <vector>

#include "reduce/finalize.hpp"
#include "reduce/strategy.hpp"

namespace accred::reduce {

/// Per-thread private view of the reduction array inside the loop body.
template <typename T>
class ArrayAccum {
public:
  ArrayAccum(gpusim::ThreadCtx& ctx, std::span<T> priv,
             acc::RuntimeOp<T> op) noexcept
      : ctx_(&ctx), priv_(priv), op_(op) {}

  /// Fold `v` into element `e` of this thread's private copy.
  void add(std::size_t e, T v) {
    if (e >= priv_.size()) {
      throw std::out_of_range("array reduction element out of range");
    }
    priv_[e] = op_.apply(priv_[e], v);
    ctx_->alu(2);
  }

  [[nodiscard]] std::size_t size() const noexcept { return priv_.size(); }

private:
  gpusim::ThreadCtx* ctx_;
  std::span<T> priv_;
  acc::RuntimeOp<T> op_;
};

template <typename T>
struct ArrayReduceResult {
  std::vector<T> values;  ///< final array, length = array_len
  gpusim::LaunchStats stats;
  int kernels = 0;
};

/// Reduce an array of `array_len` elements over a same-loop iteration
/// space of `extent`, gang+vector distributed. `body(ctx, idx, accum)` is
/// called once per iteration and may fold into any element.
template <typename T, typename Body>
ArrayReduceResult<T> run_array_reduction(gpusim::Device& dev,
                                         std::int64_t extent,
                                         std::size_t array_len,
                                         const acc::LaunchConfig& cfg,
                                         acc::ReductionOp op, Body&& body,
                                         const StrategyConfig& sc = {}) {
  if (array_len == 0 || array_len > 4096) {
    throw std::invalid_argument(
        "array reduction supports 1..4096 elements (private copies live in "
        "thread-local storage)");
  }
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;
  const std::uint32_t nthreads = w * v;
  const std::size_t total_threads = static_cast<std::size_t>(g) * nthreads;

  // One partial array per block, element-major within the block so the
  // finalize kernel reads each element's partials at stride array_len.
  auto partials = dev.alloc<T>(static_cast<std::size_t>(g) * array_len);
  auto pview = partials.view();

  gpusim::SharedLayout layout;
  auto sbuf = layout.add<T>(nthreads);  // slab reused per element (§3.3)

  auto kernel = [&, pview](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t tid = ctx.linear_tid();
    const std::uint32_t bid = ctx.blockIdx.x;
    const std::size_t gtid = static_cast<std::size_t>(bid) * nthreads + tid;

    std::vector<T> priv(array_len, rop.identity());
    ArrayAccum<T> accum(ctx, priv, rop);
    device_loop(sc.assignment, extent, static_cast<std::int64_t>(gtid),
                static_cast<std::int64_t>(total_threads),
                [&](std::int64_t idx) {
                  ctx.alu(2);
                  body(ctx, idx, accum);
                });

    // Per-element consolidation through the shared slab.
    for (std::size_t e = 0; e < array_len; ++e) {
      ctx.sts(sbuf, tid, priv[e]);
      block_tree_reduce(ctx, sbuf, 0, nthreads, 1, tid, rop, sc.tree);
      if (tid == 0) {
        ctx.st(pview, static_cast<std::size_t>(bid) * array_len + e,
               ctx.lds(sbuf, 0));
      }
      ctx.syncthreads();  // slab reused by the next element
    }
  };

  ArrayReduceResult<T> res;
  res.stats = gpusim::launch(dev, {g}, {v, w}, layout.bytes(), kernel,
                             labeled_sim(sc.sim, "array_partial"));
  res.kernels = 1;

  // Finalize: one block folds each element's per-gang partials.
  auto out = dev.alloc<T>(array_len);
  auto oview = out.view();
  const std::uint32_t ft = sc.finalize_threads;
  gpusim::SharedLayout flayout;
  auto fbuf = flayout.add<T>(ft);
  auto fin = [&, pview, oview](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t t = ctx.threadIdx.x;
    for (std::size_t e = 0; e < array_len; ++e) {
      T priv = rop.identity();
      device_loop(sc.assignment, g, t, ft, [&](std::int64_t b) {
        ctx.alu(2);
        priv = rop.apply(
            priv, ctx.ld(pview, static_cast<std::size_t>(b) * array_len + e));
      });
      ctx.sts(fbuf, t, priv);
      block_tree_reduce(ctx, fbuf, 0, ft, 1, t, rop, sc.tree);
      if (t == 0) ctx.st(oview, e, ctx.lds(fbuf, 0));
      ctx.syncthreads();
    }
  };
  res.stats += gpusim::launch(dev, {1}, {ft}, flayout.bytes(), fin,
                              labeled_sim(sc.sim, "array_finalize"));
  res.kernels += 1;

  res.values.resize(array_len);
  out.copy_to_host(res.values);
  return res;
}

}  // namespace accred::reduce
