// Reduction across Multi-level Parallelism (§3.2). OpenUH's strategy is to
// flatten every thread participating in the reduction into one staging
// buffer — shared when the span stays inside a block (worker & vector),
// global plus a second kernel as soon as gangs participate — and reduce
// that buffer with one tree. §3.2.1's alternative ("perform the reduction
// level by level, in order") is also implemented, as the ablation target
// the paper argues against (it multiplies synchronizations).
#pragma once

#include "reduce/finalize.hpp"
#include "reduce/strategy.hpp"

namespace accred::reduce {

/// Worker&vector span in different loops (Fig. 9): for each gang instance
/// k, all W*V threads fold privates over their (j, i) windows, stage into
/// one W*V-element buffer, and a block-wide tree yields the per-k result.
template <typename T>
ReduceResult<T> run_worker_vector_reduction(gpusim::Device& dev, Nest3 n,
                                            const acc::LaunchConfig& cfg,
                                            acc::ReductionOp op,
                                            const Bindings<T>& b,
                                            const StrategyConfig& sc = {}) {
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;
  const std::uint32_t nthreads = w * v;

  gpusim::SharedLayout layout;
  gpusim::SharedView<T> sbuf;
  gpusim::DeviceBuffer<T> gstage;
  gpusim::GlobalView<T> gview{};
  if (sc.staging == Staging::kShared) {
    sbuf = layout.add<T>(nthreads);
  } else {
    gstage = dev.alloc<T>(static_cast<std::size_t>(g) * nthreads);
    gview = gstage.view();
  }

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t tid = ctx.linear_tid();
    const std::uint32_t bid = ctx.blockIdx.x;

    device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
      T priv = rop.identity();
      {
        auto prof = ctx.prof_scope("private_partial");
        device_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j) {
          device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
            ctx.alu(2);
            if (b.parallel_work) b.parallel_work(ctx, k, j, i);
            priv = rop.apply(priv, b.contrib(ctx, k, j, i));
            ctx.alu(1);
            detail::touch_spill(ctx, sc, sizeof(T));
          });
        });
      }
      if (sc.staging == Staging::kShared) {
        {
          auto prof = ctx.prof_scope("staging");
          ctx.sts(sbuf, tid, priv);
        }
        block_tree_reduce(ctx, sbuf, 0, nthreads, 1, tid, rop, sc.tree);
        auto prof = ctx.prof_scope("finalize");
        if (tid == 0) {
          b.sink(ctx, k, -1,
                 detail::fold_instance_init(b, rop, k, -1, ctx.lds(sbuf, 0)));
        }
      } else {
        const std::size_t base = static_cast<std::size_t>(bid) * nthreads;
        {
          auto prof = ctx.prof_scope("staging");
          ctx.st(gview, base + tid, priv);
        }
        block_tree_reduce_global(ctx, gview, base, nthreads, tid, rop,
                                 sc.tree);
        auto prof = ctx.prof_scope("finalize");
        if (tid == 0) {
          b.sink(ctx, k, -1,
                 detail::fold_instance_init(b, rop, k, -1,
                                            ctx.ld(gview, base)));
        }
      }
      auto prof = ctx.prof_scope("finalize");
      ctx.syncthreads();
    });
  };

  ReduceResult<T> res;
  res.stats = gpusim::launch(dev, {g}, {v, w}, layout.bytes(), kernel,
                             labeled_sim(sc.sim, "rmp_wv_flat"));
  res.kernels = 1;
  return res;
}

/// §3.2.1's ordered alternative for the worker&vector span: per j instance
/// a vector tree, then a worker tree per k — "this approach needs to
/// perform reduction multiple times and therefore more synchronizations".
template <typename T>
ReduceResult<T> run_worker_vector_reduction_ordered(
    gpusim::Device& dev, Nest3 n, const acc::LaunchConfig& cfg,
    acc::ReductionOp op, const Bindings<T>& b, const StrategyConfig& sc = {}) {
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;

  gpusim::SharedLayout layout;
  auto sbuf = layout.add<T>(static_cast<std::size_t>(w) * v);
  auto wbuf = layout.add<T>(w);

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t bid = ctx.blockIdx.x;

    device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
      T wpriv = rop.identity();
      // Padded: the body stages + trees per j instance (barriers inside).
      assigned_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j, bool ja) {
        T vpriv = rop.identity();
        if (ja) {
          auto prof = ctx.prof_scope("private_partial");
          device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
            ctx.alu(2);
            if (b.parallel_work) b.parallel_work(ctx, k, j, i);
            vpriv = rop.apply(vpriv, b.contrib(ctx, k, j, i));
            ctx.alu(1);
            detail::touch_spill(ctx, sc, sizeof(T));
          });
        }
        // Vector tree per row, once per j instance.
        {
          auto prof = ctx.prof_scope("staging");
          ctx.sts(sbuf, y * v + x, vpriv);
        }
        block_tree_reduce(ctx, sbuf, y * v, v, 1, x, rop, sc.tree);
        auto prof = ctx.prof_scope("finalize");
        if (x == 0 && ja) {
          wpriv = rop.apply(wpriv, ctx.lds(sbuf, y * v));
        }
        ctx.syncthreads();
      });
      // Worker tree per k instance over the first lane's accumulators.
      {
        auto prof = ctx.prof_scope("staging");
        if (x == 0) ctx.sts(wbuf, y, wpriv);
      }
      block_tree_reduce(ctx, wbuf, 0, w, 1, y == 0 ? x : ~std::uint32_t{0},
                        rop, sc.tree);
      auto prof = ctx.prof_scope("finalize");
      if (x == 0 && y == 0) {
        b.sink(ctx, k, -1,
               detail::fold_instance_init(b, rop, k, -1, ctx.lds(wbuf, 0)));
      }
      ctx.syncthreads();
    });
  };

  ReduceResult<T> res;
  res.stats = gpusim::launch(dev, {g}, {v, w}, layout.bytes(), kernel,
                             labeled_sim(sc.sim, "rmp_wv_ordered"));
  res.kernels = 1;
  return res;
}

/// Gang&worker span in different loops: participants are (gang, worker)
/// pairs; each worker's lane 0 publishes its private into a global buffer
/// of g*w entries, and the finalize kernel folds it to a scalar.
template <typename T>
ReduceResult<T> run_gang_worker_reduction(gpusim::Device& dev, Nest3 n,
                                          const acc::LaunchConfig& cfg,
                                          acc::ReductionOp op,
                                          const Bindings<T>& b,
                                          const StrategyConfig& sc = {}) {
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;

  auto gbuf = dev.alloc<T>(static_cast<std::size_t>(g) * w);
  auto gview = gbuf.view();

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t bid = ctx.blockIdx.x;

    T priv = rop.identity();
    {
      auto prof = ctx.prof_scope("private_partial");
      device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
        device_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j) {
          if (b.parallel_work) {
            device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
              ctx.alu(2);
              b.parallel_work(ctx, k, j, i);
            });
          }
          priv = rop.apply(priv, b.contrib(ctx, k, j, -1));
          ctx.alu(3);
          detail::touch_spill(ctx, sc, sizeof(T));
        });
      });
    }
    auto prof = ctx.prof_scope("staging");
    if (x == 0) ctx.st(gview, static_cast<std::size_t>(bid) * w + y, priv);
  };

  ReduceResult<T> res;
  res.stats =
      gpusim::launch(dev, {g}, {v, w}, 0, kernel,
                     labeled_sim(sc.sim, "rmp_gw"));
  res.kernels = 1;
  const T fold = finalize_to_host(dev, gview, std::size_t{g} * w, op, sc,
                                  res.stats, res.kernels);
  res.scalar = detail::fold_host_init(b, acc::RuntimeOp<T>{op}, fold);
  return res;
}

/// Gang&worker&vector span in different loops: every thread participates;
/// the buffer holds g*w*v entries in global memory.
template <typename T>
ReduceResult<T> run_gang_worker_vector_reduction(
    gpusim::Device& dev, Nest3 n, const acc::LaunchConfig& cfg,
    acc::ReductionOp op, const Bindings<T>& b, const StrategyConfig& sc = {}) {
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;
  const std::size_t total = static_cast<std::size_t>(g) * w * v;

  auto gbuf = dev.alloc<T>(total);
  auto gview = gbuf.view();

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t x = ctx.threadIdx.x;
    const std::uint32_t y = ctx.threadIdx.y;
    const std::uint32_t bid = ctx.blockIdx.x;

    T priv = rop.identity();
    {
      auto prof = ctx.prof_scope("private_partial");
      device_loop(sc.assignment, n.nk, bid, g, [&](std::int64_t k) {
        device_loop(sc.assignment, n.nj, y, w, [&](std::int64_t j) {
          device_loop(sc.assignment, n.ni, x, v, [&](std::int64_t i) {
            ctx.alu(2);
            if (b.parallel_work) b.parallel_work(ctx, k, j, i);
            priv = rop.apply(priv, b.contrib(ctx, k, j, i));
            ctx.alu(1);
            detail::touch_spill(ctx, sc, sizeof(T));
          });
        });
      });
    }
    const std::size_t slot =
        (static_cast<std::size_t>(bid) * w + y) * v + x;
    auto prof = ctx.prof_scope("staging");
    ctx.st(gview, slot, priv);
  };

  ReduceResult<T> res;
  res.stats =
      gpusim::launch(dev, {g}, {v, w}, 0, kernel,
                     labeled_sim(sc.sim, "rmp_gwv"));
  res.kernels = 1;
  const T fold =
      finalize_to_host(dev, gview, total, op, sc, res.stats, res.kernels);
  res.scalar = detail::fold_host_init(b, acc::RuntimeOp<T>{op}, fold);
  return res;
}

/// RMP in the same loop (§3.2.2, Fig. 10): one loop of `extent` iterations
/// distributed over every thread of the named parallelism levels; each
/// thread stages its private into a buffer of one entry per thread.
/// `contrib` receives the flat iteration index as `k` (j = i = -1).
template <typename T>
ReduceResult<T> run_same_loop_reduction(gpusim::Device& dev,
                                        std::int64_t extent,
                                        const acc::LaunchConfig& cfg,
                                        acc::ReductionOp op,
                                        const Bindings<T>& b,
                                        const StrategyConfig& sc = {}) {
  const std::uint32_t g = cfg.num_gangs;
  const std::uint32_t w = cfg.num_workers;
  const std::uint32_t v = cfg.vector_length;
  const std::size_t total = static_cast<std::size_t>(g) * w * v;

  auto gbuf = dev.alloc<T>(total);
  auto gview = gbuf.view();

  auto kernel = [=, &b](gpusim::ThreadCtx& ctx) {
    const acc::RuntimeOp<T> rop{op};
    const std::uint32_t gtid =
        (ctx.blockIdx.x * w + ctx.threadIdx.y) * v + ctx.threadIdx.x;

    T priv = rop.identity();
    {
      auto prof = ctx.prof_scope("private_partial");
      device_loop(sc.assignment, extent, gtid,
                  static_cast<std::int64_t>(total), [&](std::int64_t idx) {
                    ctx.alu(2);
                    priv = rop.apply(priv, b.contrib(ctx, idx, -1, -1));
                    ctx.alu(1);
                    detail::touch_spill(ctx, sc, sizeof(T));
                  });
    }
    auto prof = ctx.prof_scope("staging");
    ctx.st(gview, gtid, priv);
  };

  ReduceResult<T> res;
  res.stats =
      gpusim::launch(dev, {g}, {v, w}, 0, kernel,
                     labeled_sim(sc.sim, "same_loop"));
  res.kernels = 1;
  const T fold =
      finalize_to_host(dev, gview, total, op, sc, res.stats, res.kernels);
  res.scalar = detail::fold_host_init(b, acc::RuntimeOp<T>{op}, fold);
  return res;
}

}  // namespace accred::reduce
