#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.hpp"

namespace accred::service {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ReductionService::ReductionService(ServiceConfig cfg,
                                   std::vector<TenantConfig> tenants)
    : cfg_(cfg), cache_(cfg.plan_cache_capacity) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.queue_capacity == 0) {
    // Occupancy default: the modeled device can have at most
    // num_sms x max_blocks_per_sm blocks co-resident; admitting more jobs
    // than that many units of work buys latency, not throughput.
    cfg_.queue_capacity =
        std::size_t{cfg_.device_limits.num_sms} *
        cfg_.device_limits.max_blocks_per_sm;
  }
  if (cfg_.memory_budget_bytes == 0) {
    cfg_.memory_budget_bytes = cfg_.device_limits.global_mem_bytes;
  }
  paused_ = cfg_.start_paused;
  for (TenantConfig& t : tenants) {
    Tenant tenant;
    tenant.weight = t.weight > 0 ? t.weight : 1.0;
    tenant.stats.weight = tenant.weight;
    tenants_.emplace(std::move(t.name), std::move(tenant));
  }
  workers_.reserve(cfg_.workers);
  for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ReductionService::~ReductionService() {
  std::vector<Pending> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    for (auto& [name, t] : tenants_) {
      while (!t.queue.empty()) {
        Pending& p = t.queue.front();
        --open_jobs_;
        --undelivered_;
        --queued_;
        admitted_bytes_ -= p.bytes;
        ++t.stats.rejected;
        ++stats_.rejected_queue;
        doomed.push_back(std::move(p));
        t.queue.pop_front();
      }
    }
  }
  work_cv_.notify_all();
  for (Pending& p : doomed) {
    JobResult r;
    r.status = JobStatus::kRejected;
    r.job_id = p.id;
    r.tenant = p.spec.tenant;
    r.reject_reason = "service stopped before dispatch";
    finish(p, std::move(r));
  }
  for (std::thread& t : workers_) t.join();
}

std::size_t ReductionService::estimate_bytes(const JobSpec& spec) {
  const testsuite::CaseGeometry geo =
      testsuite::case_geometry(spec.kase.pos, spec.reduction_extent);
  const bool same_loop =
      spec.kase.pos == acc::Position::kSameLineGangWorkerVector;
  const auto volume = static_cast<std::size_t>(
      same_loop ? geo.same_loop_extent
                : geo.dims.nk * geo.dims.nj * geo.dims.ni);
  // Per-instance output slots, mirroring the runner's allocations.
  std::size_t out_slots = 1;
  if (spec.kase.pos == acc::Position::kVector) {
    out_slots = static_cast<std::size_t>(geo.dims.nk * geo.dims.nj);
  } else if (spec.kase.pos == acc::Position::kWorker ||
             spec.kase.pos == acc::Position::kWorkerVector) {
    out_slots = static_cast<std::size_t>(geo.dims.nk);
  }
  // Worst-case strategy buffers: a full gang x worker x vector global
  // staging slab plus the finalize kernel's own staging. Overestimating
  // slightly keeps admission decisions a pure function of the spec (no
  // plan needed for a rejection).
  const std::size_t staging =
      std::size_t{spec.config.num_gangs} * spec.config.num_workers *
          spec.config.vector_length +
      acc::profile(spec.compiler).strategy.finalize_threads;
  const std::size_t copies = spec.parallel_work && !same_loop ? 2 : 1;
  return (volume * copies + out_slots + staging) * size_of(spec.kase.type);
}

std::future<JobResult> ReductionService::submit(JobSpec spec) {
  Pending job;
  job.spec = std::move(spec);
  job.want_future = true;
  std::future<JobResult> fut = job.promise.get_future();
  (void)admit(std::move(job));  // rejections resolve the future inline
  return fut;
}

void ReductionService::submit(JobSpec spec,
                              std::function<void(JobResult)> callback) {
  Pending job;
  job.spec = std::move(spec);
  job.callback = std::move(callback);
  (void)admit(std::move(job));  // rejections invoke the callback inline
}

bool ReductionService::admit(Pending&& job) {
  job.submitted_at = std::chrono::steady_clock::now();
  job.bytes = estimate_bytes(job.spec);
  std::string reason;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.submitted;
    auto [it, created] = tenants_.try_emplace(job.spec.tenant);
    Tenant& t = it->second;
    if (created) t.stats.weight = t.weight;
    ++t.stats.submitted;
    if (stop_) {
      reason = "service stopped";
      ++stats_.rejected_queue;
    } else if (open_jobs_ >= cfg_.queue_capacity) {
      reason = "occupancy budget exhausted: " + std::to_string(open_jobs_) +
               " open jobs at capacity " +
               std::to_string(cfg_.queue_capacity);
      ++stats_.rejected_queue;
    } else if (admitted_bytes_ + job.bytes > cfg_.memory_budget_bytes) {
      reason = "memory budget exhausted: job needs " +
               std::to_string(job.bytes) + " bytes, " +
               std::to_string(cfg_.memory_budget_bytes - admitted_bytes_) +
               " of " + std::to_string(cfg_.memory_budget_bytes) +
               " available";
      ++stats_.rejected_memory;
    }
    if (!reason.empty()) {
      ++t.stats.rejected;
    } else {
      ++stats_.admitted;
      ++open_jobs_;
      ++undelivered_;
      admitted_bytes_ += job.bytes;
      job.id = next_id_++;
    }
  }
  if (!reason.empty()) {
    JobResult rejected;
    rejected.status = JobStatus::kRejected;
    rejected.tenant = job.spec.tenant;
    rejected.reject_reason = std::move(reason);
    finish(job, std::move(rejected));
    return false;
  }

  // Plan through the cache — after admission, so backpressured traffic
  // never perturbs the hit/miss counters, and outside the service lock,
  // so a miss's full pipeline doesn't stall dispatch.
  try {
    job.plan = cache_.get_or_plan(job.spec, &job.cache_hit);
  } catch (const std::exception& ex) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      --open_jobs_;
      --undelivered_;
      admitted_bytes_ -= job.bytes;
      ++stats_.failed;
      ++tenants_[job.spec.tenant].stats.completed;
      if (undelivered_ == 0) idle_cv_.notify_all();
    }
    JobResult r;
    r.status = JobStatus::kFailed;
    r.job_id = job.id;
    r.tenant = job.spec.tenant;
    r.outcome.detail = std::string("planning failed: ") + ex.what();
    finish(job, std::move(r));
    return true;  // admitted (and completed-as-failed), not rejected
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    Tenant& t = tenants_[job.spec.tenant];
    if (t.queue.empty()) {
      // A tenant going idle must not bank credit: restart its virtual
      // clock at the global one (start-time fair queuing).
      t.pass = std::max(t.pass, virtual_time_);
    }
    t.queue.push_back(std::move(job));
    ++queued_;
  }
  work_cv_.notify_one();
  return true;
}

void ReductionService::worker_main(std::uint32_t worker_index) {
  for (;;) {
    Pending job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || (!paused_ && queued_ > 0); });
      if (queued_ == 0 || paused_) {
        if (stop_) return;
        continue;
      }
      // Weighted fair pick: the backlogged tenant with the smallest
      // virtual finish time runs next; ties break by tenant name (the map
      // iterates in name order), so dispatch is deterministic.
      Tenant* best = nullptr;
      for (auto& [name, t] : tenants_) {
        if (t.queue.empty()) continue;
        if (best == nullptr || t.pass < best->pass) best = &t;
      }
      job = std::move(best->queue.front());
      best->queue.pop_front();
      --queued_;
      virtual_time_ = best->pass;
      best->pass += 1.0 / best->weight;
    }
    run_job(std::move(job), worker_index);
  }
}

void ReductionService::run_job(Pending job, std::uint32_t worker_index) {
  const bool tracing = obs::trace_enabled();
  const double t0_us = tracing ? obs::trace_now_us() : 0;

  JobResult r;
  r.job_id = job.id;
  r.tenant = job.spec.tenant;
  r.plan_cache_hit = job.cache_hit;
  r.queue_ms = ms_since(job.submitted_at);

  testsuite::RunnerOptions opts = runner_options(job.spec);
  opts.device_limits = cfg_.device_limits;
  testsuite::Runner runner(opts);
  try {
    r.outcome = runner.run_planned(job.spec.compiler, job.spec.kase, job.plan);
  } catch (const std::exception& ex) {
    r.outcome.verified = false;
    r.outcome.detail = std::string("execution failed: ") + ex.what();
  }
  r.status = r.outcome.verified ? JobStatus::kOk : JobStatus::kFailed;
  r.service_ms = ms_since(job.submitted_at);

  if (tracing) {
    obs::trace_complete(
        "job", 1000 + worker_index, t0_us, obs::trace_now_us() - t0_us,
        {{"id", static_cast<double>(job.id)},
         {"cache_hit", job.cache_hit ? 1.0 : 0.0},
         {"device_ms", r.outcome.device_ms},
         {"ok", r.status == JobStatus::kOk ? 1.0 : 0.0}});
  }

  // Book the completion — counters and budget — before delivering it: a
  // client that just resolved this job's future must already see it in
  // stats(), and one that paces submissions on completions must find the
  // budget slot free. Only undelivered_ — the drain() signal — waits until
  // after finish, so drain() returning implies every future is ready and
  // every callback has run.
  {
    std::lock_guard<std::mutex> lk(mu_);
    --open_jobs_;
    admitted_bytes_ -= job.bytes;
    ++tenants_[job.spec.tenant].stats.completed;
    if (r.outcome.verified) {
      ++stats_.completed;
      if (r.outcome.recovered) ++stats_.recovered;
      if (r.outcome.degraded) ++stats_.degraded;
    } else {
      ++stats_.failed;
    }
  }
  finish(job, std::move(r));
  {
    std::lock_guard<std::mutex> lk(mu_);
    --undelivered_;
    if (undelivered_ == 0) idle_cv_.notify_all();
  }
}

void ReductionService::finish(Pending& job, JobResult result) {
  if (job.want_future) {
    job.promise.set_value(std::move(result));
  } else if (job.callback) {
    job.callback(std::move(result));
  }
}

void ReductionService::pause() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void ReductionService::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void ReductionService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return undelivered_ == 0; });
}

ServiceStats ReductionService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceStats s = stats_;
  s.queued = queued_;
  s.inflight = open_jobs_ - queued_;
  s.admitted_bytes = admitted_bytes_;
  s.cache = cache_.stats();
  return s;
}

std::map<std::string, TenantStats> ReductionService::tenant_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, TenantStats> out;
  for (const auto& [name, t] : tenants_) out.emplace(name, t.stats);
  return out;
}

}  // namespace accred::service
