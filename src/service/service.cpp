#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace accred::service {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Virtual tids for the service's trace rows: admission and planning run
/// on whichever thread submits, and the queue is not a thread at all, so
/// the spans get stable synthetic rows instead (workers are 1000 + index,
/// matching the execute spans).
constexpr std::uint32_t kDispatcherTid = 900;
constexpr std::uint32_t kQueueTid = 901;

/// Modeled milliseconds -> integer nanoseconds, the virtual timeline's
/// unit (and the 1e6 histogram scale below).
std::uint64_t to_device_ns(double device_ms) {
  if (!(device_ms > 0)) return 0;
  return static_cast<std::uint64_t>(std::llround(device_ms * 1e6));
}

/// Retry-bucket fixed point: 1 token = 1e9 units, so a rate in tokens per
/// virtual second adds `rate` units per virtual nanosecond.
constexpr std::uint64_t kTokenUnit = 1'000'000'000;

/// Tokens (scaled to units) a bucket gains over `elapsed_ns` at `rate`
/// tokens per virtual second. llround of a product of the same operands is
/// the same value on every run — deterministic, like the timeline itself.
std::uint64_t refill_units(double rate, std::uint64_t elapsed_ns) {
  if (rate <= 0 || elapsed_ns == 0) return 0;
  return static_cast<std::uint64_t>(
      std::llround(rate * static_cast<double>(elapsed_ns)));
}

}  // namespace

ReductionService::ReductionService(ServiceConfig cfg,
                                   std::vector<TenantConfig> tenants)
    : cfg_(cfg), cache_(cfg.plan_cache_capacity) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.queue_capacity == 0) {
    // Occupancy default: the modeled device can have at most
    // num_sms x max_blocks_per_sm blocks co-resident; admitting more jobs
    // than that many units of work buys latency, not throughput.
    cfg_.queue_capacity =
        std::size_t{cfg_.device_limits.num_sms} *
        cfg_.device_limits.max_blocks_per_sm;
  }
  if (cfg_.memory_budget_bytes == 0) {
    cfg_.memory_budget_bytes = cfg_.device_limits.global_mem_bytes;
  }
  paused_ = cfg_.start_paused;
  for (TenantConfig& t : tenants) {
    Tenant tenant;
    tenant.weight = t.weight > 0 ? t.weight : 1.0;
    tenant.stats.weight = tenant.weight;
    tenants_.emplace(std::move(t.name), std::move(tenant));
  }
  // Intern the whole service-level metric surface up front: the registry's
  // shape (and so the telemetry section's key set) depends only on the
  // tenant names traffic touches, never on which code paths happened to
  // fire. Per-tenant metrics intern on first touch.
  for (const char* name :
       {"service/submitted", "service/admitted", "service/rejected_queue",
        "service/rejected_memory", "service/completed", "service/failed",
        "service/recovered", "service/degraded", "service/plan_hits",
        "service/plan_misses", "service/cancelled",
        "service/deadline_exceeded", "service/shed_total",
        "service/breaker_open_total", "service/rejected_breaker"}) {
    (void)metrics_.counter(name);
  }
  (void)metrics_.gauge("service/queue_depth_max");
  (void)metrics_.gauge("service/inflight_bytes_max");
  (void)metrics_.histogram("service/queue_depth");
  (void)metrics_.histogram("service/queue_wait_ms", 1e6);
  (void)metrics_.histogram("service/e2e_ms", 1e6);
  (void)metrics_.histogram("service/device_ms", 1e6);
  if (obs::trace_enabled()) {
    obs::trace_set_thread_name(kDispatcherTid, "dispatcher");
    obs::trace_set_thread_name(kQueueTid, "queue");
  }
  workers_.reserve(cfg_.workers);
  for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ReductionService::~ReductionService() {
  std::vector<Pending> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    for (auto& [name, t] : tenants_) {
      while (!t.queue.empty()) {
        Pending& p = t.queue.front();
        --open_jobs_;
        --undelivered_;
        --queued_;
        admitted_bytes_ -= p.bytes;
        ++t.stats.rejected;
        ++stats_.rejected_queue;
        metrics_.counter("service/rejected_queue").add();
        metrics_.counter("tenant/" + name + "/rejected").add();
        // Fill the doomed job's timeline slot (zero device time) so the
        // cursor can pass it; these land after any quiescent snapshot.
        complete_virtual(p.id, 0.0, SlotVerdict::kNeutral);
        doomed.push_back(std::move(p));
        t.queue.pop_front();
      }
    }
  }
  work_cv_.notify_all();
  for (Pending& p : doomed) {
    JobResult r;
    r.status = JobStatus::kRejected;
    r.job_id = p.id;
    r.tenant = p.spec.tenant;
    r.reject_reason = "service stopped before dispatch";
    finish(p, std::move(r));
  }
  for (std::thread& t : workers_) t.join();
}

std::size_t ReductionService::estimate_bytes(const JobSpec& spec) {
  const testsuite::CaseGeometry geo =
      testsuite::case_geometry(spec.kase.pos, spec.reduction_extent);
  const bool same_loop =
      spec.kase.pos == acc::Position::kSameLineGangWorkerVector;
  const auto volume = static_cast<std::size_t>(
      same_loop ? geo.same_loop_extent
                : geo.dims.nk * geo.dims.nj * geo.dims.ni);
  // Per-instance output slots, mirroring the runner's allocations.
  std::size_t out_slots = 1;
  if (spec.kase.pos == acc::Position::kVector) {
    out_slots = static_cast<std::size_t>(geo.dims.nk * geo.dims.nj);
  } else if (spec.kase.pos == acc::Position::kWorker ||
             spec.kase.pos == acc::Position::kWorkerVector) {
    out_slots = static_cast<std::size_t>(geo.dims.nk);
  }
  // Worst-case strategy buffers: a full gang x worker x vector global
  // staging slab plus the finalize kernel's own staging. Overestimating
  // slightly keeps admission decisions a pure function of the spec (no
  // plan needed for a rejection).
  const std::size_t staging =
      std::size_t{spec.config.num_gangs} * spec.config.num_workers *
          spec.config.vector_length +
      acc::profile(spec.compiler).strategy.finalize_threads;
  const std::size_t copies = spec.parallel_work && !same_loop ? 2 : 1;
  return (volume * copies + out_slots + staging) * size_of(spec.kase.type);
}

std::uint64_t ReductionService::estimate_service_ns(const JobSpec& spec) {
  // ~200 bytes per virtual nanosecond (a K20c-class global-memory rate).
  // The dispatch clock only needs a plausible, spec-pure magnitude — the
  // telemetry timeline keeps the modeled truth.
  return std::max<std::uint64_t>(
      1000, static_cast<std::uint64_t>(estimate_bytes(spec)) / 200);
}

std::future<JobResult> ReductionService::submit(JobSpec spec) {
  Pending job;
  job.spec = std::move(spec);
  job.want_future = true;
  std::future<JobResult> fut = job.promise.get_future();
  (void)admit(std::move(job));  // rejections resolve the future inline
  return fut;
}

void ReductionService::submit(JobSpec spec,
                              std::function<void(JobResult)> callback) {
  Pending job;
  job.spec = std::move(spec);
  job.callback = std::move(callback);
  (void)admit(std::move(job));  // rejections invoke the callback inline
}

bool ReductionService::admit(Pending&& job) {
  const bool tracing = obs::trace_enabled();
  const double submit_us = tracing ? obs::trace_now_us() : 0;
  job.submitted_at = std::chrono::steady_clock::now();
  job.bytes = estimate_bytes(job.spec);
  std::string reason;
  const char* reject_kind = "";
  JobStatus reject_status = JobStatus::kRejected;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.submitted;
    auto [it, created] = tenants_.try_emplace(job.spec.tenant);
    Tenant& t = it->second;
    if (created) t.stats.weight = t.weight;
    ++t.stats.submitted;
    metrics_.counter("service/submitted").add();
    metrics_.counter("tenant/" + job.spec.tenant + "/submitted").add();
    // Half-open an open breaker whose virtual cooldown has elapsed. Read
    // against the timeline clock (vfinish_ns_): both sides advance only at
    // deterministic points, so at any quiescent submission the comparison
    // is a pure function of the traffic so far.
    if (cfg_.breaker_threshold > 0 && t.breaker == Breaker::kOpen &&
        vfinish_ns_ >= t.breaker_open_until_ns) {
      t.breaker = Breaker::kHalfOpen;
      t.probe_inflight = false;
    }
    if (stop_) {
      reason = "service stopped";
      reject_kind = "stopped";
      ++stats_.rejected_queue;
      metrics_.counter("service/rejected_queue").add();
    } else if (cfg_.breaker_threshold > 0 &&
               (t.breaker == Breaker::kOpen ||
                (t.breaker == Breaker::kHalfOpen && t.probe_inflight))) {
      reason = t.breaker == Breaker::kOpen
                   ? "circuit breaker open for tenant '" + job.spec.tenant +
                         "' (cooling down)"
                   : "circuit breaker half-open for tenant '" +
                         job.spec.tenant + "' (probe in flight)";
      reject_kind = "breaker";
      reject_status = JobStatus::kCircuitOpen;
      ++stats_.rejected_breaker;
      metrics_.counter("service/rejected_breaker").add();
    } else if (open_jobs_ >= cfg_.queue_capacity) {
      reason = "occupancy budget exhausted: " + std::to_string(open_jobs_) +
               " open jobs at capacity " +
               std::to_string(cfg_.queue_capacity);
      reject_kind = "occupancy";
      ++stats_.rejected_queue;
      metrics_.counter("service/rejected_queue").add();
    } else if (admitted_bytes_ + job.bytes > cfg_.memory_budget_bytes) {
      reason = "memory budget exhausted: job needs " +
               std::to_string(job.bytes) + " bytes, " +
               std::to_string(cfg_.memory_budget_bytes - admitted_bytes_) +
               " of " + std::to_string(cfg_.memory_budget_bytes) +
               " available";
      reject_kind = "memory";
      ++stats_.rejected_memory;
      metrics_.counter("service/rejected_memory").add();
    }
    if (!reason.empty()) {
      ++t.stats.rejected;
      metrics_.counter("tenant/" + job.spec.tenant + "/rejected").add();
    } else {
      ++stats_.admitted;
      ++open_jobs_;
      ++undelivered_;
      admitted_bytes_ += job.bytes;
      job.id = next_id_++;
      metrics_.counter("service/admitted").add();
      // The job's slot on the virtual timeline; ids are handed out here in
      // admission order, so slot index job.id - 1 == timeline_.size().
      VirtualSlot& slot = timeline_.emplace_back();
      slot.bytes = job.bytes;
      slot.tenant = job.spec.tenant;
      // Arrival on the dispatch clock, paced at the running mean of the
      // admitted estimates (the telemetry timeline's pacing rule, applied
      // to the estimate stream).
      job.est_ns = estimate_service_ns(job.spec);
      job.varrival_ns =
          dadmitted_ == 0 ? 0 : darrival_ns_ + dtotal_est_ns_ / dadmitted_;
      darrival_ns_ = job.varrival_ns;
      dtotal_est_ns_ += job.est_ns;
      ++dadmitted_;
      // A half-open breaker admits exactly one probe; mark it only now
      // that every admission check passed (a rejected probe would
      // otherwise leave probe_inflight latched forever).
      if (cfg_.breaker_threshold > 0 && t.breaker == Breaker::kHalfOpen) {
        t.probe_inflight = true;
        slot.probe = true;
      }
    }
  }
  if (!reason.empty()) {
    if (tracing) {
      obs::trace_complete("reject", kDispatcherTid, submit_us,
                          obs::trace_now_us() - submit_us, {},
                          {{"tenant", job.spec.tenant},
                           {"kind", reject_kind}});
    }
    JobResult rejected;
    rejected.status = reject_status;
    rejected.tenant = job.spec.tenant;
    rejected.reject_reason = std::move(reason);
    finish(job, std::move(rejected));
    return false;
  }

  // Plan through the cache — after admission, so backpressured traffic
  // never perturbs the hit/miss counters, and outside the service lock,
  // so a miss's full pipeline doesn't stall dispatch.
  const double plan_us = tracing ? obs::trace_now_us() : 0;
  try {
    job.plan = cache_.get_or_plan(job.spec, &job.cache_hit);
  } catch (const std::exception& ex) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      --open_jobs_;
      --undelivered_;
      admitted_bytes_ -= job.bytes;
      ++stats_.failed;
      ++tenants_[job.spec.tenant].stats.completed;
      metrics_.counter("service/failed").add();
      metrics_.counter("tenant/" + job.spec.tenant + "/completed").add();
      // The slot must still fill, or the timeline cursor stalls behind it
      // forever; a job that never ran contributes zero device time. A
      // planning failure is a structured failure of the tenant's own
      // submission, so it counts toward its breaker.
      complete_virtual(job.id, 0.0, SlotVerdict::kFailed);
      if (undelivered_ == 0) idle_cv_.notify_all();
    }
    JobResult r;
    r.status = JobStatus::kFailed;
    r.job_id = job.id;
    r.tenant = job.spec.tenant;
    r.outcome.detail = std::string("planning failed: ") + ex.what();
    finish(job, std::move(r));
    return true;  // admitted (and completed-as-failed), not rejected
  }
  metrics_.counter(job.cache_hit ? "service/plan_hits"
                                 : "service/plan_misses")
      .add();
  if (tracing) {
    obs::trace_complete("plan", kDispatcherTid, plan_us,
                        obs::trace_now_us() - plan_us,
                        {{"job", static_cast<double>(job.id)},
                         {"hit", job.cache_hit ? 1.0 : 0.0}},
                        {{"tenant", job.spec.tenant}});
  }

  const std::uint64_t id = job.id;
  const std::string tenant_name = job.spec.tenant;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Tenant& t = tenants_[job.spec.tenant];
    if (t.queue.empty()) {
      // A tenant going idle must not bank credit: restart its virtual
      // clock at the global one (start-time fair queuing).
      t.pass = std::max(t.pass, virtual_time_);
    }
    job.enqueue_us = tracing ? obs::trace_now_us() : 0;
    t.queue.push_back(std::move(job));
    ++queued_;
  }
  if (tracing) {
    // The whole admission + planning journey on the dispatcher row.
    obs::trace_complete("submit", kDispatcherTid, submit_us,
                        obs::trace_now_us() - submit_us,
                        {{"job", static_cast<double>(id)}},
                        {{"tenant", tenant_name}});
  }
  work_cv_.notify_one();
  return true;
}

void ReductionService::complete_virtual(std::uint64_t id, double device_ms,
                                        SlotVerdict verdict) {
  VirtualSlot& filled = timeline_[id - 1];
  filled.done = true;
  filled.device_ns = to_device_ns(device_ms);
  filled.verdict = verdict;
  // Consume every consecutive done slot in admission order. Completion
  // order (worker interleaving) only decides *when* the cursor catches up,
  // never what it records — that is the determinism contract.
  while (vcursor_ < timeline_.size() && timeline_[vcursor_].done) {
    VirtualSlot& s = timeline_[vcursor_];
    // Arrivals paced at the running mean device time: a saturating open
    // load (utilization 1), so queue waits express burstiness in the
    // device-time mix rather than collapsing to zero or diverging.
    const std::uint64_t arrival =
        vcursor_ == 0 ? 0
                      : varrival_ns_ + vtotal_device_ns_ /
                                           static_cast<std::uint64_t>(vcursor_);
    // Retire every job that departed before this arrival; what remains in
    // [vretire_, vcursor_) is the virtual queue this job joins.
    while (vretire_ < vcursor_ && timeline_[vretire_].finish_ns <= arrival) {
      vbytes_in_system_ -= timeline_[vretire_].bytes;
      ++vretire_;
    }
    const auto depth = static_cast<std::uint64_t>(vcursor_ - vretire_);
    metrics_.histogram("service/queue_depth").record_units(depth);
    metrics_.gauge("service/queue_depth_max")
        .max_of(static_cast<std::int64_t>(depth));
    vbytes_in_system_ += s.bytes;
    metrics_.gauge("service/inflight_bytes_max")
        .max_of(static_cast<std::int64_t>(vbytes_in_system_));
    // Lindley recursion: one virtual server, FIFO in admission order.
    const std::uint64_t start = std::max(arrival, vfinish_ns_);
    const std::uint64_t wait = start - arrival;
    s.finish_ns = start + s.device_ns;
    metrics_.histogram("service/queue_wait_ms", 1e6).record_units(wait);
    metrics_.histogram("service/e2e_ms", 1e6).record_units(wait + s.device_ns);
    metrics_.histogram("service/device_ms", 1e6).record_units(s.device_ns);
    const std::string prefix = "tenant/" + s.tenant + "/";
    metrics_.histogram(prefix + "queue_wait_ms", 1e6).record_units(wait);
    metrics_.histogram(prefix + "e2e_ms", 1e6).record_units(wait + s.device_ns);
    metrics_.histogram(prefix + "device_ms", 1e6).record_units(s.device_ns);
    vtotal_device_ns_ += s.device_ns;
    varrival_ns_ = arrival;
    vfinish_ns_ = s.finish_ns;
    // Breaker transitions happen here — at the cursor, in admission order
    // — never at the racy completion instant, so trips and closures are
    // bit-identical for any worker count (DESIGN.md §16).
    if (cfg_.breaker_threshold > 0) {
      Tenant& t = tenants_[s.tenant];
      const auto open_breaker = [&] {
        t.breaker = Breaker::kOpen;
        t.probe_inflight = false;
        t.consecutive_failures = 0;
        t.breaker_open_until_ns = s.finish_ns + cfg_.breaker_cooldown_ns;
        ++stats_.breaker_opens;
        metrics_.counter("service/breaker_open_total").add();
        if (obs::trace_enabled()) {
          obs::trace_complete("breaker_open", kDispatcherTid,
                              obs::trace_now_us(), 0,
                              {{"until_virtual_ms",
                                static_cast<double>(t.breaker_open_until_ns) /
                                    1e6}},
                              {{"tenant", s.tenant}});
        }
      };
      switch (s.verdict) {
        case SlotVerdict::kFailed:
          ++t.consecutive_failures;
          if (s.probe) {
            open_breaker();  // failed probe: back to open, new cooldown
          } else if (t.breaker == Breaker::kClosed &&
                     t.consecutive_failures >= cfg_.breaker_threshold) {
            open_breaker();
          }
          break;
        case SlotVerdict::kOk:
          t.consecutive_failures = 0;
          if (s.probe) {
            t.breaker = Breaker::kClosed;
            t.probe_inflight = false;
            if (obs::trace_enabled()) {
              obs::trace_complete("breaker_close", kDispatcherTid,
                                  obs::trace_now_us(), 0, {},
                                  {{"tenant", s.tenant}});
            }
          }
          break;
        case SlotVerdict::kNeutral:
          // A probe that resolved without a verdict (cancelled, deadline,
          // shed) releases the half-open slot; the next submission probes.
          if (s.probe) t.probe_inflight = false;
          break;
      }
    }
    ++vcursor_;
  }
}

void ReductionService::worker_main(std::uint32_t worker_index) {
  if (obs::trace_enabled()) {
    obs::trace_set_thread_name(1000 + worker_index,
                               "worker-" + std::to_string(worker_index));
  }
  for (;;) {
    Pending job;
    // Resolution decided under the lock; delivery happens outside it.
    enum class Pick : std::uint8_t { kRun, kCancel, kDeadline } pick = Pick::kRun;
    std::uint64_t wait_ns = 0;
    bool have_victim = false;
    Pending victim;  // shed by this dispatch decision, if any
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || (!paused_ && queued_ > 0); });
      if (queued_ == 0 || paused_) {
        if (stop_) return;
        continue;
      }
      // Weighted fair pick: the backlogged tenant with the smallest
      // virtual finish time runs next; ties break by tenant name (the map
      // iterates in name order), so dispatch is deterministic.
      Tenant* best = nullptr;
      for (auto& [name, t] : tenants_) {
        if (t.queue.empty()) continue;
        if (best == nullptr || t.pass < best->pass) best = &t;
      }
      job = std::move(best->queue.front());
      best->queue.pop_front();
      --queued_;
      virtual_time_ = best->pass;
      best->pass += 1.0 / best->weight;
      if (obs::trace_enabled()) {
        // Real (wall-clock) queue depth at dispatch — trace-only context,
        // deliberately not a gated metric.
        obs::trace_counter("queue_depth", static_cast<double>(queued_));
      }

      // Resolution order (DESIGN.md §16): cancellation first (the client
      // no longer wants the result, whatever its wait), then the deadline
      // (already expired: launching would only deliver a late answer),
      // then overload shedding and the retry grant for a job that will
      // actually run. All of it on the dispatch clock, under mu_, so the
      // decision sequence is a pure function of the queue contents.
      const std::uint64_t start = std::max(job.varrival_ns, dnow_ns_);
      wait_ns = start - job.varrival_ns;
      if (job.spec.cancel && job.spec.cancel->cancelled()) {
        pick = Pick::kCancel;  // consumes no virtual service time
      } else if (job.spec.deadline_ns > 0 &&
                 wait_ns > job.spec.deadline_ns) {
        pick = Pick::kDeadline;  // consumes no virtual service time
      } else {
        if (cfg_.shed_target_ns > 0) {
          // CoDel-style: shed only on *sustained* overload — the modeled
          // wait has stayed above target for a full interval — and then
          // one youngest-arrival job per dispatch, so a transient burst
          // rides the queue while a standing one drains newest-first.
          const std::uint64_t interval = cfg_.shed_interval_ns > 0
                                             ? cfg_.shed_interval_ns
                                             : cfg_.shed_target_ns;
          if (wait_ns <= cfg_.shed_target_ns) {
            shed_first_above_ns_ = 0;
          } else if (shed_first_above_ns_ == 0) {
            shed_first_above_ns_ = start;
          } else if (start - shed_first_above_ns_ >= interval) {
            // Victim: the youngest virtual arrival still queued — the back
            // of the tenant queue holding the highest job id.
            Tenant* vt = nullptr;
            for (auto& [name, t] : tenants_) {
              if (t.queue.empty()) continue;
              if (vt == nullptr || t.queue.back().id > vt->queue.back().id) {
                vt = &t;
              }
            }
            if (vt != nullptr) {
              victim = std::move(vt->queue.back());
              vt->queue.pop_back();
              --queued_;
              have_victim = true;
            }
          }
        }
        if (cfg_.retry_budget_per_sec > 0) {
          // Refill the tenant's bucket to `start`, then debit this job's
          // grant. Debit-at-dispatch is the deterministic point; the
          // grant caps the guarded ladder via max_total_attempts.
          Tenant& t = tenants_[job.spec.tenant];
          const double burst = cfg_.retry_budget_burst > 0
                                   ? cfg_.retry_budget_burst
                                   : std::max(1.0, cfg_.retry_budget_per_sec);
          const auto burst_units = static_cast<std::uint64_t>(
              std::llround(burst * static_cast<double>(kTokenUnit)));
          if (!t.bucket_primed) {
            t.bucket_primed = true;
            t.bucket_units = burst_units;
            t.bucket_refill_ns = start;
          } else if (start > t.bucket_refill_ns) {
            t.bucket_units = std::min(
                burst_units,
                t.bucket_units + refill_units(cfg_.retry_budget_per_sec,
                                              start - t.bucket_refill_ns));
            t.bucket_refill_ns = start;
          }
          const std::uint64_t avail = t.bucket_units / kTokenUnit;
          const std::uint64_t grant =
              std::min<std::uint64_t>(avail, cfg_.retry_tokens_per_job);
          t.bucket_units -= grant * kTokenUnit;
          job.attempts_granted = static_cast<int>(grant) + 1;
          metrics_.gauge("tenant/" + job.spec.tenant + "/retry_budget_tokens")
              .set(static_cast<std::int64_t>(t.bucket_units / kTokenUnit));
        }
        // Serve: advance the virtual server by the estimate.
        dnow_ns_ = start + job.est_ns;
      }
    }
    if (have_victim) {
      resolve_unlaunched(std::move(victim), JobStatus::kShed,
                         "shed under sustained overload (modeled wait " +
                             std::to_string(wait_ns) + " ns above target " +
                             std::to_string(cfg_.shed_target_ns) + " ns)");
    }
    switch (pick) {
      case Pick::kRun:
        run_job(std::move(job), worker_index);
        break;
      case Pick::kCancel:
        resolve_unlaunched(std::move(job), JobStatus::kCancelled,
                           "cancelled by client while queued");
        break;
      case Pick::kDeadline:
        resolve_unlaunched(std::move(job), JobStatus::kDeadlineExceeded,
                           "deadline exceeded before dispatch: modeled wait " +
                               std::to_string(wait_ns) + " ns > deadline " +
                               std::to_string(job.spec.deadline_ns) + " ns");
        break;
    }
  }
}

void ReductionService::resolve_unlaunched(Pending job, JobStatus status,
                                          std::string reason) {
  const bool tracing = obs::trace_enabled();
  const double t0_us = tracing ? obs::trace_now_us() : 0;
  JobResult r;
  r.status = status;
  r.job_id = job.id;
  r.tenant = job.spec.tenant;
  r.reject_reason = std::move(reason);
  r.plan_cache_hit = job.cache_hit;
  r.queue_ms = ms_since(job.submitted_at);
  r.service_ms = r.queue_ms;  // never ran: service time is the queue time
  const char* kind = status == JobStatus::kCancelled      ? "cancel"
                     : status == JobStatus::kShed         ? "shed"
                                                          : "deadline";
  {
    std::lock_guard<std::mutex> lk(mu_);
    --open_jobs_;
    admitted_bytes_ -= job.bytes;
    ++tenants_[job.spec.tenant].stats.completed;
    metrics_.counter("tenant/" + job.spec.tenant + "/completed").add();
    switch (status) {
      case JobStatus::kCancelled:
        ++stats_.cancelled;
        metrics_.counter("service/cancelled").add();
        break;
      case JobStatus::kDeadlineExceeded:
        ++stats_.deadline_exceeded;
        metrics_.counter("service/deadline_exceeded").add();
        break;
      default:
        ++stats_.shed;
        metrics_.counter("service/shed_total").add();
        break;
    }
    complete_virtual(job.id, 0.0, SlotVerdict::kNeutral);
  }
  if (tracing) {
    // Lifecycle span on the queue row: the whole queued life of a job the
    // dispatcher resolved without launching.
    obs::trace_complete(kind, kQueueTid, job.enqueue_us,
                        t0_us - job.enqueue_us,
                        {{"job", static_cast<double>(job.id)}},
                        {{"tenant", job.spec.tenant}});
  }
  finish(job, std::move(r));
  {
    std::lock_guard<std::mutex> lk(mu_);
    --undelivered_;
    if (undelivered_ == 0) idle_cv_.notify_all();
  }
}

void ReductionService::run_job(Pending job, std::uint32_t worker_index) {
  const bool tracing = obs::trace_enabled();
  const double t0_us = tracing ? obs::trace_now_us() : 0;
  if (tracing) {
    // Time spent waiting in the WFQ queue, on the synthetic queue row.
    obs::trace_complete("queued", kQueueTid, job.enqueue_us,
                        t0_us - job.enqueue_us,
                        {{"job", static_cast<double>(job.id)}},
                        {{"tenant", job.spec.tenant}});
  }

  JobResult r;
  r.job_id = job.id;
  r.tenant = job.spec.tenant;
  r.plan_cache_hit = job.cache_hit;
  r.queue_ms = ms_since(job.submitted_at);

  testsuite::RunnerOptions opts = runner_options(job.spec);
  opts.device_limits = cfg_.device_limits;
  opts.max_degrade_rungs = cfg_.max_degrade_rungs;
  // Retry-budget grant from the dispatch decision: 0 when the budget is
  // off (ladder bounds attempts), else 1 + the tokens taken.
  opts.max_total_attempts = job.attempts_granted;
  testsuite::Runner runner(opts);
  try {
    r.outcome = runner.run_planned(job.spec.compiler, job.spec.kase, job.plan);
  } catch (const std::exception& ex) {
    r.outcome.verified = false;
    r.outcome.detail = std::string("execution failed: ") + ex.what();
  }
  const bool was_cancelled =
      !r.outcome.verified &&
      r.outcome.stats.error.code == gpusim::LaunchErrorCode::kCancelled;
  r.status = r.outcome.verified  ? JobStatus::kOk
             : was_cancelled     ? JobStatus::kCancelled
                                 : JobStatus::kFailed;
  r.service_ms = ms_since(job.submitted_at);

  if (tracing) {
    obs::trace_complete(
        "execute", 1000 + worker_index, t0_us, obs::trace_now_us() - t0_us,
        {{"job", static_cast<double>(job.id)},
         {"cache_hit", job.cache_hit ? 1.0 : 0.0},
         {"device_ms", r.outcome.device_ms},
         {"ok", r.status == JobStatus::kOk ? 1.0 : 0.0}},
        {{"tenant", job.spec.tenant}});
  }

  // Book the completion — counters and budget — before delivering it: a
  // client that just resolved this job's future must already see it in
  // stats(), and one that paces submissions on completions must find the
  // budget slot free. Only undelivered_ — the drain() signal — waits until
  // after finish, so drain() returning implies every future is ready and
  // every callback has run.
  {
    std::lock_guard<std::mutex> lk(mu_);
    --open_jobs_;
    admitted_bytes_ -= job.bytes;
    ++tenants_[job.spec.tenant].stats.completed;
    metrics_.counter("tenant/" + job.spec.tenant + "/completed").add();
    SlotVerdict verdict = SlotVerdict::kFailed;
    if (r.outcome.verified) {
      verdict = SlotVerdict::kOk;
      ++stats_.completed;
      metrics_.counter("service/completed").add();
      if (r.outcome.recovered) {
        ++stats_.recovered;
        metrics_.counter("service/recovered").add();
      }
      if (r.outcome.degraded) {
        ++stats_.degraded;
        metrics_.counter("service/degraded").add();
      }
    } else if (was_cancelled) {
      // The client walked away; says nothing about the tenant's health.
      verdict = SlotVerdict::kNeutral;
      ++stats_.cancelled;
      metrics_.counter("service/cancelled").add();
    } else {
      ++stats_.failed;
      metrics_.counter("service/failed").add();
    }
    complete_virtual(job.id, r.outcome.device_ms, verdict);
  }
  const double deliver_us = tracing ? obs::trace_now_us() : 0;
  finish(job, std::move(r));
  if (tracing) {
    obs::trace_complete("deliver", 1000 + worker_index, deliver_us,
                        obs::trace_now_us() - deliver_us,
                        {{"job", static_cast<double>(job.id)}},
                        {{"tenant", job.spec.tenant}});
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    --undelivered_;
    if (undelivered_ == 0) idle_cv_.notify_all();
  }
}

void ReductionService::finish(Pending& job, JobResult result) {
  if (job.want_future) {
    job.promise.set_value(std::move(result));
  } else if (job.callback) {
    job.callback(std::move(result));
  }
}

void ReductionService::pause() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void ReductionService::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void ReductionService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return undelivered_ == 0; });
}

std::uint64_t ReductionService::drain(std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait_for(lk, timeout, [&] { return undelivered_ == 0; });
  return undelivered_;
}

ServiceStats ReductionService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceStats s = stats_;
  s.queued = queued_;
  s.inflight = open_jobs_ - queued_;
  s.admitted_bytes = admitted_bytes_;
  s.cache = cache_.stats();
  return s;
}

obs::Json ReductionService::metrics_json() const { return metrics_.to_json(); }

std::map<std::string, TenantStats> ReductionService::tenant_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, TenantStats> out;
  for (const auto& [name, t] : tenants_) out.emplace(name, t.stats);
  return out;
}

}  // namespace accred::service
