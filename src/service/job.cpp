#include "service/job.hpp"

#include <array>
#include <stdexcept>

#include "acc/parser.hpp"

namespace accred::service {

std::string_view to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kDeadlineExceeded: return "deadline_exceeded";
    case JobStatus::kShed: return "shed";
    case JobStatus::kCircuitOpen: return "circuit_open";
  }
  return "?";
}

testsuite::RunnerOptions runner_options(const JobSpec& job) {
  testsuite::RunnerOptions opts;
  opts.reduction_extent = job.reduction_extent;
  opts.parallel_work = job.parallel_work;
  opts.config = job.config;
  opts.sim_threads = job.sim_threads;
  opts.faults = job.faults;
  opts.max_retries = job.max_retries;
  opts.degrade = job.degrade;
  opts.cancel = job.cancel;
  return opts;
}

namespace {

/// The job's annotated skeleton nest: the declared scalar case, or the
/// cascaded gang/worker/vector chain when chain_ops is set.
acc::NestIR nest_for_job(const JobSpec& job) {
  if (job.chain_ops.empty()) {
    return nest_for_case(job.kase, runner_options(job),
                         acc::profile(job.compiler).discipline);
  }
  if (job.chain_ops.size() != 3) {
    throw std::invalid_argument(
        "chain_ops must hold exactly 3 ops (vector, worker, gang)");
  }
  return testsuite::nest_for_chain(
      std::array<acc::ReductionOp, 3>{job.chain_ops[0], job.chain_ops[1],
                                      job.chain_ops[2]},
      job.kase.type, runner_options(job));
}

}  // namespace

std::vector<std::string> job_source(const JobSpec& job) {
  const acc::NestIR nest = nest_for_job(job);
  std::vector<std::string> out;
  out.reserve(nest.loops.size());
  for (const acc::LoopSpec& loop : nest.loops) {
    std::string line = "#pragma acc loop";
    if (loop.par == 0) {
      line += " seq";
    } else {
      line += ' ';
      line += acc::par_mask_to_string(loop.par);
    }
    for (const acc::ReductionClause& r : loop.reductions) {
      line += " reduction(";
      line += to_string(r.op);
      line += ':';
      line += r.var;
      line += ')';
    }
    out.push_back(std::move(line));
  }
  return out;
}

acc::ExecutionPlan plan_job(const JobSpec& job) {
  const acc::CompilerProfile& prof = acc::profile(job.compiler);
  // The skeleton nest supplies what source text cannot carry: runtime
  // extents and the variable's semantic facts (accumulation site, next
  // use) that a real compiler reads off the AST.
  acc::NestIR nest = nest_for_job(job);
  const std::vector<std::string> source = job_source(job);
  for (std::size_t l = 0; l < nest.loops.size(); ++l) {
    const acc::LoopDirective dir = acc::parse_loop_directive(source[l]);
    nest.loops[l].par = dir.seq ? acc::ParMask{0} : dir.par;
    nest.loops[l].reductions = dir.reductions;
  }
  // A chained job lowers its producer->consumer cascade to one fused
  // kFusedCascade plan; everything else takes the single-reduction path.
  return job.chain_ops.empty() ? acc::plan_single(nest, prof)
                               : acc::plan_chained(nest, prof);
}

}  // namespace accred::service
