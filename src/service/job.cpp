#include "service/job.hpp"

#include "acc/parser.hpp"

namespace accred::service {

std::string_view to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kRejected: return "rejected";
  }
  return "?";
}

testsuite::RunnerOptions runner_options(const JobSpec& job) {
  testsuite::RunnerOptions opts;
  opts.reduction_extent = job.reduction_extent;
  opts.parallel_work = job.parallel_work;
  opts.config = job.config;
  opts.sim_threads = job.sim_threads;
  opts.faults = job.faults;
  opts.max_retries = job.max_retries;
  opts.degrade = job.degrade;
  return opts;
}

std::vector<std::string> job_source(const JobSpec& job) {
  const acc::CompilerProfile& prof = acc::profile(job.compiler);
  const acc::NestIR nest =
      nest_for_case(job.kase, runner_options(job), prof.discipline);
  std::vector<std::string> out;
  out.reserve(nest.loops.size());
  for (const acc::LoopSpec& loop : nest.loops) {
    std::string line = "#pragma acc loop";
    if (loop.par == 0) {
      line += " seq";
    } else {
      line += ' ';
      line += acc::par_mask_to_string(loop.par);
    }
    for (const acc::ReductionClause& r : loop.reductions) {
      line += " reduction(";
      line += to_string(r.op);
      line += ':';
      line += r.var;
      line += ')';
    }
    out.push_back(std::move(line));
  }
  return out;
}

acc::ExecutionPlan plan_job(const JobSpec& job) {
  const acc::CompilerProfile& prof = acc::profile(job.compiler);
  // The skeleton nest supplies what source text cannot carry: runtime
  // extents and the variable's semantic facts (accumulation site, next
  // use) that a real compiler reads off the AST.
  acc::NestIR nest =
      nest_for_case(job.kase, runner_options(job), prof.discipline);
  const std::vector<std::string> source = job_source(job);
  for (std::size_t l = 0; l < nest.loops.size(); ++l) {
    const acc::LoopDirective dir = acc::parse_loop_directive(source[l]);
    nest.loops[l].par = dir.seq ? acc::ParMask{0} : dir.par;
    nest.loops[l].reductions = dir.reductions;
  }
  return acc::plan_single(nest, prof);
}

}  // namespace accred::service
