// Reduction-as-a-service: a long-running multi-tenant executor over the
// acc planner and the simulated device (DESIGN.md §13).
//
//   * submissions are (source, buffers) jobs (job.hpp): async completion
//     through a std::future or a callback, thousands in flight;
//   * admission control gates every submission against the simulated
//     device's occupancy and memory budget *before* it queues — overload
//     answers with reject-with-backpressure (JobStatus::kRejected), never
//     with a device OOM mid-run;
//   * dispatch is per-tenant weighted fair queuing (start-time virtual
//     clocks): a tenant flooding the queue gets its weight's share and no
//     more, and never starves the others;
//   * planning goes through the PlanCache (plan_cache.hpp), so repeat
//     traffic skips the source -> parse -> analyze -> plan pipeline;
//   * every job executes under acc::execute_guarded on its own simulated
//     Device, so one tenant's injected faults degrade that tenant's job
//     only — sibling results are bit-identical with or without the
//     neighbor's campaign (tests/service/test_service.cpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/dim3.hpp"
#include "obs/metrics.hpp"
#include "service/job.hpp"
#include "service/plan_cache.hpp"

namespace accred::service {

/// Declared tenant with a scheduling weight (share of dispatch slots).
/// Undeclared tenants are created on first submission with weight 1.
struct TenantConfig {
  std::string name;
  double weight = 1.0;
};

struct ServiceConfig {
  /// Executor threads running jobs (each on its own simulated Device).
  std::uint32_t workers = 2;
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
  /// Occupancy budget: max admitted-but-incomplete jobs. 0 = default from
  /// the device description (num_sms x max_blocks_per_sm resident blocks
  /// — the most work the modeled device could ever have co-resident).
  std::size_t queue_capacity = 0;
  /// Memory budget: total estimated device bytes across admitted jobs.
  /// 0 = the device's global memory size.
  std::size_t memory_budget_bytes = 0;
  /// Device description for per-job devices and the budget defaults.
  gpusim::DeviceLimits device_limits{};
  /// Start with dispatch paused (admission still runs): deterministic
  /// queue build-up for tests and the bench's admission phase.
  bool start_paused = false;
};

/// Per-tenant accounting.
struct TenantStats {
  double weight = 1.0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  ///< includes failed (executed) jobs
};

/// Whole-service counters, surfaced into accred.bench records by the
/// service_throughput driver.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue = 0;   ///< occupancy backpressure
  std::uint64_t rejected_memory = 0;  ///< memory-budget backpressure
  std::uint64_t completed = 0;        ///< executed and verified
  std::uint64_t failed = 0;           ///< executed, ladder exhausted / F cell
  std::uint64_t recovered = 0;        ///< verified after >= 1 failed attempt
  std::uint64_t degraded = 0;         ///< verified on a degraded rung
  std::uint64_t queued = 0;           ///< admitted, not yet dispatched
  std::uint64_t inflight = 0;         ///< dispatched, not yet complete
  std::size_t admitted_bytes = 0;     ///< reserved against the memory budget
  PlanCacheStats cache;
};

class ReductionService {
public:
  explicit ReductionService(ServiceConfig cfg = {},
                            std::vector<TenantConfig> tenants = {});
  /// Stops accepting, finishes in-flight jobs, and fails still-queued ones
  /// with kRejected("service stopped"). Call drain() first for a clean end.
  ~ReductionService();

  ReductionService(const ReductionService&) = delete;
  ReductionService& operator=(const ReductionService&) = delete;

  /// Submit asynchronously; the future resolves when the job completes
  /// (or immediately, for admission rejections).
  [[nodiscard]] std::future<JobResult> submit(JobSpec spec);
  /// Callback flavor: runs on the executing worker thread (or inline on
  /// the submitting thread for rejections). Must not block.
  void submit(JobSpec spec, std::function<void(JobResult)> callback);

  /// Pause / resume dispatch. Admission keeps running while paused.
  void pause();
  void resume();
  /// Block until every admitted job has completed. Dispatch must be
  /// running (resume() first if paused) or this never returns.
  void drain();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::map<std::string, TenantStats> tenant_stats() const;
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

  /// Telemetry registry (DESIGN.md §14): lifecycle counters plus latency /
  /// occupancy histograms from the virtual service timeline. Always
  /// collected (the registry is cheap); emission into records is what
  /// --metrics gates. At a quiescent point (after drain()) the contents
  /// are a pure function of the submission sequence — bit-identical for
  /// any worker count and any --sim-threads.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  /// metrics().to_json() — the schema-v3 "telemetry" section.
  [[nodiscard]] obs::Json metrics_json() const;

  /// Admission-time estimate of a job's device footprint in bytes (input
  /// + temp copy + per-instance outputs + worst-case staging buffers).
  /// A pure function of the spec, so admission decisions are reproducible.
  [[nodiscard]] static std::size_t estimate_bytes(const JobSpec& spec);

private:
  struct Pending {
    JobSpec spec;
    acc::ExecutionPlan plan;
    bool cache_hit = false;
    std::uint64_t id = 0;
    std::size_t bytes = 0;
    std::promise<JobResult> promise;
    bool want_future = false;
    std::function<void(JobResult)> callback;
    std::chrono::steady_clock::time_point submitted_at;
    double enqueue_us = 0;  ///< trace timestamp of the enqueue (trace only)
  };

  struct Tenant {
    double weight = 1.0;
    double pass = 0.0;  ///< virtual finish time of the next dispatch
    std::deque<Pending> queue;
    TenantStats stats;
  };

  /// One admitted job's slot on the virtual service timeline — the
  /// deterministic replacement for wall-clock queue waits (DESIGN.md §14).
  /// Slots are indexed by job id - 1 (ids are handed out in admission
  /// order), filled at completion, and consumed strictly in admission
  /// order by advance_virtual_timeline()'s cursor, so the derived
  /// histograms never see the completion interleaving.
  struct VirtualSlot {
    bool done = false;
    std::uint64_t device_ns = 0;  ///< modeled device time (0 if never ran)
    std::uint64_t finish_ns = 0;  ///< virtual departure, set by the cursor
    std::uint64_t bytes = 0;      ///< admission-time footprint estimate
    std::string tenant;
  };

  /// Admission + enqueue shared by both submit flavors. On backpressure
  /// the job's future/callback is fulfilled immediately with kRejected
  /// and this returns false.
  bool admit(Pending&& job);
  void worker_main(std::uint32_t worker_index);
  void run_job(Pending job, std::uint32_t worker_index);
  void finish(Pending& job, JobResult result);
  /// Mark job `id`'s slot complete with `device_ms` of modeled device time
  /// and advance the timeline cursor over every consecutive done slot.
  /// Caller holds mu_.
  void complete_virtual(std::uint64_t id, double device_ms);

  ServiceConfig cfg_;
  PlanCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: job queued / stop
  std::condition_variable idle_cv_;  ///< drain(): undelivered count hit zero
  std::map<std::string, Tenant> tenants_;
  double virtual_time_ = 0.0;  ///< WFQ clock: pass of the last dispatch
  std::uint64_t next_id_ = 1;
  std::uint64_t open_jobs_ = 0;  ///< admitted, not yet complete (the budget)
  /// Admitted, result not yet delivered. Trails open_jobs_ by the delivery
  /// window: the budget frees as soon as a job's work is done (so
  /// completion-paced clients are never back-pressured), while drain()
  /// waits for this — every future ready, every callback run.
  std::uint64_t undelivered_ = 0;
  std::uint64_t queued_ = 0;
  std::size_t admitted_bytes_ = 0;
  bool paused_ = false;
  bool stop_ = false;
  ServiceStats stats_;

  /// Telemetry (DESIGN.md §14). The registry's own locks are leaves —
  /// taken under mu_ by the timeline cursor, never the other way around.
  obs::MetricsRegistry metrics_;
  /// Virtual timeline state, all guarded by mu_: arrivals are paced at the
  /// running mean device time (utilization 1), start times follow the
  /// Lindley recursion start = max(arrival, previous finish).
  std::vector<VirtualSlot> timeline_;    ///< slot i = job id i + 1
  std::size_t vcursor_ = 0;              ///< next slot to consume
  std::size_t vretire_ = 0;              ///< first slot still in system
  std::uint64_t varrival_ns_ = 0;        ///< arrival of the last consumed
  std::uint64_t vfinish_ns_ = 0;         ///< finish of the last consumed
  std::uint64_t vtotal_device_ns_ = 0;   ///< device-time sum of consumed
  std::uint64_t vbytes_in_system_ = 0;   ///< footprint of unretired slots

  std::vector<std::thread> workers_;
};

}  // namespace accred::service
