// Reduction-as-a-service: a long-running multi-tenant executor over the
// acc planner and the simulated device (DESIGN.md §13).
//
//   * submissions are (source, buffers) jobs (job.hpp): async completion
//     through a std::future or a callback, thousands in flight;
//   * admission control gates every submission against the simulated
//     device's occupancy and memory budget *before* it queues — overload
//     answers with reject-with-backpressure (JobStatus::kRejected), never
//     with a device OOM mid-run;
//   * dispatch is per-tenant weighted fair queuing (start-time virtual
//     clocks): a tenant flooding the queue gets its weight's share and no
//     more, and never starves the others;
//   * planning goes through the PlanCache (plan_cache.hpp), so repeat
//     traffic skips the source -> parse -> analyze -> plan pipeline;
//   * every job executes under acc::execute_guarded on its own simulated
//     Device, so one tenant's injected faults degrade that tenant's job
//     only — sibling results are bit-identical with or without the
//     neighbor's campaign (tests/service/test_service.cpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/dim3.hpp"
#include "obs/metrics.hpp"
#include "service/job.hpp"
#include "service/plan_cache.hpp"

namespace accred::service {

/// Declared tenant with a scheduling weight (share of dispatch slots).
/// Undeclared tenants are created on first submission with weight 1.
struct TenantConfig {
  std::string name;
  double weight = 1.0;
};

struct ServiceConfig {
  /// Executor threads running jobs (each on its own simulated Device).
  std::uint32_t workers = 2;
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
  /// Occupancy budget: max admitted-but-incomplete jobs. 0 = default from
  /// the device description (num_sms x max_blocks_per_sm resident blocks
  /// — the most work the modeled device could ever have co-resident).
  std::size_t queue_capacity = 0;
  /// Memory budget: total estimated device bytes across admitted jobs.
  /// 0 = the device's global memory size.
  std::size_t memory_budget_bytes = 0;
  /// Device description for per-job devices and the budget defaults.
  gpusim::DeviceLimits device_limits{};
  /// Start with dispatch paused (admission still runs): deterministic
  /// queue build-up for tests and the bench's admission phase.
  bool start_paused = false;

  // --- Resilience layer (DESIGN.md §16) -------------------------------

  /// Per-tenant circuit breaker: consecutive structured failures (ladder
  /// exhausted / planning failed) that trip the tenant's breaker open, so
  /// its submissions fast-fail with kCircuitOpen instead of burning
  /// execute_guarded retries. 0 = breaker off. Failure counts advance at
  /// the virtual-timeline cursor (admission order), so trips are
  /// bit-deterministic for any worker count.
  std::uint32_t breaker_threshold = 0;
  /// Virtual-time cooldown before an open breaker half-opens and admits a
  /// single probe job. Measured on the timeline clock from the tripping
  /// job's virtual finish.
  std::uint64_t breaker_cooldown_ns = 1'000'000;
  /// CoDel-style overload shedding: when the modeled queue wait (dispatch
  /// clock) stays above this target for shed_interval_ns of virtual time,
  /// each further dispatch sheds the youngest-virtual-arrival queued job
  /// as kShed. 0 = shedding off.
  std::uint64_t shed_target_ns = 0;
  /// Sustained-overload window before shedding engages; 0 = shed_target_ns.
  std::uint64_t shed_interval_ns = 0;
  /// Per-tenant retry token bucket: tokens per virtual second (dispatch
  /// clock) a tenant may spend on extra guarded attempts beyond each job's
  /// first. 0 = budget off (attempts bounded only by the job's ladder).
  /// Grants are debited at dispatch — the one bit-deterministic point —
  /// so the budget bounds *granted* attempts, which bounds consumed ones.
  double retry_budget_per_sec = 0;
  /// Bucket capacity in tokens; 0 = max(1, retry_budget_per_sec).
  double retry_budget_burst = 0;
  /// Cap on retry tokens one dispatch may take from the bucket (bounds the
  /// pessimism of debit-at-dispatch). Only meaningful with a budget.
  std::uint32_t retry_tokens_per_job = 4;
  /// Degradation-ladder depth applied to every job's guarded execution:
  /// -1 = unlimited (the full ladder), 0 = retries only, N = at most N
  /// plan changes (GuardPolicy::max_degrade_rungs).
  int max_degrade_rungs = -1;
};

/// Per-tenant accounting.
struct TenantStats {
  double weight = 1.0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  ///< includes failed (executed) jobs
};

/// Whole-service counters, surfaced into accred.bench records by the
/// service_throughput driver.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue = 0;   ///< occupancy backpressure
  std::uint64_t rejected_memory = 0;  ///< memory-budget backpressure
  std::uint64_t completed = 0;        ///< executed and verified
  std::uint64_t failed = 0;           ///< executed, ladder exhausted / F cell
  std::uint64_t recovered = 0;        ///< verified after >= 1 failed attempt
  std::uint64_t degraded = 0;         ///< verified on a degraded rung
  std::uint64_t cancelled = 0;          ///< client-cancelled (queued or mid-run)
  std::uint64_t deadline_exceeded = 0;  ///< modeled wait passed the deadline
  std::uint64_t shed = 0;               ///< dropped by overload shedding
  std::uint64_t rejected_breaker = 0;   ///< fast-failed on an open breaker
  std::uint64_t breaker_opens = 0;      ///< breaker open transitions (incl. reopens)
  std::uint64_t queued = 0;           ///< admitted, not yet dispatched
  std::uint64_t inflight = 0;         ///< dispatched, not yet complete
  std::size_t admitted_bytes = 0;     ///< reserved against the memory budget
  PlanCacheStats cache;
};

class ReductionService {
public:
  explicit ReductionService(ServiceConfig cfg = {},
                            std::vector<TenantConfig> tenants = {});
  /// Stops accepting, finishes in-flight jobs, and fails still-queued ones
  /// with kRejected("service stopped"). Call drain() first for a clean end.
  ~ReductionService();

  ReductionService(const ReductionService&) = delete;
  ReductionService& operator=(const ReductionService&) = delete;

  /// Submit asynchronously; the future resolves when the job completes
  /// (or immediately, for admission rejections).
  [[nodiscard]] std::future<JobResult> submit(JobSpec spec);
  /// Callback flavor: runs on the executing worker thread (or inline on
  /// the submitting thread for rejections). Must not block.
  void submit(JobSpec spec, std::function<void(JobResult)> callback);

  /// Pause / resume dispatch. Admission keeps running while paused.
  void pause();
  void resume();
  /// Block until every admitted job has completed. Dispatch must be
  /// running (resume() first if paused) or this never returns.
  void drain();
  /// Bounded drain: wait at most `timeout`, then return the number of
  /// still-undelivered jobs (0 = fully drained). A liveness regression
  /// then fails a test in seconds instead of hanging it.
  [[nodiscard]] std::uint64_t drain(std::chrono::nanoseconds timeout);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::map<std::string, TenantStats> tenant_stats() const;
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

  /// Telemetry registry (DESIGN.md §14): lifecycle counters plus latency /
  /// occupancy histograms from the virtual service timeline. Always
  /// collected (the registry is cheap); emission into records is what
  /// --metrics gates. At a quiescent point (after drain()) the contents
  /// are a pure function of the submission sequence — bit-identical for
  /// any worker count and any --sim-threads.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  /// metrics().to_json() — the schema-v3 "telemetry" section.
  [[nodiscard]] obs::Json metrics_json() const;

  /// Admission-time estimate of a job's device footprint in bytes (input
  /// + temp copy + per-instance outputs + worst-case staging buffers).
  /// A pure function of the spec, so admission decisions are reproducible.
  [[nodiscard]] static std::size_t estimate_bytes(const JobSpec& spec);

  /// Spec-pure estimate of a job's service time on the dispatch clock
  /// (DESIGN.md §16): the resilience decisions (deadlines, shedding, retry
  /// refill) need a clock that exists *before* the job runs, so they pace
  /// on this estimate while the telemetry timeline keeps the modeled
  /// truth. ~200 bytes/ns of the admission byte estimate.
  [[nodiscard]] static std::uint64_t estimate_service_ns(const JobSpec& spec);

private:
  struct Pending {
    JobSpec spec;
    acc::ExecutionPlan plan;
    bool cache_hit = false;
    std::uint64_t id = 0;
    std::size_t bytes = 0;
    std::uint64_t est_ns = 0;      ///< estimate_service_ns(spec), at admission
    std::uint64_t varrival_ns = 0; ///< arrival on the dispatch clock
    /// Attempt cap granted by the retry budget at dispatch (1 + tokens
    /// taken); 0 = budget off, ladder bounds attempts.
    int attempts_granted = 0;
    std::promise<JobResult> promise;
    bool want_future = false;
    std::function<void(JobResult)> callback;
    std::chrono::steady_clock::time_point submitted_at;
    double enqueue_us = 0;  ///< trace timestamp of the enqueue (trace only)
  };

  /// Circuit-breaker state machine (DESIGN.md §16): kClosed counts
  /// consecutive structured failures at the timeline cursor; kOpen
  /// fast-fails submissions until the virtual cooldown elapses; kHalfOpen
  /// admits one probe whose verdict closes or reopens the breaker.
  enum class Breaker : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Tenant {
    double weight = 1.0;
    double pass = 0.0;  ///< virtual finish time of the next dispatch
    std::deque<Pending> queue;
    TenantStats stats;
    // Breaker state, advanced only at deterministic points: transitions at
    // the timeline cursor (admission order), reads at submission.
    Breaker breaker = Breaker::kClosed;
    std::uint32_t consecutive_failures = 0;
    std::uint64_t breaker_open_until_ns = 0;  ///< timeline clock
    bool probe_inflight = false;
    // Retry token bucket (fixed point: 1 token = kTokenUnit units),
    // refilled on the dispatch clock, debited at dispatch.
    std::uint64_t bucket_units = 0;
    std::uint64_t bucket_refill_ns = 0;
    bool bucket_primed = false;  ///< bucket starts full on first touch
  };

  /// One admitted job's slot on the virtual service timeline — the
  /// deterministic replacement for wall-clock queue waits (DESIGN.md §14).
  /// Slots are indexed by job id - 1 (ids are handed out in admission
  /// order), filled at completion, and consumed strictly in admission
  /// order by advance_virtual_timeline()'s cursor, so the derived
  /// histograms never see the completion interleaving.
  /// Breaker-relevant outcome of a consumed slot: only kFailed counts
  /// toward (and kOk resets) the consecutive-failure count; kNeutral —
  /// cancelled, deadline-exceeded, shed, doomed — does neither.
  enum class SlotVerdict : std::uint8_t { kNeutral, kOk, kFailed };

  struct VirtualSlot {
    bool done = false;
    std::uint64_t device_ns = 0;  ///< modeled device time (0 if never ran)
    std::uint64_t finish_ns = 0;  ///< virtual departure, set by the cursor
    std::uint64_t bytes = 0;      ///< admission-time footprint estimate
    std::string tenant;
    SlotVerdict verdict = SlotVerdict::kNeutral;
    bool probe = false;  ///< the half-open breaker's single probe job
  };

  /// Admission + enqueue shared by both submit flavors. On backpressure
  /// the job's future/callback is fulfilled immediately with kRejected
  /// and this returns false.
  bool admit(Pending&& job);
  void worker_main(std::uint32_t worker_index);
  void run_job(Pending job, std::uint32_t worker_index);
  /// Terminal resolution without launching (cancelled while queued,
  /// deadline exceeded, shed): books counters + the timeline slot
  /// (kNeutral verdict), emits the lifecycle span, delivers the result.
  void resolve_unlaunched(Pending job, JobStatus status, std::string reason);
  void finish(Pending& job, JobResult result);
  /// Mark job `id`'s slot complete with `device_ms` of modeled device time
  /// and `verdict` for the breaker, and advance the timeline cursor over
  /// every consecutive done slot (breaker transitions happen there, in
  /// admission order). Caller holds mu_.
  void complete_virtual(std::uint64_t id, double device_ms,
                        SlotVerdict verdict);

  ServiceConfig cfg_;
  PlanCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: job queued / stop
  std::condition_variable idle_cv_;  ///< drain(): undelivered count hit zero
  std::map<std::string, Tenant> tenants_;
  double virtual_time_ = 0.0;  ///< WFQ clock: pass of the last dispatch
  std::uint64_t next_id_ = 1;
  std::uint64_t open_jobs_ = 0;  ///< admitted, not yet complete (the budget)
  /// Admitted, result not yet delivered. Trails open_jobs_ by the delivery
  /// window: the budget frees as soon as a job's work is done (so
  /// completion-paced clients are never back-pressured), while drain()
  /// waits for this — every future ready, every callback run.
  std::uint64_t undelivered_ = 0;
  std::uint64_t queued_ = 0;
  std::size_t admitted_bytes_ = 0;
  bool paused_ = false;
  bool stop_ = false;
  ServiceStats stats_;

  /// Telemetry (DESIGN.md §14). The registry's own locks are leaves —
  /// taken under mu_ by the timeline cursor, never the other way around.
  obs::MetricsRegistry metrics_;
  /// Virtual timeline state, all guarded by mu_: arrivals are paced at the
  /// running mean device time (utilization 1), start times follow the
  /// Lindley recursion start = max(arrival, previous finish).
  std::vector<VirtualSlot> timeline_;    ///< slot i = job id i + 1
  std::size_t vcursor_ = 0;              ///< next slot to consume
  std::size_t vretire_ = 0;              ///< first slot still in system
  std::uint64_t varrival_ns_ = 0;        ///< arrival of the last consumed
  std::uint64_t vfinish_ns_ = 0;         ///< finish of the last consumed
  std::uint64_t vtotal_device_ns_ = 0;   ///< device-time sum of consumed
  std::uint64_t vbytes_in_system_ = 0;   ///< footprint of unretired slots

  /// Dispatch clock (DESIGN.md §16), all guarded by mu_: a second Lindley
  /// recursion over *estimated* service times, advanced at admission
  /// (arrival pacing) and at each dispatch pick. Deadlines, shedding and
  /// retry refills read it — unlike the telemetry timeline above, it is
  /// known before a job runs, so dispatch decisions can use it and stay a
  /// pure function of the dispatch sequence.
  std::uint64_t dnow_ns_ = 0;        ///< virtual server finish
  std::uint64_t darrival_ns_ = 0;    ///< arrival of the last admitted job
  std::uint64_t dtotal_est_ns_ = 0;  ///< estimate sum over admitted jobs
  std::uint64_t dadmitted_ = 0;      ///< jobs admitted (arrival pacing)
  std::uint64_t shed_first_above_ns_ = 0;  ///< CoDel: wait first crossed target

  std::vector<std::thread> workers_;
};

}  // namespace accred::service
