// Service job vocabulary: what one tenant submission to the reduction
// service (service.hpp) looks like, and the (source -> parse -> analyze ->
// plan) pipeline a cache miss pays. A job is a Table-2-shaped reduction —
// position x operator x dtype at a runtime extent — expressed as OpenACC
// directive *source text*, exactly the unit of work the front half of the
// acc pipeline was built to consume; the plan cache (plan_cache.hpp)
// exists so repeat traffic skips this whole module.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "acc/planner.hpp"
#include "acc/profiles.hpp"
#include "testsuite/cases.hpp"
#include "testsuite/runner.hpp"

namespace accred::service {

/// One tenant submission: which reduction to run, at what extent, with
/// which per-job options. Buffers are owned by the executing worker (one
/// simulated Device per job — see DESIGN.md §13 on fault isolation).
struct JobSpec {
  std::string tenant = "default";
  acc::CompilerId compiler = acc::CompilerId::kOpenUH;
  testsuite::CaseSpec kase;  ///< position x operator x dtype
  /// Reduction-loop extent (the Table 2 "r"); total volume is 64 x this.
  std::int64_t reduction_extent = 1 << 12;
  /// Cascaded-chain job: per-stage ops, innermost first (vector, worker,
  /// gang). Empty = scalar job at `kase`. When set (must be exactly 3
  /// ops), planning goes through plan_chained() and yields one fused
  /// kFusedCascade plan instead of N per-level launches; `kase.pos` and
  /// `kase.op` are ignored for planning but still name the verification
  /// cell the runner checks (use kGangWorkerVector + the outermost op).
  std::vector<acc::ReductionOp> chain_ops;
  /// Include the Fig. 4-style parallel copy on the non-reducing levels.
  bool parallel_work = true;
  acc::LaunchConfig config{};  ///< launch geometry knobs
  /// Per-job fault-injection spec (faultinject.hpp grammar); "" = clean.
  /// Faults are armed on this job's own device and launches only — one
  /// tenant's campaign never perturbs another tenant's results.
  std::string faults;
  /// Same-configuration re-runs before the degradation ladder engages.
  int max_retries = 1;
  bool degrade = true;  ///< walk the degradation ladder after retries
  /// Host worker threads per kernel launch (0 = process default). Results
  /// are bit-identical for every value (DESIGN.md §7).
  std::uint32_t sim_threads = 0;
  /// Deadline on the *modeled* queue wait, in virtual nanoseconds on the
  /// service's dispatch clock (DESIGN.md §16): a job still queued when its
  /// modeled wait exceeds this resolves as kDeadlineExceeded without ever
  /// launching. 0 = no deadline. Virtual-clock comparison keeps the
  /// decision bit-deterministic for any worker count.
  std::uint64_t deadline_ns = 0;
  /// Client-visible cancellation (gpusim/pool.hpp). The client keeps one
  /// end; the service checks it at dispatch (a cancelled queued job
  /// resolves kCancelled without launching) and wires it into every kernel
  /// the job launches, so a running job terminates cooperatively with a
  /// structured kCancelled. Cancelling after delivery is a no-op. For
  /// deterministic mid-flight cancels use CancelToken::cancel_at_launch().
  std::shared_ptr<gpusim::CancelToken> cancel;
};

/// Terminal state of a submission.
enum class JobStatus : std::uint8_t {
  kOk,        ///< executed and verified against the sequential fold
  kFailed,    ///< executed but every rung of the degradation ladder failed
  kRejected,  ///< refused at admission (backpressure) — never executed
  kCancelled,         ///< client cancelled (queued or mid-run) — structured
  kDeadlineExceeded,  ///< modeled queue wait passed the deadline; never ran
  kShed,              ///< dropped by overload shedding (CoDel); never ran
  kCircuitOpen,       ///< fast-failed: the tenant's circuit breaker is open
};

[[nodiscard]] std::string_view to_string(JobStatus s);

/// What the service hands back through the future / callback.
struct JobResult {
  JobStatus status = JobStatus::kRejected;
  std::uint64_t job_id = 0;
  std::string tenant;
  /// Why the job never launched: set for kRejected, kCircuitOpen, kShed,
  /// kDeadlineExceeded, and for kCancelled jobs cancelled while queued.
  std::string reject_reason;
  /// Full execution outcome (stats, device_ms, degradation history,
  /// result_hash) when the job ran; default-constructed for rejections.
  testsuite::CaseOutcome outcome;
  bool plan_cache_hit = false;  ///< planning was skipped entirely
  double queue_ms = 0;    ///< admission -> dispatch (host wall clock)
  double service_ms = 0;  ///< admission -> completion (host wall clock)
};

/// The job's directive source text: one `#pragma acc loop ...` line per
/// loop of the nest, written the way a user of the job's compiler writes
/// it (single clause under the auto-detect discipline, clause-on-every-
/// spanned-level under the CAPS discipline).
[[nodiscard]] std::vector<std::string> job_source(const JobSpec& job);

/// The cache-miss path: render the job's directive source, parse it back
/// through acc::parse_loop_directive, rebuild the annotated nest, and
/// analyze + plan it. Throws acc::AnalysisError for cells the compiler
/// profile rejects (robustness CE cells).
[[nodiscard]] acc::ExecutionPlan plan_job(const JobSpec& job);

/// RunnerOptions equivalent to this job's knobs (the executing worker
/// feeds them to testsuite::Runner).
[[nodiscard]] testsuite::RunnerOptions runner_options(const JobSpec& job);

}  // namespace accred::service
