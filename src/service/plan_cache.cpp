#include "service/plan_cache.hpp"

#include <bit>

namespace accred::service {

std::uint32_t extent_bucket(std::int64_t n) {
  if (n <= 1) return 0;
  return static_cast<std::uint32_t>(
      std::bit_width(static_cast<std::uint64_t>(n - 1)));
}

PlanKey key_of(const JobSpec& job) {
  PlanKey k;
  k.compiler = job.compiler;
  k.pos = job.kase.pos;
  k.op = job.kase.op;
  k.type = job.kase.type;
  k.extent_bucket = extent_bucket(job.reduction_extent);
  k.num_gangs = job.config.num_gangs;
  k.num_workers = job.config.num_workers;
  k.vector_length = job.config.vector_length;
  // 8 bits per stage, innermost first; plan_job rejects chains longer
  // than 3 stages, so 4 lanes can never truncate a valid key.
  for (std::size_t s = 0; s < job.chain_ops.size() && s < 4; ++s) {
    k.chain |= (static_cast<std::uint32_t>(job.chain_ops[s]) + 1)
               << (8 * s);
  }
  k.parallel_work = job.parallel_work;
  return k;
}

std::string to_string(const PlanKey& k) {
  std::string out;
  out += acc::to_string(k.compiler);
  out += '/';
  out += acc::to_string(k.pos);
  out += '/';
  out += acc::to_string(k.op);
  out += '/';
  out += acc::to_string(k.type);
  out += "/b" + std::to_string(k.extent_bucket);
  out += '/' + std::to_string(k.num_gangs) + 'x' +
         std::to_string(k.num_workers) + 'x' +
         std::to_string(k.vector_length);
  if (k.chain != 0) {
    out += "/chain:";
    for (std::uint32_t packed = k.chain; packed != 0; packed >>= 8) {
      if (packed != k.chain) out += ',';
      out += acc::to_string(
          static_cast<acc::ReductionOp>((packed & 0xff) - 1));
    }
  }
  if (!k.parallel_work) out += "/no-copy";
  return out;
}

std::size_t PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  // SplitMix64-style fold over the packed fields.
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t h = mix(static_cast<std::uint64_t>(k.compiler) |
                        static_cast<std::uint64_t>(k.pos) << 8 |
                        static_cast<std::uint64_t>(k.op) << 16 |
                        static_cast<std::uint64_t>(k.type) << 24 |
                        std::uint64_t{k.parallel_work} << 32 |
                        static_cast<std::uint64_t>(k.extent_bucket) << 40);
  // The geometry fields are full 32-bit values, so each gets its own
  // 32-bit lane and rounds chain through mix (h = mix(h ^ next)) rather
  // than XOR-ing independent mixes. The old packing shifted num_workers
  // by only 24 bits, which aliased {num_gangs = 1 << 24} with
  // {num_workers = 1} (pinned by tests/service/test_plan_cache.cpp).
  h = mix(h ^ (static_cast<std::uint64_t>(k.num_gangs) |
               static_cast<std::uint64_t>(k.num_workers) << 32));
  h = mix(h ^ (static_cast<std::uint64_t>(k.vector_length) |
               static_cast<std::uint64_t>(k.chain) << 32));
  return static_cast<std::size_t>(h);
}

void rebind_plan(acc::ExecutionPlan& plan, const JobSpec& job) {
  if (!job.chain_ops.empty()) {
    // Fused cascade plans always live at the gang-worker-vector nest shape
    // regardless of the job's declared scalar position.
    plan.dims = testsuite::case_geometry(acc::Position::kGangWorkerVector,
                                         job.reduction_extent)
                    .dims;
    plan.same_loop_extent = 0;
    plan.strategy.sim = gpusim::SimOptions{};
    return;
  }
  const testsuite::CaseGeometry geo =
      testsuite::case_geometry(job.kase.pos, job.reduction_extent);
  if (job.kase.pos == acc::Position::kSameLineGangWorkerVector) {
    // Mirror the planner exactly (plan_reduction reads every dims slot off
    // the one multi-bound loop), so a rebound cached plan compares
    // field-for-field equal to planning from scratch.
    plan.same_loop_extent = geo.same_loop_extent;
    plan.dims = {geo.same_loop_extent, geo.same_loop_extent,
                 geo.same_loop_extent};
  } else {
    plan.dims = geo.dims;
    plan.same_loop_extent = 0;
  }
  plan.strategy.sim = gpusim::SimOptions{};
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  stats_.capacity = capacity_;
}

acc::ExecutionPlan PlanCache::get_or_plan(const JobSpec& job, bool* hit) {
  const PlanKey key = key_of(job);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (const auto it = map_.find(key); it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      ++stats_.hits;
      if (hit != nullptr) *hit = true;
      acc::ExecutionPlan plan = it->second->second;
      rebind_plan(plan, job);
      return plan;
    }
  }
  // Plan outside the lock: a miss pays the full pipeline, and concurrent
  // misses on distinct keys should not serialize behind it. A concurrent
  // duplicate miss plans twice and inserts once — harmless, since plans
  // for one key are identical by construction.
  acc::ExecutionPlan planned = plan_job(job);
  acc::ExecutionPlan out = planned;
  rebind_plan(out, job);
  // Cache the canonical form (default SimOptions) so every hit starts
  // from the same bits no matter which job planted the entry.
  rebind_plan(planned, job);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    if (const auto it = map_.find(key); it == map_.end()) {
      lru_.emplace_front(key, std::move(planned));
      map_.emplace(key, lru_.begin());
      if (lru_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
      }
    }
    stats_.size = lru_.size();
  }
  if (hit != nullptr) *hit = false;
  return out;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  PlanCacheStats s = stats_;
  s.size = lru_.size();
  return s;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  map_.clear();
  stats_ = PlanCacheStats{};
  stats_.capacity = capacity_;
}

}  // namespace accred::service
