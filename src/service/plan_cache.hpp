// Plan cache for the reduction service: repeat traffic with the same
// reduction shape skips the whole source -> parse -> analyze -> plan
// pipeline (job.cpp) and reuses the cached ExecutionPlan. The RedFuser
// observation the ROADMAP names — planning work is highly reusable across
// repeated reduction shapes — applied to our acc planner.
//
// Key: (compiler, position, op, dtype, extent-bucket, launch geometry,
// parallel-work flag) — everything the planner's *decisions* depend on.
// The planner's decisions (strategy kind, staging, layouts, buffer sizes)
// are extent-independent; only the iteration extents vary inside a bucket,
// so a hit rebinds the cached plan's dims to the job's exact extents and
// is bit-identical to planning from scratch (pinned by
// tests/service/test_plan_cache.cpp). Extents are still bucketed by
// ceil(log2) in the key so any future extent-*dependent* planning rule
// (e.g. an autotuner picking geometry per size class) stays cacheable,
// and so key cardinality is bounded for admission-time estimates.
//
// Thread safe; eviction is strict LRU, so hit/miss/eviction counters are
// deterministic for any single-threaded submission order (the bench
// driver submits from one thread precisely to keep them gateable).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "service/job.hpp"

namespace accred::service {

/// Everything the planner's decisions can depend on, normalized.
struct PlanKey {
  acc::CompilerId compiler = acc::CompilerId::kOpenUH;
  acc::Position pos = acc::Position::kGang;
  acc::ReductionOp op = acc::ReductionOp::kSum;
  acc::DataType type = acc::DataType::kInt32;
  std::uint32_t extent_bucket = 0;  ///< ceil(log2(reduction_extent))
  std::uint32_t num_gangs = 0;
  std::uint32_t num_workers = 0;
  std::uint32_t vector_length = 0;
  /// Packed cascade-chain ops, innermost stage first, 8 bits per stage
  /// holding op+1; 0 = scalar job (no chain). Fused kFusedCascade plans
  /// differ structurally from the scalar plan at the same (pos, op, type),
  /// so the chain must participate in both equality and the hash.
  std::uint32_t chain = 0;
  bool parallel_work = true;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

[[nodiscard]] PlanKey key_of(const JobSpec& job);

/// Render for diagnostics / eviction tests ("openuh/gang/+/int/b12/...").
[[nodiscard]] std::string to_string(const PlanKey& k);

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept;
};

/// Counters surfaced through the obs layer (bench records and
/// ServiceStats). hit_rate() follows the record naming conventions:
/// exported as a "hit_rate" metric, which bench_diff treats as
/// higher-is-better (obs/diff.cpp).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t size = 0;
  std::uint64_t capacity = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class PlanCache {
public:
  /// `capacity` = max cached plans; at least 1.
  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  /// The service default: comfortably above the full testsuite grid
  /// (7 positions x 9 ops x 5 types) times a handful of extent buckets.
  static constexpr std::size_t kDefaultCapacity = 512;

  /// Cached plan for the job's key — planned via plan_job() and inserted
  /// on miss, evicting the least-recently-used entry past capacity. The
  /// returned plan is rebound to the job's exact extents and carries
  /// default SimOptions (callers apply per-job sim knobs afterwards).
  /// `hit` (optional) reports whether planning was skipped.
  [[nodiscard]] acc::ExecutionPlan get_or_plan(const JobSpec& job,
                                               bool* hit = nullptr);

  [[nodiscard]] PlanCacheStats stats() const;
  void clear();

private:
  using LruList = std::list<std::pair<PlanKey, acc::ExecutionPlan>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, LruList::iterator, PlanKeyHash> map_;
  PlanCacheStats stats_;
};

/// Rebind a cached plan to a job's exact extents: recompute the iteration
/// dims (testsuite::case_geometry) and reset SimOptions; every planner
/// decision (kind, strategy, launch geometry, buffer sizes) is reused.
void rebind_plan(acc::ExecutionPlan& plan, const JobSpec& job);

/// ceil(log2(n)) bucket index (0 for n <= 1).
[[nodiscard]] std::uint32_t extent_bucket(std::int64_t n);

}  // namespace accred::service
