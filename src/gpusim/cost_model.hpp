// Analytic Kepler (K20c) cost model, fed by memory/ALU/barrier events that
// the SIMT scheduler records while simulating a kernel.
//
// The model is intentionally simple but captures exactly the effects the
// paper attributes performance differences to:
//   * global-memory coalescing: each warp's k-th global access forms a
//     "request group"; its cost is the number of 128-byte segments the
//     group's lanes touch (Fig. 6 and the window-sliding-vs-blocking
//     discussion in §3.1.3),
//   * shared-memory bank conflicts: a group's cost is its serialization
//     degree over the 32 four-byte banks (Fig. 6b vs. 6c, Fig. 8b vs. 8c),
//   * barriers: syncthreads costs scale with resident warps, syncwarp is
//     free on Kepler's SIMD-synchronous warps (§3.1.2),
//   * occupancy: blocks are distributed round-robin over 13 SMs; a launch
//     that only produces 2 populated blocks (the paper's single-level
//     vector/worker cases) leaves 11 SMs idle,
//   * kernel-launch overhead: the gang / RMP strategies pay for a second
//     kernel.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "gpusim/dim3.hpp"
#include "gpusim/error.hpp"
#include "gpusim/faultinject.hpp"
#include "gpusim/racecheck.hpp"
#include "obs/profiler.hpp"

namespace accred::gpusim {

/// Model constants, all in nanoseconds (per event) unless noted. Calibrated
/// once against the OpenUH column of the paper's Table 2 (see
/// EXPERIMENTS.md); treat as a fixed device description, not a tuning knob
/// per experiment.
struct CostParams {
  double launch_overhead_ns = 5000.0;  ///< per kernel launch
  double gmem_segment_ns = 60.0;       ///< per 128B segment per warp group
                                       ///< (latency-dominated; see below)
  double smem_cycle_ns = 4.0;          ///< per (conflict-serialized) shared access
  double alu_ns = 1.0;                 ///< per charged ALU unit (warp-max lane)
  double barrier_ns = 150.0;           ///< per syncthreads per block
  double h2d_bandwidth_gbs = 6.0;      ///< PCIe gen2 x16 effective
  double dev_bandwidth_gbs = 150.0;    ///< device-wide DRAM floor
  double warp_ilp = 4.0;               ///< quad warp scheduler
  // Calibration note: the per-warp segment cost is deliberately closer to
  // amortized access latency than to pure DRAM throughput. The paper's
  // Table 2 magnitudes (e.g. 274 ms for the 2-gang vector case) imply its
  // generated kernels ran SM-latency-bound, not bandwidth-bound; with a
  // throughput-level segment cost the single-level cases would collapse
  // onto the DRAM floor and the occupancy shapes of Table 2 would vanish.
};

/// Totals accumulated over one kernel launch.
struct LaunchStats {
  std::uint64_t blocks = 0;
  std::uint64_t threads = 0;
  std::uint64_t gmem_requests = 0;    ///< warp-level access groups
  std::uint64_t gmem_segments = 0;    ///< 128B transactions after coalescing
  std::uint64_t gmem_bytes = 0;       ///< useful bytes moved
  std::uint64_t smem_requests = 0;    ///< warp-level shared access groups
  std::uint64_t smem_cycles = 0;      ///< groups weighted by conflict degree
  std::uint64_t barriers = 0;         ///< block-wide syncthreads executed
  std::uint64_t syncwarps = 0;
  double alu_units = 0;               ///< sum over warps of per-epoch lane max
  double device_time_ns = 0;          ///< modeled kernel time
  double wall_time_ns = 0;            ///< host simulation time (informational)
  /// Per-stage attribution of the event totals above (obs/profiler.hpp),
  /// populated only when the launch ran with profiling on — empty (and
  /// allocation-free) otherwise. operator+= merges tables by stage name,
  /// so multi-kernel strategies accumulate one profile across launches.
  obs::StageTable profile;
  /// Dynamic race detection results (racecheck.hpp): whether this launch
  /// ran under the detector, the exact conflicting-pair count, and the
  /// first reports (deduplicated per word and hazard kind, capped at
  /// RaceChecker::kMaxReportsPerLaunch). Empty — and allocation-free —
  /// when racecheck is off; operator+= ORs the flag and concatenates
  /// reports up to the cap, so multi-kernel strategies accumulate one
  /// race summary across launches.
  bool racecheck = false;
  std::uint64_t races = 0;
  std::vector<RaceReport> race_reports;
  /// Blocks that saw CUDA-UB barrier behaviour the lenient default rode
  /// through (scheduler.cpp): threads exiting while peers wait, or threads
  /// meeting at different syncthreads call sites. Zero for every correct
  /// kernel — emitted in records only when nonzero, so baselines are safe.
  std::uint64_t barrier_exit_divergence = 0;
  std::uint64_t barrier_site_mismatch = 0;
  /// Fault injection (faultinject.hpp): whether this launch ran with a
  /// fault plan armed, and the faults that fired, merged block-ordered.
  /// Both empty/false — and allocation-free — with injection off.
  bool faults_armed = false;
  std::vector<FaultEvent> fault_events;
  /// The structured failure a recovering harness (testsuite runner or the
  /// degradation executor) caught for this launch; code == kNone for every
  /// successful launch, and the field is only serialized when set.
  LaunchErrorInfo error;

  LaunchStats& operator+=(const LaunchStats& o);
};

/// Derived convenience metrics.
[[nodiscard]] double coalescing_efficiency(const LaunchStats& s);
[[nodiscard]] double bank_conflict_factor(const LaunchStats& s);

/// Per-warp event log. One lives per warp of the block currently being
/// simulated. Lanes execute sequentially between barriers, so the log
/// groups "the k-th access of each lane" into one warp request, finalizing
/// groups at epoch boundaries (barriers / block end) or when the bounded
/// window overflows.
class WarpLog {
public:
  static constexpr std::uint32_t kWarpSize = 32;
  /// Pending-group windows. Lanes execute sequentially within an epoch, so
  /// the table must hold one full lane's epoch of accesses; the scheduler
  /// calls flush_pending() when a warp's pass completes, so at most one
  /// warp's table is ever populated. These are safety valves sized above
  /// any per-lane epoch in the paper's workloads; a retired group hit by a
  /// late lane is counted as a fresh uncoalesced request.
  static constexpr std::size_t kGlobalWindow = 1 << 20;
  static constexpr std::size_t kSharedWindow = 1 << 16;

  /// Arm the log for a new block; `params` must outlive the block run.
  /// `prof` (optional) receives per-stage attribution of every event the
  /// log books — it must outlive the block run too.
  void reset(const CostParams& params, obs::StageTable* prof = nullptr);

  /// Set the stage subsequent events of `lane` are attributed to
  /// (thread_ctx.hpp's prof_scope). Ignored when profiling is off.
  void set_lane_stage(std::uint32_t lane, std::uint16_t stage) noexcept {
    lane_stage_[lane] = stage;
  }

  /// Record a global-memory access of `bytes` bytes at device virtual
  /// address `vaddr` by `lane`.
  void global_access(std::uint32_t lane, std::uint64_t vaddr,
                     std::uint32_t bytes);

  /// Record a shared-memory access at byte offset `offset` by `lane`.
  void shared_access(std::uint32_t lane, std::uint32_t offset,
                     std::uint32_t bytes);

  /// Charge `units` of per-lane arithmetic work.
  void alu(std::uint32_t lane, double units) {
    lane_alu_[lane] += units;
    if (prof_) {
      prof_->row(lane_stage_[lane]).alu_units += units;
      mark_active(lane);
    }
  }

  /// Close the current epoch (barrier or end of block): finalize all pending
  /// groups, fold the epoch's lane-max ALU charge in, and return this
  /// epoch's cost for this warp. The scheduler combines warp epoch costs
  /// into a block epoch cost (max for latency-bound, sum/ILP for
  /// throughput-bound blocks).
  [[nodiscard]] double end_epoch();

  /// Finalize all pending groups without closing the epoch. The scheduler
  /// calls this when every lane of the warp has finished its pass (all at
  /// the block barrier or done), bounding pending-table memory to one
  /// warp's pass at a time.
  void flush_pending();

  // Raw tallies for LaunchStats.
  std::uint64_t gmem_requests = 0;
  std::uint64_t gmem_segments = 0;
  std::uint64_t gmem_bytes = 0;
  std::uint64_t smem_requests = 0;
  std::uint64_t smem_cycles = 0;
  double alu_total = 0;

private:
  /// Global access group: distinct 128B lines tracked with a 64-line bitmap
  /// anchored at the first line seen; lanes outside the bitmap span count as
  /// one segment each (exact for strides >= 128B). Tagged with the stage of
  /// the lane that opened the group (lanes of one warp move through scopes
  /// together, so the opener's stage is the group's stage).
  struct GlobalGroup {
    std::int64_t base_line = -1;
    std::uint64_t bitmap = 0;
    std::uint32_t overflow = 0;
    std::uint32_t bytes = 0;
    std::uint16_t stage = 0;
  };
  /// Shared access group: per-bank word sets, tracked exactly (<= 32 lanes).
  struct SharedGroup {
    std::array<std::uint32_t, kWarpSize> word{};  // word address per entry
    std::uint8_t n = 0;
    std::uint16_t stage = 0;
  };

  void finalize_global(const GlobalGroup& g);
  void finalize_shared(const SharedGroup& g);

  /// Record lane activity in its current stage for this epoch's
  /// divergence histogram. Only called while profiling is armed.
  void mark_active(std::uint32_t lane);

  const CostParams* params_ = nullptr;
  obs::StageTable* prof_ = nullptr;
  double epoch_cost_ = 0;
  std::deque<GlobalGroup> gpending_;
  std::deque<SharedGroup> spending_;
  std::uint64_t gbase_ = 0;  ///< group index of gpending_.front()
  std::uint64_t sbase_ = 0;
  std::array<std::uint64_t, kWarpSize> lane_gk_{};  ///< next global index per lane
  std::array<std::uint64_t, kWarpSize> lane_sk_{};
  std::array<double, kWarpSize> lane_alu_{};  ///< current-epoch ALU per lane
  std::array<std::uint16_t, kWarpSize> lane_stage_{};  ///< current stage per lane
  /// Current-epoch (stage, active-lane mask) pairs — a handful of entries
  /// (stages touched since the last barrier); folded into the stage
  /// occupancy histograms at end_epoch().
  std::vector<std::pair<std::uint16_t, std::uint32_t>> epoch_active_;
};

/// Computes the modeled kernel time from per-block costs.
///
/// Blocks are assigned to SMs round-robin in issue order; the launch is done
/// when the busiest SM drains, with a device-wide DRAM bandwidth floor.
[[nodiscard]] double estimate_device_time(
    const CostParams& p, const DeviceLimits& lim,
    const std::vector<double>& block_costs_ns, std::uint64_t gmem_bytes);

}  // namespace accred::gpusim
