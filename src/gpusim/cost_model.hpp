// Analytic Kepler (K20c) cost model, fed by memory/ALU/barrier events that
// the SIMT scheduler records while simulating a kernel.
//
// The model is intentionally simple but captures exactly the effects the
// paper attributes performance differences to:
//   * global-memory coalescing: each warp's k-th global access forms a
//     "request group"; its cost is the number of 128-byte segments the
//     group's lanes touch (Fig. 6 and the window-sliding-vs-blocking
//     discussion in §3.1.3),
//   * shared-memory bank conflicts: a group's cost is its serialization
//     degree over the 32 four-byte banks (Fig. 6b vs. 6c, Fig. 8b vs. 8c),
//   * barriers: syncthreads costs scale with resident warps, syncwarp is
//     free on Kepler's SIMD-synchronous warps (§3.1.2),
//   * occupancy: blocks are distributed round-robin over 13 SMs; a launch
//     that only produces 2 populated blocks (the paper's single-level
//     vector/worker cases) leaves 11 SMs idle,
//   * kernel-launch overhead: the gang / RMP strategies pay for a second
//     kernel.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "gpusim/dim3.hpp"
#include "gpusim/error.hpp"
#include "gpusim/faultinject.hpp"
#include "gpusim/racecheck.hpp"
#include "obs/profiler.hpp"

namespace accred::gpusim {

/// Model constants, all in nanoseconds (per event) unless noted. Calibrated
/// once against the OpenUH column of the paper's Table 2 (see
/// EXPERIMENTS.md); treat as a fixed device description, not a tuning knob
/// per experiment.
struct CostParams {
  double launch_overhead_ns = 5000.0;  ///< per kernel launch
  double gmem_segment_ns = 60.0;       ///< per 128B segment per warp group
                                       ///< (latency-dominated; see below)
  double smem_cycle_ns = 4.0;          ///< per (conflict-serialized) shared access
  double alu_ns = 1.0;                 ///< per charged ALU unit (warp-max lane)
  double barrier_ns = 150.0;           ///< per syncthreads per block
  double h2d_bandwidth_gbs = 6.0;      ///< PCIe gen2 x16 effective
  double dev_bandwidth_gbs = 150.0;    ///< device-wide DRAM floor
  double warp_ilp = 4.0;               ///< quad warp scheduler
  // Calibration note: the per-warp segment cost is deliberately closer to
  // amortized access latency than to pure DRAM throughput. The paper's
  // Table 2 magnitudes (e.g. 274 ms for the 2-gang vector case) imply its
  // generated kernels ran SM-latency-bound, not bandwidth-bound; with a
  // throughput-level segment cost the single-level cases would collapse
  // onto the DRAM floor and the occupancy shapes of Table 2 would vanish.
};

/// Totals accumulated over one kernel launch.
struct LaunchStats {
  std::uint64_t blocks = 0;
  std::uint64_t threads = 0;
  std::uint64_t gmem_requests = 0;    ///< warp-level access groups
  std::uint64_t gmem_segments = 0;    ///< 128B transactions after coalescing
  std::uint64_t gmem_bytes = 0;       ///< useful bytes moved
  std::uint64_t smem_requests = 0;    ///< warp-level shared access groups
  std::uint64_t smem_cycles = 0;      ///< groups weighted by conflict degree
  std::uint64_t barriers = 0;         ///< block-wide syncthreads executed
  std::uint64_t syncwarps = 0;
  double alu_units = 0;               ///< sum over warps of per-epoch lane max
  double device_time_ns = 0;          ///< modeled kernel time
  double wall_time_ns = 0;            ///< host simulation time (informational)
  /// Per-stage attribution of the event totals above (obs/profiler.hpp),
  /// populated only when the launch ran with profiling on — empty (and
  /// allocation-free) otherwise. operator+= merges tables by stage name,
  /// so multi-kernel strategies accumulate one profile across launches.
  obs::StageTable profile;
  /// Dynamic race detection results (racecheck.hpp): whether this launch
  /// ran under the detector, the exact conflicting-pair count, and the
  /// first reports (deduplicated per word and hazard kind, capped at
  /// RaceChecker::kMaxReportsPerLaunch). Empty — and allocation-free —
  /// when racecheck is off; operator+= ORs the flag and concatenates
  /// reports up to the cap, so multi-kernel strategies accumulate one
  /// race summary across launches.
  bool racecheck = false;
  std::uint64_t races = 0;
  std::vector<RaceReport> race_reports;
  /// Blocks that saw CUDA-UB barrier behaviour the lenient default rode
  /// through (scheduler.cpp): threads exiting while peers wait, or threads
  /// meeting at different syncthreads call sites. Zero for every correct
  /// kernel — emitted in records only when nonzero, so baselines are safe.
  std::uint64_t barrier_exit_divergence = 0;
  std::uint64_t barrier_site_mismatch = 0;
  /// Fault injection (faultinject.hpp): whether this launch ran with a
  /// fault plan armed, and the faults that fired, merged block-ordered.
  /// Both empty/false — and allocation-free — with injection off.
  bool faults_armed = false;
  std::vector<FaultEvent> fault_events;
  /// The structured failure a recovering harness (testsuite runner or the
  /// degradation executor) caught for this launch; code == kNone for every
  /// successful launch, and the field is only serialized when set.
  LaunchErrorInfo error;

  LaunchStats& operator+=(const LaunchStats& o);
};

/// Derived convenience metrics.
[[nodiscard]] double coalescing_efficiency(const LaunchStats& s);
[[nodiscard]] double bank_conflict_factor(const LaunchStats& s);

/// Per-warp event log. One lives per warp of the block currently being
/// simulated. Lanes execute sequentially between barriers, so the log
/// groups "the k-th access of each lane" into one warp request, finalizing
/// groups at epoch boundaries (barriers / block end) or when the bounded
/// window overflows.
class WarpLog {
public:
  static constexpr std::uint32_t kWarpSize = 32;
  /// Pending-group windows. Lanes execute sequentially within an epoch, so
  /// the table must hold one full lane's epoch of accesses; the scheduler
  /// calls flush_pending() when a warp's pass completes, so at most one
  /// warp's table is ever populated. These are safety valves sized above
  /// any per-lane epoch in the paper's workloads; a retired group hit by a
  /// late lane is counted as a fresh uncoalesced request.
  static constexpr std::size_t kGlobalWindow = 1 << 20;
  static constexpr std::size_t kSharedWindow = 1 << 16;

  /// Arm the log for a new block; `params` must outlive the block run.
  /// `prof` (optional) receives per-stage attribution of every event the
  /// log books — it must outlive the block run too.
  void reset(const CostParams& params, obs::StageTable* prof = nullptr);

  /// Set the stage subsequent events of `lane` are attributed to
  /// (thread_ctx.hpp's prof_scope). Ignored when profiling is off.
  void set_lane_stage(std::uint32_t lane, std::uint16_t stage) noexcept {
    lane_stage_[lane] = stage;
  }

  /// Record a global-memory access of `bytes` bytes at device virtual
  /// address `vaddr` by `lane`. Inline: lanes of a converged warp hit an
  /// already-open group (the common path) without leaving the header.
  void global_access(std::uint32_t lane, std::uint64_t vaddr,
                     std::uint32_t bytes) {
    dirty_ = true;
    const std::uint64_t k = lane_gk_[lane]++;
    const std::uint64_t rel = k - gbase_;  // k < gbase_ wraps past gcount_
    if (rel < gcount_) [[likely]] {
      apply_global(gvec_[ghead_ + rel], lane, vaddr, bytes);
      return;
    }
    global_access_open(lane, k, vaddr, bytes);
  }

  /// Record a shared-memory access at byte offset `offset` by `lane`.
  void shared_access(std::uint32_t lane, std::uint32_t offset,
                     std::uint32_t bytes) {
    dirty_ = true;
    const std::uint64_t k = lane_sk_[lane]++;
    if (prof_) mark_active(lane);
    const std::uint64_t rel = k - sbase_;
    if (rel < scount_) [[likely]] {
      SharedGroup& g = svec_[shead_ + rel];
      // Model each access by its first word; 8-byte types occupy two banks
      // on Kepler but the 4-byte-bank approximation keeps conflict shapes
      // intact.
      if (g.n < kWarpSize) g.word[g.n++] = offset / 4;
      return;
    }
    shared_access_open(lane, k, offset);
    (void)bytes;
  }

  /// Charge `units` of per-lane arithmetic work.
  void alu(std::uint32_t lane, double units) {
    dirty_ = true;
    lane_alu_[lane] += units;
    if (prof_) {
      prof_->row(lane_stage_[lane]).alu_units += units;
      mark_active(lane);
    }
  }

  /// Fused forms of the access paths for the data-carrying instructions
  /// (thread_ctx.hpp): every ld/st/lds/sts charges exactly one ALU unit, so
  /// folding the charge in saves a second dirty/prof round per event. The
  /// net effect is bit-identical to access followed by alu(lane, 1).
  void global_access_alu1(std::uint32_t lane, std::uint64_t vaddr,
                          std::uint32_t bytes) {
    global_access(lane, vaddr, bytes);
    lane_alu_[lane] += 1.0;
    if (prof_) prof_->row(lane_stage_[lane]).alu_units += 1.0;
  }
  void shared_access_alu1(std::uint32_t lane, std::uint32_t offset,
                          std::uint32_t bytes) {
    shared_access(lane, offset, bytes);
    lane_alu_[lane] += 1.0;
    if (prof_) prof_->row(lane_stage_[lane]).alu_units += 1.0;
  }

  /// Close the current epoch (barrier or end of block): finalize all pending
  /// groups, fold the epoch's lane-max ALU charge in, and return this
  /// epoch's cost for this warp. The scheduler combines warp epoch costs
  /// into a block epoch cost (max for latency-bound, sum/ILP for
  /// throughput-bound blocks).
  [[nodiscard]] double end_epoch();

  /// Finalize all pending groups without closing the epoch. The scheduler
  /// calls this when every lane of the warp has finished its pass (all at
  /// the block barrier or done), bounding pending-table memory to one
  /// warp's pass at a time.
  void flush_pending();

  // Raw tallies for LaunchStats.
  std::uint64_t gmem_requests = 0;
  std::uint64_t gmem_segments = 0;
  std::uint64_t gmem_bytes = 0;
  std::uint64_t smem_requests = 0;
  std::uint64_t smem_cycles = 0;
  double alu_total = 0;

private:
  /// Global access group: distinct 128B lines tracked with a 64-line bitmap
  /// anchored at the first line seen; lanes outside the bitmap span count as
  /// one segment each (exact for strides >= 128B). Tagged with the stage of
  /// the lane that opened the group (lanes of one warp move through scopes
  /// together, so the opener's stage is the group's stage).
  struct GlobalGroup {
    std::int64_t base_line = -1;
    std::uint64_t bitmap = 0;
    std::uint32_t overflow = 0;
    std::uint32_t bytes = 0;
    std::uint16_t stage = 0;
  };
  /// Shared access group: per-bank word sets, tracked exactly (<= 32 lanes).
  struct SharedGroup {
    std::array<std::uint32_t, kWarpSize> word{};  // word address per entry
    std::uint8_t n = 0;
    std::uint16_t stage = 0;
  };

  void finalize_global(const GlobalGroup& g);
  void finalize_shared(const SharedGroup& g);

  /// Fold one access into an open group (the common converged-lane path).
  void apply_global(GlobalGroup& g, std::uint32_t lane, std::uint64_t vaddr,
                    std::uint32_t bytes) {
    const auto line = static_cast<std::int64_t>(vaddr / 128);
    g.bytes += bytes;
    if (g.base_line < 0) {
      // Anchor the 64-line bitmap window centered-ish on the first line so
      // both forward and backward strides stay inside it.
      g.base_line = std::max<std::int64_t>(0, line - 16);
      g.stage = lane_stage_[lane];
    }
    if (prof_) mark_active(lane);
    const std::int64_t rel = line - g.base_line;
    // A single access can straddle two lines (e.g. 8B at offset 124).
    const std::int64_t rel_end =
        static_cast<std::int64_t>((vaddr + bytes - 1) / 128) - g.base_line;
    for (std::int64_t r = rel; r <= rel_end; ++r) {
      if (r >= 0 && r < 64) {
        g.bitmap |= (1ULL << r);
      } else {
        g.overflow += 1;
      }
    }
  }

  /// Out-of-line continuations of the access paths: open a new group, book
  /// a late access against a retired window, or retire the oldest group on
  /// window overflow.
  void global_access_open(std::uint32_t lane, std::uint64_t k,
                          std::uint64_t vaddr, std::uint32_t bytes);
  void shared_access_open(std::uint32_t lane, std::uint64_t k,
                          std::uint32_t offset);

  /// Record lane activity in its current stage for this epoch's
  /// divergence histogram. Only called while profiling is armed.
  void mark_active(std::uint32_t lane);

  const CostParams* params_ = nullptr;
  obs::StageTable* prof_ = nullptr;
  double epoch_cost_ = 0;
  /// True once any event landed since the last end_epoch() — idle warps
  /// (parked at a barrier across many waves) skip the whole epoch fold.
  bool dirty_ = false;
  /// Pending-group storage: flat vectors indexed from a head offset, reused
  /// across epochs and blocks (capacity is never released). The head only
  /// moves on window overflow, where the oldest group retires early; a
  /// compaction keeps the vectors bounded by the window size.
  std::vector<GlobalGroup> gvec_;
  std::vector<SharedGroup> svec_;
  std::size_t ghead_ = 0;    ///< index of the oldest pending global group
  std::size_t gcount_ = 0;   ///< pending global groups
  std::size_t shead_ = 0;
  std::size_t scount_ = 0;
  std::uint64_t gbase_ = 0;  ///< group index of the oldest pending group
  std::uint64_t sbase_ = 0;
  std::array<std::uint64_t, kWarpSize> lane_gk_{};  ///< next global index per lane
  std::array<std::uint64_t, kWarpSize> lane_sk_{};
  std::array<double, kWarpSize> lane_alu_{};  ///< current-epoch ALU per lane
  std::array<std::uint16_t, kWarpSize> lane_stage_{};  ///< current stage per lane
  /// Current-epoch (stage, active-lane mask) pairs — a handful of entries
  /// (stages touched since the last barrier); folded into the stage
  /// occupancy histograms at end_epoch().
  std::vector<std::pair<std::uint16_t, std::uint32_t>> epoch_active_;
  /// finalize_shared scratch: per-bank distinct-word sets, generation-
  /// stamped so each group costs O(accesses) instead of O(accesses^2) and
  /// nothing is cleared between groups.
  std::uint64_t conflict_gen_ = 0;
  std::array<std::uint64_t, kWarpSize> bank_gen_{};
  std::array<std::uint8_t, kWarpSize> bank_cnt_{};
  std::array<std::array<std::uint32_t, kWarpSize>, kWarpSize> bank_words_{};
};

/// Computes the modeled kernel time from per-block costs.
///
/// Blocks are assigned to SMs round-robin in issue order; the launch is done
/// when the busiest SM drains, with a device-wide DRAM bandwidth floor.
[[nodiscard]] double estimate_device_time(
    const CostParams& p, const DeviceLimits& lim,
    const std::vector<double>& block_costs_ns, std::uint64_t gmem_bytes);

}  // namespace accred::gpusim
