// Structured launch errors: every way a simulated kernel launch can fail —
// watchdog trip, strict-barrier divergence, escalated race, device-side
// fault, injected fault, allocation failure — is described by one
// LaunchErrorInfo (code + stage + stuck-warp coordinates) and carried by a
// LaunchError exception. Harnesses that recover (testsuite runner, the
// graceful-degradation executor) copy the info into LaunchStats::error so
// the failure lands in the accred.bench record instead of killing the run.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/dim3.hpp"
#include "gpusim/faultinject.hpp"

namespace accred::gpusim {

enum class LaunchErrorCode : std::uint8_t {
  kNone = 0,
  /// The per-block step budget (SimOptions::max_steps) ran out: a barrier
  /// deadlock or a runaway syncthreads loop that would otherwise hang.
  kWatchdog,
  /// Strict-mode syncthreads divergence (exit divergence or a barrier-site
  /// mismatch; both are CUDA UB — see DESIGN.md §11).
  kBarrierDivergence,
  /// Racecheck conflicts escalated to an error (SimOptions::error_on_race).
  kRace,
  /// A device-side fault: an exception escaped a kernel fiber (out-of-bounds
  /// accesses keep their std::out_of_range type and are reported separately).
  kDeviceFault,
  /// A warp aborted mid-kernel (fault injection, faultinject.hpp).
  kWarpAbort,
  /// Device allocation failure — real exhaustion or an injected one.
  kOom,
  /// This shard stopped early because a lower-numbered shard already holds
  /// the launch's deterministic error (pool.hpp cancellation). Never the
  /// launch's reported error; launch() swallows it during propagation.
  kCancelled,
  /// Numeric-guard failure in the degradation executor: a NaN/Inf result or
  /// a mismatch against the sequential reference. Never thrown by launch().
  kNumericGuard,
};

[[nodiscard]] const char* to_string(LaunchErrorCode c) noexcept;

/// The structured description of one launch failure. `stage` is the
/// prof_scope stage of the implicated thread when the stage table was armed
/// (profiling, racecheck, or fault injection on), empty otherwise.
struct LaunchErrorInfo {
  LaunchErrorCode code = LaunchErrorCode::kNone;
  std::string message;            ///< human one-liner (cause, not location)
  std::string stage;              ///< prof_scope stage name ("" = unknown)
  Dim3 block{};                   ///< blockIdx of the implicated block
  std::uint32_t warp = 0;         ///< warp index within that block
  std::uint32_t barrier_seq = 0;  ///< barriers the stuck thread had passed
  std::uint64_t step = 0;         ///< scheduler barrier waves when detected
  bool injected = false;          ///< caused by fault injection
  bool has_site = false;          ///< block/warp/barrier_seq are meaningful
  /// Injected faults that fired before this error was raised (the failing
  /// launch's stats die with the exception, so the campaign accounting
  /// rides on the error itself). Scheduler throws carry the faulting
  /// block's events; the launch-level race escalation carries them all.
  std::vector<FaultEvent> fired;

  [[nodiscard]] explicit operator bool() const noexcept {
    return code != LaunchErrorCode::kNone;
  }
};

/// Full human rendering: "watchdog: ... [stage=tree block=(1,0,0) warp=2 ...]".
[[nodiscard]] std::string to_string(const LaunchErrorInfo& info);

/// The exception form. Derives std::runtime_error so existing strict-mode
/// call sites (EXPECT_THROW(..., std::runtime_error)) keep working.
class LaunchError : public std::runtime_error {
 public:
  explicit LaunchError(LaunchErrorInfo info)
      : std::runtime_error(to_string(info)), info_(std::move(info)) {}

  [[nodiscard]] const LaunchErrorInfo& info() const noexcept { return info_; }

 private:
  LaunchErrorInfo info_;
};

}  // namespace accred::gpusim
