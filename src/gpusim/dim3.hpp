// CUDA-style launch geometry. Only the dimensions the paper's mapping uses
// are exercised (grid.x for gangs, block.y for workers, block.x for vector
// lanes), but full 3-component shapes are supported.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace accred::gpusim {

struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  [[nodiscard]] constexpr std::uint64_t count() const noexcept {
    return static_cast<std::uint64_t>(x) * y * z;
  }

  friend constexpr bool operator==(const Dim3&, const Dim3&) = default;
};

/// Hardware limits of the modeled device (NVIDIA K20c, compute 3.5).
struct DeviceLimits {
  std::uint32_t warp_size = 32;
  std::uint32_t max_threads_per_block = 1024;
  std::uint32_t max_block_dim_x = 1024;
  std::uint32_t max_block_dim_y = 1024;
  std::uint32_t max_block_dim_z = 64;
  std::uint32_t num_sms = 13;
  std::uint32_t max_blocks_per_sm = 16;
  std::uint32_t max_threads_per_sm = 2048;
  std::size_t shared_mem_per_block = 48 * 1024;
  std::size_t global_mem_bytes = 5ULL * 1024 * 1024 * 1024;
};

inline void validate_launch(const Dim3& grid, const Dim3& block,
                            std::size_t shared_bytes,
                            const DeviceLimits& lim) {
  if (grid.count() == 0 || block.count() == 0) {
    throw std::invalid_argument("launch geometry must be non-empty");
  }
  if (block.count() > lim.max_threads_per_block) {
    throw std::invalid_argument(
        "block has " + std::to_string(block.count()) + " threads; limit is " +
        std::to_string(lim.max_threads_per_block));
  }
  if (block.x > lim.max_block_dim_x || block.y > lim.max_block_dim_y ||
      block.z > lim.max_block_dim_z) {
    throw std::invalid_argument("block dimension exceeds device limit");
  }
  if (shared_bytes > lim.shared_mem_per_block) {
    throw std::invalid_argument(
        "requested " + std::to_string(shared_bytes) +
        " bytes of shared memory; limit is " +
        std::to_string(lim.shared_mem_per_block));
  }
}

}  // namespace accred::gpusim
