// Stackful fibers used to give every simulated GPU thread its own
// suspendable execution context, so device code can call `syncthreads()`
// anywhere (including inside nested loops) exactly as CUDA kernels do.
//
// On x86_64 a hand-rolled callee-saved-register context switch is used
// (a few ns per switch); other platforms fall back to POSIX ucontext.
//
// Two execution modes share the same stacks (DESIGN.md §12):
//   * resume()/yield(): the classic pairwise protocol — every suspension
//     bounces through the scheduler frame (two switches per suspension);
//   * FastChain: the converged-warp fast path — the scheduler enters a
//     ready list once and each suspending lane transfers control straight
//     into the next lane's fiber (one switch per suspension, no scheduler
//     frame in between), returning to the scheduler only when the whole
//     pass has parked, completed, or faulted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>

#if !defined(ACCRED_FIBER_ASM)
#include <ucontext.h>
#endif

// ThreadSanitizer cannot see through a stack switch; under -fsanitize=thread
// (the -DACCRED_TSAN=ON preset that checks the host-parallel launch path,
// see pool.hpp) every switch is annotated with TSan's fiber API.
#if defined(__SANITIZE_THREAD__)
#define ACCRED_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ACCRED_TSAN_FIBERS 1
#endif
#endif

namespace accred::gpusim {

class FastChain;

/// A reusable fiber stack. Stacks are the expensive part of a fiber, so the
/// block scheduler keeps a pool of them (FiberStackPool, pool.hpp) and
/// re-binds entry functions per simulated thread block.
class Fiber {
public:
  /// Allocation-free entry point: `fn(arg)` runs on the fiber's stack.
  /// The scheduler arms one of these per simulated thread per block —
  /// re-arming stores two pointers instead of constructing a closure.
  using RawEntry = void (*)(void*);

  /// `stack_size` must be a multiple of 16; 64 KiB is ample for the device
  /// kernels in this project (no deep recursion on the device side).
  explicit Fiber(std::size_t stack_size = 64 * 1024);
  /// Run on an externally owned stack (a FiberStackPool slab slot). The
  /// memory must be 16-byte aligned and outlive the fiber.
  Fiber(std::byte* stack, std::size_t stack_size);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  Fiber(Fiber&&) = delete;
  Fiber& operator=(Fiber&&) = delete;

  /// Arm the fiber with a new entry point. Must not be running.
  void reset(std::function<void()> entry);
  /// Arm with a raw entry point — no allocation, no closure construction.
  void reset(RawEntry entry, void* arg);

  /// Switch from the calling context into the fiber. Returns when the fiber
  /// calls yield() or its entry function returns. If the entry function
  /// exited with an exception, it is rethrown here in the resumer's context.
  void resume();

  /// Called from inside a fiber: suspend and return control to resume()'s
  /// caller. Undefined behaviour if called outside any fiber.
  static void yield();

  /// True once the entry function has returned. resume() must not be called
  /// again until reset().
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Abandon a suspended fiber after a fatal simulation error: marks it
  /// done so the stack can be reused/destroyed. Frame-local objects on the
  /// abandoned stack are NOT destroyed — only call this on device fibers,
  /// whose locals are trivial by construction.
  void abandon() noexcept { done_ = true; }

  /// The fiber currently executing on this OS thread, or nullptr.
  static Fiber* current() noexcept;

  /// Capture the in-flight exception for later rethrow in the scheduler's
  /// context. Non-std exceptions (`throw 42;`) are wrapped in a structured
  /// LaunchError so top-level handlers always have a what() to print. Only
  /// callable from inside a catch block.
  [[nodiscard]] static std::exception_ptr capture_current_exception();
  /// Store the exception resume()/FastChain::run() will rethrow. Used by
  /// the scheduler's fast-path thunk, which catches at the kernel boundary
  /// instead of relying on the trampoline's handler.
  void set_exception(std::exception_ptr e) noexcept { eptr_ = std::move(e); }

private:
  friend class FastChain;

  static void trampoline();
  void prepare_stack();
  /// Bounce std::function entries through the raw-entry path so the
  /// trampoline has a single calling convention.
  static void call_std_function(void* self);

  std::size_t stack_size_;
  std::byte* stack_base_ = nullptr;        // start of the usable stack
  std::unique_ptr<std::byte[]> owned_;     // set only for self-owned stacks
  RawEntry raw_entry_ = nullptr;
  void* raw_arg_ = nullptr;
  std::function<void()> entry_;            // back-compat reset() storage
  std::exception_ptr eptr_;
  bool done_ = true;  // no entry armed yet

#if defined(ACCRED_FIBER_ASM)
  void* self_sp_ = nullptr;    // fiber's saved stack pointer while suspended
  void* caller_sp_ = nullptr;  // resumer's saved stack pointer while running
#else
  ucontext_t self_ctx_{};
  ucontext_t caller_ctx_{};
#endif

#if defined(ACCRED_TSAN_FIBERS)
  void* tsan_fiber_ = nullptr;   // TSan-side context for this fiber
  void* tsan_caller_ = nullptr;  // resumer's TSan context while running
#endif
};

/// Converged-warp pass driver: runs an ordered list of lane fibers with one
/// context switch per suspension instead of two. The scheduler calls run()
/// once per pass; each lane that suspends (park()) or finishes (leave())
/// transfers control directly into the next unstarted lane's fiber, and the
/// last lane — or the first faulting one — returns to the scheduler frame.
///
/// The protocol preserves the classic resume-loop semantics exactly: lanes
/// start in list order, a lane exception stops the pass before any later
/// lane runs (run() rethrows it, like Fiber::resume() would), and fibers
/// parked by park() can be re-entered by a later run() just as if they had
/// yielded. The one restriction is symmetric use: a block must be driven
/// either entirely by run() passes or entirely by resume()/yield() —
/// park() does not maintain the caller-frame bookkeeping yield() relies on.
class FastChain {
public:
  /// Run every lane of `order` (indices into `fibers`) once to its next
  /// suspension point. Returns when the pass is complete; rethrows the
  /// first lane exception. `count` must be >= 1.
  void run(Fiber* const* fibers, const std::uint32_t* order,
           std::uint32_t count);

  /// Lane side: suspend the running lane mid-kernel (it stays resumable)
  /// and continue the pass. Returns when a later pass re-enters the lane.
  void park();

  /// Lane side: the running lane is finished — normally or with its
  /// exception already stored via Fiber::set_exception(). Marks the fiber
  /// done, abandons its frame, and continues the pass; on a stored
  /// exception the pass aborts straight to the scheduler. Never returns
  /// into a frame that is resumed again.
  void leave();

private:
  /// Transfer control out of `self` into the next unstarted lane, or back
  /// to the scheduler frame when the list is exhausted (or `to_sched`).
  void dispatch_from(Fiber* self, bool to_sched);

  Fiber* const* fibers_ = nullptr;
  const std::uint32_t* order_ = nullptr;
  std::uint32_t count_ = 0;
  std::uint32_t next_ = 0;          ///< next order_ index to enter
  Fiber* current_ = nullptr;        ///< lane holding control (eptr lookup)
#if defined(ACCRED_FIBER_ASM)
  void* sched_sp_ = nullptr;        ///< scheduler frame while a pass runs
#else
  ucontext_t sched_ctx_{};
#endif
#if defined(ACCRED_TSAN_FIBERS)
  void* tsan_sched_ = nullptr;
#endif
};

}  // namespace accred::gpusim
