// Stackful fibers used to give every simulated GPU thread its own
// suspendable execution context, so device code can call `syncthreads()`
// anywhere (including inside nested loops) exactly as CUDA kernels do.
//
// On x86_64 a hand-rolled callee-saved-register context switch is used
// (a few ns per switch); other platforms fall back to POSIX ucontext.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>

#if !defined(ACCRED_FIBER_ASM)
#include <ucontext.h>
#endif

// ThreadSanitizer cannot see through a stack switch; under -fsanitize=thread
// (the -DACCRED_TSAN=ON preset that checks the host-parallel launch path,
// see pool.hpp) every switch is annotated with TSan's fiber API.
#if defined(__SANITIZE_THREAD__)
#define ACCRED_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ACCRED_TSAN_FIBERS 1
#endif
#endif

namespace accred::gpusim {

/// A reusable fiber stack. Stacks are the expensive part of a fiber, so the
/// block scheduler keeps a pool of them and re-binds entry functions per
/// simulated thread block.
class Fiber {
public:
  /// `stack_size` must be a multiple of 16; 64 KiB is ample for the device
  /// kernels in this project (no deep recursion on the device side).
  explicit Fiber(std::size_t stack_size = 64 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  Fiber(Fiber&&) = delete;
  Fiber& operator=(Fiber&&) = delete;

  /// Arm the fiber with a new entry point. Must not be running.
  void reset(std::function<void()> entry);

  /// Switch from the calling context into the fiber. Returns when the fiber
  /// calls yield() or its entry function returns. If the entry function
  /// exited with an exception, it is rethrown here in the resumer's context.
  void resume();

  /// Called from inside a fiber: suspend and return control to resume()'s
  /// caller. Undefined behaviour if called outside any fiber.
  static void yield();

  /// True once the entry function has returned. resume() must not be called
  /// again until reset().
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Abandon a suspended fiber after a fatal simulation error: marks it
  /// done so the stack can be reused/destroyed. Frame-local objects on the
  /// abandoned stack are NOT destroyed — only call this on device fibers,
  /// whose locals are trivial by construction.
  void abandon() noexcept { done_ = true; }

  /// The fiber currently executing on this OS thread, or nullptr.
  static Fiber* current() noexcept;

private:
  static void trampoline();
  void prepare_stack();

  std::size_t stack_size_;
  std::unique_ptr<std::byte[]> stack_;
  std::function<void()> entry_;
  std::exception_ptr eptr_;
  bool done_ = true;  // no entry armed yet

#if defined(ACCRED_FIBER_ASM)
  void* self_sp_ = nullptr;    // fiber's saved stack pointer while suspended
  void* caller_sp_ = nullptr;  // resumer's saved stack pointer while running
#else
  ucontext_t self_ctx_{};
  ucontext_t caller_ctx_{};
  bool started_ = false;
#endif

#if defined(ACCRED_TSAN_FIBERS)
  void* tsan_fiber_ = nullptr;   // TSan-side context for this fiber
  void* tsan_caller_ = nullptr;  // resumer's TSan context while running
#endif
};

}  // namespace accred::gpusim
