#include "gpusim/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace accred::gpusim {

namespace {

Dim3 unflatten_thread(std::uint32_t tid, const Dim3& block_dim) {
  Dim3 t;
  t.x = tid % block_dim.x;
  t.y = (tid / block_dim.x) % block_dim.y;
  t.z = tid / (block_dim.x * block_dim.y);
  return t;
}

}  // namespace

std::uint64_t default_max_steps() {
  static const std::uint64_t parsed = [] {
    const char* e = std::getenv("ACCRED_MAX_STEPS");
    if (e == nullptr || *e == '\0') return kDefaultMaxSteps;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(e, &end, 10);
    if (end == e || *end != '\0' || n == 0) return kDefaultMaxSteps;
    return static_cast<std::uint64_t>(n);
  }();
  return parsed;
}

void BlockScheduler::advance_warp(std::uint32_t w, std::uint32_t nthreads) {
  const std::uint32_t first = w * 32;
  const std::uint32_t last = std::min(first + 32, nthreads);
  // One scan seeds the pass with the lanes the block barrier released;
  // afterwards the syncwarp arrival list is the ready set verbatim, so each
  // inner pass costs O(lanes resumed) instead of three 32-lane scans.
  ready_.clear();
  for (std::uint32_t t = first; t < last; ++t) {
    if (block_.phase[t] == ThreadPhase::kReady) ready_.push_back(t);
  }
  std::vector<std::uint32_t>& arrived = block_.warp_pending[w];
  for (;;) {
    for (std::uint32_t t : ready_) fibers_[t]->resume();
    // Every resumed lane is now parked at syncwarp (listed in `arrived`),
    // at the block barrier, or done.
    if (arrived.empty()) {
      // The warp's pass is over; retire its access groups to bound log
      // memory. Lanes at the block barrier (or exited) counted as arrived
      // at any syncwarp rendezvous released along the way.
      block_.warp_logs[w].flush_pending();
      return;
    }
    // Release the warp rendezvous: exactly the arrived lanes resume.
    block_.syncwarps += 1;
    // Racecheck: a syncwarp orders this warp's accesses across the
    // rendezvous — but only this warp's (racecheck.hpp).
    if (block_.racecheck != nullptr) block_.racecheck->on_syncwarp(w);
    // Attribute the rendezvous to the stage of the first-arrived lane (the
    // lanes of one warp move through scopes together).
    if (block_.profile != nullptr) {
      block_.profile->row(block_.thread_stage[arrived.front()]).syncwarps += 1;
    }
    for (std::uint32_t t : arrived) block_.phase[t] = ThreadPhase::kReady;
    ready_.swap(arrived);
    arrived.clear();
  }
}

BlockRun BlockScheduler::run_block(const KernelFn& kernel,
                                   const CostParams& costs, Dim3 block_idx,
                                   Dim3 block_dim, Dim3 grid_dim,
                                   std::size_t shared_bytes,
                                   LaunchStats& stats,
                                   const CancelFlag* cancel,
                                   std::uint32_t shard) {
  const auto nthreads = static_cast<std::uint32_t>(block_dim.count());
  const std::uint32_t nwarps = (nthreads + 31) / 32;
  const bool faults_on =
      opts_.fault_plan != nullptr && !opts_.fault_plan->empty();

  // Arm per-stage attribution before any fiber runs; id 0 is pinned to the
  // unscoped stage so un-annotated kernels still profile cleanly. Racecheck
  // and fault injection arm the table too — race reports, fault events and
  // structured errors attribute to prof_scope stages — but the table is
  // only *returned* when profiling was requested, so stats output is
  // unchanged.
  obs::StageTable* prof = nullptr;
  if (opts_.profile || opts_.racecheck || faults_on) {
    prof_table_ = obs::StageTable{};
    prof_table_.intern(obs::kUnscopedStageName);
    prof = &prof_table_;
    block_.thread_stage.assign(nthreads, 0);
  }
  block_.profile = prof;
  if (opts_.racecheck) {
    racecheck_.reset(shared_bytes, nwarps, block_idx, block_dim,
                     opts_.racecheck_global);
    block_.racecheck = &racecheck_;
  } else {
    block_.racecheck = nullptr;
  }
  if (faults_on) {
    const std::uint64_t flat_block =
        block_idx.x +
        static_cast<std::uint64_t>(grid_dim.x) *
            (block_idx.y + static_cast<std::uint64_t>(grid_dim.y) *
                               block_idx.z);
    faults_.reset(opts_.fault_plan.get(), flat_block, block_idx, prof);
    block_.faults = faults_.armed() ? &faults_ : nullptr;
  } else {
    block_.faults = nullptr;
  }

  block_.shared.assign(shared_bytes, std::byte{0});
  block_.warp_logs.resize(std::max<std::size_t>(block_.warp_logs.size(), nwarps));
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    block_.warp_logs[w].reset(costs, prof);
  }
  block_.warp_pending.resize(
      std::max<std::size_t>(block_.warp_pending.size(), nwarps));
  // Clear stale arrival lists (a prior block may have faulted mid-pass).
  for (std::uint32_t w = 0; w < nwarps; ++w) block_.warp_pending[w].clear();
  block_.phase.assign(nthreads, ThreadPhase::kReady);
  block_.barrier_seq.assign(nthreads, 0);
  block_.barriers = 0;
  block_.syncwarps = 0;
  block_.barrier_exit_divergence = false;
  block_.barrier_site_mismatch = false;
  block_.strict_barriers = opts_.strict_barriers;

  while (fibers_.size() < nthreads) {
    fibers_.push_back(std::make_unique<Fiber>(opts_.stack_bytes));
  }

  for (std::uint32_t t = 0; t < nthreads; ++t) {
    const Dim3 tidx = unflatten_thread(t, block_dim);
    fibers_[t]->reset([this, &kernel, tidx, block_idx, block_dim, grid_dim,
                       t]() {
      ThreadCtx ctx(block_, tidx, block_idx, block_dim, grid_dim);
      kernel(ctx);
      block_.phase[t] = ThreadPhase::kDone;
    });
  }

  // Structured-error site: coordinates + stage of the implicated thread.
  const auto site_info = [&](LaunchErrorCode code, std::string message,
                             std::uint32_t tid, std::uint64_t step) {
    LaunchErrorInfo info;
    info.code = code;
    info.message = std::move(message);
    if (prof != nullptr && tid < block_.thread_stage.size()) {
      const std::uint16_t sid = block_.thread_stage[tid];
      if (sid < prof->rows().size()) info.stage = prof->rows()[sid].name;
    }
    info.block = block_idx;
    info.warp = tid / 32;
    info.barrier_seq =
        tid < block_.barrier_seq.size() ? block_.barrier_seq[tid] : 0;
    info.step = step;
    info.has_site = true;
    return info;
  };
  /// First thread still parked at the barrier — the representative stuck
  /// waiter a structured error names.
  const auto first_waiter = [&]() -> std::uint32_t {
    for (std::uint32_t t = 0; t < nthreads; ++t) {
      if (block_.phase[t] == ThreadPhase::kAtBarrier) return t;
    }
    for (std::uint32_t t = 0; t < nthreads; ++t) {
      if (block_.phase[t] != ThreadPhase::kDone) return t;
    }
    return 0;
  };

  const std::uint64_t max_steps =
      opts_.max_steps != 0 ? opts_.max_steps : default_max_steps();
  std::uint64_t steps = 0;
  double block_cost = 0;
  try {
    for (;;) {
      if (cancel != nullptr && cancel->cancelled_for(shard)) {
        LaunchErrorInfo info;
        info.code = LaunchErrorCode::kCancelled;
        info.message =
            "shard " + std::to_string(shard) +
            " stopped: a lower shard already holds the launch error";
        throw LaunchError(std::move(info));
      }
      for (std::uint32_t w = 0; w < nwarps; ++w) advance_warp(w, nthreads);

      // Epoch boundary: fold warp costs into the block cost. Few-warp
      // blocks are latency-bound (max); many-warp blocks are bound by the
      // SM's issue throughput (sum over the quad scheduler).
      double mx = 0;
      double sum = 0;
      for (std::uint32_t w = 0; w < nwarps; ++w) {
        const double c = block_.warp_logs[w].end_epoch();
        mx = std::max(mx, c);
        sum += c;
      }
      block_cost += std::max(mx, sum / costs.warp_ilp);

      bool any_done = false;
      bool any_waiting = false;
      for (std::uint32_t t = 0; t < nthreads; ++t) {
        if (block_.phase[t] == ThreadPhase::kDone) {
          any_done = true;
        } else {
          any_waiting = true;  // suspended at syncthreads
        }
      }
      if (!any_waiting) break;  // kernel complete

      // Watchdog: a finite barrier-wave budget turns spin-on-flag
      // deadlocks and runaway syncthreads loops into a structured error
      // naming the stuck warp instead of hanging the host.
      steps += 1;
      if (steps > max_steps) {
        throw LaunchError(site_info(
            LaunchErrorCode::kWatchdog,
            "barrier-wave budget exhausted (max_steps=" +
                std::to_string(max_steps) +
                "): barrier deadlock or runaway loop",
            first_waiter(), steps));
      }

      if (any_done) {
        // Some threads exited while others wait at syncthreads: undefined
        // behaviour in CUDA. Model hardware leniency (exited threads count
        // as arrived) but record it; throw in strict mode.
        block_.barrier_exit_divergence = true;
        if (block_.strict_barriers) {
          throw LaunchError(site_info(
              LaunchErrorCode::kBarrierDivergence,
              "syncthreads divergence: threads exited while peers wait at "
              "a block barrier",
              first_waiter(), steps));
        }
      }
      // Threads rendezvousing with unequal per-thread barrier counts have
      // met at *different* syncthreads call sites — also CUDA UB (the
      // classic barrier-in-divergent-loop bug).
      std::uint32_t seq = 0;
      bool seq_set = false;
      for (std::uint32_t t = 0; t < nthreads; ++t) {
        if (block_.phase[t] != ThreadPhase::kAtBarrier) continue;
        if (!seq_set) {
          seq = block_.barrier_seq[t];
          seq_set = true;
        } else if (block_.barrier_seq[t] != seq) {
          block_.barrier_site_mismatch = true;
          if (block_.strict_barriers) {
            throw LaunchError(site_info(
                LaunchErrorCode::kBarrierDivergence,
                "syncthreads divergence: threads rendezvoused at different "
                "barrier instances (barrier inside a divergent loop?)",
                t, steps));
          }
          break;
        }
      }
      block_.barriers += 1;
      // Racecheck: the barrier wave orders every earlier access before
      // everything the released threads do next.
      if (block_.racecheck != nullptr) block_.racecheck->on_syncthreads();
      // Attribute the wave to the stage of the first thread found waiting —
      // all waiters rendezvoused at the same call site (checked above), so
      // any waiter's stage names the barrier.
      if (block_.profile != nullptr) {
        for (std::uint32_t t = 0; t < nthreads; ++t) {
          if (block_.phase[t] == ThreadPhase::kAtBarrier) {
            block_.profile->row(block_.thread_stage[t]).barriers += 1;
            break;
          }
        }
      }
      block_cost += costs.barrier_ns;
      for (std::uint32_t t = 0; t < nthreads; ++t) {
        if (block_.phase[t] == ThreadPhase::kAtBarrier) {
          block_.phase[t] = ThreadPhase::kReady;
        }
      }
    }
  } catch (const LaunchError& e) {
    // A device-side fault (OOB access, strict-barrier violation, user
    // exception) leaves sibling fibers suspended mid-kernel. Abandon them:
    // their stacks are reclaimed, their frame-local objects are not
    // destroyed (they are trivial device-side values by construction).
    for (auto& f : fibers_) {
      if (!f->done()) f->abandon();
    }
    // This block's BlockRun dies with the throw, so injected faults that
    // already fired here (including a warp_abort's own event) ride on the
    // error — recovery harnesses keep their campaign accounting.
    if (block_.faults != nullptr) {
      block_.faults = nullptr;
      LaunchErrorInfo info = e.info();
      for (FaultEvent& ev : faults_.take_events()) {
        if (info.fired.size() >= BlockFaults::kMaxEventsPerBlock) break;
        info.fired.push_back(std::move(ev));
      }
      throw LaunchError(std::move(info));
    }
    throw;
  } catch (...) {
    for (auto& f : fibers_) {
      if (!f->done()) f->abandon();
    }
    throw;
  }

  stats.blocks += 1;
  stats.threads += nthreads;
  stats.barriers += block_.barriers;
  stats.syncwarps += block_.syncwarps;
  stats.barrier_exit_divergence += block_.barrier_exit_divergence ? 1 : 0;
  stats.barrier_site_mismatch += block_.barrier_site_mismatch ? 1 : 0;
  BlockRun run;
  run.cost_ns = block_cost;
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    const WarpLog& log = block_.warp_logs[w];
    stats.gmem_requests += log.gmem_requests;
    stats.gmem_segments += log.gmem_segments;
    stats.gmem_bytes += log.gmem_bytes;
    stats.smem_requests += log.smem_requests;
    stats.smem_cycles += log.smem_cycles;
    run.alu_units += log.alu_total;  // warp order, per block — merged in
                                     // block order by the launch driver
  }
  // Resolve race reports first: they read stage names out of the table the
  // profile move below would hollow out.
  if (opts_.racecheck) {
    run.races = racecheck_.races();
    run.race_reports = racecheck_.take_reports(prof);
    block_.racecheck = nullptr;
  }
  if (block_.faults != nullptr) {
    run.fault_events = faults_.take_events();
    block_.faults = nullptr;
  }
  if (opts_.profile) run.profile = std::move(prof_table_);
  block_.profile = nullptr;
  return run;
}

BlockScheduler& tls_scheduler() {
  thread_local BlockScheduler sched;
  return sched;
}

}  // namespace accred::gpusim
