#include "gpusim/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace accred::gpusim {

namespace {

Dim3 unflatten_thread(std::uint32_t tid, const Dim3& block_dim) {
  Dim3 t;
  if (block_dim.y == 1 && block_dim.z == 1) {  // 1-D block: no divisions
    t.x = tid;
    t.y = 0;
    t.z = 0;
    return t;
  }
  t.x = tid % block_dim.x;
  t.y = (tid / block_dim.x) % block_dim.y;
  t.z = tid / (block_dim.x * block_dim.y);
  return t;
}

}  // namespace

std::uint64_t default_max_steps() {
  static const std::uint64_t parsed = [] {
    const char* e = std::getenv("ACCRED_MAX_STEPS");
    if (e == nullptr || *e == '\0') return kDefaultMaxSteps;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(e, &end, 10);
    if (end == e || *end != '\0' || n == 0) return kDefaultMaxSteps;
    return static_cast<std::uint64_t>(n);
  }();
  return parsed;
}

void BlockScheduler::run_thread(void* arg) {
  const LaneArg& a = *static_cast<LaneArg*>(arg);
  BlockScheduler& s = *a.sched;
  const std::uint32_t t = a.tid;
  if (s.use_fastpath_) {
    // Fast path: catch at the kernel boundary ourselves and hand control
    // straight to the next lane in the pass — the trampoline's handler and
    // final switch-back never run (leave() abandons this frame).
    try {
      ThreadCtx ctx(s.block_, unflatten_thread(t, s.cur_block_dim_),
                    s.cur_block_idx_, s.cur_block_dim_, s.cur_grid_dim_);
      (*s.cur_kernel_)(ctx);
      s.block_.phase[t] = ThreadPhase::kDone;
    } catch (...) {
      s.fibers_[t]->set_exception(Fiber::capture_current_exception());
    }
    s.chain_.leave();  // never returns
  }
  // Classic path: return into the trampoline, which captures exceptions and
  // switches back to resume()'s frame.
  ThreadCtx ctx(s.block_, unflatten_thread(t, s.cur_block_dim_),
                s.cur_block_idx_, s.cur_block_dim_, s.cur_grid_dim_);
  (*s.cur_kernel_)(ctx);
  s.block_.phase[t] = ThreadPhase::kDone;
}

void BlockScheduler::advance_warp(std::uint32_t w, std::uint32_t nthreads) {
  const std::uint32_t first = w * 32;
  const std::uint32_t last = std::min(first + 32, nthreads);
  // One scan seeds the pass with the lanes the block barrier released;
  // afterwards the syncwarp arrival list is the ready set verbatim, so each
  // inner pass costs O(lanes resumed) instead of three 32-lane scans.
  ready_.clear();
  for (std::uint32_t t = first; t < last; ++t) {
    if (block_.phase[t] == ThreadPhase::kReady) ready_.push_back(t);
  }
  std::vector<std::uint32_t>& arrived = block_.warp_pending[w];
  for (;;) {
    if (!ready_.empty()) {
      if (use_fastpath_) {
        // One chained pass: lane -> lane -> ... -> scheduler, a single
        // context switch per suspension. Event order is identical to the
        // resume loop below — lanes run in list order either way.
        chain_.run(fiber_raw_.data(), ready_.data(),
                   static_cast<std::uint32_t>(ready_.size()));
      } else {
        for (std::uint32_t t : ready_) fibers_[t]->resume();
      }
    }
    // Every resumed lane is now parked at syncwarp (listed in `arrived`),
    // at the block barrier, or done.
    if (arrived.empty()) {
      // The warp's pass is over; retire its access groups to bound log
      // memory. Lanes at the block barrier (or exited) counted as arrived
      // at any syncwarp rendezvous released along the way.
      block_.warp_logs[w].flush_pending();
      return;
    }
    // Release the warp rendezvous: exactly the arrived lanes resume.
    block_.syncwarps += 1;
    // Racecheck: a syncwarp orders this warp's accesses across the
    // rendezvous — but only this warp's (racecheck.hpp).
    if (block_.racecheck != nullptr) block_.racecheck->on_syncwarp(w);
    // Attribute the rendezvous to the stage of the first-arrived lane (the
    // lanes of one warp move through scopes together).
    if (block_.profile != nullptr) {
      block_.profile->row(block_.thread_stage[arrived.front()]).syncwarps += 1;
    }
    for (std::uint32_t t : arrived) block_.phase[t] = ThreadPhase::kReady;
    ready_.swap(arrived);
    arrived.clear();
  }
}

BlockRun BlockScheduler::run_block(const KernelFn& kernel,
                                   const CostParams& costs, Dim3 block_idx,
                                   Dim3 block_dim, Dim3 grid_dim,
                                   std::size_t shared_bytes,
                                   LaunchStats& stats,
                                   const CancelFlag* cancel,
                                   std::uint32_t shard) {
  const auto nthreads = static_cast<std::uint32_t>(block_dim.count());
  const std::uint32_t nwarps = (nthreads + 31) / 32;
  const bool faults_on =
      opts_.fault_plan != nullptr && !opts_.fault_plan->empty();

  // Arm per-stage attribution before any fiber runs; id 0 is pinned to the
  // unscoped stage so un-annotated kernels still profile cleanly. Racecheck
  // and fault injection arm the table too — race reports, fault events and
  // structured errors attribute to prof_scope stages — but the table is
  // only *returned* when profiling was requested, so stats output is
  // unchanged.
  obs::StageTable* prof = nullptr;
  if (opts_.profile || opts_.racecheck || faults_on) {
    // Recycled scratch: after the first block the kernel's stage set is
    // already interned, so arming degrades to zeroing a few rows. The
    // launch driver calls begin_launch() per shard so names never leak
    // across kernels (DESIGN.md §12).
    prof_table_.reset_stats();
    prof_table_.intern(obs::kUnscopedStageName);
    prof = &prof_table_;
    block_.thread_stage.assign(nthreads, 0);
  }
  block_.profile = prof;
  if (opts_.racecheck) {
    racecheck_.reset(shared_bytes, nwarps, block_idx, block_dim,
                     opts_.racecheck_global);
    block_.racecheck = &racecheck_;
  } else {
    block_.racecheck = nullptr;
  }
  if (faults_on) {
    const std::uint64_t flat_block =
        block_idx.x +
        static_cast<std::uint64_t>(grid_dim.x) *
            (block_idx.y + static_cast<std::uint64_t>(grid_dim.y) *
                               block_idx.z);
    faults_.reset(opts_.fault_plan.get(), flat_block, block_idx, prof);
    block_.faults = faults_.armed() ? &faults_ : nullptr;
  } else {
    block_.faults = nullptr;
  }

  block_.shared.assign(shared_bytes, std::byte{0});
  block_.warp_logs.resize(std::max<std::size_t>(block_.warp_logs.size(), nwarps));
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    block_.warp_logs[w].reset(costs, prof);
  }
  block_.warp_pending.resize(
      std::max<std::size_t>(block_.warp_pending.size(), nwarps));
  // Clear stale arrival lists (a prior block may have faulted mid-pass).
  for (std::uint32_t w = 0; w < nwarps; ++w) block_.warp_pending[w].clear();
  block_.phase.assign(nthreads, ThreadPhase::kReady);
  block_.barrier_seq.assign(nthreads, 0);
  block_.barriers = 0;
  block_.syncwarps = 0;
  block_.barrier_exit_divergence = false;
  block_.barrier_site_mismatch = false;
  block_.strict_barriers = opts_.strict_barriers;

  use_fastpath_ = opts_.fastpath;
  block_.chain = use_fastpath_ ? &chain_ : nullptr;

  // Lane stacks come from the pooled slab: steady-state blocks reuse both
  // the slab and the Fiber objects, so arming a lane is two stored pointers
  // plus the prepared initial frame. A reallocating ensure() (first block,
  // or a larger shape/stack request) invalidates every bound fiber.
  if (stacks_.ensure(nthreads, opts_.stack_bytes)) {
    fibers_.clear();
    fiber_raw_.clear();
  }
  while (fibers_.size() < nthreads) {
    const std::size_t i = fibers_.size();
    fibers_.push_back(
        std::make_unique<Fiber>(stacks_.stack(i), stacks_.stack_bytes()));
    fiber_raw_.push_back(fibers_.back().get());
  }

  cur_kernel_ = &kernel;
  cur_block_idx_ = block_idx;
  cur_block_dim_ = block_dim;
  cur_grid_dim_ = grid_dim;
  if (lane_args_.size() < nthreads) {
    lane_args_.resize(nthreads);
    for (std::uint32_t t = 0; t < lane_args_.size(); ++t) {
      lane_args_[t] = LaneArg{this, t};
    }
  }
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    fibers_[t]->reset(&BlockScheduler::run_thread, &lane_args_[t]);
  }

  // Structured-error site: coordinates + stage of the implicated thread.
  const auto site_info = [&](LaunchErrorCode code, std::string message,
                             std::uint32_t tid, std::uint64_t step) {
    LaunchErrorInfo info;
    info.code = code;
    info.message = std::move(message);
    if (prof != nullptr && tid < block_.thread_stage.size()) {
      const std::uint16_t sid = block_.thread_stage[tid];
      if (sid < prof->rows().size()) info.stage = prof->rows()[sid].name;
    }
    info.block = block_idx;
    info.warp = tid / 32;
    info.barrier_seq =
        tid < block_.barrier_seq.size() ? block_.barrier_seq[tid] : 0;
    info.step = step;
    info.has_site = true;
    return info;
  };
  const std::uint64_t max_steps =
      opts_.max_steps != 0 ? opts_.max_steps : default_max_steps();
  std::uint64_t steps = 0;
  double block_cost = 0;
  try {
    for (;;) {
      if (cancel != nullptr && cancel->cancelled_for(shard)) {
        LaunchErrorInfo info;
        info.code = LaunchErrorCode::kCancelled;
        info.message =
            "shard " + std::to_string(shard) +
            " stopped: a lower shard already holds the launch error";
        throw LaunchError(std::move(info));
      }
      if (opts_.cancel_token && opts_.cancel_token->cancelled()) {
        // Client cancellation: every shard observes the same token, so all
        // blocks stop at their next wave. launch.cpp canonicalizes this
        // into the launch's terminal error (unlike the sibling-shard
        // kCancelled above, which it swallows as bookkeeping).
        LaunchErrorInfo info;
        info.code = LaunchErrorCode::kCancelled;
        info.message = "launch cancelled by client token";
        throw LaunchError(std::move(info));
      }
      for (std::uint32_t w = 0; w < nwarps; ++w) advance_warp(w, nthreads);

      // Epoch boundary: fold warp costs into the block cost. Few-warp
      // blocks are latency-bound (max); many-warp blocks are bound by the
      // SM's issue throughput (sum over the quad scheduler).
      double mx = 0;
      double sum = 0;
      for (std::uint32_t w = 0; w < nwarps; ++w) {
        const double c = block_.warp_logs[w].end_epoch();
        mx = std::max(mx, c);
        sum += c;
      }
      block_cost += std::max(mx, sum / costs.warp_ilp);

      // One fused pass over the block: classify lanes, find the first
      // waiter and the first barrier-ordinal mismatch, and release the
      // waiters for the next wave. Releasing before the divergence checks
      // below is unobservable — on every throw path the block dies and
      // phases are reassigned at the next run_block — and at wave end every
      // lane is either done or parked at the block barrier, so the first
      // non-done lane is exactly the first waiter the scans used to find.
      bool any_done = false;
      bool any_waiting = false;
      std::uint32_t first_wait = nthreads;
      std::uint32_t mismatch_tid = nthreads;
      std::uint32_t seq = 0;
      for (std::uint32_t t = 0; t < nthreads; ++t) {
        if (block_.phase[t] == ThreadPhase::kDone) {
          any_done = true;
          continue;
        }
        any_waiting = true;  // suspended at syncthreads
        if (first_wait == nthreads) {
          first_wait = t;
          seq = block_.barrier_seq[t];
        } else if (mismatch_tid == nthreads && block_.barrier_seq[t] != seq) {
          mismatch_tid = t;
        }
        block_.phase[t] = ThreadPhase::kReady;
      }
      if (!any_waiting) break;  // kernel complete

      // Watchdog: a finite barrier-wave budget turns spin-on-flag
      // deadlocks and runaway syncthreads loops into a structured error
      // naming the stuck warp instead of hanging the host.
      steps += 1;
      if (steps > max_steps) {
        throw LaunchError(site_info(
            LaunchErrorCode::kWatchdog,
            "barrier-wave budget exhausted (max_steps=" +
                std::to_string(max_steps) +
                "): barrier deadlock or runaway loop",
            first_wait, steps));
      }

      if (any_done) {
        // Some threads exited while others wait at syncthreads: undefined
        // behaviour in CUDA. Model hardware leniency (exited threads count
        // as arrived) but record it; throw in strict mode.
        block_.barrier_exit_divergence = true;
        if (block_.strict_barriers) {
          throw LaunchError(site_info(
              LaunchErrorCode::kBarrierDivergence,
              "syncthreads divergence: threads exited while peers wait at "
              "a block barrier",
              first_wait, steps));
        }
      }
      // Threads rendezvousing with unequal per-thread barrier counts have
      // met at *different* syncthreads call sites — also CUDA UB (the
      // classic barrier-in-divergent-loop bug).
      if (mismatch_tid != nthreads) {
        block_.barrier_site_mismatch = true;
        if (block_.strict_barriers) {
          throw LaunchError(site_info(
              LaunchErrorCode::kBarrierDivergence,
              "syncthreads divergence: threads rendezvoused at different "
              "barrier instances (barrier inside a divergent loop?)",
              mismatch_tid, steps));
        }
      }
      block_.barriers += 1;
      // Racecheck: the barrier wave orders every earlier access before
      // everything the released threads do next.
      if (block_.racecheck != nullptr) block_.racecheck->on_syncthreads();
      // Attribute the wave to the stage of the first thread found waiting —
      // all waiters rendezvoused at the same call site (checked above), so
      // any waiter's stage names the barrier.
      if (block_.profile != nullptr) {
        block_.profile->row(block_.thread_stage[first_wait]).barriers += 1;
      }
      block_cost += costs.barrier_ns;
    }
  } catch (const LaunchError& e) {
    // A device-side fault (OOB access, strict-barrier violation, user
    // exception) leaves sibling fibers suspended mid-kernel. Abandon them:
    // their stacks are reclaimed, their frame-local objects are not
    // destroyed (they are trivial device-side values by construction).
    for (auto& f : fibers_) {
      if (!f->done()) f->abandon();
    }
    // This block's BlockRun dies with the throw, so injected faults that
    // already fired here (including a warp_abort's own event) ride on the
    // error — recovery harnesses keep their campaign accounting.
    if (block_.faults != nullptr) {
      block_.faults = nullptr;
      LaunchErrorInfo info = e.info();
      for (FaultEvent& ev : faults_.take_events()) {
        if (info.fired.size() >= BlockFaults::kMaxEventsPerBlock) break;
        info.fired.push_back(std::move(ev));
      }
      throw LaunchError(std::move(info));
    }
    throw;
  } catch (...) {
    for (auto& f : fibers_) {
      if (!f->done()) f->abandon();
    }
    throw;
  }

  stats.blocks += 1;
  stats.threads += nthreads;
  stats.barriers += block_.barriers;
  stats.syncwarps += block_.syncwarps;
  stats.barrier_exit_divergence += block_.barrier_exit_divergence ? 1 : 0;
  stats.barrier_site_mismatch += block_.barrier_site_mismatch ? 1 : 0;
  BlockRun run;
  run.cost_ns = block_cost;
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    const WarpLog& log = block_.warp_logs[w];
    stats.gmem_requests += log.gmem_requests;
    stats.gmem_segments += log.gmem_segments;
    stats.gmem_bytes += log.gmem_bytes;
    stats.smem_requests += log.smem_requests;
    stats.smem_cycles += log.smem_cycles;
    run.alu_units += log.alu_total;  // warp order, per block — merged in
                                     // block order by the launch driver
  }
  if (opts_.racecheck) {
    run.races = racecheck_.races();
    run.race_reports = racecheck_.take_reports(prof);
    block_.racecheck = nullptr;
  }
  if (block_.faults != nullptr) {
    run.fault_events = faults_.take_events();
    block_.faults = nullptr;
  }
  // Copy, not move: prof_table_ is the recycled per-block scratch — the
  // next block of this launch re-arms it with reset_stats(). Inherited
  // zero-stat rows in the copy merge away by name in the launch driver.
  if (opts_.profile) run.profile = prof_table_;
  block_.profile = nullptr;
  return run;
}

BlockScheduler& tls_scheduler() {
  thread_local BlockScheduler sched;
  return sched;
}

}  // namespace accred::gpusim
