#include "gpusim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace accred::gpusim {

namespace {

Dim3 unflatten_thread(std::uint32_t tid, const Dim3& block_dim) {
  Dim3 t;
  t.x = tid % block_dim.x;
  t.y = (tid / block_dim.x) % block_dim.y;
  t.z = tid / (block_dim.x * block_dim.y);
  return t;
}

}  // namespace

void BlockScheduler::advance_warp(std::uint32_t w, std::uint32_t nthreads) {
  const std::uint32_t first = w * 32;
  const std::uint32_t last = std::min(first + 32, nthreads);
  // One scan seeds the pass with the lanes the block barrier released;
  // afterwards the syncwarp arrival list is the ready set verbatim, so each
  // inner pass costs O(lanes resumed) instead of three 32-lane scans.
  ready_.clear();
  for (std::uint32_t t = first; t < last; ++t) {
    if (block_.phase[t] == ThreadPhase::kReady) ready_.push_back(t);
  }
  std::vector<std::uint32_t>& arrived = block_.warp_pending[w];
  for (;;) {
    for (std::uint32_t t : ready_) fibers_[t]->resume();
    // Every resumed lane is now parked at syncwarp (listed in `arrived`),
    // at the block barrier, or done.
    if (arrived.empty()) {
      // The warp's pass is over; retire its access groups to bound log
      // memory. Lanes at the block barrier (or exited) counted as arrived
      // at any syncwarp rendezvous released along the way.
      block_.warp_logs[w].flush_pending();
      return;
    }
    // Release the warp rendezvous: exactly the arrived lanes resume.
    block_.syncwarps += 1;
    // Racecheck: a syncwarp orders this warp's accesses across the
    // rendezvous — but only this warp's (racecheck.hpp).
    if (block_.racecheck != nullptr) block_.racecheck->on_syncwarp(w);
    // Attribute the rendezvous to the stage of the first-arrived lane (the
    // lanes of one warp move through scopes together).
    if (block_.profile != nullptr) {
      block_.profile->row(block_.thread_stage[arrived.front()]).syncwarps += 1;
    }
    for (std::uint32_t t : arrived) block_.phase[t] = ThreadPhase::kReady;
    ready_.swap(arrived);
    arrived.clear();
  }
}

BlockRun BlockScheduler::run_block(const KernelFn& kernel,
                                   const CostParams& costs, Dim3 block_idx,
                                   Dim3 block_dim, Dim3 grid_dim,
                                   std::size_t shared_bytes,
                                   LaunchStats& stats) {
  const auto nthreads = static_cast<std::uint32_t>(block_dim.count());
  const std::uint32_t nwarps = (nthreads + 31) / 32;

  // Arm per-stage attribution before any fiber runs; id 0 is pinned to the
  // unscoped stage so un-annotated kernels still profile cleanly. Racecheck
  // arms the table too — race reports attribute both accesses to their
  // prof_scope stage — but the table is only *returned* when profiling was
  // requested, so stats output is unchanged.
  obs::StageTable* prof = nullptr;
  if (opts_.profile || opts_.racecheck) {
    prof_table_ = obs::StageTable{};
    prof_table_.intern(obs::kUnscopedStageName);
    prof = &prof_table_;
    block_.thread_stage.assign(nthreads, 0);
  }
  block_.profile = prof;
  if (opts_.racecheck) {
    racecheck_.reset(shared_bytes, nwarps, block_idx, block_dim,
                     opts_.racecheck_global);
    block_.racecheck = &racecheck_;
  } else {
    block_.racecheck = nullptr;
  }

  block_.shared.assign(shared_bytes, std::byte{0});
  block_.warp_logs.resize(std::max<std::size_t>(block_.warp_logs.size(), nwarps));
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    block_.warp_logs[w].reset(costs, prof);
  }
  block_.warp_pending.resize(
      std::max<std::size_t>(block_.warp_pending.size(), nwarps));
  // Clear stale arrival lists (a prior block may have faulted mid-pass).
  for (std::uint32_t w = 0; w < nwarps; ++w) block_.warp_pending[w].clear();
  block_.phase.assign(nthreads, ThreadPhase::kReady);
  block_.barrier_seq.assign(nthreads, 0);
  block_.barriers = 0;
  block_.syncwarps = 0;
  block_.barrier_exit_divergence = false;
  block_.barrier_site_mismatch = false;
  block_.strict_barriers = opts_.strict_barriers;

  while (fibers_.size() < nthreads) {
    fibers_.push_back(std::make_unique<Fiber>(opts_.stack_bytes));
  }

  for (std::uint32_t t = 0; t < nthreads; ++t) {
    const Dim3 tidx = unflatten_thread(t, block_dim);
    fibers_[t]->reset([this, &kernel, tidx, block_idx, block_dim, grid_dim,
                       t]() {
      ThreadCtx ctx(block_, tidx, block_idx, block_dim, grid_dim);
      kernel(ctx);
      block_.phase[t] = ThreadPhase::kDone;
    });
  }

  double block_cost = 0;
  try {
    for (;;) {
      for (std::uint32_t w = 0; w < nwarps; ++w) advance_warp(w, nthreads);

      // Epoch boundary: fold warp costs into the block cost. Few-warp
      // blocks are latency-bound (max); many-warp blocks are bound by the
      // SM's issue throughput (sum over the quad scheduler).
      double mx = 0;
      double sum = 0;
      for (std::uint32_t w = 0; w < nwarps; ++w) {
        const double c = block_.warp_logs[w].end_epoch();
        mx = std::max(mx, c);
        sum += c;
      }
      block_cost += std::max(mx, sum / costs.warp_ilp);

      bool any_done = false;
      bool any_waiting = false;
      for (std::uint32_t t = 0; t < nthreads; ++t) {
        if (block_.phase[t] == ThreadPhase::kDone) {
          any_done = true;
        } else {
          any_waiting = true;  // suspended at syncthreads
        }
      }
      if (!any_waiting) break;  // kernel complete

      if (any_done) {
        // Some threads exited while others wait at syncthreads: undefined
        // behaviour in CUDA. Model hardware leniency (exited threads count
        // as arrived) but record it; throw in strict mode.
        block_.barrier_exit_divergence = true;
        if (block_.strict_barriers) {
          throw std::runtime_error(
              "syncthreads divergence: threads exited while peers wait at a "
              "block barrier");
        }
      }
      // Threads rendezvousing with unequal per-thread barrier counts have
      // met at *different* syncthreads call sites — also CUDA UB (the
      // classic barrier-in-divergent-loop bug).
      std::uint32_t seq = 0;
      bool seq_set = false;
      for (std::uint32_t t = 0; t < nthreads; ++t) {
        if (block_.phase[t] != ThreadPhase::kAtBarrier) continue;
        if (!seq_set) {
          seq = block_.barrier_seq[t];
          seq_set = true;
        } else if (block_.barrier_seq[t] != seq) {
          block_.barrier_site_mismatch = true;
          if (block_.strict_barriers) {
            throw std::runtime_error(
                "syncthreads divergence: threads rendezvoused at different "
                "barrier instances (barrier inside a divergent loop?)");
          }
          break;
        }
      }
      block_.barriers += 1;
      // Racecheck: the barrier wave orders every earlier access before
      // everything the released threads do next.
      if (block_.racecheck != nullptr) block_.racecheck->on_syncthreads();
      // Attribute the wave to the stage of the first thread found waiting —
      // all waiters rendezvoused at the same call site (checked above), so
      // any waiter's stage names the barrier.
      if (block_.profile != nullptr) {
        for (std::uint32_t t = 0; t < nthreads; ++t) {
          if (block_.phase[t] == ThreadPhase::kAtBarrier) {
            block_.profile->row(block_.thread_stage[t]).barriers += 1;
            break;
          }
        }
      }
      block_cost += costs.barrier_ns;
      for (std::uint32_t t = 0; t < nthreads; ++t) {
        if (block_.phase[t] == ThreadPhase::kAtBarrier) {
          block_.phase[t] = ThreadPhase::kReady;
        }
      }
    }
  } catch (...) {
    // A device-side fault (OOB access, strict-barrier violation, user
    // exception) leaves sibling fibers suspended mid-kernel. Abandon them:
    // their stacks are reclaimed, their frame-local objects are not
    // destroyed (they are trivial device-side values by construction).
    for (auto& f : fibers_) {
      if (!f->done()) f->abandon();
    }
    throw;
  }

  stats.blocks += 1;
  stats.threads += nthreads;
  stats.barriers += block_.barriers;
  stats.syncwarps += block_.syncwarps;
  BlockRun run;
  run.cost_ns = block_cost;
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    const WarpLog& log = block_.warp_logs[w];
    stats.gmem_requests += log.gmem_requests;
    stats.gmem_segments += log.gmem_segments;
    stats.gmem_bytes += log.gmem_bytes;
    stats.smem_requests += log.smem_requests;
    stats.smem_cycles += log.smem_cycles;
    run.alu_units += log.alu_total;  // warp order, per block — merged in
                                     // block order by the launch driver
  }
  // Resolve race reports first: they read stage names out of the table the
  // profile move below would hollow out.
  if (opts_.racecheck) {
    run.races = racecheck_.races();
    run.race_reports = racecheck_.take_reports(prof);
    block_.racecheck = nullptr;
  }
  if (opts_.profile) run.profile = std::move(prof_table_);
  block_.profile = nullptr;
  return run;
}

BlockScheduler& tls_scheduler() {
  thread_local BlockScheduler sched;
  return sched;
}

}  // namespace accred::gpusim
