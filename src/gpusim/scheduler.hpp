// Per-block fiber scheduler: runs the threads of one simulated thread block
// in deterministic warp/lane order, implements syncthreads / syncwarp
// rendezvous, and folds the warp logs into block cost + launch statistics.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/fiber.hpp"
#include "gpusim/racecheck.hpp"
#include "gpusim/thread_ctx.hpp"

namespace accred::gpusim {

/// Device kernel: a callable executed once per simulated thread.
using KernelFn = std::function<void(ThreadCtx&)>;

/// Simulation knobs (distinct from the modeled device's CostParams).
struct SimOptions {
  bool strict_barriers = false;      ///< throw if threads exit while peers
                                     ///< wait at syncthreads (CUDA UB)
  std::size_t stack_bytes = 64 * 1024;
  /// Host worker threads simulating the blocks of one launch. 0 = process
  /// default (ACCRED_SIM_THREADS env, else hardware_concurrency — see
  /// pool.hpp); 1 = serial. Any value produces bit-identical LaunchStats
  /// and kernel results (DESIGN.md §7).
  std::uint32_t sim_threads = 0;
  /// Per-stage event attribution (obs/profiler.hpp). When true — or when
  /// the ACCRED_PROFILE environment variable is truthy — every launch
  /// fills LaunchStats::profile from the kernel's prof_scope annotations.
  /// Off by default: the hot paths then carry a single null-pointer branch.
  bool profile = false;
  /// Dynamic race detection (racecheck.hpp). When true — or when the
  /// ACCRED_RACECHECK environment variable is truthy — every shared (and,
  /// with racecheck_global, global) access is shadow-tracked per barrier
  /// interval, and conflicts surface in LaunchStats::race_reports instead
  /// of crashing. Off by default: like profiling, the hot paths then carry
  /// a single null-pointer branch and the stats stay bit-identical.
  bool racecheck = false;
  /// Also shadow global-buffer words (per block; blocks are independent by
  /// the CUDA contract, so cross-block global races are out of scope).
  /// Only meaningful when racecheck is on.
  bool racecheck_global = true;
  /// Role name of this launch in the exported trace (obs/trace.hpp) —
  /// "vector_partial", "finalize_1block", ... Copied, so callers may pass
  /// transient strings; empty renders as "kernel". Has no effect on
  /// simulation or stats.
  std::string label;
};

/// Per-block outputs of one simulated block that must merge in flattened
/// block-id order (doubles — their fold order is part of the determinism
/// contract; the integer event totals merge commutatively via LaunchStats).
struct BlockRun {
  double cost_ns = 0;    ///< modeled block cost (estimate_device_time input)
  double alu_units = 0;  ///< warp-ordered ALU total of this block
  /// Per-stage attribution for this block (empty unless SimOptions::profile).
  /// Stage ids are interned per block in first-scope order — deterministic,
  /// since a block simulates on one host thread — and launch.cpp merges the
  /// tables by name in flattened block order.
  obs::StageTable profile;
  /// Racecheck results of this block (empty unless SimOptions::racecheck):
  /// the exact conflicting-pair count and the per-block capped reports,
  /// already resolved to thread coordinates and stage names. launch.cpp
  /// folds both in flattened block order (determinism contract).
  std::uint64_t races = 0;
  std::vector<RaceReport> race_reports;
};

class BlockScheduler {
public:
  explicit BlockScheduler(SimOptions opts = {}) : opts_(opts) {}

  /// Simulate one thread block; returns the modeled block cost and ALU
  /// total and accumulates the integer event totals into `stats`
  /// (stats.alu_units is left untouched — the launch driver folds the
  /// returned per-block values in block order, see launch.cpp).
  BlockRun run_block(const KernelFn& kernel, const CostParams& costs,
                     Dim3 block_idx, Dim3 block_dim, Dim3 grid_dim,
                     std::size_t shared_bytes, LaunchStats& stats);

  [[nodiscard]] const SimOptions& options() const noexcept { return opts_; }
  void set_options(SimOptions opts) noexcept { opts_ = opts; }

private:
  /// Run warp `w` until every lane is at a block barrier or done,
  /// releasing syncwarp rendezvous along the way.
  void advance_warp(std::uint32_t w, std::uint32_t nthreads);

  SimOptions opts_;
  BlockState block_;
  obs::StageTable prof_table_;  ///< per-block stage table when profiling
  RaceChecker racecheck_;       ///< per-block shadow state when racechecking
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<std::uint32_t> ready_;  ///< advance_warp scratch: runnable tids
};

/// Reusable per-OS-thread scheduler (fiber stacks are the expensive part).
/// The parallel launch path (pool.hpp) relies on exactly this per-thread
/// ownership: every pool worker simulates its blocks on its own scheduler,
/// so no block state is ever shared between host threads.
BlockScheduler& tls_scheduler();

}  // namespace accred::gpusim
