// Per-block fiber scheduler: runs the threads of one simulated thread block
// in deterministic warp/lane order, implements syncthreads / syncwarp
// rendezvous, and folds the warp logs into block cost + launch statistics.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/fiber.hpp"
#include "gpusim/thread_ctx.hpp"

namespace accred::gpusim {

/// Device kernel: a callable executed once per simulated thread.
using KernelFn = std::function<void(ThreadCtx&)>;

/// Simulation knobs (distinct from the modeled device's CostParams).
struct SimOptions {
  bool strict_barriers = false;      ///< throw if threads exit while peers
                                     ///< wait at syncthreads (CUDA UB)
  std::size_t stack_bytes = 64 * 1024;
};

class BlockScheduler {
public:
  explicit BlockScheduler(SimOptions opts = {}) : opts_(opts) {}

  /// Simulate one thread block; returns the modeled block cost in ns and
  /// accumulates event totals into `stats`.
  double run_block(const KernelFn& kernel, const CostParams& costs,
                   Dim3 block_idx, Dim3 block_dim, Dim3 grid_dim,
                   std::size_t shared_bytes, LaunchStats& stats);

  [[nodiscard]] const SimOptions& options() const noexcept { return opts_; }
  void set_options(SimOptions opts) noexcept { opts_ = opts; }

private:
  /// Run warp `w` until every lane is at a block barrier or done,
  /// releasing syncwarp rendezvous along the way.
  void advance_warp(std::uint32_t w, std::uint32_t nthreads);

  SimOptions opts_;
  BlockState block_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
};

/// Reusable per-OS-thread scheduler (fiber stacks are the expensive part).
BlockScheduler& tls_scheduler();

}  // namespace accred::gpusim
