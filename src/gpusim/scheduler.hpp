// Per-block fiber scheduler: runs the threads of one simulated thread block
// in deterministic warp/lane order, implements syncthreads / syncwarp
// rendezvous, and folds the warp logs into block cost + launch statistics.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/error.hpp"
#include "gpusim/faultinject.hpp"
#include "gpusim/fiber.hpp"
#include "gpusim/pool.hpp"
#include "gpusim/racecheck.hpp"
#include "gpusim/thread_ctx.hpp"

namespace accred::gpusim {

/// Device kernel: a callable executed once per simulated thread.
using KernelFn = std::function<void(ThreadCtx&)>;

/// Simulation knobs (distinct from the modeled device's CostParams).
struct SimOptions {
  bool strict_barriers = false;      ///< throw if threads exit while peers
                                     ///< wait at syncthreads (CUDA UB)
  std::size_t stack_bytes = 64 * 1024;
  /// Host worker threads simulating the blocks of one launch. 0 = process
  /// default (ACCRED_SIM_THREADS env, else hardware_concurrency — see
  /// pool.hpp); 1 = serial. Any value produces bit-identical LaunchStats
  /// and kernel results (DESIGN.md §7).
  std::uint32_t sim_threads = 0;
  /// Per-stage event attribution (obs/profiler.hpp). When true — or when
  /// the ACCRED_PROFILE environment variable is truthy — every launch
  /// fills LaunchStats::profile from the kernel's prof_scope annotations.
  /// Off by default: the hot paths then carry a single null-pointer branch.
  bool profile = false;
  /// Dynamic race detection (racecheck.hpp). When true — or when the
  /// ACCRED_RACECHECK environment variable is truthy — every shared (and,
  /// with racecheck_global, global) access is shadow-tracked per barrier
  /// interval, and conflicts surface in LaunchStats::race_reports instead
  /// of crashing. Off by default: like profiling, the hot paths then carry
  /// a single null-pointer branch and the stats stay bit-identical.
  bool racecheck = false;
  /// Also shadow global-buffer words (per block; blocks are independent by
  /// the CUDA contract, so cross-block global races are out of scope).
  /// Only meaningful when racecheck is on.
  bool racecheck_global = true;
  /// Escalate racecheck conflicts to a LaunchError{kRace} after the stats
  /// merge (launch.cpp) instead of merely reporting them. Gives barrier
  /// mutations a structured, terminating failure without strict mode.
  bool error_on_race = false;
  /// Watchdog: per-block barrier-wave budget. A kernel whose threads keep
  /// rendezvousing forever (spin-on-flag deadlocks, runaway syncthreads
  /// loops) trips a LaunchError{kWatchdog} with the stuck warp's
  /// coordinates instead of hanging the host. 0 = default
  /// (ACCRED_MAX_STEPS env, else kDefaultMaxSteps). Note the limit of the
  /// cooperative scheduler: a non-yielding infinite loop (no barrier, no
  /// instrumented access inside) cannot be preempted (DESIGN.md §11).
  std::uint64_t max_steps = 0;
  /// Fault-injection spec (faultinject.hpp grammar); "" = the
  /// ACCRED_FAULTS env default. launch() parses it into fault_plan below —
  /// callers driving BlockScheduler directly must set fault_plan instead.
  std::string faults = {};
  /// The resolved plan the scheduler arms per block. Shared: SimOptions is
  /// copied per shard and the plan is immutable during a launch.
  std::shared_ptr<const FaultPlan> fault_plan = nullptr;
  /// Client cancellation token (pool.hpp). When set, launch() consumes one
  /// cancel_at_launch() tick at entry and refuses to start a cancelled
  /// launch, and every block checks the token at each barrier wave so a
  /// running launch terminates promptly with a structured
  /// LaunchError{kCancelled}. Shared: the client keeps one end, every shard
  /// reads the same atomic. Null = not cancellable (no overhead).
  std::shared_ptr<CancelToken> cancel_token = nullptr;
  /// Role name of this launch in the exported trace (obs/trace.hpp) —
  /// "vector_partial", "finalize_1block", ... Copied, so callers may pass
  /// transient strings; empty renders as "kernel". Has no effect on
  /// simulation or stats.
  std::string label;
  /// Converged-warp fast path (DESIGN.md §12): drive each warp pass as one
  /// chained sweep over its ready lanes (FastChain — one context switch per
  /// suspension, no scheduler bounce) instead of the classic per-lane
  /// resume()/yield() round-trips. Purely an execution strategy: every
  /// statistic, profile, race report and fault event is bit-identical with
  /// it on or off, for any sim_threads. launch() additionally gates this on
  /// default_fastpath() (the ACCRED_FASTPATH env / --no-fastpath override,
  /// pool.hpp), so either knob can force the classic path for bisection.
  bool fastpath = true;
};

/// Per-block outputs of one simulated block that must merge in flattened
/// block-id order (doubles — their fold order is part of the determinism
/// contract; the integer event totals merge commutatively via LaunchStats).
struct BlockRun {
  double cost_ns = 0;    ///< modeled block cost (estimate_device_time input)
  double alu_units = 0;  ///< warp-ordered ALU total of this block
  /// Per-stage attribution for this block (empty unless SimOptions::profile).
  /// Stage ids are interned per block in first-scope order — deterministic,
  /// since a block simulates on one host thread — and launch.cpp merges the
  /// tables by name in flattened block order.
  obs::StageTable profile;
  /// Racecheck results of this block (empty unless SimOptions::racecheck):
  /// the exact conflicting-pair count and the per-block capped reports,
  /// already resolved to thread coordinates and stage names. launch.cpp
  /// folds both in flattened block order (determinism contract).
  std::uint64_t races = 0;
  std::vector<RaceReport> race_reports;
  /// Injected faults that fired in this block (empty unless a fault plan
  /// was armed), in firing order; launch.cpp concatenates them in
  /// flattened block order under the same determinism contract.
  std::vector<FaultEvent> fault_events;
};

/// Default per-block barrier-wave budget: generous (the paper's full-scale
/// cases stay well under 10^5 waves per block) but finite, so a deadlock
/// surfaces in seconds instead of never. ACCRED_MAX_STEPS overrides.
inline constexpr std::uint64_t kDefaultMaxSteps = 4'000'000;
[[nodiscard]] std::uint64_t default_max_steps();

class BlockScheduler {
public:
  explicit BlockScheduler(SimOptions opts = {}) : opts_(opts) {}

  /// Simulate one thread block; returns the modeled block cost and ALU
  /// total and accumulates the integer event totals into `stats`
  /// (stats.alu_units is left untouched — the launch driver folds the
  /// returned per-block values in block order, see launch.cpp). When
  /// `cancel` is given, the block aborts with LaunchError{kCancelled} at
  /// the next barrier wave once a lower-numbered shard reported a fault.
  BlockRun run_block(const KernelFn& kernel, const CostParams& costs,
                     Dim3 block_idx, Dim3 block_dim, Dim3 grid_dim,
                     std::size_t shared_bytes, LaunchStats& stats,
                     const CancelFlag* cancel = nullptr,
                     std::uint32_t shard = 0);

  [[nodiscard]] const SimOptions& options() const noexcept { return opts_; }
  void set_options(SimOptions opts) noexcept { opts_ = opts; }

  /// Launch boundary for this scheduler's recycled per-block scratch: drops
  /// interned stage names (keeping capacity) so one kernel's prof_scope set
  /// never bleeds into the next launch's tables. Called by the launch
  /// driver once per shard before its first run_block.
  void begin_launch() { prof_table_.clear(); }

private:
  /// Run warp `w` until every lane is at a block barrier or done,
  /// releasing syncwarp rendezvous along the way.
  void advance_warp(std::uint32_t w, std::uint32_t nthreads);

  /// Fiber entry point for one simulated thread (Fiber::RawEntry): builds
  /// the ThreadCtx and runs the current kernel. Arming it stores two
  /// pointers per lane per block — no closure allocation. `arg` is a
  /// LaneArg; one entry serves both execution modes (the fast path catches
  /// at the kernel boundary and leave()s, the classic path returns into the
  /// trampoline).
  static void run_thread(void* arg);

  /// Per-lane argument for run_thread; stable for the duration of a block.
  struct LaneArg {
    BlockScheduler* sched;
    std::uint32_t tid;
  };

  SimOptions opts_;
  BlockState block_;
  obs::StageTable prof_table_;  ///< per-block stage table when profiling
  RaceChecker racecheck_;       ///< per-block shadow state when racechecking
  BlockFaults faults_;          ///< per-block injector state when armed
  FiberStackPool stacks_;       ///< pooled lane stacks, recycled per block
  FastChain chain_;             ///< fast-path pass driver (DESIGN.md §12)
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<Fiber*> fiber_raw_;     ///< fibers_[i].get(), chain_.run input
  std::vector<LaneArg> lane_args_;    ///< run_thread args, one per lane
  std::vector<std::uint32_t> ready_;  ///< advance_warp scratch: runnable tids
  bool use_fastpath_ = false;         ///< resolved per run_block from opts_

  // Launch parameters of the block currently simulating, for run_thread.
  const KernelFn* cur_kernel_ = nullptr;
  Dim3 cur_block_idx_{};
  Dim3 cur_block_dim_{};
  Dim3 cur_grid_dim_{};
};

/// Reusable per-OS-thread scheduler (fiber stacks are the expensive part).
/// The parallel launch path (pool.hpp) relies on exactly this per-thread
/// ownership: every pool worker simulates its blocks on its own scheduler,
/// so no block state is ever shared between host threads.
BlockScheduler& tls_scheduler();

}  // namespace accred::gpusim
