#include "gpusim/launch.hpp"

#include <chrono>
#include <exception>
#include <vector>

#include "gpusim/pool.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace accred::gpusim {

namespace {

/// Shard-private accumulator, cache-line padded so concurrent workers do
/// not false-share while counting events.
struct alignas(64) ShardState {
  LaunchStats stats;
  std::exception_ptr error;
};

}  // namespace

LaunchStats launch(Device& dev, Dim3 grid, Dim3 block,
                   std::size_t shared_bytes, const KernelFn& kernel,
                   const SimOptions& opts) {
  validate_launch(grid, block, shared_bytes, dev.limits());

  // Client cancellation (pool.hpp CancelToken): consume one scheduled
  // cancel_at_launch() tick, then refuse to start a launch whose token is
  // already cancelled. Checked before the trace envelope opens so the
  // refusal leaves no unbalanced spans, and before any block simulates so
  // a pre-cancelled launch costs nothing.
  if (opts.cancel_token) {
    opts.cancel_token->on_launch_begin();
    if (opts.cancel_token->cancelled()) {
      LaunchErrorInfo info;
      info.code = LaunchErrorCode::kCancelled;
      info.message = "launch cancelled by client before start";
      throw LaunchError(std::move(info));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t nblocks = grid.count();
  const std::uint32_t nshards = resolve_sim_threads(opts.sim_threads, nblocks);

  // Per-stage attribution: explicit opt-in or the ACCRED_PROFILE env
  // default. Resolved once here so every shard scheduler sees the same
  // decision.
  const bool profiling = opts.profile || obs::profile_env_default();
  // Race detection resolves the same way (explicit opt-in or the
  // ACCRED_RACECHECK env default).
  const bool racecheck = opts.racecheck || racecheck_env_default();
  SimOptions sched_opts = opts;
  sched_opts.profile = profiling;
  sched_opts.racecheck = racecheck;
  // Converged-warp fast path: the per-launch knob AND the process default
  // (ACCRED_FASTPATH env / --no-fastpath, pool.hpp) must both be on.
  // Resolved once so every shard takes the same path; either way the
  // results are bit-identical (DESIGN.md §12).
  sched_opts.fastpath = opts.fastpath && default_fastpath();
  // Fault injection: an explicit spec (SimOptions::faults), a pre-resolved
  // plan, or the ACCRED_FAULTS env default. Parsed once so every shard
  // scheduler arms the identical immutable plan.
  std::shared_ptr<const FaultPlan> fault_plan = opts.fault_plan;
  if (fault_plan == nullptr) {
    const std::string& spec =
        !opts.faults.empty() ? opts.faults : faults_env_default();
    if (!spec.empty()) {
      fault_plan = std::make_shared<const FaultPlan>(FaultPlan::parse(spec));
    }
  }
  const bool faults_on = fault_plan != nullptr && !fault_plan->empty();
  sched_opts.fault_plan = faults_on ? fault_plan : nullptr;

  // Kernel begin/end span on virtual tid 0; shard spans and per-block
  // events land on tid 1+shard so the launch envelope stays balanced even
  // while shards overlap. All guarded by one relaxed load when disabled.
  const bool tracing = obs::trace_enabled();
  const char* trace_label = opts.label.empty() ? "kernel" : opts.label.c_str();
  if (tracing) {
    obs::trace_begin(trace_label, 0,
                     {{"blocks", static_cast<double>(nblocks)},
                      {"threads", static_cast<double>(block.count())},
                      {"shards", static_cast<double>(nshards)}});
  }

  // Per-block outputs indexed by flattened block id: every shard writes
  // disjoint slots, and the folds below walk them in issue order, so the
  // merged stats and the estimate_device_time() input are bit-identical to
  // a serial run no matter how the shards interleave.
  std::vector<double> block_costs(nblocks);
  std::vector<double> block_alu(nblocks);
  // Per-block stage tables, merged below in the same block-order fold as
  // block_alu — the per-stage doubles inherit the determinism contract.
  std::vector<obs::StageTable> block_profiles(profiling ? nblocks : 0);
  // Per-block race results, folded below in the same block-order walk so
  // the reports (and their cap cut-off) are identical for any sim_threads.
  std::vector<std::uint64_t> block_races(racecheck ? nblocks : 0);
  std::vector<std::vector<RaceReport>> block_race_reports(racecheck ? nblocks
                                                                    : 0);
  // Per-block fired-fault lists, concatenated in the same block-order walk.
  std::vector<std::vector<FaultEvent>> block_fault_events(
      faults_on ? nblocks : 0);
  std::vector<ShardState> shards(nshards);
  // First fatal shard stops the siblings above it promptly (pool.hpp);
  // shards below it keep running — one of them may still hold the
  // deterministic (lowest-block) error a serial sweep would surface first.
  CancelFlag cancel;

  // CUDA issue order: blockIdx.x fastest.
  const auto block_idx_of = [grid](std::uint64_t b) {
    return Dim3{static_cast<std::uint32_t>(b % grid.x),
                static_cast<std::uint32_t>((b / grid.x) % grid.y),
                static_cast<std::uint32_t>(
                    b / (static_cast<std::uint64_t>(grid.x) * grid.y))};
  };

  HostPool::instance().run(nshards, [&](std::uint32_t s) {
    // Contiguous shard of the flattened block range. Each OS thread runs
    // its blocks on its own scheduler (warm fiber stacks), in issue order.
    BlockScheduler& sched = tls_scheduler();
    sched.set_options(sched_opts);
    sched.begin_launch();  // drop stage names interned by earlier launches
    ShardState& shard = shards[s];
    const std::uint64_t lo = nblocks * s / nshards;
    const std::uint64_t hi = nblocks * (s + 1) / nshards;
    const double shard_t0 = tracing ? obs::trace_now_us() : 0;
    try {
      for (std::uint64_t b = lo; b < hi; ++b) {
        if (cancel.cancelled_for(s)) break;  // a lower shard holds the error
        const std::uint64_t barriers_before = shard.stats.barriers;
        const double block_t0 = tracing ? obs::trace_now_us() : 0;
        BlockRun run =
            sched.run_block(kernel, dev.costs(), block_idx_of(b), block,
                            grid, shared_bytes, shard.stats, &cancel, s);
        block_costs[b] = run.cost_ns;
        block_alu[b] = run.alu_units;
        const std::size_t stages = run.profile.rows().size();
        if (profiling) block_profiles[b] = std::move(run.profile);
        if (racecheck) {
          block_races[b] = run.races;
          block_race_reports[b] = std::move(run.race_reports);
        }
        if (faults_on) block_fault_events[b] = std::move(run.fault_events);
        if (tracing) {
          // One span per simulated block, annotated with its barrier waves
          // — the syncthreads rendezvous this block went through — and the
          // number of profiler stages it interned (0 when profiling off).
          obs::trace_complete(
              "block", s + 1, block_t0, obs::trace_now_us() - block_t0,
              {{"block", static_cast<double>(b)},
               {"barrier_waves",
                static_cast<double>(shard.stats.barriers - barriers_before)},
               {"stages", static_cast<double>(stages)},
               {"modeled_ms", run.cost_ns / 1e6}});
        }
      }
      if (tracing) {
        obs::trace_complete("shard", s + 1, shard_t0,
                            obs::trace_now_us() - shard_t0,
                            {{"shard", static_cast<double>(s)},
                             {"blocks", static_cast<double>(hi - lo)}});
      }
    } catch (const LaunchError& e) {
      // A device-side fault stops this shard at its first faulting block —
      // exactly where a serial sweep of the shard's range would stop — and
      // cancels the shards above it (their blocks come later in issue
      // order, so their errors would be suppressed serially anyway).
      // Sibling-shard kCancelled is bookkeeping, not an error: the shard
      // just obeyed a lower shard's cancellation, so it records nothing. A
      // *client* kCancelled (SimOptions::cancel_token fired mid-launch) is
      // a real terminal outcome: record it canonicalized, so the launch
      // fails with the identical error no matter which shard noticed first
      // or how far the others got.
      if (e.info().code != LaunchErrorCode::kCancelled) {
        shard.error = std::current_exception();
        cancel.cancel_from(s);
      } else if (sched_opts.cancel_token && sched_opts.cancel_token->cancelled()) {
        LaunchErrorInfo info;
        info.code = LaunchErrorCode::kCancelled;
        info.message = "launch cancelled by client";
        shard.error = std::make_exception_ptr(LaunchError(std::move(info)));
        cancel.cancel_from(s);
      }
    } catch (...) {
      shard.error = std::current_exception();
      cancel.cancel_from(s);
    }
  });

  // Deterministic fault propagation: shards are contiguous and are only
  // ever cancelled from *below*, so the lowest faulting shard always ran
  // far enough to hold the fault with the lowest block id any sweep could
  // encounter — the same exception the serial loop surfaces, no matter how
  // the shards interleaved or which of them were cancelled.
  for (const ShardState& shard : shards) {
    if (shard.error) {
      if (tracing) obs::trace_end(0);  // close the kernel span (balance)
      std::rethrow_exception(shard.error);
    }
  }

  LaunchStats stats;
  for (const ShardState& shard : shards) stats += shard.stats;  // integers
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    stats.alu_units += block_alu[b];  // doubles: fold in block order
  }
  if (profiling) {
    // Stage tables join by name in the same flattened-block order, so the
    // per-stage totals (including their alu doubles) are bit-identical for
    // any sim_threads.
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      stats.profile.merge(block_profiles[b]);
    }
  }
  stats.racecheck = racecheck;
  if (racecheck) {
    // Reports concatenate in flattened block order, so the launch-level cap
    // cuts at the same report for any sim_threads.
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      stats.races += block_races[b];
      for (RaceReport& r : block_race_reports[b]) {
        if (stats.race_reports.size() >= RaceChecker::kMaxReportsPerLaunch) {
          break;
        }
        stats.race_reports.push_back(std::move(r));
      }
    }
  }
  stats.faults_armed = faults_on;
  if (faults_on) {
    // Fired faults concatenate in flattened block order too — the same
    // events, in the same order, for any sim_threads.
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      for (FaultEvent& e : block_fault_events[b]) {
        if (stats.fault_events.size() >= BlockFaults::kMaxEventsPerLaunch) {
          break;
        }
        stats.fault_events.push_back(std::move(e));
      }
    }
  }
  // Escalate detected races to a structured, terminating error when asked:
  // this is what gives uniformly-deleted barriers (no divergence, no hang —
  // just a data race) a LaunchError without strict mode. The first report
  // in block order names the site; the count is exact.
  if (racecheck && sched_opts.error_on_race && stats.races > 0) {
    LaunchErrorInfo info;
    info.code = LaunchErrorCode::kRace;
    info.message = std::to_string(stats.races) + " racecheck conflict" +
                   (stats.races == 1 ? "" : "s") + " detected";
    if (!stats.race_reports.empty()) {
      const RaceReport& r = stats.race_reports.front();
      info.message += " (first: " + to_string(r) + ")";
      info.stage = r.second.stage;
      info.block = r.block;
      const std::uint32_t linear =
          r.second.thread.x + r.second.thread.y * block.x +
          r.second.thread.z * block.x * block.y;
      info.warp = linear / 32;
      info.has_site = true;
    }
    // The merged stats die with this throw; hand the fired-fault list to
    // the error so recovery harnesses keep their campaign accounting (an
    // injected skip_barrier whose only symptom is this race would
    // otherwise vanish from the record).
    info.fired = std::move(stats.fault_events);
    if (tracing) obs::trace_end(0);  // close the kernel span (balance)
    throw LaunchError(std::move(info));
  }
  stats.device_time_ns = estimate_device_time(dev.costs(), dev.limits(),
                                              block_costs, stats.gmem_bytes);
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_time_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  if (tracing) {
    obs::trace_counter("modeled_device_ms", stats.device_time_ns / 1e6);
    obs::trace_counter("barrier_waves", static_cast<double>(stats.barriers));
    obs::trace_end(0);
  }
  return stats;
}

}  // namespace accred::gpusim
