#include "gpusim/launch.hpp"

#include <chrono>
#include <exception>
#include <vector>

#include "gpusim/pool.hpp"

namespace accred::gpusim {

namespace {

/// Shard-private accumulator, cache-line padded so concurrent workers do
/// not false-share while counting events.
struct alignas(64) ShardState {
  LaunchStats stats;
  std::exception_ptr error;
};

}  // namespace

LaunchStats launch(Device& dev, Dim3 grid, Dim3 block,
                   std::size_t shared_bytes, const KernelFn& kernel,
                   const SimOptions& opts) {
  validate_launch(grid, block, shared_bytes, dev.limits());

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t nblocks = grid.count();
  const std::uint32_t nshards = resolve_sim_threads(opts.sim_threads, nblocks);

  // Per-block outputs indexed by flattened block id: every shard writes
  // disjoint slots, and the folds below walk them in issue order, so the
  // merged stats and the estimate_device_time() input are bit-identical to
  // a serial run no matter how the shards interleave.
  std::vector<double> block_costs(nblocks);
  std::vector<double> block_alu(nblocks);
  std::vector<ShardState> shards(nshards);

  // CUDA issue order: blockIdx.x fastest.
  const auto block_idx_of = [grid](std::uint64_t b) {
    return Dim3{static_cast<std::uint32_t>(b % grid.x),
                static_cast<std::uint32_t>((b / grid.x) % grid.y),
                static_cast<std::uint32_t>(
                    b / (static_cast<std::uint64_t>(grid.x) * grid.y))};
  };

  HostPool::instance().run(nshards, [&](std::uint32_t s) {
    // Contiguous shard of the flattened block range. Each OS thread runs
    // its blocks on its own scheduler (warm fiber stacks), in issue order.
    BlockScheduler& sched = tls_scheduler();
    sched.set_options(opts);
    ShardState& shard = shards[s];
    const std::uint64_t lo = nblocks * s / nshards;
    const std::uint64_t hi = nblocks * (s + 1) / nshards;
    try {
      for (std::uint64_t b = lo; b < hi; ++b) {
        const BlockRun run =
            sched.run_block(kernel, dev.costs(), block_idx_of(b), block,
                            grid, shared_bytes, shard.stats);
        block_costs[b] = run.cost_ns;
        block_alu[b] = run.alu_units;
      }
    } catch (...) {
      // A device-side fault stops this shard at its first faulting block —
      // exactly where a serial sweep of the shard's range would stop.
      // Sibling shards finish independently; the merge below picks the
      // deterministic winner.
      shard.error = std::current_exception();
    }
  });

  // Deterministic fault propagation: shards are contiguous, so the lowest
  // faulting shard holds the fault with the lowest block id any sweep
  // could encounter — the same exception the serial loop surfaces.
  for (const ShardState& shard : shards) {
    if (shard.error) std::rethrow_exception(shard.error);
  }

  LaunchStats stats;
  for (const ShardState& shard : shards) stats += shard.stats;  // integers
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    stats.alu_units += block_alu[b];  // doubles: fold in block order
  }
  stats.device_time_ns = estimate_device_time(dev.costs(), dev.limits(),
                                              block_costs, stats.gmem_bytes);
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_time_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return stats;
}

}  // namespace accred::gpusim
