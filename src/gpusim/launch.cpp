#include "gpusim/launch.hpp"

#include <chrono>
#include <vector>

namespace accred::gpusim {

LaunchStats launch(Device& dev, Dim3 grid, Dim3 block,
                   std::size_t shared_bytes, const KernelFn& kernel,
                   const SimOptions& opts) {
  validate_launch(grid, block, shared_bytes, dev.limits());

  const auto t0 = std::chrono::steady_clock::now();
  BlockScheduler& sched = tls_scheduler();
  sched.set_options(opts);

  LaunchStats stats;
  std::vector<double> block_costs;
  block_costs.reserve(grid.count());
  // CUDA issue order: blockIdx.x fastest.
  for (std::uint32_t bz = 0; bz < grid.z; ++bz) {
    for (std::uint32_t by = 0; by < grid.y; ++by) {
      for (std::uint32_t bx = 0; bx < grid.x; ++bx) {
        block_costs.push_back(sched.run_block(kernel, dev.costs(),
                                              Dim3{bx, by, bz}, block, grid,
                                              shared_bytes, stats));
      }
    }
  }
  stats.device_time_ns = estimate_device_time(dev.costs(), dev.limits(),
                                              block_costs, stats.gmem_bytes);
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_time_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return stats;
}

}  // namespace accred::gpusim
