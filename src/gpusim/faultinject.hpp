// Deterministic fault injection for the SIMT simulator — the probe half of
// the robustness layer (DESIGN.md §11). A seeded, per-launch FaultPlan
// (SimOptions::faults / --faults / ACCRED_FAULTS) arms faults at named
// sites keyed by prof_scope stage plus (block, warp) coordinates:
//
//   * bitflip       — flip one seeded bit of the nth matching shared/global
//                     store's payload (silent data corruption),
//   * skip_barrier  — the matching threads return from their nth
//                     syncthreads without rendezvousing (a deleted or
//                     divergent barrier; pairs with racecheck/watchdog),
//   * warp_abort    — throw LaunchError{kWarpAbort} from the nth
//                     instrumented device operation of a matching warp,
//   * alloc_fail    — fail the nth device allocation with a matching label
//                     (armed on the Device, not per block — device.hpp).
//
// Spec grammar (';'-separated faults):
//   kind[@stage][:key=value,...,sticky]
//   keys: block=N (flattened id, -1 = every block), warp=N (-1 = any),
//         nth=N (0-based), seed=N, bit=N (else seeded choice)
//   e.g. "bitflip@staging:block=3,nth=2,seed=7;skip_barrier@tree:warp=0"
//
// Determinism: all trigger counters live in per-block state advanced by the
// block's single host thread in simulation order, and seeds mix only the
// (flat block, event ordinal) pair — so a campaign is bit-reproducible for
// any --sim-threads. Non-sticky faults are stripped by the degradation
// executor after the first failed attempt (a deterministic injector would
// otherwise fail every retry identically); sticky faults persist so the
// ladder itself gets exercised.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/dim3.hpp"

namespace accred::obs {
class StageTable;
}

namespace accred::gpusim {

enum class FaultKind : std::uint8_t {
  kBitFlip,
  kSkipBarrier,
  kWarpAbort,
  kAllocFail,
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

/// One armed fault site.
struct Fault {
  static constexpr std::uint32_t kAnyBit = 0xffffffffu;

  FaultKind kind = FaultKind::kBitFlip;
  /// prof_scope stage the site is keyed to ("" = any stage). For
  /// kAllocFail this is the allocation label instead.
  std::string stage;
  std::int64_t block = -1;  ///< flattened block id; -1 = every block
  std::int32_t warp = -1;   ///< warp within the block; -1 = any warp
  std::uint64_t nth = 0;    ///< fire on the nth matching event (0-based)
  std::uint64_t seed = 1;   ///< mixed into the bit choice for kBitFlip
  std::uint32_t bit = kAnyBit;  ///< explicit bit index, else seeded
  bool sticky = false;      ///< survives the executor's retry stripping

  /// Render back to one spec clause (parse round-trips).
  [[nodiscard]] std::string to_spec() const;
};

/// A parsed --faults spec: the launch-wide list of armed fault sites.
class FaultPlan {
 public:
  /// Parse a spec string (grammar above). Throws std::invalid_argument
  /// with the offending clause on malformed input.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  [[nodiscard]] bool empty() const noexcept { return faults_.empty(); }
  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] bool has_alloc_faults() const noexcept;

  [[nodiscard]] std::string to_spec() const;
  /// The spec of only the sticky faults — what the degradation executor
  /// re-arms after a failed attempt ("" when none are sticky).
  [[nodiscard]] std::string sticky_spec() const;

 private:
  std::vector<Fault> faults_;
};

/// One fault that actually fired, resolved to coordinates and stage name;
/// merged block-ordered into LaunchStats::fault_events (deterministic).
struct FaultEvent {
  FaultKind kind = FaultKind::kBitFlip;
  Dim3 block{};
  std::uint32_t warp = 0;
  std::string stage;
  std::string detail;  ///< e.g. "flipped bit 12 of 8-byte shared store @0x40"
};

[[nodiscard]] std::string to_string(const FaultEvent& e);

/// Per-block injector state. Owned by the BlockScheduler (like the
/// RaceChecker) and reset per block; every counter advances on the block's
/// single host thread in simulation order, so firing decisions are
/// independent of how blocks shard across host threads.
class BlockFaults {
 public:
  /// Event caps, mirroring racecheck's report caps: the counters behind
  /// them stay exact, only the recorded FaultEvent list is bounded.
  static constexpr std::size_t kMaxEventsPerBlock = 16;
  static constexpr std::size_t kMaxEventsPerLaunch = 64;

  /// Arm for a new block: keeps the plan's device-side faults whose block
  /// selector matches. `stages` (nullable) resolves stage names; the
  /// scheduler arms the stage table whenever a plan is present.
  void reset(const FaultPlan* plan, std::uint64_t flat_block, Dim3 block_idx,
             const obs::StageTable* stages);

  [[nodiscard]] bool armed() const noexcept { return !arms_.empty(); }

  /// Count one instrumented device operation (any ld/st/lds/sts, barrier or
  /// syncwarp entry) of thread `tid`; throws LaunchError{kWarpAbort} when a
  /// warp_abort site fires here.
  void on_instr(std::uint32_t tid, std::uint16_t stage,
                std::uint32_t barrier_seq);

  /// Bitflip hook, called with the payload a store is about to commit; the
  /// nth matching store has one bit flipped in place.
  void on_store(std::uint32_t tid, std::uint16_t stage, std::byte* data,
                std::uint32_t bytes, bool shared_space, std::uint64_t addr);

  /// True when this thread's upcoming syncthreads should be skipped
  /// outright: its nth arrival at a *matching* (stage, warp) barrier site.
  [[nodiscard]] bool skip_barrier(std::uint32_t tid, std::uint16_t stage,
                                  std::uint32_t barrier_seq);

  /// The faults that fired in this block, in firing order (capped).
  [[nodiscard]] std::vector<FaultEvent> take_events() {
    return std::move(events_);
  }

 private:
  struct Arm {
    const Fault* fault = nullptr;
    std::uint64_t count = 0;  ///< matching events seen so far
    bool fired = false;
    /// kSkipBarrier only: per-thread count of matching barrier arrivals
    /// (tid-indexed, grown on demand; a block has at most 1024 threads).
    std::vector<std::uint64_t> per_tid;
  };

  [[nodiscard]] bool matches(const Fault& f, std::uint32_t tid,
                             std::uint16_t stage) const;
  void record(const Fault& f, std::uint32_t tid, std::uint16_t stage,
              std::string detail);
  [[nodiscard]] std::string stage_name(std::uint16_t stage) const;

  std::vector<Arm> arms_;
  std::vector<FaultEvent> events_;
  const obs::StageTable* stages_ = nullptr;
  std::uint64_t flat_block_ = 0;
  Dim3 block_idx_{};
};

/// The ACCRED_FAULTS environment variable (read once): the ambient default
/// for SimOptions::faults, mirroring ACCRED_RACECHECK. "" when unset.
[[nodiscard]] const std::string& faults_env_default();

}  // namespace accred::gpusim
