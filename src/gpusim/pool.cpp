#include "gpusim/pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace accred::gpusim {

namespace {

std::atomic<std::uint32_t> g_default_override{0};

/// -1 = defer to the ACCRED_FASTPATH env default; 0/1 = process override.
std::atomic<int> g_fastpath_override{-1};

bool env_fastpath() {
  static const bool parsed = [] {
    const char* e = std::getenv("ACCRED_FASTPATH");
    if (e == nullptr || *e == '\0') return true;
    const std::string_view v(e);
    return !(v == "0" || v == "false" || v == "no" || v == "off");
  }();
  return parsed;
}

std::uint32_t env_sim_threads() {
  static const std::uint32_t parsed = [] {
    const char* e = std::getenv("ACCRED_SIM_THREADS");
    if (e == nullptr || *e == '\0') return 0U;
    char* end = nullptr;
    const unsigned long n = std::strtoul(e, &end, 10);
    if (end == e || *end != '\0') return 0U;  // malformed: ignore
    return static_cast<std::uint32_t>(std::min<unsigned long>(n, kMaxSimThreads));
  }();
  return parsed;
}

}  // namespace

void CancelFlag::cancel_from(std::uint32_t shard) noexcept {
  // Atomic minimum: the lowest faulting shard wins no matter the order in
  // which concurrent reporters land.
  std::uint32_t cur = first_.load(std::memory_order_relaxed);
  while (shard < cur && !first_.compare_exchange_weak(
                            cur, shard, std::memory_order_release,
                            std::memory_order_relaxed)) {
  }
}

bool CancelFlag::cancelled_for(std::uint32_t shard) const noexcept {
  return first_.load(std::memory_order_acquire) < shard;
}

std::uint32_t CancelFlag::first() const noexcept {
  return first_.load(std::memory_order_acquire);
}

void CancelToken::on_launch_begin() noexcept {
  // Decrement-if-positive: concurrent launches observing the same token
  // each consume one tick, and exactly one of them crosses 1 -> 0.
  std::uint32_t cur = countdown_.load(std::memory_order_relaxed);
  while (cur > 0 && !countdown_.compare_exchange_weak(
                        cur, cur - 1, std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
  }
  if (cur == 1) cancel();
}

std::uint32_t default_sim_threads() {
  const std::uint32_t forced = g_default_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  const std::uint32_t env = env_sim_threads();
  if (env != 0) return env;
  const std::uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void set_default_sim_threads(std::uint32_t n) {
  g_default_override.store(std::min(n, kMaxSimThreads),
                           std::memory_order_relaxed);
}

bool FiberStackPool::ensure(std::size_t count, std::size_t stack_bytes) {
  if (count <= count_ && stack_bytes <= stack_bytes_) return false;
  // Grow-only, and never shrink the per-stack size: a scheduler simulating
  // alternating block shapes settles on the largest and stops reallocating.
  count = std::max(count, count_);
  stack_bytes = std::max(stack_bytes, stack_bytes_);
  slab_ = std::make_unique<std::byte[]>(count * (stack_bytes + kStagger));
  count_ = count;
  stack_bytes_ = stack_bytes;
  return true;
}

bool default_fastpath() {
  const int forced = g_fastpath_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return env_fastpath();
}

void set_default_fastpath(bool on) {
  g_fastpath_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint32_t resolve_sim_threads(std::uint32_t requested,
                                  std::uint64_t blocks) {
  std::uint64_t t = requested != 0 ? requested : default_sim_threads();
  t = std::min<std::uint64_t>(t, blocks);
  t = std::min<std::uint64_t>(t, kMaxSimThreads);
  return t == 0 ? 1 : static_cast<std::uint32_t>(t);
}

/// One shard set in flight. Heap-allocated and shared with every worker
/// that observes it, so a worker scheduled late (after all shards are
/// claimed) still fetches from a live counter.
struct HostPool::Job {
  std::uint32_t nshards = 0;
  const std::function<void(std::uint32_t)>* fn = nullptr;
  std::atomic<std::uint32_t> next{0};       ///< next unclaimed shard
  std::atomic<std::uint32_t> remaining{0};  ///< shards not yet finished
};

struct HostPool::State {
  std::mutex mu;
  std::condition_variable work_cv;   ///< workers: a new job was published
  std::condition_variable done_cv;   ///< submitter: job.remaining hit zero
  std::shared_ptr<Job> job;          ///< active job, or null
  std::uint64_t job_gen = 0;         ///< bumped per publication
  std::vector<std::thread> threads;
  bool stop = false;
  std::mutex submit_mu;              ///< serializes run() callers
};

HostPool::HostPool() : state_(new State) {}

HostPool& HostPool::instance() {
  static HostPool pool;
  return pool;
}

HostPool::~HostPool() {
  if (state_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : state_->threads) t.join();
  delete state_;
}

std::uint32_t HostPool::workers() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lk(state_->mu);
  return static_cast<std::uint32_t>(state_->threads.size());
}

void HostPool::ensure_workers_locked(std::uint32_t want) {
  want = std::min(want, kMaxSimThreads - 1);
  while (state_->threads.size() < want) {
    state_->threads.emplace_back([this] { worker_main(); });
  }
}

bool HostPool::drain(Job& job) {
  bool finished_last = false;
  for (;;) {
    const std::uint32_t s = job.next.fetch_add(1, std::memory_order_relaxed);
    if (s >= job.nshards) return finished_last;
    (*job.fn)(s);
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finished_last = true;
    }
  }
}

void HostPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(state_->mu);
      state_->work_cv.wait(
          lk, [&] { return state_->stop || state_->job_gen != seen; });
      if (state_->stop) return;
      seen = state_->job_gen;
      job = state_->job;
    }
    if (job && drain(*job)) {
      // Last shard done: wake the submitter. The empty critical section
      // orders the wake after the submitter entered its wait.
      { std::lock_guard<std::mutex> lk(state_->mu); }
      state_->done_cv.notify_all();
    }
  }
}

void HostPool::run(std::uint32_t nshards,
                   const std::function<void(std::uint32_t)>& fn) {
  if (nshards == 0) return;
  if (nshards == 1) {
    fn(0);  // serial fast path: never touches threads or locks
    return;
  }
  std::lock_guard<std::mutex> submit_lk(state_->submit_mu);

  auto job = std::make_shared<Job>();
  job->nshards = nshards;
  job->fn = &fn;
  job->remaining.store(nshards, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    ensure_workers_locked(nshards - 1);
    state_->job = job;
    ++state_->job_gen;
  }
  state_->work_cv.notify_all();

  drain(*job);  // the caller is always one of the executors
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->done_cv.wait(lk, [&] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
  state_->job.reset();
}

}  // namespace accred::gpusim
