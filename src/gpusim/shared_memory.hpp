// Per-block shared memory. Kernels address shared memory through
// SharedView handles carved out of a SharedLayout before launch — the
// moral equivalent of static `__shared__` array declarations in CUDA
// (per-thread allocation would be meaningless; the layout is a block-level
// property decided by the compiler/planner).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "gpusim/dim3.hpp"

namespace accred::gpusim {

/// A typed window into the block's shared-memory slab. Accesses through a
/// view (ThreadCtx::lds/sts) are bounds-checked, bank-modeled, and — when
/// SimOptions::racecheck is on — shadow-tracked per 4-byte granule for
/// barrier-interval race detection (racecheck.hpp).
template <typename T>
struct SharedView {
  std::uint32_t offset_bytes = 0;
  std::uint32_t count = 0;

  [[nodiscard]] std::uint32_t byte_offset_of(std::size_t i) const noexcept {
    return offset_bytes + static_cast<std::uint32_t>(i * sizeof(T));
  }
};

/// Builds the block's shared-memory layout: a sequence of typed arrays with
/// natural alignment. The planner computes this once per kernel; the total
/// byte size is passed to launch() and validated against the 48 KiB limit.
class SharedLayout {
public:
  template <typename T>
  SharedView<T> add(std::size_t count) {
    const std::size_t align = alignof(T);
    bytes_ = (bytes_ + align - 1) & ~(align - 1);
    SharedView<T> v{static_cast<std::uint32_t>(bytes_),
                    static_cast<std::uint32_t>(count)};
    bytes_ += count * sizeof(T);
    return v;
  }

  /// Reserve raw bytes (used by the mixed-datatype slab-sharing strategy of
  /// §3.3, where several reduction variables reuse one maximal-size region).
  [[nodiscard]] std::uint32_t add_raw(std::size_t bytes, std::size_t align) {
    bytes_ = (bytes_ + align - 1) & ~(align - 1);
    const auto off = static_cast<std::uint32_t>(bytes_);
    bytes_ += bytes;
    return off;
  }

  /// Re-interpret a raw region as a typed view (§3.3 slab sharing).
  template <typename T>
  [[nodiscard]] static SharedView<T> view_at(std::uint32_t offset_bytes,
                                             std::size_t count) {
    if (offset_bytes % alignof(T) != 0) {
      throw std::invalid_argument("misaligned shared view for type of size " +
                                  std::to_string(sizeof(T)));
    }
    return SharedView<T>{offset_bytes, static_cast<std::uint32_t>(count)};
  }

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

private:
  std::size_t bytes_ = 0;
};

}  // namespace accred::gpusim
