#include "gpusim/fiber.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "gpusim/error.hpp"

#if defined(ACCRED_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace accred::gpusim {

namespace {
thread_local Fiber* tls_current = nullptr;
}  // namespace

std::exception_ptr Fiber::capture_current_exception() {
  try {
    throw;  // rethrow the in-flight exception to classify it
  } catch (const std::exception&) {
    return std::current_exception();
  } catch (...) {
    LaunchErrorInfo info;
    info.code = LaunchErrorCode::kDeviceFault;
    info.message = "non-standard exception escaped a device fiber";
    return std::make_exception_ptr(LaunchError(std::move(info)));
  }
}

// TSan must be told about every transfer of control between stacks: the
// resumer's context is captured right before switching in (ACCRED_TSAN_IN)
// and the fiber announces the switch back right before yielding or
// finishing (ACCRED_TSAN_OUT). Lane-to-lane transfers in the fast path
// announce the target directly (ACCRED_TSAN_TO). No-ops in regular builds.
#if defined(ACCRED_TSAN_FIBERS)
#define ACCRED_TSAN_IN(fib)                                \
  do {                                                     \
    (fib)->tsan_caller_ = __tsan_get_current_fiber();      \
    __tsan_switch_to_fiber((fib)->tsan_fiber_, 0);         \
  } while (false)
#define ACCRED_TSAN_OUT(fib) __tsan_switch_to_fiber((fib)->tsan_caller_, 0)
#define ACCRED_TSAN_TO(ctx) __tsan_switch_to_fiber((ctx), 0)
#else
#define ACCRED_TSAN_IN(fib) (void)0
#define ACCRED_TSAN_OUT(fib) (void)0
#define ACCRED_TSAN_TO(ctx) (void)0
#endif

Fiber* Fiber::current() noexcept { return tls_current; }

void Fiber::call_std_function(void* self) {
  static_cast<Fiber*>(self)->entry_();
}

void Fiber::reset(std::function<void()> entry) {
  entry_ = std::move(entry);
  reset(&Fiber::call_std_function, this);
}

#if defined(ACCRED_FIBER_ASM)

// void accred_ctx_switch(void** save_sp, void* restore_sp)
//
// Saves the System-V callee-saved general-purpose registers plus the return
// address on the current stack, stores the resulting stack pointer through
// `save_sp`, installs `restore_sp`, and unwinds the same frame layout.
// XMM registers are caller-saved in the SysV ABI, so an ordinary extern "C"
// call boundary is sufficient.
extern "C" void accred_ctx_switch(void** save_sp, void* restore_sp);
asm(R"(
.text
.globl accred_ctx_switch
.type accred_ctx_switch, @function
.align 16
accred_ctx_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq  %rsp, (%rdi)
    movq  %rsi, %rsp
    popq  %r15
    popq  %r14
    popq  %r13
    popq  %r12
    popq  %rbx
    popq  %rbp
    ret
.size accred_ctx_switch, .-accred_ctx_switch
)");

namespace {
void validate_stack_size(std::size_t n) {
  if (n % 16 != 0 || n < 4096) {
    throw std::invalid_argument(
        "fiber stack size must be >=4096 and 16-aligned");
  }
}
}  // namespace

Fiber::Fiber(std::size_t stack_size) : stack_size_(stack_size) {
  validate_stack_size(stack_size_);
  owned_ = std::make_unique<std::byte[]>(stack_size_);
  stack_base_ = owned_.get();
#if defined(ACCRED_TSAN_FIBERS)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::Fiber(std::byte* stack, std::size_t stack_size)
    : stack_size_(stack_size), stack_base_(stack) {
  validate_stack_size(stack_size_);
#if defined(ACCRED_TSAN_FIBERS)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  // A fiber must never be destroyed while suspended mid-execution: its stack
  // would hold live frames. The scheduler guarantees fibers run to completion.
  assert(done_);
#if defined(ACCRED_TSAN_FIBERS)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = tls_current;
  // Exceptions cannot unwind through the hand-rolled switch frame (no CFI),
  // so capture them and rethrow on the resumer's side. Fast-path thunks
  // catch at the kernel boundary themselves and leave() without returning
  // here, so this handler only serves the resume()/yield() protocol.
  try {
    self->raw_entry_(self->raw_arg_);
  } catch (...) {
    self->eptr_ = capture_current_exception();
  }
  self->done_ = true;
  // Final switch back to the resumer. A finished fiber must never be
  // resumed again (resume() asserts); if a release-build caller does it
  // anyway, keep handing control back instead of aborting the process.
  for (;;) {
    ACCRED_TSAN_OUT(self);
    accred_ctx_switch(&self->self_sp_, self->caller_sp_);
  }
}

void Fiber::prepare_stack() {
  // Build an initial stack frame such that accred_ctx_switch's epilogue
  // (six pops + ret) lands in trampoline() with a 16-byte-misaligned rsp,
  // matching the ABI state at a normal function entry.
  std::byte* top = stack_base_ + stack_size_;
  auto sp = reinterpret_cast<std::uintptr_t>(top);
  sp &= ~static_cast<std::uintptr_t>(0xf);  // align down to 16
  // Layout (low -> high): r15 r14 r13 r12 rbx rbp retaddr.
  // After the 6 pops, rsp points at retaddr; after ret, rsp = sp, which is
  // 16-aligned minus the 7*8 we reserve => choose slots so entry alignment
  // is correct: at trampoline entry rsp % 16 must equal 8 ... the `ret`
  // consumed the retaddr slot, leaving rsp at (frame_base + 7*8). Reserve
  // an extra 8 bytes so that value is ≡ 8 (mod 16).
  sp -= 8;
  auto* frame = reinterpret_cast<void**>(sp) - 7;
  for (int i = 0; i < 6; ++i) frame[i] = nullptr;  // r15..rbp
  frame[6] = reinterpret_cast<void*>(&Fiber::trampoline);
  self_sp_ = frame;
}

void Fiber::reset(RawEntry entry, void* arg) {
  assert(done_ && "cannot reset a running fiber");
  raw_entry_ = entry;
  raw_arg_ = arg;
  eptr_ = nullptr;
  done_ = false;
  prepare_stack();
}

void Fiber::resume() {
  assert(!done_ && "resume() on a finished fiber");
  Fiber* prev = tls_current;
  tls_current = this;
  ACCRED_TSAN_IN(this);
  accred_ctx_switch(&caller_sp_, self_sp_);
  tls_current = prev;
  if (done_ && eptr_) {
    std::exception_ptr e = std::exchange(eptr_, nullptr);
    std::rethrow_exception(e);
  }
}

void Fiber::yield() {
  Fiber* self = tls_current;
  assert(self != nullptr && "yield() outside any fiber");
  ACCRED_TSAN_OUT(self);
  accred_ctx_switch(&self->self_sp_, self->caller_sp_);
}

void FastChain::run(Fiber* const* fibers, const std::uint32_t* order,
                    std::uint32_t count) {
  assert(count >= 1);
  fibers_ = fibers;
  order_ = order;
  count_ = count;
  next_ = 1;
  Fiber* first = fibers[order[0]];
  assert(!first->done());
  current_ = first;
  Fiber* prev = tls_current;
  tls_current = first;
#if defined(ACCRED_TSAN_FIBERS)
  tsan_sched_ = __tsan_get_current_fiber();
  ACCRED_TSAN_TO(first->tsan_fiber_);
#endif
  accred_ctx_switch(&sched_sp_, first->self_sp_);
  tls_current = prev;
  Fiber* last = current_;
  if (last->eptr_) {
    std::exception_ptr e = std::exchange(last->eptr_, nullptr);
    std::rethrow_exception(e);
  }
}

void FastChain::dispatch_from(Fiber* self, bool to_sched) {
  if (!to_sched) {
    const std::uint32_t i = next_++;
    if (i < count_) {
      Fiber* to = fibers_[order_[i]];
      current_ = to;
      tls_current = to;
      ACCRED_TSAN_TO(to->tsan_fiber_);
      accred_ctx_switch(&self->self_sp_, to->self_sp_);
      return;  // a later pass re-entered `self`
    }
  }
  ACCRED_TSAN_TO(tsan_sched_);
  accred_ctx_switch(&self->self_sp_, sched_sp_);
  // A later pass re-entered `self` (parked lanes only; finished lanes are
  // never switched back into).
}

void FastChain::park() { dispatch_from(current_, /*to_sched=*/false); }

void FastChain::leave() {
  Fiber* self = current_;
  self->done_ = true;
  // A faulting lane aborts the pass before any later lane runs — the same
  // order a resume() loop would observe the exception in.
  dispatch_from(self, /*to_sched=*/self->eptr_ != nullptr);
}

#else  // ucontext fallback

namespace {
void validate_stack_size(std::size_t n) {
  if (n % 16 != 0 || n < 4096) {
    throw std::invalid_argument(
        "fiber stack size must be >=4096 and 16-aligned");
  }
}
}  // namespace

Fiber::Fiber(std::size_t stack_size) : stack_size_(stack_size) {
  validate_stack_size(stack_size_);
  owned_ = std::make_unique<std::byte[]>(stack_size_);
  stack_base_ = owned_.get();
#if defined(ACCRED_TSAN_FIBERS)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::Fiber(std::byte* stack, std::size_t stack_size)
    : stack_size_(stack_size), stack_base_(stack) {
  validate_stack_size(stack_size_);
#if defined(ACCRED_TSAN_FIBERS)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  assert(done_);
#if defined(ACCRED_TSAN_FIBERS)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = tls_current;
  try {
    self->raw_entry_(self->raw_arg_);
  } catch (...) {
    self->eptr_ = capture_current_exception();
  }
  self->done_ = true;
  // See the asm variant: never abort the process on a stray re-resume.
  for (;;) {
    ACCRED_TSAN_OUT(self);
    swapcontext(&self->self_ctx_, &self->caller_ctx_);
  }
}

void Fiber::prepare_stack() {
  getcontext(&self_ctx_);
  self_ctx_.uc_stack.ss_sp = stack_base_;
  self_ctx_.uc_stack.ss_size = stack_size_;
  self_ctx_.uc_link = nullptr;
  makecontext(&self_ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

void Fiber::reset(RawEntry entry, void* arg) {
  assert(done_);
  raw_entry_ = entry;
  raw_arg_ = arg;
  eptr_ = nullptr;
  done_ = false;
  prepare_stack();
}

void Fiber::resume() {
  assert(!done_);
  Fiber* prev = tls_current;
  tls_current = this;
  ACCRED_TSAN_IN(this);
  swapcontext(&caller_ctx_, &self_ctx_);
  tls_current = prev;
  if (done_ && eptr_) {
    std::exception_ptr e = std::exchange(eptr_, nullptr);
    std::rethrow_exception(e);
  }
}

void Fiber::yield() {
  Fiber* self = tls_current;
  assert(self != nullptr);
  ACCRED_TSAN_OUT(self);
  swapcontext(&self->self_ctx_, &self->caller_ctx_);
}

void FastChain::run(Fiber* const* fibers, const std::uint32_t* order,
                    std::uint32_t count) {
  assert(count >= 1);
  fibers_ = fibers;
  order_ = order;
  count_ = count;
  next_ = 1;
  Fiber* first = fibers[order[0]];
  assert(!first->done());
  current_ = first;
  Fiber* prev = tls_current;
  tls_current = first;
#if defined(ACCRED_TSAN_FIBERS)
  tsan_sched_ = __tsan_get_current_fiber();
  ACCRED_TSAN_TO(first->tsan_fiber_);
#endif
  swapcontext(&sched_ctx_, &first->self_ctx_);
  tls_current = prev;
  Fiber* last = current_;
  if (last->eptr_) {
    std::exception_ptr e = std::exchange(last->eptr_, nullptr);
    std::rethrow_exception(e);
  }
}

void FastChain::dispatch_from(Fiber* self, bool to_sched) {
  if (!to_sched) {
    const std::uint32_t i = next_++;
    if (i < count_) {
      Fiber* to = fibers_[order_[i]];
      current_ = to;
      tls_current = to;
      ACCRED_TSAN_TO(to->tsan_fiber_);
      swapcontext(&self->self_ctx_, &to->self_ctx_);
      return;  // a later pass re-entered `self`
    }
  }
  ACCRED_TSAN_TO(tsan_sched_);
  swapcontext(&self->self_ctx_, &sched_ctx_);
}

void FastChain::park() { dispatch_from(current_, /*to_sched=*/false); }

void FastChain::leave() {
  Fiber* self = current_;
  self->done_ = true;
  dispatch_from(self, /*to_sched=*/self->eptr_ != nullptr);
}

#endif

}  // namespace accred::gpusim
