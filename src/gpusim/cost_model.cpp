#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>

namespace accred::gpusim {

LaunchStats& LaunchStats::operator+=(const LaunchStats& o) {
  blocks += o.blocks;
  threads += o.threads;
  gmem_requests += o.gmem_requests;
  gmem_segments += o.gmem_segments;
  gmem_bytes += o.gmem_bytes;
  smem_requests += o.smem_requests;
  smem_cycles += o.smem_cycles;
  barriers += o.barriers;
  syncwarps += o.syncwarps;
  alu_units += o.alu_units;
  device_time_ns += o.device_time_ns;
  wall_time_ns += o.wall_time_ns;
  profile.merge(o.profile);
  racecheck = racecheck || o.racecheck;
  races += o.races;
  for (const RaceReport& r : o.race_reports) {
    if (race_reports.size() >= RaceChecker::kMaxReportsPerLaunch) break;
    race_reports.push_back(r);
  }
  barrier_exit_divergence += o.barrier_exit_divergence;
  barrier_site_mismatch += o.barrier_site_mismatch;
  faults_armed = faults_armed || o.faults_armed;
  for (const FaultEvent& e : o.fault_events) {
    if (fault_events.size() >= BlockFaults::kMaxEventsPerLaunch) break;
    fault_events.push_back(e);
  }
  // Keep the first failure across accumulated launches: multi-kernel
  // strategies report the launch that broke first.
  if (error.code == LaunchErrorCode::kNone &&
      o.error.code != LaunchErrorCode::kNone) {
    error = o.error;
  }
  return *this;
}

double coalescing_efficiency(const LaunchStats& s) {
  if (s.gmem_segments == 0) return 1.0;
  // Per-lane useful bytes divided by bytes moved in 128B transactions.
  // 1.0 = perfectly coalesced; << 1 = strided/scattered; > 1 happens when
  // lanes broadcast-read the same word (one transaction serves the warp
  // several times over), up to 32.
  return static_cast<double>(s.gmem_bytes) /
         (static_cast<double>(s.gmem_segments) * 128.0);
}

double bank_conflict_factor(const LaunchStats& s) {
  if (s.smem_requests == 0) return 1.0;
  return static_cast<double>(s.smem_cycles) /
         static_cast<double>(s.smem_requests);
}

void WarpLog::reset(const CostParams& params, obs::StageTable* prof) {
  params_ = &params;
  prof_ = prof;
  epoch_cost_ = 0;
  dirty_ = false;
  gvec_.clear();  // capacity is retained across blocks (arena reuse)
  svec_.clear();
  ghead_ = gcount_ = shead_ = scount_ = 0;
  gbase_ = sbase_ = 0;
  lane_gk_.fill(0);
  lane_sk_.fill(0);
  lane_alu_.fill(0);
  lane_stage_.fill(0);
  epoch_active_.clear();
  gmem_requests = gmem_segments = gmem_bytes = 0;
  smem_requests = smem_cycles = 0;
  alu_total = 0;
}

void WarpLog::mark_active(std::uint32_t lane) {
  const std::uint16_t stage = lane_stage_[lane];
  for (auto& [s, mask] : epoch_active_) {
    if (s == stage) {
      mask |= 1U << lane;
      return;
    }
  }
  epoch_active_.emplace_back(stage, 1U << lane);
}

void WarpLog::finalize_global(const GlobalGroup& g) {
  if (g.base_line < 0) return;  // empty group (no lane reached this index)
  const std::uint64_t segments = std::popcount(g.bitmap) + g.overflow;
  gmem_requests += 1;
  gmem_segments += segments;
  gmem_bytes += g.bytes;
  epoch_cost_ += static_cast<double>(segments) * params_->gmem_segment_ns;
  if (prof_) {
    obs::StageStats& row = prof_->row(g.stage);
    row.gmem_requests += 1;
    row.gmem_segments += segments;
    row.gmem_bytes += g.bytes;
  }
}

void WarpLog::finalize_shared(const SharedGroup& g) {
  if (g.n == 0) return;
  // Conflict degree: max number of *distinct words* mapped to one bank.
  // Accesses to the same word in the same bank broadcast (no serialization).
  // Two words are duplicates only if they map to the same bank, so the
  // dedup runs per bank against the generation-stamped scratch sets —
  // O(accesses) per group instead of a quadratic all-pairs scan.
  const std::uint64_t gen = ++conflict_gen_;
  std::uint8_t degree = 1;
  for (std::uint8_t i = 0; i < g.n; ++i) {
    const std::uint32_t w = g.word[i];
    const std::uint32_t bank = w % kWarpSize;
    if (bank_gen_[bank] != gen) {
      bank_gen_[bank] = gen;
      bank_cnt_[bank] = 0;
    }
    std::uint8_t& cnt = bank_cnt_[bank];
    auto& words = bank_words_[bank];
    bool dup = false;
    for (std::uint8_t j = 0; j < cnt; ++j) {
      if (words[j] == w) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    words[cnt++] = w;
    degree = std::max(degree, cnt);
  }
  smem_requests += 1;
  smem_cycles += degree;
  epoch_cost_ += static_cast<double>(degree) * params_->smem_cycle_ns;
  if (prof_) {
    obs::StageStats& row = prof_->row(g.stage);
    row.smem_requests += 1;
    row.smem_cycles += degree;
  }
}

void WarpLog::global_access_open(std::uint32_t lane, std::uint64_t k,
                                 std::uint64_t vaddr, std::uint32_t bytes) {
  assert(lane < kWarpSize);
  if (k < gbase_) {
    // The group this access belongs to was retired by window overflow;
    // account for it as a standalone request.
    GlobalGroup late{};
    apply_global(late, lane, vaddr, bytes);
    finalize_global(late);
    return;
  }
  // Window overflow: retire the oldest group early (splits a logical
  // group in two, slightly overcounting segments, but bounds memory).
  while (k >= gbase_ + kGlobalWindow) {
    finalize_global(gvec_[ghead_]);
    ++ghead_;
    --gcount_;
    ++gbase_;
  }
  // Compact once the dead prefix dominates, keeping storage bounded by the
  // window even under sustained overflow.
  if (ghead_ >= 4096 && ghead_ * 2 >= gvec_.size()) {
    gvec_.erase(gvec_.begin(),
                gvec_.begin() + static_cast<std::ptrdiff_t>(ghead_));
    ghead_ = 0;
  }
  while (gcount_ <= k - gbase_) {
    gvec_.emplace_back();
    ++gcount_;
  }
  apply_global(gvec_[ghead_ + (k - gbase_)], lane, vaddr, bytes);
}

void WarpLog::shared_access_open(std::uint32_t lane, std::uint64_t k,
                                 std::uint32_t offset) {
  assert(lane < kWarpSize);
  if (k < sbase_) {
    SharedGroup late{};
    late.word[late.n++] = offset / 4;
    late.stage = lane_stage_[lane];
    finalize_shared(late);
    return;
  }
  while (k >= sbase_ + kSharedWindow) {
    finalize_shared(svec_[shead_]);
    ++shead_;
    --scount_;
    ++sbase_;
  }
  if (shead_ >= 4096 && shead_ * 2 >= svec_.size()) {
    svec_.erase(svec_.begin(),
                svec_.begin() + static_cast<std::ptrdiff_t>(shead_));
    shead_ = 0;
  }
  while (scount_ <= k - sbase_) {
    svec_.emplace_back();
    ++scount_;
  }
  SharedGroup& g = svec_[shead_ + (k - sbase_)];
  if (g.n == 0) g.stage = lane_stage_[lane];
  if (g.n < kWarpSize) g.word[g.n++] = offset / 4;
}

void WarpLog::flush_pending() {
  if (gcount_ != 0) {
    for (std::size_t i = 0; i < gcount_; ++i) {
      finalize_global(gvec_[ghead_ + i]);
    }
    gbase_ += gcount_;
    gvec_.clear();
    ghead_ = gcount_ = 0;
  }
  if (scount_ != 0) {
    for (std::size_t i = 0; i < scount_; ++i) {
      finalize_shared(svec_[shead_ + i]);
    }
    sbase_ += scount_;
    svec_.clear();
    shead_ = scount_ = 0;
  }
}

double WarpLog::end_epoch() {
  // Idle epoch (the warp logged nothing since the last barrier): every fold
  // below is a no-op — lane counters are already aligned, the ALU max is
  // zero, and zero-cost epochs contribute +0.0 — so skip it wholesale.
  // Warps parked across many waves (the warp-synchronous tail) hit this.
  if (!dirty_) return 0.0;
  dirty_ = false;
  flush_pending();
  // Re-anchor group indexing so post-barrier accesses group afresh: after a
  // barrier all lanes are aligned again.
  const std::uint64_t gk = *std::max_element(lane_gk_.begin(), lane_gk_.end());
  const std::uint64_t sk = *std::max_element(lane_sk_.begin(), lane_sk_.end());
  lane_gk_.fill(gk);
  lane_sk_.fill(sk);
  gbase_ = gk;
  sbase_ = sk;

  const double max_alu = *std::max_element(lane_alu_.begin(), lane_alu_.end());
  lane_alu_.fill(0);
  alu_total += max_alu;
  epoch_cost_ += max_alu * params_->alu_ns;

  // Divergence bookkeeping: per stage touched this epoch, one histogram
  // entry at the number of lanes that were active in it.
  if (prof_) {
    for (const auto& [stage, mask] : epoch_active_) {
      obs::StageStats& row = prof_->row(stage);
      row.warp_epochs += 1;
      row.lane_hist[std::popcount(mask)] += 1;
    }
    epoch_active_.clear();
  }

  const double cost = epoch_cost_;
  epoch_cost_ = 0;
  return cost;
}

double estimate_device_time(const CostParams& p, const DeviceLimits& lim,
                            const std::vector<double>& block_costs_ns,
                            std::uint64_t gmem_bytes) {
  std::vector<double> sm_time(lim.num_sms, 0.0);
  for (std::size_t b = 0; b < block_costs_ns.size(); ++b) {
    sm_time[b % lim.num_sms] += block_costs_ns[b];
  }
  const double busiest =
      block_costs_ns.empty()
          ? 0.0
          : *std::max_element(sm_time.begin(), sm_time.end());
  // Device-wide DRAM bandwidth floor.
  const double dram_ns = static_cast<double>(gmem_bytes) /
                         (p.dev_bandwidth_gbs * 1e9) * 1e9;
  return p.launch_overhead_ns + std::max(busiest, dram_ns);
}

}  // namespace accred::gpusim
