// Human-readable rendering of LaunchStats — the per-kernel profile the
// examples and harnesses print (the simulator's answer to `nvprof`).
#pragma once

#include <iomanip>
#include <ostream>

#include "gpusim/cost_model.hpp"

namespace accred::gpusim {

inline void print_launch_stats(std::ostream& os, const LaunchStats& s,
                               const char* label = "kernel") {
  // Save the full stream numeric state: flags alone would leak the
  // setprecision(2) below into all subsequent caller output.
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << label << ": " << std::fixed << std::setprecision(3)
     << s.device_time_ns / 1e6 << " ms modeled (" << s.wall_time_ns / 1e6
     << " ms simulated)\n"
     << "  blocks " << s.blocks << ", threads " << s.threads << '\n'
     << "  global: " << s.gmem_requests << " requests, " << s.gmem_segments
     << " segments (" << std::setprecision(2)
     << coalescing_efficiency(s) * 100.0 << "% coalescing eff), "
     << s.gmem_bytes / 1024 << " KiB useful\n"
     << "  shared: " << s.smem_requests << " requests, bank factor "
     << bank_conflict_factor(s) << '\n'
     << "  sync:   " << s.barriers << " syncthreads, " << s.syncwarps
     << " syncwarps\n";
  if (s.racecheck) {
    os << "  races:  " << s.races << " conflicting access pair(s)";
    if (!s.race_reports.empty()) {
      os << "; first: " << to_string(s.race_reports.front());
    }
    os << '\n';
  }
  os.flags(old_flags);
  os.precision(old_precision);
}

}  // namespace accred::gpusim
