// Simulated GPU device: global-memory allocation with CUDA-like virtual
// addresses (so the cost model can reason about 128-byte segments), and
// explicit host<->device transfers with modeled PCIe time.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/error.hpp"
#include "gpusim/faultinject.hpp"

namespace accred::gpusim {

template <typename T>
class DeviceBuffer;

/// A non-owning, kernel-side view of a device buffer. Cheap to copy into
/// kernels; all loads/stores go through ThreadCtx so they are cost-modeled
/// and bounds-checked — and, when SimOptions::racecheck (with
/// racecheck_global) is on, shadow-tracked per word within each block for
/// barrier-interval race detection (racecheck.hpp).
template <typename T>
struct GlobalView {
  T* data = nullptr;
  std::uint64_t vaddr = 0;
  std::size_t size = 0;

  [[nodiscard]] std::uint64_t addr_of(std::size_t i) const noexcept {
    return vaddr + i * sizeof(T);
  }
};

/// Cumulative transfer accounting for one device.
struct TransferStats {
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  double h2d_time_ns = 0;
  double d2h_time_ns = 0;
};

/// The simulated accelerator. Owns limits, cost parameters and allocation
/// bookkeeping; kernel launches are driven by gpusim::launch (launch.hpp).
class Device {
public:
  explicit Device(DeviceLimits limits = {}, CostParams costs = {})
      : limits_(limits), costs_(costs) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceLimits& limits() const noexcept { return limits_; }
  [[nodiscard]] const CostParams& costs() const noexcept { return costs_; }
  [[nodiscard]] CostParams& costs() noexcept { return costs_; }
  [[nodiscard]] std::size_t allocated_bytes() const noexcept {
    return allocated_;
  }
  [[nodiscard]] std::size_t live_allocations() const noexcept {
    return live_allocs_;
  }
  [[nodiscard]] const TransferStats& transfers() const noexcept {
    return transfers_;
  }

  /// Allocate an n-element typed buffer in device global memory. `label`
  /// names the allocation in OOM diagnostics and is the site key an
  /// injected alloc_fail fault matches against (faultinject.hpp).
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> alloc(std::size_t n,
                                      std::string_view label = "");

  /// Arm the plan's alloc_fail faults on this device (replacing any prior
  /// set). Each armed fault fires once — on the nth allocation whose label
  /// matches — and then disarms, so a retried run allocates cleanly; the
  /// degradation executor re-arms sticky faults per attempt.
  void arm_alloc_faults(const FaultPlan& plan) {
    alloc_arms_.clear();
    for (const Fault& f : plan.faults()) {
      if (f.kind == FaultKind::kAllocFail) alloc_arms_.push_back({f, 0});
    }
  }
  void clear_alloc_faults() noexcept { alloc_arms_.clear(); }

private:
  template <typename T>
  friend class DeviceBuffer;

  struct AllocArm {
    Fault fault;
    std::uint64_t count = 0;  ///< matching allocations seen so far
  };

  std::uint64_t reserve(std::size_t bytes, std::string_view label) {
    for (auto it = alloc_arms_.begin(); it != alloc_arms_.end(); ++it) {
      if (!it->fault.stage.empty() && it->fault.stage != label) continue;
      if (it->count++ != it->fault.nth) continue;
      LaunchErrorInfo info;
      info.code = LaunchErrorCode::kOom;
      info.message = oom_message(bytes, label) + " (injected)";
      info.stage = std::string(label);
      info.injected = true;
      alloc_arms_.erase(it);  // one-shot: the retry path allocates cleanly
      throw LaunchError(std::move(info));
    }
    if (allocated_ + bytes > limits_.global_mem_bytes) {
      LaunchErrorInfo info;
      info.code = LaunchErrorCode::kOom;
      info.message = oom_message(bytes, label);
      info.stage = std::string(label);
      throw LaunchError(std::move(info));
    }
    allocated_ += bytes;
    live_allocs_ += 1;
    // cudaMalloc-style 256-byte alignment.
    const std::uint64_t base = (next_vaddr_ + 255) & ~std::uint64_t{255};
    next_vaddr_ = base + bytes;
    return base;
  }

  [[nodiscard]] std::string oom_message(std::size_t bytes,
                                        std::string_view label) const {
    std::string msg = "device out of memory: requested " +
                      std::to_string(bytes) + " bytes";
    if (!label.empty()) msg += " for '" + std::string(label) + "'";
    msg += " with " + std::to_string(allocated_) + " bytes across " +
           std::to_string(live_allocs_) + " live allocations";
    return msg;
  }

  void release(std::size_t bytes) noexcept {
    allocated_ -= bytes;
    live_allocs_ -= 1;
  }

  void note_h2d(std::size_t bytes) {
    transfers_.h2d_bytes += bytes;
    transfers_.h2d_time_ns +=
        static_cast<double>(bytes) / (costs_.h2d_bandwidth_gbs * 1e9) * 1e9;
  }
  void note_d2h(std::size_t bytes) {
    transfers_.d2h_bytes += bytes;
    transfers_.d2h_time_ns +=
        static_cast<double>(bytes) / (costs_.h2d_bandwidth_gbs * 1e9) * 1e9;
  }

  DeviceLimits limits_;
  CostParams costs_;
  std::uint64_t next_vaddr_ = 4096;
  std::size_t allocated_ = 0;
  std::size_t live_allocs_ = 0;
  TransferStats transfers_;
  std::vector<AllocArm> alloc_arms_;  ///< armed alloc_fail faults
};

/// RAII device allocation. Storage is host RAM standing in for device DRAM;
/// the virtual address keeps the cost model's segment arithmetic honest.
template <typename T>
class DeviceBuffer {
public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& dev, std::size_t n, std::string_view label = "")
      : dev_(&dev),
        vaddr_(dev.reserve(n * sizeof(T), label)),
        storage_(std::make_unique<T[]>(n)),
        size_(n) {}

  ~DeviceBuffer() {
    if (dev_ != nullptr) dev_->release(size_ * sizeof(T));
  }

  DeviceBuffer(DeviceBuffer&& o) noexcept { *this = std::move(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      if (dev_ != nullptr) dev_->release(size_ * sizeof(T));
      dev_ = std::exchange(o.dev_, nullptr);
      vaddr_ = std::exchange(o.vaddr_, 0);
      storage_ = std::move(o.storage_);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t vaddr() const noexcept { return vaddr_; }

  [[nodiscard]] GlobalView<T> view() const noexcept {
    return GlobalView<T>{storage_.get(), vaddr_, size_};
  }

  void copy_from_host(std::span<const T> src) {
    if (src.size() > size_) {
      throw std::out_of_range("copy_from_host: source larger than buffer");
    }
    std::memcpy(storage_.get(), src.data(), src.size_bytes());
    dev_->note_h2d(src.size_bytes());
  }

  void copy_to_host(std::span<T> dst) const {
    if (dst.size() > size_) {
      throw std::out_of_range("copy_to_host: destination larger than buffer");
    }
    std::memcpy(dst.data(), storage_.get(), dst.size_bytes());
    dev_->note_d2h(dst.size_bytes());
  }

  /// Fill with a value host-side (cudaMemset-style initialization).
  void fill(const T& v) {
    for (std::size_t i = 0; i < size_; ++i) storage_[i] = v;
  }

  /// Direct host-side access for test assertions and setup; bypasses the
  /// cost model by design.
  [[nodiscard]] std::span<T> host_span() noexcept {
    return {storage_.get(), size_};
  }
  [[nodiscard]] std::span<const T> host_span() const noexcept {
    return {storage_.get(), size_};
  }

private:
  Device* dev_ = nullptr;
  std::uint64_t vaddr_ = 0;
  std::unique_ptr<T[]> storage_;
  std::size_t size_ = 0;
};

template <typename T>
DeviceBuffer<T> Device::alloc(std::size_t n, std::string_view label) {
  return DeviceBuffer<T>(*this, n, label);
}

}  // namespace accred::gpusim
