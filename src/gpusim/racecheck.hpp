// Dynamic shared/global-memory race detection for the SIMT simulator — the
// simulator's answer to `cuda-memcheck --tool racecheck`.
//
// Model: within one thread block, two accesses to the same memory word by
// different threads conflict when at least one is a write and no barrier
// orders them. Ordering is tracked with *barrier intervals* (epochs):
//   * syncthreads advances the block epoch — accesses from an older block
//     epoch are ordered before everything after the barrier;
//   * syncwarp advances that warp's epoch — accesses by the *same warp*
//     from an older warp epoch are ordered, but a syncwarp never orders
//     accesses across warps. This models warp-synchronous tails (§3.1.1 of
//     the paper) exactly: dropping a syncthreads in the last-warp steps is
//     fine, dropping one while multiple warps still participate is a race.
//
// Detection is per 4-byte granule (the shared-memory bank width): the
// shadow state per word is the last writer plus the two most recent
// readers from distinct threads, each stamped with its epoch pair and
// prof_scope stage. Conflicts are recorded as RaceReports — deduplicated
// per (word, kind) and capped — never thrown; `races` counts every
// conflicting pair exactly.
//
// Scope: one checker per block (blocks are independent by the CUDA
// contract, and the simulator shards them across host threads), so
// cross-block global-memory races are out of scope. ThreadCtx::touch_global
// traffic is not checked either: it models content-free transactions (e.g.
// accumulator spills), so no data flows through those addresses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/dim3.hpp"

namespace accred::obs {
class StageTable;
}

namespace accred::gpusim {

/// One side of a detected conflict.
struct RaceAccess {
  Dim3 thread{};       ///< threadIdx of the accessing thread
  bool write = false;  ///< access kind (false = read)
  std::string stage;   ///< prof_scope stage name at access time
};

/// One detected conflict: two unordered accesses to the same word from
/// different threads of one block, at least one of them a write.
struct RaceReport {
  enum class Space : std::uint8_t { kShared, kGlobal };
  Space space = Space::kShared;
  /// Granule-aligned byte offset into the shared slab (kShared) or device
  /// virtual address (kGlobal).
  std::uint64_t addr = 0;
  Dim3 block{};        ///< blockIdx of the racing block
  RaceAccess first;    ///< earlier access in simulation order
  RaceAccess second;   ///< later access (the one that exposed the race)

  /// Hazard kind from the two access kinds: "WAW", "RAW" (read after
  /// write), or "WAR" (write after read).
  [[nodiscard]] const char* kind() const noexcept;
};

/// One-line human rendering ("WAR shared+0x40 block(0,0,0): ...").
[[nodiscard]] std::string to_string(const RaceReport& r);

/// Per-block shadow-memory race detector. Owned by the BlockScheduler and
/// reset per block; fed by ThreadCtx's ld/st/lds/sts hooks and by the
/// scheduler's barrier-release sites. Everything is private to the block's
/// host thread — reports merge in flattened block order in launch.cpp, so
/// racecheck output is deterministic for any sim_threads.
class RaceChecker {
public:
  /// Detection granule: the 4-byte shared-memory bank width. Wider accesses
  /// shadow every granule they cover.
  static constexpr std::uint32_t kGranuleBytes = 4;
  /// Report caps; the `races` counter stays exact past them.
  static constexpr std::size_t kMaxReportsPerBlock = 64;
  static constexpr std::size_t kMaxReportsPerLaunch = 256;

  /// Arm for a new block. `track_global` enables the per-block global-word
  /// shadow map alongside the (always-on) shared-memory shadow.
  void reset(std::size_t shared_bytes, std::uint32_t nwarps, Dim3 block_idx,
             Dim3 block_dim, bool track_global);

  void shared_access(std::uint32_t tid, std::uint32_t offset,
                     std::uint32_t bytes, bool write, std::uint16_t stage);
  void global_access(std::uint32_t tid, std::uint64_t vaddr,
                     std::uint32_t bytes, bool write, std::uint16_t stage);

  /// Epoch advancement, called by the scheduler at the release point of
  /// each barrier wave / warp rendezvous.
  void on_syncthreads() noexcept { block_epoch_ += 1; }
  void on_syncwarp(std::uint32_t warp) noexcept { warp_epoch_[warp] += 1; }

  /// Conflicting access pairs detected in this block so far (exact).
  [[nodiscard]] std::uint64_t races() const noexcept { return races_; }

  /// Resolve the recorded reports (thread coordinates from the block shape,
  /// stage names from `stages`, which may be null) — called once at block
  /// end, before the scheduler discards the stage table.
  [[nodiscard]] std::vector<RaceReport> take_reports(
      const obs::StageTable* stages) const;

private:
  static constexpr std::uint32_t kNoTid = 0xffffffffu;

  /// Stamp of one access: who, in which barrier intervals, doing what.
  struct Access {
    std::uint32_t tid = kNoTid;
    std::uint32_t block_epoch = 0;
    std::uint32_t warp_epoch = 0;
    std::uint16_t stage = 0;
  };
  /// Shadow state of one granule. Two reader slots keep the most recent
  /// readers from distinct threads, so A-reads / B-reads / B-writes still
  /// reports the WAR against A.
  struct Shadow {
    Access write;
    Access read1;
    Access read2;
    std::uint8_t reported = 0;  ///< per-kind dedup bits (kWaw/kRaw/kWar)
  };
  /// Unresolved report (stage ids, linear tids) recorded at access time.
  struct Pending {
    RaceReport::Space space;
    std::uint64_t addr;
    Access first;
    bool first_write;
    Access second;
    bool second_write;
  };

  static constexpr std::uint8_t kWaw = 1;
  static constexpr std::uint8_t kRaw = 2;
  static constexpr std::uint8_t kWar = 4;

  /// True when `prior` happens-before an access by `tid` now.
  [[nodiscard]] bool ordered(const Access& prior,
                             std::uint32_t tid) const noexcept {
    if (prior.tid == kNoTid || prior.tid == tid) return true;
    if (prior.block_epoch != block_epoch_) return true;  // syncthreads since
    const std::uint32_t w = tid / 32;
    return prior.tid / 32 == w && prior.warp_epoch != warp_epoch_[w];
  }

  /// Arena slot for one shared granule: the shadow plus the generation it
  /// was last touched in. reset() bumps `gen_` instead of clearing the
  /// vector, so arming a block is O(1) in the slab size; a slot whose
  /// stamp lags the current generation is logically zero and reinitialized
  /// lazily on first access (DESIGN.md §12).
  struct SharedSlot {
    Shadow s;
    std::uint32_t gen = 0;  ///< 0 = never used (gen_ starts at 1)
  };
  /// Open-addressing slot for one global granule, same generation scheme.
  /// A slot whose stamp lags the generation counts as empty for probing:
  /// within a generation every probe chain is intact (stale slots are
  /// claimed on insert), and no code ever iterates the table, so replacing
  /// the former unordered_map cannot reorder reports.
  struct GlobalSlot {
    std::uint64_t key = 0;  ///< granule index (vaddr / kGranuleBytes)
    std::uint32_t gen = 0;
    Shadow s;
  };

  void check_word(RaceReport::Space space, std::uint64_t addr, Shadow& s,
                  std::uint32_t tid, bool write, std::uint16_t stage);
  void conflict(RaceReport::Space space, std::uint64_t addr, Shadow& s,
                std::uint8_t kind, const Access& prior, bool prior_write,
                const Access& cur, bool cur_write);
  /// Find-or-insert the shadow of global granule `g` (linear probing).
  [[nodiscard]] Shadow& global_slot(std::uint64_t g);
  void grow_global_table();

  std::vector<SharedSlot> shared_;  ///< grow-only, one per slab granule
  std::size_t shared_granules_ = 0; ///< this block's slab size in granules
  std::vector<GlobalSlot> global_;  ///< pow2-sized open-addressing table
  std::size_t global_used_ = 0;     ///< current-generation occupied slots
  std::uint32_t gen_ = 0;           ///< bumped per reset(); 0 = never
  std::vector<std::uint32_t> warp_epoch_;
  std::uint32_t block_epoch_ = 0;
  bool track_global_ = false;
  Dim3 block_idx_{};
  Dim3 block_dim_{};
  std::uint64_t races_ = 0;
  std::vector<Pending> pending_;
};

/// Truthy ACCRED_RACECHECK environment variable (parsed once): the ambient
/// default for SimOptions::racecheck, mirroring ACCRED_PROFILE.
[[nodiscard]] bool racecheck_env_default();

}  // namespace accred::gpusim
