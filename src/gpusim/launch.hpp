// Kernel launch driver: validates geometry, simulates all blocks in issue
// order, and produces LaunchStats with the modeled device time.
#pragma once

#include <cstddef>

#include "gpusim/device.hpp"
#include "gpusim/scheduler.hpp"

namespace accred::gpusim {

/// Launch `kernel` over `grid` x `block` with `shared_bytes` of shared
/// memory per block on `dev`. Blocks execute sequentially (deterministic);
/// the returned stats carry the modeled Kepler execution time.
LaunchStats launch(Device& dev, Dim3 grid, Dim3 block,
                   std::size_t shared_bytes, const KernelFn& kernel,
                   const SimOptions& opts = {});

}  // namespace accred::gpusim
