// Kernel launch driver: validates geometry, simulates all blocks of the
// grid — sharded across the host worker pool (pool.hpp) — and produces
// LaunchStats with the modeled device time.
#pragma once

#include <cstddef>

#include "gpusim/device.hpp"
#include "gpusim/scheduler.hpp"

namespace accred::gpusim {

/// Launch `kernel` over `grid` x `block` with `shared_bytes` of shared
/// memory per block on `dev`. Blocks are independent (the CUDA contract),
/// so they execute in parallel across opts.sim_threads host workers; the
/// returned stats and modeled Kepler time are bit-identical for every
/// thread count (determinism contract: DESIGN.md §7). Kernels must not
/// share mutable host state across blocks.
LaunchStats launch(Device& dev, Dim3 grid, Dim3 block,
                   std::size_t shared_bytes, const KernelFn& kernel,
                   const SimOptions& opts = {});

}  // namespace accred::gpusim
