#include "gpusim/racecheck.hpp"

#include <cstdlib>
#include <sstream>
#include <string_view>

#include "obs/profiler.hpp"

namespace accred::gpusim {

namespace {

Dim3 unflatten_thread(std::uint32_t tid, const Dim3& block_dim) {
  Dim3 t;
  t.x = tid % block_dim.x;
  t.y = (tid / block_dim.x) % block_dim.y;
  t.z = tid / (block_dim.x * block_dim.y);
  return t;
}

void render_access(std::ostream& os, const RaceAccess& a) {
  os << 't' << '(' << a.thread.x << ',' << a.thread.y << ',' << a.thread.z
     << ") " << (a.write ? "write" : "read") << " [" << a.stage << ']';
}

}  // namespace

const char* RaceReport::kind() const noexcept {
  if (first.write && second.write) return "WAW";
  if (first.write) return "RAW";
  return "WAR";
}

std::string to_string(const RaceReport& r) {
  std::ostringstream os;
  os << r.kind() << ' '
     << (r.space == RaceReport::Space::kShared ? "shared+0x" : "global 0x")
     << std::hex << r.addr << std::dec << " block(" << r.block.x << ','
     << r.block.y << ',' << r.block.z << "): ";
  render_access(os, r.first);
  os << " vs ";
  render_access(os, r.second);
  return os.str();
}

void RaceChecker::reset(std::size_t shared_bytes, std::uint32_t nwarps,
                        Dim3 block_idx, Dim3 block_dim, bool track_global) {
  shared_.assign((shared_bytes + kGranuleBytes - 1) / kGranuleBytes,
                 Shadow{});
  global_.clear();
  warp_epoch_.assign(nwarps, 0);
  block_epoch_ = 0;
  track_global_ = track_global;
  block_idx_ = block_idx;
  block_dim_ = block_dim;
  races_ = 0;
  pending_.clear();
}

void RaceChecker::conflict(RaceReport::Space space, std::uint64_t addr,
                           Shadow& s, std::uint8_t kind, const Access& prior,
                           bool prior_write, const Access& cur,
                           bool cur_write) {
  races_ += 1;
  if ((s.reported & kind) != 0) return;  // one report per word per kind
  s.reported |= kind;
  if (pending_.size() >= kMaxReportsPerBlock) return;
  pending_.push_back({space, addr, prior, prior_write, cur, cur_write});
}

void RaceChecker::check_word(RaceReport::Space space, std::uint64_t addr,
                             Shadow& s, std::uint32_t tid, bool write,
                             std::uint16_t stage) {
  const Access cur{tid, block_epoch_, warp_epoch_[tid / 32], stage};
  if (write) {
    if (!ordered(s.write, tid)) {
      conflict(space, addr, s, kWaw, s.write, true, cur, true);
    }
    if (!ordered(s.read1, tid)) {
      conflict(space, addr, s, kWar, s.read1, false, cur, true);
    }
    if (!ordered(s.read2, tid)) {
      conflict(space, addr, s, kWar, s.read2, false, cur, true);
    }
    s.write = cur;
  } else {
    if (!ordered(s.write, tid)) {
      conflict(space, addr, s, kRaw, s.write, true, cur, false);
    }
    if (s.read1.tid != tid) s.read2 = s.read1;
    s.read1 = cur;
  }
}

void RaceChecker::shared_access(std::uint32_t tid, std::uint32_t offset,
                                std::uint32_t bytes, bool write,
                                std::uint16_t stage) {
  const std::uint32_t first = offset / kGranuleBytes;
  const std::uint32_t last = (offset + bytes - 1) / kGranuleBytes;
  for (std::uint32_t g = first; g <= last && g < shared_.size(); ++g) {
    check_word(RaceReport::Space::kShared,
               static_cast<std::uint64_t>(g) * kGranuleBytes, shared_[g], tid,
               write, stage);
  }
}

void RaceChecker::global_access(std::uint32_t tid, std::uint64_t vaddr,
                                std::uint32_t bytes, bool write,
                                std::uint16_t stage) {
  if (!track_global_) return;
  const std::uint64_t first = vaddr / kGranuleBytes;
  const std::uint64_t last = (vaddr + bytes - 1) / kGranuleBytes;
  for (std::uint64_t g = first; g <= last; ++g) {
    check_word(RaceReport::Space::kGlobal, g * kGranuleBytes, global_[g], tid,
               write, stage);
  }
}

std::vector<RaceReport> RaceChecker::take_reports(
    const obs::StageTable* stages) const {
  auto resolve = [&](const Access& a, bool write) {
    RaceAccess out;
    out.thread = unflatten_thread(a.tid, block_dim_);
    out.write = write;
    if (stages != nullptr && a.stage < stages->rows().size()) {
      out.stage = stages->rows()[a.stage].name;
    } else {
      out.stage = obs::kUnscopedStageName;
    }
    return out;
  };
  std::vector<RaceReport> out;
  out.reserve(pending_.size());
  for (const Pending& p : pending_) {
    RaceReport r;
    r.space = p.space;
    r.addr = p.addr;
    r.block = block_idx_;
    r.first = resolve(p.first, p.first_write);
    r.second = resolve(p.second, p.second_write);
    out.push_back(std::move(r));
  }
  return out;
}

bool racecheck_env_default() {
  static const bool enabled = [] {
    const char* env = std::getenv("ACCRED_RACECHECK");
    return env && *env && std::string_view(env) != "0";
  }();
  return enabled;
}

}  // namespace accred::gpusim
